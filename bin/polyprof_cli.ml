(* POLY-PROF command-line interface.

   Usage examples:
     polyprof list
     polyprof run backprop
     polyprof flamegraph backprop -o backprop.svg
     polyprof table5 --paper
     polyprof polly lud
     polyprof trace show backprop --limit 40
     polyprof trace stats backprop --domains 4 *)

open Cmdliner

let bench_arg =
  let doc = "Benchmark name (see $(b,polyprof list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

(* --telemetry / POLYPROF_TELEMETRY: run the command with the
   self-profiling subsystem on and print its span/metric summary on
   stderr when the command finishes *)
let telemetry_flag =
  let env = Cmd.Env.info Obs.Registry.env_var in
  Arg.(
    value & flag
    & info [ "telemetry" ] ~env
        ~doc:
          "Enable the self-profiling telemetry subsystem; on exit, print \
           the span and metric summary on stderr.")

let with_telemetry enabled f =
  if not (enabled || Obs.Registry.enabled ()) then f ()
  else begin
    Obs.Registry.enable ();
    Fun.protect
      ~finally:(fun () ->
        let roots = Obs.Span.roots () in
        let metrics = Obs.Metrics.snapshot () in
        prerr_string (Report.Obs_report.summary ~metrics roots))
      f
  end

let polybench_names =
  List.map (fun (w : Workloads.Workload.t) -> w.w_name) Workloads.Polybench.all

let find_workload name =
  try Ok (Workloads.Rodinia.find name)
  with Invalid_argument _ -> (
    if name = "gems_fdtd" then Ok Workloads.Gems_fdtd.workload
    else
      match
        List.find_opt
          (fun (w : Workloads.Workload.t) -> w.w_name = name)
          (Workloads.Polybench.all @ Workloads.Polybench.seeded)
      with
      | Some w -> Ok w
      | None ->
          Error
            (Printf.sprintf "unknown benchmark %s (try: %s, gems_fdtd, %s)"
               name
               (String.concat ", " Workloads.Rodinia.names)
               (String.concat ", " polybench_names)))

let list_cmd =
  let run () =
    List.iter print_endline Workloads.Rodinia.names;
    print_endline "gems_fdtd";
    List.iter print_endline polybench_names;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available mini benchmarks")
    Term.(const run $ const ())

let run_cmd =
  let run name telemetry =
    with_telemetry telemetry @@ fun () ->
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w -> (
        let o = Workloads.Runner.run w in
        match o.pipeline with
        | None ->
            Format.printf
              "scheduling stage bailed out (%d dependence relations > budget \
               %d)@."
              o.dep_keys Workloads.Runner.sched_budget;
            0
        | Some t ->
            Format.printf "== %s ==@." name;
            Polyprof.render_feedback Format.std_formatter t;
            Format.printf "@.== metrics ==@.";
            Sched.Metrics.pp_table Format.std_formatter [ o.row ];
            Format.printf "@.== static Polly baseline ==@.%a@."
              Staticbase.Polly_lite.pp_verdict o.polly;
            0)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the full POLY-PROF pipeline on a benchmark and print its \
             feedback")
    Term.(const run $ bench_arg $ telemetry_flag)

let flamegraph_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write an SVG flame graph.")
  in
  let run name out telemetry =
    with_telemetry telemetry @@ fun () ->
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w ->
        let t = Polyprof.run_hir w.Workloads.Workload.hir in
        (match out with
        | Some path ->
            let annot =
              Report.Flamegraph.annot_of_analysis t.Polyprof.prog
                t.Polyprof.analysis
            in
            Report.Flamegraph.write_svg ~path ~annot ~name:(Polyprof.ctx_name t)
              t.Polyprof.profile.Ddg.Depprof.stree;
            Format.printf "wrote %s@." path
        | None -> print_string (Polyprof.flamegraph_ascii t));
        0
  in
  Cmd.v
    (Cmd.info "flamegraph"
       ~doc:"Render the dynamic schedule tree as a flame graph")
    Term.(const run $ bench_arg $ out $ telemetry_flag)

let table5_cmd =
  let paper =
    Arg.(
      value & flag
      & info [ "paper" ] ~doc:"Interleave the paper's reference rows.")
  in
  let run paper telemetry =
    with_telemetry telemetry @@ fun () ->
    let results = Workloads.Runner.run_all () in
    print_string
      (if paper then Workloads.Runner.table5_with_paper results
       else Workloads.Runner.table5 results);
    0
  in
  Cmd.v
    (Cmd.info "table5"
       ~doc:"Reproduce the paper's Table 5 over all 19 mini benchmarks")
    Term.(const run $ paper $ telemetry_flag)

let polly_cmd =
  let run name =
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w ->
        let v =
          Staticbase.Polly_lite.analyse_function w.Workloads.Workload.hir
            w.Workloads.Workload.kernel_func
        in
        Format.printf "%s (%s): %a@." name w.Workloads.Workload.kernel_func
          Staticbase.Polly_lite.pp_verdict v;
        0
  in
  Cmd.v
    (Cmd.info "polly"
       ~doc:"Run the static Polly baseline on a benchmark's kernel \
             (Experiment II)")
    Term.(const run $ bench_arg)

let trace_cmd =
  let limit =
    Arg.(
      value & opt int 60
      & info [ "limit" ] ~docv:"N" ~doc:"Stop after N loop events.")
  in
  let run name limit =
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w ->
        let prog = Vm.Hir.lower w.Workloads.Workload.hir in
        let structure = Cfg.Cfg_builder.run prog in
        let iiv = Ddg.Iiv.create () in
        let levents =
          Ddg.Loop_events.create structure ~main:prog.Vm.Prog.main
        in
        let count = ref 0 in
        let exception Done in
        let show evs =
          List.iter
            (fun ev ->
              Ddg.Iiv.update iiv ev;
              incr count;
              if !count <= limit then
                Format.printf "%4d: %-28s %s@." !count
                  (Format.asprintf "%a" Ddg.Loop_events.pp ev)
                  (Ddg.Iiv.to_string iiv)
              else raise Done)
            evs
        in
        (try
           show (Ddg.Loop_events.start levents);
           let callbacks =
             { Vm.Interp.on_control =
                 (fun ev -> show (Ddg.Loop_events.feed levents ev));
               on_exec = ignore }
           in
           ignore (Vm.Interp.run ~callbacks prog)
         with Done -> ());
        0
  in
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print the loop-event / dynamic-IIV trace of a benchmark \
             (paper Fig. 3 style)")
    Term.(const run $ bench_arg $ limit)

let trace_record_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  let chunk =
    Arg.(
      value
      & opt int Stream.Sink.default_chunk_bytes
      & info [ "chunk-bytes" ] ~docv:"BYTES"
          ~doc:"Chunk payload budget of the binary codec.")
  in
  let run name out chunk telemetry =
    with_telemetry telemetry @@ fun () ->
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w ->
        let prog = Vm.Hir.lower w.Workloads.Workload.hir in
        let wi = Stream.Trace_file.record_to_file ~chunk_bytes:chunk prog out in
        Format.printf
          "wrote %s: %d events in %d chunks, %d bytes (%.2f s, %.1f Mev/s)@."
          out wi.Stream.Trace_file.wi_events wi.wi_chunks wi.wi_bytes
          wi.wi_seconds
          (float_of_int wi.wi_events /. (wi.wi_seconds +. 1e-9) /. 1e6);
        0
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Execute a benchmark once, streaming its event trace to a \
             binary file (out-of-core: memory stays one chunk)")
    Term.(const run $ bench_arg $ out $ chunk $ telemetry_flag)

let trace_stats_cmd =
  let domains =
    Arg.(
      value
      & opt int (Stream.Par_profile.default_domains ())
      & info [ "domains"; "j" ] ~docv:"N"
          ~doc:"Worker domains for the sharded profiler.")
  in
  let run name domains telemetry =
    with_telemetry telemetry @@ fun () ->
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w ->
        let now = Obs.Clock.monotonic in
        let prog = Vm.Hir.lower w.Workloads.Workload.hir in
        let trace, stats = Vm.Trace.record prog in
        let mem_bytes = String.length (Marshal.to_string trace []) in
        let path = Filename.temp_file "polyprof" ".trace" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        @@ fun () ->
        let t0 = now () in
        let disk_bytes = Stream.Trace_file.save ~stats trace path in
        let t_enc = now () -. t0 in
        let t0 = now () in
        let decoded =
          Stream.Source.with_file path (fun src ->
              let n = ref 0 in
              Stream.Source.iter src (fun _ -> incr n);
              !n)
        in
        let t_dec = now () -. t0 in
        let builder = Cfg.Cfg_builder.create prog in
        Stream.Source.with_file path (fun src ->
            Stream.Source.replay src (Cfg.Cfg_builder.callbacks builder));
        let structure = Cfg.Cfg_builder.finalize builder in
        let { Stream.Par_profile.result; par_stats } =
          Stream.Par_profile.profile_file ~domains path prog ~structure
        in
        let mevs n s = float_of_int n /. (s +. 1e-9) /. 1e6 in
        let mbs n s = float_of_int n /. (s +. 1e-9) /. (1024. *. 1024.) in
        let ints a =
          String.concat " "
            (Array.to_list (Array.map string_of_int a))
        in
        Format.printf "== trace stats: %s ==@." name;
        Format.printf "events          %d (%d control, %d exec)@."
          (Vm.Trace.n_events trace) (Vm.Trace.n_control trace)
          (Vm.Trace.n_exec trace);
        Format.printf "bytes on disk   %d (in-memory %d, %.1fx smaller)@."
          disk_bytes mem_bytes
          (float_of_int mem_bytes /. float_of_int (max 1 disk_bytes));
        Format.printf "encode          %.2f Mev/s, %.1f MB/s@."
          (mevs (Vm.Trace.n_events trace) t_enc)
          (mbs disk_bytes t_enc);
        Format.printf "decode          %.2f Mev/s, %.1f MB/s (%d events)@."
          (mevs decoded t_dec) (mbs disk_bytes t_dec) decoded;
        Format.printf "== sharded profile (%d domains) ==@."
          par_stats.Stream.Par_profile.domains;
        Format.printf "domain events   [%s]@."
          (ints par_stats.Stream.Par_profile.per_domain_events);
        Format.printf "domain edges    [%s]@."
          (ints par_stats.Stream.Par_profile.per_domain_dep_edges);
        Format.printf "peak shadow     [%s]@."
          (ints par_stats.Stream.Par_profile.per_domain_peak_shadow);
        Format.printf "replay          %.3f s, merge %.3f s@."
          par_stats.Stream.Par_profile.replay_seconds
          par_stats.Stream.Par_profile.merge_seconds;
        Format.printf "profile         %d statements, %d dependence \
                       relations, %d dynamic edges@."
          (List.length result.Ddg.Depprof.stmts)
          (List.length result.Ddg.Depprof.deps)
          result.Ddg.Depprof.total_dep_edges;
        0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Record a benchmark's trace to disk, decode it back and \
             profile it with the domain-sharded profiler, printing codec \
             and scaling counters")
    Term.(const run $ bench_arg $ domains $ telemetry_flag)

(* daemon endpoint args, shared by the serve-client commands and
   [trace fetch] *)
let socket_arg =
  Arg.(
    value
    & opt string Serve.Server.default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port on 127.0.0.1 (in addition to the Unix socket).")

let endpoint_of socket port =
  match port with
  | Some p -> Serve.Client.Tcp ("127.0.0.1", p)
  | None -> Serve.Client.Unix_sock socket

let trace_fetch_cmd =
  let tid =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE_ID"
          ~doc:
            "Trace id, as returned in every job response ($(b,trace_id)) \
             and in the /metrics exemplar lines.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of stdout.")
  in
  let run socket port tid out =
    match
      Serve.Client.request (endpoint_of socket port) ~meth:"GET"
        ~path:("/trace/" ^ tid) ()
    with
    | Error e ->
        prerr_endline e;
        1
    | Ok { Serve.Http.rs_status = 200; rs_body; _ } ->
        (match out with
        | None ->
            print_string rs_body;
            print_newline ()
        | Some path ->
            let oc = open_out path in
            output_string oc rs_body;
            close_out oc);
        0
    | Ok rs ->
        prerr_endline rs.Serve.Http.rs_body;
        1
  in
  Cmd.v
    (Cmd.info "fetch"
       ~doc:
         "Resolve a serve-daemon trace id to its span tree (queue wait, \
          execution, cache store) as a Chrome-trace JSON document, ready \
          for chrome://tracing or Perfetto")
    Term.(const run $ socket_arg $ port_arg $ tid $ out)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Record, inspect and profile execution traces")
    [ trace_cmd; trace_record_cmd; trace_stats_cmd; trace_fetch_cmd ]

let deps_cmd =
  let run name telemetry =
    with_telemetry telemetry @@ fun () ->
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w ->
        let t = Polyprof.run_hir w.Workloads.Workload.hir in
        let fname fid = (t.Polyprof.prog.Vm.Prog.funcs.(fid)).Vm.Prog.fname in
        Format.printf "== folded dependence relations of %s ==@." name;
        List.iter
          (fun (d : Ddg.Depprof.dep_info) ->
            Format.printf "%s.%a -> %s.%a (%s, %d dynamic edges):@."
              (fname (Vm.Isa.Sid.fid d.dk.src_sid))
              Vm.Isa.Sid.pp d.dk.src_sid
              (fname (Vm.Isa.Sid.fid d.dk.dst_sid))
              Vm.Isa.Sid.pp d.dk.dst_sid
              (match d.dk.kind with
              | Ddg.Depprof.Reg_dep -> "reg"
              | Ddg.Depprof.Mem_dep -> "mem"
              | Ddg.Depprof.Out_dep -> "waw")
              d.d_count;
            List.iter
              (fun p ->
                Format.printf "  %a@."
                  (Fold.pp_piece ?names:None ?label_names:None) p)
              d.d_pieces)
          t.Polyprof.profile.Ddg.Depprof.deps;
        Format.printf
          "(%d relations; SCEV pruning removed %d of %d dynamic edges)@."
          (List.length t.Polyprof.profile.Ddg.Depprof.deps)
          t.Polyprof.profile.Ddg.Depprof.pruned_dep_edges
          t.Polyprof.profile.Ddg.Depprof.total_dep_edges;
        0
  in
  Cmd.v
    (Cmd.info "deps"
       ~doc:"Print the folded polyhedral dependence relations of a benchmark")
    Term.(const run $ bench_arg $ telemetry_flag)

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit machine-readable JSON on stdout instead of text.")

let json_string = Obs.Json_emit.escape_string

let lint_entry_json (e : Analysis.Lint.entry) =
  let c sev = Analysis.Diag.count sev e.Analysis.Lint.e_diags in
  let diags =
    String.concat ", "
      (List.map
         (fun (d : Analysis.Diag.t) ->
           Printf.sprintf
             "{\"severity\": %s, \"code\": %s, \"fid\": %d, \"message\": %s}"
             (json_string
                (match d.severity with
                | Analysis.Diag.Error -> "error"
                | Analysis.Diag.Warning -> "warning"
                | Analysis.Diag.Info -> "info"))
             (json_string d.code) d.fid (json_string d.message))
         e.Analysis.Lint.e_diags)
  in
  let xcheck =
    match e.Analysis.Lint.e_xcheck with
    | None -> "null"
    | Some r ->
        Printf.sprintf
          "{\"facts\": %d, \"checked_edges\": %d, \"skipped_edges\": %d, \
           \"skip_norange\": %d, \"skip_crossfn\": %d, \"poly_pairs\": %d, \
           \"poly_checked\": %d, \"sim_must\": %d, \"sim_may\": %d, \
           \"sim_skipped\": %b, \"violations\": %d}"
          r.Analysis.Crosscheck.facts r.Analysis.Crosscheck.checked_edges
          r.Analysis.Crosscheck.skipped_edges
          r.Analysis.Crosscheck.skip_norange
          r.Analysis.Crosscheck.skip_crossfn
          r.Analysis.Crosscheck.poly_pairs
          r.Analysis.Crosscheck.poly_checked r.Analysis.Crosscheck.sim_must
          r.Analysis.Crosscheck.sim_may r.Analysis.Crosscheck.sim_skipped
          (List.length r.Analysis.Crosscheck.violations)
  in
  Printf.sprintf
    "{\"name\": %s, \"errors\": %d, \"warnings\": %d, \"infos\": %d, \
     \"accesses\": %d, \"affine\": %d, \"ranged\": %d, \"passed\": %b, \
     \"crosscheck\": %s, \"diags\": [%s]}"
    (json_string e.Analysis.Lint.e_name)
    (c Analysis.Diag.Error) (c Analysis.Diag.Warning) (c Analysis.Diag.Info)
    e.Analysis.Lint.e_accesses e.Analysis.Lint.e_affine
    e.Analysis.Lint.e_ranged (Analysis.Lint.passed e) xcheck diags

let lint_cmd =
  let bench =
    let doc =
      "Benchmark to lint verbosely; without it, lint every bundled \
       benchmark and print the summary table."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let lint_one (w : Workloads.Workload.t) =
    let prog = Vm.Hir.lower w.Workloads.Workload.hir in
    let e =
      Analysis.Lint.analyse_profiled ~name:w.Workloads.Workload.w_name prog
    in
    (* the opt-in advisories of the static dependence engine: the
       near-miss prunability report and the parallelism certifier *)
    let e = Analysis.Lint.with_almost_affine e prog in
    (prog, Analysis.Lint.with_parallelism e prog)
  in
  let run bench json telemetry =
    with_telemetry telemetry @@ fun () ->
    match bench with
    | Some name -> (
        match find_workload name with
        | Error e ->
            prerr_endline e;
            1
        | Ok w ->
            let prog, entry = lint_one w in
            if json then print_endline (lint_entry_json entry)
            else Format.printf "%a@." (Analysis.Lint.pp_entry ~prog ()) entry;
            if Analysis.Lint.passed entry then 0 else 1)
    | None ->
        let ws =
          Workloads.Rodinia.all
          @ [ Workloads.Gems_fdtd.workload ]
          @ Workloads.Polybench.all
        in
        let entries = List.map (fun w -> snd (lint_one w)) ws in
        let failed = List.filter (fun e -> not (Analysis.Lint.passed e)) entries in
        if json then
          Printf.printf "[\n%s\n]\n"
            (String.concat ",\n"
               (List.map (fun e -> "  " ^ lint_entry_json e) entries))
        else begin
          print_string (Analysis.Lint.table entries);
          List.iter
            (fun e ->
              List.iter
                (fun d -> Format.printf "%s: %s@." e.Analysis.Lint.e_name
                     (Analysis.Diag.to_string d))
                (Analysis.Lint.errors e))
            failed
        end;
        if failed = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static analyses (bytecode verifier, definite-init, \
             dead-store, dead-code, redundant-load, affine classifier) and \
             cross-check the profiled DDG against statically-proven \
             independence")
    Term.(const run $ bench $ json_flag $ telemetry_flag)

let staticdep_cmd =
  let bench =
    let doc =
      "Benchmark to analyse verbosely; without it, print the summary table \
       over every bundled benchmark."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let prune =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:
            "Also profile the benchmark twice -- with and without the \
             instrumentation-pruning plan -- and report the pruned dynamic \
             access fraction and the equality of the two profiles.")
  in
  let analyse_one (w : Workloads.Workload.t) =
    let prog = Vm.Hir.lower w.Workloads.Workload.hir in
    (prog, Analysis.Statdep.analyse prog)
  in
  (* a diverging pruned profile turns into a nonzero exit code, so
     `staticdep --prune` doubles as a self-validation smoke test *)
  let prune_failures = ref 0 in
  (* the hybrid driver: speculative plan first, witness-failure reruns
     handled by [fallback_profile] *)
  let prune_stats prog =
    let structure = Cfg.Cfg_builder.run prog in
    let base = Ddg.Depprof.profile prog ~structure in
    let _sd, pruned, reruns =
      Analysis.Statdep.fallback_profile prog ~profile:(fun plan ->
          Ddg.Depprof.profile prog ~structure ~static_prune:plan)
    in
    let mem = base.Ddg.Depprof.run_stats.Vm.Interp.dyn_mem_ops in
    let equal = Ddg.Depprof.equal_result base pruned in
    if not equal then incr prune_failures;
    ( pruned.Ddg.Depprof.statically_pruned,
      mem,
      equal,
      List.length pruned.Ddg.Depprof.witnesses,
      reruns )
  in
  let sd_json name (prog : Vm.Prog.t) (sd : Analysis.Statdep.t) prune =
    let possible =
      List.length
        (List.filter
           (fun (p : Analysis.Statdep.pair_dep) -> p.pd_possible)
           sd.Analysis.Statdep.pairs)
    in
    let prune_part =
      if not prune then ""
      else
        let pruned_dyn, mem, equal, witnesses, reruns = prune_stats prog in
        Printf.sprintf
          ", \"pruned_dynamic\": %d, \"dyn_mem_ops\": %d, \
           \"pruned_fraction\": %.4f, \"profiles_equal\": %b, \
           \"speculative_witnesses\": %d, \"witness_reruns\": %d"
          pruned_dyn mem
          (float_of_int pruned_dyn /. float_of_int (max 1 mem))
          equal witnesses reruns
    in
    Printf.sprintf
      "{\"name\": %s, \"accesses\": %d, \"resolved\": %d, \"pruned\": %d, \
       \"prunable_regions\": [%s], \"pairs\": %d, \"possible_pairs\": %d%s}"
      (json_string name) sd.Analysis.Statdep.n_accesses
      (Analysis.Statdep.n_resolved sd)
      (Analysis.Statdep.n_pruned sd)
      (String.concat ", "
         (List.map json_string (Analysis.Statdep.prunable_regions sd)))
      (List.length sd.Analysis.Statdep.pairs)
      possible prune_part
  in
  let run bench prune json telemetry =
    with_telemetry telemetry @@ fun () ->
    match bench with
    | Some name -> (
        match find_workload name with
        | Error e ->
            prerr_endline e;
            1
        | Ok w ->
            let prog, sd = analyse_one w in
            if json then print_endline (sd_json name prog sd prune)
            else begin
              Format.printf "%a@." Analysis.Statdep.pp sd;
              if prune then begin
                let pruned_dyn, mem, equal, witnesses, reruns =
                  prune_stats prog
                in
                Format.printf
                  "pruning: %d/%d dynamic accesses skipped shadow tracking \
                   (%.1f%%), %d witness probe%s, %d witness-failure rerun%s, \
                   pruned profile %s the unpruned one@."
                  pruned_dyn mem
                  (100.0 *. float_of_int pruned_dyn
                  /. float_of_int (max 1 mem))
                  witnesses
                  (if witnesses = 1 then "" else "s")
                  reruns
                  (if reruns = 1 then "" else "s")
                  (if equal then "IDENTICAL to" else "DIFFERS from")
              end
            end;
            if !prune_failures > 0 then 1 else 0)
    | None ->
        let ws =
          Workloads.Rodinia.all
          @ [ Workloads.Gems_fdtd.workload ]
          @ Workloads.Polybench.all
        in
        if json then
          Printf.printf "[\n%s\n]\n"
            (String.concat ",\n"
               (List.map
                  (fun (w : Workloads.Workload.t) ->
                    let prog, sd = analyse_one w in
                    "  " ^ sd_json w.w_name prog sd prune)
                  ws))
        else begin
          let header =
            [ "Workload"; "Acc"; "Res"; "Pruned"; "Regions"; "Pairs"; "Dep" ]
            @ if prune then [ "DynPruned"; "Wit"; "Fail"; "Equal" ] else []
          in
          let rows =
            List.map
              (fun (w : Workloads.Workload.t) ->
                let prog, sd = analyse_one w in
                let possible =
                  List.length
                    (List.filter
                       (fun (p : Analysis.Statdep.pair_dep) -> p.pd_possible)
                       sd.Analysis.Statdep.pairs)
                in
                [ w.w_name;
                  string_of_int sd.Analysis.Statdep.n_accesses;
                  string_of_int (Analysis.Statdep.n_resolved sd);
                  string_of_int (Analysis.Statdep.n_pruned sd);
                  string_of_int
                    (List.length (Analysis.Statdep.prunable_regions sd));
                  string_of_int (List.length sd.Analysis.Statdep.pairs);
                  string_of_int possible ]
                @
                if prune then begin
                  let pruned_dyn, mem, equal, witnesses, reruns =
                    prune_stats prog
                  in
                  [ Printf.sprintf "%d/%d (%.0f%%)" pruned_dyn mem
                      (100.0 *. float_of_int pruned_dyn
                      /. float_of_int (max 1 mem));
                    string_of_int witnesses;
                    string_of_int reruns;
                    (if equal then "Y" else "N!") ]
                end
                else [])
              ws
          in
          print_string (Report.Texttable.render ~header rows)
        end;
        if !prune_failures > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "staticdep"
       ~doc:"Run the static polyhedral dependence engine: points-to \
             regions, resolved affine accesses, exact per-pair dependence \
             polyhedra, and the instrumentation-pruning plan (with \
             $(b,--prune), validate the pruned profile against the \
             unpruned one)")
    Term.(const run $ bench $ prune $ json_flag $ telemetry_flag)

let parcheck_cmd =
  let bench =
    let doc =
      "Benchmark to certify verbosely; without it, print the summary table \
       over every bundled benchmark (plus the seeded par_* variants)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let static_only =
    Arg.(
      value & flag
      & info [ "static-only" ]
          ~doc:
            "Skip the dynamic race sanitizer run (and with it the \
             static/dynamic cross-check); report static verdicts only.")
  in
  let module J = struct
    let dim (d : Analysis.Parcheck.dim_report) =
      let open Obs.Json_emit in
      Obj
        ([ ("fid", Int d.Analysis.Parcheck.dr_fid);
           ("header", Int d.Analysis.Parcheck.dr_header);
           ("depth", Int d.Analysis.Parcheck.dr_depth);
           ( "loc",
             match d.Analysis.Parcheck.dr_loc with
             | Some l ->
                 Str (Printf.sprintf "%s:%d" l.Vm.Prog.file l.Vm.Prog.line)
             | None -> Null );
           ( "verdict",
             Str (Analysis.Parcheck.verdict_code d.Analysis.Parcheck.dr_verdict)
           ) ]
        @
        match d.Analysis.Parcheck.dr_verdict with
        | Analysis.Parcheck.Certified c ->
            [ ("pairs", Int c.Analysis.Parcheck.ct_pairs);
              ( "private_regions",
                Int (List.length c.Analysis.Parcheck.ct_private) );
              ( "reduction_accesses",
                Int (List.length c.Analysis.Parcheck.ct_reductions) ) ]
        | Analysis.Parcheck.Race ws -> [ ("witnesses", Int (List.length ws)) ]
        | Analysis.Parcheck.Unknown why -> [ ("reason", Str why) ])

    let sanitizer (r : Ddg.Race_san.report) =
      let open Obs.Json_emit in
      Obj
        [ ("accesses", Int r.Ddg.Race_san.sr_accesses);
          ( "races_on_certified",
            Int (Ddg.Race_san.races_on_certified r) );
          ( "claims",
            List
              (List.map
                 (fun (cs : Ddg.Race_san.claim_stats) ->
                   Obj
                     [ ( "label",
                         Str cs.Ddg.Race_san.cs_claim.Ddg.Race_san.cl_label );
                       ( "certified",
                         Bool
                           cs.Ddg.Race_san.cs_claim.Ddg.Race_san.cl_certified
                       );
                       ("instances", Int cs.Ddg.Race_san.cs_instances);
                       ("iterations", Int cs.Ddg.Race_san.cs_iterations);
                       ("races", Int cs.Ddg.Race_san.cs_n_races);
                       ("covered", Int cs.Ddg.Race_san.cs_covered) ])
                 r.Ddg.Race_san.sr_claims) ) ]

    let workload name (pc : Analysis.Parcheck.t) san diags =
      let open Obs.Json_emit in
      Obj
        ([ ("name", Str name);
           ("dims", List (List.map dim pc.Analysis.Parcheck.pc_dims));
           ("certified", Int (Analysis.Parcheck.n_certified pc));
           ("races", Int (Analysis.Parcheck.n_races pc)) ]
        @ (match san with
          | Some r -> [ ("sanitizer", sanitizer r) ]
          | None -> [])
        @
        match diags with
        | Some ds ->
            [ ( "crosscheck_ok",
                Bool (Analysis.Parcheck.crosscheck_ok ds) );
              ( "diagnostics",
                List
                  (List.map
                     (fun d -> Str (Analysis.Diag.to_string d))
                     ds) ) ]
        | None -> [])
  end in
  let analyse_one ~static_only (w : Workloads.Workload.t) =
    let prog = Vm.Hir.lower w.Workloads.Workload.hir in
    let pc = Analysis.Parcheck.analyse prog in
    if static_only then (pc, None, None)
    else
      let san = Analysis.Parcheck.sanitize pc in
      let diags = Analysis.Parcheck.crosscheck pc san in
      (pc, Some san, Some diags)
  in
  let failed diags =
    match diags with
    | Some ds -> not (Analysis.Parcheck.crosscheck_ok ds)
    | None -> false
  in
  let run bench static_only json telemetry =
    with_telemetry telemetry @@ fun () ->
    match bench with
    | Some name -> (
        match find_workload name with
        | Error e ->
            prerr_endline e;
            1
        | Ok w ->
            let pc, san, diags = analyse_one ~static_only w in
            if json then
              print_endline
                (Obs.Json_emit.to_string ~pretty:true
                   (J.workload name pc san diags))
            else begin
              Format.printf "%a@." Analysis.Parcheck.pp pc;
              (match san with
              | Some r -> Format.printf "%a" Ddg.Race_san.pp_report r
              | None -> ());
              match diags with
              | Some ds ->
                  List.iter
                    (fun d ->
                      Format.printf "%s@." (Analysis.Diag.to_string d))
                    ds
              | None -> ()
            end;
            if failed diags then 1 else 0)
    | None ->
        let ws =
          Workloads.Rodinia.all
          @ [ Workloads.Gems_fdtd.workload ]
          @ Workloads.Polybench.all @ Workloads.Polybench.seeded
        in
        let rows =
          List.map
            (fun (w : Workloads.Workload.t) ->
              let pc, san, diags = analyse_one ~static_only w in
              (w.Workloads.Workload.w_name, pc, san, diags))
            ws
        in
        let any_failed =
          List.exists (fun (_, _, _, diags) -> failed diags) rows
        in
        if json then
          print_endline
            (Obs.Json_emit.to_string ~pretty:true
               (Obs.Json_emit.List
                  (List.map
                     (fun (name, pc, san, diags) ->
                       J.workload name pc san diags)
                     rows)))
        else begin
          let header =
            [ "Workload"; "Dims"; "Cert"; "Race"; "Unk" ]
            @ if static_only then [] else [ "SanRaces"; "Xcheck" ]
          in
          let trows =
            List.map
              (fun (name, (pc : Analysis.Parcheck.t), san, diags) ->
                let dims = List.length pc.Analysis.Parcheck.pc_dims in
                let cert = Analysis.Parcheck.n_certified pc in
                let race = Analysis.Parcheck.n_races pc in
                [ name;
                  string_of_int dims;
                  string_of_int cert;
                  string_of_int race;
                  string_of_int (dims - cert - race) ]
                @
                if static_only then []
                else
                  [ (match san with
                    | Some r ->
                        string_of_int
                          (List.fold_left
                             (fun a (cs : Ddg.Race_san.claim_stats) ->
                               a + cs.Ddg.Race_san.cs_n_races)
                             0 r.Ddg.Race_san.sr_claims)
                    | None -> "-");
                    (if failed diags then "FAIL!" else "ok") ])
              rows
          in
          print_string (Report.Texttable.render ~header trows)
        end;
        if any_failed then 1 else 0
  in
  Cmd.v
    (Cmd.info "parcheck"
       ~doc:
         "Certify claimed-parallel loop dimensions: static DOALL \
          certificates (with reduction and privatisation discharge) or \
          concrete race witnesses per chain dimension, cross-checked \
          against one run under the dynamic race sanitizer (a sanitizer \
          race on a certified dimension is a hard failure)")
    Term.(const run $ bench $ static_only $ json_flag $ telemetry_flag)

let transform_cmd =
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Differentially verify each applied plan: run original and \
             transformed programs, compare memory images, re-profile and \
             re-check legality and profitability.")
  in
  let max_plans =
    Arg.(
      value & opt int 8
      & info [ "max-plans" ] ~docv:"N"
          ~doc:"Verify at most N plans (hottest first).")
  in
  let eps =
    Arg.(
      value & opt float 1e-9
      & info [ "eps" ] ~docv:"EPS"
          ~doc:"Relative tolerance for float memory cells.")
  in
  let run name verify max_plans eps telemetry =
    with_telemetry telemetry @@ fun () ->
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w ->
        let hir = w.Workloads.Workload.hir in
        if not verify then begin
          (* apply the hottest plan and show the transformed source *)
          let t = Polyprof.run_hir hir in
          let plans = Sched.Plan.plans_of_feedback t.Polyprof.feedback in
          match plans with
          | [] ->
              Format.printf "no applicable transformation plans for %s@." name;
              0
          | plan :: _ -> (
              Format.printf "== plan for %s: nest %s ==@." name
                (Sched.Plan.describe plan);
              List.iter
                (fun s -> Format.printf "  %a@." Sched.Transform.pp_step s)
                plan.Sched.Plan.p_steps;
              match Xform.Apply.apply_plan hir plan with
              | Error e ->
                  Format.printf "cannot apply: %s@." e;
                  1
              | Ok o ->
                  List.iter
                    (fun a -> Format.printf "%a@." Xform.Apply.pp_applied a)
                    o.Xform.Apply.o_applied;
                  List.iter
                    (fun (s, why) ->
                      Format.printf "skipped %a: %s@." Sched.Transform.pp_step s
                        why)
                    o.Xform.Apply.o_skipped;
                  Format.printf "== transformed source ==@.%a@."
                    Vm.Hir.pp_program o.Xform.Apply.o_hir;
                  0)
        end
        else begin
          let summary =
            Polyprof.apply_and_verify ~eps ~max_plans ~name hir
          in
          Format.printf "%a@." Xform.Driver.pp_summary summary;
          if summary.Xform.Driver.sm_rejected = 0 then 0 else 1
        end
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:
         "Apply the suggested transformation schedule of a benchmark to its \
          HIR source ($(b,--verify): prove it equivalent, legal and \
          profitable by differential re-profiling)")
    Term.(const run $ bench_arg $ verify $ max_plans $ eps $ telemetry_flag)

let source_cmd =
  let run name =
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w ->
        Format.printf "%a@." Vm.Hir.pp_program w.Workloads.Workload.hir;
        0
  in
  Cmd.v
    (Cmd.info "source"
       ~doc:"Print the C-like source listing of a benchmark (what the              static baseline analyses)")
    Term.(const run $ bench_arg)

let telemetry_cmd =
  let file_opt names docv doc =
    Arg.(value & opt (some string) None & info names ~docv ~doc)
  in
  let trace_json =
    file_opt [ "trace-json" ] "FILE"
      "Write a Chrome trace-event JSON (loadable in Perfetto or \
       chrome://tracing)."
  in
  let prom =
    file_opt [ "prom" ] "FILE" "Write a Prometheus text exposition."
  in
  let svg =
    file_opt [ "svg" ] "FILE" "Write a self-profile flame graph SVG."
  in
  let run name trace_json prom svg =
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w ->
        Obs.Registry.enable ();
        Obs.Metrics.reset ();
        Obs.Span.reset ();
        let o = Workloads.Runner.run w in
        Format.printf "== %s pipeline telemetry (sched %s) ==@." name
          (if o.Workloads.Runner.sched_bailed then "bailed" else "ok");
        let roots = Obs.Span.roots () in
        let metrics = Obs.Metrics.snapshot () in
        print_string (Report.Obs_report.summary ~metrics roots);
        let wrote = ref 0 in
        Option.iter
          (fun path ->
            Obs.Chrome.write_file ~path ~process_name:("polyprof " ^ name)
              ~metrics roots;
            match Obs.Chrome.validate_file path with
            | Ok n ->
                incr wrote;
                Format.printf "wrote %s (%d trace events, validated)@." path n
            | Error e ->
                Format.eprintf "emitted Chrome trace failed validation: %s@." e)
          trace_json;
        Option.iter
          (fun path ->
            Obs.Prometheus.write_file ~path metrics;
            incr wrote;
            Format.printf "wrote %s@." path)
          prom;
        Option.iter
          (fun path ->
            Report.Obs_report.write_flamegraph_svg ~path roots;
            incr wrote;
            Format.printf "wrote %s@." path)
          svg;
        0
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:
         "Run the full pipeline on a benchmark with self-profiling on and \
          report the telemetry: phase spans (wall time, GC words, heap \
          watermark) and subsystem counters, with optional Chrome-trace \
          JSON, Prometheus and flame-graph SVG exports")
    Term.(const run $ bench_arg $ trace_json $ prom $ svg)

let overhead_cmd =
  let domains =
    Arg.(
      value
      & opt int (Stream.Par_profile.default_domains ())
      & info [ "domains"; "j" ] ~docv:"N"
          ~doc:"Worker domains for the out-of-core configuration.")
  in
  let repeat =
    Arg.(
      value & opt int 3
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Repetitions per configuration (best wall time wins).")
  in
  let run name json domains repeat =
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w ->
        let o = Workloads.Overhead.measure ~domains ~repeat w in
        if json then
          print_endline
            (Obs.Json_emit.to_string ~pretty:true (Workloads.Overhead.json o))
        else print_string (Workloads.Overhead.table o);
        0
  in
  Cmd.v
    (Cmd.info "overhead"
       ~doc:
         "Measure the profiling overhead of a benchmark (paper \u{00a7}8): \
          native vs in-process instrumented vs out-of-core vs \
          statically-pruned wall time, plus trace bytes per memory access")
    Term.(const run $ bench_arg $ json_flag $ domains $ repeat)

let autotune_cmd =
  let beam =
    Arg.(
      value & opt int Tune.Search.default.Tune.Search.beam
      & info [ "beam" ] ~docv:"N" ~doc:"Beam width (measured candidates per level).")
  in
  let depth =
    Arg.(
      value & opt int Tune.Search.default.Tune.Search.depth
      & info [ "depth" ] ~docv:"N" ~doc:"Maximum number of composed steps.")
  in
  let repeat =
    Arg.(
      value & opt int Tune.Search.default.Tune.Search.repeat
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Timed runs per measured candidate (median wins).")
  in
  let seed =
    Arg.(
      value & opt int Tune.Search.default.Tune.Search.seed
      & info [ "seed" ] ~docv:"N"
          ~doc:"Tie-break seed of the deterministic ranking.")
  in
  let svg =
    Arg.(
      value & opt (some string) None
      & info [ "svg" ] ~docv:"FILE"
          ~doc:"Write the search tree as a flame-graph SVG to $(docv).")
  in
  let run name beam depth repeat seed json svg telemetry =
    with_telemetry telemetry @@ fun () ->
    match find_workload name with
    | Error e ->
        prerr_endline e;
        1
    | Ok w -> (
        let config =
          { Tune.Search.default with
            Tune.Search.beam;
            depth;
            repeat;
            seed }
        in
        let result =
          Polyprof.autotune ~config ~name:w.Workloads.Workload.w_name
            w.Workloads.Workload.hir
        in
        (match (svg, result) with
        | Some path, Ok r ->
            let oc = open_out path in
            output_string oc (Tune.Tune_report.svg_of r);
            close_out oc
        | _ -> ());
        if json then begin
          print_endline
            (Obs.Json_emit.to_string ~pretty:true
               (Tune.Tune_report.workload_json ~name result));
          match result with Ok _ -> 0 | Error _ -> 1
        end
        else
          match result with
          | Error e ->
              Format.printf "autotune %s: %s@." name e;
              1
          | Ok r ->
              Format.printf "%a@." Tune.Tune_report.render r;
              0)
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:
         "Close the PGO loop: beam-search the legal schedule space of a \
          benchmark (interchange/skew/tile/fuse/distribute, gated by the \
          profiled direction vectors), rank candidates with the two-stage \
          cost model, measure the beam survivors and differentially verify \
          every one; report the best verified schedule")
    Term.(
      const run $ bench_arg $ beam $ depth $ repeat $ seed $ json_flag $ svg
      $ telemetry_flag)

(* ------------------------------------------------------------------ *)
(* Profiling as a service: serve / submit / status / fetch / shutdown   *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let workers =
    Arg.(
      value & opt int Serve.Engine.default_config.Serve.Engine.workers
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains in the pool.")
  in
  let queue =
    Arg.(
      value & opt int Serve.Engine.default_config.Serve.Engine.queue_capacity
      & info [ "queue" ] ~docv:"N"
          ~doc:"Queued-job bound; submissions beyond it are rejected (429).")
  in
  let cache_mb =
    Arg.(
      value & opt int 64
      & info [ "cache-mb" ] ~docv:"MiB"
          ~doc:"Byte budget of the content-addressed result cache (LRU).")
  in
  let persist =
    Arg.(
      value & opt (some string) None
      & info [ "persist" ] ~docv:"DIR"
          ~doc:
            "Persist cached results to $(docv) (CRC-sealed, one file per \
             entry) and reload them on restart; corrupt files are rejected.")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Default per-job deadline for specs that carry none.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No lifecycle chatter on stdout.")
  in
  let log_json =
    Arg.(
      value & opt (some string) None
      & info [ "log-json" ] ~docv:"FILE"
          ~doc:
            "Append structured JSON-lines logs (one object per event, with \
             trace_id/job_id correlation fields) to $(docv).")
  in
  let run socket port workers queue cache_mb persist deadline quiet log_json =
    (* the /metrics endpoint is the daemon's point: telemetry is on *)
    Obs.Registry.enable ();
    Serve.Server.serve ~quiet
      { Serve.Server.socket_path = socket;
        tcp_port = port;
        log_json;
        engine =
          { Serve.Engine.workers;
            queue_capacity = queue;
            cache_bytes = cache_mb * 1024 * 1024;
            persist_dir = persist;
            default_deadline_s = deadline } };
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the profiling daemon: accept profile/transform/verify/autotune \
          jobs over HTTP/1.1 + JSON on a Unix-domain socket (and optionally \
          TCP), execute them on a bounded pool of worker domains with \
          per-job deadlines and crash isolation, serve repeat submissions \
          from a content-addressed result cache, and expose live \
          Prometheus metrics on /metrics")
    Term.(
      const run $ socket_arg $ port_arg $ workers $ queue $ cache_mb $ persist
      $ deadline $ quiet $ log_json)

let kind_arg =
  let kinds =
    [ ("profile", Serve.Proto.Profile); ("transform", Serve.Proto.Transform);
      ("verify", Serve.Proto.Verify); ("autotune", Serve.Proto.Autotune);
      ("parcheck", Serve.Proto.Parcheck); ("crash", Serve.Proto.Crash) ]
  in
  Arg.(
    required
    & pos 0 (some (enum kinds)) None
    & info [] ~docv:"KIND"
        ~doc:"Job kind: $(b,profile), $(b,transform), $(b,verify), \
              $(b,autotune), $(b,parcheck) or $(b,crash) (the \
              crash-isolation self-test).")

let submit_cmd =
  let bench =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name (see $(b,polyprof list)).")
  in
  let params =
    Arg.(
      value & opt_all string []
      & info [ "param"; "p" ] ~docv:"K=V"
          ~doc:
            "Job parameter (repeatable): $(b,budget) for profile, \
             $(b,max_plans) for transform/verify, \
             $(b,beam)/$(b,depth)/$(b,repeat)/$(b,seed) for autotune.")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS" ~doc:"Per-job deadline.")
  in
  let wait =
    Arg.(
      value & flag
      & info [ "wait" ]
          ~doc:
            "Block until the job finishes and print its report document \
             instead of the submit acknowledgement.")
  in
  let run socket port kind bench params deadline wait =
    let ep = endpoint_of socket port in
    let params =
      List.filter_map
        (fun kv ->
          match String.index_opt kv '=' with
          | Some i ->
              Some
                ( String.sub kv 0 i,
                  String.sub kv (i + 1) (String.length kv - i - 1) )
          | None ->
              prerr_endline ("ignoring malformed --param " ^ kv);
              None)
        params
    in
    let spec = Serve.Proto.spec ~kind ~bench ~params ?deadline_s:deadline () in
    match Serve.Client.submit ep spec with
    | Error e ->
        prerr_endline e;
        1
    | Ok doc ->
        if not wait then begin
          print_endline (Obs.Json_emit.to_string ~pretty:true doc);
          0
        end
        else begin
          match Serve.Client.job_id_of doc with
          | Error e ->
              prerr_endline e;
              1
          | Ok id -> (
              match Serve.Client.wait ep ~job_id:id () with
              | Error e ->
                  prerr_endline e;
                  1
              | Ok _ -> (
                  match
                    Serve.Client.request ep ~meth:"GET"
                      ~path:(Printf.sprintf "/jobs/%d/report" id)
                      ()
                  with
                  | Ok { Serve.Http.rs_status = 200; rs_body; _ } ->
                      print_string rs_body;
                      print_newline ();
                      0
                  | Ok rs ->
                      prerr_endline
                        (Printf.sprintf "HTTP %d" rs.Serve.Http.rs_status);
                      1
                  | Error e ->
                      prerr_endline e;
                      1))
        end
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a job to a running $(b,polyprof serve) daemon; repeat \
          submissions of identical jobs are served from its \
          content-addressed cache")
    Term.(
      const run $ socket_arg $ port_arg $ kind_arg $ bench $ params $ deadline
      $ wait)

let status_cmd =
  let id =
    Arg.(
      value & pos 0 (some int) None
      & info [] ~docv:"ID"
          ~doc:"Job id; without it, list the most recent jobs.")
  in
  let run socket port id =
    let ep = endpoint_of socket port in
    let path =
      match id with Some i -> Printf.sprintf "/jobs/%d" i | None -> "/jobs"
    in
    match Serve.Client.request ep ~meth:"GET" ~path () with
    | Error e ->
        prerr_endline e;
        1
    | Ok rs ->
        (match Obs.Json_emit.parse rs.Serve.Http.rs_body with
        | Ok doc -> print_endline (Obs.Json_emit.to_string ~pretty:true doc)
        | Error _ -> print_endline rs.Serve.Http.rs_body);
        if rs.Serve.Http.rs_status = 200 then 0 else 1
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Query a running daemon for job status")
    Term.(const run $ socket_arg $ port_arg $ id)

let fetch_cmd =
  let id =
    Arg.(
      required & pos 0 (some int) None & info [] ~docv:"ID" ~doc:"Job id.")
  in
  let artifact =
    Arg.(
      value & flag
      & info [ "artifact" ]
          ~doc:"Fetch the per-job Chrome trace instead of the report.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of stdout.")
  in
  let run socket port id artifact out =
    let ep = endpoint_of socket port in
    let leaf = if artifact then "artifact" else "report" in
    match
      Serve.Client.request ep ~meth:"GET"
        ~path:(Printf.sprintf "/jobs/%d/%s" id leaf)
        ()
    with
    | Error e ->
        prerr_endline e;
        1
    | Ok { Serve.Http.rs_status = 200; rs_body; _ } ->
        (match out with
        | None ->
            print_string rs_body;
            print_newline ()
        | Some path ->
            let oc = open_out path in
            output_string oc rs_body;
            close_out oc);
        0
    | Ok rs ->
        prerr_endline rs.Serve.Http.rs_body;
        1
  in
  Cmd.v
    (Cmd.info "fetch"
       ~doc:"Download a finished job's report or Chrome-trace artifact")
    Term.(const run $ socket_arg $ port_arg $ id $ artifact $ out)

let shutdown_cmd =
  let run socket port =
    match
      Serve.Client.request (endpoint_of socket port) ~meth:"POST"
        ~path:"/shutdown" ()
    with
    | Error e ->
        prerr_endline e;
        1
    | Ok rs ->
        print_endline rs.Serve.Http.rs_body;
        if rs.Serve.Http.rs_status = 200 then 0 else 1
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Gracefully stop a running daemon (drain the queue, join the \
             workers)")
    Term.(const run $ socket_arg $ port_arg)

(* ------------------------------------------------------------------ *)
(* perfdiff: the BENCH_* regression sentinel                            *)
(* ------------------------------------------------------------------ *)

let bench_name_of_file path =
  let base = Filename.basename path in
  let base =
    match Filename.chop_suffix_opt ~suffix:".json" base with
    | Some b -> b
    | None -> base
  in
  if String.length base > 6 && String.sub base 0 6 = "BENCH_" then
    String.sub base 6 (String.length base - 6)
  else base

let perfdiff_cmd =
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILES"
          ~doc:
            "BENCH_*.json documents to compare (default: every \
             BENCH_*.json in the current directory).")
  in
  let history =
    Arg.(
      value & opt string "bench/history"
      & info [ "history" ] ~docv:"DIR"
          ~doc:"Performance-history directory (one JSONL file per bench).")
  in
  let window =
    Arg.(
      value & opt int 5
      & info [ "window" ] ~docv:"N"
          ~doc:"Baseline = per-metric median over the last $(docv) recorded \
                runs.")
  in
  let report_only =
    Arg.(
      value & flag
      & info [ "report-only" ]
          ~doc:"Report regressions but always exit 0 (CI soak mode).")
  in
  let bless =
    Arg.(
      value & flag
      & info [ "bless" ]
          ~doc:
            "Append $(i,FILES) to the history as accepted baselines instead \
             of diffing against it.")
  in
  let fmt_val = Printf.sprintf "%.6g" in
  let fmt_opt = function Some v -> fmt_val v | None -> "-" in
  let run files history window report_only bless json =
    let files =
      if files <> [] then files
      else
        Sys.readdir "." |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 6
               && String.sub f 0 6 = "BENCH_"
               && Filename.check_suffix f ".json")
        |> List.sort compare
    in
    if files = [] then begin
      prerr_endline
        "perfdiff: no BENCH_*.json documents found (run the benches with \
         --json first, or pass files explicitly)";
      1
    end
    else begin
      let broken = ref false in
      let docs =
        List.filter_map
          (fun path ->
            match Obs.Json_emit.parse_file path with
            | Ok doc -> Some (path, bench_name_of_file path, doc)
            | Error e ->
                Printf.eprintf "perfdiff: %s: %s\n" path e;
                broken := true;
                None)
          files
      in
      if bless then begin
        List.iter
          (fun (path, bench, doc) ->
            Obs.Perfhist.record ~dir:history ~bench doc;
            Printf.printf "blessed %s -> %s\n" path
              (Obs.Perfhist.history_file ~dir:history ~bench))
          docs;
        if !broken then 1 else 0
      end
      else begin
        let regressed_total = ref 0 in
        let results =
          List.map
            (fun (path, bench, doc) ->
              let entries = Obs.Perfhist.load ~dir:history ~bench in
              let current = Obs.Perfhist.flatten doc in
              if entries = [] then (path, bench, None)
              else begin
                let baseline = Obs.Perfhist.baseline ~window entries in
                let rows = Obs.Perfhist.diff ~baseline ~current in
                regressed_total :=
                  !regressed_total
                  + List.length (Obs.Perfhist.regressions rows);
                (path, bench, Some (List.length entries, rows))
              end)
            docs
        in
        let gating = not report_only in
        if json then
          print_endline
            (Obs.Json_emit.to_string ~pretty:true
               (Obs.Json_emit.Obj
                  [ ("schema_version", Obs.Json_emit.Int Obs.Schemas.perfhist);
                    ("history_dir", Obs.Json_emit.Str history);
                    ("window", Obs.Json_emit.Int window);
                    ("gating", Obs.Json_emit.Bool gating);
                    ("regressed_total", Obs.Json_emit.Int !regressed_total);
                    ( "benches",
                      Obs.Json_emit.List
                        (List.map
                           (fun (path, bench, res) ->
                             Obs.Json_emit.Obj
                               ([ ("bench", Obs.Json_emit.Str bench);
                                  ("file", Obs.Json_emit.Str path) ]
                               @
                               match res with
                               | None ->
                                   [ ("history", Obs.Json_emit.Bool false) ]
                               | Some (n, rows) ->
                                   [ ("history", Obs.Json_emit.Bool true);
                                     ("history_entries", Obs.Json_emit.Int n);
                                     ( "regressed",
                                       Obs.Json_emit.Int
                                         (List.length
                                            (Obs.Perfhist.regressions rows))
                                     );
                                     ( "rows",
                                       Obs.Json_emit.List
                                         (List.map Obs.Perfhist.row_json rows)
                                     ) ]))
                           results) ) ]))
        else
          List.iter
            (fun (path, bench, res) ->
              match res with
              | None ->
                  Printf.printf
                    "%s: no recorded history in %s (accept with: polyprof \
                     perfdiff --bless %s)\n"
                    bench history path
              | Some (n, rows) ->
                  let interesting =
                    List.filter
                      (fun (r : Obs.Perfhist.row) ->
                        match r.Obs.Perfhist.r_verdict with
                        | Obs.Perfhist.Regressed | Obs.Perfhist.Improved
                        | Obs.Perfhist.New_metric | Obs.Perfhist.Missing ->
                            true
                        | Obs.Perfhist.Within | Obs.Perfhist.Info -> false)
                      rows
                  in
                  let count v =
                    List.length
                      (List.filter
                         (fun (r : Obs.Perfhist.row) ->
                           r.Obs.Perfhist.r_verdict = v)
                         rows)
                  in
                  Printf.printf
                    "%s: %d metrics vs median of last %d run(s): %d ok, %d \
                     regressed, %d improved, %d new, %d missing, %d info\n"
                    bench (List.length rows) (min window n)
                    (count Obs.Perfhist.Within)
                    (count Obs.Perfhist.Regressed)
                    (count Obs.Perfhist.Improved)
                    (count Obs.Perfhist.New_metric)
                    (count Obs.Perfhist.Missing)
                    (count Obs.Perfhist.Info);
                  if interesting <> [] then
                    print_string
                      (Report.Texttable.render
                         ~header:
                           [ "metric"; "baseline"; "current"; "delta";
                             "tol"; "verdict" ]
                         (List.map
                            (fun (r : Obs.Perfhist.row) ->
                              [ r.Obs.Perfhist.r_metric;
                                fmt_opt r.Obs.Perfhist.r_base;
                                fmt_opt r.Obs.Perfhist.r_cur;
                                (match r.Obs.Perfhist.r_delta_pct with
                                | Some d -> Printf.sprintf "%+.1f%%" d
                                | None -> "-");
                                Printf.sprintf "%.0f%%"
                                  (r.Obs.Perfhist.r_tol *. 100.0);
                                Obs.Perfhist.verdict_name
                                  r.Obs.Perfhist.r_verdict ])
                            interesting)))
            results;
        if !broken || (gating && !regressed_total > 0) then 1 else 0
      end
    end
  in
  Cmd.v
    (Cmd.info "perfdiff"
       ~doc:
         "Compare current BENCH_*.json documents against the recorded \
          performance history with noise-aware per-metric tolerance bands \
          (wall-clock 25%, allocation 15%, deterministic fractions 2%); \
          exits nonzero when a gated metric regressed beyond its band \
          unless $(b,--report-only)")
    Term.(
      const run $ files_arg $ history $ window $ report_only $ bless
      $ json_flag)

let version_cmd =
  let run json =
    if json then
      print_endline
        (Obs.Json_emit.to_string ~pretty:true
           (Obs.Json_emit.Obj
              [ ("version", Obs.Json_emit.Str Polyprof.version);
                ( "schemas",
                  Obs.Json_emit.List
                    (List.map
                       (fun (s : Obs.Schemas.t) ->
                         Obs.Json_emit.Obj
                           [ ("name", Obs.Json_emit.Str s.Obs.Schemas.s_name);
                             ("file", Obs.Json_emit.Str s.Obs.Schemas.s_file);
                             ( "schema_version",
                               Obs.Json_emit.Int s.Obs.Schemas.s_version ) ])
                       Obs.Schemas.all) ) ]))
    else begin
      Printf.printf "polyprof %s\n" Polyprof.version;
      Printf.printf "report schemas:\n";
      List.iter
        (fun (s : Obs.Schemas.t) ->
          Printf.printf "  %-10s v%-2d %s\n" s.Obs.Schemas.s_name
            s.Obs.Schemas.s_version s.Obs.Schemas.s_file)
        Obs.Schemas.all
    end;
    0
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:
         "Print the binary version and the schema_version of every \
          machine-readable report this tree emits")
    Term.(const run $ json_flag)

let () =
  let doc =
    "data-flow/dependence profiling for structured transformations \
     (PPoPP 2019 reproduction)"
  in
  let info = Cmd.info "polyprof" ~version:Polyprof.version ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ list_cmd; run_cmd; flamegraph_cmd; table5_cmd; polly_cmd; trace_cmd;
            deps_cmd; lint_cmd; staticdep_cmd; parcheck_cmd; transform_cmd;
            autotune_cmd;
            source_cmd; telemetry_cmd; overhead_cmd; serve_cmd; submit_cmd;
            status_cmd; fetch_cmd; shutdown_cmd; perfdiff_cmd; version_cmd ]))
