.PHONY: all check test bench bench-json bench-record stream-smoke \
  staticdep-smoke obs-smoke autotune-smoke serve-smoke parcheck-smoke \
  perfdiff-smoke lint-gate lint-baseline clean

all:
	dune build @all

check: all
	dune runtest

test: check

bench:
	dune exec bench/main.exe

# codec + sharded-profiling scaling numbers -> BENCH_stream.json,
# autotuning search results -> BENCH_autotune.json
bench-json:
	dune exec bench/main.exe -- stream autotune --json

# every bench suite -> BENCH_*.json, each appended to bench/history/
# for `polyprof perfdiff` to gate against
bench-record:
	dune exec bench/main.exe -- --json --record

# quick end-to-end check of the out-of-core path: record, decode,
# profile with 2 domains
stream-smoke:
	dune exec bin/polyprof_cli.exe -- trace stats backprop --domains 2

# static dependence engine over the whole suite, validating every
# pruned profile against its unpruned twin (exits nonzero on any
# divergence), then one triangular and one witness-checked workload
# verbosely, and finally the bench JSON gated on the suite-wide pruned
# fraction staying at or above 50%
staticdep-smoke:
	dune exec bin/polyprof_cli.exe -- staticdep --prune
	dune exec bin/polyprof_cli.exe -- staticdep trisolv --prune
	dune exec bin/polyprof_cli.exe -- staticdep seidel_wd --prune
	dune exec bench/main.exe -- staticdep --json
	@pct=$$(sed -n 's/.*"suite_pruned_pct": \([0-9.]*\).*/\1/p' \
	  BENCH_staticdep.json); \
	echo "suite_pruned_pct = $$pct (gate: >= 50)"; \
	awk "BEGIN { exit !($$pct >= 50) }" \
	  || { echo "FAIL: suite pruned fraction below 50%"; exit 1; }

# autotuning beam search end to end: a tiny search on three workloads
# (the gemm interchange anchor plus the two fusion-chain winners), then
# the full-suite bench JSON gated on every shipped best schedule having
# passed the differential oracle
autotune-smoke:
	dune exec bin/polyprof_cli.exe -- autotune gemm --beam 2 --depth 1 --repeat 1
	dune exec bin/polyprof_cli.exe -- autotune mvt --beam 2 --depth 2 --repeat 1
	dune exec bin/polyprof_cli.exe -- autotune bicg --beam 2 --depth 2 --repeat 1
	dune exec bench/main.exe -- autotune --json
	@ok=$$(sed -n 's/.*"all_best_verified": \(true\|false\).*/\1/p' \
	  BENCH_autotune.json); \
	n=$$(sed -n 's/.*"workloads_improved": \([0-9]*\).*/\1/p' \
	  BENCH_autotune.json); \
	echo "workloads_improved = $$n, all_best_verified = $$ok (gate: true)"; \
	test "$$ok" = true \
	  || { echo "FAIL: an unverified schedule was shipped as best"; exit 1; }

# parallelism certifier + race sanitizer end to end: whole-suite
# verdicts with the dynamic cross-check (exits nonzero on any
# E-parcheck-unsound), the seeded racy workload must yield a race
# witness (never a certificate), and the bench JSON is gated on at
# least 5 certified workloads with zero sanitizer races on certified
# dims
parcheck-smoke:
	dune exec bin/polyprof_cli.exe -- parcheck
	@dune exec bin/polyprof_cli.exe -- parcheck par_racy \
	  | grep -q 'par-racy.c:5) depth 0: RACE' \
	  || { echo "FAIL: seeded race was not rejected with a witness"; exit 1; }
	dune exec bench/main.exe -- parcheck --json
	@cert=$$(sed -n 's/.*"certified": \([0-9]*\).*/\1/p' BENCH_parcheck.json \
	  | head -1); \
	races=$$(sed -n 's/.*"sanitizer_races_on_certified": \([0-9]*\).*/\1/p' \
	  BENCH_parcheck.json | head -1); \
	sound=$$(sed -n 's/.*"all_sound": \(true\|false\).*/\1/p' \
	  BENCH_parcheck.json); \
	echo "certified = $$cert (gate: >= 5), sanitizer races on certified =" \
	  "$$races (gate: 0), all_sound = $$sound (gate: true)"; \
	test "$$cert" -ge 5 \
	  || { echo "FAIL: fewer than 5 certified dims suite-wide"; exit 1; }; \
	test "$$races" = 0 && test "$$sound" = true \
	  || { echo "FAIL: sanitizer race on a certified dim"; exit 1; }

# lint regression gate: the sorted-unique (workload, diagnostic code)
# pairs from `polyprof lint --json` must not grow beyond the checked-in
# baseline (fixing a warning is fine; introducing a new one fails)
lint-gate:
	@dune exec bin/polyprof_cli.exe -- lint --json 2>/dev/null \
	  | awk '{ if (match($$0, /"name": "[^"]*"/)) { \
	      name = substr($$0, RSTART+9, RLENGTH-10); s = $$0; \
	      while (match(s, /"code": "[^"]*"/)) { \
	        print name, substr(s, RSTART+9, RLENGTH-10); \
	        s = substr(s, RSTART+RLENGTH); } } }' \
	  | sort -u > lint_current.txt; \
	new=$$(comm -13 test/lint_baseline.txt lint_current.txt); \
	if [ -n "$$new" ]; then \
	  echo "FAIL: new lint diagnostics not in test/lint_baseline.txt:"; \
	  echo "$$new"; exit 1; \
	else \
	  echo "lint-gate OK: no diagnostics beyond the baseline" \
	    "($$(wc -l < lint_current.txt) pairs)"; \
	fi; \
	rm -f lint_current.txt

# regenerate the baseline after intentionally changing lint output
lint-baseline:
	@dune exec bin/polyprof_cli.exe -- lint --json 2>/dev/null \
	  | awk '{ if (match($$0, /"name": "[^"]*"/)) { \
	      name = substr($$0, RSTART+9, RLENGTH-10); s = $$0; \
	      while (match(s, /"code": "[^"]*"/)) { \
	        print name, substr(s, RSTART+9, RLENGTH-10); \
	        s = substr(s, RSTART+RLENGTH); } } }' \
	  | sort -u > test/lint_baseline.txt; \
	echo "wrote test/lint_baseline.txt" \
	  "($$(wc -l < test/lint_baseline.txt) pairs)"

# self-profiling telemetry end to end: run one benchmark with spans and
# metrics on, export + validate the Chrome trace, then reproduce the
# paper's section-8 overhead table as JSON
obs-smoke:
	dune exec bin/polyprof_cli.exe -- telemetry backprop \
	  --trace-json telemetry_backprop.json \
	  --prom telemetry_backprop.prom --svg telemetry_backprop.svg
	dune exec bin/polyprof_cli.exe -- overhead backprop --json

# profiling-as-a-service end to end: start the daemon, submit the same
# job twice, assert the second submission was served from the cache
# (exactly one execution according to the live /metrics counter) with a
# byte-identical report, check crash isolation, fetch the first job's
# trace by its id and check the span tree plus the JSON log, shut down
# gracefully.  The built binary is invoked directly so the daemon pid
# is killable.
serve-smoke: all
	@set -e; \
	dir=$$(mktemp -d); \
	cli=$$(pwd)/_build/default/bin/polyprof_cli.exe; \
	sock=$$dir/polyprof.sock; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf $$dir' EXIT; \
	$$cli serve --socket $$sock --workers 2 --quiet \
	  --log-json $$dir/serve.log.jsonl & pid=$$!; \
	for i in $$(seq 1 100); do test -S $$sock && break; sleep 0.1; done; \
	test -S $$sock || { echo "FAIL: daemon never bound $$sock"; exit 1; }; \
	$$cli submit profile gemm --socket $$sock --wait > $$dir/r1.json; \
	$$cli submit profile gemm --socket $$sock --wait > $$dir/r2.json; \
	cmp $$dir/r1.json $$dir/r2.json \
	  || { echo "FAIL: cached report differs from the original"; exit 1; }; \
	$$cli submit crash gemm --socket $$sock --wait > /dev/null 2>&1 \
	  && { echo "FAIL: crash job reported success"; exit 1; } || true; \
	$$cli submit profile atax --socket $$sock --wait > /dev/null \
	  || { echo "FAIL: daemon did not survive the worker crash"; exit 1; }; \
	$$cli status --socket $$sock > /dev/null; \
	execs=$$($$cli fetch 1 --socket $$sock > /dev/null 2>&1; \
	  curl -s --unix-socket $$sock http://localhost/metrics \
	  | sed -n 's/^polyprof_serve_executions_total \([0-9]*\)$$/\1/p'); \
	echo "executions_total = $$execs (expect 3: gemm cold, crash, atax)"; \
	test "$$execs" = 3 \
	  || { echo "FAIL: cache hit re-executed the job"; exit 1; }; \
	tid=$$(curl -s --unix-socket $$sock http://localhost/jobs/1 \
	  | sed -n 's/.*"trace_id":"\([0-9a-f]\{16\}\)".*/\1/p'); \
	test -n "$$tid" || { echo "FAIL: job status has no trace id"; exit 1; }; \
	$$cli trace fetch $$tid --socket $$sock -o $$dir/trace.json; \
	for span in traceEvents queue.wait execute cache.store; do \
	  grep -q "$$span" $$dir/trace.json \
	    || { echo "FAIL: serve trace is missing $$span"; exit 1; }; \
	done; \
	$$cli shutdown --socket $$sock > /dev/null; \
	wait $$pid; \
	grep -q '"serve.job.done"' $$dir/serve.log.jsonl \
	  || { echo "FAIL: JSON log sink missed the job lifecycle"; exit 1; }; \
	test ! -e $$sock || { echo "FAIL: socket not unlinked"; exit 1; }; \
	echo "serve-smoke OK: 1 execution for 2 submissions, bit-identical reports, crash isolated, trace resolvable, graceful shutdown"

# perf-regression sentinel end to end against checked-in fixtures: a
# seeded +30% wall-clock regression (25% band) must exit nonzero, an
# identical rerun must exit zero, and --report-only always exits zero
perfdiff-smoke: all
	@set -e; \
	cli=$$(pwd)/_build/default/bin/polyprof_cli.exe; \
	$$cli perfdiff --history test/perfdiff/history \
	  test/perfdiff/ok/BENCH_smoke.json \
	  || { echo "FAIL: identical rerun flagged as a regression"; exit 1; }; \
	if $$cli perfdiff --history test/perfdiff/history \
	  test/perfdiff/regressed/BENCH_smoke.json; then \
	  echo "FAIL: seeded regression not caught"; exit 1; fi; \
	$$cli perfdiff --report-only --history test/perfdiff/history \
	  test/perfdiff/regressed/BENCH_smoke.json > /dev/null \
	  || { echo "FAIL: report-only mode exited nonzero"; exit 1; }; \
	echo "perfdiff-smoke OK: seeded regression caught, identical rerun clean, report-only soft"

clean:
	dune clean
