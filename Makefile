.PHONY: all check test bench clean

all:
	dune build @all

check: all
	dune runtest

test: check

bench:
	dune exec bench/main.exe

clean:
	dune clean
