.PHONY: all check test bench bench-json stream-smoke staticdep-smoke clean

all:
	dune build @all

check: all
	dune runtest

test: check

bench:
	dune exec bench/main.exe

# codec + sharded-profiling scaling numbers -> BENCH_stream.json
bench-json:
	dune exec bench/main.exe -- stream --json

# quick end-to-end check of the out-of-core path: record, decode,
# profile with 2 domains
stream-smoke:
	dune exec bin/polyprof_cli.exe -- trace stats backprop --domains 2

# static dependence engine over the whole suite, validating every
# pruned profile against its unpruned twin (exits nonzero on any
# divergence)
staticdep-smoke:
	dune exec bin/polyprof_cli.exe -- staticdep --prune

clean:
	dune clean
