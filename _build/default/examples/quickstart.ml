(* Quickstart: write a small program against the MiniVM HIR, run the
   whole POLY-PROF pipeline on it, and look at every kind of feedback the
   tool produces.

   Run with:  dune exec examples/quickstart.exe *)

open Vm.Hir.Dsl
module H = Vm.Hir

(* A toy kernel: a triangular 2-D nest updating a matrix in place.
   for (i = 0; i < 32; i++)
     for (j = 0; j <= i; j++)
       a[i][j] = a[i-1][j] + b[j];           // carried by i only *)
let program : H.program =
  { H.funs =
      [ H.fundef "kernel" []
          [ H.for_ ~loc:{ Vm.Prog.file = "toy.c"; line = 10 } "i" (i 1) (i 32)
              [ H.for_ ~loc:{ Vm.Prog.file = "toy.c"; line = 11 } "j" (i 0)
                  (v "i" +! i 1)
                  [ store "a"
                      ((v "i" *! i 32) +! v "j")
                      ("a".%[((v "i" -! i 1) *! i 32) +! v "j"]
                      +? "b".%[v "j"]) ] ] ];
        H.fundef "main" []
          (Workloads.Workload.init_float_array "a" (32 * 32)
          @ Workloads.Workload.init_float_array "b" 32
          @ [ H.CallS (None, "kernel", []) ]) ];
    arrays = [ ("a", 32 * 32); ("b", 32) ];
    main = "main" }

let () =
  (* one call runs: instrumentation I (CFG + loop forests), II (DDG with
     dynamic IIVs + shadow memory), folding, and the polyhedral feedback *)
  let t = Polyprof.run_hir program in

  Format.printf "== dynamic schedule tree (flame-graph data) ==@.%s@."
    (Polyprof.flamegraph_ascii ~width:40 t);

  Format.printf "== folded statement domains ==@.";
  List.iter
    (fun (s : Ddg.Depprof.stmt_info) ->
      if s.depth = 2 then begin
        Format.printf "  %s:@."
          (Format.asprintf "%a" Vm.Isa.pp_instr
             (Vm.Prog.instr_at t.Polyprof.prog s.sk.s_sid));
        List.iter
          (fun p ->
            Format.printf "    %a@."
              (Fold.pp_piece ~names:[| "i"; "j" |] ?label_names:None)
              p)
          s.s_pieces
      end)
    t.Polyprof.profile.Ddg.Depprof.stmts;

  Format.printf "@.== structured-transformation feedback ==@.";
  Polyprof.render_feedback Format.std_formatter t;

  let row = Polyprof.metrics ~name:"toy" t in
  Format.printf "@.== PolyFeat-style metrics ==@.";
  Sched.Metrics.pp_table Format.std_formatter [ row ]
