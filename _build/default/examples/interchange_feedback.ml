(* Case study I (paper §7, Table 3): backprop.

   POLY-PROF pinpoints that the dependences of the two hot 2-D kernels
   live within the first quadrant, so a loop interchange (plus scalar
   expansion of the reduction) is legal — and profitable, because the
   outer dimension has 100% stride-0/1 accesses while the inner one does
   not.  This example prints the feedback and then measures the actual
   speedup of the suggested interchange with the native kernels.

   Run with:  dune exec examples/interchange_feedback.exe *)

let () =
  let w = Workloads.Backprop.workload in
  let t = Polyprof.run_hir w.Workloads.Workload.hir in

  Format.printf "== flame graph (regions of interest) ==@.%s@."
    (Polyprof.flamegraph_ascii ~width:30 t);

  (* Table 3's per-loop-dimension statistics for the hot nests *)
  Format.printf "== per-nest feedback ==@.";
  List.iter
    (fun (n : Sched.Depanalysis.nest_info) ->
      if n.ndepth = 3 && n.nweight > 1000 then begin
        let sg = Sched.Transform.suggest t.Polyprof.analysis n in
        Format.printf "nest (%d ops): %a@." n.nweight
          Sched.Transform.pp_suggestion sg;
        Format.printf
          "  parallel per dim: [%s]   interchange suggested: %s   simd: %b@."
          (String.concat "; "
             (List.map string_of_bool (Array.to_list n.nparallel)))
          (match sg.Sched.Transform.interchange with
          | Some (a, b) -> Printf.sprintf "d%d <-> d%d" a b
          | None -> "no")
          sg.Sched.Transform.simd
      end)
    t.Polyprof.analysis.Sched.Depanalysis.nests;

  (* the static baseline fails on these kernels (aliasing), which is the
     whole point of doing the analysis dynamically *)
  Format.printf "@.== what a static tool sees ==@.";
  List.iter
    (fun kernel ->
      let v =
        Staticbase.Polly_lite.analyse_function w.Workloads.Workload.hir kernel
      in
      Format.printf "  %-22s %a@." kernel Staticbase.Polly_lite.pp_verdict v)
    [ "bpnn_layerforward"; "bpnn_adjust_weights" ];

  (* measure the transformation the feedback suggests *)
  let inst = Kernels.Backprop_kernels.create ~n1:32768 ~n2:16 in
  let time f =
    f ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 5 do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. 5.0
  in
  let lf_o = time (fun () -> Kernels.Backprop_kernels.layerforward_original inst) in
  let lf_i = time (fun () -> Kernels.Backprop_kernels.layerforward_interchanged inst) in
  let aw_o = time (fun () -> Kernels.Backprop_kernels.adjust_original inst) in
  let aw_i = time (fun () -> Kernels.Backprop_kernels.adjust_interchanged inst) in
  Format.printf "@.== measured speedups of the suggested interchange ==@.";
  Format.printf "  bpnn_layerforward  : %.2fx (paper: 5.3x)@." (lf_o /. lf_i);
  Format.printf "  bpnn_adjust_weights: %.2fx (paper: 7.8x)@." (aw_o /. aw_i)
