examples/quickstart.mli:
