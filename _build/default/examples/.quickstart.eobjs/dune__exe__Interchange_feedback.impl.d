examples/interchange_feedback.ml: Array Format Kernels List Polyprof Printf Sched Staticbase String Unix Workloads
