examples/recursion_folding.ml: Cfg Ddg Fold Format List Polyprof Printf Vm Workloads
