examples/recursion_folding.mli:
