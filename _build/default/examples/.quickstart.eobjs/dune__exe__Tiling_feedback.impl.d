examples/tiling_feedback.ml: Array Format Kernels List Polyprof Sched String Unix Workloads
