examples/offline_trace.ml: Cfg Ddg Filename Format List Sys Vm Workloads
