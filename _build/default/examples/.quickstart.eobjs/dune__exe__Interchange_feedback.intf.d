examples/interchange_feedback.mli:
