examples/quickstart.ml: Ddg Fold Format List Polyprof Sched Vm Workloads
