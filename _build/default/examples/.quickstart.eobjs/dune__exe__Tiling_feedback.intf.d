examples/tiling_feedback.mli:
