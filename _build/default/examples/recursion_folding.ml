(* Paper Fig. 3, Example 2: folding recursion into a loop dimension.

   M calls D (which calls C), then calls B; B calls C and recursively
   calls itself.  The recursive component {B} behaves like a loop whose
   canonical induction variable advances on every call/return to/from the
   header — so the representation depth stays bounded no matter how deep
   the recursion goes, unlike a calling-context tree.

   This example replays the trace step by step (like Fig. 3i): for every
   raw control event it prints the loop events of Algorithms 1/2 and the
   dynamic IIV after Algorithm 3, then shows the dynamic schedule tree
   and the folded statement domains (Fig. 3j/k).

   Run with:  dune exec examples/recursion_folding.exe *)

let () =
  let hir = Workloads.Figure3.ex2 in
  let prog = Vm.Hir.lower hir in
  let structure = Cfg.Cfg_builder.run prog in

  Format.printf "== recursive-component-set (Fig. 3g) ==@.%a@."
    Cfg.Recset.pp structure.Cfg.Cfg_builder.recset;

  (* replay: loop events + dynamic IIV per control event (Fig. 3i) *)
  let iiv = Ddg.Iiv.create () in
  let levents = Ddg.Loop_events.create structure ~main:prog.Vm.Prog.main in
  let fname fid = Vm.Prog.func_name prog fid in
  let name = function
    | Ddg.Iiv.Cblock (f, b) -> Printf.sprintf "%s%d" (fname f) b
    | Ddg.Iiv.Cloop (f, l) -> Printf.sprintf "%s.L%d" (fname f) l
    | Ddg.Iiv.Ccomp c -> Printf.sprintf "L%d" (c + 1)
  in
  let step = ref 0 in
  let show evs =
    List.iter
      (fun ev ->
        Ddg.Iiv.update iiv ev;
        incr step;
        Format.printf "%3d: %-22s %s@." !step
          (Format.asprintf "%a" Ddg.Loop_events.pp ev)
          (Ddg.Iiv.to_string ~name iiv))
      evs
  in
  show (Ddg.Loop_events.start levents);
  let callbacks =
    { Vm.Interp.on_control = (fun ev -> show (Ddg.Loop_events.feed levents ev));
      on_exec = ignore }
  in
  let (_ : Vm.Interp.stats) = Vm.Interp.run ~callbacks prog in
  show (Ddg.Loop_events.finish levents);

  (* the full pipeline: schedule tree + folded domains (Fig. 3j/k) *)
  let t = Polyprof.run_hir hir in
  Format.printf "@.== dynamic schedule tree (Fig. 3j) ==@.%s@."
    (Polyprof.flamegraph_ascii ~width:20 t);
  Format.printf "== folded domains (Fig. 3k) ==@.";
  List.iter
    (fun (s : Ddg.Depprof.stmt_info) ->
      if s.depth = 1 then begin
        Format.printf "  %s at %a:@."
          (fname (Vm.Isa.Sid.fid s.sk.s_sid))
          Vm.Isa.Sid.pp s.sk.s_sid;
        List.iter
          (fun p ->
            Format.printf "    %a@."
              (Fold.pp_piece ~names:[| "i1" |] ?label_names:None)
              p)
          s.s_pieces
      end)
    t.Polyprof.profile.Ddg.Depprof.stmts;
  Format.printf
    "@.note: the IIV depth stayed at 1 while the call stack reached depth \
     %d - recursion was folded into one loop dimension.@."
    t.Polyprof.profile.Ddg.Depprof.run_stats.Vm.Interp.max_depth
