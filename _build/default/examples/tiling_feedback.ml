(* Case study II (paper §7, Table 4): GemsFDTD.

   The exact dependence "directions" captured by the folded DDG show that
   the 3-D stencil update loops are fully parallel and tilable, so
   POLY-PROF suggests tiling every dimension (tile size 32) and marking
   the outermost loop parallel.  This example prints the feedback,
   renders the post-transformation AST, and measures the sequential part
   of the speedup with the native kernels.

   Run with:  dune exec examples/tiling_feedback.exe *)

let () =
  let w = Workloads.Gems_fdtd.workload in
  let t = Polyprof.run_hir w.Workloads.Workload.hir in

  Format.printf "== feedback for the update kernels ==@.";
  Polyprof.render_feedback Format.std_formatter t;

  Format.printf "@.== tilability summary (Table 4 shape) ==@.";
  List.iter
    (fun (n : Sched.Depanalysis.nest_info) ->
      if n.ndepth >= 3 then
        Format.printf
          "  nest depth %d (%6d ops): tilable band width %d, parallel dims \
           [%s]@."
          n.ndepth n.nweight
          (Sched.Depanalysis.max_band_width n)
          (String.concat "; "
             (List.map string_of_bool (Array.to_list n.nparallel))))
    t.Polyprof.analysis.Sched.Depanalysis.nests;

  let inst = Kernels.Gems_kernels.create ~n:256 in
  let time f =
    f ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 3 do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. 3.0
  in
  let orig = time (fun () -> Kernels.Gems_kernels.update_original inst) in
  let tiled = time (fun () -> Kernels.Gems_kernels.update_tiled ~tile:12 inst) in
  Format.printf
    "@.== measured speedup of the suggested tiling (sequential part) ==@.\
    \  update kernel: %.2fx (paper: 1.9x-2.6x including the 24-thread \
     wavefront)@."
    (orig /. tiled)
