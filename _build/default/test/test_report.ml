(* Tests for the reporting layer: flame graphs, text tables. *)

let pipeline = lazy (Polyprof.run_hir Workloads.Backprop.workload.Workloads.Workload.hir)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_svg_wellformed () =
  let t = Lazy.force pipeline in
  let svg = Polyprof.flamegraph_svg t in
  Alcotest.(check bool) "starts with <svg" true
    (String.sub svg 0 4 = "<svg");
  Alcotest.(check bool) "ends with </svg>" true (contains ~needle:"</svg>" svg);
  Alcotest.(check bool) "has rects" true (contains ~needle:"<rect" svg);
  Alcotest.(check bool) "labels use function names" true
    (contains ~needle:"bpnn_layerforward" svg)

let test_svg_colors () =
  let t = Lazy.force pipeline in
  let svg = Polyprof.flamegraph_svg t in
  (* parallel loops are green, blacklisted (squash) regions gray *)
  Alcotest.(check bool) "parallel color present" true
    (contains ~needle:"#7bc96f" svg);
  Alcotest.(check bool) "gray (blacklisted/non-affine) present" true
    (contains ~needle:"#bbbbbb" svg)

let test_svg_escaping () =
  let tree = Ddg.Sched_tree.create () in
  let svg =
    Report.Flamegraph.to_svg ~name:(fun _ -> "a<b>&\"c\"") tree
  in
  Alcotest.(check bool) "no raw < in labels" true
    (not (contains ~needle:"a<b>" svg))

let test_ascii_flamegraph () =
  let t = Lazy.force pipeline in
  let txt = Polyprof.flamegraph_ascii ~width:20 t in
  Alcotest.(check bool) "root line shows 100%" true
    (contains ~needle:"100.0%" txt);
  Alcotest.(check bool) "kernels appear" true
    (contains ~needle:"bpnn_adjust_weights" txt)

let test_write_svg_file () =
  let t = Lazy.force pipeline in
  let path = Filename.temp_file "polyprof" ".svg" in
  let annot = Report.Flamegraph.annot_of_analysis t.Polyprof.prog t.Polyprof.analysis in
  Report.Flamegraph.write_svg ~path ~annot ~name:(Polyprof.ctx_name t)
    t.Polyprof.profile.Ddg.Depprof.stree;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-trivial file" true (len > 1000)

let test_texttable_alignment () =
  let out =
    Report.Texttable.render ~header:[ "a"; "bb" ]
      [ [ "xxx"; "y" ]; [ "1"; "22222" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (* header + separator + two rows (+ trailing empty) *)
  Alcotest.(check int) "line count" 5 (List.length lines);
  (* all non-empty lines have the same column positions: every row is at
     least as wide as its content and columns align on the widest cell *)
  Alcotest.(check bool) "separator present" true
    (contains ~needle:"---" (List.nth lines 1))

let test_texttable_ragged_rows () =
  let out = Report.Texttable.render ~header:[ "h1"; "h2"; "h3" ] [ [ "only-one" ] ] in
  Alcotest.(check bool) "ragged rows tolerated" true (String.length out > 0)

let () =
  Alcotest.run "report"
    [ ( "flamegraph",
        [ Alcotest.test_case "SVG well-formed" `Quick test_svg_wellformed;
          Alcotest.test_case "annotation colors" `Quick test_svg_colors;
          Alcotest.test_case "XML escaping" `Quick test_svg_escaping;
          Alcotest.test_case "ASCII rendering" `Quick test_ascii_flamegraph;
          Alcotest.test_case "file output" `Quick test_write_svg_file ] );
      ( "tables",
        [ Alcotest.test_case "alignment" `Quick test_texttable_alignment;
          Alcotest.test_case "ragged rows" `Quick test_texttable_ragged_rows ] )
    ]
