(* Tests for the feedback back-end: direction vectors, parallelism,
   permutable bands, skewing, interchange suggestions. *)

open Vm.Hir.Dsl
module H = Vm.Hir
module D = Sched.Depanalysis

let analyse hir =
  let prog = H.lower hir in
  let structure = Cfg.Cfg_builder.run prog in
  let res = Ddg.Depprof.profile prog ~structure in
  (prog, res, D.analyse prog res)

let simple_main body arrays : H.program =
  { H.funs = [ H.fundef "main" [] body ]; arrays; main = "main" }

let float_init name n =
  H.for_ (name ^ "i") (i 0) (i n)
    [ H.Store (Base name +! v (name ^ "i"), Itof ((v (name ^ "i") *! v (name ^ "i")) %! i 37) /? f 3.0) ]

(* a[i][j] = a[i-1][j] + 1: carried by i, parallel in j *)
let outer_carried =
  simple_main
    [ float_init "m" 100;
      H.for_ "x" (i 1) (i 10)
        [ H.for_ "y" (i 0) (i 10)
            [ store "m" ((v "x" *! i 10) +! v "y")
                ("m".%[((v "x" -! i 1) *! i 10) +! v "y"] +? f 1.0) ] ] ]
    [ ("m", 100) ]

let find_nest (a : D.t) depth =
  List.find
    (fun (n : D.nest_info) -> n.ndepth = depth && n.nweight > 50)
    a.nests

let test_outer_carried_parallelism () =
  let _, _, a = analyse outer_carried in
  let n = find_nest a 2 in
  Alcotest.(check bool) "x sequential" false n.nparallel.(0);
  Alcotest.(check bool) "y parallel" true n.nparallel.(1)

let test_uniform_dep_direction () =
  let _, _, a = analyse outer_carried in
  (* the a[i-1][j] -> a[i][j] memory dep has distance (1, 0) *)
  let found =
    List.exists
      (fun (d : D.dep_ext) ->
        d.common = 2
        && d.dists = [| Some 1; Some 0 |]
        && d.dirs = [| D.Dpos; D.Dzero |])
      a.deps
  in
  Alcotest.(check bool) "(1,0) distance vector" true found

let test_band_nonneg_is_permutable () =
  let _, _, a = analyse outer_carried in
  let n = find_nest a 2 in
  (* (1,0) deps keep the band fully permutable: tiling depth 2 *)
  Alcotest.(check int) "band width 2" 2 (D.max_band_width n);
  Alcotest.(check bool) "no skew needed" false (D.nest_uses_skew n)

(* wavefront: a[i][j] = a[i-1][j+1] + a[i-1][j]: distance (1,-1), (1,0) *)
let wavefront =
  simple_main
    [ float_init "w" 144;
      H.for_ "x" (i 1) (i 11)
        [ H.for_ "y" (i 0) (i 11)
            [ store "w" ((v "x" *! i 12) +! v "y")
                ("w".%[((v "x" -! i 1) *! i 12) +! (v "y" +! i 1)]
                +? "w".%[((v "x" -! i 1) *! i 12) +! v "y"]) ] ] ]
    [ ("w", 144) ]

let test_skew_enables_band () =
  let _, _, a = analyse wavefront in
  let n = find_nest a 2 in
  Alcotest.(check int) "band width 2 after skew" 2 (D.max_band_width n);
  Alcotest.(check bool) "skew used" true (D.nest_uses_skew n);
  (* skew factor 1 suffices for (1,-1) *)
  let has_skew_1 =
    List.exists
      (fun (b : D.band) -> List.exists (fun (_, _, f) -> f = 1) b.b_skews)
      n.bands
  in
  Alcotest.(check bool) "factor 1" true has_skew_1

let test_direction_lattice () =
  Alcotest.(check bool) "0 can be zero" true (D.dir_can_be_zero D.Dzero);
  Alcotest.(check bool) "+ cannot" false (D.dir_can_be_zero D.Dpos);
  Alcotest.(check bool) "0+ can be nonzero" true (D.dir_can_be_nonzero D.Dnonneg);
  Alcotest.(check bool) "- negative" true (D.dir_can_be_negative D.Dneg);
  Alcotest.(check bool) "* negative" true (D.dir_can_be_negative D.Dany);
  Alcotest.(check bool) "+ not negative" false (D.dir_can_be_negative D.Dpos)

(* interchange: t[k][j] accessed with j outer: inner stride is the row
   size, outer stride 1 (the layerforward shape) *)
let transposed_access =
  simple_main
    [ float_init "t" 256;
      H.for_ "jj" (i 0) (i 16)
        [ H.Let ("s", f 0.0);
          H.for_ "kk" (i 0) (i 16)
            [ H.Let ("s", v "s" +? "t".%[(v "kk" *! i 16) +! v "jj"]) ];
          store "out" (v "jj") (v "s") ] ]
    [ ("t", 256); ("out", 16) ]

let test_interchange_suggested () =
  let _, _, a = analyse transposed_access in
  let n = find_nest a 2 in
  let sg = Sched.Transform.suggest a n in
  (match sg.Sched.Transform.interchange with
  | Some (from_dim, to_dim) ->
      Alcotest.(check int) "bring the outer dim innermost" 1 from_dim;
      Alcotest.(check int) "swap with dim 2" 2 to_dim
  | None -> Alcotest.fail "interchange expected");
  (* stride profile: outer dim has 100% stride-0/1, inner has 0 *)
  Alcotest.(check bool) "outer profile better" true
    (sg.Sched.Transform.stride01.(0) > sg.Sched.Transform.stride01.(1))

let test_no_interchange_when_already_good () =
  let good =
    simple_main
      [ float_init "g" 256;
        H.Let ("s", f 0.0);
        H.for_ "a" (i 0) (i 16)
          [ H.for_ "b" (i 0) (i 16)
              [ H.Let ("s", v "s" +? "g".%[(v "a" *! i 16) +! v "b"]) ] ] ]
      [ ("g", 256) ]
  in
  let _, _, an = analyse good in
  let n = find_nest an 2 in
  let sg = Sched.Transform.suggest an n in
  Alcotest.(check bool) "no interchange" true
    (sg.Sched.Transform.interchange = None)

let test_wavefront_skew_suggested () =
  (* the nw shape: deps (1,0), (0,1), (1,1) — band fully permutable, no
     dim parallel, so the suggestion skews to expose the wavefront *)
  let dp =
    simple_main
      [ float_init "s" 169;
        H.for_ "x" (i 1) (i 12)
          [ H.for_ "y" (i 1) (i 12)
              [ store "s" ((v "x" *! i 13) +! v "y")
                  ("s".%[((v "x" -! i 1) *! i 13) +! v "y"]
                  +? ("s".%[(v "x" *! i 13) +! (v "y" -! i 1)]
                     +? "s".%[((v "x" -! i 1) *! i 13) +! (v "y" -! i 1)])) ] ] ]
      [ ("s", 169) ]
  in
  let _, _, a = analyse dp in
  let n = find_nest a 2 in
  Alcotest.(check bool) "no parallel dim" false
    (Array.exists Fun.id n.nparallel);
  Alcotest.(check int) "still a 2-D band" 2 (D.max_band_width n);
  let sg = Sched.Transform.suggest a n in
  Alcotest.(check bool) "skew suggested for wavefront parallelism" true
    sg.Sched.Transform.uses_skew;
  Alcotest.(check bool) "a skew step is in the sequence" true
    (List.exists
       (function Sched.Transform.Skew _ -> true | _ -> false)
       sg.Sched.Transform.steps)

let test_reduction_does_not_block_band () =
  (* a scalar reduction chain spanning the nest must not prevent tiling *)
  let red =
    simple_main
      [ float_init "r" 100;
        H.Let ("acc", f 0.0);
        H.for_ "x" (i 0) (i 10)
          [ H.for_ "y" (i 0) (i 10)
              [ H.Let ("acc", v "acc" +? "r".%[(v "x" *! i 10) +! v "y"]) ] ];
        store "r" (i 0) (v "acc") ]
      [ ("r", 100) ]
  in
  let _, _, a = analyse red in
  let n = find_nest a 2 in
  Alcotest.(check int) "2-D band despite the reduction" 2 (D.max_band_width n);
  Alcotest.(check bool) "no skew for a reduction" false (D.nest_uses_skew n)

let test_parallel_loop_info () =
  let _, _, a = analyse outer_carried in
  (* the init loop is parallel; the x loop is not *)
  let top = List.filter (fun (l : D.loop_info) -> l.ldepth = 1) a.loops in
  Alcotest.(check int) "two top-level loops" 2 (List.length top);
  Alcotest.(check bool) "one of them sequential" true
    (List.exists (fun (l : D.loop_info) -> not l.parallel) top);
  Alcotest.(check bool) "one of them parallel" true
    (List.exists (fun (l : D.loop_info) -> l.parallel) top)

let test_header_locs () =
  let hir =
    simple_main
      [ H.for_ ~loc:(Workloads.Workload.loc "file.c" 42) "q" (i 0) (i 4)
          [ store "z" (v "q") (v "q") ] ]
      [ ("z", 4) ]
  in
  let _, _, a = analyse hir in
  let l = List.find (fun (l : D.loop_info) -> l.ldepth = 1) a.loops in
  match l.header_loc with
  | Some loc ->
      Alcotest.(check string) "file" "file.c" loc.Vm.Prog.file;
      Alcotest.(check int) "line" 42 loc.Vm.Prog.line
  | None -> Alcotest.fail "loc lost"

let test_feedback_render () =
  let prog, res, a = analyse outer_carried in
  let fb = Sched.Feedback.make prog res a in
  Alcotest.(check bool) "has regions" true (fb.Sched.Feedback.regions <> []);
  let out = Format.asprintf "%a" (Sched.Feedback.render ?fname:None) fb in
  Alcotest.(check bool) "mentions parallel dims" true
    (String.length out > 50)

let test_domain_params () =
  let dp = Sched.Domain_params.create ~threshold:100 ~slack:20 () in
  Alcotest.(check string) "small constants stay" "7" (Sched.Domain_params.abstract dp 7);
  Alcotest.(check string) "large becomes n0" "n0" (Sched.Domain_params.abstract dp 1024);
  Alcotest.(check string) "nearby reuses n0" "(n0 + 6)"
    (Sched.Domain_params.abstract dp 1030);
  Alcotest.(check string) "far away gets n1" "n1" (Sched.Domain_params.abstract dp 4096);
  Alcotest.(check int) "two parameters" 2 (List.length (Sched.Domain_params.params dp))

let () =
  Alcotest.run "sched"
    [ ( "dependence analysis",
        [ Alcotest.test_case "outer-carried parallelism" `Quick
            test_outer_carried_parallelism;
          Alcotest.test_case "uniform distance vectors" `Quick
            test_uniform_dep_direction;
          Alcotest.test_case "direction lattice" `Quick test_direction_lattice;
          Alcotest.test_case "loop info" `Quick test_parallel_loop_info;
          Alcotest.test_case "header locations" `Quick test_header_locs ] );
      ( "bands & skewing",
        [ Alcotest.test_case "non-negative band permutable" `Quick
            test_band_nonneg_is_permutable;
          Alcotest.test_case "skew enables tiling" `Quick test_skew_enables_band;
          Alcotest.test_case "wavefront skew for parallelism" `Quick
            test_wavefront_skew_suggested;
          Alcotest.test_case "reductions do not block bands" `Quick
            test_reduction_does_not_block_band ] );
      ( "transformations",
        [ Alcotest.test_case "interchange suggested" `Quick
            test_interchange_suggested;
          Alcotest.test_case "no gratuitous interchange" `Quick
            test_no_interchange_when_already_good;
          Alcotest.test_case "feedback rendering" `Quick test_feedback_render;
          Alcotest.test_case "domain parameterisation" `Quick test_domain_params
        ] ) ]
