(* Tests for the exact rational simplex, including cross-validation
   against Fourier-Motzkin bounds on random low-dimensional polyhedra. *)

module Rat = Pp_util.Rat
module A = Minisl.Affine
module C = Minisl.Constr
module P = Minisl.Polyhedron
module Lp = Minisl.Lp

let box2 a b =
  P.make 2
    [ C.make Ge [| 1; 0 |] 0; C.make Ge [| -1; 0 |] a;
      C.make Ge [| 0; 1 |] 0; C.make Ge [| 0; -1 |] b ]

let triangle n =
  P.make 2
    [ C.make Ge [| 1; 0 |] 0; C.make Ge [| -1; 0 |] n;
      C.make Ge [| 0; 1 |] 0; C.make Ge [| 1; -1 |] 0 ]

let check_opt name expected = function
  | Lp.Opt v -> Alcotest.(check bool) name true (Rat.equal v (Rat.of_int expected))
  | Lp.Unbounded -> Alcotest.fail (name ^ ": unbounded")
  | Lp.Infeasible -> Alcotest.fail (name ^ ": infeasible")

let test_box () =
  let p = box2 5 7 in
  check_opt "max x" 5 (Lp.maximize p (A.of_int_coeffs [| 1; 0 |] 0));
  check_opt "max x+y" 12 (Lp.maximize p (A.of_int_coeffs [| 1; 1 |] 0));
  check_opt "min x-y" (-7) (Lp.minimize p (A.of_int_coeffs [| 1; -1 |] 0));
  check_opt "constant offset" 15 (Lp.maximize p (A.of_int_coeffs [| 1; 1 |] 3))

let test_triangle () =
  let p = triangle 6 in
  check_opt "max j" 6 (Lp.maximize p (A.of_int_coeffs [| 0; 1 |] 0));
  check_opt "max 2j - i" 6 (Lp.maximize p (A.of_int_coeffs [| -1; 2 |] 0));
  check_opt "min i - j" 0 (Lp.minimize p (A.of_int_coeffs [| 1; -1 |] 0))

let test_negative_orthant () =
  (* a polyhedron entirely in negative coordinates: phase 1 required *)
  let p =
    P.make 1 [ C.make Ge [| -1 |] (-3); C.make Ge [| 1 |] 10 ]
    (* -x - 3 >= 0 (x <= -3) and x + 10 >= 0 (x >= -10) *)
  in
  check_opt "max x" (-3) (Lp.maximize p (A.of_int_coeffs [| 1 |] 0));
  check_opt "min x" (-10) (Lp.minimize p (A.of_int_coeffs [| 1 |] 0))

let test_unbounded () =
  let half = P.make 1 [ C.make Ge [| 1 |] 0 ] in
  Alcotest.(check bool) "max x unbounded" true
    (Lp.maximize half (A.of_int_coeffs [| 1 |] 0) = Lp.Unbounded);
  check_opt "min x" 0 (Lp.minimize half (A.of_int_coeffs [| 1 |] 0))

let test_infeasible () =
  let p = P.make 1 [ C.make Ge [| 1 |] (-5); C.make Ge [| -1 |] 2 ] in
  (* x >= 5 and x <= 2 *)
  Alcotest.(check bool) "infeasible" true
    (Lp.maximize p (A.of_int_coeffs [| 1 |] 0) = Lp.Infeasible)

let test_equalities () =
  (* x + y = 10, 0 <= x <= 4 *)
  let p =
    P.make 2
      [ C.make Eq [| 1; 1 |] (-10); C.make Ge [| 1; 0 |] 0;
        C.make Ge [| -1; 0 |] 4 ]
  in
  check_opt "max y" 10 (Lp.maximize p (A.of_int_coeffs [| 0; 1 |] 0));
  check_opt "min y" 6 (Lp.minimize p (A.of_int_coeffs [| 0; 1 |] 0))

let test_rational_vertex () =
  (* 2x + 3y <= 12, 3x + 2y <= 12, x,y >= 0: max x+y at (12/5, 12/5) *)
  let p =
    P.make 2
      [ C.make Ge [| -2; -3 |] 12; C.make Ge [| -3; -2 |] 12;
        C.make Ge [| 1; 0 |] 0; C.make Ge [| 0; 1 |] 0 ]
  in
  match Lp.maximize p (A.of_int_coeffs [| 1; 1 |] 0) with
  | Lp.Opt v ->
      Alcotest.(check bool) "24/5" true (Rat.equal v (Rat.make 24 5))
  | _ -> Alcotest.fail "expected optimum"

let test_high_dim_box () =
  (* 8-dimensional box: far beyond the FM limit *)
  let n = 8 in
  let cons = ref [] in
  for d = 0 to n - 1 do
    let up = Array.make n 0 and dn = Array.make n 0 in
    up.(d) <- 1;
    dn.(d) <- -1;
    cons := C.make Ge up 0 :: C.make Ge dn (d + 1) :: !cons
  done;
  let p = P.make n !cons in
  let all_ones = A.of_int_coeffs (Array.make n 1) 0 in
  check_opt "sum of maxes" 36 (Lp.maximize p all_ones);
  check_opt "min is 0" 0 (Lp.minimize p all_ones)

(* cross-validate against FM-based bounds on random 2-3 dim polyhedra *)
let prop_lp_equals_fm =
  let gen =
    QCheck.Gen.(
      let* dim = int_range 2 3 in
      let* ncons = int_range 2 5 in
      let* rows =
        list_size (return ncons)
          (pair (list_size (return dim) (int_range (-3) 3)) (int_range 0 9))
      in
      let* objc = list_size (return dim) (int_range (-3) 3) in
      return (dim, rows, objc))
  in
  QCheck.Test.make ~name:"LP matches Fourier-Motzkin" ~count:300
    (QCheck.make gen) (fun (dim, rows, objc) ->
      (* anchor with a box so most instances are feasible + bounded *)
      let base = ref [] in
      for d = 0 to dim - 1 do
        let up = Array.make dim 0 and dn = Array.make dim 0 in
        up.(d) <- 1;
        dn.(d) <- -1;
        base := C.make Ge up 0 :: C.make Ge dn 7 :: !base
      done;
      let cons =
        List.map (fun (v, c) -> C.make Ge (Array.of_list v) c) rows @ !base
      in
      let p = P.make dim cons in
      let obj = A.of_int_coeffs (Array.of_list objc) 0 in
      if P.is_empty p then
        Lp.maximize p obj = Lp.Infeasible
      else begin
        let fm_lo, fm_hi = P.bounds p obj in
        let lp_lo, lp_hi = Lp.bounds p obj in
        let agree a b =
          match (a, b) with
          | Some x, Some y -> Rat.equal x y
          | None, None -> true
          | _ -> false
        in
        agree fm_lo lp_lo && agree fm_hi lp_hi
      end)

let () =
  Alcotest.run "lp"
    [ ( "simplex",
        [ Alcotest.test_case "box" `Quick test_box;
          Alcotest.test_case "triangle" `Quick test_triangle;
          Alcotest.test_case "negative orthant (phase 1)" `Quick
            test_negative_orthant;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "equalities" `Quick test_equalities;
          Alcotest.test_case "rational vertex" `Quick test_rational_vertex;
          Alcotest.test_case "8-D box" `Quick test_high_dim_box ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_lp_equals_fm ]) ]
