(* Tests for the dynamic interprocedural iteration vector (Algorithm 3)
   and the schedule tree / CCT (paper §4, Figs. 3-5). *)

module LE = Ddg.Loop_events
module Iiv = Ddg.Iiv

(* replay a program, checking IIV invariants at every executed
   instruction: depth = number of live loops, and the (static-index
   decorated) schedule position grows lexicographically *)
let replay hir =
  Iiv.reset_intern_table ();
  let prog = Vm.Hir.lower hir in
  let structure = Cfg.Cfg_builder.run prog in
  let st = LE.create structure ~main:prog.Vm.Prog.main in
  let iiv = Iiv.create () in
  let stree = Ddg.Sched_tree.create () in
  let observations = ref [] in
  let apply evs =
    List.iter
      (fun ev ->
        Iiv.update iiv ev;
        Alcotest.(check int)
          "IIV depth = live loop depth" (LE.live_depth st) (Iiv.depth iiv))
      evs
  in
  apply (LE.start st);
  let callbacks =
    { Vm.Interp.on_control = (fun ev -> apply (LE.feed st ev));
      on_exec =
        (fun _ ->
          let ctx = Iiv.context iiv in
          let ctx_key = Iiv.context_id iiv in
          Ddg.Sched_tree.record stree ~ctx_key ctx ~weight:1;
          let kelly = Ddg.Sched_tree.kelly_path stree ctx in
          (* schedule position: interleave static indices and ivs *)
          let coords = Iiv.coords iiv in
          let pos =
            List.concat
              (List.mapi
                 (fun k (idx, _) ->
                   if k < Array.length coords then [ idx; coords.(k) ]
                   else [ idx ])
                 kelly)
          in
          observations := pos :: !observations)
      }
  in
  let (_ : Vm.Interp.stats) = Vm.Interp.run ~callbacks prog in
  apply (LE.finish st);
  (stree, List.rev !observations)

(* Not fully lexicographic across all statements (kelly interleaving is
   per-leaf), but within one leaf the iv vectors must increase. *)
let test_coords_increase_within_context () =
  Iiv.reset_intern_table ();
  let open Vm.Hir.Dsl in
  let module H = Vm.Hir in
  let hir =
    { H.funs =
        [ H.fundef "main" []
            [ H.for_ "a" (i 0) (i 3)
                [ H.for_ "b" (i 0) (i 4) [ store "out" (i 0) (v "b") ] ] ] ];
      arrays = [ ("out", 1) ];
      main = "main" }
  in
  let prog = H.lower hir in
  let structure = Cfg.Cfg_builder.run prog in
  let st = LE.create structure ~main:prog.Vm.Prog.main in
  let iiv = Iiv.create () in
  let per_ctx : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let apply evs = List.iter (Iiv.update iiv) evs in
  apply (LE.start st);
  let callbacks =
    { Vm.Interp.on_control = (fun ev -> apply (LE.feed st ev));
      on_exec =
        (fun _ ->
          let ctx = Iiv.context_id iiv in
          let c = Iiv.coords iiv in
          (match Hashtbl.find_opt per_ctx ctx with
          | Some prev ->
              Alcotest.(check bool)
                "coords non-decreasing per context" true
                (Pp_util.Vecint.compare_lex prev c <= 0)
          | None -> ());
          Hashtbl.replace per_ctx ctx c) }
  in
  let (_ : Vm.Interp.stats) = Vm.Interp.run ~callbacks prog in
  ()

let test_fig3_ex1_depth_two () =
  let stree, _ = replay Workloads.Figure3.ex1 in
  (* the interprocedural nest makes the tree 2 loop-levels deep *)
  let rec max_loop_depth n acc =
    let acc = if Ddg.Sched_tree.is_loop_node n then acc + 1 else acc in
    List.fold_left
      (fun m c -> max m (max_loop_depth c acc))
      acc
      (Ddg.Sched_tree.children_in_order n)
  in
  Alcotest.(check int) "2-deep interprocedural nest" 2
    (max_loop_depth (Ddg.Sched_tree.root stree) 0)

let test_fig3_ex2_recursion_depth_one () =
  let stree, _ = replay Workloads.Figure3.ex2 in
  let rec max_loop_depth n acc =
    let acc = if Ddg.Sched_tree.is_loop_node n then acc + 1 else acc in
    List.fold_left
      (fun m c -> max m (max_loop_depth c acc))
      acc
      (Ddg.Sched_tree.children_in_order n)
  in
  (* the recursion folds into ONE loop dimension *)
  Alcotest.(check int) "recursion folds to depth 1" 1
    (max_loop_depth (Ddg.Sched_tree.root stree) 0)

let test_schedule_tree_weights () =
  let stree, obs = replay Workloads.Figure3.ex2 in
  Alcotest.(check int) "total weight = executed instructions"
    (List.length obs)
    (Ddg.Sched_tree.total_weight (Ddg.Sched_tree.root stree))

let test_kelly_static_indices () =
  let stree, _ = replay Workloads.Figure3.ex1 in
  (* siblings get distinct, dense static indices in first-seen order *)
  let rec check n =
    let children = Ddg.Sched_tree.children_in_order n in
    List.iteri
      (fun k c ->
        Alcotest.(check int) "dense first-seen numbering" k
          c.Ddg.Sched_tree.static_index)
      children;
    List.iter check children
  in
  check (Ddg.Sched_tree.root stree)

let test_cct_grows_with_recursion () =
  (* contrast of Fig. 5a: CCT depth ~ recursion depth, schedule tree
     depth ~ loop depth *)
  let prog = Vm.Hir.lower Workloads.Figure3.ex2 in
  let cct = Ddg.Cct.create ~main:prog.Vm.Prog.main in
  let callbacks =
    { Vm.Interp.on_control = (fun ev -> Ddg.Cct.on_control cct ev);
      on_exec = (fun _ -> Ddg.Cct.add_weight cct 1) }
  in
  let (_ : Vm.Interp.stats) = Vm.Interp.run ~callbacks prog in
  Alcotest.(check bool) "CCT depth >= recursion depth" true
    (Ddg.Cct.max_depth cct >= 4);
  Alcotest.(check bool) "CCT has a node per context" true
    (Ddg.Cct.n_nodes cct >= 7);
  Alcotest.(check bool) "weights recorded" true
    (Ddg.Cct.total_weight (Ddg.Cct.root cct) > 0)

(* Fig. 4: Kelly's mapping for a fused vs a fissioned nest *)
let test_fig4_kelly_fused_vs_fissioned () =
  let open Vm.Hir.Dsl in
  let module H = Vm.Hir in
  let fused =
    { H.funs =
        [ H.fundef "main" []
            [ H.for_ "i" (i 0) (i 3)
                [ H.for_ "j" (i 0) (i 3)
                    [ store "a" ((v "i" *! i 3) +! v "j") (i 1);  (* S *)
                      store "b" ((v "i" *! i 3) +! v "j") (i 2)   (* T *) ] ] ] ];
      arrays = [ ("a", 9); ("b", 9) ];
      main = "main" }
  in
  let stree, _ = replay fused in
  (* in the fused schedule S and T share both loop dimensions: the tree
     has exactly one loop at each of the two levels *)
  let root = Ddg.Sched_tree.root stree in
  let loops_at n =
    List.filter Ddg.Sched_tree.is_loop_node (Ddg.Sched_tree.children_in_order n)
  in
  (match loops_at root with
  | [ li ] -> (
      match loops_at li with
      | [ _lj ] -> ()
      | l -> Alcotest.fail (Printf.sprintf "fused: %d inner loops" (List.length l)))
  | l -> Alcotest.fail (Printf.sprintf "fused: %d outer loops" (List.length l)));
  let fissioned =
    { H.funs =
        [ H.fundef "main" []
            [ H.for_ "i" (i 0) (i 3)
                [ H.for_ "j" (i 0) (i 3)
                    [ store "a" ((v "i" *! i 3) +! v "j") (i 1) ] ];
              H.for_ "i2" (i 0) (i 3)
                [ H.for_ "j2" (i 0) (i 3)
                    [ store "b" ((v "i2" *! i 3) +! v "j2") (i 2) ] ] ] ];
      arrays = [ ("a", 9); ("b", 9) ];
      main = "main" }
  in
  let stree2, _ = replay fissioned in
  (* after fission there are two top-level loops with distinct static
     indices: the lexicographic prefix [0,...] < [1,...] of Fig. 4c *)
  (match loops_at (Ddg.Sched_tree.root stree2) with
  | [ l1; l2 ] ->
      Alcotest.(check bool) "distinct static indices" true
        (l1.Ddg.Sched_tree.static_index <> l2.Ddg.Sched_tree.static_index)
  | l -> Alcotest.fail (Printf.sprintf "fissioned: %d outer loops" (List.length l)))

let test_rendering () =
  Iiv.reset_intern_table ();
  let iiv = Iiv.create () in
  (* build (f0.b0) then enter a loop and iterate: Fig. 3d notation *)
  Iiv.update iiv (LE.Block (0, 0));
  Alcotest.(check string) "statement ctx" "(f0.b0)" (Iiv.to_string iiv);
  Iiv.update iiv (LE.Call_push (1, 0));
  Alcotest.(check string) "call pushes" "(f0.b0/f1.b0)" (Iiv.to_string iiv)

let () =
  Alcotest.run "iiv"
    [ ( "algorithm 3",
        [ Alcotest.test_case "coords increase per context" `Quick
            test_coords_increase_within_context;
          Alcotest.test_case "interprocedural depth (Ex. 1)" `Quick
            test_fig3_ex1_depth_two;
          Alcotest.test_case "recursion folds (Ex. 2)" `Quick
            test_fig3_ex2_recursion_depth_one;
          Alcotest.test_case "rendering" `Quick test_rendering;
          Alcotest.test_case "Kelly mapping, fused vs fissioned (Fig. 4)"
            `Quick test_fig4_kelly_fused_vs_fissioned ] );
      ( "schedule tree",
        [ Alcotest.test_case "weights" `Quick test_schedule_tree_weights;
          Alcotest.test_case "Kelly static indices" `Quick
            test_kelly_static_indices ] );
      ( "calling-context tree",
        [ Alcotest.test_case "CCT grows with recursion (Fig. 5a)" `Quick
            test_cct_grows_with_recursion ] ) ]
