(* Tests for loop-event generation (Algorithms 1 & 2): well-formedness
   invariants over real traces, plus the Fig. 3 examples. *)

module LE = Ddg.Loop_events

let collect hir =
  let prog = Vm.Hir.lower hir in
  let structure = Cfg.Cfg_builder.run prog in
  let st = LE.create structure ~main:prog.Vm.Prog.main in
  let events = ref [] in
  let push evs = events := List.rev_append evs !events in
  push (LE.start st);
  let callbacks =
    { Vm.Interp.on_control = (fun ev -> push (LE.feed st ev)); on_exec = ignore }
  in
  let (_ : Vm.Interp.stats) = Vm.Interp.run ~callbacks prog in
  push (LE.finish st);
  Alcotest.(check int) "all loops exited at the end" 0 (LE.live_depth st);
  (prog, List.rev !events)

(* well-formedness: entries and exits balance like parentheses, iterate
   only fires on the innermost live loop *)
let check_wellformed events =
  let stack = ref [] in
  let key = LE.loop_name in
  List.iter
    (fun ev ->
      match ev with
      | LE.Enter (l, _, _) -> stack := key l :: !stack
      | LE.Exit (l, _, _) -> (
          match !stack with
          | top :: rest when top = key l -> stack := rest
          | _ -> Alcotest.fail "exit of a non-innermost loop")
      | LE.Iterate (l, _, _) -> (
          match !stack with
          | top :: _ when top = key l -> ()
          | _ -> Alcotest.fail "iterate of a non-innermost loop")
      | LE.Block _ | LE.Call_push _ | LE.Ret_pop _ -> ())
    events;
  Alcotest.(check (list string)) "balanced" [] !stack

let count p events = List.length (List.filter p events)

let test_simple_loop () =
  let open Vm.Hir.Dsl in
  let module H = Vm.Hir in
  let _, evs =
    collect
      { H.funs =
          [ H.fundef "main" [] [ H.for_ "k" (i 0) (i 5) [ H.Let ("x", v "k") ] ] ];
        arrays = [];
        main = "main" }
  in
  check_wellformed evs;
  Alcotest.(check int) "one entry" 1
    (count (function LE.Enter _ -> true | _ -> false) evs);
  (* 5 body iterations: I fires on each back edge, including the final
     failing check *)
  Alcotest.(check int) "five iterates" 5
    (count (function LE.Iterate _ -> true | _ -> false) evs);
  Alcotest.(check int) "one exit" 1
    (count (function LE.Exit _ -> true | _ -> false) evs)

let test_nested_loops () =
  let open Vm.Hir.Dsl in
  let module H = Vm.Hir in
  let _, evs =
    collect
      { H.funs =
          [ H.fundef "main" []
              [ H.for_ "a" (i 0) (i 3)
                  [ H.for_ "b" (i 0) (i 4) [ H.Let ("x", v "b") ] ] ] ];
        arrays = [];
        main = "main" }
  in
  check_wellformed evs;
  (* the inner loop is entered and exited once per outer iteration *)
  Alcotest.(check int) "entries" 4
    (count (function LE.Enter _ -> true | _ -> false) evs);
  Alcotest.(check int) "exits" 4
    (count (function LE.Exit _ -> true | _ -> false) evs)

let test_interprocedural_loop_fig3_ex1 () =
  let _, evs = collect Workloads.Figure3.ex1 in
  check_wellformed evs;
  (* two CFG loops: L1 in A and L2 in B (entered per L1 iteration) *)
  let enters =
    List.filter_map
      (function LE.Enter (l, _, _) -> Some (LE.loop_name l) | _ -> None)
      evs
  in
  Alcotest.(check bool) "at least 4 loop entries (1 + 3 inner)" true
    (List.length enters >= 4)

let test_recursion_fig3_ex2 () =
  let _, evs = collect Workloads.Figure3.ex2 in
  check_wellformed evs;
  let rec_enters =
    count
      (function LE.Enter (LE.Rec_comp _, _, _) -> true | _ -> false)
      evs
  in
  let rec_iters =
    count
      (function LE.Iterate (LE.Rec_comp _, _, _) -> true | _ -> false)
      evs
  in
  let rec_exits =
    count (function LE.Exit (LE.Rec_comp _, _, _) -> true | _ -> false) evs
  in
  Alcotest.(check int) "recursive loop entered once" 1 rec_enters;
  Alcotest.(check int) "recursive loop exited once" 1 rec_exits;
  (* rec_depth = 3 recursive calls: one Ic per call plus one Ir per
     return except the final one: 3 + 3 = 6 *)
  Alcotest.(check int) "iterations count calls + returns" 6 rec_iters

let test_calls_do_not_exit_loops () =
  (* a loop containing a call: the loop must stay live across the call *)
  let open Vm.Hir.Dsl in
  let module H = Vm.Hir in
  let _, evs =
    collect
      { H.funs =
          [ H.fundef "g" [] [ H.Let ("y", i 1) ];
            H.fundef "main" []
              [ H.for_ "k" (i 0) (i 3) [ H.CallS (None, "g", []) ] ] ];
        arrays = [];
        main = "main" }
  in
  check_wellformed evs;
  Alcotest.(check int) "single entry despite calls" 1
    (count (function LE.Enter _ -> true | _ -> false) evs);
  Alcotest.(check int) "single exit" 1
    (count (function LE.Exit _ -> true | _ -> false) evs)

let test_tree_recursion () =
  (* binary tree recursion (the paper: the recursive-component machinery
     is "useful beyond the restricted scope of this paper, for example to
     detect properties of tree-recursive calls") *)
  let open Vm.Hir.Dsl in
  let module H = Vm.Hir in
  let hir : H.program =
    { H.funs =
        [ H.fundef "fib" [ "n" ]
            [ H.If (v "n" <! i 2, [ H.Return (Some (v "n")) ], []);
              H.Let ("a", Callf ("fib", [ v "n" -! i 1 ]));
              H.Let ("b", Callf ("fib", [ v "n" -! i 2 ]));
              H.Return (Some (v "a" +! v "b")) ];
          H.fundef "main" [] [ H.CallS (Some "r", "fib", [ i 7 ]) ] ];
      arrays = [];
      main = "main" }
  in
  let _, evs = collect hir in
  check_wellformed evs;
  (* one recursive loop, entered and exited exactly once, iterating on
     every header call and every non-final header return *)
  Alcotest.(check int) "one entry" 1
    (count (function LE.Enter (LE.Rec_comp _, _, _) -> true | _ -> false) evs);
  Alcotest.(check int) "one exit" 1
    (count (function LE.Exit (LE.Rec_comp _, _, _) -> true | _ -> false) evs);
  let iters =
    count (function LE.Iterate (LE.Rec_comp _, _, _) -> true | _ -> false) evs
  in
  (* fib 7 makes 40 recursive calls (41 total), so 40 Ic + 40 Ir *)
  Alcotest.(check int) "iterations = 2 * recursive calls" 80 iters

let test_all_rodinia_wellformed () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let _, evs = collect w.hir in
      check_wellformed evs)
    [ Workloads.Backprop.workload; Workloads.Bfs.workload;
      Workloads.Heartwall.workload; Workloads.Pathfinder.workload ]

let () =
  Alcotest.run "loop_events"
    [ ( "algorithm 1",
        [ Alcotest.test_case "simple loop" `Quick test_simple_loop;
          Alcotest.test_case "nested loops" `Quick test_nested_loops;
          Alcotest.test_case "interprocedural nest (Fig. 3 Ex. 1)" `Quick
            test_interprocedural_loop_fig3_ex1;
          Alcotest.test_case "calls do not exit loops" `Quick
            test_calls_do_not_exit_loops ] );
      ( "algorithm 2",
        [ Alcotest.test_case "recursion (Fig. 3 Ex. 2)" `Quick
            test_recursion_fig3_ex2;
          Alcotest.test_case "tree recursion" `Quick test_tree_recursion ] );
      ( "well-formedness",
        [ Alcotest.test_case "workload traces" `Slow test_all_rodinia_wellformed ]
      ) ]
