(* End-to-end fuzzing: generate random structured programs (nested
   loops, conditionals, calls, loads/stores with mixed affine and
   irregular indexing), run the full pipeline, and check the global
   invariants that must hold for ANY program:

   - the interpreter, loop-event generation, IIV maintenance, folding and
     feedback never raise;
   - loop events balance (no loop is left live at the end);
   - per-statement folded point counts equal the interpreter's dynamic
     instruction count;
   - every executed statement instance is covered by its folded domain
     (checked on a sample);
   - metrics percentages are within [0, 100]. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let arr_size = 32

(* --- generator ----------------------------------------------------- *)

type genctx = { mutable fresh : int; mutable depth : int }

let rec gen_expr ctx vars rand =
  (* an integer expression usable as an array index (kept in range with
     a final modulo when irregular) *)
  match rand 6 with
  | 0 | 1 -> i (rand arr_size)
  | 2 | 3 -> (
      match vars with
      | [] -> i (rand arr_size)
      | _ -> v (List.nth vars (rand (List.length vars))))
  | 4 ->
      let a = gen_expr ctx vars rand and b = gen_expr ctx vars rand in
      (a +! b) %! i arr_size
  | _ ->
      let a = gen_expr ctx vars rand in
      (a *! i (1 + rand 3)) %! i arr_size

let rec gen_stmts ctx vars rand budget =
  if budget <= 0 then []
  else
    let s, cost = gen_stmt ctx vars rand budget in
    s :: gen_stmts ctx vars rand (budget - cost)

and gen_stmt ctx vars rand budget =
  let idx () = gen_expr ctx vars rand in
  match rand (if ctx.depth >= 3 then 4 else 6) with
  | 0 ->
      (* store *)
      (store "data" (idx ()) ("data".%[idx ()] +! i (rand 5)), 1)
  | 1 ->
      let name = Printf.sprintf "v%d" ctx.fresh in
      ctx.fresh <- ctx.fresh + 1;
      (H.Let (name, idx ()), 1)
  | 2 ->
      (* guarded store *)
      ( H.If
          ( idx () <! i (rand arr_size + 1),
            [ store "data" (idx ()) (i (rand 9)) ],
            [ store "aux" (idx ()) (i (rand 9)) ] ),
        2 )
  | 3 -> (H.CallS (Some "c", "leaf", [ idx () ]), 2)
  | _ ->
      (* a loop *)
      let name = Printf.sprintf "k%d" ctx.fresh in
      ctx.fresh <- ctx.fresh + 1;
      ctx.depth <- ctx.depth + 1;
      let body = gen_stmts ctx (name :: vars) rand (budget / 2) in
      ctx.depth <- ctx.depth - 1;
      let body = if body = [] then [ H.Let ("t", v name) ] else body in
      (H.for_ name (i 0) (i (2 + rand 5)) body, 2 + (budget / 2))

let gen_program seed : H.program =
  let st = Random.State.make [| seed |] in
  let rand n = Random.State.int st (max 1 n) in
  let ctx = { fresh = 0; depth = 0 } in
  let body = gen_stmts ctx [] rand 12 in
  let body = if body = [] then [ store "data" (i 0) (i 1) ] else body in
  { H.funs =
      [ H.fundef "leaf" [ "x" ]
          [ store "aux" (v "x" %! i arr_size) (v "x" +! i 1);
            H.Return (Some (v "x" *! i 2)) ];
        H.fundef "main" [] body ];
    arrays = [ ("data", arr_size); ("aux", arr_size) ];
    main = "main" }

(* --- invariants ---------------------------------------------------- *)

let check_program seed =
  let hir = gen_program seed in
  let prog = H.lower hir in
  (* 1. loop events balance *)
  let structure = Cfg.Cfg_builder.run prog in
  let st = Ddg.Loop_events.create structure ~main:prog.Vm.Prog.main in
  List.iter (fun _ -> ()) (Ddg.Loop_events.start st);
  let callbacks =
    { Vm.Interp.on_control = (fun ev -> ignore (Ddg.Loop_events.feed st ev));
      on_exec = ignore }
  in
  let (_ : Vm.Interp.stats) = Vm.Interp.run ~callbacks prog in
  ignore (Ddg.Loop_events.finish st);
  if Ddg.Loop_events.live_depth st <> 0 then false
  else begin
    (* 2. full pipeline runs and counts agree *)
    let res = Ddg.Depprof.profile prog ~structure in
    let total =
      List.fold_left
        (fun acc (s : Ddg.Depprof.stmt_info) -> acc + s.s_count)
        0 res.stmts
    in
    if total <> res.run_stats.Vm.Interp.dyn_instrs then false
    else begin
      (* 3. folded domains cover their own sampled points *)
      let covered =
        List.for_all
          (fun (s : Ddg.Depprof.stmt_info) ->
            s.s_pieces = []
            || List.exists
                 (fun (p : Fold.piece) ->
                   if Minisl.Polyhedron.dim p.Fold.dom > 4 then true
                   else
                     match Minisl.Polyhedron.sample p.Fold.dom with
                     | Some pt -> Minisl.Polyhedron.mem p.Fold.dom pt
                     | None -> p.Fold.points = 0)
                 s.s_pieces)
          res.stmts
      in
      if not covered then false
      else begin
        (* 4. feedback + metrics never raise, percentages bounded *)
        let analysis = Sched.Depanalysis.analyse prog res in
        let (_ : Sched.Feedback.t) = Sched.Feedback.make prog res analysis in
        let row =
          Sched.Metrics.compute ~name:"fuzz" prog res analysis
        in
        let ok_pct v = v >= 0.0 && v <= 100.0 in
        ok_pct row.Sched.Metrics.aff_pct
        && ok_pct row.Sched.Metrics.par_ops_pct
        && ok_pct row.Sched.Metrics.simd_ops_pct
        && ok_pct row.Sched.Metrics.reuse_pct
        && ok_pct row.Sched.Metrics.preuse_pct
        && ok_pct row.Sched.Metrics.tile_ops_pct
      end
    end
  end

let prop_pipeline_invariants =
  QCheck.Test.make ~name:"pipeline invariants on random programs" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    (fun seed -> check_program seed)

(* a couple of fixed seeds as fast regression anchors *)
let test_fixed_seeds () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        true (check_program seed))
    [ 1; 7; 42; 1234; 99991 ]

let () =
  Alcotest.run "random_programs"
    [ ( "fuzz",
        [ Alcotest.test_case "fixed seeds" `Quick test_fixed_seeds;
          QCheck_alcotest.to_alcotest prop_pipeline_invariants ] ) ]
