(* Tests for the suite runner: budget bail-out, table rendering,
   workload registry. *)

module R = Workloads.Runner

let test_registry () =
  Alcotest.(check int) "19 benchmarks" 19 (List.length Workloads.Rodinia.all);
  Alcotest.(check bool) "find works" true
    ((Workloads.Rodinia.find "backprop").w_name = "backprop");
  Alcotest.(check bool) "unknown rejected" true
    (try
       ignore (Workloads.Rodinia.find "nonesuch");
       false
     with Invalid_argument _ -> true);
  (* Table 5 row order *)
  Alcotest.(check (list string)) "paper row order"
    [ "backprop"; "bfs"; "b+tree"; "cfd"; "heartwall"; "hotspot"; "hotspot3D";
      "kmeans"; "lavaMD"; "leukocyte"; "lud"; "myocyte"; "nn"; "nw";
      "particlefilter"; "pathfinder"; "srad_v1"; "srad_v2"; "streamcluster" ]
    Workloads.Rodinia.names

let test_every_workload_has_paper_row () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      Alcotest.(check bool) (w.w_name ^ " has a paper row") true
        (w.paper <> None))
    Workloads.Rodinia.all

let test_budget_forces_bailout () =
  (* even a benign benchmark bails when the budget is tiny *)
  let o = R.run ~budget:1 Workloads.Bfs.workload in
  Alcotest.(check bool) "bailed" true o.sched_bailed;
  Alcotest.(check bool) "no pipeline" true (o.pipeline = None);
  (* ... but its profiling columns are still filled *)
  Alcotest.(check bool) "ops recorded" true (o.row.Sched.Metrics.ops > 0);
  Alcotest.(check bool) "region recorded" true
    (o.row.Sched.Metrics.region <> "-")

let test_generous_budget_no_bailout () =
  let o = R.run ~budget:1_000_000 Workloads.Bfs.workload in
  Alcotest.(check bool) "not bailed" false o.sched_bailed;
  Alcotest.(check bool) "pipeline present" true (o.pipeline <> None)

let test_streamcluster_always_bails () =
  let o = R.run ~budget:1_000_000 Workloads.Streamcluster.workload in
  (* expect_sched_failure forces the bail-out regardless of the budget,
     mirroring the paper's memory exhaustion *)
  Alcotest.(check bool) "bailed" true o.sched_bailed

let test_table_rendering_columns () =
  let results = [ (Workloads.Bfs.workload, R.run Workloads.Bfs.workload) ] in
  let txt = R.table5 results in
  let lines = String.split_on_char '\n' txt in
  Alcotest.(check bool) "header + separator + row" true
    (List.length lines >= 3);
  let with_paper = R.table5_with_paper results in
  Alcotest.(check bool) "paper row adds a line" true
    (List.length (String.split_on_char '\n' with_paper) > List.length lines)

let () =
  Alcotest.run "runner"
    [ ( "registry",
        [ Alcotest.test_case "names and order" `Quick test_registry;
          Alcotest.test_case "paper rows present" `Quick
            test_every_workload_has_paper_row ] );
      ( "budget",
        [ Alcotest.test_case "tiny budget bails" `Quick test_budget_forces_bailout;
          Alcotest.test_case "generous budget runs" `Quick
            test_generous_budget_no_bailout;
          Alcotest.test_case "streamcluster bails" `Slow
            test_streamcluster_always_bails ] );
      ( "rendering",
        [ Alcotest.test_case "table columns" `Quick test_table_rendering_columns ]
      ) ]
