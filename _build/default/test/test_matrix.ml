(* Tests for the exact linear-algebra kernels. *)

module Rat = Pp_util.Rat
module M = Pp_util.Matrix

let r = Rat.of_int

let test_identity_mul () =
  let a = M.of_int_arrays [| [| 1; 2 |]; [| 3; 4 |] |] in
  Alcotest.(check bool) "I * a = a" true (M.equal (M.mul (M.identity 2) a) a);
  Alcotest.(check bool) "a * I = a" true (M.equal (M.mul a (M.identity 2)) a)

let test_transpose () =
  let a = M.of_int_arrays [| [| 1; 2; 3 |]; [| 4; 5; 6 |] |] in
  let t = M.transpose a in
  Alcotest.(check int) "rows" 3 (M.rows t);
  Alcotest.(check int) "cols" 2 (M.cols t);
  Alcotest.(check bool) "a(0,2) = t(2,0)" true
    (Rat.equal (M.get a 0 2) (M.get t 2 0))

let test_rank () =
  Alcotest.(check int) "full rank" 2
    (M.rank (M.of_int_arrays [| [| 1; 0 |]; [| 0; 1 |] |]));
  Alcotest.(check int) "rank deficient" 1
    (M.rank (M.of_int_arrays [| [| 1; 2 |]; [| 2; 4 |] |]));
  Alcotest.(check int) "zero matrix" 0 (M.rank (M.create ~rows:3 ~cols:3))

let test_solve_unique () =
  (* x + y = 3; x - y = 1  =>  x = 2, y = 1 *)
  let a = M.of_int_arrays [| [| 1; 1 |]; [| 1; -1 |] |] in
  match M.solve a [| r 3; r 1 |] with
  | None -> Alcotest.fail "expected a solution"
  | Some x ->
      Alcotest.(check bool) "x = 2" true (Rat.equal x.(0) (r 2));
      Alcotest.(check bool) "y = 1" true (Rat.equal x.(1) (r 1))

let test_solve_inconsistent () =
  let a = M.of_int_arrays [| [| 1; 1 |]; [| 1; 1 |] |] in
  Alcotest.(check bool) "inconsistent system" true
    (M.solve a [| r 1; r 2 |] = None)

let test_solve_underdetermined () =
  let a = M.of_int_arrays [| [| 1; 1 |] |] in
  match M.solve a [| r 5 |] with
  | None -> Alcotest.fail "underdetermined but consistent"
  | Some x ->
      Alcotest.(check bool) "solution satisfies" true
        (Rat.equal (Rat.add x.(0) x.(1)) (r 5))

let test_affine_fit_exact () =
  (* f(x, y) = 2x - 3y + 7 *)
  let pts = [| [| 0; 0 |]; [| 1; 0 |]; [| 0; 1 |]; [| 5; 3 |] |] in
  let vals = Array.map (fun p -> r ((2 * p.(0)) - (3 * p.(1)) + 7)) pts in
  match M.affine_fit pts vals with
  | None -> Alcotest.fail "fit failed"
  | Some (coeffs, const) ->
      Alcotest.(check bool) "coeff x" true (Rat.equal coeffs.(0) (r 2));
      Alcotest.(check bool) "coeff y" true (Rat.equal coeffs.(1) (r (-3)));
      Alcotest.(check bool) "const" true (Rat.equal const (r 7))

let test_affine_fit_rejects_nonaffine () =
  let pts = [| [| 0 |]; [| 1 |]; [| 2 |]; [| 3 |] |] in
  let vals = Array.map (fun p -> r (p.(0) * p.(0))) pts in
  Alcotest.(check bool) "x^2 is not affine" true (M.affine_fit pts vals = None)

let test_affine_fit_rational () =
  (* f(x) = x/2 *)
  let pts = [| [| 0 |]; [| 2 |]; [| 4 |] |] in
  let vals = [| r 0; r 1; r 2 |] in
  match M.affine_fit pts vals with
  | None -> Alcotest.fail "fit failed"
  | Some (coeffs, const) ->
      Alcotest.(check bool) "coeff 1/2" true (Rat.equal coeffs.(0) (Rat.make 1 2));
      Alcotest.(check bool) "const 0" true (Rat.is_zero const)

(* property: solve really solves *)
let prop_solve_correct =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun (rows, seed) ->
           let n = 2 + (rows mod 3) in
           Array.init n (fun i ->
               Array.init n (fun j -> ((seed * (i + 1) * (j + 2)) mod 7) - 3)))
         QCheck.Gen.(pair (int_bound 4) (int_bound 1000)))
  in
  QCheck.Test.make ~name:"solve satisfies the system" ~count:200 gen (fun m ->
      let a = M.of_int_arrays m in
      let n = Array.length m in
      let b = Array.init n (fun i -> r ((i * 3) - 1)) in
      match M.solve a b with
      | None -> true (* inconsistent is a legal answer *)
      | Some x ->
          let ok = ref true in
          for i = 0 to n - 1 do
            let acc = ref Rat.zero in
            for j = 0 to n - 1 do
              acc := Rat.add !acc (Rat.mul (M.get a i j) x.(j))
            done;
            if not (Rat.equal !acc b.(i)) then ok := false
          done;
          !ok)

let () =
  Alcotest.run "matrix"
    [ ( "unit",
        [ Alcotest.test_case "identity" `Quick test_identity_mul;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "solve unique" `Quick test_solve_unique;
          Alcotest.test_case "solve inconsistent" `Quick test_solve_inconsistent;
          Alcotest.test_case "solve underdetermined" `Quick
            test_solve_underdetermined;
          Alcotest.test_case "affine fit exact" `Quick test_affine_fit_exact;
          Alcotest.test_case "affine fit rejects x^2" `Quick
            test_affine_fit_rejects_nonaffine;
          Alcotest.test_case "affine fit rational" `Quick test_affine_fit_rational
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_solve_correct ]) ]
