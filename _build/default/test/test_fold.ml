(* Tests for the folding stage (paper §5): exact recognition of the
   domains loop nests produce, label (SCEV) functions, boundary splits,
   over-approximation, and round-trip properties. *)

module P = Minisl.Polyhedron
module A = Minisl.Affine
module Rat = Pp_util.Rat

let enumerate_rect w h f =
  let pts = ref [] in
  for x = 0 to w - 1 do
    for y = 0 to h - 1 do
      pts := ([| x; y |], f x y) :: !pts
    done
  done;
  List.rev !pts

let all_exact_affine pieces =
  List.for_all
    (fun (p : Fold.piece) ->
      p.Fold.exact && Array.for_all Option.is_some p.Fold.labels)
    pieces

let covers pieces pts =
  List.for_all
    (fun (c, _) -> List.exists (fun (p : Fold.piece) -> P.mem p.Fold.dom c) pieces)
    pts

let labels_reproduce pieces pts =
  List.for_all
    (fun (c, l) ->
      List.exists
        (fun (p : Fold.piece) ->
          P.mem p.Fold.dom c
          && Array.for_all2
               (fun f lv ->
                 match f with
                 | Some f -> Rat.equal (A.eval f c) (Rat.of_int lv)
                 | None -> true)
               p.Fold.labels l)
        pieces)
    pts

let test_rectangle () =
  let pts = enumerate_rect 6 9 (fun x y -> [| (3 * x) + y + 5 |]) in
  let pieces = Fold.fold_points ~dim:2 ~label_dim:1 pts in
  Alcotest.(check int) "one piece" 1 (List.length pieces);
  Alcotest.(check bool) "exact affine" true (all_exact_affine pieces);
  Alcotest.(check bool) "labels reproduce" true (labels_reproduce pieces pts);
  let p = List.hd pieces in
  Alcotest.(check int) "count" 54 (P.count p.Fold.dom)

let test_triangle () =
  (* for i in 0..n, j in 0..i: the paper's Fig. 4 shape *)
  let pts = ref [] in
  for i = 0 to 7 do
    for j = 0 to i do
      pts := ([| i; j |], [| i - j |]) :: !pts
    done
  done;
  let pts = List.rev !pts in
  let pieces = Fold.fold_points ~dim:2 ~label_dim:1 pts in
  Alcotest.(check int) "one piece" 1 (List.length pieces);
  Alcotest.(check bool) "exact" true (all_exact_affine pieces);
  let p = List.hd pieces in
  Alcotest.(check bool) "triangular bound present" true
    (P.mem p.Fold.dom [| 5; 5 |] && not (P.mem p.Fold.dom [| 5; 6 |]))

let test_trapezoid () =
  (* j from i to i+3: sliding window *)
  let pts = ref [] in
  for i = 0 to 9 do
    for j = i to i + 3 do
      pts := ([| i; j |], [||]) :: !pts
    done
  done;
  let pieces = Fold.fold_points ~dim:2 ~label_dim:0 (List.rev !pts) in
  Alcotest.(check int) "one piece" 1 (List.length pieces);
  Alcotest.(check bool) "exact" true (all_exact_affine pieces)

let test_boundary_split () =
  (* the Table 2 / lavaMD pattern: producer is (i, j-1) except at j = 0
     where it is (i-1, jmax) *)
  let pts = ref [] in
  for i = 1 to 6 do
    for j = 0 to 4 do
      let lbl = if j = 0 then [| i - 1; 4 |] else [| i; j - 1 |] in
      pts := ([| i; j |], lbl) :: !pts
    done
  done;
  let pieces = Fold.fold_points ~dim:2 ~label_dim:2 (List.rev !pts) in
  Alcotest.(check bool) "2-4 exact pieces" true
    (List.length pieces >= 2 && List.length pieces <= 4);
  Alcotest.(check bool) "all exact affine" true (all_exact_affine pieces);
  Alcotest.(check bool) "labels reproduce" true
    (labels_reproduce pieces (List.rev !pts))

let test_holes_over_approximate () =
  (* only even points: a lattice, which folding over-approximates *)
  let pts = ref [] in
  for x = 0 to 20 do
    if x mod 2 = 0 then pts := ([| x |], [||]) :: !pts
  done;
  let pieces = Fold.fold_points ~dim:1 ~label_dim:0 (List.rev !pts) in
  Alcotest.(check bool) "covers all points" true (covers pieces (List.rev !pts));
  Alcotest.(check bool) "not exact (or many pieces)" true
    (List.exists (fun (p : Fold.piece) -> not p.Fold.exact) pieces
    || List.length pieces > 4)

let test_nonaffine_labels_top () =
  let pts = List.init 40 (fun x -> ([| x |], [| x * x |])) in
  let pieces = Fold.fold_points ~dim:1 ~label_dim:1 pts in
  (* the domain is a dense interval: foldable; the labels are not *)
  Alcotest.(check bool) "covers" true (covers pieces pts);
  Alcotest.(check bool) "labels are top somewhere" true
    (List.exists
       (fun (p : Fold.piece) -> Array.exists Option.is_none p.Fold.labels)
       pieces)

let test_per_component_top () =
  (* one affine component, one wild: only the wild one becomes top *)
  let pts = List.init 200 (fun x -> ([| x |], [| (2 * x) + 1; (x * x * x) mod 101 |])) in
  let pieces = Fold.fold_points ~dim:1 ~label_dim:2 pts in
  let p = List.hd pieces in
  Alcotest.(check bool) "first component affine" true
    (Option.is_some p.Fold.labels.(0));
  Alcotest.(check bool) "second component top" true
    (List.exists
       (fun (p : Fold.piece) -> Option.is_none p.Fold.labels.(1))
       pieces)

let test_scalar_context () =
  let pieces = Fold.fold_points ~dim:0 ~label_dim:1 [ ([||], [| 42 |]) ] in
  Alcotest.(check int) "one piece" 1 (List.length pieces);
  Alcotest.(check bool) "exact" true (all_exact_affine pieces)

let test_streaming_cap () =
  (* past the cap the collector switches to streaming boxes *)
  let c = Fold.Collector.create ~cap:100 ~dim:1 ~label_dim:1 () in
  for x = 0 to 999 do
    Fold.Collector.add c [| x |] [| (5 * x) + 2 |]
  done;
  Alcotest.(check int) "all points counted" 1000 (Fold.Collector.npoints c);
  match Fold.Collector.result c with
  | [ p ] ->
      Alcotest.(check bool) "approx" true (not p.Fold.exact);
      Alcotest.(check bool) "box covers" true
        (P.mem p.Fold.dom [| 0 |] && P.mem p.Fold.dom [| 999 |]);
      (* the label function survived streaming verification *)
      Alcotest.(check bool) "label still affine" true
        (Option.is_some p.Fold.labels.(0))
  | ps -> Alcotest.fail (Printf.sprintf "expected one box, got %d" (List.length ps))

let test_streaming_cap_label_violation () =
  let c = Fold.Collector.create ~cap:50 ~dim:1 ~label_dim:1 () in
  for x = 0 to 199 do
    Fold.Collector.add c [| x |] [| x * x |]
  done;
  match Fold.Collector.result c with
  | [ p ] ->
      Alcotest.(check bool) "label degraded to top" true
        (Option.is_none p.Fold.labels.(0))
  | _ -> Alcotest.fail "expected one box"

let test_under_approximation () =
  (* a holey domain over-approximates but keeps a certified inner box
     from its dense prefix *)
  let pts = ref [] in
  for x = 0 to 40 do
    if x < 20 || x mod 3 = 0 then pts := ([| x |], [||]) :: !pts
  done;
  let pieces = Fold.fold_points ~dim:1 ~label_dim:0 (List.rev !pts) in
  let approx = List.filter (fun (p : Fold.piece) -> not p.Fold.exact) pieces in
  match approx with
  | [] -> () (* folded exactly after all: fine *)
  | ps ->
      Alcotest.(check bool) "some approx piece has an under-approximation"
        true
        (List.exists (fun (p : Fold.piece) -> p.Fold.under <> None) ps);
      List.iter
        (fun (p : Fold.piece) ->
          match p.Fold.under with
          | Some u ->
              (* the under-approximation is inside the over-approximation
                 and contains only genuinely iterated points *)
              Alcotest.(check bool) "under inside over" true
                (Minisl.Polyhedron.is_subset u p.Fold.dom);
              List.iter
                (fun pt ->
                  Alcotest.(check bool) "under point was iterated" true
                    (List.exists (fun (q, _) -> q = pt) (List.rev !pts)))
                (Minisl.Polyhedron.integer_points u)
          | None -> ())
        ps

let test_strided_label () =
  (* stride-17 addresses: affine with coefficient 17, the SCEV shape *)
  let pts = List.init 50 (fun x -> ([| x |], [| (17 * x) + 1000 |])) in
  let pieces = Fold.fold_points ~dim:1 ~label_dim:1 pts in
  Alcotest.(check int) "one piece" 1 (List.length pieces);
  match (List.hd pieces).Fold.labels.(0) with
  | Some f ->
      Alcotest.(check bool) "coefficient 17" true
        (Rat.equal f.A.coeffs.(0) (Rat.of_int 17))
  | None -> Alcotest.fail "label lost"

let test_3d_triangle () =
  (* a 3-D nest with two triangular dimensions *)
  let pts = ref [] in
  for a = 0 to 5 do
    for b = 0 to a do
      for c = b to 5 do
        pts := ([| a; b; c |], [| (2 * a) - b + (3 * c) |]) :: !pts
      done
    done
  done;
  let pts = List.rev !pts in
  let pieces = Fold.fold_points ~dim:3 ~label_dim:1 pts in
  Alcotest.(check int) "one piece" 1 (List.length pieces);
  Alcotest.(check bool) "exact" true (all_exact_affine pieces);
  Alcotest.(check bool) "labels reproduce" true (labels_reproduce pieces pts);
  let p = List.hd pieces in
  Alcotest.(check int) "count" (List.length pts) (P.count p.Fold.dom)

let test_multi_component_labels () =
  (* a dependence-style stream: two label components, both affine *)
  let pts = ref [] in
  for x = 0 to 9 do
    for y = 0 to 9 do
      pts := ([| x; y |], [| x - 1; y + 2 |]) :: !pts
    done
  done;
  let pts = List.rev !pts in
  let pieces = Fold.fold_points ~dim:2 ~label_dim:2 pts in
  Alcotest.(check int) "one piece" 1 (List.length pieces);
  let p = List.hd pieces in
  (match (p.Fold.labels.(0), p.Fold.labels.(1)) with
  | Some f0, Some f1 ->
      Alcotest.(check bool) "x - 1" true
        (Rat.equal (A.eval f0 [| 5; 3 |]) (Rat.of_int 4));
      Alcotest.(check bool) "y + 2" true
        (Rat.equal (A.eval f1 [| 5; 3 |]) (Rat.of_int 5))
  | _ -> Alcotest.fail "labels lost")

(* properties: fold of a random affine nest round-trips *)

let arb_nest =
  QCheck.make
    QCheck.Gen.(
      map
        (fun (w, h, (a, b, c)) -> (1 + w, 1 + h, a - 4, b - 4, c - 50))
        (triple (int_bound 8) (int_bound 8)
           (triple (int_bound 9) (int_bound 9) (int_bound 100))))

let prop_fold_rect_roundtrip =
  QCheck.Test.make ~name:"fold(rect) is one exact piece with exact labels"
    ~count:100 arb_nest (fun (w, h, a, b, c) ->
      let pts = enumerate_rect w h (fun x y -> [| (a * x) + (b * y) + c |]) in
      let pieces = Fold.fold_points ~dim:2 ~label_dim:1 pts in
      List.length pieces = 1
      && all_exact_affine pieces
      && labels_reproduce pieces pts
      && P.count (List.hd pieces).Fold.dom = w * h)

let prop_fold_covers =
  QCheck.Test.make ~name:"fold always covers its input" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 60)
       (QCheck.pair (QCheck.int_bound 30) (QCheck.int_bound 9)))
    (fun raw ->
      (* arbitrary (possibly duplicated/holey) point stream in 1-D with a
         noisy label *)
      let seen = Hashtbl.create 16 in
      let pts =
        List.filter_map
          (fun (x, l) ->
            if Hashtbl.mem seen x then None
            else begin
              Hashtbl.add seen x ();
              Some ([| x |], [| l |])
            end)
          raw
      in
      QCheck.assume (pts <> []);
      let pieces = Fold.fold_points ~dim:1 ~label_dim:1 pts in
      covers pieces pts)

let () =
  Alcotest.run "fold"
    [ ( "exact",
        [ Alcotest.test_case "rectangle" `Quick test_rectangle;
          Alcotest.test_case "triangle" `Quick test_triangle;
          Alcotest.test_case "trapezoid" `Quick test_trapezoid;
          Alcotest.test_case "boundary split (Table 2)" `Quick
            test_boundary_split;
          Alcotest.test_case "strided label (SCEV)" `Quick test_strided_label;
          Alcotest.test_case "3-D triangles" `Quick test_3d_triangle;
          Alcotest.test_case "multi-component labels" `Quick
            test_multi_component_labels;
          Alcotest.test_case "scalar context" `Quick test_scalar_context ] );
      ( "over-approximation",
        [ Alcotest.test_case "lattice holes" `Quick test_holes_over_approximate;
          Alcotest.test_case "non-affine labels" `Quick test_nonaffine_labels_top;
          Alcotest.test_case "per-component top" `Quick test_per_component_top;
          Alcotest.test_case "streaming cap" `Quick test_streaming_cap;
          Alcotest.test_case "streaming label violation" `Quick
            test_streaming_cap_label_violation;
          Alcotest.test_case "under-approximation (paper future work)" `Quick
            test_under_approximation ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fold_rect_roundtrip; prop_fold_covers ] ) ]
