(* Tests for the MiniVM: ISA semantics, interpreter, event stream. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let run_hir ?args hir = Vm.Interp.run_with_memory ?args (H.lower hir)

let mem_int mem addr =
  match mem addr with
  | Some (Vm.Event.I v) -> v
  | Some (Vm.Event.F _) -> Alcotest.fail "expected int in memory"
  | None -> Alcotest.fail (Printf.sprintf "no value at %d" addr)

let mem_float mem addr =
  match mem addr with
  | Some (Vm.Event.F v) -> v
  | _ -> Alcotest.fail "expected float in memory"

let simple_main body arrays : H.program =
  { H.funs = [ H.fundef "main" [] body ]; arrays; main = "main" }

let test_arith () =
  let hir =
    simple_main
      [ store "out" (i 0) (((i 7 +! i 5) *! i 3) -! (i 20 /! i 4));
        store "out" (i 1) (i 17 %! i 5);
        store "out" (i 2) ((i 1 <! i 2) +! ((i 2 <=! i 2) +! ((i 3 ==! i 4) +! (i 3 <>! i 4))))
      ]
      [ ("out", 4) ]
  in
  let _, mem = run_hir hir in
  let base = 16 in
  Alcotest.(check int) "(7+5)*3 - 20/4" 31 (mem_int mem base);
  Alcotest.(check int) "17 mod 5" 2 (mem_int mem (base + 1));
  Alcotest.(check int) "comparisons" 3 (mem_int mem (base + 2))

let test_float_arith () =
  let hir =
    simple_main
      [ store "out" (i 0) ((f 1.5 +? f 2.5) *? f 2.0);
        store "out" (i 1) (Itof (i 7) /? f 2.0);
        store "out" (i 2) (Ftoi (f 3.9)) ]
      [ ("out", 4) ]
  in
  let _, mem = run_hir hir in
  let base = 16 in
  Alcotest.(check (float 1e-9)) "float mul" 8.0 (mem_float mem base);
  Alcotest.(check (float 1e-9)) "itof/div" 3.5 (mem_float mem (base + 1));
  Alcotest.(check int) "ftoi truncates" 3 (mem_int mem (base + 2))

let test_loop_sum () =
  let hir =
    simple_main
      [ H.Let ("acc", i 0);
        H.for_ "k" (i 0) (i 10) [ H.Let ("acc", v "acc" +! v "k") ];
        store "out" (i 0) (v "acc") ]
      [ ("out", 1) ]
  in
  let _, mem = run_hir hir in
  Alcotest.(check int) "sum 0..9" 45 (mem_int mem 16)

let test_while_break () =
  let hir =
    simple_main
      [ H.Let ("x", i 0);
        H.while_ (i 1)
          [ H.Let ("x", v "x" +! i 1);
            H.If (v "x" >=! i 7, [ H.Break ], []) ];
        store "out" (i 0) (v "x") ]
      [ ("out", 1) ]
  in
  let _, mem = run_hir hir in
  Alcotest.(check int) "break at 7" 7 (mem_int mem 16)

let test_call_and_return () =
  let hir : H.program =
    { H.funs =
        [ H.fundef "add3" [ "a"; "b"; "c" ]
            [ H.Return (Some ((v "a" +! v "b") +! v "c")) ];
          H.fundef "main" []
            [ H.CallS (Some "r", "add3", [ i 1; i 2; i 3 ]);
              store "out" (i 0) (v "r") ] ];
      arrays = [ ("out", 1) ];
      main = "main" }
  in
  let _, mem = run_hir hir in
  Alcotest.(check int) "1+2+3" 6 (mem_int mem 16)

let test_recursion () =
  let hir : H.program =
    { H.funs =
        [ H.fundef "fib" [ "n" ]
            [ H.If (v "n" <! i 2, [ H.Return (Some (v "n")) ], []);
              H.Let ("a", Callf ("fib", [ v "n" -! i 1 ]));
              H.Let ("b", Callf ("fib", [ v "n" -! i 2 ]));
              H.Return (Some (v "a" +! v "b")) ];
          H.fundef "main" []
            [ H.CallS (Some "r", "fib", [ i 10 ]); store "out" (i 0) (v "r") ] ];
      arrays = [ ("out", 1) ];
      main = "main" }
  in
  let stats, mem = run_hir hir in
  Alcotest.(check int) "fib 10" 55 (mem_int mem 16);
  Alcotest.(check bool) "deep call stack" true (stats.Vm.Interp.max_depth >= 9)

let test_stats () =
  let hir =
    simple_main
      [ H.for_ "k" (i 0) (i 5)
          [ store "a" (v "k") (Itof (v "k") *? f 2.0) ] ]
      [ ("a", 8) ]
  in
  let stats, _ = run_hir hir in
  Alcotest.(check int) "5 stores + 5 loads?" 5 stats.Vm.Interp.dyn_mem_ops;
  Alcotest.(check bool) "fp ops counted" true (stats.Vm.Interp.dyn_fp_ops >= 10)

let test_trap_on_div_zero () =
  let hir = simple_main [ store "out" (i 0) (i 1 /! i 0) ] [ ("out", 1) ] in
  Alcotest.(check bool) "div by zero traps" true
    (try
       ignore (run_hir hir);
       false
     with Vm.Interp.Trap _ -> true)

let test_trap_type_confusion () =
  let hir = simple_main [ store "out" (i 0) (f 1.0 +? "out".%[i 0]) ] [ ("out", 1) ] in
  (* out[0] is uninitialised integer 0: fadd must trap *)
  Alcotest.(check bool) "type confusion traps" true
    (try
       ignore (run_hir hir);
       false
     with Vm.Interp.Trap _ -> true)

let test_step_budget () =
  let hir = simple_main [ H.while_ (i 1) [ H.Let ("x", i 0) ] ] [] in
  Alcotest.(check bool) "budget exceeded traps" true
    (try
       ignore (Vm.Interp.run ~max_steps:1000 (H.lower hir));
       false
     with Vm.Interp.Trap _ -> true)

let test_bit_ops () =
  let hir =
    simple_main
      [ store "out" (i 0) (Bin (Vm.Isa.And, i 12, i 10));
        store "out" (i 1) (Bin (Vm.Isa.Or, i 12, i 10));
        store "out" (i 2) (Bin (Vm.Isa.Xor, i 12, i 10));
        store "out" (i 3) (Bin (Vm.Isa.Shl, i 3, i 4));
        store "out" (i 4) (Bin (Vm.Isa.Shr, i (-16), i 2)) ]
      [ ("out", 5) ]
  in
  let _, mem = run_hir hir in
  Alcotest.(check int) "and" 8 (mem_int mem 16);
  Alcotest.(check int) "or" 14 (mem_int mem 17);
  Alcotest.(check int) "xor" 6 (mem_int mem 18);
  Alcotest.(check int) "shl" 48 (mem_int mem 19);
  Alcotest.(check int) "shr arithmetic" (-4) (mem_int mem 20)

let test_float_compare () =
  let hir =
    simple_main
      [ store "out" (i 0) ((f 1.5 <? f 2.5) +! (f 2.5 >? f 1.5));
        store "out" (i 1) (f 2.5 <? f 1.5) ]
      [ ("out", 2) ]
  in
  let _, mem = run_hir hir in
  Alcotest.(check int) "both true" 2 (mem_int mem 16);
  Alcotest.(check int) "false" 0 (mem_int mem 17)

let test_nested_call_args () =
  let hir : H.program =
    { H.funs =
        [ H.fundef "inner" [ "a"; "b" ] [ H.Return (Some (v "a" -! v "b")) ];
          H.fundef "outer" [ "x" ]
            [ H.Let ("r", Callf ("inner", [ v "x" *! i 10; v "x" ]));
              H.Return (Some (v "r")) ];
          H.fundef "main" []
            [ H.CallS (Some "z", "outer", [ i 7 ]); store "out" (i 0) (v "z") ]
        ];
      arrays = [ ("out", 1) ];
      main = "main" }
  in
  let _, mem = run_hir hir in
  Alcotest.(check int) "70 - 7" 63 (mem_int mem 16)

let test_while_is_a_dynamic_loop () =
  (* a while loop that iterates is recognised as a CFG loop by
     Instrumentation I *)
  let hir =
    simple_main
      [ H.Let ("x", i 0);
        H.while_ (v "x" <! i 5) [ H.Let ("x", v "x" +! i 1) ] ]
      []
  in
  let prog = H.lower hir in
  let s = Cfg.Cfg_builder.run prog in
  match Cfg.Cfg_builder.forest_of s prog.Vm.Prog.main with
  | Some forest ->
      Alcotest.(check int) "one loop" 1 (Cfg.Loopnest.n_loops forest)
  | None -> Alcotest.fail "no CFG"

let test_event_stream_balanced () =
  let hir : H.program =
    { H.funs =
        [ H.fundef "g" [ "x" ] [ H.Return (Some (v "x" *! i 2)) ];
          H.fundef "main" []
            [ H.for_ "k" (i 0) (i 4)
                [ H.CallS (Some "y", "g", [ v "k" ]);
                  store "out" (v "k") (v "y") ] ] ];
      arrays = [ ("out", 4) ];
      main = "main" }
  in
  let calls = ref 0 and rets = ref 0 and jumps = ref 0 in
  let callbacks =
    { Vm.Interp.on_control =
        (function
        | Vm.Event.Call _ -> incr calls
        | Vm.Event.Return _ -> incr rets
        | Vm.Event.Jump _ -> incr jumps);
      on_exec = ignore }
  in
  let (_ : Vm.Interp.stats) = Vm.Interp.run ~callbacks (H.lower hir) in
  Alcotest.(check int) "4 calls" 4 !calls;
  Alcotest.(check int) "calls = returns" !calls !rets;
  Alcotest.(check bool) "loop produced jumps" true (!jumps > 8)

let test_exec_events_have_addresses () =
  let hir =
    simple_main
      [ store "a" (i 3) (i 42); H.Let ("x", "a".%[i 3]) ]
      [ ("a", 4) ]
  in
  let reads = ref [] and writes = ref [] in
  let callbacks =
    { Vm.Interp.on_control = ignore;
      on_exec =
        (fun e ->
          (match e.Vm.Event.addr_read with Some a -> reads := a :: !reads | None -> ());
          match e.Vm.Event.addr_written with
          | Some a -> writes := a :: !writes
          | None -> ()) }
  in
  let (_ : Vm.Interp.stats) = Vm.Interp.run ~callbacks (H.lower hir) in
  Alcotest.(check bool) "write seen" true (List.mem 19 !writes);
  Alcotest.(check bool) "read seen" true (List.mem 19 !reads)

let () =
  Alcotest.run "vm"
    [ ( "interp",
        [ Alcotest.test_case "integer arithmetic" `Quick test_arith;
          Alcotest.test_case "float arithmetic" `Quick test_float_arith;
          Alcotest.test_case "loop sum" `Quick test_loop_sum;
          Alcotest.test_case "while + break" `Quick test_while_break;
          Alcotest.test_case "call/return" `Quick test_call_and_return;
          Alcotest.test_case "recursion (fib)" `Quick test_recursion;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "div-by-zero trap" `Quick test_trap_on_div_zero;
          Alcotest.test_case "type-confusion trap" `Quick test_trap_type_confusion;
          Alcotest.test_case "step budget" `Quick test_step_budget;
          Alcotest.test_case "bit operations" `Quick test_bit_ops;
          Alcotest.test_case "float compares" `Quick test_float_compare;
          Alcotest.test_case "nested call arguments" `Quick
            test_nested_call_args;
          Alcotest.test_case "while becomes a loop" `Quick
            test_while_is_a_dynamic_loop ] );
      ( "events",
        [ Alcotest.test_case "balanced calls/returns" `Quick
            test_event_stream_balanced;
          Alcotest.test_case "memory addresses in exec events" `Quick
            test_exec_events_have_addresses ] ) ]
