(* Grab-bag unit tests for the smaller substrate pieces: Sid packing,
   the program builder's error handling, vectors, affine algebra, hulls,
   calling-context trees, domain parameter rendering. *)

module Rat = Pp_util.Rat
module A = Minisl.Affine
module V = Pp_util.Vecint

(* --- Isa.Sid --------------------------------------------------------- *)

let test_sid_roundtrip () =
  List.iter
    (fun (fid, bid, idx) ->
      let s = Vm.Isa.Sid.make ~fid ~bid ~idx in
      Alcotest.(check int) "fid" fid (Vm.Isa.Sid.fid s);
      Alcotest.(check int) "bid" bid (Vm.Isa.Sid.bid s);
      Alcotest.(check int) "idx" idx (Vm.Isa.Sid.idx s))
    [ (0, 0, 0); (1, 2, 3); (4095, 4095, 4095); (7, 0, 4095); (100, 200, 300) ]

let test_sid_distinct () =
  let a = Vm.Isa.Sid.make ~fid:1 ~bid:2 ~idx:3 in
  let b = Vm.Isa.Sid.make ~fid:1 ~bid:3 ~idx:2 in
  Alcotest.(check bool) "different blocks differ" true (a <> b)

let test_op_classes () =
  Alcotest.(check bool) "const is int alu" true
    (Vm.Isa.class_of_instr (Vm.Isa.Const (0, 1)) = Vm.Isa.Int_alu);
  Alcotest.(check bool) "fconst is fp" true
    (Vm.Isa.is_fp (Vm.Isa.Fconst (0, 1.0)));
  Alcotest.(check bool) "load is mem" true
    (Vm.Isa.is_mem (Vm.Isa.Load (0, Vm.Isa.Imm 5)));
  Alcotest.(check bool) "store is mem" true
    (Vm.Isa.is_mem (Vm.Isa.Store (Vm.Isa.Imm 5, Vm.Isa.Imm 1)))

(* --- Prog builder ---------------------------------------------------- *)

let test_builder_unterminated_block () =
  let pb = Vm.Prog.Builder.create () in
  let fid = Vm.Prog.Builder.declare_func pb "f" ~n_params:0 in
  let fb = Vm.Prog.Builder.define_func pb fid in
  Vm.Prog.Builder.emit fb 0 (Vm.Isa.Const (0, 1));
  Alcotest.(check bool) "unterminated rejected" true
    (try
       Vm.Prog.Builder.finish_func fb;
       false
     with Invalid_argument _ -> true)

let test_builder_double_terminate () =
  let pb = Vm.Prog.Builder.create () in
  let fid = Vm.Prog.Builder.declare_func pb "f" ~n_params:0 in
  let fb = Vm.Prog.Builder.define_func pb fid in
  Vm.Prog.Builder.terminate fb 0 Vm.Isa.Halt;
  Alcotest.(check bool) "double terminate rejected" true
    (try
       Vm.Prog.Builder.terminate fb 0 Vm.Isa.Halt;
       false
     with Invalid_argument _ -> true)

let test_builder_undefined_function () =
  let pb = Vm.Prog.Builder.create () in
  let _ = Vm.Prog.Builder.declare_func pb "ghost" ~n_params:0 in
  Alcotest.(check bool) "undefined function rejected" true
    (try
       ignore (Vm.Prog.Builder.finish pb ~main:"ghost");
       false
     with Invalid_argument _ -> true)

let test_globals_disjoint () =
  let pb = Vm.Prog.Builder.create () in
  let a = Vm.Prog.Builder.alloc_global pb "a" 10 in
  let b = Vm.Prog.Builder.alloc_global pb "b" 5 in
  Alcotest.(check bool) "non-overlapping" true (b >= a + 10)

(* --- Vecint ---------------------------------------------------------- *)

let test_vecint () =
  Alcotest.(check bool) "lex order" true (V.compare_lex [| 1; 2 |] [| 1; 3 |] < 0);
  Alcotest.(check bool) "prefix shorter" true (V.compare_lex [| 1 |] [| 1; 0 |] < 0);
  Alcotest.(check int) "dot" 11 (V.dot [| 1; 2 |] [| 3; 4 |]);
  Alcotest.(check (array int)) "add" [| 4; 6 |] (V.add [| 1; 2 |] [| 3; 4 |]);
  Alcotest.(check bool) "first nonzero" true
    (V.first_nonzero [| 0; 0; 5 |] = Some 2);
  Alcotest.(check bool) "all zero" true (V.first_nonzero [| 0; 0 |] = None);
  Alcotest.(check string) "pp" "(1, -2)" (V.to_string [| 1; -2 |])

(* --- Affine ---------------------------------------------------------- *)

let test_affine_algebra () =
  let x = A.var ~dim:2 0 and y = A.var ~dim:2 1 in
  let e = A.add (A.scale (Rat.of_int 3) x) (A.sub y (A.const ~dim:2 (Rat.of_int 5))) in
  (* 3x + y - 5 *)
  Alcotest.(check bool) "eval" true
    (Rat.equal (A.eval e [| 2; 4 |]) (Rat.of_int 5));
  let e' = A.substitute e 0 (A.add y (A.const ~dim:2 Rat.one)) in
  (* x := y + 1  =>  3y + 3 + y - 5 = 4y - 2 *)
  Alcotest.(check bool) "substitute" true
    (Rat.equal (A.eval e' [| 99; 3 |]) (Rat.of_int 10));
  let ext = A.extend e 4 in
  Alcotest.(check int) "extend dim" 4 (A.dim ext);
  Alcotest.(check bool) "extend preserves value" true
    (Rat.equal (A.eval ext [| 2; 4; 7; 7 |]) (Rat.of_int 5));
  Alcotest.(check bool) "constant detection" true
    (A.is_constant (A.const ~dim:3 (Rat.of_int 9)));
  Alcotest.(check string) "pp" "3i0 + i1 - 5" (A.to_string e)

(* --- Hull.widen_union ------------------------------------------------ *)

let test_widen_union () =
  let module P = Minisl.Polyhedron in
  let module C = Minisl.Constr in
  let box a b =
    P.make 1 [ C.make Ge [| 1 |] (-a); C.make Ge [| -1 |] b ]
  in
  let u = Minisl.Pset.union (Minisl.Pset.singleton (box 0 2)) (Minisl.Pset.singleton (box 8 10)) in
  let w = Minisl.Hull.widen_union u in
  Alcotest.(check int) "one disjunct" 1 (Minisl.Pset.n_disjuncts w);
  Alcotest.(check bool) "covers the gap" true (Minisl.Pset.mem w [| 5 |]);
  Alcotest.(check bool) "still bounded" false (Minisl.Pset.mem w [| 11 |])

(* --- Cct --------------------------------------------------------- *)

let test_cct_contexts_distinguished () =
  (* the same callee from two different sites gives two CCT nodes *)
  let open Vm.Hir.Dsl in
  let module H = Vm.Hir in
  let prog =
    H.lower
      { H.funs =
          [ H.fundef "g" [] [ H.Let ("x", i 1) ];
            H.fundef "main" []
              [ H.CallS (None, "g", []); H.CallS (None, "g", []) ] ];
        arrays = [];
        main = "main" }
  in
  let cct = Ddg.Cct.create ~main:prog.Vm.Prog.main in
  let callbacks =
    { Vm.Interp.on_control = Ddg.Cct.on_control cct;
      on_exec = (fun _ -> Ddg.Cct.add_weight cct 1) }
  in
  let (_ : Vm.Interp.stats) = Vm.Interp.run ~callbacks prog in
  (* root + two site-labelled children *)
  Alcotest.(check int) "three nodes" 3 (Ddg.Cct.n_nodes cct);
  let children = Ddg.Cct.children_in_order (Ddg.Cct.root cct) in
  Alcotest.(check int) "two call sites" 2 (List.length children);
  List.iter
    (fun (c : Ddg.Cct.node) ->
      Alcotest.(check int) "entered once" 1 c.calls)
    children

(* --- Domain_params pp ------------------------------------------------ *)

let test_domain_params_pp () =
  let module P = Minisl.Polyhedron in
  let module C = Minisl.Constr in
  let dp = Sched.Domain_params.create ~threshold:100 ~slack:20 () in
  let p = P.make 1 [ C.make Ge [| 1 |] 0; C.make Ge [| -1 |] 1024 ] in
  let out = Format.asprintf "%a" (Sched.Domain_params.pp_domain dp ?names:None) p in
  Alcotest.(check bool) "binder present" true
    (String.length out > 0 && out.[0] = '[');
  Alcotest.(check bool) "definition recorded" true
    (let needle = "n0 = 1024" in
     let nl = String.length needle and hl = String.length out in
     let rec go i = i + nl <= hl && (String.sub out i nl = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "units"
    [ ( "isa",
        [ Alcotest.test_case "sid roundtrip" `Quick test_sid_roundtrip;
          Alcotest.test_case "sid distinct" `Quick test_sid_distinct;
          Alcotest.test_case "op classes" `Quick test_op_classes ] );
      ( "builder",
        [ Alcotest.test_case "unterminated block" `Quick
            test_builder_unterminated_block;
          Alcotest.test_case "double terminate" `Quick test_builder_double_terminate;
          Alcotest.test_case "undefined function" `Quick
            test_builder_undefined_function;
          Alcotest.test_case "globals disjoint" `Quick test_globals_disjoint ] );
      ( "vectors & affine",
        [ Alcotest.test_case "vecint" `Quick test_vecint;
          Alcotest.test_case "affine algebra" `Quick test_affine_algebra ] );
      ( "hulls & trees",
        [ Alcotest.test_case "widen_union" `Quick test_widen_union;
          Alcotest.test_case "CCT call-site contexts" `Quick
            test_cct_contexts_distinguished ] );
      ( "rendering",
        [ Alcotest.test_case "domain parameterisation pp" `Quick
            test_domain_params_pp ] ) ]
