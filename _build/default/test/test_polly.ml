(* Tests for the static Polly baseline (Experiment II): every failure
   reason code in isolation, inlining behaviour, and the full
   19-benchmark reason-string comparison against the paper's Table 5. *)

open Vm.Hir.Dsl
module H = Vm.Hir
module PL = Staticbase.Polly_lite

let verdict_of ?attrs body =
  let f = H.fundef ?attrs "kernel" [ "ptr"; "n" ] body in
  PL.analyse_fundef
    { H.funs = [ f ]; arrays = [ ("arr", 64); ("idx", 64) ]; main = "kernel" }
    f

let codes v = PL.reasons_string v

let test_clean_affine () =
  let v =
    verdict_of
      [ H.for_ "x" (i 0) (v "n")
          [ H.for_ "y" (i 0) (v "n")
              [ store "arr" ((v "x" *! v "n") +! v "y") (v "x" +! v "y") ] ] ]
  in
  Alcotest.(check bool) "modeled" true v.PL.modeled;
  Alcotest.(check string) "no reasons" "-" (codes v);
  Alcotest.(check int) "full depth" 2 v.PL.modeled_depth

let test_reason_R () =
  (* an unknown callee *)
  let v =
    verdict_of [ H.for_ "x" (i 0) (v "n") [ H.CallS (None, "mystery", []) ] ]
  in
  Alcotest.(check string) "R" "R" (codes v)

let test_intrinsics_ok () =
  let f = H.fundef "kernel" [ "n" ]
      [ H.for_ "x" (i 0) (v "n") [ H.CallS (Some "e", "exp", [ f 1.0 ]) ] ]
  in
  let v = PL.analyse_fundef { H.funs = [ f ]; arrays = []; main = "kernel" } f in
  Alcotest.(check bool) "exp is handled" true v.PL.modeled

let test_reason_C () =
  let v =
    verdict_of
      [ H.for_ "x" (i 0) (v "n") [ H.If (v "x" >! i 3, [ H.Break ], []) ] ]
  in
  Alcotest.(check string) "C" "C" (codes v)

let test_reason_B_loaded_bound () =
  let v =
    verdict_of
      [ H.Let ("m", "arr".%[i 0]);
        H.for_ "x" (i 0) (v "m") [ store "arr" (v "x") (v "x") ] ]
  in
  Alcotest.(check string) "B" "B" (codes v)

let test_reason_B_while () =
  let v = verdict_of [ H.while_ (v "n" >! i 0) [ H.Let ("n", v "n" -! i 1) ] ] in
  Alcotest.(check string) "B" "B" (codes v)

let test_reason_F_indirect () =
  let v =
    verdict_of
      [ H.for_ "x" (i 0) (v "n")
          [ store "arr" "idx".%[v "x"] (v "x") ] ]
  in
  Alcotest.(check string) "F" "F" (codes v)

let test_reason_A_attr () =
  let v =
    verdict_of ~attrs:[ H.May_alias ]
      [ H.for_ "x" (i 0) (v "n") [ store "arr" (v "x") (v "x") ] ]
  in
  Alcotest.(check string) "A" "A" (codes v)

let test_reason_P_loaded_base () =
  let v =
    verdict_of
      [ H.for_ "x" (i 0) (v "n")
          [ H.Let ("rowp", "idx".%[v "x" *! i 0]);
            H.Let ("val", load (v "rowp" +! v "x"));
            store "arr" (v "x") (v "val") ] ]
  in
  Alcotest.(check string) "P" "P" (codes v)

let test_select_not_complex () =
  (* data-dependent scalar select: if-converted, no B *)
  let v =
    verdict_of
      [ H.for_ "x" (i 0) (v "n")
          [ H.Let ("a", "arr".%[v "x"]);
            H.Let ("best", i 0);
            H.If (v "a" >! i 5, [ H.Let ("best", v "x") ], []);
            store "idx" (v "x") (v "best") ] ]
  in
  Alcotest.(check bool) "no B for a select" true
    (not (List.mem PL.B_nonaffine_bound v.PL.reasons))

let test_guarded_store_is_B () =
  let v =
    verdict_of
      [ H.for_ "x" (i 0) (v "n")
          [ H.Let ("a", "arr".%[v "x"]);
            H.If (v "a" >! i 5, [ store "idx" (v "x") (i 1) ], []) ] ]
  in
  Alcotest.(check bool) "guarded store is B" true
    (List.mem PL.B_nonaffine_bound v.PL.reasons)

let test_param_times_iterator_affine () =
  (* k * n + j with parametric n: handled by polyhedral tools *)
  let v =
    verdict_of
      [ H.for_ "k" (i 0) (v "n")
          [ H.for_ "j" (i 0) (v "n")
              [ store "arr" ((v "k" *! v "n") +! v "j") (v "j") ] ] ]
  in
  Alcotest.(check bool) "parametric stride modeled" true v.PL.modeled

let test_inlining_merges_reasons () =
  let callee =
    H.fundef "helper" [ "p" ]
      [ H.for_ "y" (i 0) (i 4) [ store "arr" "idx".%[v "y"] (v "y") ] ]
  in
  let caller =
    H.fundef "kernel" [ "n" ]
      [ H.for_ "x" (i 0) (v "n") [ H.CallS (None, "helper", [ v "x" ]) ] ]
  in
  let p = { H.funs = [ callee; caller ]; arrays = [ ("arr", 8); ("idx", 8) ]; main = "kernel" } in
  let v = PL.analyse_fundef p caller in
  (* the callee is inlined: F shows through, no R *)
  Alcotest.(check string) "F from the inlined body" "F" (codes v)

let test_blacklisted_callee_is_R () =
  let callee = H.fundef ~blacklisted:true "libfun" [] [ H.Return None ] in
  let caller =
    H.fundef "kernel" [ "n" ]
      [ H.for_ "x" (i 0) (v "n") [ H.CallS (None, "libfun", []) ] ]
  in
  let p = { H.funs = [ callee; caller ]; arrays = []; main = "kernel" } in
  Alcotest.(check string) "R" "R" (codes (PL.analyse_fundef p caller))

let test_recursive_inline_guard () =
  let rec_fn =
    H.fundef "kernel" [ "n" ]
      [ H.for_ "x" (i 0) (v "n") [ H.CallS (None, "kernel", [ v "n" ]) ] ]
  in
  let p = { H.funs = [ rec_fn ]; arrays = []; main = "kernel" } in
  (* recursion cannot be inlined away: reported as R *)
  Alcotest.(check string) "R" "R" (codes (PL.analyse_fundef p rec_fn))

let test_modeled_depth () =
  (* an affine sibling nest remains a modelable subregion even when the
     hot nest fails ("Polly was able to model some smaller subregions") *)
  let v =
    verdict_of
      [ H.for_ "x" (i 0) (v "n")
          [ H.for_ "x2" (i 0) (v "n") [ store "arr" (v "x2") (v "x") ] ];
        H.for_ "w" (i 0) (v "n") [ store "arr" "idx".%[v "w"] (v "w") ] ]
  in
  Alcotest.(check bool) "not fully modeled" false v.PL.modeled;
  Alcotest.(check int) "clean 2-D subregion found" 2 v.PL.modeled_depth;
  Alcotest.(check int) "total depth" 2 v.PL.total_depth

(* the headline check: all 19 mini-Rodinia reason strings match Table 5 *)
let test_table5_reasons () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      match w.paper with
      | Some paper ->
          let v = PL.analyse_function w.hir w.kernel_func in
          Alcotest.(check string)
            (Printf.sprintf "%s reasons" w.w_name)
            paper.Workloads.Workload.p_polly (codes v)
      | None -> ())
    Workloads.Rodinia.all

let () =
  Alcotest.run "polly_lite"
    [ ( "reason codes",
        [ Alcotest.test_case "clean affine region" `Quick test_clean_affine;
          Alcotest.test_case "R: unknown call" `Quick test_reason_R;
          Alcotest.test_case "intrinsics handled" `Quick test_intrinsics_ok;
          Alcotest.test_case "C: break" `Quick test_reason_C;
          Alcotest.test_case "B: loaded bound" `Quick test_reason_B_loaded_bound;
          Alcotest.test_case "B: while" `Quick test_reason_B_while;
          Alcotest.test_case "F: indirection" `Quick test_reason_F_indirect;
          Alcotest.test_case "A: aliasing" `Quick test_reason_A_attr;
          Alcotest.test_case "P: loaded base" `Quick test_reason_P_loaded_base;
          Alcotest.test_case "select is not B" `Quick test_select_not_complex;
          Alcotest.test_case "guarded store is B" `Quick test_guarded_store_is_B;
          Alcotest.test_case "parametric stride" `Quick
            test_param_times_iterator_affine;
          Alcotest.test_case "modeled depth" `Quick test_modeled_depth ] );
      ( "inlining",
        [ Alcotest.test_case "reasons merge through calls" `Quick
            test_inlining_merges_reasons;
          Alcotest.test_case "library calls stay R" `Quick
            test_blacklisted_callee_is_R;
          Alcotest.test_case "recursion guard" `Quick test_recursive_inline_guard
        ] );
      ( "experiment II",
        [ Alcotest.test_case "all 19 Table-5 reason strings" `Slow
            test_table5_reasons ] ) ]
