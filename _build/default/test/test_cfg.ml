(* Tests for control-structure recovery: digraph, SCC, the Fig. 2
   loop-nesting-tree and recursive-component-set, and dynamic CFG
   construction from the event stream. *)

module G = Cfg.Digraph
module L = Cfg.Loopnest
module R = Cfg.Recset

(* Fig. 2a: A -> B; B -> C; B -> D(?); C <-> D (loop L2); D -> B
   (back-edge of L1); B -> E.
   Nodes: A=0 B=1 C=2 D=3 E=4.
   Edges per figure: A->B, B->C, C->D, D->C, D->B, B->E. *)
let fig2_cfg () =
  let g = G.create () in
  List.iter
    (fun (a, b) -> G.add_edge g a b)
    [ (0, 1); (1, 2); (2, 3); (3, 2); (3, 1); (1, 4) ];
  g

let test_digraph_basics () =
  let g = fig2_cfg () in
  Alcotest.(check int) "5 nodes" 5 (G.n_nodes g);
  Alcotest.(check int) "6 edges" 6 (G.n_edges g);
  Alcotest.(check (list int)) "succs of B" [ 2; 4 ] (G.succs g 1);
  Alcotest.(check (list int)) "preds of C" [ 1; 3 ] (G.preds g 2);
  Alcotest.(check bool) "edge dedup" true
    (G.add_edge g 0 1;
     G.n_edges g = 6)

let test_rpo () =
  let g = fig2_cfg () in
  let rpo = G.reverse_postorder g ~root:0 in
  Alcotest.(check int) "all reachable" 5 (List.length rpo);
  Alcotest.(check int) "root first" 0 (List.hd rpo)

let test_scc () =
  let g = fig2_cfg () in
  let sccs = Cfg.Scc.compute g in
  let cyclic = List.filter (Cfg.Scc.has_cycle g) sccs in
  (* one big SCC {B, C, D} *)
  Alcotest.(check int) "one cyclic SCC" 1 (List.length cyclic);
  Alcotest.(check (list int)) "members" [ 1; 2; 3 ]
    (List.sort compare (List.hd cyclic))

let test_self_loop_scc () =
  let g = G.create () in
  G.add_edge g 0 0;
  G.add_node g 1;
  let cyclic = List.filter (Cfg.Scc.has_cycle g) (Cfg.Scc.compute g) in
  Alcotest.(check int) "self loop is cyclic" 1 (List.length cyclic)

(* Fig. 2b: the loop-nesting-tree has L1 (header B) containing L2
   (header C), with A and E outside. *)
let test_fig2_loop_forest () =
  let forest = L.compute (fig2_cfg ()) ~entry:0 in
  Alcotest.(check int) "two loops" 2 (L.n_loops forest);
  (match L.toplevel forest with
  | [ l1 ] ->
      Alcotest.(check int) "L1 header is B" 1 l1.L.header;
      Alcotest.(check (list int)) "L1 region" [ 1; 2; 3 ] l1.L.members;
      Alcotest.(check int) "L1 depth" 1 l1.L.depth;
      (match l1.L.children with
      | [ l2 ] ->
          Alcotest.(check int) "L2 header is C" 2 l2.L.header;
          Alcotest.(check (list int)) "L2 region" [ 2; 3 ] l2.L.members;
          Alcotest.(check int) "L2 depth" 2 l2.L.depth
      | _ -> Alcotest.fail "L1 should have exactly one sub-loop")
  | _ -> Alcotest.fail "expected a single top-level loop");
  Alcotest.(check bool) "B is header" true (L.is_header forest 1);
  Alcotest.(check bool) "D is not" false (L.is_header forest 3);
  (* innermost containing *)
  (match L.innermost_containing forest 3 with
  | Some l -> Alcotest.(check int) "D innermost is L2" 2 l.L.header
  | None -> Alcotest.fail "D is in a loop");
  Alcotest.(check int) "max depth" 2 (L.max_depth forest);
  Alcotest.(check int) "loops containing D" 2
    (List.length (L.loops_containing forest 3))

let test_back_edges () =
  let forest = L.compute (fig2_cfg ()) ~entry:0 in
  match L.toplevel forest with
  | [ l1 ] ->
      Alcotest.(check (list (pair int int))) "back edge D->B" [ (3, 1) ]
        l1.L.back_edges
  | _ -> Alcotest.fail "one top loop"

(* Fig. 2c/d: call graph M -> {A, B}; A -> B; B -> {B (self), C};
   nodes M=0 A=1 B=2 C=3.  The figure's recursive-component has
   components {L1} with entries {B} and headers {B, C}?  (the paper's
   example d has L1.entries = {B}, L1.headers = {B, C} for a CG where
   B and C call each other).  We model that CG: M->B, B->C, C->B. *)
let test_recset_mutual () =
  let g = G.create () in
  List.iter (fun (a, b) -> G.add_edge g a b) [ (0, 2); (2, 3); (3, 2) ];
  let rs = R.compute g ~main:0 in
  match R.components rs with
  | [ c ] ->
      Alcotest.(check (list int)) "members" [ 2; 3 ] c.R.members;
      Alcotest.(check (list int)) "entries = {B}" [ 2 ] c.R.entries;
      (* peeling B leaves the C->B edge ... removing edges to B kills the
         cycle in one step, so headers = {B} here; add a second cycle
         through C to require two headers *)
      Alcotest.(check bool) "B is a header" true (List.mem 2 c.R.headers)
  | _ -> Alcotest.fail "expected one component"

let test_recset_self_recursion () =
  let g = G.create () in
  G.add_edge g 0 1;
  G.add_edge g 1 1;
  let rs = R.compute g ~main:0 in
  (match R.components rs with
  | [ c ] ->
      Alcotest.(check (list int)) "members = {B}" [ 1 ] c.R.members;
      Alcotest.(check (list int)) "headers = {B}" [ 1 ] c.R.headers
  | _ -> Alcotest.fail "one component");
  Alcotest.(check bool) "B is entry" true (R.is_entry rs 1);
  Alcotest.(check bool) "B is header" true (R.is_header rs 1);
  Alcotest.(check bool) "M in no component" true (R.component_of rs 0 = None)

let test_recset_two_headers () =
  (* two intertwined cycles: B <-> C and B <-> D: peeling one node is not
     enough *)
  let g = G.create () in
  List.iter
    (fun (a, b) -> G.add_edge g a b)
    [ (0, 1); (1, 2); (2, 1); (1, 3); (3, 1); (2, 3); (3, 2) ];
  let rs = R.compute g ~main:0 in
  match R.components rs with
  | [ c ] ->
      Alcotest.(check bool) "at least 2 headers" true
        (List.length c.R.headers >= 2)
  | _ -> Alcotest.fail "one component"

let test_acyclic_cg_has_no_components () =
  let g = G.create () in
  List.iter (fun (a, b) -> G.add_edge g a b) [ (0, 1); (0, 2); (1, 2) ];
  let rs = R.compute g ~main:0 in
  Alcotest.(check int) "no recursive components" 0
    (List.length (R.components rs))

(* dynamic CFG reconstruction from an actual run *)
let test_dynamic_cfg () =
  let open Vm.Hir.Dsl in
  let module H = Vm.Hir in
  let hir : H.program =
    { H.funs =
        [ H.fundef "g" []
            [ H.for_ "j" (i 0) (i 3) [ H.Let ("x", v "j") ] ];
          H.fundef "main" []
            [ H.for_ "k" (i 0) (i 2) [ H.CallS (None, "g", []) ] ] ];
      arrays = [];
      main = "main" }
  in
  let prog = H.lower hir in
  let s = Cfg.Cfg_builder.run prog in
  (* both functions executed: 2 CFGs *)
  Alcotest.(check int) "two functions profiled" 2 (List.length s.Cfg.Cfg_builder.cfgs);
  let main_fid = prog.Vm.Prog.main in
  (match Cfg.Cfg_builder.forest_of s main_fid with
  | Some forest -> Alcotest.(check int) "main has one loop" 1 (L.n_loops forest)
  | None -> Alcotest.fail "main CFG missing");
  (* the call edge is in the CG *)
  let gf = (Vm.Prog.func_by_name prog "g").Vm.Prog.fid in
  Alcotest.(check bool) "CG edge main->g" true
    (G.mem_edge s.Cfg.Cfg_builder.cg main_fid gf);
  Alcotest.(check int) "one call site" 1 (List.length s.Cfg.Cfg_builder.call_sites)

(* property: loop forest partitions — every node is in at most max_depth
   loops and members of children are subsets of parents *)
let prop_forest_nesting =
  QCheck.Test.make ~name:"children regions nest inside parents" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 4 20)
       (QCheck.pair (QCheck.int_bound 9) (QCheck.int_bound 9)))
    (fun edges ->
      let g = G.create () in
      G.add_node g 0;
      List.iter (fun (a, b) -> G.add_edge g a b) edges;
      let forest = L.compute g ~entry:0 in
      let rec check (l : L.loop) =
        List.for_all
          (fun (c : L.loop) ->
            List.for_all (fun m -> List.mem m l.L.members) c.L.members
            && c.L.depth = l.L.depth + 1
            && check c)
          l.L.children
      in
      List.for_all check (L.toplevel forest))

let prop_scc_partition =
  QCheck.Test.make ~name:"SCCs partition the nodes" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 25)
       (QCheck.pair (QCheck.int_bound 11) (QCheck.int_bound 11)))
    (fun edges ->
      let g = G.create () in
      List.iter (fun (a, b) -> G.add_edge g a b) edges;
      let sccs = Cfg.Scc.compute g in
      let all = List.concat sccs in
      List.sort compare all = G.nodes g)

let () =
  Alcotest.run "cfg"
    [ ( "digraph",
        [ Alcotest.test_case "basics" `Quick test_digraph_basics;
          Alcotest.test_case "reverse postorder" `Quick test_rpo ] );
      ( "scc",
        [ Alcotest.test_case "fig2 SCC" `Quick test_scc;
          Alcotest.test_case "self loop" `Quick test_self_loop_scc ] );
      ( "loop forest (Fig. 2a/b)",
        [ Alcotest.test_case "structure" `Quick test_fig2_loop_forest;
          Alcotest.test_case "back edges" `Quick test_back_edges ] );
      ( "recursive components (Fig. 2c/d)",
        [ Alcotest.test_case "mutual recursion" `Quick test_recset_mutual;
          Alcotest.test_case "self recursion" `Quick test_recset_self_recursion;
          Alcotest.test_case "two headers" `Quick test_recset_two_headers;
          Alcotest.test_case "acyclic CG" `Quick test_acyclic_cg_has_no_components
        ] );
      ( "dynamic CFG",
        [ Alcotest.test_case "reconstruction from a run" `Quick test_dynamic_cfg ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_forest_nesting; prop_scc_partition ] ) ]
