(* Tests for HIR lowering: block structure, unrolling, source depth. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let test_unroll_disappears () =
  let body unroll =
    [ H.for_ "k" (i 0) (i 4) ~unroll [ store "a" (v "k") (v "k" *! i 2) ] ]
  in
  let p1 = H.lower { H.funs = [ H.fundef "main" [] (body false) ]; arrays = [ ("a", 4) ]; main = "main" } in
  let p2 = H.lower { H.funs = [ H.fundef "main" [] (body true) ]; arrays = [ ("a", 4) ]; main = "main" } in
  let blocks p = Array.length p.Vm.Prog.funcs.(0).Vm.Prog.blocks in
  Alcotest.(check bool) "loop has blocks" true (blocks p1 > 2);
  Alcotest.(check int) "unrolled is a single block" 1 (blocks p2);
  (* both compute the same memory *)
  let _, m1 = Vm.Interp.run_with_memory p1 in
  let _, m2 = Vm.Interp.run_with_memory p2 in
  for k = 16 to 19 do
    Alcotest.(check bool) "same result" true (m1 k = m2 k)
  done

let test_unroll_needs_constants () =
  let hir =
    { H.funs =
        [ H.fundef "main" []
            [ H.Let ("n", i 4);
              H.for_ ~unroll:true "k" (i 0) (v "n") [ H.Let ("x", v "k") ] ] ];
      arrays = [];
      main = "main" }
  in
  Alcotest.(check bool) "unroll of dynamic bound fails" true
    (try
       ignore (H.lower hir);
       false
     with H.Lower_error _ -> true)

let test_break_outside_loop () =
  let hir = { H.funs = [ H.fundef "main" [] [ H.Break ] ]; arrays = []; main = "main" } in
  Alcotest.(check bool) "break outside loop rejected" true
    (try
       ignore (H.lower hir);
       false
     with H.Lower_error _ -> true)

let test_unknown_function () =
  let hir =
    { H.funs = [ H.fundef "main" [] [ H.CallS (None, "nope", []) ] ];
      arrays = [];
      main = "main" }
  in
  Alcotest.(check bool) "unknown callee rejected" true
    (try
       ignore (H.lower hir);
       false
     with H.Lower_error _ -> true)

let test_loop_depth () =
  let f =
    H.fundef "f" []
      [ H.for_ "a" (i 0) (i 2)
          [ H.If (i 1, [ H.for_ "b" (i 0) (i 2) [ H.while_ (i 0) [] ] ], []) ] ]
  in
  Alcotest.(check int) "intraprocedural depth" 3 (H.loop_depth f)

let test_src_loop_depth_interprocedural () =
  let hir : H.program =
    { H.funs =
        [ H.fundef "leaf" [] [ H.for_ "c" (i 0) (i 2) [ H.Let ("x", v "c") ] ];
          H.fundef "mid" []
            [ H.for_ "b" (i 0) (i 2) [ H.CallS (None, "leaf", []) ] ];
          H.fundef "main" []
            [ H.for_ "a" (i 0) (i 2) [ H.CallS (None, "mid", []) ] ] ];
      arrays = [];
      main = "main" }
  in
  Alcotest.(check int) "a + b + c" 3 (Workloads.Workload.src_loop_depth hir)

let test_src_loop_depth_recursion_cut () =
  let hir : H.program =
    { H.funs =
        [ H.fundef "r" [ "d" ]
            [ H.for_ "k" (i 0) (i 2)
                [ H.If (v "d" <! i 2, [ H.CallS (None, "r", [ v "d" +! i 1 ]) ], []) ] ];
          H.fundef "main" [] [ H.CallS (None, "r", [ i 0 ]) ] ];
      arrays = [];
      main = "main" }
  in
  (* the recursive cycle is cut: depth 1, not infinite *)
  Alcotest.(check int) "recursion cut" 1 (Workloads.Workload.src_loop_depth hir)

let test_if_branches () =
  let hir =
    { H.funs =
        [ H.fundef "main" []
            [ H.for_ "k" (i 0) (i 6)
                [ H.If
                    ( v "k" %! i 2 ==! i 0,
                      [ store "a" (v "k") (i 100) ],
                      [ store "a" (v "k") (i 200) ] ) ] ] ];
      arrays = [ ("a", 6) ];
      main = "main" }
  in
  let _, mem = Vm.Interp.run_with_memory (H.lower hir) in
  let get k = match mem (16 + k) with Some (Vm.Event.I v) -> v | _ -> -1 in
  Alcotest.(check int) "even" 100 (get 0);
  Alcotest.(check int) "odd" 200 (get 1);
  Alcotest.(check int) "even" 100 (get 4)

let test_step_loop () =
  let hir =
    { H.funs =
        [ H.fundef "main" []
            [ H.Let ("n", i 0);
              H.for_ ~step:3 "k" (i 0) (i 10) [ H.Let ("n", v "n" +! i 1) ];
              store "cnt" (i 0) (v "n") ] ];
      arrays = [ ("cnt", 1) ];
      main = "main" }
  in
  let _, mem = Vm.Interp.run_with_memory (H.lower hir) in
  Alcotest.(check bool) "k = 0,3,6,9" true (mem 16 = Some (Vm.Event.I 4))

let test_pp_program () =
  let out =
    Format.asprintf "%a" Vm.Hir.pp_program Workloads.Pathfinder.workload.hir
  in
  let contains needle =
    let nl = String.length needle and hl = String.length out in
    let rec go i = i + nl <= hl && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "array decls" true (contains "float wall[288];");
  Alcotest.(check bool) "loop header with loc" true
    (contains "/* pathfinder.cpp:99 */");
  Alcotest.(check bool) "indexed store" true (contains "rowptr[0]");
  Alcotest.(check bool) "function header" true (contains "pathfinder_kernel()")

let () =
  Alcotest.run "hir"
    [ ( "lowering",
        [ Alcotest.test_case "full unroll" `Quick test_unroll_disappears;
          Alcotest.test_case "unroll needs constants" `Quick
            test_unroll_needs_constants;
          Alcotest.test_case "break outside loop" `Quick test_break_outside_loop;
          Alcotest.test_case "unknown callee" `Quick test_unknown_function;
          Alcotest.test_case "if/else" `Quick test_if_branches;
          Alcotest.test_case "step loop" `Quick test_step_loop;
          Alcotest.test_case "source pretty-printer" `Quick test_pp_program ] );
      ( "depth",
        [ Alcotest.test_case "intraprocedural loop depth" `Quick test_loop_depth;
          Alcotest.test_case "interprocedural source depth" `Quick
            test_src_loop_depth_interprocedural;
          Alcotest.test_case "recursion cut" `Quick
            test_src_loop_depth_recursion_cut ] ) ]
