(* Unit and property tests for exact rationals. *)

module Rat = Pp_util.Rat

let rat = Alcotest.testable (fun fmt r -> Rat.pp fmt r) Rat.equal

let test_make_normalises () =
  Alcotest.check rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  Alcotest.check rat "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
  Alcotest.check rat "6/-4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  Alcotest.check rat "0/7 = 0" Rat.zero (Rat.make 0 7);
  Alcotest.check Alcotest.int "den of 0 is 1" 1 (Rat.den (Rat.make 0 5))

let test_zero_den () =
  Alcotest.check_raises "0 denominator" Rat.Division_by_zero (fun () ->
      ignore (Rat.make 1 0))

let test_arith () =
  Alcotest.check rat "1/2 + 1/3" (Rat.make 5 6)
    (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "1/2 - 1/3" (Rat.make 1 6)
    (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "2/3 * 3/4" (Rat.make 1 2)
    (Rat.mul (Rat.make 2 3) (Rat.make 3 4));
  Alcotest.check rat "(2/3) / (4/3)" (Rat.make 1 2)
    (Rat.div (Rat.make 2 3) (Rat.make 4 3))

let test_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Rat.floor (Rat.make 7 2));
  Alcotest.(check int) "ceil 7/2" 4 (Rat.ceil (Rat.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Rat.floor (Rat.make (-7) 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Rat.ceil (Rat.make (-7) 2));
  Alcotest.(check int) "floor 4" 4 (Rat.floor (Rat.of_int 4));
  Alcotest.(check int) "ceil -4" (-4) (Rat.ceil (Rat.of_int (-4)))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true
    (Rat.compare (Rat.make 1 3) (Rat.make 1 2) < 0);
  Alcotest.(check bool) "-1/3 > -1/2" true
    (Rat.compare (Rat.make (-1) 3) (Rat.make (-1) 2) > 0);
  Alcotest.(check int) "sign -5/3" (-1) (Rat.sign (Rat.make (-5) 3));
  Alcotest.(check int) "sign 0" 0 (Rat.sign Rat.zero)

let test_gcd_lcm () =
  Alcotest.(check int) "gcd 12 18" 6 (Rat.gcd 12 18);
  Alcotest.(check int) "gcd 0 5" 5 (Rat.gcd 0 5);
  Alcotest.(check int) "gcd -12 18" 6 (Rat.gcd (-12) 18);
  Alcotest.(check int) "lcm 4 6" 12 (Rat.lcm 4 6);
  Alcotest.(check int) "lcm 0 6" 0 (Rat.lcm 0 6)

(* property tests *)

let small = QCheck.int_range (-1000) 1000
let small_nz = QCheck.map (fun n -> if n >= 0 then n + 1 else n) small
let arb_rat = QCheck.map (fun (n, d) -> Rat.make n d) (QCheck.pair small small_nz)

let prop_add_comm =
  QCheck.Test.make ~name:"add commutative" ~count:500
    (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      Rat.equal (Rat.add a b) (Rat.add b a))

let prop_add_assoc =
  QCheck.Test.make ~name:"add associative" ~count:500
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Rat.equal (Rat.add a (Rat.add b c)) (Rat.add (Rat.add a b) c))

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes over add" ~count:500
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

let prop_sub_inverse =
  QCheck.Test.make ~name:"a - a = 0" ~count:500 arb_rat (fun a ->
      Rat.is_zero (Rat.sub a a))

let prop_inv =
  QCheck.Test.make ~name:"a * 1/a = 1" ~count:500 arb_rat (fun a ->
      QCheck.assume (not (Rat.is_zero a));
      Rat.equal Rat.one (Rat.mul a (Rat.inv a)))

let prop_floor_ceil_bounds =
  QCheck.Test.make ~name:"floor <= x <= ceil, within 1" ~count:500 arb_rat
    (fun a ->
      let f = Rat.of_int (Rat.floor a) and c = Rat.of_int (Rat.ceil a) in
      Rat.compare f a <= 0
      && Rat.compare a c <= 0
      && Rat.ceil a - Rat.floor a <= 1)

let prop_canonical =
  QCheck.Test.make ~name:"canonical form: den > 0, coprime" ~count:500
    (QCheck.pair small small_nz) (fun (n, d) ->
      let r = Rat.make n d in
      Rat.den r > 0 && Rat.gcd (Rat.num r) (Rat.den r) <= 1 || Rat.is_zero r)

let () =
  Alcotest.run "rat"
    [ ( "unit",
        [ Alcotest.test_case "normalisation" `Quick test_make_normalises;
          Alcotest.test_case "zero denominator" `Quick test_zero_den;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "compare/sign" `Quick test_compare;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_add_comm; prop_add_assoc; prop_mul_distributes;
            prop_sub_inverse; prop_inv; prop_floor_ceil_bounds; prop_canonical ]
      ) ]
