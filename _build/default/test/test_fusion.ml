(* Tests for fusion / distribution component counting. *)

open Vm.Hir.Dsl
module H = Vm.Hir
module F = Sched.Fusion

let analyse hir =
  let prog = H.lower hir in
  let structure = Cfg.Cfg_builder.run prog in
  let res = Ddg.Depprof.profile prog ~structure in
  Sched.Depanalysis.analyse prog res

let float_init name n =
  H.for_ (name ^ "i") (i 0) (i n)
    [ H.Store
        ( Base name +! v (name ^ "i"),
          Itof ((v (name ^ "i") *! v (name ^ "i")) %! i 37) /? f 3.0 ) ]

(* producer loop then pointwise consumer loop: fusable, with a dep *)
let fusable : H.program =
  { H.funs =
      [ H.fundef "main" []
          [ float_init "src" 64;
            H.for_ "p" (i 0) (i 64) [ store "a" (v "p") ("src".%[v "p"] *? f 2.0) ];
            H.for_ "c" (i 0) (i 64) [ store "b" (v "c") ("a".%[v "c"] +? f 1.0) ] ] ];
    arrays = [ ("src", 64); ("a", 64); ("b", 64) ];
    main = "main" }

(* consumer reads a reversed index: fusion illegal *)
let reversed : H.program =
  { H.funs =
      [ H.fundef "main" []
          [ float_init "src" 64;
            H.for_ "p" (i 0) (i 64) [ store "a" (v "p") ("src".%[v "p"] *? f 2.0) ];
            H.for_ "c" (i 0) (i 64)
              [ store "b" (v "c") ("a".%[i 63 -! v "c"] +? f 1.0) ] ] ];
    arrays = [ ("src", 64); ("a", 64); ("b", 64) ];
    main = "main" }

let test_components () =
  let a = analyse fusable in
  let comps = F.components a ~prefix:[] ~threshold:0.05 in
  Alcotest.(check int) "three top components" 3 (List.length comps);
  List.iter
    (fun c -> Alcotest.(check bool) "weights positive" true (c.F.c_weight > 0))
    comps

let test_threshold_filters () =
  let a = analyse fusable in
  let all = F.components a ~prefix:[] ~threshold:0.0 in
  let big = F.components a ~prefix:[] ~threshold:0.9 in
  Alcotest.(check bool) "threshold filters" true
    (List.length big < List.length all)

let test_smartfuse_merges_dependent () =
  let a = analyse fusable in
  let r = F.fuse a F.Smartfuse ~prefix:[] () in
  Alcotest.(check int) "before" 3 r.F.components_before;
  (* the pointwise chains can all fuse *)
  Alcotest.(check bool) "after < before" true
    (r.F.components_after < r.F.components_before)

let test_reversed_does_not_fuse () =
  let a = analyse reversed in
  let r = F.fuse a F.Maxfuse ~prefix:[] () in
  (* the reversal gives a negative fused distance for half the points:
     the last pair must stay separate *)
  Alcotest.(check bool) "reversal blocks fusion somewhere" true
    (r.F.components_after >= 2)

let test_maxfuse_geq_smartfuse () =
  let a = analyse fusable in
  let s = F.fuse a F.Smartfuse ~prefix:[] () in
  let m = F.fuse a F.Maxfuse ~prefix:[] () in
  Alcotest.(check bool) "maxfuse merges at least as much" true
    (m.F.components_after <= s.F.components_after)

let test_strategy_codes () =
  Alcotest.(check string) "S" "S" (F.strategy_code F.Smartfuse);
  Alcotest.(check string) "M" "M" (F.strategy_code F.Maxfuse)

let () =
  Alcotest.run "fusion"
    [ ( "components",
        [ Alcotest.test_case "counting" `Quick test_components;
          Alcotest.test_case "threshold" `Quick test_threshold_filters ] );
      ( "legality & heuristics",
        [ Alcotest.test_case "smartfuse merges dependent chain" `Quick
            test_smartfuse_merges_dependent;
          Alcotest.test_case "reversed dep blocks fusion" `Quick
            test_reversed_does_not_fuse;
          Alcotest.test_case "maxfuse >= smartfuse" `Quick
            test_maxfuse_geq_smartfuse;
          Alcotest.test_case "strategy codes" `Quick test_strategy_codes ] ) ]
