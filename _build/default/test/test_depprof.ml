(* Tests for Instrumentation II: shadow memory/registers, statement
   folding, SCEV recognition and pruning, dependence folding. *)

open Vm.Hir.Dsl
module H = Vm.Hir
module P = Minisl.Polyhedron
module A = Minisl.Affine
module Rat = Pp_util.Rat

let profile hir =
  let prog = H.lower hir in
  let structure = Cfg.Cfg_builder.run prog in
  (prog, Ddg.Depprof.profile prog ~structure)

let test_shadow_memory () =
  let s = Ddg.Shadow.create () in
  Alcotest.(check bool) "unknown addr" true (Ddg.Shadow.last_mem_writer s ~addr:5 = None);
  let o1 = { Ddg.Shadow.o_sid = 1; o_ctx = 0; o_coords = [| 3 |] } in
  Ddg.Shadow.write_mem s ~addr:5 o1;
  (match Ddg.Shadow.last_mem_writer s ~addr:5 with
  | Some o -> Alcotest.(check int) "writer sid" 1 o.Ddg.Shadow.o_sid
  | None -> Alcotest.fail "missing");
  let o2 = { o1 with Ddg.Shadow.o_sid = 2 } in
  Ddg.Shadow.write_mem s ~addr:5 o2;
  (match Ddg.Shadow.last_mem_writer s ~addr:5 with
  | Some o -> Alcotest.(check int) "last writer wins" 2 o.Ddg.Shadow.o_sid
  | None -> Alcotest.fail "missing");
  Alcotest.(check int) "one shadowed word" 1 (Ddg.Shadow.n_shadowed_words s)

let test_shadow_register_frames () =
  let s = Ddg.Shadow.create () in
  let o = { Ddg.Shadow.o_sid = 7; o_ctx = 0; o_coords = [||] } in
  Ddg.Shadow.write_reg s ~reg:3 o;
  Ddg.Shadow.push_frame s;
  Alcotest.(check bool) "callee frame is clean" true
    (Ddg.Shadow.last_reg_writer s ~reg:3 = None);
  Ddg.Shadow.write_reg s ~reg:3 { o with Ddg.Shadow.o_sid = 8 };
  Ddg.Shadow.pop_frame s;
  (match Ddg.Shadow.last_reg_writer s ~reg:3 with
  | Some o -> Alcotest.(check int) "caller frame restored" 7 o.Ddg.Shadow.o_sid
  | None -> Alcotest.fail "lost");
  Alcotest.check_raises "unbalanced pop" (Invalid_argument "Shadow.pop_frame: unbalanced")
    (fun () -> Ddg.Shadow.pop_frame s)

(* a producer loop feeding a consumer loop: one clean affine dep *)
let producer_consumer : H.program =
  { H.funs =
      [ H.fundef "main" []
          [ H.for_ "p" (i 0) (i 20) [ store "a" (v "p") (Itof (v "p") *? f 1.5) ];
            H.Let ("acc", f 0.0);
            H.for_ "c" (i 0) (i 20) [ H.Let ("acc", v "acc" +? "a".%[v "c"]) ] ] ];
    arrays = [ ("a", 20) ];
    main = "main" }

let test_mem_dep_folded () =
  let _, res = profile producer_consumer in
  let mem_deps =
    List.filter
      (fun (d : Ddg.Depprof.dep_info) -> d.dk.kind = Ddg.Depprof.Mem_dep)
      res.deps
  in
  Alcotest.(check int) "exactly one memory dep survives" 1
    (List.length mem_deps);
  let d = List.hd mem_deps in
  Alcotest.(check int) "20 dynamic edges" 20 d.d_count;
  (match d.d_pieces with
  | [ p ] ->
      Alcotest.(check bool) "exact" true p.Fold.exact;
      (match p.Fold.labels.(0) with
      | Some f ->
          (* producer iteration = consumer iteration *)
          Alcotest.(check bool) "identity map" true
            (Rat.equal f.A.coeffs.(0) Rat.one && Rat.is_zero f.A.const)
      | None -> Alcotest.fail "label lost")
  | _ -> Alcotest.fail "expected one piece");
  match Ddg.Depprof.dep_map d with
  | Some m -> (
      match Minisl.Pmap.apply_int m [| 7 |] with
      | Some img -> Alcotest.(check (array int)) "apply" [| 7 |] img
      | None -> Alcotest.fail "apply failed")
  | None -> Alcotest.fail "dep_map failed"

let test_scev_pruning () =
  let _, res = profile producer_consumer in
  Alcotest.(check bool) "pruned something" true (res.pruned_dep_edges > 0);
  let scevs = List.filter (fun (s : Ddg.Depprof.stmt_info) -> s.is_scev) res.stmts in
  Alcotest.(check bool) "found SCEV statements" true (List.length scevs >= 2);
  List.iter
    (fun (d : Ddg.Depprof.dep_info) ->
      List.iter
        (fun (s : Ddg.Depprof.stmt_info) ->
          if s.is_scev then begin
            Alcotest.(check bool) "scev not a producer" false
              (d.dk.src_sid = s.sk.s_sid && d.dk.src_ctx = s.sk.s_ctx);
            Alcotest.(check bool) "scev not a consumer" false
              (d.dk.dst_sid = s.sk.s_sid && d.dk.dst_ctx = s.sk.s_ctx)
          end)
        res.stmts)
    res.deps

let test_stmt_domains_exact () =
  let _, res = profile producer_consumer in
  List.iter
    (fun (s : Ddg.Depprof.stmt_info) ->
      if s.depth = 1 then begin
        Alcotest.(check bool) "loop statements fold exactly" true s.affine_exact;
        let pts =
          List.fold_left (fun acc (p : Fold.piece) -> acc + p.Fold.points) 0
            s.s_pieces
        in
        (* body statements run 20 times; the header compare runs 21 *)
        Alcotest.(check bool) "20 or 21 points" true (pts = 20 || pts = 21)
      end)
    res.stmts

let test_counts_match_interpreter () =
  let _, res = profile producer_consumer in
  let total =
    List.fold_left
      (fun acc (s : Ddg.Depprof.stmt_info) -> acc + s.s_count)
      0 res.stmts
  in
  Alcotest.(check int) "per-stmt counts sum to dyn instrs"
    res.run_stats.Vm.Interp.dyn_instrs total

let test_reduction_dep_distance_one () =
  let _, res = profile producer_consumer in
  let carried =
    List.filter
      (fun (d : Ddg.Depprof.dep_info) ->
        d.dk.kind = Ddg.Depprof.Reg_dep
        && d.src_depth = 1 && d.dst_depth = 1
        && List.exists
             (fun (p : Fold.piece) ->
               match p.Fold.labels.(0) with
               | Some f -> Rat.equal f.A.const (Rat.of_int (-1))
               | None -> false)
             d.d_pieces)
      res.deps
  in
  Alcotest.(check bool) "found the carried reduction dep" true (carried <> [])

(* soundness: folded memory dependences map consumer points into the
   producer's folded domain *)
let test_dep_soundness_on_workload () =
  let _, res = profile Workloads.Backprop.hir in
  let stmt_of sid ctx =
    List.find_opt
      (fun (s : Ddg.Depprof.stmt_info) -> s.sk.s_sid = sid && s.sk.s_ctx = ctx)
      res.stmts
  in
  List.iter
    (fun (d : Ddg.Depprof.dep_info) ->
      match (Ddg.Depprof.dep_map d, stmt_of d.dk.src_sid d.dk.src_ctx) with
      | Some m, Some src_stmt ->
          let src_dom = Ddg.Depprof.stmt_domain src_stmt in
          List.iter
            (fun (piece : Minisl.Pmap.piece) ->
              if Minisl.Polyhedron.dim piece.Minisl.Pmap.dom <= 4 then
                match P.sample piece.Minisl.Pmap.dom with
                | Some pt -> (
                    match Minisl.Pmap.apply_int m pt with
                    | Some img ->
                        Alcotest.(check bool)
                          "producer image lies in its domain" true
                          (Minisl.Pset.mem src_dom img)
                    | None -> ())
                | None -> ())
            (Minisl.Pmap.pieces m)
      | _ -> ())
    res.deps

let test_fig3_ex1_folded_domains () =
  (* the interprocedural 2-D nest of Fig. 3 Ex. 1: the statement in the
     inner (callee) loop folds into a full 3x3 rectangle spanning both
     the caller's and the callee's dimensions *)
  let _, res = profile Workloads.Figure3.ex1 in
  let two_d =
    List.filter (fun (s : Ddg.Depprof.stmt_info) -> s.depth = 2) res.stmts
  in
  Alcotest.(check bool) "2-D statements found" true (two_d <> []);
  List.iter
    (fun (s : Ddg.Depprof.stmt_info) ->
      Alcotest.(check bool) "exact" true s.affine_exact;
      match s.s_pieces with
      | [ p ] ->
          (* body statements run 3x3 = 9 times; the inner header's
             bound/compare instructions run 3x4 = 12 *)
          Alcotest.(check bool) "3x3 or 3x4 points" true
            (p.Fold.points = 9 || p.Fold.points = 12);
          Alcotest.(check bool) "rectangle" true
            (P.mem p.Fold.dom [| 0; 0 |] && P.mem p.Fold.dom [| 2; 2 |]
            && not (P.mem p.Fold.dom [| 3; 0 |]))
      | _ -> Alcotest.fail "expected one piece")
    two_d

let test_waw_tracking_optional () =
  let cfg = { Ddg.Depprof.default_config with track_waw = true } in
  let prog = H.lower producer_consumer in
  let structure = Cfg.Cfg_builder.run prog in
  let res = Ddg.Depprof.profile ~config:cfg prog ~structure in
  Alcotest.(check bool) "profiling with WAW works" true (List.length res.stmts > 0)

let () =
  Alcotest.run "depprof"
    [ ( "shadow",
        [ Alcotest.test_case "memory" `Quick test_shadow_memory;
          Alcotest.test_case "register frames" `Quick test_shadow_register_frames
        ] );
      ( "dependences",
        [ Alcotest.test_case "memory dep folded" `Quick test_mem_dep_folded;
          Alcotest.test_case "SCEV pruning" `Quick test_scev_pruning;
          Alcotest.test_case "reduction distance" `Quick
            test_reduction_dep_distance_one;
          Alcotest.test_case "soundness on backprop" `Slow
            test_dep_soundness_on_workload;
          Alcotest.test_case "WAW option" `Quick test_waw_tracking_optional;
          Alcotest.test_case "Fig. 3 Ex. 1 folded domains" `Quick
            test_fig3_ex1_folded_domains ] );
      ( "statements",
        [ Alcotest.test_case "domains exact" `Quick test_stmt_domains_exact;
          Alcotest.test_case "counts match interpreter" `Quick
            test_counts_match_interpreter ] ) ]
