(* Tests for the mini-isl polyhedral substrate. *)

module Rat = Pp_util.Rat
module A = Minisl.Affine
module C = Minisl.Constr
module P = Minisl.Polyhedron
module S = Minisl.Pset
module Hull = Minisl.Hull

(* { 0 <= x <= a, 0 <= y <= b } *)
let box2 a b =
  P.make 2
    [ C.make Ge [| 1; 0 |] 0; C.make Ge [| -1; 0 |] a;
      C.make Ge [| 0; 1 |] 0; C.make Ge [| 0; -1 |] b ]

(* triangle { 0 <= i <= n, 0 <= j <= i } *)
let triangle n =
  P.make 2
    [ C.make Ge [| 1; 0 |] 0; C.make Ge [| -1; 0 |] n;
      C.make Ge [| 0; 1 |] 0; C.make Ge [| 1; -1 |] 0 ]

let test_mem () =
  let t = triangle 5 in
  Alcotest.(check bool) "(3,2) in" true (P.mem t [| 3; 2 |]);
  Alcotest.(check bool) "(3,3) in" true (P.mem t [| 3; 3 |]);
  Alcotest.(check bool) "(3,4) out" false (P.mem t [| 3; 4 |]);
  Alcotest.(check bool) "(6,0) out" false (P.mem t [| 6; 0 |])

let test_emptiness () =
  Alcotest.(check bool) "universe non-empty" false (P.is_empty (P.universe 2));
  Alcotest.(check bool) "canonical empty" true (P.is_empty (P.empty 2));
  let contradictory =
    P.make 1 [ C.make Ge [| 1 |] 0; C.make Ge [| -1 |] (-1) ]
  in
  (* x >= 0 and -x - 1 >= 0 (x <= -1): empty *)
  Alcotest.(check bool) "x>=0 & x<=-1 empty" true (P.is_empty contradictory);
  let thin = P.make 1 [ C.make Eq [| 1 |] (-3) ] in
  Alcotest.(check bool) "x = 3 non-empty" false (P.is_empty thin)

let test_intersect () =
  let p = P.intersect (box2 10 10) (triangle 20) in
  Alcotest.(check bool) "(10,10) in" true (P.mem p [| 10; 10 |]);
  Alcotest.(check bool) "(5,7) out" false (P.mem p [| 5; 7 |]);
  Alcotest.(check bool) "(11,0) out" false (P.mem p [| 11; 0 |])

let test_eliminate () =
  (* project the triangle on j: 0 <= j <= n *)
  let t = triangle 5 in
  let q = P.eliminate t [ 0 ] in
  Alcotest.(check bool) "j=5 reachable" true (P.mem q [| 99; 5 |]);
  Alcotest.(check bool) "j=6 not" false (P.mem q [| 99; 6 |])

let test_bounds () =
  let t = triangle 5 in
  (* max of i + j over the triangle is 10, min is 0 *)
  let lo, hi = P.bounds t (A.of_int_coeffs [| 1; 1 |] 0) in
  Alcotest.(check bool) "min 0" true
    (match lo with Some l -> Rat.equal l Rat.zero | None -> false);
  Alcotest.(check bool) "max 10" true
    (match hi with Some h -> Rat.equal h (Rat.of_int 10) | None -> false);
  (* unbounded direction *)
  let half = P.make 1 [ C.make Ge [| 1 |] 0 ] in
  let _, hi = P.bounds half (A.of_int_coeffs [| 1 |] 0) in
  Alcotest.(check bool) "unbounded above" true (hi = None)

let test_entails_subset () =
  let t5 = triangle 5 and t9 = triangle 9 in
  Alcotest.(check bool) "t5 subset t9" true (P.is_subset t5 t9);
  Alcotest.(check bool) "t9 not subset t5" false (P.is_subset t9 t5);
  Alcotest.(check bool) "t5 = t5" true (P.equal_set t5 t5);
  Alcotest.(check bool) "empty subset anything" true
    (P.is_subset (P.empty 2) t5)

let test_count_points () =
  Alcotest.(check int) "box 3x2" 12 (P.count (box2 3 2));
  Alcotest.(check int) "triangle n=3" 10 (P.count (triangle 3));
  Alcotest.(check int) "empty" 0 (P.count (P.empty 2))

let test_sample () =
  (match P.sample (triangle 5) with
  | Some pt -> Alcotest.(check bool) "sample in set" true (P.mem (triangle 5) pt)
  | None -> Alcotest.fail "sample failed");
  Alcotest.(check bool) "sample of empty" true (P.sample (P.empty 2) = None)

let test_translate () =
  let t = P.translate (box2 2 2) [| 10; 20 |] in
  Alcotest.(check bool) "translated in" true (P.mem t [| 11; 21 |]);
  Alcotest.(check bool) "origin out" false (P.mem t [| 0; 0 |])

let test_pset () =
  let u = S.union (S.singleton (box2 2 2)) (S.singleton (triangle 9)) in
  Alcotest.(check bool) "in first" true (S.mem u [| 1; 2 |]);
  Alcotest.(check bool) "in second" true (S.mem u [| 9; 9 |]);
  Alcotest.(check bool) "in neither" false (S.mem u [| 3; 9 |]);
  let c = S.coalesce (S.union (S.singleton (triangle 3)) (S.singleton (triangle 9))) in
  Alcotest.(check int) "coalesce drops contained" 1 (S.n_disjuncts c)

let test_pmap () =
  let dom = triangle 5 in
  let out = [| A.of_int_coeffs [| 1; 0 |] 0; A.of_int_coeffs [| 0; 1 |] (-1) |] in
  let m = Minisl.Pmap.make ~in_dim:2 ~out_dim:2 [ { Minisl.Pmap.dom; out } ] in
  (match Minisl.Pmap.apply_int m [| 3; 2 |] with
  | Some img ->
      Alcotest.(check (array int)) "image" [| 3; 1 |] img
  | None -> Alcotest.fail "apply failed");
  (match Minisl.Pmap.pieces m with
  | [ piece ] ->
      (match Minisl.Pmap.distance piece with
      | Some d -> Alcotest.(check (array int)) "distance (0,1)" [| 0; 1 |] d
      | None -> Alcotest.fail "expected constant distance")
  | _ -> Alcotest.fail "expected one piece")

let test_hull () =
  let pts = [ [| 0; 0 |]; [| 3; 1 |]; [| 1; 4 |] ] in
  let box = Hull.box_of_points pts in
  List.iter
    (fun p -> Alcotest.(check bool) "point in box" true (P.mem box p))
    pts;
  Alcotest.(check bool) "box is tight" false (P.mem box [| 4; 0 |]);
  Alcotest.(check int) "box count" 20 (P.count box)

let test_interval_bounds_high_dim () =
  (* 6-D boxes would blow up FM; interval propagation must handle them *)
  let n = 6 in
  let cons = ref [] in
  for d = 0 to n - 1 do
    let up = Array.make n 0 and dn = Array.make n 0 in
    up.(d) <- 1;
    dn.(d) <- -1;
    cons := C.make Ge up 0 :: C.make Ge dn (d + 1) :: !cons
  done;
  let p = P.make n !cons in
  let lo, hi = P.dim_bounds p 5 in
  Alcotest.(check bool) "lo 0" true
    (match lo with Some l -> Rat.is_zero l | None -> false);
  Alcotest.(check bool) "hi 6" true
    (match hi with Some h -> Rat.equal h (Rat.of_int 6) | None -> false);
  Alcotest.(check bool) "non-empty" false (P.is_empty p)

let test_constr_canonical () =
  let c = C.make Ge [| 4; -8 |] 12 in
  Alcotest.(check (array int)) "gcd divided" [| 1; -2 |] c.C.v;
  Alcotest.(check int) "const divided" 3 c.C.c;
  let e = C.make Eq [| -3; 6 |] 9 in
  Alcotest.(check (array int)) "eq leading positive" [| 1; -2 |] e.C.v;
  Alcotest.(check int) "eq const flipped" (-3) e.C.c;
  let n = C.negate_ge (C.make Ge [| 1 |] 0) in
  (* x >= 0 negated: -x - 1 >= 0 *)
  Alcotest.(check bool) "negation excludes 0" false (C.sat n [| 0 |]);
  Alcotest.(check bool) "negation includes -1" true (C.sat n [| -1 |])

let test_add_constraint_and_universe () =
  let p = P.universe 2 in
  Alcotest.(check bool) "universe" true (P.is_universe p);
  let q = P.add_constraint p (C.make Ge [| 1; 0 |] 0) in
  Alcotest.(check bool) "no longer universe" false (P.is_universe q);
  Alcotest.(check bool) "still unbounded" true
    (snd (P.dim_bounds q 0) = None)

let test_drop_dims () =
  let t = triangle 5 in
  let q = P.drop_dims t [ 1 ] in
  Alcotest.(check int) "1-D result" 1 (P.dim q);
  Alcotest.(check bool) "projection of i" true
    (P.mem q [| 5 |] && not (P.mem q [| 6 |]))

let test_translate_negative () =
  let t = P.translate (box2 2 2) [| -5; -5 |] in
  Alcotest.(check bool) "shifted down" true (P.mem t [| -4; -3 |]);
  Alcotest.(check bool) "origin out" false (P.mem t [| 1; 1 |])

let test_pset_intersect () =
  let u = S.union (S.singleton (box2 4 4)) (S.singleton (P.translate (box2 4 4) [| 10; 0 |])) in
  let w = S.intersect u (S.singleton (box2 12 2)) in
  Alcotest.(check bool) "left part" true (S.mem w [| 2; 1 |]);
  Alcotest.(check bool) "right clipped" true (S.mem w [| 11; 1 |]);
  Alcotest.(check bool) "gap removed" false (S.mem w [| 7; 1 |]);
  Alcotest.(check bool) "above clipped" false (S.mem w [| 2; 4 |])

let test_pmap_restrict () =
  let dom = box2 9 9 in
  let m =
    Minisl.Pmap.make ~in_dim:2 ~out_dim:1
      [ { Minisl.Pmap.dom; out = [| A.of_int_coeffs [| 1; 1 |] 0 |] } ]
  in
  let m' = Minisl.Pmap.restrict_domain m (triangle 9) in
  Alcotest.(check bool) "restricted applies inside" true
    (Minisl.Pmap.apply_int m' [| 4; 2 |] = Some [| 6 |]);
  Alcotest.(check bool) "outside the triangle gone" true
    (Minisl.Pmap.apply_int m' [| 2; 4 |] = None);
  Alcotest.(check bool) "empty restriction" true
    (Minisl.Pmap.is_empty
       (Minisl.Pmap.restrict_domain m (P.empty 2)))

(* properties *)

let arb_box =
  QCheck.map
    (fun (a, b) -> (abs a mod 8, abs b mod 8))
    (QCheck.pair QCheck.int QCheck.int)

let prop_elim_preserves_membership =
  QCheck.Test.make ~name:"FM elimination preserves membership" ~count:200
    (QCheck.pair arb_box (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun ((a, b), (x, y)) ->
      let p = P.intersect (box2 a b) (triangle (a + b)) in
      let pt = [| x mod (a + 1); y mod (b + 1) |] in
      QCheck.assume (P.mem p pt);
      (* any point of p remains a point of every projection of p *)
      P.mem (P.eliminate p [ 0 ]) pt && P.mem (P.eliminate p [ 1 ]) pt)

let prop_subset_refl_trans =
  QCheck.Test.make ~name:"subset reflexive + box monotone" ~count:100 arb_box
    (fun (a, b) ->
      let p = box2 a b in
      P.is_subset p p
      && P.is_subset p (box2 (a + 1) (b + 1))
      && ((a = 0 && b = 0) || not (P.is_subset (box2 (a + 2) (b + 2)) p)))

let prop_count_box =
  QCheck.Test.make ~name:"box point count" ~count:100 arb_box (fun (a, b) ->
      P.count (box2 a b) = (a + 1) * (b + 1))

let prop_hull_contains =
  QCheck.Test.make ~name:"box hull contains its points" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 8)
       (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun pts ->
      let pts = List.map (fun (x, y) -> [| x mod 20; y mod 20 |]) pts in
      let box = Hull.box_of_points pts in
      List.for_all (P.mem box) pts)

let () =
  Alcotest.run "poly"
    [ ( "unit",
        [ Alcotest.test_case "membership" `Quick test_mem;
          Alcotest.test_case "emptiness" `Quick test_emptiness;
          Alcotest.test_case "intersect" `Quick test_intersect;
          Alcotest.test_case "eliminate" `Quick test_eliminate;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "entails/subset" `Quick test_entails_subset;
          Alcotest.test_case "count" `Quick test_count_points;
          Alcotest.test_case "sample" `Quick test_sample;
          Alcotest.test_case "translate" `Quick test_translate;
          Alcotest.test_case "pset" `Quick test_pset;
          Alcotest.test_case "pmap" `Quick test_pmap;
          Alcotest.test_case "hull" `Quick test_hull;
          Alcotest.test_case "interval bounds (6-D)" `Quick
            test_interval_bounds_high_dim;
          Alcotest.test_case "constraint canonical form" `Quick
            test_constr_canonical;
          Alcotest.test_case "add_constraint/universe" `Quick
            test_add_constraint_and_universe;
          Alcotest.test_case "drop_dims" `Quick test_drop_dims;
          Alcotest.test_case "translate negative" `Quick test_translate_negative;
          Alcotest.test_case "pset intersect" `Quick test_pset_intersect;
          Alcotest.test_case "pmap restrict" `Quick test_pmap_restrict ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_elim_preserves_membership; prop_subset_refl_trans;
            prop_count_box; prop_hull_contains ] ) ]
