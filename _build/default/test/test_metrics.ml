(* Tests for the PolyFeat-equivalent metrics (Table 5 columns). *)

module M = Sched.Metrics

let run_workload (w : Workloads.Workload.t) =
  let prog = Vm.Hir.lower w.hir in
  let structure = Cfg.Cfg_builder.run prog in
  let res = Ddg.Depprof.profile prog ~structure in
  let a = Sched.Depanalysis.analyse prog res in
  M.compute ~name:w.w_name
    ~ld_src:(Workloads.Workload.src_loop_depth w.hir)
    ~fusion_strategy:w.fusion prog res a

let backprop_row = lazy (run_workload Workloads.Backprop.workload)

let test_backprop_region () =
  let r = Lazy.force backprop_row in
  Alcotest.(check string) "region is the training loop" "facetrain.c:25" r.M.region;
  Alcotest.(check bool) "interprocedural" true r.M.interproc;
  Alcotest.(check bool) "region is most of the program" true
    (r.M.region_ops_pct > 50.0)

let test_backprop_parallel_simd () =
  let r = Lazy.force backprop_row in
  Alcotest.(check bool) "everything parallelisable" true (r.M.par_ops_pct > 90.0);
  Alcotest.(check bool) "simd after interchange" true (r.M.simd_ops_pct > 80.0);
  Alcotest.(check bool) "no skew" false r.M.skew

let test_backprop_reuse () =
  let r = Lazy.force backprop_row in
  (* the paper's signature: permutation can raise stride-0/1 coverage *)
  Alcotest.(check bool) "Preuse > reuse" true (r.M.preuse_pct > r.M.reuse_pct);
  Alcotest.(check bool) "Preuse ~ 100%" true (r.M.preuse_pct > 95.0)

let test_backprop_depths () =
  let r = Lazy.force backprop_row in
  Alcotest.(check int) "ld-src (epoch+j+k)" 3 r.M.ld_src;
  Alcotest.(check int) "ld-bin matches" 3 r.M.ld_bin;
  Alcotest.(check bool) "tilable" true (r.M.tile_depth >= 2);
  Alcotest.(check bool) "tiled ops high" true (r.M.tile_ops_pct > 90.0)

let test_percentages_bounded () =
  List.iter
    (fun w ->
      let r = run_workload w in
      List.iter
        (fun (lbl, v) ->
          Alcotest.(check bool) (r.M.name ^ " " ^ lbl) true (v >= 0.0 && v <= 100.0))
        [ ("aff", r.M.aff_pct); ("region_ops", r.M.region_ops_pct);
          ("par", r.M.par_ops_pct); ("simd", r.M.simd_ops_pct);
          ("reuse", r.M.reuse_pct); ("preuse", r.M.preuse_pct);
          ("tilops", r.M.tile_ops_pct) ])
    [ Workloads.Bfs.workload; Workloads.Nw.workload; Workloads.Lud.workload ]

let test_failed_row_rendering () =
  let r = M.failed_row ~name:"x" ~ops:1000 ~mem:100 () in
  let cells = M.to_strings r in
  Alcotest.(check int) "right number of columns" (List.length M.header)
    (List.length cells);
  Alcotest.(check string) "name" "x" (List.nth cells 0);
  Alcotest.(check string) "ops" "1K" (List.nth cells 1);
  Alcotest.(check string) "transformation columns dashed" "-"
    (List.nth cells (List.length cells - 1))

let test_count_formatting () =
  let r = M.failed_row ~name:"y" ~ops:2_500_000 ~mem:3_000_000_000 () in
  let cells = M.to_strings r in
  Alcotest.(check string) "millions" "2M" (List.nth cells 1);
  Alcotest.(check string) "billions" "3G" (List.nth cells 2)

let test_skew_rows () =
  (* the three wavefront benchmarks report skew = Y, stencils do not *)
  let skew w = (run_workload w).M.skew in
  Alcotest.(check bool) "hotspot skews" true (skew Workloads.Hotspot.workload);
  Alcotest.(check bool) "pathfinder skews" true (skew Workloads.Pathfinder.workload);
  Alcotest.(check bool) "nw skews" true (skew Workloads.Nw.workload);
  Alcotest.(check bool) "hotspot3D does not" false (skew Workloads.Hotspot3d.workload);
  Alcotest.(check bool) "srad_v2 does not" false (skew Workloads.Srad.v2)

let test_table_rendering () =
  let r = Lazy.force backprop_row in
  let out = Format.asprintf "%a" M.pp_table [ r ] in
  Alcotest.(check bool) "header present" true
    (String.length out > 0
    && String.sub out 0 9 = "benchmark")

let () =
  Alcotest.run "metrics"
    [ ( "backprop (Table 3/5 shape)",
        [ Alcotest.test_case "region selection" `Quick test_backprop_region;
          Alcotest.test_case "parallel + simd" `Quick test_backprop_parallel_simd;
          Alcotest.test_case "reuse vs Preuse" `Quick test_backprop_reuse;
          Alcotest.test_case "loop depths + tiling" `Quick test_backprop_depths ] );
      ( "suite",
        [ Alcotest.test_case "percentages bounded" `Slow test_percentages_bounded;
          Alcotest.test_case "skew flags" `Slow test_skew_rows ] );
      ( "rendering",
        [ Alcotest.test_case "failed row" `Quick test_failed_row_rendering;
          Alcotest.test_case "count units" `Quick test_count_formatting;
          Alcotest.test_case "table" `Quick test_table_rendering ] ) ]
