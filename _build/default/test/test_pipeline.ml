(* Integration tests: the full pipeline over every mini-Rodinia
   benchmark, plus targeted Table-5-shape regressions per benchmark. *)

module R = Workloads.Runner
module M = Sched.Metrics

let outcomes =
  lazy (List.map (fun w -> (w, R.run w)) Workloads.Rodinia.all)

let outcome name =
  let w = Workloads.Rodinia.find name in
  let _, o = List.find (fun ((x : Workloads.Workload.t), _) -> x.w_name = name)
      (Lazy.force outcomes)
  in
  (w, o)

let test_all_run () =
  List.iter
    (fun ((w : Workloads.Workload.t), (o : R.outcome)) ->
      Alcotest.(check bool) (w.w_name ^ " produced ops") true (o.row.M.ops > 1000);
      Alcotest.(check bool) (w.w_name ^ " folded deps") true (o.dep_keys > 0))
    (Lazy.force outcomes)

let test_only_streamcluster_bails () =
  List.iter
    (fun ((w : Workloads.Workload.t), (o : R.outcome)) ->
      Alcotest.(check bool)
        (w.w_name ^ " bail-out expectation")
        w.expect_sched_failure o.sched_bailed)
    (Lazy.force outcomes)

let test_interproc_flags () =
  List.iter
    (fun ((w : Workloads.Workload.t), (o : R.outcome)) ->
      match w.paper with
      | Some p when not o.sched_bailed ->
          Alcotest.(check bool)
            (w.w_name ^ " interprocedural flag")
            p.Workloads.Workload.p_interproc o.row.M.interproc
      | _ -> ())
    (Lazy.force outcomes)

let test_skew_flags_match_paper () =
  List.iter
    (fun ((w : Workloads.Workload.t), (o : R.outcome)) ->
      match w.paper with
      | Some p when (not o.sched_bailed) && w.w_name <> "lud" ->
          (* lud is a documented deviation: our exact folding captures the
             inter-block (1,-1) dependence that the paper's
             over-approximated lud profile hides, so we legitimately
             propose a skew there (see EXPERIMENTS.md) *)
          Alcotest.(check bool) (w.w_name ^ " skew") p.Workloads.Workload.p_skew
            o.row.M.skew
      | _ -> ())
    (Lazy.force outcomes)

let test_ld_src_matches_paper_shape () =
  (* the binary loop depth never exceeds the source depth (unrolling can
     only remove levels) *)
  List.iter
    (fun ((w : Workloads.Workload.t), (o : R.outcome)) ->
      if not o.sched_bailed then
        Alcotest.(check bool)
          (w.w_name ^ " ld-bin <= ld-src")
          true
          (o.row.M.ld_bin <= o.row.M.ld_src))
    (Lazy.force outcomes)

let test_unrolling_depth_delta () =
  (* cfd and heartwall lose exactly one level to full unrolling *)
  let _, cfd = outcome "cfd" in
  Alcotest.(check int) "cfd ld-src" 5 cfd.row.M.ld_src;
  Alcotest.(check int) "cfd ld-bin" 4 cfd.row.M.ld_bin;
  let _, hw = outcome "heartwall" in
  Alcotest.(check int) "heartwall ld-src" 7 hw.row.M.ld_src;
  Alcotest.(check int) "heartwall ld-bin" 6 hw.row.M.ld_bin

let test_low_affine_benchmarks () =
  (* the paper's "no lattice support" trio has low affine coverage here
     too (hotspot is the exception: our folding handles its buffer
     parity, documented in EXPERIMENTS.md) *)
  List.iter
    (fun name ->
      let _, o = outcome name in
      Alcotest.(check bool) (name ^ " mostly non-affine") true
        (o.row.M.aff_pct < 40.0))
    [ "heartwall"; "lavaMD"; "bfs"; "nn" ]

let test_high_affine_benchmarks () =
  List.iter
    (fun name ->
      let _, o = outcome name in
      Alcotest.(check bool) (name ^ " mostly affine") true
        (o.row.M.aff_pct > 60.0))
    [ "cfd"; "backprop" ]

let test_parallelism_dominates () =
  (* the headline of Table 5: nearly everything is parallelisable *)
  let n_high =
    List.length
      (List.filter
         (fun ((_ : Workloads.Workload.t), (o : R.outcome)) ->
           (not o.sched_bailed) && o.row.M.par_ops_pct > 90.0)
         (Lazy.force outcomes))
  in
  Alcotest.(check bool) "most benchmarks > 90% parallel ops" true (n_high >= 14)

let test_tiling_found () =
  let _, lavamd = outcome "lavaMD" in
  Alcotest.(check int) "lavaMD 3-D tiles" 3 lavamd.row.M.tile_depth;
  let _, nw = outcome "nw" in
  Alcotest.(check int) "nw 2-D tiles" 2 nw.row.M.tile_depth

let test_gems_fdtd () =
  let o = R.run Workloads.Gems_fdtd.workload in
  Alcotest.(check bool) "no bail" false o.sched_bailed;
  Alcotest.(check bool) "3-D tiling found" true (o.row.M.tile_depth >= 3);
  Alcotest.(check bool) "massively parallel" true (o.row.M.par_ops_pct > 90.0)

let test_backprop_interchange_feedback () =
  let _, o = outcome "backprop" in
  match o.pipeline with
  | None -> Alcotest.fail "pipeline missing"
  | Some t ->
      let has_interchange =
        List.exists
          (fun (n : Sched.Depanalysis.nest_info) ->
            n.ndepth = 3
            &&
            let sg = Sched.Transform.suggest t.Polyprof.analysis n in
            match sg.Sched.Transform.interchange with
            | Some (2, 3) -> true
            | _ -> false)
          t.Polyprof.analysis.Sched.Depanalysis.nests
      in
      Alcotest.(check bool) "interchange d2 <-> d3 suggested" true has_interchange

let test_table5_rendering () =
  let txt = R.table5 (Lazy.force outcomes) in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      Alcotest.(check bool) (w.w_name ^ " in table") true
        (let needle = w.w_name in
         let nl = String.length needle and hl = String.length txt in
         let rec go i = i + nl <= hl && (String.sub txt i nl = needle || go (i + 1)) in
         go 0))
    Workloads.Rodinia.all

let test_kernels_agree () =
  (* the native case-study kernels: transformed variants compute the
     same results as the originals *)
  let a = Kernels.Backprop_kernels.create ~n1:64 ~n2:8 in
  let b = Kernels.Backprop_kernels.create ~n1:64 ~n2:8 in
  Kernels.Backprop_kernels.layerforward_original a;
  Kernels.Backprop_kernels.layerforward_interchanged b;
  Kernels.Backprop_kernels.adjust_original a;
  Kernels.Backprop_kernels.adjust_interchanged b;
  Alcotest.(check (float 1e-6)) "backprop checksums agree"
    (Kernels.Backprop_kernels.checksum a)
    (Kernels.Backprop_kernels.checksum b);
  let g1 = Kernels.Gems_kernels.create ~n:24 in
  let g2 = Kernels.Gems_kernels.create ~n:24 in
  Kernels.Gems_kernels.update_original g1;
  Kernels.Gems_kernels.update_tiled ~tile:7 g2;
  Alcotest.(check (float 1e-6)) "gems checksums agree"
    (Kernels.Gems_kernels.checksum g1)
    (Kernels.Gems_kernels.checksum g2)

let () =
  Alcotest.run "pipeline"
    [ ( "suite",
        [ Alcotest.test_case "all 19 run" `Slow test_all_run;
          Alcotest.test_case "only streamcluster bails" `Slow
            test_only_streamcluster_bails;
          Alcotest.test_case "interproc flags" `Slow test_interproc_flags;
          Alcotest.test_case "skew flags" `Slow test_skew_flags_match_paper;
          Alcotest.test_case "ld-bin <= ld-src" `Slow
            test_ld_src_matches_paper_shape;
          Alcotest.test_case "unrolling depth delta" `Slow
            test_unrolling_depth_delta;
          Alcotest.test_case "low-affine trio" `Slow test_low_affine_benchmarks;
          Alcotest.test_case "high-affine pair" `Slow test_high_affine_benchmarks;
          Alcotest.test_case "parallelism dominates" `Slow
            test_parallelism_dominates;
          Alcotest.test_case "tiling depths" `Slow test_tiling_found;
          Alcotest.test_case "Table 5 rendering" `Slow test_table5_rendering ] );
      ( "case studies",
        [ Alcotest.test_case "GemsFDTD" `Slow test_gems_fdtd;
          Alcotest.test_case "backprop interchange" `Slow
            test_backprop_interchange_feedback;
          Alcotest.test_case "native kernels agree" `Quick test_kernels_agree ] )
    ]
