test/test_matrix.ml: Alcotest Array Pp_util QCheck QCheck_alcotest
