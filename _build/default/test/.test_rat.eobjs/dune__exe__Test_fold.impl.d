test/test_fold.ml: Alcotest Array Fold Hashtbl List Minisl Option Pp_util Printf QCheck QCheck_alcotest
