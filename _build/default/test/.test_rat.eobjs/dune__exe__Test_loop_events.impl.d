test/test_loop_events.ml: Alcotest Cfg Ddg List Vm Workloads
