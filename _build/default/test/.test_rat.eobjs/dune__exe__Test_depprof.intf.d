test/test_depprof.mli:
