test/test_depprof.ml: Alcotest Array Cfg Ddg Fold List Minisl Pp_util Vm Workloads
