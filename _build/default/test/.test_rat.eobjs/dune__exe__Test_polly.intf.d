test/test_polly.mli:
