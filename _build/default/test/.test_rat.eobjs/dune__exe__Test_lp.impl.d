test/test_lp.ml: Alcotest Array List Minisl Pp_util QCheck QCheck_alcotest
