test/test_metrics.ml: Alcotest Cfg Ddg Format Lazy List Sched String Vm Workloads
