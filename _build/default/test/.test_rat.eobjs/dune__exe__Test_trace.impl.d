test/test_trace.ml: Alcotest Cfg Ddg Filename List Sys Vm
