test/test_random.ml: Alcotest Cfg Ddg Fold List Minisl Printf QCheck QCheck_alcotest Random Sched Vm
