test/test_hir.ml: Alcotest Array Format String Vm Workloads
