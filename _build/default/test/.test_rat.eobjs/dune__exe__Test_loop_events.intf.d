test/test_loop_events.mli:
