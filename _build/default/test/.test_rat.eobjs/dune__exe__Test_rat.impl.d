test/test_rat.ml: Alcotest List Pp_util QCheck QCheck_alcotest
