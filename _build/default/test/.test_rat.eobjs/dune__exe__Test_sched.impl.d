test/test_sched.ml: Alcotest Array Cfg Ddg Format Fun List Sched String Vm Workloads
