test/test_fusion.ml: Alcotest Cfg Ddg List Sched Vm
