test/test_units.ml: Alcotest Ddg Format List Minisl Pp_util Sched String Vm
