test/test_iiv.mli:
