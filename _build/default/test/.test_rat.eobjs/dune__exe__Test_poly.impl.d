test/test_poly.ml: Alcotest Array List Minisl Pp_util QCheck QCheck_alcotest
