test/test_iiv.ml: Alcotest Array Cfg Ddg Hashtbl List Pp_util Printf Vm Workloads
