test/test_fold.mli:
