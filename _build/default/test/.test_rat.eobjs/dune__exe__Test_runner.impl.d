test/test_runner.ml: Alcotest List Sched String Workloads
