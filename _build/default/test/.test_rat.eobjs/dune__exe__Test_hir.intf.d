test/test_hir.mli:
