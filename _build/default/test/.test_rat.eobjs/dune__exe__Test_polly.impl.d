test/test_polly.ml: Alcotest List Printf Staticbase Vm Workloads
