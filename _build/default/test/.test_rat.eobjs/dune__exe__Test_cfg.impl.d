test/test_cfg.ml: Alcotest Cfg List QCheck QCheck_alcotest Vm
