test/test_report.ml: Alcotest Ddg Filename Lazy List Polyprof Report String Sys Workloads
