test/test_vm.ml: Alcotest Cfg List Printf Vm
