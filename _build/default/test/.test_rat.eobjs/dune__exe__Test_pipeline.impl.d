test/test_pipeline.ml: Alcotest Kernels Lazy List Polyprof Sched String Workloads
