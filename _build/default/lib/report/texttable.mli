(** Aligned plain-text tables for the benchmark harness output. *)

val render : header:string list -> string list list -> string
(** Column-aligned rendering with a separator line under the header. *)

val render_fmt : Format.formatter -> header:string list -> string list list -> unit
