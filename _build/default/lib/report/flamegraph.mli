(** Flame-graph rendering of the dynamic schedule tree (paper Fig. 5b and
    Fig. 7): the root at the bottom, node width proportional to its
    dynamic-operation weight, loop/call nodes labelled, blacklisted
    (libc-like) and non-affine regions grayed out. *)

type annot = {
  a_loops_parallel : (Ddg.Iiv.ctx_id, bool) Hashtbl.t;
      (** loop element -> parallel?, used for colouring *)
  a_blacklisted : int -> bool;  (** fid -> grayed out *)
  a_affine : Ddg.Iiv.ctx_id -> bool;  (** subtree (by first elt) affine *)
}

val no_annot : annot

val annot_of_analysis : Vm.Prog.t -> Sched.Depanalysis.t -> annot
(** Gray out blacklisted functions; colour loops by parallelism. *)

val to_svg :
  ?width:int -> ?annot:annot -> ?name:(Ddg.Iiv.ctx_id -> string)
  -> Ddg.Sched_tree.t -> string
(** Self-contained SVG document. *)

val write_svg :
  path:string -> ?width:int -> ?annot:annot -> ?name:(Ddg.Iiv.ctx_id -> string)
  -> Ddg.Sched_tree.t -> unit

val to_ascii :
  ?width:int -> ?name:(Ddg.Iiv.ctx_id -> string) -> Ddg.Sched_tree.t -> string
(** Terminal rendering: one line per node, indented, with a weight bar. *)
