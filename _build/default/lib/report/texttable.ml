let render ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)))
    all;
  let buf = Buffer.create 1024 in
  let put row =
    List.iteri
      (fun i s -> Buffer.add_string buf (Printf.sprintf "%-*s  " widths.(i) s))
      row;
    Buffer.add_char buf '\n'
  in
  put header;
  Array.iter
    (fun w -> Buffer.add_string buf (String.make w '-' ^ "  "))
    (Array.sub widths 0 (List.length header));
  Buffer.add_char buf '\n';
  List.iter put rows;
  Buffer.contents buf

let render_fmt fmt ~header rows =
  Format.pp_print_string fmt (render ~header rows)
