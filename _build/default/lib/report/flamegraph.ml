module ST = Ddg.Sched_tree

type annot = {
  a_loops_parallel : (Ddg.Iiv.ctx_id, bool) Hashtbl.t;
  a_blacklisted : int -> bool;
  a_affine : Ddg.Iiv.ctx_id -> bool;
}

let no_annot =
  { a_loops_parallel = Hashtbl.create 1;
    a_blacklisted = (fun _ -> false);
    a_affine = (fun _ -> true) }

let annot_of_analysis prog (t : Sched.Depanalysis.t) =
  let parallel = Hashtbl.create 32 in
  List.iter
    (fun (l : Sched.Depanalysis.loop_info) ->
      match List.rev l.lpath with
      | stack :: _ -> (
          match List.rev stack with
          | elt :: _ -> Hashtbl.replace parallel elt l.parallel
          | [] -> ())
      | [] -> ())
    t.loops;
  let affine_ctx = Hashtbl.create 32 in
  List.iter
    (fun (s : Sched.Depanalysis.stmt_ext) ->
      List.iter
        (fun stack ->
          List.iter
            (fun elt ->
              let cur =
                try Hashtbl.find affine_ctx elt with Not_found -> true
              in
              Hashtbl.replace affine_ctx elt
                (cur && s.si.Ddg.Depprof.affine_exact))
            stack)
        s.spath)
    t.stmts;
  { a_loops_parallel = parallel;
    a_blacklisted =
      (fun fid ->
        fid >= 0
        && fid < Array.length prog.Vm.Prog.funcs
        && prog.Vm.Prog.funcs.(fid).Vm.Prog.blacklisted);
    a_affine =
      (fun elt -> try Hashtbl.find affine_ctx elt with Not_found -> true) }

let default_name c = Format.asprintf "%a" Ddg.Iiv.pp_ctx_id c

let fid_of_elt = function
  | Ddg.Iiv.Cblock (f, _) | Ddg.Iiv.Cloop (f, _) -> Some f
  | Ddg.Iiv.Ccomp _ -> None

let node_kind (n : ST.node) =
  match n.ST.elt with
  | Some (Ddg.Iiv.Cloop _) -> "loop"
  | Some (Ddg.Iiv.Ccomp _) -> "rec-loop"
  | Some (Ddg.Iiv.Cblock _) -> "block"
  | None -> "root"

let color annot (n : ST.node) =
  match n.ST.elt with
  | None -> "#cccccc"
  | Some elt -> (
      let gray =
        (match fid_of_elt elt with
        | Some f -> annot.a_blacklisted f
        | None -> false)
        || not (annot.a_affine elt)
      in
      if gray then "#bbbbbb"
      else
        match elt with
        | Ddg.Iiv.Cloop _ | Ddg.Iiv.Ccomp _ -> (
            match Hashtbl.find_opt annot.a_loops_parallel elt with
            | Some true -> "#7bc96f"  (* parallel loop: green *)
            | Some false -> "#e8a33d"  (* sequential loop: orange *)
            | None -> "#d9944f")
        | Ddg.Iiv.Cblock _ -> "#d46a5f")

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '<' -> "&lt;"
         | '>' -> "&gt;"
         | '&' -> "&amp;"
         | '"' -> "&quot;"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_svg ?(width = 1200) ?(annot = no_annot) ?(name = default_name) tree =
  let buf = Buffer.create 16384 in
  let root = ST.root tree in
  let total = max 1 (ST.total_weight root) in
  let row_h = 18 in
  let rec depth_of (n : ST.node) =
    List.fold_left
      (fun acc c -> max acc (1 + depth_of c))
      0 (ST.children_in_order n)
  in
  let height = ((depth_of root + 2) * row_h) + 30 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"monospace\" font-size=\"11\">\n"
       width height);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"4\" y=\"14\">poly-prof dynamic schedule tree flame graph \
        (total %d ops)</text>\n"
       total);
  (* root at the bottom: y decreases with depth *)
  let rec render (n : ST.node) x w depth =
    if w >= 0.5 then begin
      let y = height - ((depth + 1) * row_h) in
      let label =
        match n.ST.elt with
        | None -> "all"
        | Some elt ->
            let k = node_kind n in
            Printf.sprintf "%s %s" k (name elt)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<g><title>%s: %d ops (%.1f%%)</title><rect x=\"%.1f\" y=\"%d\" \
            width=\"%.1f\" height=\"%d\" fill=\"%s\" stroke=\"white\"/>"
           (escape label) (ST.total_weight n)
           (100.0 *. float_of_int (ST.total_weight n) /. float_of_int total)
           x y w (row_h - 1) (color annot n));
      if w > 40.0 then
        Buffer.add_string buf
          (Printf.sprintf "<text x=\"%.1f\" y=\"%d\">%s</text>" (x +. 3.0)
             (y + 13)
             (escape
                (if String.length label > int_of_float (w /. 7.0) then
                   String.sub label 0 (max 1 (int_of_float (w /. 7.0)))
                 else label)));
      Buffer.add_string buf "</g>\n";
      (* children: self weight first, then children proportionally *)
      let tw = max 1 (ST.total_weight n) in
      let cx = ref x in
      List.iter
        (fun c ->
          let cw = w *. float_of_int (ST.total_weight c) /. float_of_int tw in
          render c !cx cw (depth + 1);
          cx := !cx +. cw)
        (ST.children_in_order n)
    end
  in
  render root 0.0 (float_of_int width) 0;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_svg ~path ?width ?annot ?name tree =
  let oc = open_out path in
  output_string oc (to_svg ?width ?annot ?name tree);
  close_out oc

let to_ascii ?(width = 60) ?(name = default_name) tree =
  let buf = Buffer.create 4096 in
  let root = ST.root tree in
  let total = max 1 (ST.total_weight root) in
  let rec go indent (n : ST.node) =
    let w = ST.total_weight n in
    let frac = float_of_int w /. float_of_int total in
    let bar = int_of_float (frac *. float_of_int width) in
    let label =
      match n.ST.elt with None -> "all" | Some elt -> name elt
    in
    Buffer.add_string buf
      (Printf.sprintf "%-40s %7d %5.1f%% %s\n"
         (indent ^ label) w (100.0 *. frac)
         (String.make (max 0 bar) '#'));
    List.iter (go (indent ^ "  ")) (ST.children_in_order n)
  in
  go "" root;
  Buffer.contents buf
