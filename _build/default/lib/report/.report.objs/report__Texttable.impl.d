lib/report/texttable.ml: Array Buffer Format List Printf String
