lib/report/flamegraph.mli: Ddg Hashtbl Sched Vm
