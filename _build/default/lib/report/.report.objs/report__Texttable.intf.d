lib/report/texttable.mli: Format
