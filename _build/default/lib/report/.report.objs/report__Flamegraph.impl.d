lib/report/flamegraph.ml: Array Buffer Ddg Format Hashtbl List Printf Sched String Vm
