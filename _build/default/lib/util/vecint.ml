type t = int array

let zero n = Array.make n 0
let equal a b = a = b

let compare_lex a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let add a b = Array.init (Array.length a) (fun i -> a.(i) + b.(i))
let sub a b = Array.init (Array.length a) (fun i -> a.(i) - b.(i))
let scale k a = Array.map (fun x -> k * x) a

let dot a b =
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := !acc + (x * b.(i))) a;
  !acc

let is_zero a = Array.for_all (fun x -> x = 0) a

let first_nonzero a =
  let rec go i =
    if i >= Array.length a then None
    else if a.(i) <> 0 then Some i
    else go (i + 1)
  in
  go 0

let pp fmt a =
  Format.fprintf fmt "(";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%d" x)
    a;
  Format.fprintf fmt ")"

let to_string a = Format.asprintf "%a" pp a
let hash a = Hashtbl.hash (Array.to_list a)
