lib/util/matrix.mli: Format Rat
