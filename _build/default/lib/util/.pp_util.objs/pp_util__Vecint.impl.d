lib/util/vecint.ml: Array Format Hashtbl
