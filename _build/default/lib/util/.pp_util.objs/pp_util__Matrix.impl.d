lib/util/matrix.ml: Array Format List Rat
