lib/util/vecint.mli: Format
