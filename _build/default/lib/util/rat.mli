(** Exact rational arithmetic over native integers.

    All values are kept in canonical form: the denominator is strictly
    positive and numerator and denominator are coprime.  Native [int]
    (63-bit) precision is sufficient for the small coefficients occurring
    in folded dependence polyhedra; operations raise [Overflow] if an
    intermediate product would wrap. *)

type t = private { num : int; den : int }

exception Overflow
exception Division_by_zero

val make : int -> int -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val abs : t -> t
val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val floor : t -> int
(** Largest integer [<= t]. *)

val ceil : t -> int
(** Smallest integer [>= t]. *)

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val gcd : int -> int -> int
(** Non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
