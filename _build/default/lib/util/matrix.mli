(** Dense matrices of exact rationals and the linear-algebra kernels used
    by the folding stage (affine fitting) and the feedback back-end. *)

type t

val create : rows:int -> cols:int -> t
(** Zero-filled matrix. *)

val of_arrays : Rat.t array array -> t
(** Rows must all have the same length.  The arrays are copied. *)

val of_int_arrays : int array array -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Rat.t
val set : t -> int -> int -> Rat.t -> unit
val copy : t -> t
val identity : int -> t
val transpose : t -> t
val mul : t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val rref : t -> t * int list
(** [rref m] returns the reduced row-echelon form and the list of pivot
    column indices, in order.  [m] is not modified. *)

val rank : t -> int

val solve : t -> Rat.t array -> Rat.t array option
(** [solve a b] finds [x] with [a x = b], or [None] if the system is
    inconsistent.  When the system is under-determined, free variables are
    set to zero (a minimal solution is returned). *)

val affine_fit : int array array -> Rat.t array -> (Rat.t array * Rat.t) option
(** [affine_fit points values] finds coefficients [c] and constant [d]
    such that for every sample [i], [sum_k c.(k) * points.(i).(k) + d =
    values.(i)]; returns [None] if no affine function interpolates the
    samples.  [points] must be non-empty and rectangular. *)
