type t = { num : int; den : int }

exception Overflow
exception Division_by_zero

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let mul_checked a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let lcm a b = if a = 0 || b = 0 then 0 else abs (mul_checked (a / gcd a b) b)

let make num den =
  if den = 0 then raise Division_by_zero;
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.num
let den t = t.den

let add a b =
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  (* a.num/ (g*da) + b.num/(g*db) = (a.num*db + b.num*da) / (g*da*db) *)
  let n = mul_checked a.num db + mul_checked b.num da in
  make n (mul_checked (mul_checked g da) db)

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)
let mul a b = make (mul_checked a.num b.num) (mul_checked a.den b.den)

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den *)
  Stdlib.compare (mul_checked a.num b.den) (mul_checked b.num a.den)

let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sign a = Stdlib.compare a.num 0
let is_zero a = a.num = 0
let is_integer a = a.den = 1

let floor a =
  if a.num >= 0 then a.num / a.den
  else -(((-a.num) + a.den - 1) / a.den)

let ceil a = -floor (neg a)

let to_int_exn a =
  if a.den <> 1 then invalid_arg "Rat.to_int_exn: not an integer";
  a.num

let to_float a = float_of_int a.num /. float_of_int a.den

let pp fmt a =
  if a.den = 1 then Format.fprintf fmt "%d" a.num
  else Format.fprintf fmt "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
