(** Small helpers on [int array] treated as vectors (iteration-vector
    coordinates, dependence distances, constraint coefficient rows). *)

type t = int array

val zero : int -> t
val equal : t -> t -> bool
val compare_lex : t -> t -> int
(** Lexicographic order; shorter vectors compare by prefix then length. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val dot : t -> t -> int
val is_zero : t -> bool
val first_nonzero : t -> int option
(** Index of the first non-zero component. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val hash : t -> int
