type t = { m : Rat.t array array; rows : int; cols : int }

let create ~rows ~cols =
  { m = Array.make_matrix rows cols Rat.zero; rows; cols }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then { m = [||]; rows = 0; cols = 0 }
  else begin
    let cols = Array.length a.(0) in
    Array.iter (fun r -> assert (Array.length r = cols)) a;
    { m = Array.map Array.copy a; rows; cols }
  end

let of_int_arrays a = of_arrays (Array.map (Array.map Rat.of_int) a)
let rows t = t.rows
let cols t = t.cols
let get t i j = t.m.(i).(j)
let set t i j v = t.m.(i).(j) <- v
let copy t = { t with m = Array.map Array.copy t.m }

let identity n =
  let t = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    set t i i Rat.one
  done;
  t

let transpose t =
  let r = create ~rows:t.cols ~cols:t.rows in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      set r j i (get t i j)
    done
  done;
  r

let mul a b =
  assert (a.cols = b.rows);
  let r = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for j = 0 to b.cols - 1 do
      let acc = ref Rat.zero in
      for k = 0 to a.cols - 1 do
        acc := Rat.add !acc (Rat.mul (get a i k) (get b k j))
      done;
      set r i j !acc
    done
  done;
  r

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = 0 to a.cols - 1 do
      if not (Rat.equal (get a i j) (get b i j)) then ok := false
    done
  done;
  !ok

let pp fmt t =
  for i = 0 to t.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to t.cols - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Rat.pp fmt (get t i j)
    done;
    Format.fprintf fmt "]@\n"
  done

(* Gauss-Jordan elimination with partial pivoting by first non-zero. *)
let rref t =
  let t = copy t in
  let pivots = ref [] in
  let row = ref 0 in
  for col = 0 to t.cols - 1 do
    if !row < t.rows then begin
      (* find a pivot row *)
      let p = ref (-1) in
      for i = !row to t.rows - 1 do
        if !p = -1 && not (Rat.is_zero (get t i col)) then p := i
      done;
      if !p >= 0 then begin
        let tmp = t.m.(!row) in
        t.m.(!row) <- t.m.(!p);
        t.m.(!p) <- tmp;
        let inv = Rat.inv (get t !row col) in
        for j = 0 to t.cols - 1 do
          set t !row j (Rat.mul (get t !row j) inv)
        done;
        for i = 0 to t.rows - 1 do
          if i <> !row && not (Rat.is_zero (get t i col)) then begin
            let f = get t i col in
            for j = 0 to t.cols - 1 do
              set t i j (Rat.sub (get t i j) (Rat.mul f (get t !row j)))
            done
          end
        done;
        pivots := col :: !pivots;
        incr row
      end
    end
  done;
  (t, List.rev !pivots)

let rank t =
  let _, pivots = rref t in
  List.length pivots

let solve a b =
  assert (a.rows = Array.length b);
  (* augmented matrix [a | b] *)
  let aug = create ~rows:a.rows ~cols:(a.cols + 1) in
  for i = 0 to a.rows - 1 do
    for j = 0 to a.cols - 1 do
      set aug i j (get a i j)
    done;
    set aug i a.cols b.(i)
  done;
  let r, pivots = rref aug in
  if List.mem a.cols pivots then None (* inconsistent: pivot in b column *)
  else begin
    let x = Array.make a.cols Rat.zero in
    List.iteri
      (fun i col -> if col < a.cols then x.(col) <- get r i a.cols)
      pivots;
    Some x
  end

let affine_fit points values =
  let n = Array.length points in
  assert (n > 0 && n = Array.length values);
  let dims = Array.length points.(0) in
  (* unknowns: c_0 .. c_{dims-1}, d *)
  let a = create ~rows:n ~cols:(dims + 1) in
  for i = 0 to n - 1 do
    for k = 0 to dims - 1 do
      set a i k (Rat.of_int points.(i).(k))
    done;
    set a i dims Rat.one
  done;
  match solve a values with
  | None -> None
  | Some x ->
      (* [solve] returns a least-constrained solution; verify it actually
         interpolates (it always does when consistent, but keep the
         check as a guard against under-determined corner cases). *)
      let ok = ref true in
      for i = 0 to n - 1 do
        let acc = ref x.(dims) in
        for k = 0 to dims - 1 do
          acc := Rat.add !acc (Rat.mul x.(k) (Rat.of_int points.(i).(k)))
        done;
        if not (Rat.equal !acc values.(i)) then ok := false
      done;
      if !ok then Some (Array.sub x 0 dims, x.(dims)) else None
