(** HIR: a small structured ("C-like") front-end for MiniVM.

    Workloads (mini-Rodinia, GemsFDTD, the paper's figures) are written
    as HIR and *lowered* to MiniVM basic blocks with explicit branches —
    so the analyser has to rediscover all loop structure from the event
    stream, exactly as POLY-PROF does from a binary.  The HIR of a
    workload is also kept around as its "source code": the static Polly
    baseline analyses HIR, mirroring how LLVM Polly sees the IR of the
    source program rather than the binary. *)

type expr =
  | Int of int
  | Flt of float
  | Var of string
  | Base of string  (** base address of a named global array *)
  | Bin of Isa.binop * expr * expr
  | Fbin of Isa.fbinop * expr * expr
  | Cmp of Isa.cmpop * expr * expr
  | Fcmp of Isa.cmpop * expr * expr
  | Load of expr
  | Itof of expr
  | Ftoi of expr
  | Callf of string * expr list  (** call used as an expression *)

type stmt =
  | Let of string * expr  (** assign a (mutable) local variable *)
  | Store of expr * expr  (** [Store (addr, value)] *)
  | For of for_loop
  | While of { cond : expr; wbody : stmt list; wloc : Prog.loc option }
  | If of expr * stmt list * stmt list
  | CallS of string option * string * expr list
  | Return of expr option
  | Break

and for_loop = {
  v : string;
  lo : expr;
  hi : expr;  (** iterates while [v < hi] *)
  step : int;
  body : stmt list;
  floc : Prog.loc option;
  unroll : bool;
      (** full unrolling at lowering time (requires constant bounds);
          models a compiler transformation that changes the binary loop
          depth vs. the source loop depth. *)
}

type fattr = May_alias
(** The function receives pointer arguments that may alias (information a
    static analyser cannot refute; reason code "A" in Table 5). *)

type fundef = {
  name : string;
  params : string list;
  body : stmt list;
  blacklisted : bool;
  attrs : fattr list;
}

type program = {
  funs : fundef list;
  arrays : (string * int) list;  (** name, size in words *)
  main : string;
}

val fundef :
  ?blacklisted:bool -> ?attrs:fattr list -> string -> string list -> stmt list
  -> fundef

val for_ :
  ?loc:Prog.loc -> ?step:int -> ?unroll:bool -> string -> expr -> expr
  -> stmt list -> stmt
(** [for_ v lo hi body]: [for (v = lo; v < hi; v += step) body]. *)

val while_ : ?loc:Prog.loc -> expr -> stmt list -> stmt

val stmt_depth : stmt -> int
(** Loop nesting depth of one statement subtree. *)

val loop_depth : fundef -> int
(** Maximum static (intraprocedural) loop nesting depth of the source. *)

val max_loop_depth : program -> int

exception Lower_error of string

val lower : program -> Prog.t
(** Compile to MiniVM.  @raise Lower_error on malformed HIR (unknown
    function/array names, [Break] outside a loop, non-constant unroll
    bounds, ...). *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit
(** C-like source listing of a HIR program (the "source code" of a
    workload, as the static baseline sees it). *)

(** Infix helpers for writing workloads compactly. *)
module Dsl : sig
  val i : int -> expr
  val f : float -> expr
  val v : string -> expr
  val base : string -> expr
  val ( +! ) : expr -> expr -> expr
  val ( -! ) : expr -> expr -> expr
  val ( *! ) : expr -> expr -> expr
  val ( /! ) : expr -> expr -> expr
  val ( %! ) : expr -> expr -> expr
  val ( <! ) : expr -> expr -> expr
  val ( <=! ) : expr -> expr -> expr
  val ( >! ) : expr -> expr -> expr
  val ( >=! ) : expr -> expr -> expr
  val ( ==! ) : expr -> expr -> expr
  val ( <>! ) : expr -> expr -> expr
  (* [+?] etc. are the float variants. *)
  val ( +? ) : expr -> expr -> expr
  val ( -? ) : expr -> expr -> expr
  val ( *? ) : expr -> expr -> expr
  val ( /? ) : expr -> expr -> expr
  val ( <? ) : expr -> expr -> expr
  val ( >? ) : expr -> expr -> expr
  val load : expr -> expr
  val ( .%[] ) : string -> expr -> expr
  (** ["a".%[idx]] is [Load (Base "a" + idx)]. *)

  val store : string -> expr -> expr -> stmt
  (** [store "a" idx value]. *)
end
