(** Recorded execution traces.

    The real POLY-PROF can work offline: the instrumentation emits a
    trace that later stages consume.  This module records the full event
    stream of a run into a compact in-memory buffer and replays it into
    any {!Interp.callbacks} consumer — so Instrumentation II can run
    without re-executing the program, and traces can be saved/loaded. *)

type t

val record : ?max_steps:int -> ?args:int list -> Prog.t -> t * Interp.stats
(** Execute the program once, recording every control and exec event. *)

val replay : t -> Interp.callbacks -> unit
(** Deliver the recorded events, in order, to the callbacks. *)

val n_events : t -> int
val n_control : t -> int
val n_exec : t -> int

val save : t -> string -> unit
(** Marshal the trace to a file. *)

val load : string -> t
(** @raise Failure if the file does not contain a trace. *)
