lib/vm/interp.mli: Event Prog
