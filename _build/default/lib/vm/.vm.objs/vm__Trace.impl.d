lib/vm/trace.ml: Array Event Interp List Marshal String
