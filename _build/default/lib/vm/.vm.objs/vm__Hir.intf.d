lib/vm/hir.mli: Format Isa Prog
