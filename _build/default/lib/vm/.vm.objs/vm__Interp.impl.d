lib/vm/interp.ml: Array Event Format Hashtbl Isa List Option Prog
