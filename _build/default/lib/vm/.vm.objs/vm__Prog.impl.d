lib/vm/prog.ml: Array Format Isa List Printf
