lib/vm/hir.ml: Format Hashtbl Isa List Option Printf Prog String
