lib/vm/trace.mli: Interp Prog
