lib/vm/prog.mli: Format Isa
