lib/vm/isa.ml: Format Printf
