(** Events emitted by the instrumented interpreter.

    This is the exact interface POLY-PROF's "Instrumentation I/II" stages
    consume: raw control transfers (jump / call / return) plus one
    execution record per dynamic instruction with the produced value and
    the memory addresses touched. *)

type control =
  | Jump of { fid : int; src : int; dst : int }
      (** local jump within function [fid], from block [src] to [dst] *)
  | Call of { caller : int; site : int; callee : int; dst : int }
      (** call from block [site] of [caller]; [dst] is the entry block of
          [callee] *)
  | Return of { callee : int; caller : int; dst : int }
      (** return from [callee]; control resumes at block [dst] of
          [caller] *)

type value = I of int | F of float

type exec = {
  sid : Isa.Sid.t;
  cls : Isa.op_class;
  value : value option;  (** value produced into the destination register *)
  addr_read : int option;
  addr_written : int option;
  reads : Isa.reg list;  (** registers read by the instruction *)
  writes : Isa.reg option;
  depth : int;  (** call-stack depth (main = 0) *)
}

type t = Control of control | Exec of exec

let pp_control fmt = function
  | Jump { fid; src; dst } -> Format.fprintf fmt "jump f%d: b%d -> b%d" fid src dst
  | Call { caller; site; callee; dst } ->
      Format.fprintf fmt "call f%d.b%d -> f%d.b%d" caller site callee dst
  | Return { callee; caller; dst } ->
      Format.fprintf fmt "ret f%d -> f%d.b%d" callee caller dst

let pp fmt = function
  | Control c -> pp_control fmt c
  | Exec e -> Format.fprintf fmt "exec %a" Isa.Sid.pp e.sid
