(** The MiniVM instruction set.

    MiniVM is the reproduction's stand-in for a compiled x86 binary run
    under QEMU-plugin instrumentation: a register machine with functions,
    basic blocks, explicit [jump]/[br]/[call]/[ret] control transfers and
    a flat word-addressed memory.  The analyser never sees this structure
    directly — only the event stream emitted by {!Interp}. *)

type reg = int
(** Virtual register index, local to a function frame. *)

type operand = Reg of reg | Imm of int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type fbinop = Fadd | Fsub | Fmul | Fdiv
type cmpop = Ceq | Cne | Clt | Cle | Cgt | Cge

type instr =
  | Const of reg * int
  | Fconst of reg * float
  | Mov of reg * operand
  | Bin of binop * reg * operand * operand
  | Fbin of fbinop * reg * operand * operand
  | Cmp of cmpop * reg * operand * operand
  | Fcmp of cmpop * reg * operand * operand
  | Load of reg * operand        (** load word at address *)
  | Store of operand * operand   (** [Store (addr, value)] *)
  | Itof of reg * operand
  | Ftoi of reg * operand

type terminator =
  | Jump of int                           (** target block id *)
  | Br of operand * int * int             (** cond, then-block, else-block *)
  | Call of { dst : reg option; callee : int; args : operand list; cont : int }
      (** call function [callee]; on return, resume at block [cont]. *)
  | Ret of operand option
  | Halt

type op_class = Int_alu | Fp_alu | Mem_load | Mem_store | Other_op

val class_of_instr : instr -> op_class
val is_fp : instr -> bool
val is_mem : instr -> bool

(** Packed static instruction identity: function, block, index in block. *)
module Sid : sig
  type t = int

  val make : fid:int -> bid:int -> idx:int -> t
  val fid : t -> int
  val bid : t -> int
  val idx : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

val pp_instr : Format.formatter -> instr -> unit
val pp_terminator : Format.formatter -> terminator -> unit
