type reg = int
type operand = Reg of reg | Imm of int
type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type fbinop = Fadd | Fsub | Fmul | Fdiv
type cmpop = Ceq | Cne | Clt | Cle | Cgt | Cge

type instr =
  | Const of reg * int
  | Fconst of reg * float
  | Mov of reg * operand
  | Bin of binop * reg * operand * operand
  | Fbin of fbinop * reg * operand * operand
  | Cmp of cmpop * reg * operand * operand
  | Fcmp of cmpop * reg * operand * operand
  | Load of reg * operand
  | Store of operand * operand
  | Itof of reg * operand
  | Ftoi of reg * operand

type terminator =
  | Jump of int
  | Br of operand * int * int
  | Call of { dst : reg option; callee : int; args : operand list; cont : int }
  | Ret of operand option
  | Halt

type op_class = Int_alu | Fp_alu | Mem_load | Mem_store | Other_op

let class_of_instr = function
  | Const _ | Mov _ | Bin _ | Cmp _ -> Int_alu
  | Fconst _ | Fbin _ | Fcmp _ | Itof _ | Ftoi _ -> Fp_alu
  | Load _ -> Mem_load
  | Store _ -> Mem_store

let is_fp i = class_of_instr i = Fp_alu
let is_mem i = match class_of_instr i with Mem_load | Mem_store -> true | _ -> false

module Sid = struct
  type t = int

  (* 12 bits fid | 12 bits bid | 12 bits idx *)
  let bits = 12
  let mask = (1 lsl bits) - 1

  let make ~fid ~bid ~idx =
    assert (fid >= 0 && fid <= mask);
    assert (bid >= 0 && bid <= mask);
    assert (idx >= 0 && idx <= mask);
    (fid lsl (2 * bits)) lor (bid lsl bits) lor idx

  let fid t = (t lsr (2 * bits)) land mask
  let bid t = (t lsr bits) land mask
  let idx t = t land mask
  let pp fmt t = Format.fprintf fmt "f%d.b%d.i%d" (fid t) (bid t) (idx t)
  let to_string t = Format.asprintf "%a" pp t
end

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm i -> Format.fprintf fmt "#%d" i

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let fbinop_name = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let cmpop_name = function
  | Ceq -> "eq" | Cne -> "ne" | Clt -> "lt" | Cle -> "le" | Cgt -> "gt" | Cge -> "ge"

let pp_instr fmt = function
  | Const (r, i) -> Format.fprintf fmt "r%d := %d" r i
  | Fconst (r, f) -> Format.fprintf fmt "r%d := %g" r f
  | Mov (r, o) -> Format.fprintf fmt "r%d := %a" r pp_operand o
  | Bin (op, r, a, b) ->
      Format.fprintf fmt "r%d := %s %a, %a" r (binop_name op) pp_operand a pp_operand b
  | Fbin (op, r, a, b) ->
      Format.fprintf fmt "r%d := %s %a, %a" r (fbinop_name op) pp_operand a pp_operand b
  | Cmp (op, r, a, b) ->
      Format.fprintf fmt "r%d := cmp.%s %a, %a" r (cmpop_name op) pp_operand a pp_operand b
  | Fcmp (op, r, a, b) ->
      Format.fprintf fmt "r%d := fcmp.%s %a, %a" r (cmpop_name op) pp_operand a pp_operand b
  | Load (r, a) -> Format.fprintf fmt "r%d := load [%a]" r pp_operand a
  | Store (a, v) -> Format.fprintf fmt "store [%a] := %a" pp_operand a pp_operand v
  | Itof (r, o) -> Format.fprintf fmt "r%d := itof %a" r pp_operand o
  | Ftoi (r, o) -> Format.fprintf fmt "r%d := ftoi %a" r pp_operand o

let pp_terminator fmt = function
  | Jump b -> Format.fprintf fmt "jump b%d" b
  | Br (c, t, e) -> Format.fprintf fmt "br %a, b%d, b%d" pp_operand c t e
  | Call { dst; callee; args; cont } ->
      Format.fprintf fmt "call f%d(%a)%s -> b%d" callee
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           pp_operand)
        args
        (match dst with Some r -> Printf.sprintf " => r%d" r | None -> "")
        cont
  | Ret None -> Format.fprintf fmt "ret"
  | Ret (Some o) -> Format.fprintf fmt "ret %a" pp_operand o
  | Halt -> Format.fprintf fmt "halt"
