module Rat = Pp_util.Rat

type piece = { dom : Polyhedron.t; out : Affine.t array }
type t = { in_dim : int; out_dim : int; pieces : piece list }

let make ~in_dim ~out_dim pieces =
  List.iter
    (fun p ->
      assert (Polyhedron.dim p.dom = in_dim);
      assert (Array.length p.out = out_dim);
      Array.iter (fun e -> assert (Affine.dim e = in_dim)) p.out)
    pieces;
  { in_dim; out_dim; pieces }

let in_dim t = t.in_dim
let out_dim t = t.out_dim
let pieces t = t.pieces
let n_pieces t = List.length t.pieces
let is_empty t = t.pieces = []

let apply t x =
  let rec go = function
    | [] -> None
    | p :: rest ->
        if Polyhedron.mem p.dom x then
          Some (Array.map (fun e -> Affine.eval e x) p.out)
        else go rest
  in
  go t.pieces

let apply_int t x =
  match apply t x with
  | None -> None
  | Some v ->
      if Array.for_all Rat.is_integer v then Some (Array.map Rat.to_int_exn v)
      else None

let domain t = Pset.of_polyhedra t.in_dim (List.map (fun p -> p.dom) t.pieces)

let union a b =
  assert (a.in_dim = b.in_dim && a.out_dim = b.out_dim);
  { a with pieces = a.pieces @ b.pieces }

let restrict_domain t q =
  let pieces =
    List.filter_map
      (fun p ->
        let d = Polyhedron.intersect p.dom q in
        if Polyhedron.is_empty d then None else Some { p with dom = d })
      t.pieces
  in
  { t with pieces }

let distance_exprs p =
  let n = Polyhedron.dim p.dom in
  Array.init (Array.length p.out) (fun k ->
      Affine.sub (Affine.var ~dim:n k) p.out.(k))

let distance p =
  let exprs = distance_exprs p in
  let ok = ref true in
  let d =
    Array.map
      (fun e ->
        if Affine.is_constant e && Rat.is_integer e.Affine.const then
          Rat.to_int_exn e.Affine.const
        else begin
          ok := false;
          0
        end)
      exprs
  in
  if !ok then Some d else None

let pp ?in_names ?out_names fmt t =
  let out_name k =
    match out_names with
    | Some ns when k < Array.length ns -> ns.(k)
    | _ -> "o" ^ string_of_int k
  in
  List.iteri
    (fun i p ->
      if i > 0 then Format.fprintf fmt ";@ ";
      Format.fprintf fmt "%a -> {"
        (Polyhedron.pp ?names:in_names)
        p.dom;
      Array.iteri
        (fun k e ->
          if k > 0 then Format.fprintf fmt ", ";
          Format.fprintf fmt "%s' = %a" (out_name k) (Affine.pp ?names:in_names) e)
        p.out;
      Format.fprintf fmt "}")
    t.pieces

let to_string ?in_names ?out_names t =
  Format.asprintf "%a" (pp ?in_names ?out_names) t
