module Rat = Pp_util.Rat

type t = { dim : int; cons : Constr.t list }

let make dim cons =
  List.iter (fun c -> assert (Constr.dim c = dim)) cons;
  { dim; cons }

let universe dim = { dim; cons = [] }
let empty dim = { dim; cons = [ Constr.make Ge (Array.make dim 0) (-1) ] }
let dim t = t.dim
let constraints t = t.cons
let mem t x = List.for_all (fun c -> Constr.sat c x) t.cons

(* Keep only the strongest constraint per (kind, coefficient vector), and
   drop tautologies.  Detects directly contradictory constant constraints. *)
let simplify t =
  let tbl = Hashtbl.create 16 in
  let contradiction = ref false in
  let keep = ref [] in
  List.iter
    (fun (c : Constr.t) ->
      if Pp_util.Vecint.is_zero c.v then begin
        match c.kind with
        | Constr.Eq -> if c.c <> 0 then contradiction := true
        | Constr.Ge -> if c.c < 0 then contradiction := true
      end
      else begin
        let key = (c.kind, Array.to_list c.v) in
        match Hashtbl.find_opt tbl key with
        | None ->
            Hashtbl.add tbl key c;
            keep := c :: !keep
        | Some (prev : Constr.t) -> (
            match c.kind with
            | Constr.Ge ->
                (* v.x + c >= 0 is stronger when c is smaller *)
                if c.c < prev.c then Hashtbl.replace tbl key c
            | Constr.Eq -> if c.c <> prev.c then contradiction := true)
      end)
    t.cons;
  if !contradiction then empty t.dim
  else
    { t with
      cons =
        List.rev_map
          (fun c -> Hashtbl.find tbl (c.Constr.kind, Array.to_list c.Constr.v))
          !keep }

let add_constraint t c =
  assert (Constr.dim c = t.dim);
  simplify { t with cons = c :: t.cons }

let intersect a b =
  assert (a.dim = b.dim);
  simplify { dim = a.dim; cons = a.cons @ b.cons }

(* Split equalities into two inequalities for elimination purposes. *)
let to_inequalities cons =
  List.concat_map
    (fun (c : Constr.t) ->
      match c.kind with
      | Constr.Ge -> [ c ]
      | Constr.Eq ->
          [ Constr.make Ge c.v c.c;
            Constr.make Ge (Array.map (fun x -> -x) c.v) (-c.c) ])
    cons

(* Fourier-Motzkin elimination of a single dimension from inequalities. *)
let fm_eliminate_one dimension cons k =
  let lower = ref [] and upper = ref [] and rest = ref [] in
  List.iter
    (fun (c : Constr.t) ->
      let a = c.v.(k) in
      if a > 0 then lower := c :: !lower
      else if a < 0 then upper := c :: !upper
      else rest := c :: !rest)
    cons;
  let combined = ref [] in
  List.iter
    (fun (lo : Constr.t) ->
      List.iter
        (fun (up : Constr.t) ->
          (* lo: a*x_k + e >= 0, a > 0; up: -b*x_k + f >= 0, b > 0
             combine: b*e + a*f >= 0 *)
          let a = lo.v.(k) and b = -up.v.(k) in
          let v =
            Array.init dimension (fun i ->
                if i = k then 0 else (b * lo.v.(i)) + (a * up.v.(i)))
          in
          let c = (b * lo.c) + (a * up.c) in
          combined := Constr.make Ge v c :: !combined)
        !upper)
    !lower;
  !rest @ !combined

let eliminate t ks =
  let cons = ref (to_inequalities t.cons) in
  List.iter (fun k -> cons := fm_eliminate_one t.dim !cons k) ks;
  simplify { t with cons = !cons }

let drop_dims t ks =
  let p = eliminate t ks in
  let keep =
    List.filter (fun i -> not (List.mem i ks)) (List.init t.dim Fun.id)
  in
  let keep = Array.of_list keep in
  let ndim = Array.length keep in
  let remap (c : Constr.t) =
    Constr.make c.kind (Array.map (fun i -> c.v.(i)) keep) c.c
  in
  make ndim (List.map remap p.cons)

let fm_dim_limit = 4

(* Per-dimension interval propagation for nest-shaped polyhedra: process
   dimensions left to right; a constraint bounds dim d if its only other
   non-zero coefficients are on earlier dims, whose intervals are already
   known (interval arithmetic gives a sound, possibly loose, bound).
   Fold-produced domains have exactly this triangular shape, so this is
   exact for them; Fourier-Motzkin would blow up past ~5 dims. *)
let interval_bounds t =
  let n = t.dim in
  let lo = Array.make n None and hi = Array.make n None in
  let push_lo d (b : Rat.t) =
    lo.(d) <- (match lo.(d) with None -> Some b | Some x -> Some (Rat.max x b))
  in
  let push_hi d (b : Rat.t) =
    hi.(d) <- (match hi.(d) with None -> Some b | Some x -> Some (Rat.min x b))
  in
  for d = 0 to n - 1 do
    List.iter
      (fun (c : Constr.t) ->
        let a = c.v.(d) in
        let only_earlier =
          a <> 0
          &&
          let ok = ref true in
          Array.iteri (fun k v -> if k > d && v <> 0 then ok := false) c.v;
          !ok
        in
        if only_earlier then begin
          (* a*x_d + sum_{k<d} v_k x_k + cst >= 0 (or = 0) *)
          let eval_rest min_or_max =
            (* extreme value of sum v_k x_k + cst over earlier intervals *)
            let acc = ref (Some (Rat.of_int c.c)) in
            for k = 0 to d - 1 do
              if c.v.(k) <> 0 then begin
                let coef = Rat.of_int c.v.(k) in
                let pick =
                  (* for a lower bound on the rest take the minimum, etc. *)
                  if (Rat.sign coef > 0) = min_or_max then hi.(k) else lo.(k)
                in
                match (!acc, pick) with
                | Some a0, Some b -> acc := Some (Rat.add a0 (Rat.mul coef b))
                | _ -> acc := None
              end
            done;
            !acc
          in
          if a > 0 then begin
            (* x_d >= -(rest)/a : strongest when rest is maximal *)
            (match eval_rest true with
            | Some r -> push_lo d (Rat.div (Rat.neg r) (Rat.of_int a))
            | None -> ());
            if c.kind = Constr.Eq then
              match eval_rest false with
              | Some r -> push_hi d (Rat.div (Rat.neg r) (Rat.of_int a))
              | None -> ()
          end
          else begin
            (match eval_rest true with
            | Some r -> push_hi d (Rat.div r (Rat.of_int (-a)))
            | None -> ());
            if c.kind = Constr.Eq then
              match eval_rest false with
              | Some r -> push_lo d (Rat.div r (Rat.of_int (-a)))
              | None -> ()
          end
        end)
      t.cons
  done;
  (lo, hi)

let interval_expr_bounds t (a : Affine.t) =
  let lo, hi = interval_bounds t in
  let lo_acc = ref (Some a.Affine.const) and hi_acc = ref (Some a.Affine.const) in
  Array.iteri
    (fun k coef ->
      if not (Rat.is_zero coef) then begin
        let pick_lo = if Rat.sign coef > 0 then lo.(k) else hi.(k) in
        let pick_hi = if Rat.sign coef > 0 then hi.(k) else lo.(k) in
        (match (!lo_acc, pick_lo) with
        | Some acc, Some b -> lo_acc := Some (Rat.add acc (Rat.mul coef b))
        | _ -> lo_acc := None);
        match (!hi_acc, pick_hi) with
        | Some acc, Some b -> hi_acc := Some (Rat.add acc (Rat.mul coef b))
        | _ -> hi_acc := None
      end)
    a.Affine.coeffs;
  (!lo_acc, !hi_acc)

let is_empty t =
  let p = simplify t in
  if p.cons = [] then false
  else if p.dim > fm_dim_limit then begin
    (* sound, incomplete emptiness for high dimension: empty interval on
       some dim, or a constraint violated at the interval midpoint box *)
    let lo, hi = interval_bounds p in
    let empty_interval = ref false in
    Array.iteri
      (fun k l ->
        match (l, hi.(k)) with
        | Some a, Some b when Rat.compare a b > 0 -> empty_interval := true
        | _ -> ())
      lo;
    !empty_interval
  end
  else
    let q = eliminate p (List.init p.dim Fun.id) in
    (* after eliminating everything, only constant constraints remain and
       simplify collapses contradictions into the canonical empty set *)
    List.exists
      (fun (c : Constr.t) -> Pp_util.Vecint.is_zero c.v && c.c < 0)
      q.cons

let is_universe t = (simplify t).cons = []

(* FM-based exact optimisation, affordable in low dimension. *)
let fm_bounds t (a : Affine.t) =
  assert (Affine.dim a = t.dim);
  let n = t.dim + 1 in
  let ext (c : Constr.t) =
    let v = Array.make n 0 in
    Array.blit c.v 0 v 0 t.dim;
    Constr.make c.kind v c.c
  in
  let obj =
    (* t - expr = 0 where t is dim index t.dim *)
    let e = Affine.extend a n in
    let tvar = Affine.var ~dim:n t.dim in
    Constr.of_affine Eq (Affine.sub tvar e)
  in
  let p = make n (obj :: List.map ext t.cons) in
  let q = eliminate p (List.init t.dim Fun.id) in
  let lo = ref None and hi = ref None in
  List.iter
    (fun (c : Constr.t) ->
      let coef = c.v.(t.dim) in
      let push_lo b = match !lo with None -> lo := Some b | Some x -> lo := Some (Rat.max x b) in
      let push_hi b = match !hi with None -> hi := Some b | Some x -> hi := Some (Rat.min x b) in
      if coef > 0 then
        (* coef*t + c >= 0  =>  t >= -c/coef *)
        push_lo (Rat.make (-c.c) coef)
      else if coef < 0 then push_hi (Rat.make (-c.c) coef)
      else ();
      if c.kind = Constr.Eq && coef <> 0 then begin
        push_lo (Rat.make (-c.c) coef);
        push_hi (Rat.make (-c.c) coef)
      end)
    q.cons;
  (!lo, !hi)

let bounds t (a : Affine.t) =
  if Affine.is_constant a then (Some a.Affine.const, Some a.Affine.const)
  else if t.dim <= fm_dim_limit then fm_bounds t a
  else interval_expr_bounds t a

let dim_bounds t k = bounds t (Affine.var ~dim:t.dim k)

let entails t (c : Constr.t) =
  if is_empty t then true
  else
    let lo, hi = bounds t (Constr.affine c) in
    match c.kind with
    | Constr.Ge -> ( match lo with Some l -> Rat.sign l >= 0 | None -> false)
    | Constr.Eq -> (
        match (lo, hi) with
        | Some l, Some h -> Rat.is_zero l && Rat.is_zero h
        | _ -> false)

let is_subset a b =
  assert (a.dim = b.dim);
  is_empty a || List.for_all (entails a) b.cons

let equal_set a b = is_subset a b && is_subset b a

(* Substitute x_k := value in all constraints. *)
let fix_dim t k value =
  let fix (c : Constr.t) =
    let v = Array.copy c.v in
    let add = v.(k) * value in
    v.(k) <- 0;
    Constr.make c.kind v (c.c + add)
  in
  simplify { t with cons = List.map fix t.cons }

let sample t =
  let rec go t k acc =
    if k >= t.dim then if mem t (Array.of_list (List.rev acc)) then Some (Array.of_list (List.rev acc)) else None
    else
      match dim_bounds t k with
      | Some lo, Some hi ->
          let lo = Rat.ceil lo and hi = Rat.floor hi in
          let rec try_value v =
            if v > hi then None
            else
              match go (fix_dim t k v) (k + 1) (v :: acc) with
              | Some pt -> Some pt
              | None -> try_value (v + 1)
          in
          try_value lo
      | _ ->
          (* unbounded dimension: try 0 then small values around it *)
          let rec try_values = function
            | [] -> None
            | v :: rest -> (
                match go (fix_dim t k v) (k + 1) (v :: acc) with
                | Some pt -> Some pt
                | None -> try_values rest)
          in
          try_values [ 0; 1; -1; 2; -2 ]
  in
  if is_empty t then None else go t 0 []

let integer_points ?(max_points = 1_000_000) t =
  let out = ref [] in
  let n = ref 0 in
  let rec go t k acc =
    if k >= t.dim then begin
      incr n;
      if !n > max_points then failwith "Polyhedron.integer_points: too many points";
      out := Array.of_list (List.rev acc) :: !out
    end
    else
      match dim_bounds t k with
      | Some lo, Some hi ->
          let lo = Rat.ceil lo and hi = Rat.floor hi in
          for v = lo to hi do
            let t' = fix_dim t k v in
            if not (is_empty t') then go t' (k + 1) (v :: acc)
          done
      | _ -> failwith "Polyhedron.integer_points: unbounded polyhedron"
  in
  if not (is_empty t) then go t 0 [];
  List.rev !out

let count ?max_points t = List.length (integer_points ?max_points t)

let translate t v =
  assert (Array.length v = t.dim);
  let shift (c : Constr.t) =
    (* c holds on x iff shifted holds on x + v: v.(x+v)+c >= 0 becomes
       coeffs unchanged, constant c - coeffs.v *)
    Constr.make c.kind c.v (c.c - Pp_util.Vecint.dot c.v v)
  in
  { t with cons = List.map shift t.cons }

let pp ?names fmt t =
  if t.cons = [] then Format.fprintf fmt "{ universe(%d) }" t.dim
  else begin
    Format.fprintf fmt "{ ";
    List.iteri
      (fun i c ->
        if i > 0 then Format.fprintf fmt " and ";
        Constr.pp ?names fmt c)
      t.cons;
    Format.fprintf fmt " }"
  end

let to_string ?names t = Format.asprintf "%a" (pp ?names) t
