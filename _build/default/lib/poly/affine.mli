(** Affine expressions [sum_k coeffs.(k) * x_k + const] over a fixed
    number of dimensions, with exact rational coefficients. *)

module Rat = Pp_util.Rat

type t = { coeffs : Rat.t array; const : Rat.t }

val make : Rat.t array -> Rat.t -> t
val of_int_coeffs : int array -> int -> t
val const : dim:int -> Rat.t -> t
val var : dim:int -> int -> t
(** [var ~dim k] is the expression [x_k] in a [dim]-dimensional space. *)

val dim : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val scale : Rat.t -> t -> t
val neg : t -> t
val eval : t -> int array -> Rat.t
val eval_rat : t -> Rat.t array -> Rat.t
val equal : t -> t -> bool
val is_constant : t -> bool
val is_integral : t -> bool
(** All coefficients and the constant are integers. *)

val substitute : t -> int -> t -> t
(** [substitute e k by] replaces [x_k] with the expression [by] (which
    must have the same dimensionality). *)

val extend : t -> int -> t
(** [extend e n] reinterprets [e] in an [n]-dimensional space ([n >= dim e]);
    new trailing dimensions get coefficient 0. *)

val pp : ?names:string array -> Format.formatter -> t -> unit
val to_string : ?names:string array -> t -> string
