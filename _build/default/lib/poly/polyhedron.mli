(** Convex integer polyhedra represented as conjunctions of affine
    constraints, with the Fourier–Motzkin based operations needed by the
    folding and feedback stages.

    Emptiness, entailment and bounds are computed over the rational
    relaxation.  Sets produced by folding are constructed from actual
    integer points, so the relaxation is exact for them. *)

module Rat = Pp_util.Rat

type t

val make : int -> Constr.t list -> t
(** [make dim cons]; all constraints must have dimension [dim]. *)

val universe : int -> t
val empty : int -> t
val dim : t -> int
val constraints : t -> Constr.t list

val mem : t -> int array -> bool
val add_constraint : t -> Constr.t -> t
val intersect : t -> t -> t

val eliminate : t -> int list -> t
(** Existentially project out the given dimensions (Fourier–Motzkin); the
    result has the same dimensionality, with those dims unconstrained. *)

val drop_dims : t -> int list -> t
(** [drop_dims p ks] eliminates dims [ks] and removes the coordinates,
    yielding a polyhedron of dimension [dim p - List.length ks]. *)

val is_empty : t -> bool
val is_universe : t -> bool

val bounds : t -> Affine.t -> Rat.t option * Rat.t option
(** Min and max of the affine expression over the polyhedron ([None] if
    unbounded in that direction).  Returns [(None, None)] by convention
    on an empty polyhedron — use {!is_empty} first if it matters. *)

val dim_bounds : t -> int -> Rat.t option * Rat.t option
val entails : t -> Constr.t -> bool
val is_subset : t -> t -> bool
val equal_set : t -> t -> bool

val sample : t -> int array option
(** Some integer point of the polyhedron, if one can be found by bounded
    recursive descent (requires the rational relaxation to be bounded in
    every dimension that matters). *)

val integer_points : ?max_points:int -> t -> int array list
(** Enumerate all integer points; raises [Failure] if the polyhedron is
    unbounded or holds more than [max_points] (default 1_000_000). *)

val count : ?max_points:int -> t -> int
(** Number of integer points (by enumeration, same limits as
    {!integer_points}). *)

val translate : t -> int array -> t
(** [translate p v] is [{ x + v | x in p }]. *)

val pp : ?names:string array -> Format.formatter -> t -> unit
val to_string : ?names:string array -> t -> string
