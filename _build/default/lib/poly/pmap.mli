(** Piecewise affine maps: a domain polyhedron together with one affine
    output expression per output dimension.  Used to represent folded
    dependence relations (consumer IV -> producer IV), access functions
    and SCEV label functions. *)

module Rat = Pp_util.Rat

type piece = { dom : Polyhedron.t; out : Affine.t array }
(** Every [out.(i)] has dimensionality [Polyhedron.dim dom]. *)

type t

val make : in_dim:int -> out_dim:int -> piece list -> t
val in_dim : t -> int
val out_dim : t -> int
val pieces : t -> piece list
val n_pieces : t -> int
val is_empty : t -> bool

val apply : t -> int array -> Rat.t array option
(** Image of a point under the first piece whose domain contains it. *)

val apply_int : t -> int array -> int array option
(** Like {!apply} but fails (returns [None]) if the image is not
    integral. *)

val domain : t -> Pset.t
val union : t -> t -> t
val restrict_domain : t -> Polyhedron.t -> t

val distance : piece -> int array option
(** For a piece mapping an n-space to itself ([out_dim = in_dim] of the
    enclosing map): the constant vector [x - out(x)] if it is constant
    over the domain, e.g. the dependence distance for a uniform
    dependence. *)

val distance_exprs : piece -> Affine.t array
(** [x - out(x)] per dimension, as affine expressions over the domain. *)

val pp : ?in_names:string array -> ?out_names:string array
  -> Format.formatter -> t -> unit
val to_string : ?in_names:string array -> ?out_names:string array -> t -> string
