module Rat = Pp_util.Rat

type kind = Eq | Ge
type t = { kind : kind; v : int array; c : int }

let normalize kind v c =
  let g = Array.fold_left (fun acc x -> Rat.gcd acc x) (abs c) v in
  let v, c = if g > 1 then (Array.map (fun x -> x / g) v, c / g) else (v, c) in
  match kind with
  | Ge -> { kind; v; c }
  | Eq ->
      (* make leading coefficient positive for canonical equalities *)
      let rec lead i =
        if i >= Array.length v then 0 else if v.(i) <> 0 then v.(i) else lead (i + 1)
      in
      if lead 0 < 0 then { kind; v = Array.map (fun x -> -x) v; c = -c }
      else { kind; v; c }

let make kind v c = normalize kind (Array.copy v) c

let of_affine kind (a : Affine.t) =
  (* multiply by lcm of denominators *)
  let l =
    Array.fold_left
      (fun acc r -> Rat.lcm acc (Rat.den r))
      (Rat.den a.const) a.coeffs
  in
  let l = if l = 0 then 1 else l in
  let scale r = Rat.to_int_exn (Rat.mul (Rat.of_int l) r) in
  make kind (Array.map scale a.coeffs) (scale a.const)

let dim t = Array.length t.v

let eval t x =
  let acc = ref t.c in
  Array.iteri (fun i v -> acc := !acc + (v * x.(i))) t.v;
  !acc

let sat t x =
  let e = eval t x in
  match t.kind with Eq -> e = 0 | Ge -> e >= 0

let affine t = Affine.of_int_coeffs t.v t.c
let negate_ge t =
  assert (t.kind = Ge);
  make Ge (Array.map (fun x -> -x) t.v) (-t.c - 1)

let equal a b = a.kind = b.kind && a.v = b.v && a.c = b.c
let compare = Stdlib.compare

let pp ?names fmt t =
  let op = match t.kind with Eq -> "=" | Ge -> ">=" in
  Format.fprintf fmt "%a %s 0" (Affine.pp ?names) (affine t) op

let to_string ?names t = Format.asprintf "%a" (pp ?names) t
