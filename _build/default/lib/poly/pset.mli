(** Finite unions of convex polyhedra of a common dimensionality. *)

type t

val of_polyhedra : int -> Polyhedron.t list -> t
val empty : int -> t
val universe : int -> t
val singleton : Polyhedron.t -> t
val dim : t -> int
val disjuncts : t -> Polyhedron.t list
val n_disjuncts : t -> int
val mem : t -> int array -> bool
val union : t -> t -> t
val add : t -> Polyhedron.t -> t
val intersect : t -> t -> t
val is_empty : t -> bool
val is_subset : t -> t -> bool
(** Sound but incomplete for unions: checks that every disjunct of the
    first is contained in some single disjunct of the second. *)

val coalesce : t -> t
(** Drop disjuncts contained in other disjuncts. *)

val count : ?max_points:int -> t -> int
(** Number of integer points, assuming the disjuncts are pairwise
    disjoint (folding produces disjoint pieces). *)

val pp : ?names:string array -> Format.formatter -> t -> unit
val to_string : ?names:string array -> t -> string
