lib/poly/hull.mli: Polyhedron Pset
