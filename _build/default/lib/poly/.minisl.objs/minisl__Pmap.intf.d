lib/poly/pmap.mli: Affine Format Polyhedron Pp_util Pset
