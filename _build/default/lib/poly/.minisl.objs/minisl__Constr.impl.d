lib/poly/constr.ml: Affine Array Format Pp_util Stdlib
