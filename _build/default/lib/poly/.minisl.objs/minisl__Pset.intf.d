lib/poly/pset.mli: Format Polyhedron
