lib/poly/affine.ml: Array Format Pp_util
