lib/poly/hull.ml: Array Constr List Polyhedron Pp_util Pset
