lib/poly/pmap.ml: Affine Array Format List Polyhedron Pp_util Pset
