lib/poly/affine.mli: Format Pp_util
