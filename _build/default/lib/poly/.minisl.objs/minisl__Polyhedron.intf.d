lib/poly/polyhedron.mli: Affine Constr Format Pp_util
