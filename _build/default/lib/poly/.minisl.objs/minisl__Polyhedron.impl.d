lib/poly/polyhedron.ml: Affine Array Constr Format Fun Hashtbl List Pp_util
