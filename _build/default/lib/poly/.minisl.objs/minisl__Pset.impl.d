lib/poly/pset.ml: Format List Polyhedron
