lib/poly/lp.mli: Affine Polyhedron Pp_util
