lib/poly/lp.ml: Affine Array Constr List Polyhedron Pp_util Seq
