(** Integer affine constraints: [v . x + c >= 0] or [v . x + c = 0].
    Canonical form: coefficients are divided by their (positive) gcd; for
    equalities the leading non-zero coefficient is positive. *)

type kind = Eq | Ge

type t = private { kind : kind; v : int array; c : int }

val make : kind -> int array -> int -> t
val of_affine : kind -> Affine.t -> t
(** Clears rational denominators.  For [Ge], the direction is preserved. *)

val dim : t -> int
val eval : t -> int array -> int
(** Value of [v . x + c]. *)

val sat : t -> int array -> bool
val affine : t -> Affine.t
val negate_ge : t -> t
(** [negate_ge c] for a [Ge] constraint [e >= 0] is the strict complement
    [-e - 1 >= 0] (integer negation). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : ?names:string array -> Format.formatter -> t -> unit
val to_string : ?names:string array -> t -> string
