(** Over-approximation operators used when folding gives up on an exact
    representation (paper §5, "Over-approximations"). *)

val box_of_points : int array list -> Polyhedron.t
(** Smallest axis-aligned bounding box containing the points.  The list
    must be non-empty. *)

val box_of_polyhedra : int -> Polyhedron.t list -> Polyhedron.t
(** Bounding box of a union (unbounded directions stay unbounded). *)

val widen_union : Pset.t -> Pset.t
(** Collapse a union into the single bounding box of its disjuncts. *)
