module Rat = Pp_util.Rat

type t = { coeffs : Rat.t array; const : Rat.t }

let make coeffs const = { coeffs = Array.copy coeffs; const }
let of_int_coeffs coeffs const =
  { coeffs = Array.map Rat.of_int coeffs; const = Rat.of_int const }

let const ~dim c = { coeffs = Array.make dim Rat.zero; const = c }

let var ~dim k =
  let coeffs = Array.make dim Rat.zero in
  coeffs.(k) <- Rat.one;
  { coeffs; const = Rat.zero }

let dim t = Array.length t.coeffs

let add a b =
  assert (dim a = dim b);
  { coeffs = Array.init (dim a) (fun i -> Rat.add a.coeffs.(i) b.coeffs.(i));
    const = Rat.add a.const b.const }

let neg a = { coeffs = Array.map Rat.neg a.coeffs; const = Rat.neg a.const }
let sub a b = add a (neg b)

let scale k a =
  { coeffs = Array.map (Rat.mul k) a.coeffs; const = Rat.mul k a.const }

let eval_rat t x =
  let acc = ref t.const in
  Array.iteri (fun i c -> acc := Rat.add !acc (Rat.mul c x.(i))) t.coeffs;
  !acc

let eval t x = eval_rat t (Array.map Rat.of_int x)

let equal a b =
  dim a = dim b
  && Rat.equal a.const b.const
  && Array.for_all2 Rat.equal a.coeffs b.coeffs

let is_constant t = Array.for_all Rat.is_zero t.coeffs
let is_integral t =
  Rat.is_integer t.const && Array.for_all Rat.is_integer t.coeffs

let substitute e k by =
  assert (dim e = dim by);
  let c = e.coeffs.(k) in
  if Rat.is_zero c then e
  else begin
    let e' = { e with coeffs = Array.copy e.coeffs } in
    e'.coeffs.(k) <- Rat.zero;
    add e' (scale c by)
  end

let extend e n =
  assert (n >= dim e);
  let coeffs = Array.make n Rat.zero in
  Array.blit e.coeffs 0 coeffs 0 (dim e);
  { e with coeffs }

let default_name k = "i" ^ string_of_int k

let pp ?names fmt t =
  let name k =
    match names with Some ns when k < Array.length ns -> ns.(k) | _ -> default_name k
  in
  let printed = ref false in
  Array.iteri
    (fun k c ->
      if not (Rat.is_zero c) then begin
        if !printed then
          if Rat.sign c > 0 then Format.fprintf fmt " + "
          else Format.fprintf fmt " - "
        else if Rat.sign c < 0 then Format.fprintf fmt "-";
        let a = Rat.abs c in
        if Rat.equal a Rat.one then Format.fprintf fmt "%s" (name k)
        else Format.fprintf fmt "%a%s" Rat.pp a (name k);
        printed := true
      end)
    t.coeffs;
  if not !printed then Rat.pp fmt t.const
  else if not (Rat.is_zero t.const) then
    if Rat.sign t.const > 0 then Format.fprintf fmt " + %a" Rat.pp t.const
    else Format.fprintf fmt " - %a" Rat.pp (Rat.abs t.const)

let to_string ?names t = Format.asprintf "%a" (pp ?names) t
