module Rat = Pp_util.Rat

let box_of_points = function
  | [] -> invalid_arg "Hull.box_of_points: empty"
  | p0 :: rest ->
      let dim = Array.length p0 in
      let lo = Array.copy p0 and hi = Array.copy p0 in
      List.iter
        (fun p ->
          Array.iteri
            (fun k v ->
              if v < lo.(k) then lo.(k) <- v;
              if v > hi.(k) then hi.(k) <- v)
            p)
        rest;
      let cons = ref [] in
      for k = 0 to dim - 1 do
        let up = Array.make dim 0 and dn = Array.make dim 0 in
        up.(k) <- 1;
        dn.(k) <- -1;
        cons := Constr.make Ge up (-lo.(k)) :: Constr.make Ge dn hi.(k) :: !cons
      done;
      Polyhedron.make dim !cons

let box_of_polyhedra dim ps =
  let cons = ref [] in
  for k = 0 to dim - 1 do
    let lo =
      List.fold_left
        (fun acc p ->
          match (acc, fst (Polyhedron.dim_bounds p k)) with
          | Some a, Some b -> Some (Rat.min a b)
          | _ -> None)
        (match ps with
        | [] -> None
        | p :: _ -> fst (Polyhedron.dim_bounds p k))
        (match ps with [] -> [] | _ :: r -> r)
    in
    let hi =
      List.fold_left
        (fun acc p ->
          match (acc, snd (Polyhedron.dim_bounds p k)) with
          | Some a, Some b -> Some (Rat.max a b)
          | _ -> None)
        (match ps with
        | [] -> None
        | p :: _ -> snd (Polyhedron.dim_bounds p k))
        (match ps with [] -> [] | _ :: r -> r)
    in
    let up = Array.make dim 0 and dn = Array.make dim 0 in
    up.(k) <- 1;
    dn.(k) <- -1;
    (match lo with
    | Some l -> cons := Constr.make Ge up (-Rat.ceil l) :: !cons
    | None -> ());
    match hi with
    | Some h -> cons := Constr.make Ge dn (Rat.floor h) :: !cons
    | None -> ()
  done;
  Polyhedron.make dim !cons

let widen_union s =
  if Pset.is_empty s then s
  else
    Pset.singleton (box_of_polyhedra (Pset.dim s) (Pset.disjuncts s))
