type t = { dim : int; ps : Polyhedron.t list }

let of_polyhedra dim ps =
  List.iter (fun p -> assert (Polyhedron.dim p = dim)) ps;
  { dim; ps = List.filter (fun p -> not (Polyhedron.is_empty p)) ps }

let empty dim = { dim; ps = [] }
let universe dim = { dim; ps = [ Polyhedron.universe dim ] }
let singleton p = of_polyhedra (Polyhedron.dim p) [ p ]
let dim t = t.dim
let disjuncts t = t.ps
let n_disjuncts t = List.length t.ps
let mem t x = List.exists (fun p -> Polyhedron.mem p x) t.ps

let union a b =
  assert (a.dim = b.dim);
  { dim = a.dim; ps = a.ps @ b.ps }

let add t p = union t (singleton p)

let intersect a b =
  assert (a.dim = b.dim);
  let ps =
    List.concat_map
      (fun pa ->
        List.filter_map
          (fun pb ->
            let q = Polyhedron.intersect pa pb in
            if Polyhedron.is_empty q then None else Some q)
          b.ps)
      a.ps
  in
  { dim = a.dim; ps }

let is_empty t = t.ps = []

let is_subset a b =
  List.for_all
    (fun pa -> List.exists (fun pb -> Polyhedron.is_subset pa pb) b.ps)
    a.ps

let coalesce t =
  let rec keep acc = function
    | [] -> List.rev acc
    | p :: rest ->
        let covered =
          List.exists (Polyhedron.is_subset p) rest
          || List.exists (Polyhedron.is_subset p) acc
        in
        if covered then keep acc rest else keep (p :: acc) rest
  in
  { t with ps = keep [] t.ps }

let count ?max_points t =
  List.fold_left (fun acc p -> acc + Polyhedron.count ?max_points p) 0 t.ps

let pp ?names fmt t =
  if t.ps = [] then Format.fprintf fmt "{ }"
  else
    List.iteri
      (fun i p ->
        if i > 0 then Format.fprintf fmt " u ";
        Polyhedron.pp ?names fmt p)
      t.ps

let to_string ?names t = Format.asprintf "%a" (pp ?names) t
