(** A static polyhedral modeller over HIR, standing in for LLVM Polly in
    the paper's Experiment II.  It attempts to model each function body
    as an affine program and reports the paper's failure-reason codes:

    - R: unhandled function call
    - C: complex CFG (break / return inside a loop)
    - B: non-affine loop bound or non-affine conditional
    - F: non-affine access function (includes pointer indirection)
    - A: unhandled possible pointer aliasing
    - P: base pointer not loop invariant *)

type reason =
  | R_call
  | C_complex_cfg
  | B_nonaffine_bound
  | F_nonaffine_access
  | A_aliasing
  | P_base_not_invariant

val reason_code : reason -> string

type verdict = {
  modeled : bool;  (** the whole body is an affine region *)
  reasons : reason list;  (** sorted, deduplicated; empty iff [modeled] *)
  modeled_depth : int;
      (** deepest loop-nest prefix that could be modelled (Polly "was
          able to model some smaller subregions") *)
  total_depth : int;
}

val default_intrinsics : string list
(** Simple callees a static modeller can summarise (exp, sqrt, ...). *)

val analyse_fundef :
  ?intrinsics:string list -> Vm.Hir.program -> Vm.Hir.fundef -> verdict

val analyse_function :
  ?intrinsics:string list -> Vm.Hir.program -> string -> verdict
val reasons_string : verdict -> string
(** e.g. "RCBF"; "-" when fully modelled. *)

val pp_verdict : Format.formatter -> verdict -> unit
