lib/staticbase/polly_lite.mli: Format Vm
