lib/staticbase/polly_lite.ml: Format List String Vm
