module H = Vm.Hir

type reason =
  | R_call
  | C_complex_cfg
  | B_nonaffine_bound
  | F_nonaffine_access
  | A_aliasing
  | P_base_not_invariant

let reason_code = function
  | R_call -> "R"
  | C_complex_cfg -> "C"
  | B_nonaffine_bound -> "B"
  | F_nonaffine_access -> "F"
  | A_aliasing -> "A"
  | P_base_not_invariant -> "P"

(* canonical report order used in the paper's table *)
let reason_rank = function
  | R_call -> 0
  | C_complex_cfg -> 1
  | B_nonaffine_bound -> 2
  | F_nonaffine_access -> 3
  | A_aliasing -> 4
  | P_base_not_invariant -> 5

type verdict = {
  modeled : bool;
  reasons : reason list;
  modeled_depth : int;
  total_depth : int;
}

(* Static classification of scalar variables inside a region. *)
type var_class =
  | Affine  (* affine function of loop iterators and parameters *)
  | Param  (* symbolic constant: function parameter / loop-invariant *)
  | Loaded_invariant  (* loaded from a loop-invariant address *)
  | Opaque

type env = {
  mutable vars : (string * var_class) list;
  mutable reasons : reason list;
  mutable in_loop : int;  (* current loop depth *)
  mutable deepest_clean : int;  (* deepest loop entered with no reason yet *)
  intrinsics : string list;  (* simple callees Polly can summarise *)
  program : H.program;
  mutable inlining : string list;  (* call stack guard *)
}

let add_reason env r =
  if not (List.mem r env.reasons) then env.reasons <- r :: env.reasons

let var_class env v =
  match List.assoc_opt v env.vars with Some c -> c | None -> Opaque

let set_var env v c = env.vars <- (v, c) :: List.remove_assoc v env.vars

(* Is an expression an affine function of iterators/parameters? *)
let rec is_affine env (e : H.expr) =
  match e with
  | H.Int _ -> true
  | H.Var v -> ( match var_class env v with Affine | Param -> true | _ -> false)
  | H.Base _ -> true
  | H.Bin (Vm.Isa.Add, a, b) | H.Bin (Vm.Isa.Sub, a, b) ->
      is_affine env a && is_affine env b
  | H.Bin (Vm.Isa.Mul, a, b) ->
      (* polyhedral tools accept iterator * parameter products: the
         parameter acts as a symbolic constant coefficient *)
      (is_invariant env a && is_affine env b)
      || (is_invariant env b && is_affine env a)
  | H.Bin ((Vm.Isa.Div | Vm.Isa.Rem | Vm.Isa.And | Vm.Isa.Or | Vm.Isa.Xor
           | Vm.Isa.Shl | Vm.Isa.Shr), _, _) ->
      false
  | H.Flt _ | H.Cmp _ | H.Fcmp _ | H.Fbin _ | H.Load _ | H.Itof _ | H.Ftoi _
  | H.Callf _ ->
      false

and is_invariant env = function
  | H.Int _ -> true
  | H.Var v -> var_class env v = Param
  | H.Bin ((Vm.Isa.Add | Vm.Isa.Sub | Vm.Isa.Mul), a, b) ->
      is_invariant env a && is_invariant env b
  | _ -> false

(* Does the expression (an address) dereference a loaded base pointer? *)
let rec mentions_loaded env (e : H.expr) =
  match e with
  | H.Var v -> var_class env v = Loaded_invariant
  | H.Bin (_, a, b) | H.Fbin (_, a, b) | H.Cmp (_, a, b) | H.Fcmp (_, a, b) ->
      mentions_loaded env a || mentions_loaded env b
  | H.Load a | H.Itof a | H.Ftoi a -> mentions_loaded env a
  | H.Callf (_, args) -> List.exists (mentions_loaded env) args
  | H.Int _ | H.Flt _ | H.Base _ -> false

(* The leftmost additive term of an address expression: its base. *)
let rec address_root = function
  | H.Bin ((Vm.Isa.Add | Vm.Isa.Sub), a, _) -> address_root a
  | e -> e

let check_address env addr =
  if is_affine env addr then ()
  else
    (* distinguish "base pointer not loop invariant" (the base of the
       address was itself loaded, e.g. a row pointer fetched per
       iteration) from a generally non-affine access such as an indirect
       index a[b[i]] *)
    match address_root addr with
    | H.Var v when var_class env v = Loaded_invariant ->
        add_reason env P_base_not_invariant
    | H.Load _ -> add_reason env P_base_not_invariant
    | _ ->
        if mentions_loaded env addr then add_reason env F_nonaffine_access
        else add_reason env F_nonaffine_access

(* Walk expressions for accesses and calls. *)
let rec walk_expr env (e : H.expr) =
  match e with
  | H.Int _ | H.Flt _ | H.Var _ | H.Base _ -> ()
  | H.Bin (_, a, b) | H.Fbin (_, a, b) | H.Cmp (_, a, b) | H.Fcmp (_, a, b) ->
      walk_expr env a;
      walk_expr env b
  | H.Load addr ->
      walk_expr env addr;
      check_address env addr
  | H.Itof a | H.Ftoi a -> walk_expr env a
  | H.Callf (callee, args) ->
      List.iter (walk_expr env) args;
      walk_call env callee args

and classify_assign env v (e : H.expr) =
  if is_affine env e then set_var env v Affine
  else
    match e with
    | H.Load _ -> set_var env v Loaded_invariant
    | H.Var src -> set_var env v (var_class env src)
    | _ -> set_var env v Opaque

and walk_stmt env (s : H.stmt) =
  match s with
  | H.Let (v, e) ->
      walk_expr env e;
      classify_assign env v e
  | H.Store (addr, value) ->
      walk_expr env addr;
      walk_expr env value;
      check_address env addr
  | H.CallS (dst, callee, args) ->
      List.iter (walk_expr env) args;
      walk_call env callee args;
      (match dst with Some v -> set_var env v Opaque | None -> ())
  | H.Return _ -> if env.in_loop > 0 then add_reason env C_complex_cfg
  | H.Break -> add_reason env C_complex_cfg
  | H.If (c, a, b) ->
      walk_expr env c;
      (* a data-dependent conditional whose branches are pure scalar
         assignments is if-converted to selects by the compiler; only
         flag B when the branches have effects the select cannot hide *)
      let effectful =
        List.exists
          (function
            | H.Let _ -> false
            (* a guarded break/return is a complex-CFG problem (C), not a
               bound problem *)
            | H.Return _ | H.Break -> false
            | H.Store _ | H.For _ | H.While _ | H.If _ | H.CallS _ -> true)
          (a @ b)
      in
      if (not (is_affine_cond env c)) && effectful then
        add_reason env B_nonaffine_bound;
      List.iter (walk_stmt env) a;
      List.iter (walk_stmt env) b
  | H.While { cond; wbody; _ } ->
      walk_expr env cond;
      add_reason env B_nonaffine_bound;
      env.in_loop <- env.in_loop + 1;
      (* two passes so loop-carried reclassifications (e.g. an iterator
         overwritten by a load) reach their uses *)
      List.iter (walk_stmt env) wbody;
      List.iter (walk_stmt env) wbody;
      env.in_loop <- env.in_loop - 1
  | H.For { v; lo; hi; body; _ } as loop ->
      let reasons_before = List.length env.reasons in
      walk_expr env lo;
      walk_expr env hi;
      let bounds_ok = is_affine env lo && is_affine env hi in
      if not bounds_ok then add_reason env B_nonaffine_bound;
      env.in_loop <- env.in_loop + 1;
      set_var env v Affine;
      (* two passes so loop-carried reclassifications (e.g. an iterator
         overwritten by a load) reach their uses *)
      List.iter (walk_stmt env) body;
      set_var env v Affine;
      List.iter (walk_stmt env) body;
      env.in_loop <- env.in_loop - 1;
      (* a loop subtree that contributed no failure reason is a fully
         modelable subregion ("Polly was able to model some smaller
         subregions, 1D or 2D loop nests") *)
      if List.length env.reasons = reasons_before then
        env.deepest_clean <- max env.deepest_clean (H.stmt_depth loop)

and is_affine_cond env = function
  | H.Cmp (_, a, b) -> is_affine env a && is_affine env b
  | _ -> false

(* The paper inlines multi-function kernels so Polly sees the same region
   POLY-PROF profiles: calls to defined, non-library functions are
   analysed inline; library-like (blacklisted) or unknown callees are
   "unhandled function calls" (reason R). *)
and walk_call env callee args =
  if List.mem callee env.intrinsics then ()
  else
    match
      List.find_opt
        (fun (g : H.fundef) -> g.H.name = callee)
        env.program.H.funs
    with
    | Some g when (not g.H.blacklisted) && not (List.mem callee env.inlining)
      ->
        if List.mem H.May_alias g.H.attrs then add_reason env A_aliasing;
        ignore args;
        let saved_vars = env.vars in
        let saved_in_loop = env.in_loop in
        env.vars <- [];
        env.in_loop <- 0;
        (* arguments become symbolic parameters of the inlined body *)
        List.iter (fun param -> set_var env param Param) g.H.params;
        env.inlining <- callee :: env.inlining;
        List.iter (walk_stmt env) g.H.body;
        env.inlining <- List.tl env.inlining;
        env.vars <- saved_vars;
        env.in_loop <- saved_in_loop
    | Some _ | None -> add_reason env R_call

let default_intrinsics = [ "exp"; "sqrt"; "log"; "fabs"; "squash" ]

let analyse_fundef ?(intrinsics = default_intrinsics) (_p : H.program)
    (f : H.fundef) =
  let env =
    { vars = [];
      reasons = [];
      in_loop = 0;
      deepest_clean = 0;
      intrinsics;
      program = _p;
      inlining = [ f.H.name ] }
  in
  (* parameters holding addresses may alias if so attributed *)
  if List.mem H.May_alias f.H.attrs then add_reason env A_aliasing;
  List.iter (fun p -> set_var env p Param) f.H.params;
  List.iter (walk_stmt env) f.H.body;
  let total_depth = H.loop_depth f in
  let reasons =
    List.sort (fun a b -> compare (reason_rank a) (reason_rank b)) env.reasons
  in
  { modeled = reasons = [];
    reasons;
    modeled_depth = (if reasons = [] then total_depth else env.deepest_clean);
    total_depth }

let analyse_function ?intrinsics p name =
  match List.find_opt (fun (f : H.fundef) -> f.H.name = name) p.H.funs with
  | Some f -> analyse_fundef ?intrinsics p f
  | None -> invalid_arg ("Polly_lite.analyse_function: unknown " ^ name)

let reasons_string v =
  if v.modeled then "-"
  else String.concat "" (List.map reason_code v.reasons)

let pp_verdict fmt v =
  if v.modeled then
    Format.fprintf fmt "modeled (depth %d)" v.total_depth
  else
    Format.fprintf fmt "failed: %s (modeled %d of %d loop levels)"
      (reasons_string v) v.modeled_depth v.total_depth
