(** mini-nn: nearest-neighbour search over geographic records.  A single
    1-D loop over records whose coordinates are reached through a loaded
    record-pointer table (Polly reason F) and whose distance is computed
    by a library call (reason R); almost no affine structure or reuse —
    the paper's nn row. *)

open Vm.Hir.Dsl
module H =Vm.Hir

let n_records = 256
let rec_size = 3

(* stands in for the C library's strtof/atof-style record parsing *)
let parse_dist =
  H.fundef ~blacklisted:true "parse_distance" [ "ptr"; "lat"; "lng" ]
    [ H.Let ("a", load (v "ptr") -? v "lat");
      H.Let ("b", load (v "ptr" +! i 1) -? v "lng");
      H.Return (Some ((v "a" *? v "a") +? (v "b" *? v "b"))) ]

let kernel_body =
  [ H.Let ("best", f 1e30);
    H.Let ("besti", i 0);
    H.for_ ~loc:(Workload.loc "nn_openmp.c" 119) "r" (i 0) (i n_records)
      [ (* record order comes from the hurricane database index: an
           indirection (Polly reason F) *)
        H.Let ("off", "rec_idx".%[v "r"] *! i rec_size);
        H.Let ("lat0", "records".%[v "off"]);
        H.Let ("lng0", "records".%[v "off" +! i 1]);
        H.Let ("bias", v "lat0" *? v "lng0");
        H.CallS
          ( Some "d", "parse_distance",
            [ base "records" +! v "off"; f 30.0; f 50.0 ] );
        H.Let ("d", v "d" +? (f 0.0001 *? v "bias"));
        H.If (v "d" <? v "best", [ H.Let ("best", v "d"); H.Let ("besti", v "r") ], []) ];
    store "result" (i 0) (v "besti") ]

let main =
  H.fundef "main" []
    ([ (* cheap record fill: the analysed region must dominate *)
       H.for_ "t" (i 0) (i (n_records * rec_size))
         [ store "records" (v "t") (Itof (v "t" %! i 91) /? f 7.0) ];
       Workload.init_int_array "rec_idx" n_records
         (fun t -> ((t *! t) +! (t *! i 7)) %! i n_records)
     ]
    @ kernel_body)

let kernel_fn = H.fundef "nn_kernel" [] kernel_body

let hir : H.program =
  { H.funs = [ parse_dist; kernel_fn; main ];
    arrays =
      [ ("records", n_records * rec_size); ("rec_idx", n_records);
        ("result", 1) ];
    main = "main" }

let workload =
  Workload.make ~name:"nn" ~kernel:"nn_kernel" ~fusion:Sched.Fusion.Maxfuse
    ~paper:
      { Workload.p_aff = "1%";
        p_region = "nn_openmp.c:119";
        p_interproc = true;
        p_polly = "RF";
        p_skew = false;
        p_par = "100%";
        p_simd = "0%";
        p_reuse = "0%";
        p_preuse = "0%";
        p_ld_src = 1;
        p_ld_bin = 1;
        p_tiled = 1;
        p_tilops = "100%";
        p_c = "1";
        p_comp = "1";
        p_fusion = "M" }
    hir
