(** mini-hotspot: 2-D thermal simulation.  An in-place Gauss–Seidel-style
    sweep whose row/column update uses already-updated west/north
    neighbours, creating (1,-1)-shaped dependences — the wavefront that
    makes the paper mark hotspot as needing skewing (skew = Y).  Grid
    dimensions are loaded from memory (Polly reason B), and the many time
    steps make the per-step buffer parity non-affine to fold (the paper
    reports 0% affine). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let rows = 12
let cols = 12
let steps = 20

let kernel =
  H.fundef "compute_tran_temp" [ "src_off"; "dst_off" ]
    [ H.Let ("nr", "grid_dims".%[i 0]);
      H.Let ("nc", "grid_dims".%[i 1]);
      H.for_ ~loc:(Workload.loc "hotspot_openmp.cpp" 318) "r" (i 1) (v "nr" -! i 1)
        [ H.for_ ~loc:(Workload.loc "hotspot_openmp.cpp" 321) "c" (i 1) (v "nc" -! i 1)
            [ H.Let ("idx", (v "r" *! i cols) +! v "c");
              (* west and north read the destination buffer: updated this
                 sweep (the wavefront) *)
              H.Let ("west", "temp".%[(v "dst_off" +! v "idx") -! i 1]);
              H.Let ("north", "temp".%[(v "dst_off" +! v "idx") -! i cols]);
              H.Let ("east", "temp".%[(v "src_off" +! v "idx") +! i 1]);
              H.Let ("south", "temp".%[(v "src_off" +! v "idx") +! i cols]);
              H.Let ("center", "temp".%[v "src_off" +! v "idx"]);
              H.Let ("pwr", "power".%[v "idx"]);
              store "temp"
                (v "dst_off" +! v "idx")
                (v "center"
                +? (f 0.2
                   *? ((v "west" +? v "north") +? ((v "east" +? v "south") +? v "pwr")))
                ) ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "temp" (2 * rows * cols)
    @ Workload.init_float_array "power" (rows * cols)
    @ [ Workload.init_int_array "grid_dims" 2 (fun _ -> i rows);
        H.for_ ~loc:(Workload.loc "hotspot_openmp.cpp" 290) "t" (i 0) (i steps)
          [ (* buffer parity: src/dst offsets swap every step *)
            H.Let ("par", v "t" %! i 2);
            H.Let ("src", v "par" *! i (rows * cols));
            H.Let ("dst", (i 1 -! v "par") *! i (rows * cols));
            H.CallS (None, "compute_tran_temp", [ v "src"; v "dst" ]) ] ])

let hir : H.program =
  { H.funs = [ kernel; main ];
    arrays =
      [ ("temp", 2 * rows * cols); ("power", rows * cols); ("grid_dims", 2) ];
    main = "main" }

let workload =
  Workload.make ~name:"hotspot" ~kernel:"compute_tran_temp"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "0%";
        p_region = "*_openmp.cpp:318";
        p_interproc = true;
        p_polly = "B";
        p_skew = true;
        p_par = "100%";
        p_simd = "100%";
        p_reuse = "3%";
        p_preuse = "3%";
        p_ld_src = 4;
        p_ld_bin = 4;
        p_tiled = 2;
        p_tilops = "100%";
        p_c = "1";
        p_comp = "1";
        p_fusion = "S" }
    hir
