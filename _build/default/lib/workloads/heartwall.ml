(** mini-heartwall: ultrasound-image tracking.  A very deep nest (frames
    x points x templates x 2-D correlation x accumulation = 7-D source;
    the accumulation loop is unrolled away, 6-D binary) whose image
    indexing is hand-linearised with modulo expressions — the paper's
    explanation for the ~1% affine coverage ("no lattice support at
    folding time").  Polly reasons: R (AVI library call), C (break), B
    (loaded template count), F (modulo access). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let frames = 2
let points = 4
let templates = 2
let tdim = 4  (* template edge *)
let img = 8  (* image edge; img*img is the modulo period *)

let corr_kernel =
  H.fundef "corr_point" [ "frame"; "p" ]
    [ H.Let ("limit", "n_templates".%[i 0]);
      H.for_ ~loc:(Workload.loc "main.c" 540) "t" (i 0) (v "limit")
        [ H.If ("abort_flag".%[i 0] ==! i 1, [ H.Break ], []);
          H.for_ ~loc:(Workload.loc "main.c" 545) "dy" (i 0) (i tdim)
            [ H.for_ ~loc:(Workload.loc "main.c" 546) "dx" (i 0) (i tdim)
                [ (* hand-linearised modulo indexing: wraps, not affine *)
                  H.Let
                    ( "off",
                      (((v "p" *! i 23) +! (v "dy" *! i img)) +! v "dx"
                      +! (v "frame" *! i 31))
                      %! i (img * img) );
                  H.Let ("iv", "image".%[v "off"]);
                  H.Let
                    ( "tv",
                      "tmpl".%[(((v "t" *! i tdim) +! v "dy") *! i tdim) +! v "dx"] );
                  (* unrolled accumulation steps: vanish from the binary *)
                  H.for_ ~unroll:true "u" (i 0) (i 2)
                    [ H.Let
                        ( "woff",
                          ((v "off" *! i 3) +! v "u" +! (v "t" *! i 11))
                          %! i (img * img) );
                      store "conv" (v "woff") (v "iv" *? v "tv") ] ] ] ] ]

(* stands in for the AVI-library frame fetch (libc-like: reason R) *)
let avi_get_frame =
  H.fundef ~blacklisted:true "avi_get_frame" [ "frame" ]
    [ H.for_ "px" (i 0) (i 8)
        [ store "image" (v "px") ("video".%[v "px" +! (v "frame" *! i 8)]) ] ]

let region =
  H.fundef "heartwall_region" []
    [ H.for_ ~loc:(Workload.loc "main.c" 536) "frame" (i 0) (i frames)
        [ H.CallS (None, "avi_get_frame", [ v "frame" ]);
          H.for_ ~loc:(Workload.loc "main.c" 538) "py" (i 0) (i 2)
            [ H.for_ ~loc:(Workload.loc "main.c" 539) "px" (i 0) (i 2)
                [ H.CallS
                    (None, "corr_point", [ v "frame"; (v "py" *! i 2) +! v "px" ])
                ] ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "image" (img * img)
    @ Workload.init_float_array "tmpl" (templates * tdim * tdim)
    @ Workload.init_float_array "conv" (img * img)
    @ Workload.init_float_array "video" (frames * 8)
    @ [ Workload.init_int_array "n_templates" 1 (fun _ -> i templates);
        Workload.init_int_array "abort_flag" 1 (fun _ -> i 0);
        H.CallS (None, "heartwall_region", []) ])

let hir : H.program =
  { H.funs = [ corr_kernel; avi_get_frame; region; main ];
    arrays =
      [ ("image", img * img); ("tmpl", templates * tdim * tdim);
        ("conv", img * img); ("scores", frames * points); ("n_templates", 1);
        ("abort_flag", 1); ("video", frames * 8) ];
    main = "main" }

let workload =
  Workload.make ~name:"heartwall" ~kernel:"heartwall_region"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "1%";
        p_region = "main.c:536";
        p_interproc = true;
        p_polly = "RCBF";
        p_skew = false;
        p_par = "100%";
        p_simd = "100%";
        p_reuse = "0%";
        p_preuse = "0%";
        p_ld_src = 7;
        p_ld_bin = 6;
        p_tiled = 5;
        p_tilops = "100%";
        p_c = "1";
        p_comp = "3";
        p_fusion = "S" }
    hir
