(** The two pedagogical examples of paper Fig. 3.

    Example 1: a 2-D interprocedural nest — [M] calls [A], [A] runs loop
    [L1] whose body calls [B], and [B] runs loop [L2].  The dynamic IIV
    of a statement in [L2] must be 2-dimensional.

    Example 2: recursion — [M] calls [D] (which calls [C]) and then [B];
    [B] calls [C] and recursively calls itself.  The recursive component
    {B} becomes a 1-dimensional loop whose induction variable counts
    header calls/returns, keeping the representation depth independent of
    the recursion depth. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let trip = 3

let ex1 : H.program =
  { H.funs =
      [ H.fundef "B" [ "base_off" ]
          [ H.for_ "j" (i 0) (i trip)
              [ store "data" (v "base_off" +! v "j")
                  ("data".%[v "base_off" +! v "j"] +! i 1) ] ];
        H.fundef "A" []
          [ H.for_ "i" (i 0) (i trip)
              [ H.CallS (None, "B", [ v "i" *! i trip ]) ] ];
        H.fundef "main" [] [ H.CallS (None, "A", []) ] ];
    arrays = [ ("data", trip * trip) ];
    main = "main" }

let rec_depth = 3

let ex2 : H.program =
  { H.funs =
      [ H.fundef "C" [ "x" ]
          [ store "cnt" (i 0) ("cnt".%[i 0] +! v "x") ];
        H.fundef "B" [ "d" ]
          [ H.CallS (None, "C", [ v "d" ]);
            H.If
              ( v "d" <! i rec_depth,
                [ H.CallS (None, "B", [ v "d" +! i 1 ]) ],
                [] );
            (* executed as many times as there are recursive calls:
               part of the recursive loop (paper's B5 block) *)
            store "cnt" (i 1) ("cnt".%[i 1] +! i 1) ];
        H.fundef "D" [] [ H.CallS (None, "C", [ i 7 ]) ];
        H.fundef "main" []
          [ H.CallS (None, "D", []); H.CallS (None, "B", [ i 0 ]) ] ];
    arrays = [ ("cnt", 2) ];
    main = "main" }
