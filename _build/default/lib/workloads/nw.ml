(** mini-nw: Needleman–Wunsch sequence alignment.  A 2-D dynamic program
    reading west, north and north-west neighbours: no dimension is
    parallel, but the (i,j) band is fully permutable, so the suggested
    transformation skews to expose wavefront parallelism and tiles (the
    paper's skew = Y row).  The similarity matrix is reached through a
    loaded reference pointer (Polly reason F) and [maximum] is a library
    call (reason R).  Two triangular phases give 2 components. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n = 24

let maximum =
  H.fundef ~blacklisted:true "maximum" [ "a"; "b"; "c" ]
    [ H.Let ("m", v "a");
      H.If (v "b" >? v "m", [ H.Let ("m", v "b") ], []);
      H.If (v "c" >? v "m", [ H.Let ("m", v "c") ], []);
      H.Return (Some (v "m")) ]

let kernel =
  H.fundef "nw_dp" []
    [ (* the row stride comes from memory, so the linearised accesses
         multiply two values a static tool cannot bound (Polly reason F);
         at run time the stride is a constant and everything folds *)
      H.Let ("nc", "dims_nw".%[i 0]);
      (* phase 1: full upper square *)
      H.for_ ~loc:(Workload.loc "needle.cpp" 308) "ii" (i 1) (i n)
        [ H.for_ ~loc:(Workload.loc "needle.cpp" 310) "jj" (i 1) (i n)
            [ H.Let ("nw1", "score".%[((v "ii" -! i 1) *! v "nc") +! (v "jj" -! i 1)]);
              H.Let ("w1", "score".%[(v "ii" *! v "nc") +! (v "jj" -! i 1)]);
              H.Let ("n1", "score".%[((v "ii" -! i 1) *! v "nc") +! v "jj"]);
              H.Let ("rv", "reference".%[(v "ii" *! v "nc") +! v "jj"]);
              H.CallS
                ( Some "m", "maximum",
                  [ v "nw1" +? v "rv"; v "w1" -? f 1.0; v "n1" -? f 1.0 ] );
              store "score" ((v "ii" *! v "nc") +! v "jj") (v "m") ] ];
      (* phase 2: traceback preparation sweep (second component) *)
      H.for_ ~loc:(Workload.loc "needle.cpp" 345) "i2" (i 1) (i n)
        [ H.for_ "j2" (i 1) (i n)
            [ store "trace"
                ((v "i2" *! v "nc") +! v "j2")
                ("score".%[(v "i2" *! v "nc") +! v "j2"]
                -? "score".%[((v "i2" -! i 1) *! v "nc") +! (v "j2" -! i 1)]) ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "score" (n * n)
    @ Workload.init_float_array "reference" (n * n)
    @ Workload.init_float_array "trace" (n * n)
    @ [ Workload.init_int_array "dims_nw" 1 (fun _ -> i n);
        H.CallS (None, "nw_dp", []) ])

let hir : H.program =
  { H.funs = [ maximum; kernel; main ];
    arrays =
      [ ("score", n * n); ("reference", n * n); ("trace", n * n);
        ("dims_nw", 1) ];
    main = "main" }

let workload =
  Workload.make ~name:"nw" ~kernel:"nw_dp" ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "99%";
        p_region = "needle.cpp:308";
        p_interproc = true;
        p_polly = "RF";
        p_skew = true;
        p_par = "100%";
        p_simd = "100%";
        p_reuse = "77%";
        p_preuse = "77%";
        p_ld_src = 4;
        p_ld_bin = 4;
        p_tiled = 2;
        p_tilops = "100%";
        p_c = "2";
        p_comp = "2";
        p_fusion = "S" }
    hir
