(** mini-myocyte: cardiac myocyte ODE simulation.  A sequential time
    loop drives an embedded Runge–Kutta-style solver whose inner stage
    evaluates the equation system; a data-dependent error check exits
    the stage loop early (Polly reason C), the solver workspace is
    passed through may-alias pointers (A) and the adaptive attempt loop
    is a while (B).  The stage-combination loop is unrolled away, so
    the 4-D source shows up as 3-D in the binary. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n_eq = 10
let time_steps = 12
let max_attempts = 3

let solver =
  H.fundef ~attrs:[ H.May_alias ] "solver_step" [ "y"; "ynext"; "t" ]
    [ H.Let ("attempt", i 0);
      H.while_ ~loc:(Workload.loc "main.c" 290) (v "attempt" <! i max_attempts)
        [ H.Let ("err", f 0.0);
          H.for_ ~loc:(Workload.loc "main.c" 283) "eq" (i 0) (i (n_eq - 1))
            [ H.Let ("yv", load (v "y" +! v "eq"));
              H.Let ("nb", load (v "y" +! (v "eq" +! i 1)));
              (* two unrolled RK stage accumulations *)
              H.Let ("acc", f 0.0);
              H.for_ ~unroll:true "st" (i 0) (i 2)
                [ H.Let ("acc", v "acc" +? (f 0.5 *? (v "nb" -? v "yv"))) ];
              store "scratch" (v "eq") (v "yv" +? (f 0.01 *? v "acc"));
              H.Let ("err", v "err" +? (v "acc" *? v "acc")) ];
          H.If (v "err" <? f 0.4, [ H.Break ], []);
          H.Let ("attempt", v "attempt" +! i 1) ];
      H.for_ "cp" (i 0) (i n_eq)
        [ H.Store (v "ynext" +! v "cp", "scratch".%[v "cp"]) ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "y0" n_eq
    @ Workload.init_float_array "y1" n_eq
    @ Workload.init_float_array "scratch" n_eq
    @ [ H.for_ ~loc:(Workload.loc "main.c" 270) "t" (i 0) (i time_steps)
          [ H.Let ("par", v "t" %! i 2);
            H.If
              ( v "par" ==! i 0,
                [ H.CallS (None, "solver_step", [ base "y0"; base "y1"; v "t" ]) ],
                [ H.CallS (None, "solver_step", [ base "y1"; base "y0"; v "t" ]) ]
              ) ] ])

let hir : H.program =
  { H.funs = [ solver; main ];
    arrays = [ ("y0", n_eq); ("y1", n_eq); ("scratch", n_eq) ];
    main = "main" }

let workload =
  Workload.make ~name:"myocyte" ~kernel:"solver_step"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "89%";
        p_region = "main.c:283";
        p_interproc = true;
        p_polly = "CBA";
        p_skew = false;
        p_par = "100%";
        p_simd = "99%";
        p_reuse = "47%";
        p_preuse = "47%";
        p_ld_src = 4;
        p_ld_bin = 3;
        p_tiled = 1;
        p_tilops = "99%";
        p_c = "1";
        p_comp = "3";
        p_fusion = "S" }
    hir
