(** mini-lavaMD: particle interactions within a 3-D box grid.  Each box
    visits its neighbour boxes through a loaded neighbour list (Polly
    reasons B and F); particle positions are accessed through the loaded
    box offsets, so almost nothing is affine (the paper reports 0%). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n_boxes = 16
let max_nei = 3
let par_per_box = 6

let kernel_body =
  [ H.for_ ~loc:(Workload.loc "kernel_cpu.c" 123) "bx" (i 0) (i n_boxes)
      [ H.Let ("nn", "nei_count".%[v "bx"]);
        H.for_ ~loc:(Workload.loc "kernel_cpu.c" 131) "nb" (i 0) (v "nn")
          [ H.Let ("other", "nei_list".%[(v "bx" *! i max_nei) +! v "nb"]);
            H.Let ("ooff", "box_offset".%[v "other"]);
            H.Let ("boff", "box_offset".%[v "bx"]);
            H.for_ ~loc:(Workload.loc "kernel_cpu.c" 142) "pi" (i 0) (i par_per_box)
              [ H.for_ ~loc:(Workload.loc "kernel_cpu.c" 147) "pj" (i 0) (i par_per_box)
                  [ H.Let ("xi", "posx".%[v "boff" +! v "pi"]);
                    H.Let ("xj", "posx".%[v "ooff" +! v "pj"]);
                    H.Let ("d", v "xi" -? v "xj");
                    H.Let ("r2", v "d" *? v "d");
                    H.Let ("s", f 1.0 /? (v "r2" +? f 0.5));
                    store "force" (v "boff" +! v "pi")
                      ("force".%[v "boff" +! v "pi"] +? (v "s" *? v "d")) ] ] ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "posx" (n_boxes * par_per_box)
    @ Workload.init_float_array "force" (n_boxes * par_per_box)
    @ [ Workload.init_int_array "nei_count" n_boxes (fun _ -> i max_nei);
        (* scrambled neighbour ids: non-affine indirection like a real
           3-D box decomposition *)
        Workload.init_int_array "nei_list" (n_boxes * max_nei)
          (fun t -> ((t *! t) +! (t *! i 3)) %! i n_boxes);
        (* boxes are laid out consecutively, as in the original code *)
        Workload.init_int_array "box_offset" n_boxes
          (fun t -> t *! i par_per_box) ]
    @ kernel_body)

let kernel_fn = H.fundef "lavamd_kernel" [] kernel_body

let hir : H.program =
  { H.funs = [ kernel_fn; main ];
    arrays =
      [ ("posx", n_boxes * par_per_box); ("force", n_boxes * par_per_box);
        ("nei_count", n_boxes); ("nei_list", n_boxes * max_nei);
        ("box_offset", n_boxes) ];
    main = "main" }

let workload =
  Workload.make ~name:"lavaMD" ~kernel:"lavamd_kernel"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "0%";
        p_region = "kernel_cpu.c:123";
        p_interproc = false;
        p_polly = "BF";
        p_skew = false;
        p_par = "100%";
        p_simd = "100%";
        p_reuse = "0%";
        p_preuse = "0%";
        p_ld_src = 4;
        p_ld_bin = 4;
        p_tiled = 3;
        p_tilops = "100%";
        p_c = "1";
        p_comp = "2";
        p_fusion = "S" }
    hir
