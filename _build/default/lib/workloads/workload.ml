open Vm.Hir.Dsl
module H = Vm.Hir

type paper_row = {
  p_aff : string;
  p_region : string;
  p_interproc : bool;
  p_polly : string;
  p_skew : bool;
  p_par : string;
  p_simd : string;
  p_reuse : string;
  p_preuse : string;
  p_ld_src : int;
  p_ld_bin : int;
  p_tiled : int;
  p_tilops : string;
  p_c : string;
  p_comp : string;
  p_fusion : string;
}

type t = {
  w_name : string;
  hir : H.program;
  kernel_func : string;
  fusion : Sched.Fusion.strategy;
  expect_sched_failure : bool;
  paper : paper_row option;
}

let make ?(fusion = Sched.Fusion.Smartfuse) ?(expect_sched_failure = false)
    ?paper ~name ~kernel hir =
  { w_name = name;
    hir;
    kernel_func = kernel;
    fusion;
    expect_sched_failure;
    paper }

let loc file line = { Vm.Prog.file; line }

(* Deterministic "random-ish" float data: values derived from a small
   linear-congruential walk so loaded values never look affine in the
   loop counter. *)
let init_float_array name n =
  let t = name ^ "_t" in
  [ H.For
      { v = t;
        lo = i 0;
        hi = i n;
        step = 1;
        body =
          [ (* a quadratic residue walk: deterministic, non-affine values,
               but no loop-carried seed (the loop stays parallel) *)
            H.Let ("h", ((v t *! v t) +! (v t *! i 13)) %! i 211);
            H.Store (base name +! v t, Itof (v "h") /? f 53.0) ];
        floc = None;
        unroll = false } ]

let init_int_array name n f =
  H.For
    { v = name ^ "_t";
      lo = i 0;
      hi = i n;
      step = 1;
      body = [ H.Store (base name +! v (name ^ "_t"), f (v (name ^ "_t"))) ];
      floc = None;
      unroll = false }

(* Math helpers standing in for libm; blacklisted like libc in Fig. 7. *)
let libm =
  [ H.fundef ~blacklisted:true "squash" [ "x" ]
      [ H.Return (Some (v "x" /? (f 1.0 +? (v "x" *? v "x")))) ];
    H.fundef ~blacklisted:true "exp" [ "x" ]
      [ H.Return
          (Some
             (f 1.0 +? (v "x" *? (f 1.0 +? (v "x" *? (f 0.5 +? (v "x" *? f 0.1666))))))) ];
    H.fundef ~blacklisted:true "sqrt" [ "x" ]
      [ (* two Newton steps from a crude seed *)
        H.Let ("g", f 0.5 *? (v "x" +? f 1.0));
        H.Let ("g", f 0.5 *? (v "g" +? (v "x" /? v "g")));
        H.Let ("g", f 0.5 *? (v "g" +? (v "x" /? v "g")));
        H.Return (Some (v "g")) ];
    H.fundef ~blacklisted:true "rand" [ "s" ]
      [ H.Return (Some (((v "s" *! i 1103515245) +! i 12345) %! i 1048576)) ] ]

(* Interprocedural source loop depth, starting from [main]: a call site
   at nesting depth d contributes d + depth(callee).  Recursive cycles
   are cut (their depth is reported by the dynamic side instead). *)
let src_loop_depth (p : H.program) =
  let find name = List.find_opt (fun (f : H.fundef) -> f.H.name = name) p.H.funs in
  let rec fdepth stack (f : H.fundef) =
    if List.mem f.H.name stack then 0
    else sdepth (f.H.name :: stack) f.H.body

  and sdepth stack stmts =
    List.fold_left (fun acc s -> max acc (one stack s)) 0 stmts

  and one stack = function
    | H.For { body; _ } -> 1 + sdepth stack body
    | H.While { wbody; _ } -> 1 + sdepth stack wbody
    | H.If (_, a, b) -> max (sdepth stack a) (sdepth stack b)
    | H.CallS (_, callee, _) -> (
        match find callee with Some g -> fdepth stack g | None -> 0)
    | H.Let (_, e) | H.Return (Some e) -> edepth stack e
    | H.Store (a, b) -> max (edepth stack a) (edepth stack b)
    | H.Return None | H.Break -> 0

  and edepth stack = function
    | H.Callf (callee, args) ->
        let inner =
          match find callee with Some g -> fdepth stack g | None -> 0
        in
        List.fold_left (fun acc a -> max acc (edepth stack a)) inner args
    | H.Bin (_, a, b) | H.Fbin (_, a, b) | H.Cmp (_, a, b) | H.Fcmp (_, a, b) ->
        max (edepth stack a) (edepth stack b)
    | H.Load a | H.Itof a | H.Ftoi a -> edepth stack a
    | H.Int _ | H.Flt _ | H.Var _ | H.Base _ -> 0
  in
  match find p.H.main with Some f -> fdepth [] f | None -> 0
