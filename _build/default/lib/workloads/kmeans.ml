(** mini-kmeans: k-means clustering.  The 4-D hot nest (iterations x
    points x clusters x features) computes distances through a call to
    [euclid_dist_2] (Polly reason R), centroids are updated through the
    membership indirection (reason F), and the feature matrices are
    passed through may-alias pointers (reason A). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n_points = 48
let n_clusters = 3
let n_features = 4
let iterations = 2

let euclid =
  H.fundef ~attrs:[ H.May_alias ] "euclid_dist_2"
    [ "feat"; "clus"; "pt"; "cl" ]
    [ H.Let ("dist", f 0.0);
      H.for_ ~loc:(Workload.loc "kmeans_clustering.c" 168) "ff" (i 0) (i n_features)
        [ H.Let ("a", load (v "feat" +! ((v "pt" *! i n_features) +! v "ff")));
          H.Let ("b", load (v "clus" +! ((v "cl" *! i n_features) +! v "ff")));
          H.Let ("d", v "a" -? v "b");
          H.Let ("dist", v "dist" +? (v "d" *? v "d")) ];
      H.Return (Some (v "dist")) ]

let clustering =
  H.fundef ~attrs:[ H.May_alias ] "kmeans_clustering" []
    [ (* initial centers picked with the C library RNG (Polly reason R) *)
      H.for_ "ci0" (i 0) (i n_clusters)
        [ H.CallS (Some "rp", "rand", [ v "ci0" ]);
          H.for_ "cf0" (i 0) (i n_features)
            [ store "clusters"
                ((v "ci0" *! i n_features) +! v "cf0")
                "features".%[((v "rp" %! i n_points) *! i n_features) +! v "cf0"]
            ] ];
      H.for_ ~loc:(Workload.loc "kmeans_clustering.c" 160) "it" (i 0) (i iterations)
        [ (* assignment step *)
          H.for_ ~loc:(Workload.loc "kmeans_clustering.c" 164) "p" (i 0) (i n_points)
            [ H.Let ("best", f 1e30);
              H.Let ("bidx", i 0);
              H.for_ ~loc:(Workload.loc "kmeans_clustering.c" 166) "cl" (i 0) (i n_clusters)
                [ H.CallS
                    ( Some "dd", "euclid_dist_2",
                      [ base "features"; base "clusters"; v "p"; v "cl" ] );
                  H.If
                    ( v "dd" <? v "best",
                      [ H.Let ("best", v "dd"); H.Let ("bidx", v "cl") ],
                      [] ) ];
              store "membership" (v "p") (v "bidx") ];
          (* update step: centroid accumulation via membership *)
          H.for_ "z" (i 0) (i (n_clusters * n_features))
            [ store "new_centers" (v "z") (f 0.0) ];
          H.for_ "zc" (i 0) (i n_clusters) [ store "new_sizes" (v "zc") (i 0) ];
          H.for_ ~loc:(Workload.loc "kmeans_clustering.c" 190) "p2" (i 0) (i n_points)
            [ H.Let ("m", "membership".%[v "p2"]);
              store "new_sizes" (v "m") ("new_sizes".%[v "m"] +! i 1);
              H.for_ "f2" (i 0) (i n_features)
                [ H.Let ("acc_i", (v "m" *! i n_features) +! v "f2");
                  store "new_centers" (v "acc_i")
                    ("new_centers".%[v "acc_i"]
                    +? "features".%[(v "p2" *! i n_features) +! v "f2"]) ] ];
          H.for_ "c3" (i 0) (i n_clusters)
            [ H.for_ "f3" (i 0) (i n_features)
                [ H.Let ("ci", (v "c3" *! i n_features) +! v "f3");
                  store "clusters" (v "ci")
                    ("new_centers".%[v "ci"]
                    /? (Itof "new_sizes".%[v "c3"] +? f 0.0001)) ] ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "features" (n_points * n_features)
    @ Workload.init_float_array "clusters" (n_clusters * n_features)
    @ [ H.CallS (None, "kmeans_clustering", []) ])

let hir : H.program =
  { H.funs = Workload.libm @ [ euclid; clustering; main ];
    arrays =
      [ ("features", n_points * n_features);
        ("clusters", n_clusters * n_features);
        ("membership", n_points);
        ("new_centers", n_clusters * n_features);
        ("new_sizes", n_clusters) ];
    main = "main" }

let workload =
  Workload.make ~name:"kmeans" ~kernel:"kmeans_clustering"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "97%";
        p_region = "*_clustering.c:160";
        p_interproc = true;
        p_polly = "RFA";
        p_skew = false;
        p_par = "100%";
        p_simd = "100%";
        p_reuse = "46%";
        p_preuse = "53%";
        p_ld_src = 4;
        p_ld_bin = 4;
        p_tiled = 4;
        p_tilops = "100%";
        p_c = "1";
        p_comp = "3";
        p_fusion = "S" }
    hir
