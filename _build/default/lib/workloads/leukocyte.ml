(** mini-leukocyte: cell detection and tracking in video frames.  The
    busiest benchmark structurally: many distinct processing loops (the
    paper counts 11 components), a GICOV computation with library calls
    (R), an early-exit scan (C), sample counts loaded from memory (B),
    ellipse-point indirections (F), may-alias frame pointers (A) and a
    row pointer fetched inside the loop (P) — the full reason string
    RCBFAP. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n_cells = 6
let n_angles = 8
let n_samples = 5
let img_w = 16
let img_h = 12

let gicov =
  H.fundef ~attrs:[ H.May_alias ] "compute_gicov" [ "frame"; "cell" ]
    [ H.Let ("ns", "sample_count".%[i 0]);
      H.Let ("score", f 0.0);
      H.for_ ~loc:(Workload.loc "detect_main.c" 60) "ang" (i 0) (i n_angles)
        [ (* row pointer fetched per angle: reason P *)
          H.Let ("rowp", "row_ptrs".%[v "ang"]);
          H.Let ("acc", f 0.0);
          H.for_ ~loc:(Workload.loc "detect_main.c" 66) "sm" (i 0) (v "ns")
            [ H.Let ("off", "ellipse_x".%[(v "ang" *! i n_samples) +! v "sm"]);
              H.Let ("pix", load (v "rowp" +! v "off"));
              H.Let ("acc", v "acc" +? (v "pix" *? v "pix")) ];
          H.If (v "acc" >? f 1e6, [ H.Break ], []);
          H.CallS (Some "e", "exp", [ f 0.0 -? v "acc" ]);
          H.Let ("score", v "score" +? v "e") ];
      H.Store (base "gicov_scores" +! v "cell", v "score") ]

let dilate =
  H.fundef "dilate_matrix" []
    [ H.for_ ~loc:(Workload.loc "track_ellipse.c" 35) "dy" (i 0) (i img_h)
        [ H.for_ "dx" (i 0) (i img_w)
            [ H.Let ("di", (v "dy" *! i img_w) +! v "dx");
              store "dil" (v "di")
                ("img".%[v "di"] +? "img".%[(v "di" +! i 1) %! i (img_w * img_h)]) ] ] ]

let region =
  H.fundef "leukocyte_region" []
    [ H.for_ ~loc:(Workload.loc "detect_main.c" 51) "frame" (i 0) (i 2)
        [ H.CallS (None, "avi_frame", [ v "frame" ]);
          H.for_ ~loc:(Workload.loc "detect_main.c" 54) "cell" (i 0) (i n_cells)
            [ H.CallS (None, "compute_gicov", [ v "frame"; v "cell" ]) ];
          H.CallS (None, "dilate_matrix", []) ] ]

let avi_frame =
  H.fundef ~blacklisted:true "avi_frame" [ "frame" ]
    [ H.for_ "px" (i 0) (i 16)
        [ store "img" (v "px") ("stream".%[(v "frame" *! i 16) +! v "px"]) ] ]

(* the paper counts 11 components: several small pre/post-processing
   loops around the hot ones *)
let preprocess =
  Workload.init_float_array "img" (img_w * img_h)
  @ Workload.init_float_array "dil" (img_w * img_h)
  @ Workload.init_float_array "stream" 64
  @ [ Workload.init_int_array "ellipse_x" (n_angles * n_samples)
        (fun t -> ((t *! i 7) +! i 3) %! i img_w);
      Workload.init_int_array "row_ptrs" img_h
        (fun t -> base "img" +! (t *! i img_w));
      Workload.init_int_array "sample_count" 1 (fun _ -> i n_samples) ]
  @ Workload.init_float_array "gicov_scores" n_cells
  @ Workload.init_float_array "grad_x" (img_w * img_h)
  @ Workload.init_float_array "grad_y" (img_w * img_h)
  @ Workload.init_float_array "strel" 25

let main =
  H.fundef "main" []
    (preprocess @ [ H.CallS (None, "leukocyte_region", []) ])

let hir : H.program =
  { H.funs = Workload.libm @ [ gicov; dilate; avi_frame; region; main ];
    arrays =
      [ ("img", img_w * img_h); ("dil", img_w * img_h); ("stream", 64);
        ("ellipse_x", n_angles * n_samples); ("row_ptrs", img_h);
        ("sample_count", 1); ("gicov_scores", n_cells);
        ("grad_x", img_w * img_h); ("grad_y", img_w * img_h); ("strel", 25) ];
    main = "main" }

let workload =
  Workload.make ~name:"leukocyte" ~kernel:"leukocyte_region"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "39%";
        p_region = "detect_main.c:51";
        p_interproc = true;
        p_polly = "RCBFAP";
        p_skew = false;
        p_par = "100%";
        p_simd = "100%";
        p_reuse = "63%";
        p_preuse = "63%";
        p_ld_src = 4;
        p_ld_bin = 4;
        p_tiled = 3;
        p_tilops = "100%";
        p_c = "11";
        p_comp = "5";
        p_fusion = "S" }
    hir
