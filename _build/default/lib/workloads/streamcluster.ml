(** mini-streamcluster: online clustering of a point stream.  The most
    hostile benchmark: a long chain of phase loops over shuffled point
    subsets (the paper counts 52 components), gain evaluation with
    library calls (R), early exits (C), stream-chunk sizes read at run
    time (B), point tables reached through loaded center pointers (F and
    P) and may-alias buffers (A).  In the paper the polyhedral scheduler
    exhausted memory on it and no Table 5 row is shown; the harness
    reproduces the bail-out by budgeting the scheduling stage. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n_points = 24
let n_dims = 3
let n_phases = 26  (* each phase contributes two component loops *)

let dist_fn =
  H.fundef ~blacklisted:true "dist" [ "p1"; "p2" ]
    [ H.Let ("acc", f 0.0);
      H.for_ "dd" (i 0) (i n_dims)
        [ H.Let ("d1", load (v "p1" +! v "dd"));
          H.Let ("d2", load (v "p2" +! v "dd"));
          H.Let ("df", v "d1" -? v "d2");
          H.Let ("acc", v "acc" +? (v "df" *? v "df")) ];
      H.Return (Some (v "acc")) ]

(* one "pgain" phase: evaluate a candidate center, then reassign *)
let phase k =
  let sfx = string_of_int k in
  [ H.for_
      ~loc:(Workload.loc "streamcluster_omp.cpp" (1269 + k))
      ("p" ^ sfx) (i 0) (i n_points)
      [ H.Let ("chunk", "chunk_size".%[i 0]);
        H.Let ("pp", "point_ptrs".%[v ("p" ^ sfx) %! v "chunk"]);
        H.Let ("w0", load (v "pp"));
        H.CallS (Some "gd", "dist", [ v "pp"; base "center" ]);
        H.Let ("gd", v "gd" *? v "w0");
        H.If
          ( v "gd" <? "cost".%[v ("p" ^ sfx)],
            [ store "cost" (v ("p" ^ sfx)) (v "gd");
              store "assign" (v ("p" ^ sfx)) (i (k mod 7)) ],
            [] ) ];
    H.for_ ("q" ^ sfx) (i 0) (i n_points)
      [ H.If
          ( "assign".%[v ("q" ^ sfx)] ==! i (k mod 7),
            [ store "totals" (i (k mod 7))
                ("totals".%[i (k mod 7)] +? "cost".%[v ("q" ^ sfx)]);
              H.If ("totals".%[i (k mod 7)] >? f 1e8, [ H.Break ], []) ],
            [] ) ] ]

let kernel_body = List.concat_map phase (List.init n_phases (fun k -> k))

let region =
  H.fundef ~attrs:[ H.May_alias ] "pgain_region" []
    (H.while_ ~loc:(Workload.loc "streamcluster_omp.cpp" 1260)
       ("more_work".%[i 0] >! i 0)
       (kernel_body @ [ store "more_work" (i 0) ("more_work".%[i 0] -! i 1) ])
    :: [])

let main =
  H.fundef "main" []
    (Workload.init_float_array "points" (n_points * n_dims)
    @ Workload.init_float_array "center" n_dims
    @ Workload.init_float_array "cost" n_points
    @ [ Workload.init_int_array "assign" n_points (fun _ -> i 0);
        Workload.init_int_array "point_ptrs" n_points
          (fun t -> base "points" +! (((t *! t) +! t) %! i n_points *! i n_dims));
        Workload.init_int_array "chunk_size" 1 (fun _ -> i n_points);
        Workload.init_int_array "more_work" 1 (fun _ -> i 2) ]
    @ Workload.init_float_array "totals" 8
    @ [ H.CallS (None, "pgain_region", []) ])

let hir : H.program =
  { H.funs = [ dist_fn; region; main ];
    arrays =
      [ ("points", n_points * n_dims); ("center", n_dims); ("cost", n_points);
        ("assign", n_points); ("point_ptrs", n_points); ("chunk_size", 1);
        ("more_work", 1); ("totals", 8) ];
    main = "main" }

let workload =
  Workload.make ~name:"streamcluster" ~kernel:"pgain_region"
    ~expect_sched_failure:true ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "97%";
        p_region = "*_omp.cpp:1269";
        p_interproc = true;
        p_polly = "RCBFAP";
        p_skew = false;
        p_par = "-";
        p_simd = "-";
        p_reuse = "-";
        p_preuse = "-";
        p_ld_src = 6;
        p_ld_bin = 6;
        p_tiled = 0;
        p_tilops = "-";
        p_c = "52";
        p_comp =
"-";
        p_fusion = "-" }
    hir
