(** mini-b+tree: batched key lookups descending a B+ tree laid out in
    flat arrays.  Node fanout and child pointers are loaded (Polly
    reasons B and F); the workload is almost pure memory traffic with no
    floating point, and its setup phase contains many small loops (the
    paper reports 15 components fused to 4). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let order = 8  (* keys per node *)
let levels = 3
let n_nodes = 1 + order + (order * order)  (* simplistic complete tree *)
let n_queries = 48

let kernel_body =
  (* queries x levels x in-node scan (3-D) *)
  [ H.for_ ~loc:(Workload.loc "main.c" 2345) "q" (i 0) (i n_queries)
      [ H.Let ("key", "queries".%[v "q"]);
        H.Let ("node", i 0);
        H.for_ ~loc:(Workload.loc "main.c" 2350) "lvl" (i 0) (i levels)
          [ H.Let ("nk", "n_keys".%[v "node"]);
            H.Let ("child", i 0);
            H.for_ ~loc:(Workload.loc "main.c" 2354) "s" (i 0) (v "nk")
              [ H.If
                  ( "keys".%[(v "node" *! i order) +! v "s"] <=! v "key",
                    [ H.Let ("child", v "s" +! i 1) ],
                    [] ) ];
            H.Let ("node", "children".%[(v "node" *! i order) +! v "child"]) ];
        store "answers" (v "q") (v "node") ] ]

let setup =
  (* many small initialisation loops: the paper's 15 components *)
  [ Workload.init_int_array "n_keys" n_nodes (fun _ -> i order);
    Workload.init_int_array "keys" (n_nodes * order) (fun t -> (t *! i 7) %! i 4096);
    Workload.init_int_array "children" (n_nodes * order)
      (fun t -> (t +! i 1) %! i n_nodes);
    Workload.init_int_array "queries" n_queries (fun t -> (t *! i 131) %! i 4096);
    Workload.init_int_array "answers" n_queries (fun _ -> i 0);
    Workload.init_int_array "lock" n_nodes (fun _ -> i 0);
    Workload.init_int_array "height" n_nodes (fun _ -> i levels);
    Workload.init_int_array "parent" n_nodes (fun t -> t /! i order) ]

let main = H.fundef "main" [] (setup @ kernel_body)

let kernel_fn = H.fundef "btree_kernel" [] kernel_body

let hir : H.program =
  { H.funs = [ kernel_fn; main ];
    arrays =
      [ ("n_keys", n_nodes); ("keys", n_nodes * order);
        ("children", n_nodes * order); ("queries", n_queries);
        ("answers", n_queries); ("lock", n_nodes); ("height", n_nodes);
        ("parent", n_nodes) ];
    main = "main" }

let workload =
  Workload.make ~name:"b+tree" ~kernel:"btree_kernel"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "49%";
        p_region = "main.c:2345";
        p_interproc = false;
        p_polly = "BF";
        p_skew = false;
        p_par = "100%";
        p_simd = "100%";
        p_reuse = "44%";
        p_preuse = "44%";
        p_ld_src = 3;
        p_ld_bin = 3;
        p_tiled = 3;
        p_tilops = "100%";
        p_c = "15";
        p_comp = "4";
        p_fusion = "S" }
    hir
