(** mini-hotspot3D: 3-D thermal simulation, Jacobi style (separate input
    and output grids, so every spatial dimension is parallel — no skewing
    needed, unlike 2-D hotspot).  Grid extents are loaded (Polly reason
    B) and the ambient-temperature contribution goes through a per-layer
    indirection table (reason F). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n = 8
let layers = 4
let steps = 2
let sz = layers * n * n

let idx z y x = ((z *! i (n * n)) +! (y *! i n)) +! x

let kernel =
  H.fundef "hotspot_opt1" []
    [ H.Let ("nz", "dims3".%[i 0]);
      H.Let ("ny", "dims3".%[i 1]);
      H.Let ("nx", "dims3".%[i 2]);
      H.for_ ~loc:(Workload.loc "3D.c" 261) "t" (i 0) (i steps)
      [ H.for_ ~loc:(Workload.loc "3D.c" 262) "z" (i 1) (v "nz" -! i 1)
        [ H.for_ ~loc:(Workload.loc "3D.c" 264) "y" (i 1) (v "ny" -! i 1)
            [ H.for_ ~loc:(Workload.loc "3D.c" 267) "x" (i 1) (v "nx" -! i 1)
                [ H.Let ("amb_idx", "layer_map".%[v "z"]);
                  H.Let ("amb", "amb_temp".%[v "amb_idx"]);
                  H.Let ("c0", "tin".%[idx (v "z") (v "y") (v "x")]);
                  H.Let ("w", "tin".%[idx (v "z") (v "y") (v "x" -! i 1)]);
                  H.Let ("e", "tin".%[idx (v "z") (v "y") (v "x" +! i 1)]);
                  H.Let ("no", "tin".%[idx (v "z") (v "y" -! i 1) (v "x")]);
                  H.Let ("so", "tin".%[idx (v "z") (v "y" +! i 1) (v "x")]);
                  H.Let ("up", "tin".%[idx (v "z" -! i 1) (v "y") (v "x")]);
                  H.Let ("dn", "tin".%[idx (v "z" +! i 1) (v "y") (v "x")]);
                  store "tout"
                    (idx (v "z") (v "y") (v "x"))
                    (v "c0"
                    +? (f 0.1
                       *? ((v "w" +? v "e")
                          +? ((v "no" +? v "so") +? ((v "up" +? v "dn") +? v "amb"))))
                    ) ] ] ];
        (* copy back *)
        H.for_ "cz" (i 0) (v "nz")
          [ H.for_ "cy" (i 0) (v "ny")
              [ H.for_ "cx" (i 0) (v "nx")
                  [ store "tin"
                      (idx (v "cz") (v "cy") (v "cx"))
                      ("tout".%[idx (v "cz") (v "cy") (v "cx")]) ] ] ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "tin" sz
    @ Workload.init_float_array "tout" sz
    @ Workload.init_float_array "amb_temp" layers
    @ [ Workload.init_int_array "layer_map" layers (fun t -> t);
        Workload.init_int_array "dims3" 3 (fun _ -> i n);
        store "dims3" (i 0) (i layers);
        H.CallS (None, "hotspot_opt1", []) ])

let hir : H.program =
  { H.funs = [ kernel; main ];
    arrays =
      [ ("tin", sz + (2 * n * n)); ("tout", sz + (2 * n * n));
        ("amb_temp", layers); ("layer_map", layers); ("dims3", 3) ];
    main = "main" }

let workload =
  Workload.make ~name:"hotspot3D" ~kernel:"hotspot_opt1"
    ~fusion:Sched.Fusion.Maxfuse
    ~paper:
      { Workload.p_aff = "99%";
        p_region = "3D.c:261";
        p_interproc = false;
        p_polly = "BF";
        p_skew = false;
        p_par = "100%";
        p_simd = "99%";
        p_reuse = "11%";
        p_preuse = "11%";
        p_ld_src = 4;
        p_ld_bin = 4;
        p_tiled = 3;
        p_tilops = "100%";
        p_c = "1";
        p_comp = "1";
        p_fusion = "M" }
    hir
