(** Workload descriptor: a benchmark program written in HIR together with
    the metadata the benchmark harness needs to reproduce the paper's
    tables (selected region, fusion heuristic, the kernel function the
    static Polly baseline analyses, and the paper's reference values for
    shape comparison). *)

type paper_row = {
  p_aff : string;  (** %Aff as printed in the paper's Table 5 *)
  p_region : string;
  p_interproc : bool;
  p_polly : string;  (** failure-reason codes, e.g. "RCBF" *)
  p_skew : bool;
  p_par : string;
  p_simd : string;
  p_reuse : string;
  p_preuse : string;
  p_ld_src : int;
  p_ld_bin : int;
  p_tiled : int;
  p_tilops : string;
  p_c : string;
  p_comp : string;
  p_fusion : string;
}

type t = {
  w_name : string;
  hir : Vm.Hir.program;
  kernel_func : string;  (** function the Polly baseline analyses *)
  fusion : Sched.Fusion.strategy;
  expect_sched_failure : bool;  (** streamcluster: scheduler bail-out *)
  paper : paper_row option;  (** Table 5 reference, when applicable *)
}

val make :
  ?fusion:Sched.Fusion.strategy ->
  ?expect_sched_failure:bool ->
  ?paper:paper_row ->
  name:string ->
  kernel:string ->
  Vm.Hir.program ->
  t

val loc : string -> int -> Vm.Prog.loc

val src_loop_depth : Vm.Hir.program -> int
(** Interprocedural source loop depth reachable from [main] (a call at
    nesting depth d contributes d + depth of the callee); recursive
    cycles are cut.  This is the "ld-src" column of Table 5. *)

(** Common HIR fragments. *)

val init_float_array : string -> int -> Vm.Hir.stmt list
(** A loop storing deterministic pseudo-random floats into an array. *)

val init_int_array : string -> int -> (Vm.Hir.expr -> Vm.Hir.expr) -> Vm.Hir.stmt
(** [init_int_array a n f]: [for t in 0..n: a[t] = f t]. *)

val libm : Vm.Hir.fundef list
(** Tiny blacklisted math helpers ([exp], [sqrt], [squash], [rand]) that
    stand in for libc/libm calls. *)
