(** mini-particlefilter: a sequential Monte-Carlo tracker.  Each frame
    runs a chain of small per-particle loops — likelihood, weight
    update, normalisation, a sequential cumulative sum, and a resampling
    scan with an inner early-exit search (Polly reason C) through index
    arrays (reason F).  The paper counts 22 components collapsing to 2;
    the mini has a smaller but similarly-shaped phase chain. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n_particles = 32
let n_frames = 3

let kernel_body =
  [ H.for_ ~loc:(Workload.loc "ex_particle_seq.c" 593) "fr" (i 0) (i n_frames)
      [ (* phase 1: motion + likelihood *)
        H.for_ ~loc:(Workload.loc "ex_particle_seq.c" 600) "p" (i 0) (i n_particles)
          [ H.Let ("x", "arrayX".%[v "p"]);
            store "arrayX" (v "p") (v "x" +? f 1.0);
            H.Let ("lh", (v "x" *? v "x") /? f 50.0);
            store "likelihood" (v "p") (v "lh") ];
        (* phase 2: weights *)
        H.for_ "p2" (i 0) (i n_particles)
          [ store "weights" (v "p2")
              ("weights".%[v "p2"] *? "likelihood".%[v "p2"]) ];
        (* phase 3: sum of weights (sequential reduction) *)
        H.Let ("sumw", f 0.0);
        H.for_ "p3" (i 0) (i n_particles)
          [ H.Let ("sumw", v "sumw" +? "weights".%[v "p3"]) ];
        (* phase 4: normalise *)
        H.for_ "p4" (i 0) (i n_particles)
          [ store "weights" (v "p4") ("weights".%[v "p4"] /? (v "sumw" +? f 0.001)) ];
        (* phase 5: cumulative distribution (loop-carried scan) *)
        store "cdf" (i 0) ("weights".%[i 0]);
        H.for_ "p5" (i 1) (i n_particles)
          [ store "cdf" (v "p5") ("cdf".%[v "p5" -! i 1] +? "weights".%[v "p5"]) ];
        (* phase 6: resampling with early-exit search *)
        H.for_ "p6" (i 0) (i n_particles)
          [ H.Let ("u", Itof (v "p6") /? f 32.0);
            H.Let ("picked", i 0);
            H.for_ "s" (i 0) (i n_particles)
              [ H.If
                  ( "cdf".%[v "s"] >? v "u",
                    [ H.Let ("picked", v "s"); H.Break ],
                    [] ) ];
            store "indices" (v "p6") (v "picked") ];
        (* phase 7: gather through the index array *)
        H.for_ "p7" (i 0) (i n_particles)
          [ store "arrayX" (v "p7") ("arrayX".%["indices".%[v "p7"]]);
            store "weights" (v "p7") (f 1.0 /? f 32.0) ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "arrayX" n_particles
    @ Workload.init_float_array "weights" n_particles
    @ Workload.init_float_array "likelihood" n_particles
    @ Workload.init_float_array "cdf" n_particles
    @ [ Workload.init_int_array "indices" n_particles (fun _ -> i 0) ]
    @ kernel_body)

let kernel_fn = H.fundef "particlefilter_kernel" [] kernel_body

let hir : H.program =
  { H.funs = [ kernel_fn; main ];
    arrays =
      [ ("arrayX", n_particles); ("weights", n_particles);
        ("likelihood", n_particles); ("cdf", n_particles);
        ("indices", n_particles) ];
    main = "main" }

let workload =
  Workload.make ~name:"particlefilter" ~kernel:"particlefilter_kernel"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "27%";
        p_region = "*_seq.c:593";
        p_interproc = false;
        p_polly = "CF";
        p_skew = false;
        p_par = "99%";
        p_simd = "100%";
        p_reuse = "55%";
        p_preuse = "55%";
        p_ld_src = 3;
        p_ld_bin = 3;
        p_tiled = 2;
        p_tilops = "100%";
        p_c = "22";
        p_comp = "2";
        p_fusion = "S" }
    hir
