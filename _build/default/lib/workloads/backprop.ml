(** mini-backprop: the paper's running example (Fig. 6, case study I,
    Table 3).  Supervised neural-network training with two
    [bpnn_layerforward] and two [bpnn_adjust_weights] 2-D kernels called
    from a training loop ([facetrain.c:25]).  The weight matrices are
    traversed column-major w.r.t. the loop order, so the profitable
    transformation is an interchange (+ SIMD) — Table 3's feedback. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n_in = 32
let n_hid = 16
let n_out = 8
let epochs = 2

(* weight matrix (n1+1) x (n2+1), element [k][j] at k*(n2+1)+j *)
let sz_in_hid = (n_in + 1) * (n_hid + 1)
let sz_hid_out = (n_hid + 1) * (n_out + 1)

let layerforward =
  (* bpnn_layerforward(l1, l2, conn, n1, n2): Fig. 6 *)
  H.fundef ~attrs:[ H.May_alias ] "bpnn_layerforward"
    [ "l1"; "l2"; "conn"; "n1"; "n2" ]
    [ H.Store (v "l1", f 1.0);
      H.for_ ~loc:(Workload.loc "backprop.c" 253) "j" (i 1) (v "n2" +! i 1)
        [ H.Let ("sum", f 0.0);
          H.for_ ~loc:(Workload.loc "backprop.c" 254) "k" (i 0) (v "n1" +! i 1)
            [ H.Let ("tmp2", load (v "conn" +! ((v "k" *! (v "n2" +! i 1)) +! v "j")));
              H.Let ("tmp3", load (v "l1" +! v "k"));
              H.Let ("sum", v "sum" +? (v "tmp2" *? v "tmp3")) ];
          H.CallS (Some "sq", "squash", [ v "sum" ]);
          H.Store (v "l2" +! v "j", v "sq") ] ]

let output_error =
  H.fundef "bpnn_output_error" [ "delta"; "target"; "output"; "nj" ]
    [ H.for_ ~loc:(Workload.loc "backprop.c" 274) "j" (i 1) (v "nj" +! i 1)
        [ H.Let ("o", load (v "output" +! v "j"));
          H.Let ("t", load (v "target" +! v "j"));
          H.Store
            ( v "delta" +! v "j",
              v "o" *? ((f 1.0 -? v "o") *? (v "t" -? v "o")) ) ] ]

let hidden_error =
  H.fundef ~attrs:[ H.May_alias ] "bpnn_hidden_error"
    [ "delta_h"; "nh"; "delta_o"; "no"; "who"; "hidden" ]
    [ H.for_ ~loc:(Workload.loc "backprop.c" 289) "j" (i 1) (v "nh" +! i 1)
        [ H.Let ("h", load (v "hidden" +! v "j"));
          H.Let ("sum", f 0.0);
          H.for_ ~loc:(Workload.loc "backprop.c" 292) "k" (i 1) (v "no" +! i 1)
            [ H.Let ("d", load (v "delta_o" +! v "k"));
              H.Let ("w", load (v "who" +! ((v "j" *! (v "no" +! i 1)) +! v "k")));
              H.Let ("sum", v "sum" +? (v "d" *? v "w")) ];
          H.Store (v "delta_h" +! v "j", v "h" *? ((f 1.0 -? v "h") *? v "sum")) ] ]

let adjust_weights =
  (* bpnn_adjust_weights(delta, ndelta, ly, nly, w, oldw) *)
  H.fundef ~attrs:[ H.May_alias ] "bpnn_adjust_weights"
    [ "delta"; "ndelta"; "ly"; "nly"; "w"; "oldw" ]
    [ H.for_ ~loc:(Workload.loc "backprop.c" 320) "j" (i 1) (v "ndelta" +! i 1)
        [ H.for_ ~loc:(Workload.loc "backprop.c" 322) "k" (i 0) (v "nly" +! i 1)
            [ H.Let ("idx", (v "k" *! (v "ndelta" +! i 1)) +! v "j");
              H.Let ("dv", load (v "delta" +! v "j"));
              H.Let ("lv", load (v "ly" +! v "k"));
              H.Let ("ow", load (v "oldw" +! v "idx"));
              H.Let ("newdw", (f 0.3 *? (v "dv" *? v "lv")) +? (f 0.3 *? v "ow"));
              H.Store (v "w" +! v "idx", load (v "w" +! v "idx") +? v "newdw");
              H.Store (v "oldw" +! v "idx", v "newdw") ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "input_units" (n_in + 1)
    @ Workload.init_float_array "target" (n_out + 1)
    @ Workload.init_float_array "input_weights" sz_in_hid
    @ Workload.init_float_array "hidden_weights" sz_hid_out
    @ Workload.init_float_array "input_prev" sz_in_hid
    @ Workload.init_float_array "hidden_prev" sz_hid_out
    @ [ H.for_ ~loc:(Workload.loc "facetrain.c" 25) "epoch" (i 0) (i epochs)
          [ H.CallS
              ( None, "bpnn_layerforward",
                [ base "input_units"; base "hidden_units"; base "input_weights";
                  i n_in; i n_hid ] );
            H.CallS
              ( None, "bpnn_layerforward",
                [ base "hidden_units"; base "output_units"; base "hidden_weights";
                  i n_hid; i n_out ] );
            H.CallS
              ( None, "bpnn_output_error",
                [ base "output_delta"; base "target"; base "output_units"; i n_out ] );
            H.CallS
              ( None, "bpnn_hidden_error",
                [ base "hidden_delta"; i n_hid; base "output_delta"; i n_out;
                  base "hidden_weights"; base "hidden_units" ] );
            H.CallS
              ( None, "bpnn_adjust_weights",
                [ base "output_delta"; i n_out; base "hidden_units"; i n_hid;
                  base "hidden_weights"; base "hidden_prev" ] );
            H.CallS
              ( None, "bpnn_adjust_weights",
                [ base "hidden_delta"; i n_hid; base "input_units"; i n_in;
                  base "input_weights"; base "input_prev" ] ) ] ])

let hir : H.program =
  { H.funs = Workload.libm @ [ layerforward; output_error; hidden_error; adjust_weights; main ];
    arrays =
      [ ("input_units", n_in + 1);
        ("hidden_units", n_hid + 1);
        ("output_units", n_out + 1);
        ("target", n_out + 1);
        ("hidden_delta", n_hid + 1);
        ("output_delta", n_out + 1);
        ("input_weights", sz_in_hid);
        ("hidden_weights", sz_hid_out);
        ("input_prev", sz_in_hid);
        ("hidden_prev", sz_hid_out) ];
    main = "main" }

let workload =
  Workload.make ~name:"backprop" ~kernel:"bpnn_adjust_weights"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "85%";
        p_region = "facetrain.c:25";
        p_interproc = true;
        p_polly = "A";
        p_skew = false;
        p_par = "100%";
        p_simd = "100%";
        p_reuse = "50%";
        p_preuse = "100%";
        p_ld_src = 2;
        p_ld_bin = 2;
        p_tiled = 2;
        p_tilops = "100%";
        p_c = "6";
        p_comp = "4";
        p_fusion = "S" }
    hir
