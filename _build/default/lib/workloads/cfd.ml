(** mini-cfd: unstructured-grid Euler solver (compute_flux-like).  Each
    cell accumulates fluxes from its 4 neighbours found through an
    indirection table (Polly reason F).  The innermost neighbour loop has
    a constant trip count and is fully unrolled at lowering, so the
    source has a 5-deep nest while the binary only has 4 (ld-src 5D,
    ld-bin 4D). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n_cells = 96
let nnb = 4
let n_vars = 3
let iterations = 2

let flux_kernel =
  H.fundef "compute_flux" []
    [ H.for_ ~loc:(Workload.loc "euler3d_cpu.cpp" 480) "blk" (i 0) (i 2)
        [ H.for_ ~loc:(Workload.loc "euler3d_cpu.cpp" 484) "cell" (v "blk" *! i (n_cells / 2))
            ((v "blk" +! i 1) *! i (n_cells / 2))
            [ (* unrolled at compile time: vanishes from the binary *)
              H.for_ ~loc:(Workload.loc "euler3d_cpu.cpp" 492) ~unroll:true "j" (i 0) (i nnb)
                [ H.Let ("nb", "neighbors".%[(v "cell" *! i nnb) +! v "j"]);
                  H.for_ ~loc:(Workload.loc "euler3d_cpu.cpp" 497) "k" (i 0) (i n_vars)
                    [ H.Let ("fl", "fluxes".%[(v "cell" *! i n_vars) +! v "k"]);
                      H.Let ("nv", "variables".%[(v "nb" *! i n_vars) +! v "k"]);
                      H.Let ("cv", "variables".%[(v "cell" *! i n_vars) +! v "k"]);
                      store "fluxes"
                        ((v "cell" *! i n_vars) +! v "k")
                        (v "fl" +? (f 0.25 *? (v "nv" -? v "cv"))) ] ] ] ] ]

let time_step =
  H.fundef "time_step" []
    [ H.for_ ~loc:(Workload.loc "euler3d_cpu.cpp" 510) "c" (i 0) (i n_cells)
        [ H.for_ "k" (i 0) (i n_vars)
            [ H.Let ("idx", (v "c" *! i n_vars) +! v "k");
              store "variables" (v "idx")
                ("variables".%[v "idx"] +? (f 0.1 *? "fluxes".%[v "idx"])) ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "variables" (n_cells * n_vars)
    @ Workload.init_float_array "fluxes" (n_cells * n_vars)
    @ [ (* a structured mesh: neighbours at +-1 and +-row, clamped.  The
           table is an indirection for the compiler (reason F), but the
           traced addresses are (piecewise) affine, so the dynamic
           analysis still folds the region exactly (the paper reports 98%
           affine for cfd despite Polly's F). *)
        H.for_ "c" (i 0) (i n_cells)
          [ store "neighbors" (v "c" *! i nnb) ((v "c" +! i 1) %! i n_cells);
            store "neighbors"
              ((v "c" *! i nnb) +! i 1)
              ((v "c" +! i (n_cells - 1)) %! i n_cells);
            store "neighbors"
              ((v "c" *! i nnb) +! i 2)
              ((v "c" +! i 8) %! i n_cells);
            store "neighbors"
              ((v "c" *! i nnb) +! i 3)
              ((v "c" +! i (n_cells - 8)) %! i n_cells) ];
        H.for_ ~loc:(Workload.loc "euler3d_cpu.cpp" 600) "iter" (i 0) (i iterations)
          [ H.CallS (None, "compute_flux", []);
            H.CallS (None, "time_step", []) ] ])

let hir : H.program =
  { H.funs = [ flux_kernel; time_step; main ];
    arrays =
      [ ("variables", n_cells * n_vars); ("fluxes", n_cells * n_vars);
        ("neighbors", n_cells * nnb) ];
    main = "main" }

let workload =
  Workload.make ~name:"cfd" ~kernel:"compute_flux"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "98%";
        p_region = "*3d_cpu.cpp:480";
        p_interproc = true;
        p_polly = "F";
        p_skew = false;
        p_par = "100%";
        p_simd = "61%";
        p_reuse = "18%";
        p_preuse = "42%";
        p_ld_src = 5;
        p_ld_bin = 4;
        p_tiled = 3;
        p_tilops = "100%";
        p_c = "1";
        p_comp = "3";
        p_fusion = "S" }
    hir
