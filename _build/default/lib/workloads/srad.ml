(** mini-srad (v1 and v2): speckle-reducing anisotropic diffusion on an
    image.  Iterations over a 2-D grid, neighbours found through
    precomputed index arrays iN/iS/jE/jW (Polly reason F) and the
    diffusion coefficient computed by a library routine (reason R).  v1
    splits the work across more helper functions than v2; both share the
    structure. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let rows = 12
let cols = 12
let iters = 3

(* stands in for the libm expf the coefficient uses *)
let expf =
  H.fundef ~blacklisted:true "expf" [ "x" ]
    [ H.Return (Some (f 1.0 +? (v "x" *? (f 1.0 +? (v "x" *? f 0.5))))) ]

let diffusion variant main_line =
  H.fundef
    (Printf.sprintf "srad_%s_kernel" variant)
    []
    [ H.for_ ~loc:main_line "it" (i 0) (i iters)
        [ (* derivative + coefficient pass *)
          H.for_ "r" (i 0) (i rows)
            [ H.for_ "c" (i 0) (i cols)
                [ H.Let ("k", (v "r" *! i cols) +! v "c");
                  H.Let ("jc", "img".%[v "k"]);
                  H.Let ("dn", "img".%[("iN".%[v "r"] *! i cols) +! v "c"] -? v "jc");
                  H.Let ("ds", "img".%[("iS".%[v "r"] *! i cols) +! v "c"] -? v "jc");
                  H.Let ("dw", "img".%[(v "r" *! i cols) +! "jW".%[v "c"]] -? v "jc");
                  H.Let ("de", "img".%[(v "r" *! i cols) +! "jE".%[v "c"]] -? v "jc");
                  H.Let
                    ( "g2",
                      ((v "dn" *? v "dn") +? (v "ds" *? v "ds"))
                      +? ((v "dw" *? v "dw") +? (v "de" *? v "de")) );
                  H.CallS (Some "cf", "expf", [ f 0.0 -? v "g2" ]);
                  store "coef" (v "k") (v "cf");
                  store "dN" (v "k") (v "dn");
                  store "dS" (v "k") (v "ds");
                  store "dW" (v "k") (v "dw");
                  store "dE" (v "k") (v "de") ] ];
          (* update pass *)
          H.for_ "r2" (i 0) (i rows)
            [ H.for_ "c2" (i 0) (i cols)
                [ H.Let ("k2", (v "r2" *! i cols) +! v "c2");
                  H.Let ("cN", "coef".%[v "k2"]);
                  H.Let ("cS", "coef".%[("iS".%[v "r2"] *! i cols) +! v "c2"]);
                  H.Let ("cE", "coef".%[(v "r2" *! i cols) +! "jE".%[v "c2"]]);
                  H.Let
                    ( "d",
                      ((v "cN" *? "dN".%[v "k2"]) +? (v "cS" *? "dS".%[v "k2"]))
                      +? ((v "cE" *? "dE".%[v "k2"]) +? (v "cN" *? "dW".%[v "k2"])) );
                  store "img" (v "k2") ("img".%[v "k2"] +? (f 0.05 *? v "d")) ] ] ] ]

let mk variant main_file main_ln fusion paper =
  let kern = diffusion variant (Workload.loc main_file main_ln) in
  let main =
    H.fundef "main" []
      (Workload.init_float_array "img" (rows * cols)
      @ [ Workload.init_int_array "iN" rows (fun t -> t -! i 1);
          Workload.init_int_array "iS" rows (fun t -> t +! i 1);
          Workload.init_int_array "jW" cols (fun t -> t -! i 1);
          Workload.init_int_array "jE" cols (fun t -> t +! i 1);
          (* clamp boundaries *)
          store "iN" (i 0) (i 0);
          store "iS" (i (rows - 1)) (i (rows - 1));
          store "jW" (i 0) (i 0);
          store "jE" (i (cols - 1)) (i (cols - 1));
          H.CallS (None, Printf.sprintf "srad_%s_kernel" variant, []) ])
  in
  let hir : H.program =
    { H.funs = [ expf; kern; main ];
      arrays =
        [ ("img", rows * cols); ("coef", rows * cols); ("dN", rows * cols);
          ("dS", rows * cols); ("dW", rows * cols); ("dE", rows * cols);
          ("iN", rows); ("iS", rows); ("jW", cols); ("jE", cols) ];
      main = "main" }
  in
  Workload.make
    ~name:(Printf.sprintf "srad_%s" variant)
    ~kernel:(Printf.sprintf "srad_%s_kernel" variant)
    ~fusion ~paper hir

let v1 =
  mk "v1" "main.c" 241 Sched.Fusion.Smartfuse
    { Workload.p_aff = "99%";
      p_region = "main.c:241";
      p_interproc = true;
      p_polly = "RF";
      p_skew = false;
      p_par = "99%";
      p_simd = "100%";
      p_reuse = "18%";
      p_preuse = "18%";
      p_ld_src = 3;
      p_ld_bin = 3;
      p_tiled = 2;
      p_tilops = "100%";
      p_c = "1";
      p_comp = "1";
      p_fusion = "S" }

let v2 =
  mk "v2" "srad.cpp" 114 Sched.Fusion.Smartfuse
    { Workload.p_aff = "98%";
      p_region = "srad.cpp:114";
      p_interproc = true;
      p_polly = "RF";
      p_skew = false;
      p_par = "100%";
      p_simd = "100%";
      p_reuse = "14%";
      p_preuse = "14%";
      p_ld_src = 3;
      p_ld_bin = 3;
      p_tiled = 2;
      p_tilops = "100%";
      p_c = "1";
      p_comp = "1";
      p_fusion = "S" }
