(** mini-pathfinder: grid dynamic programming.  Each row's result reads
    the previous row at columns j-1, j, j+1 — the (1,-1) dependence that
    requires skewing before the (t,j) band can be tiled (the paper's
    skew = Y).  The source and destination row pointers are loaded and
    swapped every step (Polly reason P) and the column count is loaded
    (reason B). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let cols = 24
let steps = 12

let kernel_body =
  [ H.Let ("srcp", "rowptr".%[i 0]);
    H.Let ("dstp", "rowptr".%[i 1]);
    H.for_ ~loc:(Workload.loc "pathfinder.cpp" 99) "t" (i 0) (i steps)
      [ (* classic double-buffer pointer swap: the base pointers are not
           loop invariant (Polly reason P) *)
        H.Let ("tmpp", v "srcp");
        H.Let ("srcp", v "dstp");
        H.Let ("dstp", v "tmpp");
        H.Let ("nc", "ncols".%[i 0]);
        H.for_ ~loc:(Workload.loc "pathfinder.cpp" 105) "j" (i 1) (v "nc" -! i 1)
          [ H.Let ("left", load (v "srcp" +! (v "j" -! i 1)));
            H.Let ("mid", load (v "srcp" +! v "j"));
            H.Let ("right", load (v "srcp" +! (v "j" +! i 1)));
            H.Let ("m", v "mid");
            H.If (v "left" <? v "m", [ H.Let ("m", v "left") ], []);
            H.If (v "right" <? v "m", [ H.Let ("m", v "right") ], []);
            H.Store
              ( v "dstp" +! v "j",
                v "m" +? "wall".%[(v "t" *! i cols) +! v "j"] ) ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "row0" cols
    @ Workload.init_float_array "row1" cols
    @ Workload.init_float_array "wall" (cols * steps)
    @ [ Workload.init_int_array "ncols" 1 (fun _ -> i cols);
        store "rowptr" (i 0) (base "row0");
        store "rowptr" (i 1) (base "row1") ]
    @ kernel_body)

let kernel_fn = H.fundef "pathfinder_kernel" [] kernel_body

let hir : H.program =
  { H.funs = [ kernel_fn; main ];
    arrays =
      [ ("row0", cols); ("row1", cols); ("wall", cols * steps); ("ncols", 1);
        ("rowptr", 2) ];
    main = "main" }

let workload =
  Workload.make ~name:"pathfinder" ~kernel:"pathfinder_kernel"
    ~fusion:Sched.Fusion.Maxfuse
    ~paper:
      { Workload.p_aff = "67%";
        p_region = "pathfinder.cpp:99";
        p_interproc = false;
        p_polly = "BP";
        p_skew = true;
        p_par = "100%";
        p_simd = "0%";
        p_reuse = "0%";
        p_preuse = "40%";
        p_ld_src = 2;
        p_ld_bin = 2;
        p_tiled = 2;
        p_tilops = "100%";
        p_c = "1";
        p_comp = "1";
        p_fusion = "M" }
    hir
