lib/workloads/lavamd.ml: Sched Vm Workload
