lib/workloads/heartwall.ml: Sched Vm Workload
