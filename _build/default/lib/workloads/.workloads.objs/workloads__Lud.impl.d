lib/workloads/lud.ml: Sched Vm Workload
