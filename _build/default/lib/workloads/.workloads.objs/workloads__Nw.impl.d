lib/workloads/nw.ml: Sched Vm Workload
