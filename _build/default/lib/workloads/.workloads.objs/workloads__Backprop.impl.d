lib/workloads/backprop.ml: Sched Vm Workload
