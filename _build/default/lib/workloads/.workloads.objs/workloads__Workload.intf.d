lib/workloads/workload.mli: Sched Vm
