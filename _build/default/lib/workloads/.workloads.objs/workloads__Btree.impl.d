lib/workloads/btree.ml: Sched Vm Workload
