lib/workloads/rodinia.ml: Backprop Bfs Btree Cfd Heartwall Hotspot Hotspot3d Kmeans Lavamd Leukocyte List Lud Myocyte Nn Nw Particlefilter Pathfinder Srad Streamcluster Workload
