lib/workloads/hotspot3d.ml: Sched Vm Workload
