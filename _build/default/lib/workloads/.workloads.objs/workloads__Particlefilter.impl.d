lib/workloads/particlefilter.ml: Sched Vm Workload
