lib/workloads/runner.mli: Polyprof Sched Staticbase Workload
