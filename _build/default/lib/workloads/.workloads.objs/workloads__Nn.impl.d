lib/workloads/nn.ml: Sched Vm Workload
