lib/workloads/streamcluster.ml: List Sched Vm Workload
