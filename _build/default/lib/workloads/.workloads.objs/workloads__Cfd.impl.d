lib/workloads/cfd.ml: Sched Vm Workload
