lib/workloads/runner.ml: Cfg Ddg List Polyprof Printf Report Rodinia Sched Staticbase Vm Workload
