lib/workloads/hotspot.ml: Sched Vm Workload
