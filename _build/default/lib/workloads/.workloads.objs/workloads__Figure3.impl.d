lib/workloads/figure3.ml: Vm
