lib/workloads/leukocyte.ml: Sched Vm Workload
