lib/workloads/kmeans.ml: Sched Vm Workload
