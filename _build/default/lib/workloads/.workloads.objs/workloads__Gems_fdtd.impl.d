lib/workloads/gems_fdtd.ml: Sched Vm Workload
