lib/workloads/bfs.ml: Sched Vm Workload
