lib/workloads/srad.ml: Printf Sched Vm Workload
