lib/workloads/workload.ml: List Sched Vm
