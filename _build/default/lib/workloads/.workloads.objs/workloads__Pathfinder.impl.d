lib/workloads/pathfinder.ml: Sched Vm Workload
