lib/workloads/myocyte.ml: Sched Vm Workload
