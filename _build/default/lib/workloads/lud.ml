(** mini-lud: blocked LU decomposition.  Three kernels per block step —
    diagonal factorisation, perimeter update, internal update (the
    paper's 3 components) — over a matrix whose dimension is loaded at
    run time, so every linearised access [a[i*n+j]] multiplies two
    non-constants (Polly reasons B and F).  The hand-linearised offsets
    use modulo wrap-arounds that defeat exact folding (the paper reports
    4% affine). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let dim = 16
let bs = 4  (* block size *)
let blocks = dim / bs

(* the modulus is smaller than the matrix, so the hand-linearised reads
   genuinely wrap around (the paper: "hand linearized nested loops whose
   bounds use modulo expressions ... not recognized as fully affine") *)
let idx_wrapped r c = ((r *! i dim) +! c) %! i 199

let diag =
  H.fundef "lud_diagonal" [ "off" ]
    [ H.Let ("n", "mat_dim".%[i 0]);
      H.for_ ~loc:(Workload.loc "lud.c" 121) "k" (i 0) (i bs)
        [ H.for_ ~loc:(Workload.loc "lud.c" 124) "r" (v "k" +! i 1) (i bs)
            [ H.Let ("piv", "a".%[idx_wrapped (v "off" +! v "k") ((v "off" +! v "k") *! i 0 +! v "off" +! v "k")]);
              H.Let ("cur", "a".%[idx_wrapped (v "off" +! v "r") (v "off" +! v "k")]);
              H.Let ("fac", v "cur" /? (v "piv" +? f 0.001));
              store "a" (((v "off" +! v "r") *! v "n") +! (v "off" +! v "k")) (v "fac");
              H.for_ ~loc:(Workload.loc "lud.c" 126) "c" (v "k" +! i 1) (i bs)
                [ H.Let ("up", "a".%[idx_wrapped (v "off" +! v "k") (v "off" +! v "c")]);
                  H.Let ("lo2", "a".%[idx_wrapped (v "off" +! v "r") (v "off" +! v "c")]);
                  store "a"
                    (((v "off" +! v "r") *! v "n") +! (v "off" +! v "c"))
                    (v "lo2" -? (v "fac" *? v "up")) ] ] ] ]

let perimeter =
  H.fundef "lud_perimeter" [ "off" ]
    [ H.Let ("n", "mat_dim".%[i 0]);
      H.for_ ~loc:(Workload.loc "lud.c" 150) "b" (v "off" /! i bs +! i 1) (i blocks)
        [ H.for_ "k2" (i 0) (i bs)
            [ H.for_ "c2" (i 0) (i bs)
                [ H.Let ("v1", "a".%[idx_wrapped (v "off" +! v "k2") ((v "b" *! i bs) +! v "c2")]);
                  store "a"
                    (((v "off" +! v "k2") *! v "n") +! ((v "b" *! i bs) +! v "c2"))
                    (v "v1" *? f 0.99) ] ] ] ]

let internal =
  H.fundef "lud_internal" [ "off" ]
    [ H.Let ("n", "mat_dim".%[i 0]);
      H.for_ ~loc:(Workload.loc "lud.c" 180) "bi" (v "off" /! i bs +! i 1) (i blocks)
        [ H.for_ "bj" (v "off" /! i bs +! i 1) (i blocks)
            [ H.for_ "r3" (i 0) (i bs)
                [ H.for_ "c3" (i 0) (i bs)
                    [ H.Let ("sum", f 0.0);
                      H.for_ "k3" (i 0) (i bs)
                        [ H.Let ("l", "a".%[idx_wrapped ((v "bi" *! i bs) +! v "r3") (v "off" +! v "k3")]);
                          H.Let ("u", "a".%[idx_wrapped (v "off" +! v "k3") ((v "bj" *! i bs) +! v "c3")]);
                          H.Let ("sum", v "sum" +? (v "l" *? v "u")) ];
                      H.Let
                        ( "self",
                          "a".%[idx_wrapped ((v "bi" *! i bs) +! v "r3") ((v "bj" *! i bs) +! v "c3")] );
                      store "a"
                        ((((v "bi" *! i bs) +! v "r3") *! v "n")
                        +! ((v "bj" *! i bs) +! v "c3"))
                        (v "self" -? v "sum") ] ] ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "a" (dim * dim)
    @ [ Workload.init_int_array "mat_dim" 1 (fun _ -> i dim);
        H.for_ ~loc:(Workload.loc "lud.c" 110) "blk" (i 0) (i blocks)
          [ H.Let ("off", v "blk" *! i bs);
            H.CallS (None, "lud_diagonal", [ v "off" ]);
            H.If
              ( v "blk" <! i (blocks - 1),
                [ H.CallS (None, "lud_perimeter", [ v "off" ]);
                  H.CallS (None, "lud_internal", [ v "off" ]) ],
                [] ) ] ])

let hir : H.program =
  { H.funs = [ diag; perimeter; internal; main ];
    arrays = [ ("a", dim * dim); ("mat_dim", 1) ];
    main = "main" }

let workload =
  Workload.make ~name:"lud" ~kernel:"lud_internal"
    ~fusion:Sched.Fusion.Smartfuse
    ~paper:
      { Workload.p_aff = "4%";
        p_region = "lud.c:121";
        p_interproc = true;
        p_polly = "BF";
        p_skew = false;
        p_par = "99%";
        p_simd = "98%";
        p_reuse = "0%";
        p_preuse = "1%";
        p_ld_src = 5;
        p_ld_bin = 5;
        p_tiled = 3;
        p_tilops = "99%";
        p_c = "3";
        p_comp = "3";
        p_fusion = "S" }
    hir
