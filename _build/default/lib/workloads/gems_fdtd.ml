(** mini-GemsFDTD (paper case study II, Table 4): a finite-difference
    time-domain method with two 3-D stencil update kernels
    ([updateH_homo] / [updateE_homo]-like), each fully parallel and 3-D
    tilable; the suggested transformation is tiling all dimensions plus
    parallelising the outermost loop. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n = 10  (* grid edge *)
let steps = 2
let sz = n * n * n

let idx x y z = ((x *! i (n * n)) +! (y *! i n)) +! z

let update_h =
  H.fundef "updateH_homo" []
    [ H.for_ ~loc:(Workload.loc "update.F90" 106) "x" (i 0) (i (n - 1))
        [ H.for_ ~loc:(Workload.loc "update.F90" 107) "y" (i 0) (i (n - 1))
            [ H.for_ ~loc:(Workload.loc "update.F90" 121) "z" (i 0) (i (n - 1))
                [ H.Let ("e0", "e_field".%[idx (v "x") (v "y") (v "z")]);
                  H.Let ("ez", "e_field".%[idx (v "x") (v "y") (v "z" +! i 1)]);
                  H.Let ("ey", "e_field".%[idx (v "x") (v "y" +! i 1) (v "z")]);
                  H.Let ("ex", "e_field".%[idx (v "x" +! i 1) (v "y") (v "z")]);
                  H.Let ("h", "h_field".%[idx (v "x") (v "y") (v "z")]);
                  store "h_field"
                    (idx (v "x") (v "y") (v "z"))
                    (v "h"
                    +? (f 0.5
                       *? ((v "ez" -? v "e0") +? ((v "ey" -? v "e0") +? (v "ex" -? v "e0"))))
                    ) ] ] ] ]

let update_e =
  H.fundef "updateE_homo" []
    [ H.for_ ~loc:(Workload.loc "update.F90" 240) "x" (i 1) (i n)
        [ H.for_ ~loc:(Workload.loc "update.F90" 241) "y" (i 1) (i n)
            [ H.for_ ~loc:(Workload.loc "update.F90" 244) "z" (i 1) (i n)
                [ H.Let ("h0", "h_field".%[idx (v "x") (v "y") (v "z")]);
                  H.Let ("hz", "h_field".%[idx (v "x") (v "y") (v "z" -! i 1)]);
                  H.Let ("hy", "h_field".%[idx (v "x") (v "y" -! i 1) (v "z")]);
                  H.Let ("hx", "h_field".%[idx (v "x" -! i 1) (v "y") (v "z")]);
                  H.Let ("e", "e_field".%[idx (v "x") (v "y") (v "z")]);
                  store "e_field"
                    (idx (v "x") (v "y") (v "z"))
                    (v "e"
                    +? (f 0.5
                       *? ((v "h0" -? v "hz") +? ((v "h0" -? v "hy") +? (v "h0" -? v "hx"))))
                    ) ] ] ] ]

let main =
  H.fundef "main" []
    (Workload.init_float_array "e_field" sz
    @ Workload.init_float_array "h_field" sz
    @ [ H.for_ ~loc:(Workload.loc "GemsFDTD.F90" 50) "t" (i 0) (i steps)
          [ H.CallS (None, "updateH_homo", []);
            H.CallS (None, "updateE_homo", []) ] ])

let hir : H.program =
  { H.funs = Workload.libm @ [ update_h; update_e; main ];
    arrays = [ ("e_field", sz + (2 * n * n)); ("h_field", sz + (2 * n * n)) ];
    main = "main" }

let workload =
  Workload.make ~name:"gems_fdtd" ~kernel:"updateH_homo"
    ~fusion:Sched.Fusion.Smartfuse hir
