(** mini-bfs: level-synchronous breadth-first search over a CSR graph.
    Loop bounds come from loaded vertex degrees (Polly reason B) and edge
    targets are loaded indirections (reason F); accesses are data-driven,
    so spatial reuse is poor — the paper's bfs row. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let n_nodes = 85  (* 1 + 4 + 16 + 64: a complete 4-ary tree *)
let degree = 4
let n_edges = n_nodes * degree
let max_levels = 4
let scramble = 27  (* coprime with 85: (t * 27) mod 85 permutes node ids *)

let kernel_body =
  [ (* frontier sweep: levels x nodes x edges (3-D) *)
    H.for_ ~loc:(Workload.loc "bfs.cpp" 137) "lvl" (i 0) (i max_levels)
      [ H.for_ ~loc:(Workload.loc "bfs.cpp" 140) "tid" (i 0) (i n_nodes)
          [ H.If
              ( "mask".%[v "tid"] ==! i 1,
                [ store "mask" (v "tid") (i 0);
                  H.Let ("estart", "edge_start".%[v "tid"]);
                  H.Let ("ecount", "edge_count".%[v "tid"]);
                  H.for_ ~loc:(Workload.loc "bfs.cpp" 146) "k" (v "estart")
                    (v "estart" +! v "ecount")
                    [ H.Let ("id", "edges".%[v "k"]);
                      H.If
                        ( "visited".%[v "id"] ==! i 0,
                          [ store "cost" (v "id") (v "lvl" +! i 1);
                            store "visited" (v "id") (i 1);
                            store "newmask" (v "id") (i 1) ],
                          [] ) ] ],
                [] ) ];
        H.for_ ~loc:(Workload.loc "bfs.cpp" 160) "tid2" (i 0) (i n_nodes)
          [ H.If
              ( "newmask".%[v "tid2"] ==! i 1,
                [ store "mask" (v "tid2") (i 1); store "newmask" (v "tid2") (i 0) ],
                [] ) ] ] ]

let main =
  H.fundef "main" []
    ([ (* a complete 4-ary tree whose node ids are scrambled by a
          multiplicative permutation: every node has a unique parent (no
          two frontier nodes fight over a child within one level) but the
          id mapping is far from affine, like a real irregular graph *)
       H.for_ "t" (i 0) (i n_nodes)
         [ H.Let ("id", (v "t" *! i scramble) %! i n_nodes);
           store "edge_start" (v "id") (v "id" *! i degree);
           H.Let ("cnt", i 0);
           H.for_ "j" (i 0) (i degree)
             [ H.Let ("cp", ((v "t" *! i degree) +! v "j") +! i 1);
               H.If
                 ( v "cp" <! i n_nodes,
                   [ store "edges"
                       ((v "id" *! i degree) +! v "j")
                       ((v "cp" *! i scramble) %! i n_nodes);
                     H.Let ("cnt", v "cnt" +! i 1) ],
                   [] ) ];
           store "edge_count" (v "id") (v "cnt") ];
       Workload.init_int_array "visited" n_nodes (fun _ -> i 0);
       Workload.init_int_array "mask" n_nodes (fun _ -> i 0);
       Workload.init_int_array "newmask" n_nodes (fun _ -> i 0);
       Workload.init_int_array "cost" n_nodes (fun _ -> i 0);
       store "mask" (i 0) (i 1);
       store "visited" (i 0) (i 1) ]
    @ kernel_body)

let hir : H.program =
  { H.funs = [ main ];
    arrays =
      [ ("edge_start", n_nodes); ("edge_count", n_nodes); ("edges", n_edges);
        ("visited", n_nodes); ("mask", n_nodes); ("newmask", n_nodes);
        ("cost", n_nodes) ];
    main = "main" }

(* The Polly baseline looks at an outlined copy of the kernel, like the
   paper inlines kernels for Polly to see the same region. *)
let kernel_fn = H.fundef "bfs_kernel" [] kernel_body

let hir_with_kernel = { hir with H.funs = kernel_fn :: hir.H.funs }

let workload =
  Workload.make ~name:"bfs" ~kernel:"bfs_kernel" ~fusion:Sched.Fusion.Maxfuse
    ~paper:
      { Workload.p_aff = "21%";
        p_region = "bfs.cpp:137";
        p_interproc = false;
        p_polly = "BF";
        p_skew = false;
        p_par = "100%";
        p_simd = "100%";
        p_reuse = "1%";
        p_preuse = "1%";
        p_ld_src = 3;
        p_ld_bin = 3;
        p_tiled = 2;
        p_tilops = "100%";
        p_c = "1";
        p_comp = "1";
        p_fusion = "M" }
    hir_with_kernel
