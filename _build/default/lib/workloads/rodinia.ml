(** The mini-Rodinia 3.1 registry: all 19 CPU benchmarks of the paper's
    Table 5, in the paper's row order. *)

let all : Workload.t list =
  [ Backprop.workload;
    Bfs.workload;
    Btree.workload;
    Cfd.workload;
    Heartwall.workload;
    Hotspot.workload;
    Hotspot3d.workload;
    Kmeans.workload;
    Lavamd.workload;
    Leukocyte.workload;
    Lud.workload;
    Myocyte.workload;
    Nn.workload;
    Nw.workload;
    Particlefilter.workload;
    Pathfinder.workload;
    Srad.v1;
    Srad.v2;
    Streamcluster.workload ]

let find name =
  match List.find_opt (fun (w : Workload.t) -> w.w_name = name) all with
  | Some w -> w
  | None -> invalid_arg ("Rodinia.find: unknown benchmark " ^ name)

let names = List.map (fun (w : Workload.t) -> w.w_name) all
