(* Iterative Tarjan to avoid stack overflow on long chains. *)

let compute g =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let visit root =
    if not (Hashtbl.mem index root) then begin
      (* explicit DFS stack: (node, remaining successors) *)
      let work = ref [ (root, ref (Digraph.succs g root)) ] in
      Hashtbl.add index root !next_index;
      Hashtbl.add lowlink root !next_index;
      incr next_index;
      stack := root :: !stack;
      Hashtbl.add on_stack root ();
      while !work <> [] do
        match !work with
        | [] -> ()
        | (n, succs) :: rest -> (
            match !succs with
            | s :: more ->
                succs := more;
                if not (Hashtbl.mem index s) then begin
                  Hashtbl.add index s !next_index;
                  Hashtbl.add lowlink s !next_index;
                  incr next_index;
                  stack := s :: !stack;
                  Hashtbl.add on_stack s ();
                  work := (s, ref (Digraph.succs g s)) :: !work
                end
                else if Hashtbl.mem on_stack s then
                  Hashtbl.replace lowlink n
                    (min (Hashtbl.find lowlink n) (Hashtbl.find index s))
            | [] ->
                work := rest;
                (match rest with
                | (p, _) :: _ ->
                    Hashtbl.replace lowlink p
                      (min (Hashtbl.find lowlink p) (Hashtbl.find lowlink n))
                | [] -> ());
                if Hashtbl.find lowlink n = Hashtbl.find index n then begin
                  (* pop the component *)
                  let comp = ref [] in
                  let continue_pop = ref true in
                  while !continue_pop do
                    match !stack with
                    | [] -> continue_pop := false
                    | x :: tl ->
                        stack := tl;
                        Hashtbl.remove on_stack x;
                        comp := x :: !comp;
                        if x = n then continue_pop := false
                  done;
                  sccs := !comp :: !sccs
                end)
      done
    end
  in
  List.iter visit (Digraph.nodes g);
  List.rev !sccs

let has_cycle g = function
  | [] -> false
  | [ n ] -> Digraph.mem_edge g n n
  | _ -> true
