(** "Instrumentation I" (paper Fig. 1): build the dynamic per-function
    CFGs and the dynamic call graph from the raw control-event stream,
    then derive the loop-nesting forests and the recursive-component-set.

    Only the executed part of the program is recorded — the advantage
    §3 highlights for large programs with a small hot part. *)

type structure = {
  cfgs : (int * Loopnest.t * Digraph.t) list;
      (** per executed function: fid, loop forest, dynamic CFG *)
  cg : Digraph.t;
  recset : Recset.t;
  call_sites : (int * int * int) list;  (** caller fid, site bid, callee fid *)
}

type t

val create : Vm.Prog.t -> t
val callbacks : t -> Vm.Interp.callbacks
val finalize : t -> structure

val run : ?max_steps:int -> ?args:int list -> Vm.Prog.t -> structure
(** Convenience: execute the program once under Instrumentation I. *)

val forest_of : structure -> int -> Loopnest.t option
val pp_structure : Format.formatter -> structure -> unit
