module Iset = Set.Make (Int)

type t = {
  mutable node_set : Iset.t;
  succ : (int, Iset.t) Hashtbl.t;
  pred : (int, Iset.t) Hashtbl.t;
}

let create () = { node_set = Iset.empty; succ = Hashtbl.create 16; pred = Hashtbl.create 16 }
let add_node t n = t.node_set <- Iset.add n t.node_set

let adj tbl n = match Hashtbl.find_opt tbl n with Some s -> s | None -> Iset.empty

let add_edge t a b =
  add_node t a;
  add_node t b;
  Hashtbl.replace t.succ a (Iset.add b (adj t.succ a));
  Hashtbl.replace t.pred b (Iset.add a (adj t.pred b))

let mem_node t n = Iset.mem n t.node_set
let mem_edge t a b = Iset.mem b (adj t.succ a)
let nodes t = Iset.elements t.node_set
let succs t n = Iset.elements (adj t.succ n)
let preds t n = Iset.elements (adj t.pred n)
let n_nodes t = Iset.cardinal t.node_set

let edges t =
  List.concat_map (fun a -> List.map (fun b -> (a, b)) (succs t a)) (nodes t)

let n_edges t = List.length (edges t)

let copy t =
  let c = create () in
  c.node_set <- t.node_set;
  Hashtbl.iter (fun k v -> Hashtbl.replace c.succ k v) t.succ;
  Hashtbl.iter (fun k v -> Hashtbl.replace c.pred k v) t.pred;
  c

let subgraph t keep =
  let keep_set = Iset.of_list keep in
  let g = create () in
  Iset.iter (fun n -> if Iset.mem n t.node_set then add_node g n) keep_set;
  List.iter
    (fun (a, b) ->
      if Iset.mem a keep_set && Iset.mem b keep_set then add_edge g a b)
    (edges t);
  g

let remove_edge t a b =
  Hashtbl.replace t.succ a (Iset.remove b (adj t.succ a));
  Hashtbl.replace t.pred b (Iset.remove a (adj t.pred b))

let reverse_postorder t ~root =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      List.iter dfs (succs t n);
      order := n :: !order
    end
  in
  if mem_node t root then dfs root;
  !order

let pp fmt t =
  List.iter
    (fun n ->
      Format.fprintf fmt "%d -> [%s]@\n" n
        (String.concat "; " (List.map string_of_int (succs t n))))
    (nodes t)
