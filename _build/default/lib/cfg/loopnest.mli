(** Loop-nesting forest of a control-flow graph, following the recursive
    characterisation of Ramalingam used by POLY-PROF (§3.1):

    1. each SCC of the CFG containing a cycle is the region of an
       outermost loop;
    2. one entry node of the loop is designated its header;
    3. edges inside the loop targeting the header are back-edges;
    4. removing the back-edges recursively defines the sub-loops. *)

type loop = {
  loop_id : int;
  header : int;
  members : int list;  (** all nodes of the loop region, sorted *)
  back_edges : (int * int) list;  (** (source, header) *)
  mutable children : loop list;
  depth : int;  (** outermost = 1 *)
  parent_id : int option;
}

type t

val compute : Digraph.t -> entry:int -> t
(** Header designation is deterministic: among the entry nodes of an SCC
    (targets of edges from outside the SCC; or all nodes for an
    unreachable SCC), the one appearing first in reverse postorder from
    [entry] is chosen. *)

val toplevel : t -> loop list
val all_loops : t -> loop list
val n_loops : t -> int
val loop_of_header : t -> int -> loop option
val is_header : t -> int -> bool
val innermost_containing : t -> int -> loop option
val loop_contains : loop -> int -> bool
val max_depth : t -> int
val parent : t -> loop -> loop option

val loops_containing : t -> int -> loop list
(** Outermost first. *)

val pp : Format.formatter -> t -> unit
