module Iset = Set.Make (Int)

type component = {
  comp_id : int;
  members : int list;
  entries : int list;
  headers : int list;
}

type t = {
  components : component list;
  by_member : (int, component) Hashtbl.t;
  entry_set : Iset.t;
  header_set : Iset.t;
}

let compute g ~main =
  let rpo = Digraph.reverse_postorder g ~root:main in
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace rpo_index n i) rpo;
  let rank n = match Hashtbl.find_opt rpo_index n with Some i -> i | None -> max_int in
  let best_by_rank = function
    | [] -> invalid_arg "Recset: empty candidate set"
    | c :: cs ->
        List.fold_left
          (fun best n ->
            if rank n < rank best || (rank n = rank best && n < best) then n else best)
          c cs
  in
  let sccs = Scc.compute g in
  let next_id = ref 0 in
  let components =
    List.filter_map
      (fun comp ->
        if not (Scc.has_cycle g comp) then None
        else begin
          let comp_set = Iset.of_list comp in
          let entries =
            List.filter
              (fun n ->
                n = main
                || List.exists
                     (fun p -> not (Iset.mem p comp_set))
                     (Digraph.preds g n))
              comp
          in
          let entries = if entries = [] then [ best_by_rank comp ] else entries in
          (* peel headers until the component is acyclic *)
          let region = Digraph.subgraph g comp in
          let headers = ref [] in
          let rec peel () =
            let cyclic =
              List.filter (fun c -> Scc.has_cycle region c) (Scc.compute region)
            in
            match cyclic with
            | [] -> ()
            | sub :: _ ->
                let sub_set = Iset.of_list sub in
                (* entries of this sub-SCC within the region, falling back
                   to the component entries that are in the sub-SCC *)
                let sub_entries =
                  List.filter
                    (fun n ->
                      List.exists
                        (fun p -> not (Iset.mem p sub_set))
                        (Digraph.preds region n)
                      || List.mem n entries)
                    sub
                in
                let cands = if sub_entries = [] then sub else sub_entries in
                let h = best_by_rank cands in
                headers := h :: !headers;
                List.iter
                  (fun p -> if Iset.mem p sub_set then Digraph.remove_edge region p h)
                  (Digraph.preds region h);
                peel ()
          in
          peel ();
          let id = !next_id in
          incr next_id;
          Some
            { comp_id = id;
              members = List.sort compare comp;
              entries = List.sort compare entries;
              headers = List.rev !headers }
        end)
      sccs
  in
  let by_member = Hashtbl.create 16 in
  let entry_set = ref Iset.empty in
  let header_set = ref Iset.empty in
  List.iter
    (fun c ->
      List.iter (fun m -> Hashtbl.replace by_member m c) c.members;
      List.iter (fun e -> entry_set := Iset.add e !entry_set) c.entries;
      List.iter (fun h -> header_set := Iset.add h !header_set) c.headers)
    components;
  { components; by_member; entry_set = !entry_set; header_set = !header_set }

let components t = t.components
let component_of t f = Hashtbl.find_opt t.by_member f
let is_entry t f = Iset.mem f t.entry_set
let is_header t f = Iset.mem f t.header_set

let in_same_component t a b =
  match (component_of t a, component_of t b) with
  | Some ca, Some cb -> ca.comp_id = cb.comp_id
  | _ -> false

let pp fmt t =
  List.iter
    (fun c ->
      Format.fprintf fmt "component %d: members=[%s] entries=[%s] headers=[%s]@\n"
        c.comp_id
        (String.concat ";" (List.map string_of_int c.members))
        (String.concat ";" (List.map string_of_int c.entries))
        (String.concat ";" (List.map string_of_int c.headers)))
    t.components
