(** Tarjan strongly-connected components. *)

val compute : Digraph.t -> int list list
(** Components in reverse topological order (callees/successors first).
    Every node appears in exactly one component. *)

val has_cycle : Digraph.t -> int list -> bool
(** Whether the component (given as its node list) contains a cycle:
    more than one node, or a self-edge. *)
