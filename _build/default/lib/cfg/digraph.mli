(** Simple mutable directed graphs over integer node ids, as used for
    dynamically discovered control-flow graphs and call graphs. *)

type t

val create : unit -> t
val add_node : t -> int -> unit
val add_edge : t -> int -> int -> unit
(** Adds both endpoints; parallel edges are collapsed. *)

val mem_node : t -> int -> bool
val mem_edge : t -> int -> int -> bool
val nodes : t -> int list
(** Sorted. *)

val succs : t -> int -> int list
val preds : t -> int -> int list
val n_nodes : t -> int
val n_edges : t -> int
val edges : t -> (int * int) list
val copy : t -> t

val subgraph : t -> int list -> t
(** Induced subgraph on the given nodes. *)

val remove_edge : t -> int -> int -> unit

val reverse_postorder : t -> root:int -> int list
(** RPO of the nodes reachable from [root]. *)

val pp : Format.formatter -> t -> unit
