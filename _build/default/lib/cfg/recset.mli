(** The recursive-component-set: the call-graph counterpart of the
    loop-nesting forest (§3.2).  Each top-level SCC of the call graph
    containing a cycle is a recursive component, with a set of entry
    functions and a set of header functions computed by repeatedly
    choosing an entry of a remaining cyclic sub-SCC and deleting the
    internal edges that target it. *)

type component = {
  comp_id : int;
  members : int list;  (** function ids in the SCC, sorted *)
  entries : int list;  (** functions called from outside the component *)
  headers : int list;  (** acyclicity-breaking set, in selection order *)
}

type t

val compute : Digraph.t -> main:int -> t
val components : t -> component list
val component_of : t -> int -> component option
(** Component whose members include the given function. *)

val is_entry : t -> int -> bool
val is_header : t -> int -> bool
val in_same_component : t -> int -> int -> bool
val pp : Format.formatter -> t -> unit
