lib/cfg/scc.mli: Digraph
