lib/cfg/recset.ml: Digraph Format Hashtbl Int List Scc Set String
