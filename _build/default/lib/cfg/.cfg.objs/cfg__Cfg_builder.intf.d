lib/cfg/cfg_builder.mli: Digraph Format Loopnest Recset Vm
