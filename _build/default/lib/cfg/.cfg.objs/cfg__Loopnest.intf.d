lib/cfg/loopnest.mli: Digraph Format
