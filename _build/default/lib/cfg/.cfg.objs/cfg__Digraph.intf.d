lib/cfg/digraph.mli: Format
