lib/cfg/recset.mli: Digraph Format
