lib/cfg/loopnest.ml: Digraph Format Hashtbl Int List Scc Set String
