lib/cfg/digraph.ml: Format Hashtbl Int List Set String
