lib/cfg/cfg_builder.ml: Digraph Format Hashtbl List Loopnest Recset Vm
