lib/cfg/scc.ml: Digraph Hashtbl List
