module Iset = Set.Make (Int)

type loop = {
  loop_id : int;
  header : int;
  members : int list;
  back_edges : (int * int) list;
  mutable children : loop list;
  depth : int;
  parent_id : int option;
}

type t = {
  toplevel : loop list;
  all : loop list;
  by_header : (int, loop) Hashtbl.t;
  innermost : (int, loop) Hashtbl.t;
  member_sets : (int, Iset.t) Hashtbl.t;  (* loop_id -> members *)
}

let compute g ~entry =
  let rpo = Digraph.reverse_postorder g ~root:entry in
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace rpo_index n i) rpo;
  let rank n = match Hashtbl.find_opt rpo_index n with Some i -> i | None -> max_int in
  let next_id = ref 0 in
  let all = ref [] in
  let by_header = Hashtbl.create 16 in
  let innermost = Hashtbl.create 16 in
  let member_sets = Hashtbl.create 16 in
  (* [build sub depth parent] finds the loops of subgraph [sub]. *)
  let rec build sub depth parent_id =
    let sccs = Scc.compute sub in
    List.filter_map
      (fun comp ->
        if not (Scc.has_cycle sub comp) then None
        else begin
          let comp_set = Iset.of_list comp in
          (* entry nodes: targets of edges from outside the component *)
          let entries =
            List.filter
              (fun n ->
                List.exists (fun p -> not (Iset.mem p comp_set)) (Digraph.preds sub n))
              comp
          in
          let candidates = if entries = [] then comp else entries in
          let header =
            List.fold_left
              (fun best n ->
                if rank n < rank best || (rank n = rank best && n < best) then n
                else best)
              (List.hd candidates) (List.tl candidates)
          in
          let back_edges =
            List.filter_map
              (fun src ->
                if Digraph.mem_edge sub src header then Some (src, header) else None)
              comp
          in
          let id = !next_id in
          incr next_id;
          let region = Digraph.subgraph sub comp in
          List.iter (fun (s, h) -> Digraph.remove_edge region s h) back_edges;
          let children = build region (depth + 1) (Some id) in
          let loop =
            { loop_id = id;
              header;
              members = List.sort compare comp;
              back_edges;
              children;
              depth;
              parent_id }
          in
          Hashtbl.replace by_header header loop;
          Hashtbl.replace member_sets id comp_set;
          (* innermost: children registered theirs already (deeper depth);
             only claim nodes not yet claimed *)
          List.iter
            (fun n -> if not (Hashtbl.mem innermost n) then Hashtbl.add innermost n loop)
            comp;
          all := loop :: !all;
          Some loop
        end)
      sccs
  in
  let toplevel = build g 1 None in
  { toplevel; all = List.rev !all; by_header; innermost; member_sets }

let toplevel t = t.toplevel
let all_loops t = t.all
let n_loops t = List.length t.all
let loop_of_header t h = Hashtbl.find_opt t.by_header h
let is_header t h = Hashtbl.mem t.by_header h
let innermost_containing t n = Hashtbl.find_opt t.innermost n
let loop_contains loop n = List.mem n loop.members

let max_depth t = List.fold_left (fun acc l -> max acc l.depth) 0 t.all

let parent t loop =
  match loop.parent_id with
  | None -> None
  | Some id -> List.find_opt (fun l -> l.loop_id = id) t.all

let loops_containing t n =
  let rec chain acc loop =
    match parent t loop with None -> loop :: acc | Some p -> chain (loop :: acc) p
  in
  match innermost_containing t n with None -> [] | Some l -> chain [] l

let rec pp_loop fmt indent loop =
  Format.fprintf fmt "%sL%d header=%d depth=%d members=[%s]@\n" indent
    loop.loop_id loop.header loop.depth
    (String.concat ";" (List.map string_of_int loop.members));
  List.iter (pp_loop fmt (indent ^ "  ")) loop.children

let pp fmt t = List.iter (pp_loop fmt "") t.toplevel
