module A = Minisl.Affine
module Rat = Pp_util.Rat

type row = {
  name : string;
  ops : int;
  mem : int;
  aff_pct : float;
  region : string;
  region_ops_pct : float;
  region_mops_pct : float;
  region_fpops_pct : float;
  interproc : bool;
  skew : bool;
  par_ops_pct : float;
  simd_ops_pct : float;
  reuse_pct : float;
  preuse_pct : float;
  ld_src : int;
  ld_bin : int;
  tile_depth : int;
  tile_ops_pct : float;
  c_before : int;
  c_after : int;
  fusion : string;
  failed : bool;
}

let rec take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

let is_prefix p l = take (List.length p) l = p

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let select_region (t : Depanalysis.t) =
  let top =
    List.filter (fun (l : Depanalysis.loop_info) -> l.ldepth = 1) t.loops
  in
  List.fold_left
    (fun best (l : Depanalysis.loop_info) ->
      match best with
      | None -> Some l
      | Some b -> if l.lweight > b.Depanalysis.lweight then Some l else best)
    None top

(* Memory accesses with stride 0/1 on a given dim (weighted). *)
let stride01_on_dim (s : Depanalysis.stmt_ext) d =
  s.si.Ddg.Depprof.s_pieces <> []
  && List.for_all
       (fun (p : Fold.piece) ->
         match p.Fold.labels with
         | [| Some addr |] when d < A.dim addr ->
             let c = addr.A.coeffs.(d) in
             Rat.is_integer c && abs (Rat.to_int_exn c) <= 1
         | _ -> false)
       s.si.Ddg.Depprof.s_pieces

let is_mem (s : Depanalysis.stmt_ext) =
  match s.si.Ddg.Depprof.cls with
  | Vm.Isa.Mem_load | Vm.Isa.Mem_store -> true
  | Vm.Isa.Int_alu | Vm.Isa.Fp_alu | Vm.Isa.Other_op -> false

let is_fp (s : Depanalysis.stmt_ext) =
  match s.si.Ddg.Depprof.cls with
  | Vm.Isa.Fp_alu -> true
  | Vm.Isa.Mem_load | Vm.Isa.Mem_store | Vm.Isa.Int_alu | Vm.Isa.Other_op ->
      false

let fids_of_path (p : Depanalysis.path) =
  List.concat_map
    (fun stack ->
      List.filter_map
        (function
          | Ddg.Iiv.Cblock (f, _) | Ddg.Iiv.Cloop (f, _) -> Some f
          | Ddg.Iiv.Ccomp _ -> None)
        stack)
    p

let compute ~name ?(ld_src = 0) ?(fusion_strategy = Fusion.Smartfuse)
    ?region_override prog (_res : Ddg.Depprof.result) (t : Depanalysis.t) =
  ignore prog;
  let total = max 1 t.total_ops in
  let stmt_count (s : Depanalysis.stmt_ext) = s.si.Ddg.Depprof.s_count in
  (* %Aff: ops of statements whose own folding is exact+affine and whose
     incident dependences all folded exactly with affine labels *)
  let dep_ok (d : Depanalysis.dep_ext) = not d.approx in
  let stmt_deps_ok (s : Depanalysis.stmt_ext) =
    List.for_all
      (fun (d : Depanalysis.dep_ext) ->
        let dk = d.di.Ddg.Depprof.dk in
        let touches =
          (dk.src_sid = s.si.Ddg.Depprof.sk.s_sid
          && dk.src_ctx = s.si.Ddg.Depprof.sk.s_ctx)
          || (dk.dst_sid = s.si.Ddg.Depprof.sk.s_sid
             && dk.dst_ctx = s.si.Ddg.Depprof.sk.s_ctx)
        in
        (not touches) || dep_ok d)
      t.deps
  in
  (* region-level affinity (the paper's "part of a fully affine region
     without over-approximation"): a loop nest counts as affine when at
     least 90% of its dynamic operations come from statements that folded
     exactly with affine labels and exact dependences — a couple of
     if-converted select copies with holey domains do not disqualify the
     whole nest, but pervasive irregularity (modulo-linearised indexing,
     indirections) does *)
  let nest_tot : (Depanalysis.path, int) Hashtbl.t = Hashtbl.create 32 in
  let nest_ok : (Depanalysis.path, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (s : Depanalysis.stmt_ext) ->
      let bump tbl n =
        Hashtbl.replace tbl s.spath
          ((try Hashtbl.find tbl s.spath with Not_found -> 0) + n)
      in
      bump nest_tot (stmt_count s);
      if s.si.Ddg.Depprof.affine_exact && stmt_deps_ok s then
        bump nest_ok (stmt_count s))
    t.stmts;
  let nest_affine path =
    let tot = try Hashtbl.find nest_tot path with Not_found -> 0 in
    let ok = try Hashtbl.find nest_ok path with Not_found -> 0 in
    tot > 0 && 10 * ok >= 9 * tot
  in
  let aff_ops =
    List.fold_left
      (fun acc (s : Depanalysis.stmt_ext) ->
        if nest_affine s.spath then acc + stmt_count s else acc)
      0 t.stmts
  in
  (* region selection *)
  let region_path, region_loc =
    match region_override with
    | Some p -> (
        ( p,
          match Depanalysis.loop_at t p with
          | Some l -> l.header_loc
          | None -> None ))
    | None -> (
        match select_region t with
        | Some l -> (l.lpath, l.header_loc)
        | None -> ([], None))
  in
  let in_region (s : Depanalysis.stmt_ext) = is_prefix region_path s.spath in
  let region_stmts = List.filter in_region t.stmts in
  let sum f l = List.fold_left (fun acc s -> acc + f s) 0 l in
  let region_ops = sum stmt_count region_stmts in
  let region_mem = sum (fun s -> if is_mem s then stmt_count s else 0) region_stmts in
  let region_fp = sum (fun s -> if is_fp s then stmt_count s else 0) region_stmts in
  let interproc =
    (* interprocedural = the transformation region spans several
       functions: look at the loop dimensions below the region root (the
       calling context above it is irrelevant) and the statements' own
       functions *)
    let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
    let fids =
      List.sort_uniq compare
        (List.concat_map
           (fun (s : Depanalysis.stmt_ext) ->
             Vm.Isa.Sid.fid s.si.Ddg.Depprof.sk.s_sid
             :: fids_of_path (drop (List.length region_path) s.spath))
           region_stmts)
    in
    List.length fids > 1
  in
  (* per-nest suggestions *)
  let suggestions =
    List.map (fun n -> (n, Transform.suggest t n)) t.nests
  in
  let nest_of_stmt (s : Depanalysis.stmt_ext) =
    List.find_opt (fun (n : Depanalysis.nest_info) -> n.npath = s.spath)
      t.nests
  in
  (* %||ops: some enclosing loop dim parallel, or the statement's nest is
     tilable with a band of width >= 2 (tiled code can always be
     coarse-grain parallelised with wavefront parallelism, paper section 8) *)
  let par_ops =
    List.fold_left
      (fun acc (s : Depanalysis.stmt_ext) ->
        let any_parallel =
          List.exists
            (fun (l : Depanalysis.loop_info) ->
              l.parallel && is_prefix l.lpath s.spath)
            t.loops
        in
        let wavefront =
          match nest_of_stmt s with
          | Some n -> Depanalysis.max_band_width n >= 2
          | None -> false
        in
        if any_parallel || wavefront then acc + stmt_count s else acc)
      0 t.stmts
  in
  (* %simdops: ops in nests whose innermost loop is parallel AFTER the
     suggested transformation (e.g. post-interchange for backprop) *)
  let suggestion_of_nest =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun ((n : Depanalysis.nest_info), sg) -> Hashtbl.replace tbl n.npath sg)
      suggestions;
    fun (n : Depanalysis.nest_info) -> Hashtbl.find_opt tbl n.npath
  in
  let simd_ops =
    List.fold_left
      (fun acc (s : Depanalysis.stmt_ext) ->
        match nest_of_stmt s with
        | Some n -> (
            match suggestion_of_nest n with
            | Some sg when sg.Transform.simd -> acc + stmt_count s
            | _ -> acc)
        | None -> acc)
      0 t.stmts
  in
  (* %reuse / %Preuse over memory operations *)
  let mem_total = ref 0 and reuse = ref 0 and preuse = ref 0 in
  List.iter
    (fun (s : Depanalysis.stmt_ext) ->
      if is_mem s then begin
        mem_total := !mem_total + stmt_count s;
        let depth = s.si.Ddg.Depprof.depth in
        let innermost_ok = depth > 0 && stride01_on_dim s (depth - 1) in
        let any_ok =
          depth = 0
          ||
          let rec f d = d < depth && (stride01_on_dim s d || f (d + 1)) in
          f 0
        in
        if innermost_ok || depth = 0 then reuse := !reuse + stmt_count s;
        if any_ok then preuse := !preuse + stmt_count s
      end)
    t.stmts;
  (* ld-bin: max loop depth in the reconstructed structure *)
  let ld_bin =
    List.fold_left
      (fun acc (l : Depanalysis.loop_info) -> max acc l.ldepth)
      0 t.loops
  in
  (* TileD / %Tilops *)
  let tile_depth =
    List.fold_left
      (fun acc ((n : Depanalysis.nest_info), _) ->
        if is_prefix region_path n.npath || region_path = [] then
          max acc (max 1 (Depanalysis.max_band_width n))
        else acc)
      0 suggestions
  in
  let nest_tilable (n : Depanalysis.nest_info) =
    (* every incident dependence folded with known labels *)
    n.ndepth > 0
    && List.for_all
         (fun (d : Depanalysis.dep_ext) ->
           (not (Depanalysis.dep_relevant_to_prefix d n.npath)) || not d.approx)
         t.deps
  in
  let til_ops =
    List.fold_left
      (fun acc (s : Depanalysis.stmt_ext) ->
        match nest_of_stmt s with
        | Some n when nest_tilable n -> acc + stmt_count s
        | _ -> acc)
      0 t.stmts
  in
  (* the skew column reflects the hot nests: a skew suggested on a
     minor side loop (a prefix-sum scan, a pivot row update) would not
     make the paper's transformation "use skewing" *)
  let skew =
    List.exists
      (fun ((n : Depanalysis.nest_info), sg) ->
        is_prefix region_path n.npath
        && sg.Transform.uses_skew
        && float_of_int n.nweight >= 0.2 *. float_of_int (max 1 region_ops))
      suggestions
  in
  let fus = Fusion.fuse t fusion_strategy ~prefix:region_path () in
  { name;
    ops = t.total_ops;
    mem = !mem_total;
    aff_pct = pct aff_ops total;
    region =
      (match region_loc with
      | Some l -> Printf.sprintf "%s:%d" l.Vm.Prog.file l.Vm.Prog.line
      | None -> "-");
    region_ops_pct = pct region_ops total;
    region_mops_pct = pct region_mem (max 1 region_ops);
    region_fpops_pct = pct region_fp (max 1 region_ops);
    interproc;
    skew;
    par_ops_pct = pct par_ops total;
    simd_ops_pct = pct simd_ops total;
    reuse_pct = pct !reuse (max 1 !mem_total);
    preuse_pct = pct !preuse (max 1 !mem_total);
    ld_src;
    ld_bin;
    tile_depth;
    tile_ops_pct = pct til_ops total;
    (* a region that is itself a loop with no qualifying sub-loops is one
       component *)
    c_before = (if region_ops > 0 then max 1 fus.Fusion.components_before else 0);
    c_after = (if region_ops > 0 then max 1 fus.Fusion.components_after else 0);
    fusion = Fusion.strategy_code fusion_strategy;
    failed = false }

(* Row for a benchmark whose scheduling stage blew up: the paper still
   shows the profiling-derived columns for streamcluster (#ops, #mem,
   %Aff, region, %ops, %Mops, %FPops, interproc) and dashes the rest. *)
let failed_row ?base_row ~name ~ops ~mem () =
  let b =
    match base_row with
    | Some r -> r
    | None ->
        { name; ops; mem; aff_pct = 0.0; region = "-"; region_ops_pct = 0.0;
          region_mops_pct = 0.0; region_fpops_pct = 0.0; interproc = false;
          skew = false; par_ops_pct = 0.0; simd_ops_pct = 0.0;
          reuse_pct = 0.0; preuse_pct = 0.0; ld_src = 0; ld_bin = 0;
          tile_depth = 0; tile_ops_pct = 0.0; c_before = 0; c_after = 0;
          fusion = "-"; failed = true }
  in
  { b with name; ops; mem; failed = true }

let header =
  [ "benchmark"; "#ops"; "#mem"; "%Aff"; "Region"; "%ops"; "%Mops"; "%FPops";
    "itp"; "skew"; "%||ops"; "%simd"; "%reuse"; "%Preuse"; "ld-src"; "ld-bin";
    "TileD"; "%Tilops"; "C"; "Comp"; "fus" ]

let fmt_count n =
  if n >= 1_000_000_000 then Printf.sprintf "%dG" (n / 1_000_000_000)
  else if n >= 1_000_000 then Printf.sprintf "%dM" (n / 1_000_000)
  else if n >= 1_000 then Printf.sprintf "%dK" (n / 1_000)
  else string_of_int n

let fmt_pct f = Printf.sprintf "%.0f%%" f

let to_strings r =
  if r.failed then
    [ r.name; fmt_count r.ops; fmt_count r.mem;
      (if r.region = "-" then "-" else fmt_pct r.aff_pct);
      r.region;
      (if r.region = "-" then "-" else fmt_pct r.region_ops_pct);
      (if r.region = "-" then "-" else fmt_pct r.region_mops_pct);
      (if r.region = "-" then "-" else fmt_pct r.region_fpops_pct);
      (if r.region = "-" then "-" else if r.interproc then "Y" else "N");
      "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
  else
    [ r.name;
      fmt_count r.ops;
      fmt_count r.mem;
      fmt_pct r.aff_pct;
      r.region;
      fmt_pct r.region_ops_pct;
      fmt_pct r.region_mops_pct;
      fmt_pct r.region_fpops_pct;
      (if r.interproc then "Y" else "N");
      (if r.skew then "Y" else "N");
      fmt_pct r.par_ops_pct;
      fmt_pct r.simd_ops_pct;
      fmt_pct r.reuse_pct;
      fmt_pct r.preuse_pct;
      Printf.sprintf "%dD" r.ld_src;
      Printf.sprintf "%dD" r.ld_bin;
      Printf.sprintf "%dD" r.tile_depth;
      fmt_pct r.tile_ops_pct;
      string_of_int r.c_before;
      string_of_int r.c_after;
      r.fusion ]

let pp_table fmt rows =
  let table = header :: List.map to_strings rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)))
    table;
  List.iter
    (fun row ->
      List.iteri
        (fun i s -> Format.fprintf fmt "%-*s " widths.(i) s)
        row;
      Format.fprintf fmt "@\n")
    table
