module P = Minisl.Polyhedron
module C = Minisl.Constr

type param = { pname : string; base : int }

type t = {
  threshold : int;
  slack : int;
  mutable plist : param list;  (* reverse creation order *)
}

let create ?(threshold = 128) ?(slack = 20) () = { threshold; slack; plist = [] }

let abstract t c =
  let a = abs c in
  if a < t.threshold then string_of_int c
  else begin
    let sign = if c < 0 then "-" else "" in
    match
      List.find_opt (fun p -> abs (a - p.base) <= t.slack) t.plist
    with
    | Some p ->
        if a = p.base then sign ^ p.pname
        else if a > p.base then Printf.sprintf "%s(%s + %d)" sign p.pname (a - p.base)
        else Printf.sprintf "%s(%s - %d)" sign p.pname (p.base - a)
    | None ->
        let pname = Printf.sprintf "n%d" (List.length t.plist) in
        t.plist <- t.plist @ [ { pname; base = a } ];
        sign ^ pname
  end

let params t = t.plist

let pp_constr t ?names fmt (c : C.t) =
  let dim = C.dim c in
  let name k =
    match names with
    | Some ns when k < Array.length ns -> ns.(k)
    | _ -> "i" ^ string_of_int k
  in
  let printed = ref false in
  Array.iteri
    (fun k v ->
      if v <> 0 then begin
        if !printed then Format.fprintf fmt (if v > 0 then " + " else " - ")
        else if v < 0 then Format.fprintf fmt "-";
        let a = abs v in
        if a = 1 then Format.fprintf fmt "%s" (name k)
        else Format.fprintf fmt "%d%s" a (name k);
        printed := true
      end)
    c.C.v;
  ignore dim;
  if c.C.c <> 0 || not !printed then begin
    let rendered = abstract t (abs c.C.c) in
    if !printed then
      Format.fprintf fmt " %s %s" (if c.C.c > 0 then "+" else "-") rendered
    else if c.C.c < 0 then Format.fprintf fmt "-%s" rendered
    else Format.fprintf fmt "%s" rendered
  end;
  Format.fprintf fmt " %s 0" (match c.C.kind with C.Eq -> "=" | C.Ge -> ">=")

let pp_domain t ?names fmt p =
  let before = List.length t.plist in
  let body = Format.asprintf "{ %s }"
      (String.concat " and "
         (List.map (Format.asprintf "%a" (pp_constr t ?names)) (P.constraints p)))
  in
  let fresh = List.filteri (fun i _ -> i >= before) t.plist in
  let binder =
    match t.plist with
    | [] -> ""
    | ps -> Printf.sprintf "[%s] -> " (String.concat ", " (List.map (fun p -> p.pname) ps))
  in
  let defs =
    match fresh with
    | [] -> ""
    | ps ->
        " : "
        ^ String.concat ", "
            (List.map (fun p -> Printf.sprintf "%s = %d" p.pname p.base) ps)
  in
  Format.fprintf fmt "%s%s%s" binder body defs
