(** Parameterisation of large integer constants (paper §6): large
    constants in iteration domains cause combinatorial blow-up in the ILP
    scheduler, so a domain like [{[i] : 0 <= i < 1024}] is rewritten as
    [[n] -> {[i] : 0 <= i < n, n = 1024}].  A parameter is reused for any
    value within [slack] (the paper sets s = 20) of its base value, the
    reused occurrence being rendered as [n + (x - base)]. *)

type param = { pname : string; base : int }

type t

val create : ?threshold:int -> ?slack:int -> unit -> t
(** Defaults: [threshold = 128], [slack = 20]. *)

val abstract : t -> int -> string
(** [abstract t c] returns the rendering of constant [c]: the constant
    itself if below threshold, else a (possibly offset) parameter
    reference, registering a new parameter if needed. *)

val params : t -> param list
(** Parameters registered so far, in creation order. *)

val pp_domain :
  t -> ?names:string array -> Format.formatter -> Minisl.Polyhedron.t -> unit
(** Print the polyhedron with large constants abstracted, prefixed with
    the parameter binder, e.g.
    [[n0] -> { i >= 0 and n0 - i >= 0 : n0 = 1024 }]. *)
