(** The assembled per-region feedback report (paper §6 "Final output" and
    the case studies of §7): selected fat region, suggested structured
    transformation sequence, per-dimension legality/profitability
    statistics, and a simplified AST of the code structure after the
    transformation. *)

type region_report = {
  path : Depanalysis.path;
  loc : string;  (** source reference of the region's outermost loop *)
  weight_pct : float;  (** %ops of the whole program *)
  interprocedural : bool;
  suggestions : Transform.suggestion list;  (** per nest inside the region *)
  fusion : Fusion.result;
  parallel_dims : bool list;  (** outermost-first, of the deepest nest *)
  permutable : bool;  (** the deepest nest is fully permutable *)
  tile_depth : int;
  uses_skew : bool;
  stride01_outer : float;
  stride01_inner : float;
}

type t = {
  regions : region_report list;  (** hottest first *)
  analysis : Depanalysis.t;
}

val make : ?max_regions:int -> Vm.Prog.t -> Ddg.Depprof.result -> Depanalysis.t -> t

val render : ?fname:(int -> string) -> Format.formatter -> t -> unit
(** Human-readable feedback: per region, the transformation steps and a
    simplified post-transformation AST. *)

val render_ast : Format.formatter -> region_report -> unit
(** The simplified AST after applying the suggested transformation:
    loop structure with parallel/tiled/vectorised markers and statement
    counts (paper: "decorated simplified AST"). *)
