(** PolyFeat-equivalent aggregate metrics: every column of the paper's
    Table 5 computed from the folded DDG and the dependence analysis. *)

type row = {
  name : string;
  ops : int;  (** dynamic operations (#ops) *)
  mem : int;  (** dynamic memory operations (#mem) *)
  aff_pct : float;  (** %Aff: ops in fully affine folded regions *)
  region : string;  (** source reference of the selected region *)
  region_ops_pct : float;  (** %ops of the region *)
  region_mops_pct : float;  (** %Mops within the region *)
  region_fpops_pct : float;  (** %FPops within the region *)
  interproc : bool;
  skew : bool;
  par_ops_pct : float;  (** %||ops *)
  simd_ops_pct : float;  (** %simdops *)
  reuse_pct : float;  (** %reuse *)
  preuse_pct : float;  (** %Preuse *)
  ld_src : int;
  ld_bin : int;
  tile_depth : int;  (** TileD *)
  tile_ops_pct : float;  (** %Tilops *)
  c_before : int;  (** C: components in the binary *)
  c_after : int;  (** Comp.: components after the transformation *)
  fusion : string;  (** "S" / "M" *)
  failed : bool;  (** scheduler bail-out (streamcluster row) *)
}

val compute :
  name:string ->
  ?ld_src:int ->
  ?fusion_strategy:Fusion.strategy ->
  ?region_override:Depanalysis.path ->
  Vm.Prog.t ->
  Ddg.Depprof.result ->
  Depanalysis.t ->
  row

val failed_row : ?base_row:row -> name:string -> ops:int -> mem:int -> unit -> row
(** Row for a benchmark whose scheduling stage blew up (the paper's
    streamcluster exhausted scheduler memory).  When [base_row] is given
    (computed from the profiling stages alone), its profiling columns
    (%Aff, region, %ops, %Mops, %FPops, interproc) are kept and only the
    transformation columns are dashed. *)

val select_region : Depanalysis.t -> Depanalysis.loop_info option
(** The biggest top-level loop region by operation count — the paper's
    "biggest region for which the optimizer suggests a transformation". *)

val header : string list
val to_strings : row -> string list
val pp_table : Format.formatter -> row list -> unit
