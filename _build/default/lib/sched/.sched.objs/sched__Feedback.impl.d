lib/sched/feedback.ml: Array Ddg Depanalysis Format Fusion List Printf String Transform Vm
