lib/sched/transform.mli: Depanalysis Format
