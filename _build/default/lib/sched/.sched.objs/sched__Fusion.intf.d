lib/sched/fusion.mli: Depanalysis
