lib/sched/depanalysis.ml: Array Cfg Ddg Fold Format Hashtbl List Minisl Option Pp_util Printf String Vm
