lib/sched/domain_params.ml: Array Format List Minisl Printf String
