lib/sched/transform.ml: Array Ddg Depanalysis Fold Format Fun List Minisl Pp_util Vm
