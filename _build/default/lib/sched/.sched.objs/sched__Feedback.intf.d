lib/sched/feedback.mli: Ddg Depanalysis Format Fusion Transform Vm
