lib/sched/metrics.ml: Array Ddg Depanalysis Fold Format Fusion Hashtbl List Minisl Pp_util Printf String Transform Vm
