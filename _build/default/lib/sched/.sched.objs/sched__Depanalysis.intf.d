lib/sched/depanalysis.mli: Ddg Format Vm
