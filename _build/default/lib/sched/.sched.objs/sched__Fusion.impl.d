lib/sched/fusion.ml: Array Ddg Depanalysis Fold List Minisl Pp_util
