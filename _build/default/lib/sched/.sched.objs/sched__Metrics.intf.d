lib/sched/metrics.mli: Ddg Depanalysis Format Fusion Vm
