lib/sched/domain_params.mli: Format Minisl
