type region_report = {
  path : Depanalysis.path;
  loc : string;
  weight_pct : float;
  interprocedural : bool;
  suggestions : Transform.suggestion list;
  fusion : Fusion.result;
  parallel_dims : bool list;
  permutable : bool;
  tile_depth : int;
  uses_skew : bool;
  stride01_outer : float;
  stride01_inner : float;
}

type t = {
  regions : region_report list;
  analysis : Depanalysis.t;
}

let rec take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

let is_prefix p l = take (List.length p) l = p

let region_of_loop prog (t : Depanalysis.t) (l : Depanalysis.loop_info) =
  ignore prog;
  let nests =
    List.filter
      (fun (n : Depanalysis.nest_info) -> is_prefix l.lpath n.npath)
      t.nests
  in
  let suggestions = List.map (Transform.suggest t) nests in
  let deepest =
    List.fold_left
      (fun best (n : Depanalysis.nest_info) ->
        match best with
        | None -> Some n
        | Some b ->
            if
              n.ndepth > b.Depanalysis.ndepth
              || (n.ndepth = b.Depanalysis.ndepth && n.nweight > b.Depanalysis.nweight)
            then Some n
            else best)
      None nests
  in
  let fids =
    List.sort_uniq compare
      (List.concat_map
         (fun (n : Depanalysis.nest_info) ->
           List.concat_map
             (fun (s : Depanalysis.stmt_ext) ->
               [ Vm.Isa.Sid.fid s.si.Ddg.Depprof.sk.s_sid ])
             n.nstmts)
         nests)
  in
  let tile_depth =
    List.fold_left (fun acc s -> max acc s.Transform.tile_depth) 0 suggestions
  in
  let parallel_dims, permutable, s01o, s01i =
    match deepest with
    | None -> ([], false, 0.0, 0.0)
    | Some n ->
        let sg = Transform.suggest t n in
        let s01 = sg.Transform.stride01 in
        ( Array.to_list n.nparallel,
          Depanalysis.max_band_width n = n.ndepth && n.ndepth > 1,
          (if Array.length s01 > 0 then s01.(0) else 0.0),
          if Array.length s01 > 0 then s01.(Array.length s01 - 1) else 0.0 )
  in
  { path = l.lpath;
    loc =
      (match l.header_loc with
      | Some lc -> Printf.sprintf "%s:%d" lc.Vm.Prog.file lc.Vm.Prog.line
      | None -> "?");
    weight_pct =
      (if t.total_ops = 0 then 0.0
       else 100.0 *. float_of_int l.lweight /. float_of_int t.total_ops);
    interprocedural = List.length fids > 1;
    suggestions;
    fusion = Fusion.fuse t Fusion.Smartfuse ~prefix:l.lpath ();
    parallel_dims;
    permutable;
    tile_depth;
    uses_skew = List.exists (fun s -> s.Transform.uses_skew) suggestions;
    stride01_outer = s01o;
    stride01_inner = s01i }

let make ?(max_regions = 5) prog (res : Ddg.Depprof.result) (t : Depanalysis.t) =
  ignore res;
  let top =
    List.filter (fun (l : Depanalysis.loop_info) -> l.ldepth = 1) t.loops
    |> List.sort (fun (a : Depanalysis.loop_info) b -> compare b.lweight a.lweight)
  in
  let regions = List.map (region_of_loop prog t) (take max_regions top) in
  { regions; analysis = t }

let render_ast fmt (r : region_report) =
  (* render the deepest/hottest nest after transformation *)
  let sg =
    List.fold_left
      (fun best (s : Transform.suggestion) ->
        match best with
        | None -> Some s
        | Some b ->
            if s.Transform.nest.Depanalysis.nweight > b.Transform.nest.Depanalysis.nweight
            then Some s
            else best)
      None r.suggestions
  in
  match sg with
  | None -> Format.fprintf fmt "  (empty region)@\n"
  | Some s ->
      let n = s.Transform.nest in
      let depth = n.Depanalysis.ndepth in
      let tiled d =
        List.exists
          (fun st -> match st with Transform.Tile (a, b, _) -> a <= d && d <= b | _ -> false)
          s.Transform.steps
      in
      let order = Array.init depth (fun i -> i + 1) in
      (match s.Transform.interchange with
      | Some (a, b) ->
          let tmp = order.(a - 1) in
          order.(a - 1) <- order.(b - 1);
          order.(b - 1) <- tmp
      | None -> ());
      let indent = ref "  " in
      (* tile loops first *)
      Array.iter
        (fun d ->
          if tiled d then begin
            Format.fprintf fmt "%sfor dt%d in [0 .. N%d/32)%s@\n" !indent d d
              (if s.Transform.parallel_dim = Some d then "   // omp parallel for (tile wavefront)"
               else "");
            indent := !indent ^ "  "
          end)
        order;
      Array.iteri
        (fun pos d ->
          let marks = ref [] in
          if s.Transform.parallel_dim = Some d && not (tiled d) then
            marks := "parallel" :: !marks;
          if n.Depanalysis.nparallel.(d - 1) then marks := "||" :: !marks;
          if pos = depth - 1 && s.Transform.simd then marks := "simd" :: !marks;
          Format.fprintf fmt "%sfor d%d in %s%s@\n" !indent d
            (if tiled d then Printf.sprintf "tile(dt%d)" d else Printf.sprintf "[0 .. N%d)" d)
            (if !marks = [] then ""
             else "   // " ^ String.concat ", " !marks);
          indent := !indent ^ "  ")
        order;
      Format.fprintf fmt "%s{ %d statements, %d ops }@\n" !indent
        (List.length n.Depanalysis.nstmts)
        n.Depanalysis.nweight

let render ?fname fmt t =
  ignore fname;
  List.iteri
    (fun i r ->
      Format.fprintf fmt "=== region %d: %s (%.0f%% of ops%s) ===@\n" (i + 1)
        r.loc r.weight_pct
        (if r.interprocedural then ", interprocedural" else "");
      Format.fprintf fmt "parallel dims: [%s]  permutable: %b  tile depth: %d%s@\n"
        (String.concat "; "
           (List.mapi
              (fun d p -> Printf.sprintf "d%d:%s" (d + 1) (if p then "yes" else "no"))
              r.parallel_dims))
        r.permutable r.tile_depth
        (if r.uses_skew then "  (after skewing)" else "");
      Format.fprintf fmt "stride-0/1: outer %.0f%%, inner %.0f%%@\n"
        (100.0 *. r.stride01_outer)
        (100.0 *. r.stride01_inner);
      Format.fprintf fmt "fusion: %d components -> %d (%s)@\n"
        r.fusion.Fusion.components_before r.fusion.Fusion.components_after
        (Fusion.strategy_code r.fusion.Fusion.strategy);
      (* the precise fusion/distribution scheme (paper section 6): which
         original outer loops share a fused loop after transformation *)
      (match r.fusion.Fusion.merged_groups with
      | [] | [ _ ] -> ()
      | groups ->
          Format.fprintf fmt "fusion scheme:@\n";
          List.iteri
            (fun gi group ->
              Format.fprintf fmt "  fused loop %d: %d original loop(s), %d ops@\n"
                (gi + 1) (List.length group)
                (List.fold_left
                   (fun acc (c : Fusion.component) -> acc + c.Fusion.c_weight)
                   0 group))
            groups);
      List.iter
        (fun s ->
          if s.Transform.steps <> [] then
            Format.fprintf fmt "suggested: %a@\n" Transform.pp_suggestion s)
        r.suggestions;
      Format.fprintf fmt "post-transformation structure:@\n";
      render_ast fmt r)
    t.regions
