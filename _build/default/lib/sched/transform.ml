module A = Minisl.Affine
module Rat = Pp_util.Rat

type step =
  | Interchange of int * int
  | Skew of int * int * int
  | Tile of int * int * int
  | Parallelize of int
  | Vectorize of int

let pp_step fmt = function
  | Interchange (a, b) -> Format.fprintf fmt "interchange(d%d <-> d%d)" a b
  | Skew (o, i, f) -> Format.fprintf fmt "skew(d%d += %d*d%d)" i f o
  | Tile (a, b, s) -> Format.fprintf fmt "tile(d%d..d%d, %d)" a b s
  | Parallelize d -> Format.fprintf fmt "omp parallel(d%d)" d
  | Vectorize d -> Format.fprintf fmt "simd(d%d)" d

type suggestion = {
  nest : Depanalysis.nest_info;
  steps : step list;
  parallel_dim : int option;
  simd : bool;
  tile_depth : int;
  uses_skew : bool;
  stride01 : float array;
  interchange : (int * int) option;
  permutable : bool array;
}

(* Fraction of the nest's memory operations (weighted by execution count)
   whose access function has coefficient 0 or +-1 on dimension [d]. *)
let stride01_profile (n : Depanalysis.nest_info) =
  let dims = n.ndepth in
  let good = Array.make dims 0 and total = ref 0 in
  List.iter
    (fun (s : Depanalysis.stmt_ext) ->
      match s.si.Ddg.Depprof.cls with
      | Vm.Isa.Mem_load | Vm.Isa.Mem_store ->
          total := !total + s.si.Ddg.Depprof.s_count;
          let coeff_ok d =
            (* stride-0/1 along d in every piece *)
            s.si.Ddg.Depprof.s_pieces <> []
            && List.for_all
                 (fun (p : Fold.piece) ->
                   match p.Fold.labels with
                   | [| Some addr |] when d < A.dim addr ->
                       let c = addr.A.coeffs.(d) in
                       Rat.is_integer c && abs (Rat.to_int_exn c) <= 1
                   | _ -> false)
                 s.si.Ddg.Depprof.s_pieces
          in
          for d = 0 to dims - 1 do
            if coeff_ok d then good.(d) <- good.(d) + s.si.Ddg.Depprof.s_count
          done
      | Vm.Isa.Int_alu | Vm.Isa.Fp_alu | Vm.Isa.Other_op -> ())
    n.nstmts;
  Array.map
    (fun g -> if !total = 0 then 0.0 else float_of_int g /. float_of_int !total)
    good

(* A dependence carried exactly at the innermost dimension, between
   statements of the same basic block, with constant distance: the
   signature of a scalar/array reduction, vectorisable with an OpenMP
   simd reduction clause. *)
let innermost_only_reductions (t : Depanalysis.t) (n : Depanalysis.nest_info) =
  let inner = n.Depanalysis.ndepth in
  inner > 0
  && List.exists
       (fun (d : Depanalysis.dep_ext) -> d.common >= inner)
       t.Depanalysis.deps
  && List.for_all
       (fun (d : Depanalysis.dep_ext) ->
         if not (Depanalysis.dep_relevant_to_prefix d n.Depanalysis.npath) then
           true
         else if d.common < inner then true
         else
           (* carried before the innermost dim, or innermost-carried
              reduction-like *)
           let carried_at_inner =
             Depanalysis.(
               Array.for_all dir_can_be_zero (Array.sub d.dirs 0 (inner - 1)))
             && Depanalysis.dir_can_be_nonzero d.dirs.(inner - 1)
           in
           (not carried_at_inner)
           ||
           let dk = d.di.Ddg.Depprof.dk in
           Vm.Isa.Sid.fid dk.src_sid = Vm.Isa.Sid.fid dk.dst_sid
           && Vm.Isa.Sid.bid dk.src_sid = Vm.Isa.Sid.bid dk.dst_sid)
       t.Depanalysis.deps

let suggest ?(tile_size = 32) (t : Depanalysis.t) (n : Depanalysis.nest_info) =
  let steps = ref [] in
  let push s = steps := s :: !steps in
  let stride01 = stride01_profile n in
  let permutable = Array.make n.ndepth false in
  List.iter
    (fun (b : Depanalysis.band) ->
      if b.b_to > b.b_from then
        for d = b.b_from to b.b_to do
          permutable.(d - 1) <- true
        done)
    n.bands;
  (* skewing steps come first (they enable the bands) *)
  let legality_skew = Depanalysis.nest_uses_skew n in
  List.iter
    (fun (b : Depanalysis.band) ->
      List.iter (fun (o, i, f) -> push (Skew (o, i, f))) b.b_skews)
    n.bands;
  (* parallelism-exposing skew: a permutable band with no parallel dim
     still yields wavefront parallelism if the inner dim is skewed
     against the outer one (paper: "we tend to avoid skewing unless it
     really provides improvements in parallelism and tilability") *)
  let no_parallel_dim = not (Array.exists Fun.id n.nparallel) in
  let wavefront_skew =
    (not legality_skew) && no_parallel_dim
    && List.exists (fun (b : Depanalysis.band) -> b.b_to > b.b_from) n.bands
  in
  (if wavefront_skew then
     match
       List.find_opt (fun (b : Depanalysis.band) -> b.b_to > b.b_from) n.bands
     with
     | Some b -> push (Skew (b.b_from, b.b_from + 1, 1))
     | None -> ());
  let uses_skew = legality_skew || wavefront_skew in
  (* profitable interchange: a permutable non-innermost dim with a better
     stride profile than the innermost dim of its band *)
  let interchange =
    if n.ndepth < 2 then None
    else begin
      let inner = n.ndepth in
      let in_same_band a b =
        List.exists
          (fun (bd : Depanalysis.band) -> bd.b_from <= a && b <= bd.b_to)
          n.bands
      in
      let best = ref None in
      for d = 1 to inner - 1 do
        if
          in_same_band d inner
          && stride01.(d - 1) > stride01.(inner - 1) +. 1e-9
        then
          (* prefer the deepest candidate on ties: it disturbs the
             schedule least and matches what a programmer would write *)
          match !best with
          | Some (b, _) when stride01.(b - 1) > stride01.(d - 1) -> ()
          | _ -> best := Some (d, inner)
      done;
      !best
    end
  in
  (match interchange with Some (a, b) -> push (Interchange (a, b)) | None -> ());
  (* tiling of every band of width >= 2 *)
  List.iter
    (fun (b : Depanalysis.band) ->
      if b.b_to > b.b_from then push (Tile (b.b_from, b.b_to, tile_size)))
    n.bands;
  let tile_depth = Depanalysis.max_band_width n in
  (* parallelisation: outermost parallel dim; wavefront exists anyway for
     tiled bands (paper: "tiled code can always be coarse-grain
     parallelized using wavefront parallelism") *)
  let parallel_dim =
    let rec find d = if d > n.ndepth then None
      else if n.nparallel.(d - 1) then Some d
      else find (d + 1)
    in
    find 1
  in
  (match parallel_dim with Some d -> push (Parallelize d) | None -> ());
  (* SIMD: the innermost dim after interchange *)
  let simd =
    if n.ndepth = 0 then false
    else
      let innermost_after =
        match interchange with Some (a, _) -> a | None -> n.ndepth
      in
      n.nparallel.(innermost_after - 1)
      || (interchange = None && innermost_only_reductions t n)
  in
  if simd then push (Vectorize n.ndepth);
  { nest = n;
    steps = List.rev !steps;
    parallel_dim;
    simd;
    tile_depth;
    uses_skew;
    stride01;
    interchange;
    permutable }

let pp_suggestion fmt s =
  Format.fprintf fmt "nest depth %d (%d ops): " s.nest.Depanalysis.ndepth
    s.nest.Depanalysis.nweight;
  if s.steps = [] then Format.fprintf fmt "no transformation"
  else
    List.iteri
      (fun i st ->
        if i > 0 then Format.fprintf fmt "; ";
        pp_step fmt st)
      s.steps;
  Format.fprintf fmt " [stride01:";
  Array.iter (fun f -> Format.fprintf fmt " %.0f%%" (100. *. f)) s.stride01;
  Format.fprintf fmt "]"
