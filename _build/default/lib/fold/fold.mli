(** Folding (paper §5 and companion report [29]): compress a stream of
    (iteration vector, label vector) pairs into a union of polyhedra,
    each carrying an affine function that reproduces the labels.

    For dynamic instructions the label is the produced integer value
    and/or accessed address (SCEV and stride recognition); for
    dependencies the label is the producer's iteration vector.

    The algorithm is geometric: it recognises domains of the form
    [lo_d(c_0..c_{d-1}) <= c_d <= hi_d(c_0..c_{d-1})] with affine bounds
    (rectangles, triangles, trapezoids — the shapes loop nests produce),
    piecewise if necessary, and verifies exactness by point counting.
    When a stream is too irregular (or too large to buffer) it
    over-approximates: bounding-box domains and/or unknown (top)
    labels. *)

type piece = {
  dom : Minisl.Polyhedron.t;
  labels : Minisl.Affine.t option array;
      (** one entry per label component; [None] means that component
          could not be expressed affinely over this piece (top) — the
          paper's label over-approximation is per component *)
  exact : bool;  (** whether [dom] contains exactly the folded points *)
  points : int;  (** number of points folded into this piece *)
  under : Minisl.Polyhedron.t option;
      (** for over-approximated pieces, a certified inner region every
          point of which was definitely iterated — the paper's §10
          future work ("under-approximation schemes in the DDG") *)
}

val piece_label_fn : piece -> Minisl.Affine.t array option
(** All label components, if every one of them folded affinely. *)

val pp_piece :
  ?names:string array -> ?label_names:string array -> Format.formatter
  -> piece -> unit

(** Streaming collector for one folding context. *)
module Collector : sig
  type t

  val create :
    ?cap:int -> ?max_pieces:int -> ?boundary_splits:bool ->
    ?per_component:bool -> dim:int -> label_dim:int -> unit -> t
  (** [cap] (default 100_000) bounds the number of buffered points; past
      it the collector switches to streaming over-approximation.
      [max_pieces] (default 16) bounds the number of exact pieces before
      widening.  [boundary_splits] (default true) enables splitting on
      first/last-iteration boundaries; [per_component] (default true)
      enables per-label-component over-approximation — both exist as
      knobs for the ablation benches. *)

  val add : t -> int array -> int array -> unit
  (** [add t coords label].  [coords] must have length [dim] and [label]
      length [label_dim]. *)

  val npoints : t -> int
  val dim : t -> int
  val result : t -> piece list
  (** Finalize (idempotent).  The union of the returned pieces covers all
      added points; pieces marked [exact] contain exactly their points. *)

  val is_affine : t -> bool
  (** After {!result}: all pieces exact with every label component
      affine. *)
end

val fold_points : dim:int -> label_dim:int -> (int array * int array) list -> piece list
(** One-shot folding of a point list (convenience for tests). *)
