(** Loop-event generation (paper Algorithms 1 and 2, unified).

    Consumes the raw control-event stream (jump / call / return) together
    with the static control structure recovered by Instrumentation I, and
    produces the stream of loop events: entry / iterate / exit for CFG
    loops and recursive components, plus block / call / return position
    events that drive the dynamic IIV of Algorithm 3. *)

type loop_ref =
  | Cfg_loop of { l_fid : int; loop : Cfg.Loopnest.loop }
  | Rec_comp of Cfg.Recset.component

val loop_name : loop_ref -> string

type t =
  | Enter of loop_ref * int * int
      (** E(L,H) / Ec(L,B): loop, destination fid, destination bid *)
  | Iterate of loop_ref * int * int  (** I / Ic / Ir *)
  | Exit of loop_ref * int * int  (** X / Xr *)
  | Block of int * int  (** N(B): local jump to (fid, bid) *)
  | Call_push of int * int  (** C(F,B): non-header call to (fid, entry bid) *)
  | Ret_pop of int * int  (** R(B): return resuming at (fid, bid) *)

val pp : Format.formatter -> t -> unit

type state

val create : Cfg.Cfg_builder.structure -> main:int -> state

val start : state -> t list
(** The initial [Block (main, 0)] event for entering [main].  If not
    called explicitly, it is delivered on the first call to {!feed}. *)

val feed : state -> Vm.Event.control -> t list
(** Translate one raw control event into its loop events, in order. *)

val finish : state -> t list
(** Exit events for loops still live at the end of the trace. *)

val live_depth : state -> int
(** Number of currently live loops (for invariant checking in tests). *)
