type config = {
  stmt_cap : int;
  dep_cap : int;
  max_pieces : int;
  track_reg_deps : bool;
  track_waw : bool;
  scev_prune : bool;
  boundary_splits : bool;
  per_component_labels : bool;
}

let default_config =
  { stmt_cap = 100_000;
    dep_cap = 50_000;
    max_pieces = 16;
    track_reg_deps = true;
    track_waw = false;
    scev_prune = true;
    boundary_splits = true;
    per_component_labels = true }

type label_kind = Lvalue | Laddr | Lnone

type stmt_key = { s_ctx : int; s_sid : Vm.Isa.Sid.t }

type stmt_info = {
  sk : stmt_key;
  cls : Vm.Isa.op_class;
  s_count : int;
  s_pieces : Fold.piece list;
  label_kind : label_kind;
  is_scev : bool;
  affine_exact : bool;
  depth : int;
}

type dep_kind = Reg_dep | Mem_dep | Out_dep

type dep_key = {
  src_sid : Vm.Isa.Sid.t;
  src_ctx : int;
  dst_sid : Vm.Isa.Sid.t;
  dst_ctx : int;
  kind : dep_kind;
}

type dep_info = {
  dk : dep_key;
  d_count : int;
  d_pieces : Fold.piece list;
  src_depth : int;
  dst_depth : int;
}

type result = {
  stmts : stmt_info list;
  deps : dep_info list;
  pruned_dep_edges : int;
  total_dep_edges : int;
  stree : Sched_tree.t;
  cct : Cct.t;
  run_stats : Vm.Interp.stats;
  structure : Cfg.Cfg_builder.structure;
}

type stmt_rec = {
  collector : Fold.Collector.t;
  mutable count : int;
  r_cls : Vm.Isa.op_class;
  r_label : label_kind;
  mutable poisoned : bool;  (* saw a label of the wrong shape *)
  r_depth : int;
}

type dep_rec = {
  d_collector : Fold.Collector.t;
  mutable d_n : int;
  dr_src_depth : int;
  dr_dst_depth : int;
}

let label_kind_of prog sid =
  match Vm.Prog.instr_at prog sid with
  | Vm.Isa.Cmp _ | Vm.Isa.Fcmp _ -> Lnone
  | Vm.Isa.Load _ | Vm.Isa.Store _ -> Laddr
  | i -> (
      match Vm.Isa.class_of_instr i with
      | Vm.Isa.Int_alu -> Lvalue
      | Vm.Isa.Fp_alu | Vm.Isa.Mem_load | Vm.Isa.Mem_store | Vm.Isa.Other_op ->
          Lnone)

let profile ?(config = default_config) ?max_steps ?args prog ~structure =
  Iiv.reset_intern_table ();
  let iiv = Iiv.create () in
  let levents =
    Loop_events.create structure ~main:prog.Vm.Prog.main
  in
  let stree = Sched_tree.create () in
  let cct = Cct.create ~main:prog.Vm.Prog.main in
  let shadow = Shadow.create () in
  let stmts : (stmt_key, stmt_rec) Hashtbl.t = Hashtbl.create 512 in
  let deps : (dep_key, dep_rec) Hashtbl.t = Hashtbl.create 512 in

  let apply_levent ev =
    Iiv.update iiv ev;
    match ev with
    | Loop_events.Iterate _ ->
        Sched_tree.record_iteration stree ~ctx_key:(Iiv.context_id iiv)
          (Iiv.context iiv)
    | Loop_events.Enter _ | Loop_events.Exit _ | Loop_events.Block _
    | Loop_events.Call_push _ | Loop_events.Ret_pop _ ->
        ()
  in
  List.iter apply_levent (Loop_events.start levents);

  let on_control ev =
    Cct.on_control cct ev;
    (match ev with
    | Vm.Event.Call _ -> Shadow.push_frame shadow
    | Vm.Event.Return _ -> Shadow.pop_frame shadow
    | Vm.Event.Jump _ -> ());
    List.iter apply_levent (Loop_events.feed levents ev)
  in

  let stmt_rec_of ctx sid depth first_value =
    let key = { s_ctx = ctx; s_sid = sid } in
    match Hashtbl.find_opt stmts key with
    | Some r -> (key, r)
    | None ->
        let r_label =
          (* an integer-class instruction that turns out to carry a float
             (e.g. a Mov copying a loaded float) has no integer value to
             recognise a SCEV on: demote it to label-less *)
          match (label_kind_of prog sid, first_value) with
          | Lvalue, Some (Vm.Event.F _) -> Lnone
          | k, _ -> k
        in
        let label_dim = match r_label with Lnone -> 0 | Lvalue | Laddr -> 1 in
        let r =
          { collector =
              Fold.Collector.create ~cap:config.stmt_cap
                ~max_pieces:config.max_pieces
                ~boundary_splits:config.boundary_splits
                ~per_component:config.per_component_labels ~dim:depth
                ~label_dim ();
            count = 0;
            r_cls = (match Vm.Prog.instr_at prog sid with i -> Vm.Isa.class_of_instr i);
            r_label;
            poisoned = false;
            r_depth = depth }
        in
        Hashtbl.add stmts key r;
        (key, r)
  in

  let dep_rec_of key ~src_depth ~dst_depth =
    match Hashtbl.find_opt deps key with
    | Some r -> r
    | None ->
        let r =
          { d_collector =
              Fold.Collector.create ~cap:config.dep_cap
                ~max_pieces:config.max_pieces
                ~boundary_splits:config.boundary_splits
                ~per_component:config.per_component_labels ~dim:dst_depth
                ~label_dim:src_depth ();
            d_n = 0;
            dr_src_depth = src_depth;
            dr_dst_depth = dst_depth }
        in
        Hashtbl.add deps key r;
        r
  in

  let on_exec (e : Vm.Event.exec) =
    let ctx = Iiv.context_id iiv in
    let coords = Iiv.coords iiv in
    let depth = Array.length coords in
    Cct.add_weight cct 1;
    Sched_tree.record stree ~ctx_key:ctx (Iiv.context iiv) ~weight:1;
    (* statement domain + label *)
    let _, r = stmt_rec_of ctx e.sid depth e.value in
    r.count <- r.count + 1;
    (if Fold.Collector.dim r.collector = depth then begin
       let label =
         match r.r_label with
         | Lnone -> [||]
         | Lvalue -> (
             match e.value with
             | Some (Vm.Event.I v) -> [| v |]
             | Some (Vm.Event.F _) | None ->
                 r.poisoned <- true;
                 [| 0 |])
         | Laddr -> (
             match (e.addr_read, e.addr_written) with
             | Some a, _ | None, Some a -> [| a |]
             | None, None ->
                 r.poisoned <- true;
                 [| 0 |])
       in
       Fold.Collector.add r.collector coords label
     end
     else r.poisoned <- true);
    (* dependences: consult shadows before recording this instruction's
       own writes *)
    let record_dep kind (o : Shadow.origin) =
      let key =
        { src_sid = o.o_sid; src_ctx = o.o_ctx; dst_sid = e.sid; dst_ctx = ctx;
          kind }
      in
      let dr =
        dep_rec_of key ~src_depth:(Array.length o.o_coords) ~dst_depth:depth
      in
      dr.d_n <- dr.d_n + 1;
      if
        Fold.Collector.dim dr.d_collector = depth
        && Array.length o.o_coords = dr.dr_src_depth
      then Fold.Collector.add dr.d_collector coords o.o_coords
    in
    if config.track_reg_deps then
      List.iter
        (fun reg ->
          match Shadow.last_reg_writer shadow ~reg with
          | Some o -> record_dep Reg_dep o
          | None -> ())
        e.reads;
    (match e.addr_read with
    | Some addr -> (
        match Shadow.last_mem_writer shadow ~addr with
        | Some o -> record_dep Mem_dep o
        | None -> ())
    | None -> ());
    (match e.addr_written with
    | Some addr ->
        (if config.track_waw then
           match Shadow.last_mem_writer shadow ~addr with
           | Some o -> record_dep Out_dep o
           | None -> ());
        Shadow.write_mem shadow ~addr { o_sid = e.sid; o_ctx = ctx; o_coords = coords }
    | None -> ());
    match e.writes with
    | Some reg ->
        Shadow.write_reg shadow ~reg { o_sid = e.sid; o_ctx = ctx; o_coords = coords }
    | None -> ()
  in

  let run_stats =
    Vm.Interp.run ?max_steps ?args
      ~callbacks:{ Vm.Interp.on_control; on_exec }
      prog
  in
  List.iter apply_levent (Loop_events.finish levents);

  (* finalize statements *)
  let stmt_infos =
    Hashtbl.fold
      (fun sk r acc ->
        let pieces = Fold.Collector.result r.collector in
        let affine =
          (not r.poisoned) && Fold.Collector.is_affine r.collector
        in
        { sk;
          cls = r.r_cls;
          s_count = r.count;
          s_pieces = pieces;
          label_kind = r.r_label;
          is_scev = (r.r_label = Lvalue && affine);
          affine_exact = affine;
          depth = r.r_depth }
        :: acc)
      stmts []
  in
  let scev_set = Hashtbl.create 64 in
  List.iter
    (fun s -> if s.is_scev then Hashtbl.replace scev_set (s.sk.s_ctx, s.sk.s_sid) ())
    stmt_infos;
  (* SCEV pruning: drop dependence edges whose producer or consumer is a
     recognised scalar-evolution instruction *)
  let total_dep_edges = ref 0 in
  let pruned = ref 0 in
  let dep_infos =
    Hashtbl.fold
      (fun dk dr acc ->
        total_dep_edges := !total_dep_edges + dr.d_n;
        if
          config.scev_prune
          && (Hashtbl.mem scev_set (dk.src_ctx, dk.src_sid)
             || Hashtbl.mem scev_set (dk.dst_ctx, dk.dst_sid))
        then begin
          pruned := !pruned + dr.d_n;
          acc
        end
        else
          { dk;
            d_count = dr.d_n;
            d_pieces = Fold.Collector.result dr.d_collector;
            src_depth = dr.dr_src_depth;
            dst_depth = dr.dr_dst_depth }
          :: acc)
      deps []
  in
  { stmts = List.sort (fun a b -> compare a.sk b.sk) stmt_infos;
    deps = List.sort (fun a b -> compare a.dk b.dk) dep_infos;
    pruned_dep_edges = !pruned;
    total_dep_edges = !total_dep_edges;
    stree;
    cct;
    run_stats;
    structure }

let stmt_domain (s : stmt_info) =
  Minisl.Pset.of_polyhedra s.depth
    (List.map (fun (p : Fold.piece) -> p.Fold.dom) s.s_pieces)

let dep_map (d : dep_info) =
  let pieces =
    List.filter_map
      (fun (p : Fold.piece) ->
        match Fold.piece_label_fn p with
        | Some out -> Some { Minisl.Pmap.dom = p.Fold.dom; out }
        | None -> None)
      d.d_pieces
  in
  if List.length pieces = List.length d.d_pieces then
    Some (Minisl.Pmap.make ~in_dim:d.dst_depth ~out_dim:d.src_depth pieces)
  else None
