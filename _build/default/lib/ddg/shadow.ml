type origin = {
  o_sid : Vm.Isa.Sid.t;
  o_ctx : int;
  o_coords : int array;
}

type t = {
  mem : (int, origin) Hashtbl.t;
  mutable frames : (int, origin) Hashtbl.t list;
}

let create () = { mem = Hashtbl.create 4096; frames = [ Hashtbl.create 16 ] }
let write_mem t ~addr origin = Hashtbl.replace t.mem addr origin
let last_mem_writer t ~addr = Hashtbl.find_opt t.mem addr
let push_frame t = t.frames <- Hashtbl.create 16 :: t.frames

let pop_frame t =
  match t.frames with
  | _ :: (_ :: _ as rest) -> t.frames <- rest
  | _ -> invalid_arg "Shadow.pop_frame: unbalanced"

let top t = match t.frames with f :: _ -> f | [] -> assert false
let write_reg t ~reg origin = Hashtbl.replace (top t) reg origin
let last_reg_writer t ~reg = Hashtbl.find_opt (top t) reg
let frame_depth t = List.length t.frames
let n_shadowed_words t = Hashtbl.length t.mem
