(** Shadow memory and shadow registers for dependence tracking (§9,
    "shadow memory records a piece of information for each storage
    location — for dependency tracking, the last dynamic instruction
    that modified that location"). *)

type origin = {
  o_sid : Vm.Isa.Sid.t;
  o_ctx : int;  (** interned context id of the producer *)
  o_coords : int array;  (** producer iteration vector *)
}

type t

val create : unit -> t

(** Memory shadow: word-addressed. *)

val write_mem : t -> addr:int -> origin -> unit
val last_mem_writer : t -> addr:int -> origin option

(** Register shadow, with one scope per call frame. *)

val push_frame : t -> unit
val pop_frame : t -> unit
val write_reg : t -> reg:int -> origin -> unit
val last_reg_writer : t -> reg:int -> origin option
val frame_depth : t -> int
val n_shadowed_words : t -> int
