type node = {
  elt : Iiv.ctx_id option;
  static_index : int;
  mutable self_weight : int;
  mutable iterations : int;
  children : (Iiv.ctx_id, node) Hashtbl.t;
  mutable child_order : Iiv.ctx_id list;
}

type t = {
  sroot : node;
  leaf_memo : (int, node) Hashtbl.t;
  loop_memo : (int, node) Hashtbl.t;
}

let mk_node elt static_index =
  { elt;
    static_index;
    self_weight = 0;
    iterations = 0;
    children = Hashtbl.create 4;
    child_order = [] }

let create () =
  { sroot = mk_node None 0;
    leaf_memo = Hashtbl.create 256;
    loop_memo = Hashtbl.create 256 }

let child_of n c =
  match Hashtbl.find_opt n.children c with
  | Some x -> x
  | None ->
      let x = mk_node (Some c) (Hashtbl.length n.children) in
      Hashtbl.add n.children c x;
      n.child_order <- c :: n.child_order;
      x

let flatten (ctx : Iiv.context) = List.concat ctx

let leaf_for t ~ctx_key ctx =
  match Hashtbl.find_opt t.leaf_memo ctx_key with
  | Some n -> n
  | None ->
      let n = List.fold_left child_of t.sroot (flatten ctx) in
      Hashtbl.add t.leaf_memo ctx_key n;
      n

let record t ~ctx_key ctx ~weight =
  let n = leaf_for t ~ctx_key ctx in
  n.self_weight <- n.self_weight + weight

let is_loop_elt = function
  | Iiv.Cloop _ | Iiv.Ccomp _ -> true
  | Iiv.Cblock _ -> false

let record_iteration t ~ctx_key ctx =
  let n =
    match Hashtbl.find_opt t.loop_memo ctx_key with
    | Some n -> n
    | None ->
        (* path down to the innermost loop element of the context *)
        let path = flatten ctx in
        let rec last_loop acc best = function
          | [] -> best
          | c :: rest ->
              let acc = c :: acc in
              if is_loop_elt c then last_loop acc (Some (List.rev acc)) rest
              else last_loop acc best rest
        in
        let n =
          match last_loop [] None path with
          | Some p -> List.fold_left child_of t.sroot p
          | None -> t.sroot
        in
        Hashtbl.add t.loop_memo ctx_key n;
        n
  in
  n.iterations <- n.iterations + 1

let root t = t.sroot

let rec total_weight n =
  Hashtbl.fold (fun _ c acc -> acc + total_weight c) n.children n.self_weight

let children_in_order n =
  List.rev_map (fun k -> Hashtbl.find n.children k) n.child_order

let rec node_depth n =
  Hashtbl.fold (fun _ c acc -> max acc (1 + node_depth c)) n.children 0

let depth t = node_depth t.sroot

let rec count_nodes n =
  Hashtbl.fold (fun _ c acc -> acc + count_nodes c) n.children 1

let n_nodes t = count_nodes t.sroot

let is_loop_node n = match n.elt with Some e -> is_loop_elt e | None -> false

let kelly_path t ctx =
  let rec go n = function
    | [] -> []
    | c :: rest -> (
        match Hashtbl.find_opt n.children c with
        | None -> []
        | Some child -> (child.static_index, c) :: go child rest)
  in
  go t.sroot (flatten ctx)

let default_name c = Format.asprintf "%a" Iiv.pp_ctx_id c

let pp ?(name = default_name) fmt t =
  let rec go indent n =
    (match n.elt with
    | None -> Format.fprintf fmt "%sroot@\n" indent
    | Some e ->
        Format.fprintf fmt "%s%s(%d)%s w=%d%s@\n" indent (name e) n.static_index
          (if is_loop_node n then " (i)" else "")
          n.self_weight
          (if n.iterations > 0 then Printf.sprintf " iters=%d" n.iterations else ""));
    List.iter (go (indent ^ "  ")) (children_in_order n)
  in
  go "" t.sroot
