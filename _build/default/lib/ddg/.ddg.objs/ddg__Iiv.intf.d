lib/ddg/iiv.mli: Format Loop_events
