lib/ddg/loop_events.ml: Cfg Format Hashtbl List Printf Vm
