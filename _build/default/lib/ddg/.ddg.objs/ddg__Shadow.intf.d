lib/ddg/shadow.mli: Vm
