lib/ddg/depprof.ml: Array Cct Cfg Fold Hashtbl Iiv List Loop_events Minisl Sched_tree Shadow Vm
