lib/ddg/cct.mli: Format Hashtbl Vm
