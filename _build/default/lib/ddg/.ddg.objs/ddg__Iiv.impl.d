lib/ddg/iiv.ml: Array Cfg Format Hashtbl List Loop_events
