lib/ddg/shadow.ml: Hashtbl List Vm
