lib/ddg/cct.ml: Format Hashtbl List Printf Vm
