lib/ddg/sched_tree.mli: Format Hashtbl Iiv
