lib/ddg/sched_tree.ml: Format Hashtbl Iiv List Printf
