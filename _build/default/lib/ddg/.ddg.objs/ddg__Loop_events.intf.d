lib/ddg/loop_events.mli: Cfg Format Vm
