lib/ddg/depprof.mli: Cct Cfg Fold Minisl Sched_tree Vm
