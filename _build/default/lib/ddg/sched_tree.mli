(** The dynamic schedule tree (paper §4, Fig. 3e/j and Fig. 5): the
    union of Kelly's schedule tree and the calling-context tree.  Nodes
    are context identifiers; loop and recursive-component nodes carry a
    canonical induction variable; children are numbered by Kelly static
    indices in first-execution order.  Folding recursion keeps the tree
    depth bounded by the loop depth, not the recursion depth. *)

type node = {
  elt : Iiv.ctx_id option;  (** [None] for the root *)
  static_index : int;  (** Kelly index among siblings *)
  mutable self_weight : int;  (** dynamic instructions at this exact node *)
  mutable iterations : int;  (** for loop nodes: observed iteration count *)
  children : (Iiv.ctx_id, node) Hashtbl.t;
  mutable child_order : Iiv.ctx_id list;  (** reverse first-seen *)
}

type t

val create : unit -> t
val record : t -> ctx_key:int -> Iiv.context -> weight:int -> unit
(** Attribute [weight] dynamic instructions to the leaf reached by the
    flattened context path; memoised on [ctx_key]. *)

val record_iteration : t -> ctx_key:int -> Iiv.context -> unit
(** Bump the iteration count of the innermost loop node of the context. *)

val root : t -> node
val total_weight : node -> int
val children_in_order : node -> node list
val depth : t -> int
val n_nodes : t -> int

val is_loop_node : node -> bool

val kelly_path : t -> Iiv.context -> (int * Iiv.ctx_id) list
(** The static-index-decorated path to the context's leaf: Kelly's
    mapping of the statement (paper Fig. 4c), interleaving static indices
    with the context elements. *)

val pp : ?name:(Iiv.ctx_id -> string) -> Format.formatter -> t -> unit
