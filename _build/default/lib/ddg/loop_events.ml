type loop_ref =
  | Cfg_loop of { l_fid : int; loop : Cfg.Loopnest.loop }
  | Rec_comp of Cfg.Recset.component

let loop_name = function
  | Cfg_loop { l_fid; loop } -> Printf.sprintf "f%d.L%d" l_fid loop.Cfg.Loopnest.loop_id
  | Rec_comp c -> Printf.sprintf "RC%d" c.Cfg.Recset.comp_id

type t =
  | Enter of loop_ref * int * int
  | Iterate of loop_ref * int * int
  | Exit of loop_ref * int * int
  | Block of int * int
  | Call_push of int * int
  | Ret_pop of int * int

let subscript = function Cfg_loop _ -> "" | Rec_comp _ -> "c"

let pp fmt = function
  | Enter (l, f, b) ->
      Format.fprintf fmt "E%s(%s, f%d.b%d)" (subscript l) (loop_name l) f b
  | Iterate (l, f, b) ->
      Format.fprintf fmt "I%s(%s, f%d.b%d)" (subscript l) (loop_name l) f b
  | Exit (l, f, b) ->
      Format.fprintf fmt "X%s(%s, f%d.b%d)"
        (match l with Cfg_loop _ -> "" | Rec_comp _ -> "r")
        (loop_name l) f b
  | Block (f, b) -> Format.fprintf fmt "N(f%d.b%d)" f b
  | Call_push (f, b) -> Format.fprintf fmt "C(f%d.b%d)" f b
  | Ret_pop (f, b) -> Format.fprintf fmt "R(f%d.b%d)" f b

type stack_entry = Loop_live of loop_ref | Frame of int

type comp_state = { mutable stackcount : int; mutable centry : int option }

type state = {
  structure : Cfg.Cfg_builder.structure;
  mutable stack : stack_entry list;  (* top first *)
  mutable started : bool;
  main : int;
  comp_states : (int, comp_state) Hashtbl.t;
}

let create structure ~main =
  { structure;
    stack = [ Frame main ];
    started = false;
    main;
    comp_states = Hashtbl.create 4 }

let comp_state st (c : Cfg.Recset.component) =
  match Hashtbl.find_opt st.comp_states c.comp_id with
  | Some s -> s
  | None ->
      let s = { stackcount = 0; centry = None } in
      Hashtbl.add st.comp_states c.comp_id s;
      s

let forest st fid =
  match Cfg.Cfg_builder.forest_of st.structure fid with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Loop_events: no CFG for f%d" fid)

let same_cfg_loop a fid (l : Cfg.Loopnest.loop) =
  match a with
  | Cfg_loop { l_fid; loop } -> l_fid = fid && loop.Cfg.Loopnest.loop_id = l.Cfg.Loopnest.loop_id
  | Rec_comp _ -> false

(* Algorithm 1: loop events from a local jump. *)
let on_jump st ~fid ~dst =
  let events = ref [] in
  let emit e = events := e :: !events in
  (* exit live loops of the current frame that do not contain [dst] *)
  let rec pop_exited () =
    match st.stack with
    | Loop_live (Cfg_loop { l_fid; loop }) :: rest
      when l_fid = fid && not (Cfg.Loopnest.loop_contains loop dst) ->
        st.stack <- rest;
        emit (Exit (Cfg_loop { l_fid; loop }, fid, dst));
        pop_exited ()
    | _ -> ()
  in
  pop_exited ();
  (match Cfg.Loopnest.loop_of_header (forest st fid) dst with
  | Some l -> (
      match st.stack with
      | Loop_live top :: _ when same_cfg_loop top fid l ->
          emit (Iterate (Cfg_loop { l_fid = fid; loop = l }, fid, dst))
      | _ ->
          let lr = Cfg_loop { l_fid = fid; loop = l } in
          st.stack <- Loop_live lr :: st.stack;
          emit (Enter (lr, fid, dst)))
  | None -> ());
  emit (Block (fid, dst));
  List.rev !events

(* Algorithm 2, call part. *)
let on_call st ~callee =
  let events = ref [] in
  let emit e = events := e :: !events in
  let recset = st.structure.Cfg.Cfg_builder.recset in
  (match Cfg.Recset.component_of recset callee with
  | Some c when Cfg.Recset.is_entry recset callee && (comp_state st c).centry = None
    ->
      let cs = comp_state st c in
      cs.centry <- Some callee;
      st.stack <- Loop_live (Rec_comp c) :: st.stack;
      emit (Enter (Rec_comp c, callee, 0))
  | Some c when Cfg.Recset.is_header recset callee ->
      (* iteration of the recursive loop: all live CFG loops of member
         functions (they all are, between here and the component entry)
         are exited *)
      let cs = comp_state st c in
      let rec pop_members acc = function
        | Loop_live (Cfg_loop ll) :: rest ->
            emit (Exit (Cfg_loop ll, callee, 0));
            pop_members acc rest
        | (Loop_live (Rec_comp c') :: _) as stack
          when c'.Cfg.Recset.comp_id = c.Cfg.Recset.comp_id ->
            List.rev_append acc stack
        | Frame f :: rest -> pop_members (Frame f :: acc) rest
        | Loop_live (Rec_comp _) :: rest ->
            (* a disjoint component cannot be live strictly inside [c]
               while iterating [c]; be defensive and keep it *)
            pop_members acc rest
        | [] -> List.rev acc
      in
      st.stack <- pop_members [] st.stack;
      cs.stackcount <- cs.stackcount + 1;
      emit (Iterate (Rec_comp c, callee, 0))
  | Some _ | None -> emit (Call_push (callee, 0)));
  st.stack <- Frame callee :: st.stack;
  List.rev !events

(* Algorithm 2, return part. *)
let on_return st ~callee ~caller ~dst =
  let events = ref [] in
  let emit e = events := e :: !events in
  (* exit the returning function's still-live CFG loops, then pop its
     frame marker *)
  let rec unwind () =
    match st.stack with
    | Loop_live (Cfg_loop ll) :: rest ->
        st.stack <- rest;
        emit (Exit (Cfg_loop ll, caller, dst));
        unwind ()
    | Frame f :: rest ->
        assert (f = callee);
        st.stack <- rest
    | Loop_live (Rec_comp _) :: _ | [] ->
        invalid_arg "Loop_events: unbalanced return"
  in
  unwind ();
  let recset = st.structure.Cfg.Cfg_builder.recset in
  (match Cfg.Recset.component_of recset callee with
  | Some c
    when (comp_state st c).centry = Some callee
         && (comp_state st c).stackcount = 0 ->
      (* the call that entered the recursive loop is unstacked: exit *)
      let cs = comp_state st c in
      cs.centry <- None;
      (match st.stack with
      | Loop_live (Rec_comp c') :: rest when c'.Cfg.Recset.comp_id = c.comp_id ->
          st.stack <- rest
      | _ -> invalid_arg "Loop_events: recursive component not on top at exit");
      emit (Exit (Rec_comp c, caller, dst))
  | Some c when Cfg.Recset.is_header recset callee ->
      let cs = comp_state st c in
      cs.stackcount <- cs.stackcount - 1;
      emit (Iterate (Rec_comp c, caller, dst))
  | Some _ | None ->
      emit (Ret_pop (caller, dst));
      (* the continuation block may itself be a loop header (paper Alg. 2
         line 24 falls through to Alg. 1) *)
      (match Cfg.Loopnest.loop_of_header (forest st caller) dst with
      | Some l -> (
          match st.stack with
          | Loop_live top :: _ when same_cfg_loop top caller l ->
              emit (Iterate (Cfg_loop { l_fid = caller; loop = l }, caller, dst))
          | _ ->
              let lr = Cfg_loop { l_fid = caller; loop = l } in
              st.stack <- Loop_live lr :: st.stack;
              emit (Enter (lr, caller, dst)))
      | None -> ()));
  List.rev !events

let start st =
  if st.started then []
  else begin
    st.started <- true;
    [ Block (st.main, 0) ]
  end

let feed st (ev : Vm.Event.control) =
  let prefix = start st in
  let events =
    match ev with
    | Vm.Event.Jump { fid; src = _; dst } -> on_jump st ~fid ~dst
    | Vm.Event.Call { caller = _; site = _; callee; dst = _ } ->
        on_call st ~callee
    | Vm.Event.Return { callee; caller; dst } -> on_return st ~callee ~caller ~dst
  in
  prefix @ events

let finish st =
  let events = ref [] in
  List.iter
    (function
      | Loop_live lr -> events := Exit (lr, -1, -1) :: !events
      | Frame _ -> ())
    st.stack;
  st.stack <- [];
  List.rev !events

let live_depth st =
  List.length
    (List.filter (function Loop_live _ -> true | Frame _ -> false) st.stack)
