(** Calling-context tree (Ammons–Ball–Larus), with call-site labelled
    edges as in paper Fig. 3h.  Unlike the dynamic IIV, the CCT does not
    fold recursion: its depth grows with the recursion depth — the
    comparison made in Fig. 5a. *)

type node = {
  func : int;
  site : int;  (** call-site block id in the parent, -1 for the root *)
  mutable weight : int;  (** dynamic instructions executed in this context *)
  mutable calls : int;  (** times this context was (re-)entered *)
  children : (int * int, node) Hashtbl.t;  (** (site, callee) -> child *)
  mutable child_order : (int * int) list;  (** reverse first-seen order *)
}

type t

val create : main:int -> t
val on_control : t -> Vm.Event.control -> unit
val add_weight : t -> int -> unit
(** Attribute dynamic instructions to the current context. *)

val root : t -> node
val cur_depth : t -> int
val max_depth : t -> int
val n_nodes : t -> int
val total_weight : node -> int
val children_in_order : node -> node list
val pp : ?fname:(int -> string) -> Format.formatter -> t -> unit
