(** "Instrumentation II" (paper §4–§5): profile the dynamic dependence
    graph of an execution.

    Each dynamic instruction is tagged with its dynamic IIV; dependences
    are discovered through shadow memory (for loads/stores) and shadow
    registers (per call frame), and streamed, together with statement
    domains and value/address labels, into per-context folding
    collectors.  The result is the compact polyhedral DDG: folded
    statement domains with SCEV/stride information and folded dependence
    relations, SCEV-pruned (§5, "SCEV recognition"). *)

type config = {
  stmt_cap : int;  (** buffered points per statement before widening *)
  dep_cap : int;
  max_pieces : int;
  track_reg_deps : bool;
  track_waw : bool;  (** also record output (write-after-write) deps *)
  scev_prune : bool;  (** drop dep edges touching SCEV statements (§5) *)
  boundary_splits : bool;  (** folding ablation knob *)
  per_component_labels : bool;  (** folding ablation knob *)
}

val default_config : config

type label_kind = Lvalue | Laddr | Lnone

type stmt_key = { s_ctx : int; s_sid : Vm.Isa.Sid.t }

type stmt_info = {
  sk : stmt_key;
  cls : Vm.Isa.op_class;
  s_count : int;  (** dynamic executions *)
  s_pieces : Fold.piece list;  (** folded domain; labels per [label_kind] *)
  label_kind : label_kind;
  is_scev : bool;  (** integer value expressible as an affine function *)
  affine_exact : bool;  (** domain folded exactly with affine labels *)
  depth : int;  (** iteration-vector dimensionality *)
}

type dep_kind = Reg_dep | Mem_dep | Out_dep

type dep_key = {
  src_sid : Vm.Isa.Sid.t;
  src_ctx : int;
  dst_sid : Vm.Isa.Sid.t;
  dst_ctx : int;
  kind : dep_kind;
}

type dep_info = {
  dk : dep_key;
  d_count : int;
  d_pieces : Fold.piece list;
      (** domain: consumer coordinates; labels: producer coordinates *)
  src_depth : int;
  dst_depth : int;
}

type result = {
  stmts : stmt_info list;
  deps : dep_info list;  (** with SCEV-producer/consumer edges pruned *)
  pruned_dep_edges : int;  (** dynamic dep edges dropped by SCEV pruning *)
  total_dep_edges : int;
  stree : Sched_tree.t;
  cct : Cct.t;
  run_stats : Vm.Interp.stats;
  structure : Cfg.Cfg_builder.structure;
}

val profile :
  ?config:config ->
  ?max_steps:int ->
  ?args:int list ->
  Vm.Prog.t ->
  structure:Cfg.Cfg_builder.structure ->
  result
(** Run the program under Instrumentation II.  [structure] comes from a
    previous Instrumentation-I run ({!Cfg.Cfg_builder.run}). *)

val stmt_domain : stmt_info -> Minisl.Pset.t
val dep_map : dep_info -> Minisl.Pmap.t option
(** The dependence as a piecewise affine map consumer -> producer; [None]
    if any piece has unknown (top) labels. *)
