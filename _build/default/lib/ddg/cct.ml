type node = {
  func : int;
  site : int;
  mutable weight : int;
  mutable calls : int;
  children : (int * int, node) Hashtbl.t;
  mutable child_order : (int * int) list;
}

type t = {
  nroot : node;
  mutable stack : node list;  (* top first; bottom = root *)
  mutable maxd : int;
}

let mk_node func site =
  { func; site; weight = 0; calls = 1; children = Hashtbl.create 4; child_order = [] }

let create ~main =
  let nroot = mk_node main (-1) in
  { nroot; stack = [ nroot ]; maxd = 0 }

let top t = match t.stack with n :: _ -> n | [] -> t.nroot

let on_control t = function
  | Vm.Event.Jump _ -> ()
  | Vm.Event.Call { site; callee; _ } ->
      let parent = top t in
      let key = (site, callee) in
      let child =
        match Hashtbl.find_opt parent.children key with
        | Some c ->
            c.calls <- c.calls + 1;
            c
        | None ->
            let c = mk_node callee site in
            Hashtbl.add parent.children key c;
            parent.child_order <- key :: parent.child_order;
            c
      in
      t.stack <- child :: t.stack;
      t.maxd <- max t.maxd (List.length t.stack - 1)
  | Vm.Event.Return _ -> (
      match t.stack with
      | _ :: (_ :: _ as rest) -> t.stack <- rest
      | _ -> invalid_arg "Cct: unbalanced return")

let add_weight t w =
  let n = top t in
  n.weight <- n.weight + w

let root t = t.nroot
let cur_depth t = List.length t.stack - 1
let max_depth t = t.maxd

let rec count_nodes n =
  Hashtbl.fold (fun _ c acc -> acc + count_nodes c) n.children 1

let n_nodes t = count_nodes t.nroot

let children_in_order n =
  List.rev_map (fun k -> Hashtbl.find n.children k) n.child_order

let rec total_weight n =
  Hashtbl.fold (fun _ c acc -> acc + total_weight c) n.children n.weight

let pp ?(fname = fun f -> "f" ^ string_of_int f) fmt t =
  let rec go indent n =
    Format.fprintf fmt "%s%s%s w=%d calls=%d@\n" indent (fname n.func)
      (if n.site >= 0 then Printf.sprintf "(b%d)" n.site else "")
      n.weight n.calls;
    List.iter (go (indent ^ "  ")) (children_in_order n)
  in
  go "" t.nroot
