lib/kernels/gems_kernels.mli:
