lib/kernels/backprop_kernels.ml: Array
