lib/kernels/backprop_kernels.mli:
