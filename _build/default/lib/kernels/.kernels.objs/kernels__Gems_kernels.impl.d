lib/kernels/gems_kernels.ml: Array
