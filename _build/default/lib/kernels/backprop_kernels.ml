type t = {
  n1 : int;
  n2 : int;
  l1 : float array;
  l2 : float array;
  conn : float array;
  delta : float array;
  oldw : float array;
}

let squash x = x /. (1.0 +. (x *. x))

let create ~n1 ~n2 =
  let fill n f = Array.init n f in
  { n1;
    n2;
    l1 = fill (n1 + 1) (fun i -> float_of_int ((i * 7 mod 23) - 11) /. 17.0);
    l2 = Array.make (n2 + 1) 0.0;
    conn =
      fill ((n1 + 1) * (n2 + 1)) (fun i ->
          float_of_int ((i * 13 mod 101) - 50) /. 99.0);
    delta = fill (n2 + 1) (fun i -> float_of_int (i mod 5) /. 7.0);
    oldw = fill ((n1 + 1) * (n2 + 1)) (fun i -> float_of_int (i mod 3) /. 5.0) }

(* Fig. 6: j outer, k inner; conn is traversed with stride n2+1. *)
let layerforward_original t =
  let w = t.n2 + 1 in
  t.l1.(0) <- 1.0;
  for j = 1 to t.n2 do
    let sum = ref 0.0 in
    for k = 0 to t.n1 do
      sum := !sum +. (t.conn.((k * w) + j) *. t.l1.(k))
    done;
    t.l2.(j) <- squash !sum
  done

(* Suggested: interchange + array expansion of sum; conn now stride 1. *)
let layerforward_interchanged t =
  let w = t.n2 + 1 in
  t.l1.(0) <- 1.0;
  let sums = Array.make w 0.0 in
  for k = 0 to t.n1 do
    let row = k * w in
    let l1k = t.l1.(k) in
    for j = 1 to t.n2 do
      sums.(j) <- sums.(j) +. (t.conn.(row + j) *. l1k)
    done
  done;
  for j = 1 to t.n2 do
    t.l2.(j) <- squash sums.(j)
  done

let eta = 0.3
let momentum = 0.3

let adjust_original t =
  let w = t.n2 + 1 in
  for j = 1 to t.n2 do
    for k = 0 to t.n1 do
      let idx = (k * w) + j in
      let newdw = (eta *. t.delta.(j) *. t.l1.(k)) +. (momentum *. t.oldw.(idx)) in
      t.conn.(idx) <- t.conn.(idx) +. newdw;
      t.oldw.(idx) <- newdw
    done
  done

let adjust_interchanged t =
  let w = t.n2 + 1 in
  for k = 0 to t.n1 do
    let row = k * w in
    let l1k = t.l1.(k) in
    for j = 1 to t.n2 do
      let idx = row + j in
      let newdw = (eta *. t.delta.(j) *. l1k) +. (momentum *. t.oldw.(idx)) in
      t.conn.(idx) <- t.conn.(idx) +. newdw;
      t.oldw.(idx) <- newdw
    done
  done

let checksum t =
  Array.fold_left ( +. ) 0.0 t.l2
  +. Array.fold_left ( +. ) 0.0 t.oldw
  +. Array.fold_left ( +. ) 0.0 t.conn
