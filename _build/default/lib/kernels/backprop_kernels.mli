(** Native OCaml implementations of the backprop case-study kernels
    (paper §7, Table 3), in their original form and with the
    transformation POLY-PROF suggests (loop interchange + scalar
    expansion of [sum]), so the speedup measurement can be reproduced on
    this machine. *)

type t = {
  n1 : int;  (** input layer size *)
  n2 : int;  (** output layer size *)
  l1 : float array;  (** n1 + 1 *)
  l2 : float array;  (** n2 + 1 *)
  conn : float array;  (** (n1+1) * (n2+1), row-major [k][j] *)
  delta : float array;  (** n2 + 1 *)
  oldw : float array;  (** (n1+1) * (n2+1) *)
}

val create : n1:int -> n2:int -> t
(** Deterministically initialised problem instance. *)

val layerforward_original : t -> unit
(** Fig. 6: [for j { sum = 0; for k sum += conn[k][j]*l1[k]; l2[j] = squash sum }] —
    column-major traversal of [conn]. *)

val layerforward_interchanged : t -> unit
(** The suggested transformation: k outer, j inner (stride-1 over
    [conn]), [sum] array-expanded. *)

val adjust_original : t -> unit
(** bpnn_adjust_weights with the original (j outer, k inner) order. *)

val adjust_interchanged : t -> unit
(** Interchanged (k outer, j inner): every access stride-0/1. *)

val checksum : t -> float
(** For validating that variants compute the same result. *)
