(** Native OCaml implementations of the GemsFDTD case-study kernels
    (paper §7, Table 4): a 3-D field update in its original form and
    tiled along all three dimensions with tile size 32, the
    transformation POLY-PROF suggests. *)

type t = {
  n : int;  (** grid edge *)
  h_field : float array;  (** n^3 (padded) *)
  e_field : float array;
}

val create : n:int -> t

val update_original : t -> unit
(** The updateH_homo-like triple nest. *)

val update_tiled : ?tile:int -> t -> unit
(** Same computation, tiled along all three dims (default tile 32). *)

val checksum : t -> float
