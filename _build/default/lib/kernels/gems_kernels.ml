type t = { n : int; h_field : float array; e_field : float array }

let create ~n =
  let sz = (n + 1) * (n + 1) * (n + 1) in
  { n;
    h_field = Array.init sz (fun i -> float_of_int ((i * 31 mod 199) - 99) /. 211.0);
    e_field = Array.init sz (fun i -> float_of_int ((i * 17 mod 157) - 78) /. 163.0) }

(* The Fortran arrays are column-major; compiled to a linear layout the
   update loops traverse the grid with the large stride innermost, which
   is what the profiled binary of the case study executes. *)
let update_point t i =
  let s = t.n + 1 in
  let h = t.h_field and e = t.e_field in
  let e0 = e.(i) in
  h.(i) <-
    h.(i)
    +. (0.5
       *. (e.(i + 1) -. e0 +. (e.(i + s) -. e0) +. (e.(i + (s * s)) -. e0)))

let update_original t =
  let n = t.n in
  let s = n + 1 in
  for z = 0 to n - 2 do
    for y = 0 to n - 2 do
      for x = 0 to n - 2 do
        (* x innermost: stride s*s *)
        update_point t (((x * s) + y) * s + z)
      done
    done
  done

(* The suggested transformation: tile all three dimensions (size 32), so
   each tile's working set stays in cache despite the bad stride. *)
let update_tiled ?(tile = 32) t =
  let n = t.n in
  let s = n + 1 in
  let lim = n - 2 in
  let zt = ref 0 in
  while !zt <= lim do
    let yt = ref 0 in
    while !yt <= lim do
      let xt = ref 0 in
      while !xt <= lim do
        for z = !zt to min lim (!zt + tile - 1) do
          for y = !yt to min lim (!yt + tile - 1) do
            for x = !xt to min lim (!xt + tile - 1) do
              update_point t (((x * s) + y) * s + z)
            done
          done
        done;
        xt := !xt + tile
      done;
      yt := !yt + tile
    done;
    zt := !zt + tile
  done

let checksum t = Array.fold_left ( +. ) 0.0 t.h_field
