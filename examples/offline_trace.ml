(* Offline analysis: record an execution trace once, then run both
   instrumentation stages from the recorded trace — the way a real DBI
   pipeline separates trace collection from analysis.

   Run with:  dune exec examples/offline_trace.exe *)

let () =
  let w = Workloads.Bfs.workload in
  let prog = Vm.Hir.lower w.Workloads.Workload.hir in

  (* 1. record the trace (this is the only program execution) *)
  let trace, stats = Vm.Trace.record prog in
  Format.printf "recorded %d events (%d control, %d exec) from %d instructions@."
    (Vm.Trace.n_events trace) (Vm.Trace.n_control trace)
    (Vm.Trace.n_exec trace) stats.Vm.Interp.dyn_instrs;

  (* a trace can be saved and re-loaded (binary chunked codec) *)
  let path = Filename.temp_file "polyprof" ".trace" in
  let bytes = Stream.Trace_file.save ~stats trace path in
  Format.printf "saved %d events in %d bytes@." (Vm.Trace.n_events trace) bytes;
  let trace, _ = Stream.Trace_file.load path in
  Sys.remove path;

  (* 2. Instrumentation I from the trace: control-structure recovery *)
  let builder = Cfg.Cfg_builder.create prog in
  Vm.Trace.replay trace (Cfg.Cfg_builder.callbacks builder);
  let structure = Cfg.Cfg_builder.finalize builder in
  Format.printf "@.recovered structure:@.%a@." Cfg.Cfg_builder.pp_structure
    structure;

  (* 3. Instrumentation II still needs the concrete event stream; replay
     feeds it without re-executing (profile() below re-runs internally,
     so here we just show that the structure from the trace matches a
     live run) *)
  let live = Cfg.Cfg_builder.run prog in
  Format.printf "trace-recovered CFGs match a live run: %b@."
    (List.length structure.Cfg.Cfg_builder.cfgs
    = List.length live.Cfg.Cfg_builder.cfgs);

  let res = Ddg.Depprof.profile prog ~structure in
  Format.printf "profiled: %d folded statements, %d dependence relations@."
    (List.length res.Ddg.Depprof.stmts)
    (List.length res.Ddg.Depprof.deps)
