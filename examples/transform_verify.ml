(* Case study I, closed loop (paper §7, Table 3): backprop, but instead
   of only *printing* the suggested schedule, apply it to the HIR source
   and prove it right.

   The pipeline suggests, for the hot depth-3 nest of
   bpnn_adjust_weights (epoch > j > k):

     interchange(d2 <-> d3); tile(d1..d3, 32); omp parallel(d2); simd(d3)

   This walkthrough replays the whole closed loop by hand, using the
   same pieces `Polyprof.apply_and_verify` composes:

     1. profile the original program and extract the hottest plan;
     2. check the plan against the *profiled* direction vectors
        (static-side legality, Sched.Plan.legal);
     3. apply the steps as source-to-source rewrites on the HIR
        (Xform.Apply.apply_plan);
     4. run original and transformed in MiniVM and compare the final
        memory images (Xform.Verify.observable_equiv);
     5. re-profile the transformed program and check every re-folded
        dependence is still lexicographically non-negative
        (Xform.Verify.dynamic_legality);
     6. re-measure the stride-0/1 profile: the interchange promised to
        move the 100%-contiguous dimension innermost.

   Run with:  dune exec examples/transform_verify.exe *)

let () =
  let w = Workloads.Backprop.workload in
  let hir = w.Workloads.Workload.hir in
  let t = Polyprof.run_hir hir in

  (* 1. the suggested plans, hottest first *)
  let plans = Sched.Plan.plans_of_feedback t.Polyprof.feedback in
  let plan =
    match plans with
    | p :: _ -> p
    | [] -> failwith "no transformation plan suggested"
  in
  Format.printf "== hottest plan ==@.nest %s (%d ops):@."
    (Sched.Plan.describe plan) plan.Sched.Plan.p_weight;
  List.iter
    (fun s -> Format.printf "  %a@." Sched.Transform.pp_step s)
    plan.Sched.Plan.p_steps;

  (* 2. static-side legality from the profiled direction vectors *)
  let lg = Sched.Plan.legal t.Polyprof.analysis plan in
  Format.printf "@.== legality against the profiled direction vectors ==@.";
  Format.printf "%a@." Sched.Plan.pp_legality lg;
  if not lg.Sched.Plan.lg_ok then failwith "plan statically illegal?";

  (* 3. apply the steps to the HIR source *)
  let o =
    match Xform.Apply.apply_plan hir plan with
    | Ok o -> o
    | Error e -> failwith ("application failed: " ^ e)
  in
  Format.printf "@.== application ==@.";
  List.iter
    (fun a -> Format.printf "  applied: %a@." Xform.Apply.pp_applied a)
    o.Xform.Apply.o_applied;
  List.iter
    (fun (s, why) ->
      Format.printf "  partial: %a: %s@." Sched.Transform.pp_step s why)
    o.Xform.Apply.o_skipped;

  (* 4. differential run: the transformed program must compute the same
     final memory image *)
  let orig_prog = Vm.Hir.lower hir in
  let xform_prog = Vm.Hir.lower o.Xform.Apply.o_hir in
  let eq = Xform.Verify.observable_equiv orig_prog xform_prog in
  Format.printf "@.== observable equivalence ==@.%a@." Xform.Verify.pp_equiv eq;
  if not eq.Xform.Verify.eq_ok then failwith "transformed program diverges!";

  (* 5. re-profile and re-check every folded dependence *)
  let tx = Polyprof.run_hir o.Xform.Apply.o_hir in
  let dl = Xform.Verify.dynamic_legality tx.Polyprof.analysis in
  Format.printf "@.== dynamic legality of the re-folded DDG ==@.%a@."
    Xform.Verify.pp_legality dl;

  (* 6. profitability: Table 3's "% stride 0/1" moved innermost *)
  let innermost a = if Array.length a = 0 then 0.0 else a.(Array.length a - 1) in
  let before = innermost plan.Sched.Plan.p_stride01 in
  let after =
    List.fold_left
      (fun best (n : Sched.Depanalysis.nest_info) ->
        if n.Sched.Depanalysis.ndepth >= 3 && n.nweight > 1000 then
          max best (innermost (Sched.Transform.stride01_profile n))
        else best)
      0.0 tx.Polyprof.analysis.Sched.Depanalysis.nests
  in
  Format.printf
    "@.== profitability ==@.innermost stride-0/1: %.0f%% -> %.0f%%@."
    (100. *. before) (100. *. after);

  (* and the one-call version of all of the above, over every plan *)
  Format.printf "@.== Polyprof.apply_and_verify (all plans) ==@.";
  let s = Polyprof.apply_and_verify ~name:"backprop" hir in
  Format.printf "%a@." Xform.Driver.pp_summary s;
  if s.Xform.Driver.sm_rejected > 0 then exit 1
