(* Tests for trace recording / replay: the offline-analysis path. *)

open Vm.Hir.Dsl
module H = Vm.Hir

let program : H.program =
  { H.funs =
      [ H.fundef "helper" [ "x" ] [ H.Return (Some (v "x" *! i 3)) ];
        H.fundef "main" []
          [ H.for_ "k" (i 0) (i 6)
              [ H.CallS (Some "y", "helper", [ v "k" ]);
                store "out" (v "k") (v "y") ] ] ];
    arrays = [ ("out", 8) ];
    main = "main" }

let collect_events cb_sink prog =
  let log = ref [] in
  let callbacks =
    { Vm.Interp.on_control = (fun c -> log := `C c :: !log);
      on_exec = (fun e -> log := `E e.Vm.Event.sid :: !log) }
  in
  cb_sink callbacks prog;
  List.rev !log

let test_replay_equals_live () =
  let prog = H.lower program in
  let live =
    collect_events
      (fun cb p -> ignore (Vm.Interp.run ~callbacks:cb p))
      prog
  in
  let trace, stats = Vm.Trace.record prog in
  let replayed = collect_events (fun cb _ -> Vm.Trace.replay trace cb) prog in
  Alcotest.(check int) "same event count" (List.length live)
    (List.length replayed);
  Alcotest.(check bool) "same event sequence" true (live = replayed);
  Alcotest.(check int) "exec events = dyn instrs" stats.Vm.Interp.dyn_instrs
    (Vm.Trace.n_exec trace);
  Alcotest.(check int) "totals add up"
    (Vm.Trace.n_events trace)
    (Vm.Trace.n_control trace + Vm.Trace.n_exec trace)

let test_offline_profiling () =
  (* Instrumentation II from a recorded trace gives the same DDG as the
     live run *)
  let prog = H.lower program in
  let structure = Cfg.Cfg_builder.run prog in
  let live = Ddg.Depprof.profile prog ~structure in
  let trace, _ = Vm.Trace.record prog in
  (* replay instrumentation I from the trace too *)
  let t2 = Cfg.Cfg_builder.create prog in
  Vm.Trace.replay trace (Cfg.Cfg_builder.callbacks t2);
  let structure2 = Cfg.Cfg_builder.finalize t2 in
  Alcotest.(check int) "same number of CFGs"
    (List.length structure.Cfg.Cfg_builder.cfgs)
    (List.length structure2.Cfg.Cfg_builder.cfgs);
  ignore live

let test_save_load () =
  let prog = H.lower program in
  let trace, stats = Vm.Trace.record prog in
  let path = Filename.temp_file "polyprof" ".trace" in
  let bytes = Stream.Trace_file.save ~stats trace path in
  let loaded, loaded_stats = Stream.Trace_file.load path in
  Sys.remove path;
  Alcotest.(check bool) "wrote some bytes" true (bytes > 0);
  Alcotest.(check int) "event count survives" (Vm.Trace.n_events trace)
    (Vm.Trace.n_events loaded);
  Alcotest.(check bool) "stats trailer survives" true
    (loaded_stats = Some stats)

let test_load_rejects_garbage () =
  let path = Filename.temp_file "polyprof" ".trace" in
  let oc = open_out path in
  output_string oc "definitely not a trace file content";
  close_out oc;
  let rejected =
    try ignore (Stream.Trace_file.load path); false
    with Stream.Error _ -> true
  in
  Sys.remove path;
  Alcotest.(check bool) "garbage rejected" true rejected

let () =
  Alcotest.run "trace"
    [ ( "record/replay",
        [ Alcotest.test_case "replay equals live" `Quick test_replay_equals_live;
          Alcotest.test_case "offline instrumentation" `Quick
            test_offline_profiling;
          Alcotest.test_case "save/load" `Quick test_save_load;
          Alcotest.test_case "garbage rejected" `Quick test_load_rejects_garbage
        ] ) ]
