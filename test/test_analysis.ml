(* Tests for the static-analysis layer: bytecode verifier, definite
   initialization, dead-store lint, affine access classification and the
   static-vs-dynamic dependence cross-checker. *)

open Vm.Hir.Dsl
module H = Vm.Hir
module I = Vm.Isa
module P = Vm.Prog

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_invalid_arg substr f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_argument mentioning %S" substr
  | exception Invalid_argument m ->
      if not (contains m substr) then
        Alcotest.failf "Invalid_argument %S does not mention %S" m substr

let blk bid instrs term =
  { P.bid; instrs = Array.of_list instrs; term; block_loc = None }

let raw_prog ?(n_params = 0) blocks =
  { P.funcs =
      [| { P.fid = 0;
           fname = "main";
           n_params;
           blocks = Array.of_list blocks;
           blacklisted = false } |];
    main = 0;
    globals = [];
    mem_size = 64 }

let with_code code diags =
  List.filter (fun (d : Analysis.Diag.t) -> d.code = code) diags

(* ---------------- structural verifier ---------------- *)

let test_builder_rejects_bad_target () =
  let pb = P.Builder.create () in
  let fid = P.Builder.declare_func pb "main" ~n_params:0 in
  let fb = P.Builder.define_func pb fid in
  P.Builder.terminate fb 0 (I.Br (I.Imm 1, 5, 0));
  P.Builder.finish_func fb;
  expect_invalid_arg "targets block b5" (fun () ->
      P.Builder.finish pb ~main:"main")

let test_builder_rejects_unterminated () =
  let pb = P.Builder.create () in
  let fid = P.Builder.declare_func pb "main" ~n_params:0 in
  let fb = P.Builder.define_func pb fid in
  P.Builder.emit fb 0 (I.Const (0, 1));
  expect_invalid_arg "not terminated" (fun () -> P.Builder.finish_func fb)

let test_builder_rejects_bad_arity () =
  let pb = P.Builder.create () in
  let f = P.Builder.declare_func pb "callee" ~n_params:2 in
  let m = P.Builder.declare_func pb "main" ~n_params:0 in
  let fb = P.Builder.define_func pb f in
  P.Builder.terminate fb 0 (I.Ret None);
  P.Builder.finish_func fb;
  let mb = P.Builder.define_func pb m in
  let cont = P.Builder.fresh_block mb in
  P.Builder.terminate mb 0
    (I.Call { dst = None; callee = f; args = [ I.Imm 1 ]; cont });
  P.Builder.terminate mb cont I.Halt;
  P.Builder.finish_func mb;
  expect_invalid_arg "passes 1 argument but it declares 2 parameters"
    (fun () -> P.Builder.finish pb ~main:"main")

let test_verify_struct_error () =
  let prog = raw_prog [ blk 0 [] (I.Jump 7) ] in
  let errs = P.wf_errors prog in
  Alcotest.(check int) "one structural error" 1 (List.length errs);
  let diags = Analysis.Verify.verify prog in
  Alcotest.(check bool) "E-struct emitted" true
    (with_code "E-struct" diags <> []);
  Alcotest.(check bool) "verifier rejects" false (Analysis.Verify.ok prog);
  expect_invalid_arg "jump targets block b7" (fun () -> P.validate prog)

let test_verify_reg_out_of_range () =
  let prog = raw_prog [ blk 0 [ I.Const (99999, 1) ] I.Halt ] in
  Alcotest.(check bool) "huge register index rejected" true
    (P.wf_errors prog <> [])

let test_verify_unreachable () =
  let prog =
    raw_prog [ blk 0 [] I.Halt; blk 1 [ I.Const (0, 1) ] I.Halt ]
  in
  Alcotest.(check int) "structurally fine" 0 (List.length (P.wf_errors prog));
  let diags = Analysis.Verify.verify prog in
  match with_code "W-unreachable" diags with
  | [ d ] ->
      Alcotest.(check bool) "still verifies" true (Analysis.Verify.ok prog);
      Alcotest.(check (option int))
        "located at block 1" (Some (I.Sid.make ~fid:0 ~bid:1 ~idx:0)) d.sid
  | ds -> Alcotest.failf "expected 1 W-unreachable, got %d" (List.length ds)

let test_verify_ret_in_main () =
  let prog = raw_prog [ blk 0 [] (I.Ret None) ] in
  let diags = Analysis.Verify.verify prog in
  Alcotest.(check int) "E-ret-in-main" 1
    (List.length (with_code "E-ret-in-main" diags))

(* ---------------- definite initialization ---------------- *)

let test_initdef_catches_conditional_init () =
  (* r0 is initialized on the then-path only; the read in the join block
     is flagged at its exact static id *)
  let prog =
    raw_prog
      [ blk 0 [] (I.Br (I.Imm 1, 1, 2));
        blk 1 [ I.Const (0, 5) ] (I.Jump 3);
        blk 2 [] (I.Jump 3);
        blk 3 [ I.Mov (1, I.Reg 0); I.Store (I.Imm 16, I.Reg 1) ] I.Halt ]
  in
  (match with_code "W-uninit" (Analysis.Initdef.check prog) with
  | [ d ] ->
      Alcotest.(check (option int))
        "flagged at the read" (Some (I.Sid.make ~fid:0 ~bid:3 ~idx:0)) d.sid;
      Alcotest.(check bool) "names r0" true (contains d.message "r0")
  | ds -> Alcotest.failf "expected 1 W-uninit, got %d" (List.length ds));
  (* initializing on both paths silences it *)
  let clean =
    raw_prog
      [ blk 0 [] (I.Br (I.Imm 1, 1, 2));
        blk 1 [ I.Const (0, 5) ] (I.Jump 3);
        blk 2 [ I.Const (0, 6) ] (I.Jump 3);
        blk 3 [ I.Mov (1, I.Reg 0); I.Store (I.Imm 16, I.Reg 1) ] I.Halt ]
  in
  Alcotest.(check int) "both-path init is clean" 0
    (List.length (with_code "W-uninit" (Analysis.Initdef.check clean)))

let test_initdef_params_arrive_assigned () =
  let prog =
    { (raw_prog ~n_params:1
         [ blk 0 [ I.Store (I.Imm 16, I.Reg 0) ] I.Halt ])
      with main = 0 }
  in
  (* main with a param is unusual but initdef only cares about the frame *)
  Alcotest.(check int) "no W-uninit" 0
    (List.length (with_code "W-uninit" (Analysis.Initdef.check prog)))

(* ---------------- liveness / dead stores ---------------- *)

let test_liveness_dead_store () =
  let prog =
    raw_prog
      [ blk 0
          [ I.Const (0, 1);  (* dead: overwritten before any read *)
            I.Const (0, 2);
            I.Store (I.Imm 16, I.Reg 0) ]
          I.Halt ]
  in
  match with_code "W-dead-store" (Analysis.Liveness.check prog) with
  | [ d ] ->
      Alcotest.(check (option int))
        "first const flagged" (Some (I.Sid.make ~fid:0 ~bid:0 ~idx:0)) d.sid
  | ds -> Alcotest.failf "expected 1 W-dead-store, got %d" (List.length ds)

let test_liveness_across_blocks () =
  (* a def consumed only around the loop back edge is live *)
  let prog =
    raw_prog
      [ blk 0 [ I.Const (0, 0) ] (I.Jump 1);
        blk 1
          [ I.Bin (I.Add, 0, I.Reg 0, I.Imm 1); I.Cmp (I.Clt, 1, I.Reg 0, I.Imm 9) ]
          (I.Br (I.Reg 1, 1, 2));
        blk 2 [ I.Store (I.Imm 16, I.Reg 0) ] I.Halt ]
  in
  Alcotest.(check int) "no dead stores" 0
    (List.length (with_code "W-dead-store" (Analysis.Liveness.check prog)));
  Alcotest.(check (list int))
    "r0 live into the loop header" [ 0 ]
    (Analysis.Liveness.live_in prog.P.funcs.(0) 1)

(* ---------------- affine classification ---------------- *)

let analyse_main hir =
  let prog = H.lower hir in
  let frs = Analysis.Affine_class.analyse_prog prog in
  let fid = (P.func_by_name prog "main").P.fid in
  (prog, frs.(fid))

let base_of prog name =
  match
    List.find_opt (fun (n, _, _) -> n = name) prog.P.globals
  with
  | Some (_, base, _) -> base
  | None -> Alcotest.failf "no global %s" name

let test_affine_2d_nest () =
  let hir : H.program =
    { H.funs =
        [ H.fundef "main" []
            [ H.for_ "r" (i 0) (i 4)
                [ H.for_ "c" (i 0) (i 8)
                    [ store "a" ((v "r" *! i 8) +! v "c") (i 1) ] ] ] ];
      arrays = [ ("a", 32) ];
      main = "main" }
  in
  let prog, fr = analyse_main hir in
  let stores =
    List.filter
      (fun (a : Analysis.Affine_class.access) -> a.acc_store)
      fr.Analysis.Affine_class.fr_accesses
  in
  match stores with
  | [ a ] ->
      (match Analysis.Affine_class.classify a with
      | `Affine _ -> ()
      | `Nonaffine _ ->
          Alcotest.failf "a[8r+c] not affine: %s"
            (Format.asprintf "%a" Analysis.Affine_class.pp_access a));
      Alcotest.(check int) "depth 2" 2 a.acc_depth;
      let base = base_of prog "a" in
      Alcotest.(check (option (pair int int)))
        "range covers exactly the array" (Some (base, base + 31)) a.acc_range
  | _ -> Alcotest.failf "expected 1 store, got %d" (List.length stores)

let test_affine_indirect_is_nonaffine () =
  let hir : H.program =
    { H.funs =
        [ H.fundef "main" []
            [ H.for_ "k" (i 0) (i 4)
                [ (* a[2*idx[k]] — a loaded value scaled: code F *)
                  store "a" ("idx".%[v "k"] *! i 2) (i 1);
                  (* b[idx[k]] — a loaded value as additive root: code P *)
                  store "b" ("idx".%[v "k"]) (i 1) ] ] ];
      arrays = [ ("idx", 4); ("a", 8); ("b", 8) ];
      main = "main" }
  in
  let _, fr = analyse_main hir in
  let codes =
    List.filter_map
      (fun (a : Analysis.Affine_class.access) ->
        if a.acc_store then Some (Analysis.Affine_class.class_code a) else None)
      fr.Analysis.Affine_class.fr_accesses
  in
  Alcotest.(check (list string)) "store classifications" [ "F"; "P" ] codes;
  (* the idx[k] loads themselves are affine *)
  List.iter
    (fun (a : Analysis.Affine_class.access) ->
      if not a.acc_store then
        Alcotest.(check string)
          "idx[k] load is affine" "-"
          (Analysis.Affine_class.class_code a))
    fr.Analysis.Affine_class.fr_accesses

let test_affine_interprocedural_constants () =
  (* the kernel sees its trip count and base offset only through call
     arguments; constant propagation across the call makes the access
     ranged anyway *)
  let hir : H.program =
    { H.funs =
        [ H.fundef "kern" [ "off"; "n" ]
            [ H.for_ "k" (i 0) (v "n")
                [ store "a" (v "off" +! v "k") (i 1) ] ];
          H.fundef "main" [] [ H.CallS (None, "kern", [ i 2; i 5 ]) ] ];
      arrays = [ ("a", 8) ];
      main = "main" }
  in
  let prog = H.lower hir in
  let frs = Analysis.Affine_class.analyse_prog prog in
  let fid = (P.func_by_name prog "kern").P.fid in
  let stores =
    List.filter
      (fun (a : Analysis.Affine_class.access) -> a.acc_store)
      frs.(fid).Analysis.Affine_class.fr_accesses
  in
  match stores with
  | [ a ] ->
      let base = base_of prog "a" in
      Alcotest.(check (option (pair int int)))
        "a[2+k], k<5" (Some (base + 2, base + 6)) a.acc_range
  | _ -> Alcotest.failf "expected 1 store, got %d" (List.length stores)

(* ---------------- cross-checker ---------------- *)

let two_array_hir : H.program =
  { H.funs =
      [ H.fundef "main" []
          [ H.for_ "k" (i 0) (i 4)
              [ store "a" (v "k") (i 1); store "b" (v "k") (i 2) ] ] ];
    arrays = [ ("a", 4); ("b", 4) ];
    main = "main" }

let test_crosscheck_clean_and_seeded_violation () =
  let prog = H.lower two_array_hir in
  let structure = Cfg.Cfg_builder.run prog in
  let profile = Ddg.Depprof.profile prog ~structure in
  let report = Analysis.Crosscheck.check prog profile in
  Alcotest.(check bool) "real profile is clean" true
    (Analysis.Crosscheck.ok report);
  Alcotest.(check bool) "has independence facts" true
    (report.Analysis.Crosscheck.facts > 0);
  (* seed a fabricated mem dependence between the two (provably
     disjoint) stores: the checker must call it out *)
  let frs = Analysis.Affine_class.analyse_prog prog in
  let fid = (P.func_by_name prog "main").P.fid in
  let stores =
    List.filter
      (fun (a : Analysis.Affine_class.access) ->
        a.acc_store && a.acc_range <> None)
      frs.(fid).Analysis.Affine_class.fr_accesses
  in
  match stores with
  | [ sa; sb ] ->
      let fake : Ddg.Depprof.dep_info =
        { dk =
            { src_sid = sa.acc_sid;
              src_ctx = 0;
              dst_sid = sb.acc_sid;
              dst_ctx = 0;
              kind = Ddg.Depprof.Mem_dep };
          d_count = 1;
          d_pieces = [];
          src_depth = 1;
          dst_depth = 1 }
      in
      let tampered =
        { profile with Ddg.Depprof.deps = fake :: profile.Ddg.Depprof.deps }
      in
      let report = Analysis.Crosscheck.check prog tampered in
      (match report.Analysis.Crosscheck.violations with
      | [ d ] ->
          Alcotest.(check string) "code" "E-crosscheck" d.code;
          Alcotest.(check bool) "is an error" true (Analysis.Diag.is_error d)
      | ds -> Alcotest.failf "expected 1 violation, got %d" (List.length ds))
  | _ -> Alcotest.failf "expected 2 ranged stores, got %d" (List.length stores)

(* ---------------- agreement with the static Polly baseline -------- *)

let nonaffine_reasons fr =
  List.filter_map
    (fun a ->
      match Analysis.Affine_class.classify a with
      | `Affine _ -> None
      | `Nonaffine r -> Some r)
    fr.Analysis.Affine_class.fr_accesses

let all_affine_in hir fname =
  let prog = H.lower hir in
  let frs = Analysis.Affine_class.analyse_prog prog in
  let fid = (P.func_by_name prog fname).P.fid in
  nonaffine_reasons frs.(fid) = []

let polly_has_f hir fname =
  let v = Staticbase.Polly_lite.analyse_function hir fname in
  List.mem Staticbase.Polly_lite.F_nonaffine_access
    v.Staticbase.Polly_lite.reasons

let test_agreement_figure3 () =
  (* fig. 3 ex1: both the loop in B (parametric base) and the loop in A
     are affine for the bytecode classifier, and Polly agrees that no
     access function is non-affine *)
  List.iter
    (fun fname ->
      Alcotest.(check bool)
        (fname ^ " classified affine") true
        (all_affine_in Workloads.Figure3.ex1 fname);
      Alcotest.(check bool)
        (fname ^ " polly agrees (no F)") false
        (polly_has_f Workloads.Figure3.ex1 fname))
    [ "B"; "A" ]

let test_agreement_rodinia () =
  (* fully-modeled kernel: classifier sees it all-affine too *)
  let gems = Workloads.Gems_fdtd.workload in
  Alcotest.(check bool) "gems_fdtd kernel all affine" true
    (all_affine_in gems.Workloads.Workload.hir
       gems.Workloads.Workload.kernel_func);
  Alcotest.(check bool) "gems_fdtd polly has no F" false
    (polly_has_f gems.Workloads.Workload.hir
       gems.Workloads.Workload.kernel_func);
  (* kernels Polly rejects with F: the classifier must also find at
     least one non-affine access there (agreement in the other
     direction) *)
  List.iter
    (fun name ->
      let w = Workloads.Rodinia.find name in
      Alcotest.(check bool)
        (name ^ " polly reports F") true
        (polly_has_f w.Workloads.Workload.hir w.Workloads.Workload.kernel_func);
      Alcotest.(check bool)
        (name ^ " classifier finds non-affine accesses") false
        (all_affine_in w.Workloads.Workload.hir
           w.Workloads.Workload.kernel_func))
    [ "bfs"; "cfd" ]

(* ---------------- new lint passes ---------------- *)

let test_lint_deadcode () =
  (* r0 := 0; br r0 ? b1 : b2 -- b1 is plain-reachable but the branch
     condition is a known constant, so only b2 can execute *)
  let prog =
    raw_prog
      [ blk 0 [ I.Const (0, 0) ] (I.Br (I.Reg 0, 1, 2));
        blk 1 [ I.Const (1, 7) ] I.Halt;
        blk 2 [] I.Halt ]
  in
  (match with_code "W-deadcode" (Analysis.Lint.deadcode prog) with
  | [ d ] -> Alcotest.(check bool) "warning" false (Analysis.Diag.is_error d)
  | ds -> Alcotest.failf "expected 1 W-deadcode, got %d" (List.length ds));
  (* a genuinely two-way branch must stay quiet *)
  let live =
    raw_prog
      [ blk 0 [ I.Load (0, I.Imm 0) ] (I.Br (I.Reg 0, 1, 2));
        blk 1 [ I.Const (1, 7) ] I.Halt;
        blk 2 [] I.Halt ]
  in
  Alcotest.(check int) "no false positive" 0
    (List.length (Analysis.Lint.deadcode live))

let test_lint_redundant_load () =
  let dup =
    raw_prog
      [ blk 0
          [ I.Load (0, I.Imm 5); I.Load (1, I.Imm 5) ]
          I.Halt ]
  in
  (match with_code "W-redundant-load" (Analysis.Lint.redundant_load dup) with
  | [ _ ] -> ()
  | ds -> Alcotest.failf "expected 1 W-redundant-load, got %d" (List.length ds));
  (* an intervening store (may alias) must reset availability, and a
     redefinition of the address register must kill its entry *)
  let quiet =
    raw_prog
      [ blk 0
          [ I.Load (0, I.Imm 5); I.Store (I.Imm 5, I.Imm 1);
            I.Load (1, I.Imm 5) ]
          I.Halt;
        blk 1 [] I.Halt ]
  in
  Alcotest.(check int) "store resets availability" 0
    (List.length (Analysis.Lint.redundant_load quiet))

(* ---------------- static dependence engine ---------------- *)

let profile_both prog =
  let sd = Analysis.Statdep.analyse prog in
  let structure = Cfg.Cfg_builder.run prog in
  let full = Ddg.Depprof.profile prog ~structure in
  let pruned =
    Ddg.Depprof.profile ~static_prune:sd.Analysis.Statdep.plan prog ~structure
  in
  (sd, full, pruned)

let test_statdep_gemm () =
  let w = Workloads.Polybench.gemm in
  let prog = H.lower w.Workloads.Workload.hir in
  let sd, full, pruned = profile_both prog in
  Alcotest.(check int) "all 7 accesses resolved" 7
    (Analysis.Statdep.n_resolved sd);
  Alcotest.(check int) "all 7 accesses pruned" 7 (Analysis.Statdep.n_pruned sd);
  Alcotest.(check (list string)) "all three arrays prunable" [ "A"; "B"; "C" ]
    (Analysis.Statdep.prunable_regions sd);
  Alcotest.(check bool) "every dynamic access skipped shadow tracking" true
    (pruned.Ddg.Depprof.statically_pruned
    = full.Ddg.Depprof.run_stats.Vm.Interp.dyn_mem_ops);
  Alcotest.(check bool) "pruned profile identical" true
    (Ddg.Depprof.equal_result full pruned);
  (* the C-reduction carries the classic (=, =, <) dependence with a
     provable distance of 0 on the two outer dimensions *)
  let module D = Sched.Depanalysis in
  Alcotest.(check bool) "found the (=, =, <) flow dependence" true
    (List.exists
       (fun (p : Analysis.Statdep.pair_dep) ->
         p.pd_kind = Ddg.Depprof.Mem_dep && p.pd_possible
         && p.pd_dirs = [| D.Dzero; D.Dzero; D.Dpos |]
         && p.pd_dists = [| Some 0; Some 0; None |])
       sd.Analysis.Statdep.pairs)

let test_statdep_trisolv () =
  (* triangular nest: the non-rectangular domain encoding must make the
     forward-substitution kernel (inner trip = r) fully prunable — the
     rectangular engine managed under 5% here *)
  let w = Workloads.Polybench.trisolv in
  let prog = H.lower w.Workloads.Workload.hir in
  let _, full, pruned = profile_both prog in
  let dyn = full.Ddg.Depprof.run_stats.Vm.Interp.dyn_mem_ops in
  let cut = pruned.Ddg.Depprof.statically_pruned in
  Alcotest.(check bool)
    (Printf.sprintf "trisolv >= 90%% pruned (%d/%d)" cut dyn)
    true
    (float_of_int cut >= 0.9 *. float_of_int dyn);
  Alcotest.(check bool) "pruned profile identical" true
    (Ddg.Depprof.equal_result full pruned)

let test_statdep_cholesky () =
  (* triangular 3-D nest (c <= r, k <= c): every access resolves over a
     non-rectangular domain, and the k-loop reduction on Ach[r,c]
     carries the same (=, =, <) anchor as gemm's C-reduction *)
  let w = Workloads.Polybench.cholesky in
  let prog = H.lower w.Workloads.Workload.hir in
  let sd, full, pruned = profile_both prog in
  Alcotest.(check (list string)) "Ach prunable" [ "Ach" ]
    (Analysis.Statdep.prunable_regions sd);
  Alcotest.(check bool) "every dynamic access skipped shadow tracking" true
    (pruned.Ddg.Depprof.statically_pruned
    = full.Ddg.Depprof.run_stats.Vm.Interp.dyn_mem_ops);
  Alcotest.(check bool) "pruned profile identical" true
    (Ddg.Depprof.equal_result full pruned);
  let module D = Sched.Depanalysis in
  Alcotest.(check bool) "found the (=, =, <) flow dependence" true
    (List.exists
       (fun (p : Analysis.Statdep.pair_dep) ->
         p.pd_kind = Ddg.Depprof.Mem_dep && p.pd_possible
         && p.pd_dirs = [| D.Dzero; D.Dzero; D.Dpos |]
         && p.pd_dists = [| Some 0; Some 0; None |])
       sd.Analysis.Statdep.pairs)

(* ---------------- speculation + witness checks ---------------- *)

let profile_speculative w =
  let prog = H.lower w.Workloads.Workload.hir in
  let structure = Cfg.Cfg_builder.run prog in
  let full = Ddg.Depprof.profile prog ~structure in
  let sd, pruned, reruns =
    Analysis.Statdep.fallback_profile prog ~profile:(fun plan ->
        Ddg.Depprof.profile ~static_prune:plan prog ~structure)
  in
  (sd, full, pruned, reruns)

let test_witness_holds () =
  (* the guard in seidel_wd always fires, so the speculative plan prunes
     everything, its single witness probe holds and no rerun happens *)
  let sd, full, pruned, reruns =
    profile_speculative Workloads.Polybench.seidel_wd
  in
  Alcotest.(check int) "no witness-failure rerun" 0 reruns;
  Alcotest.(check bool) "plan carries a witness probe" true
    (sd.Analysis.Statdep.plan.Ddg.Depprof.sp_witnesses <> []);
  Alcotest.(check bool) "every dynamic access skipped shadow tracking" true
    (pruned.Ddg.Depprof.statically_pruned
    = full.Ddg.Depprof.run_stats.Vm.Interp.dyn_mem_ops);
  Alcotest.(check bool) "speculatively pruned profile identical" true
    (Ddg.Depprof.equal_result full pruned)

let test_witness_failure_fallback () =
  (* seeded witness failures: the mixed guard goes both ways (refined to
     Spec_off), the flipped guard never fires (refined to the other
     side); both must rerun deterministically and still match the
     unpruned profile bit for bit *)
  List.iter
    (fun w ->
      let _, full, pruned, reruns = profile_speculative w in
      Alcotest.(check bool)
        (w.Workloads.Workload.w_name ^ ": witness failed, fallback reran")
        true (reruns >= 1);
      Alcotest.(check bool)
        (w.Workloads.Workload.w_name ^ ": fallback profile identical")
        true
        (Ddg.Depprof.equal_result full pruned))
    [ Workloads.Polybench.seidel_wd_mixed; Workloads.Polybench.seidel_wd_skip ]

let alias_hir : H.program =
  (* the middle loop stores through a loaded index: the whole [data]
     region must fall back to dynamic tracking, while [idx] (all-affine
     accesses) stays statically prunable *)
  { H.funs =
      [ H.fundef "main" []
          [ H.for_ "k" (i 0) (i 8)
              [ store "idx" (v "k") ((v "k" *! i 3) %! i 8) ];
            H.for_ "k" (i 0) (i 8) [ store "data" ("idx".%[v "k"]) (i 1) ];
            H.for_ "k" (i 0) (i 8)
              [ store "data" (v "k") ("data".%[v "k"] +! i 1) ] ] ];
    arrays = [ ("idx", 8); ("data", 8) ];
    main = "main" }

let test_statdep_alias_fallback () =
  let prog = H.lower alias_hir in
  let sd, full, pruned = profile_both prog in
  let prunable = Analysis.Statdep.prunable_regions sd in
  Alcotest.(check bool) "idx region prunable" true (List.mem "idx" prunable);
  Alcotest.(check bool) "aliased data region not prunable" false
    (List.mem "data" prunable);
  Alcotest.(check bool) "fallback still matches the full profile" true
    (Ddg.Depprof.equal_result full pruned);
  Alcotest.(check bool) "cross-check clean" true
    (Analysis.Crosscheck.ok (Analysis.Crosscheck.check prog full))

(* random fully-affine nests: the static engine must over-approximate
   the dynamic DDG (cross-check clean) and pruning must never change
   the profile *)
let gen_affine_program seed : H.program =
  let st = Random.State.make [| seed |] in
  let rand n = Random.State.int st (max 1 n) in
  let fresh = ref 0 in
  let idx vars =
    List.fold_left
      (fun acc name ->
        if rand 3 = 0 then acc else acc +! (v name *! i (1 + rand 3)))
      (i (rand 8)) vars
  in
  let arr () = if rand 4 = 0 then "aux" else "data" in
  let rec stmts vars depth budget =
    if budget <= 0 then []
    else
      let s, cost = stmt vars depth budget in
      s :: stmts vars depth (budget - cost)
  and stmt vars depth budget =
    match if depth >= 3 then rand 3 else rand 5 with
    | 0 -> (store (arr ()) (idx vars) (i (rand 9)), 1)
    | 1 ->
        let a = arr () in
        (store a (idx vars) (a.%[idx vars] +! i (1 + rand 4)), 1)
    | 2 ->
        incr fresh;
        (H.Let (Printf.sprintf "t%d" !fresh, idx vars), 1)
    | _ ->
        incr fresh;
        let name = Printf.sprintf "k%d" !fresh in
        let body = stmts (name :: vars) (depth + 1) (budget / 2) in
        let body =
          if body = [] then [ store (arr ()) (idx (name :: vars)) (i 1) ]
          else body
        in
        (H.for_ name (i 0) (i (2 + rand 5)) body, 2 + (budget / 2))
  in
  let body = stmts [] 0 10 in
  let body = if body = [] then [ store "data" (i 0) (i 1) ] else body in
  { H.funs = [ H.fundef "main" [] body ];
    arrays = [ ("data", 64); ("aux", 64) ];
    main = "main" }

let check_affine_seed seed =
  let prog = H.lower (gen_affine_program seed) in
  let _, full, pruned = profile_both prog in
  Analysis.Crosscheck.ok (Analysis.Crosscheck.check prog full)
  && Ddg.Depprof.equal_result full pruned

let prop_affine_static_sound =
  QCheck.Test.make ~name:"static may-deps over-approximate dynamic DDG"
    ~count:40
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    check_affine_seed

let test_affine_fixed_seeds () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        true (check_affine_seed seed))
    [ 1; 7; 42; 1234; 99991 ]

(* random triangular nests: inner loop bounds affine in the outer IVs
   (lower or upper), sometimes empty at runtime (lo >= hi); the
   non-rectangular engine must keep its verdicts a sound
   over-approximation of the dynamic DDG and pruning must never change
   the profile *)
let gen_triangular_program seed : H.program =
  let st = Random.State.make [| seed; 0x3a |] in
  let rand n = Random.State.int st (max 1 n) in
  let idx vars =
    List.fold_left
      (fun acc name ->
        if rand 3 = 0 then acc else acc +! (v name *! i (1 + rand 2)))
      (i (rand 8)) vars
  in
  let arr () = if rand 4 = 0 then "aux" else "data" in
  let store_stmt vars =
    if rand 2 = 0 then store (arr ()) (idx vars) (i (rand 9))
    else
      let a = arr () in
      store a (idx vars) (a.%[idx vars] +! i (1 + rand 4))
  in
  let rec nest vars depth =
    let name = Printf.sprintf "k%d" depth in
    let lo, hi =
      match vars with
      | outer :: _ when rand 2 = 0 ->
          if rand 2 = 0 then (i 0, v outer +! i (1 + rand 3))
          else (v outer, i (5 + rand 3))
      | _ -> (i 0, i (2 + rand 4))
    in
    let vars' = name :: vars in
    let body =
      store_stmt vars'
      :: (if depth < 2 && rand 2 = 0 then [ nest vars' (depth + 1) ] else [])
    in
    H.for_ name lo hi body
  in
  { H.funs = [ H.fundef "main" [] [ nest [] 0; store "data" (i 0) (i 1) ] ];
    arrays = [ ("data", 96); ("aux", 96) ];
    main = "main" }

let check_triangular_seed seed =
  let prog = H.lower (gen_triangular_program seed) in
  let _, full, pruned = profile_both prog in
  Analysis.Crosscheck.ok (Analysis.Crosscheck.check prog full)
  && Ddg.Depprof.equal_result full pruned

let prop_triangular_static_sound =
  QCheck.Test.make
    ~name:"triangular static may-deps over-approximate dynamic DDG" ~count:40
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    check_triangular_seed

let test_triangular_fixed_seeds () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        true
        (check_triangular_seed seed))
    [ 2; 11; 42; 777; 31337 ]

let test_prune_equal_all_workloads () =
  let ws =
    Workloads.Rodinia.all
    @ [ Workloads.Gems_fdtd.workload ]
    @ Workloads.Polybench.all
  in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = H.lower w.Workloads.Workload.hir in
      let _, full, pruned = profile_both prog in
      Alcotest.(check bool)
        (w.w_name ^ ": pruned profile identical to unpruned") true
        (Ddg.Depprof.equal_result full pruned))
    ws

(* ---------------- parallelism certifier ---------------- *)

module PC = Analysis.Parcheck

let parcheck_of (w : Workloads.Workload.t) =
  PC.analyse (H.lower w.Workloads.Workload.hir)

(* verdict of the single dim whose header carries [file:line] (the
   seeded kernels attach a unique source location to each loop) *)
let verdict_at pc file line =
  match
    List.filter
      (fun (d : PC.dim_report) ->
        match d.PC.dr_loc with
        | Some l -> l.P.file = file && l.P.line = line
        | None -> false)
      pc.PC.pc_dims
  with
  | [ d ] -> d.PC.dr_verdict
  | ds -> Alcotest.failf "%s:%d: expected 1 dim, got %d" file line (List.length ds)

let test_parcheck_gemm () =
  let pc = parcheck_of Workloads.Polybench.gemm in
  Alcotest.(check int) "6 chain dims" 6 (List.length pc.PC.pc_dims);
  Alcotest.(check int) "all certified" 6 (PC.n_certified pc);
  Alcotest.(check int) "no races" 0 (PC.n_races pc);
  let has_reduction =
    List.exists
      (fun (d : PC.dim_report) ->
        match d.PC.dr_verdict with
        | PC.Certified c -> c.PC.ct_reductions <> []
        | _ -> false)
      pc.PC.pc_dims
  in
  Alcotest.(check bool) "k dim certified as reduction" true has_reduction;
  let san = PC.sanitize pc in
  Alcotest.(check int) "sanitizer: no races on certified dims" 0
    (Ddg.Race_san.races_on_certified san);
  Alcotest.(check bool) "crosscheck ok" true
    (PC.crosscheck_ok (PC.crosscheck pc san))

let test_parcheck_jacobi () =
  let pc = parcheck_of Workloads.Polybench.jacobi_2d in
  Alcotest.(check int) "6 certified dims (the parallel space dims)" 6
    (PC.n_certified pc);
  let san = PC.sanitize pc in
  Alcotest.(check int) "sanitizer: no races on certified dims" 0
    (Ddg.Race_san.races_on_certified san);
  Alcotest.(check bool) "crosscheck ok" true
    (PC.crosscheck_ok (PC.crosscheck pc san))

let test_parcheck_seeded_race () =
  let pc = parcheck_of Workloads.Polybench.par_racy in
  (match verdict_at pc "par-racy.c" 5 with
  | PC.Race (w :: _) ->
      Alcotest.(check bool) "witness endpoints differ" true (w.PC.w_src <> w.PC.w_dst)
  | v -> Alcotest.failf "expected race witness, got %s" (PC.verdict_code v));
  let san = PC.sanitize pc in
  let stats =
    List.find
      (fun (s : Ddg.Race_san.claim_stats) ->
        not s.Ddg.Race_san.cs_claim.Ddg.Race_san.cl_certified)
      san.Ddg.Race_san.sr_claims
  in
  Alcotest.(check bool) "sanitizer confirms the race dynamically" true
    (stats.Ddg.Race_san.cs_n_races > 0);
  Alcotest.(check bool) "crosscheck ok (confirmed, not unsound)" true
    (PC.crosscheck_ok (PC.crosscheck pc san))

let test_parcheck_seeded_reduction () =
  let pc = parcheck_of Workloads.Polybench.par_reduction in
  (match verdict_at pc "par-reduction.c" 5 with
  | PC.Certified c ->
      Alcotest.(check bool) "non-empty reduction access set" true
        (c.PC.ct_reductions <> [])
  | v -> Alcotest.failf "expected reduction certificate, got %s" (PC.verdict_code v));
  let san = PC.sanitize pc in
  Alcotest.(check int) "sanitizer: reduction accesses covered" 0
    (Ddg.Race_san.races_on_certified san)

let test_parcheck_seeded_private () =
  let pc = parcheck_of Workloads.Polybench.par_private in
  (match verdict_at pc "par-private.c" 5 with
  | PC.Certified c ->
      Alcotest.(check bool) "non-empty private region set" true
        (c.PC.ct_private <> [])
  | v -> Alcotest.failf "expected privatisation certificate, got %s" (PC.verdict_code v));
  let san = PC.sanitize pc in
  Alcotest.(check int) "sanitizer: private scratch covered" 0
    (Ddg.Race_san.races_on_certified san)

(* random single-loop reduction nests: [S[0] <- S[0] op A[a*r+b] ...]
   must always certify with a non-empty reduction set, and the
   sanitizer must agree (no uncovered dynamic race) *)
let gen_reduction_program seed : H.program =
  let st = Random.State.make [| seed; 0x5d |] in
  let rand n = Random.State.int st (max 1 n) in
  let n = 4 + rand 12 in
  let addr = (v "r" *! i (1 + rand 2)) +! i (rand 4) in
  let combine =
    let t = v "a" *! v "a" in
    if rand 2 = 0 then v "acc" +! t else v "acc" *! t
  in
  let body =
    [ H.Let ("a", "A".%[addr]);
      H.Let ("acc", "S".%[i 0]);
      store "S" (i 0) combine ]
  in
  { H.funs = [ H.fundef "main" [] [ H.for_ "r" (i 0) (i n) body ] ];
    arrays = [ ("A", 64); ("S", 1) ];
    main = "main" }

let check_reduction_seed seed =
  let prog = H.lower (gen_reduction_program seed) in
  let pc = PC.analyse prog in
  let certified_with_reduction =
    List.for_all
      (fun (d : PC.dim_report) ->
        match d.PC.dr_verdict with
        | PC.Certified c -> c.PC.ct_reductions <> []
        | _ -> false)
      pc.PC.pc_dims
  in
  let san = PC.sanitize pc in
  certified_with_reduction
  && pc.PC.pc_dims <> []
  && Ddg.Race_san.races_on_certified san = 0
  && PC.crosscheck_ok (PC.crosscheck pc san)

let prop_reduction_certifies =
  QCheck.Test.make ~name:"injected reduction idioms always certify" ~count:40
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    check_reduction_seed

(* random seeded races: [A[r] <- A[r-d] + c] carries a true dependence
   at distance d >= 1 -- the certifier must produce a race witness and
   never a certificate, and the sanitizer must observe it *)
let gen_racy_program seed : H.program =
  let st = Random.State.make [| seed; 0x7b |] in
  let rand n = Random.State.int st (max 1 n) in
  let d = 1 + rand 3 in
  let n = d + 4 + rand 12 in
  let body =
    [ H.Let ("p", "A".%[v "r" -! i d]);
      store "A" (v "r") (v "p" +! i 1) ]
  in
  { H.funs = [ H.fundef "main" [] [ H.for_ "r" (i d) (i n) body ] ];
    arrays = [ ("A", 64) ];
    main = "main" }

let check_racy_seed seed =
  let prog = H.lower (gen_racy_program seed) in
  let pc = PC.analyse prog in
  let raced =
    List.for_all
      (fun (d : PC.dim_report) ->
        match d.PC.dr_verdict with
        | PC.Race (_ :: _) -> true
        | _ -> false)
      pc.PC.pc_dims
  in
  let san = PC.sanitize pc in
  raced
  && pc.PC.pc_dims <> []
  && PC.n_certified pc = 0
  && Ddg.Race_san.races_on_certified san = 0
  && PC.crosscheck_ok (PC.crosscheck pc san)

let prop_seeded_race_never_certifies =
  QCheck.Test.make ~name:"seeded races yield a witness, never a certificate"
    ~count:40
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    check_racy_seed

(* ---------------- whole-workload sweep ---------------- *)

let test_sweep_all_workloads () =
  let ws =
    Workloads.Rodinia.all
    @ [ Workloads.Gems_fdtd.workload ]
    @ Workloads.Polybench.all
  in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let e =
        Analysis.Lint.of_hir ~name:w.w_name ~profile:true w.Workloads.Workload.hir
      in
      Alcotest.(check int)
        (w.w_name ^ ": no verifier/analysis errors") 0
        (Analysis.Diag.count Analysis.Diag.Error e.Analysis.Lint.e_diags);
      Alcotest.(check int)
        (w.w_name ^ ": no warnings") 0
        (Analysis.Diag.count Analysis.Diag.Warning e.Analysis.Lint.e_diags);
      match e.Analysis.Lint.e_xcheck with
      | None -> Alcotest.failf "%s: cross-check did not run" w.w_name
      | Some r ->
          Alcotest.(check int)
            (w.w_name ^ ": no cross-check violations") 0
            (List.length r.Analysis.Crosscheck.violations))
    ws

let test_runner_carries_lint () =
  let w = Workloads.Rodinia.find "hotspot" in
  let o = Workloads.Runner.run ~crosscheck:true w in
  match o.Workloads.Runner.lint with
  | None -> Alcotest.fail "runner did not attach a lint entry"
  | Some e ->
      Alcotest.(check bool) "lint passes" true (Analysis.Lint.passed e);
      Alcotest.(check bool) "cross-check ran on the runner's profile" true
        (e.Analysis.Lint.e_xcheck <> None)

let () =
  Alcotest.run "analysis"
    [ ( "verifier",
        [ Alcotest.test_case "builder rejects bad branch target" `Quick
            test_builder_rejects_bad_target;
          Alcotest.test_case "builder rejects unterminated block" `Quick
            test_builder_rejects_unterminated;
          Alcotest.test_case "builder rejects call-arity mismatch" `Quick
            test_builder_rejects_bad_arity;
          Alcotest.test_case "jump out of range" `Quick test_verify_struct_error;
          Alcotest.test_case "register index out of range" `Quick
            test_verify_reg_out_of_range;
          Alcotest.test_case "unreachable block" `Quick test_verify_unreachable;
          Alcotest.test_case "ret in main" `Quick test_verify_ret_in_main ] );
      ( "initdef",
        [ Alcotest.test_case "conditional init flagged" `Quick
            test_initdef_catches_conditional_init;
          Alcotest.test_case "params arrive assigned" `Quick
            test_initdef_params_arrive_assigned ] );
      ( "liveness",
        [ Alcotest.test_case "dead store flagged" `Quick
            test_liveness_dead_store;
          Alcotest.test_case "loop-carried liveness" `Quick
            test_liveness_across_blocks ] );
      ( "affine",
        [ Alcotest.test_case "2-D nest with range" `Quick test_affine_2d_nest;
          Alcotest.test_case "indirect accesses are F/P" `Quick
            test_affine_indirect_is_nonaffine;
          Alcotest.test_case "interprocedural constants" `Quick
            test_affine_interprocedural_constants ] );
      ( "crosscheck",
        [ Alcotest.test_case "clean profile + seeded violation" `Quick
            test_crosscheck_clean_and_seeded_violation ] );
      ( "lints",
        [ Alcotest.test_case "W-deadcode constant branch" `Quick
            test_lint_deadcode;
          Alcotest.test_case "W-redundant-load in block" `Quick
            test_lint_redundant_load ] );
      ( "statdep",
        [ Alcotest.test_case "gemm fully resolved + (=,=,<)" `Quick
            test_statdep_gemm;
          Alcotest.test_case "seeded alias forces dynamic fallback" `Quick
            test_statdep_alias_fallback;
          Alcotest.test_case "trisolv triangular nest >= 90% pruned" `Quick
            test_statdep_trisolv;
          Alcotest.test_case "cholesky fully resolved + (=,=,<)" `Quick
            test_statdep_cholesky;
          Alcotest.test_case "witness holds on seidel_wd" `Quick
            test_witness_holds;
          Alcotest.test_case "witness failure falls back bit-exact" `Quick
            test_witness_failure_fallback;
          Alcotest.test_case "affine fixed seeds" `Quick
            test_affine_fixed_seeds;
          Alcotest.test_case "triangular fixed seeds" `Quick
            test_triangular_fixed_seeds;
          QCheck_alcotest.to_alcotest prop_affine_static_sound;
          QCheck_alcotest.to_alcotest prop_triangular_static_sound;
          Alcotest.test_case "pruned == unpruned on every workload" `Slow
            test_prune_equal_all_workloads ] );
      ( "parcheck",
        [ Alcotest.test_case "gemm fully certified (k as reduction)" `Quick
            test_parcheck_gemm;
          Alcotest.test_case "jacobi_2d space dims certified" `Quick
            test_parcheck_jacobi;
          Alcotest.test_case "seeded race: witness + dynamic confirm" `Quick
            test_parcheck_seeded_race;
          Alcotest.test_case "seeded reduction certificate" `Quick
            test_parcheck_seeded_reduction;
          Alcotest.test_case "seeded privatisation certificate" `Quick
            test_parcheck_seeded_private;
          QCheck_alcotest.to_alcotest prop_reduction_certifies;
          QCheck_alcotest.to_alcotest prop_seeded_race_never_certifies ] );
      ( "polly-agreement",
        [ Alcotest.test_case "figure 3" `Quick test_agreement_figure3;
          Alcotest.test_case "rodinia kernels" `Quick test_agreement_rodinia ] );
      ( "sweep",
        [ Alcotest.test_case "all workloads lint clean" `Slow
            test_sweep_all_workloads;
          Alcotest.test_case "runner cross-check integration" `Quick
            test_runner_carries_lint ] ) ]
