(* Tests for the lib/obs telemetry subsystem:

   - the per-domain sink merge is deterministic, associative and
     order-insensitive: replaying the same update stream split across
     1, 2 or 5 sinks (with the partial sinks merged in any order)
     yields a bit-identical snapshot (qcheck property);
   - span nesting is enforced ([Unbalanced] on mismatched exits);
   - the Chrome trace exporter escapes hostile span names and survives
     a round-trip through the self-hosted JSON parser;
   - [Json_emit] escaping round-trips control characters and quotes. *)

module M = Obs.Metrics
module J = Obs.Json_emit

(* --- deterministic merge (property) -------------------------------- *)

(* three metrics of each kind, registered once for the whole binary *)
let counters = Array.init 3 (fun i -> M.counter (Printf.sprintf "t.c%d" i))
let gauges = Array.init 3 (fun i -> M.gauge (Printf.sprintf "t.g%d" i))
let hists = Array.init 3 (fun i -> M.histogram (Printf.sprintf "t.h%d" i))

type update = Add of int * int | SetMax of int * int | Observe of int * int

let apply sink = function
  | Add (i, n) -> M.Sink.add sink counters.(i) n
  | SetMax (i, n) -> M.Sink.set_max sink gauges.(i) n
  | Observe (i, n) -> M.Sink.observe sink hists.(i) n

let update_gen =
  QCheck.Gen.(
    let idx = int_range 0 2 in
    let v = int_range 0 100_000 in
    oneof
      [ map2 (fun i n -> Add (i, n)) idx v;
        map2 (fun i n -> SetMax (i, n)) idx v;
        map2 (fun i n -> Observe (i, n)) idx v ])

let update_print = function
  | Add (i, n) -> Printf.sprintf "Add(c%d, %d)" i n
  | SetMax (i, n) -> Printf.sprintf "SetMax(g%d, %d)" i n
  | Observe (i, n) -> Printf.sprintf "Observe(h%d, %d)" i n

let updates_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map update_print l))
    QCheck.Gen.(list_size (int_range 0 200) update_gen)

(* split the update stream round-robin across [k] sinks and snapshot;
   [rev] merges the partial sinks in reverse order *)
let snapshot_split ~k ~rev updates =
  let sinks = Array.init k (fun _ -> M.Sink.create ()) in
  List.iteri (fun i u -> apply sinks.(i mod k) u) updates;
  let l = Array.to_list sinks in
  M.Sink.snapshot_of (if rev then List.rev l else l)

let prop_merge_deterministic updates =
  let reference = snapshot_split ~k:1 ~rev:false updates in
  List.for_all
    (fun (k, rev) -> snapshot_split ~k ~rev updates = reference)
    [ (2, false); (2, true); (5, false); (5, true) ]

let merge_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"sink merge is order-insensitive and split-invariant"
       updates_arb prop_merge_deterministic)

let test_merge_semantics () =
  (* counters add, gauges take max, histogram min/max/buckets merge *)
  let a = M.Sink.create () and b = M.Sink.create () in
  M.Sink.add a counters.(0) 3;
  M.Sink.add b counters.(0) 4;
  M.Sink.set_max a gauges.(0) 10;
  M.Sink.set_max b gauges.(0) 7;
  M.Sink.observe a hists.(0) 0;
  M.Sink.observe b hists.(0) 1000;
  let snap = M.Sink.snapshot_of [ a; b ] in
  let find name =
    List.find_map
      (fun ((d : M.desc), v) -> if d.M.d_name = name then Some v else None)
      snap
  in
  (match find "t.c0" with
  | Some (M.Vint 7) -> ()
  | _ -> Alcotest.fail "counter merge should sum to 7");
  (match find "t.g0" with
  | Some (M.Vint 10) -> ()
  | _ -> Alcotest.fail "gauge merge should take max 10");
  match find "t.h0" with
  | Some (M.Vhist h) ->
      Alcotest.(check int) "count" 2 h.M.h_count;
      Alcotest.(check int) "sum" 1000 h.M.h_sum;
      Alcotest.(check int) "min" 0 h.M.h_min;
      Alcotest.(check int) "max" 1000 h.M.h_max
  | _ -> Alcotest.fail "histogram summary missing"

(* --- spans --------------------------------------------------------- *)

let with_telemetry f =
  Obs.Registry.enable ();
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.Span.reset ();
      Obs.Registry.disable ())
    f

let test_span_unbalanced () =
  with_telemetry @@ fun () ->
  Obs.Span.enter "outer";
  Alcotest.check_raises "mismatched exit"
    (Obs.Span.Unbalanced "exit \"inner\": innermost open span is \"outer\"")
    (fun () -> Obs.Span.exit_ "inner");
  Obs.Span.exit_ "outer";
  Alcotest.check_raises "exit on empty stack"
    (Obs.Span.Unbalanced "exit \"outer\": no open span")
    (fun () -> Obs.Span.exit_ "outer")

let test_span_nesting () =
  with_telemetry @@ fun () ->
  Obs.Span.with_ ~cat:"test" "parent" (fun () ->
      Obs.Span.with_ "child1" (fun () -> ());
      Obs.Span.with_ "child2" (fun () -> ()));
  match Obs.Span.roots () with
  | [ p ] ->
      Alcotest.(check string) "root name" "parent" p.Obs.Span.sp_name;
      Alcotest.(check (list string))
        "children in start order" [ "child1"; "child2" ]
        (List.map (fun c -> c.Obs.Span.sp_name) p.Obs.Span.sp_children);
      Alcotest.(check bool) "duration non-negative" true
        (p.Obs.Span.sp_dur_ns >= 0)
  | l -> Alcotest.failf "expected one root span, got %d" (List.length l)

let test_span_disabled_noop () =
  Obs.Registry.disable ();
  Obs.Span.reset ();
  (* none of these may raise or record anything while disabled *)
  Obs.Span.enter "ghost";
  Obs.Span.exit_ "mismatched-and-ignored";
  Obs.Span.with_ "ghost2" (fun () -> ());
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.Span.roots ()))

(* --- Chrome trace escaping ----------------------------------------- *)

let hostile = "we\"ird\nname\twith \\ control\x01chars"

let test_chrome_escaping () =
  with_telemetry @@ fun () ->
  Obs.Span.with_ ~cat:"test" hostile (fun () -> ());
  let s = Obs.Chrome.to_string ~process_name:hostile (Obs.Span.roots ()) in
  match J.parse s with
  | Error e -> Alcotest.failf "emitted trace does not parse: %s" e
  | Ok doc -> (
      match J.member "traceEvents" doc with
      | Some (J.List events) ->
          let names =
            List.filter_map
              (fun ev ->
                match J.member "name" ev with
                | Some (J.Str n) -> Some n
                | _ -> None)
              events
          in
          Alcotest.(check bool)
            "hostile span name survives the round-trip" true
            (List.mem hostile names)
      | _ -> Alcotest.fail "no traceEvents array")

let test_json_escape_roundtrip () =
  List.iter
    (fun s ->
      match J.parse (J.to_string (J.Str s)) with
      | Ok (J.Str s') -> Alcotest.(check string) "round-trip" s s'
      | Ok _ -> Alcotest.fail "parsed to a non-string"
      | Error e -> Alcotest.failf "parse error on %S: %s" s e)
    [ ""; hostile; "plain"; "\\"; "\""; "\x00\x1f"; "caf\xc3\xa9 \xe2\x82\xac" ]

(* --- quantiles ----------------------------------------------------- *)

(* the power-of-two buckets bound the estimate to the true value's
   bucket (one power of two); check against distributions with known
   quantiles *)
let hist_of values =
  let h = M.histogram "t.quant" in
  let sink = M.Sink.create () in
  List.iter (M.Sink.observe sink h) values;
  match
    List.find_map
      (fun ((d : M.desc), v) ->
        if d.M.d_name = "t.quant" then Some v else None)
      (M.Sink.snapshot_of [ sink ])
  with
  | Some (M.Vhist h) -> h
  | _ -> Alcotest.fail "histogram summary missing"

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and x = ref v in
    while !x > 0 do incr i; x := !x lsr 1 done;
    !i
  end

let check_quantile ~what h q truth =
  let est = M.quantile h q in
  let bt = bucket_of truth and be = bucket_of (int_of_float est) in
  if abs (bt - be) > 1 then
    Alcotest.failf "%s: p%.0f estimate %.0f (bucket %d) vs truth %d (bucket %d)"
      what (q *. 100.) est be truth bt

let test_quantiles () =
  (* empty histogram (snapshots omit never-updated metrics, so build
     the summary directly) *)
  let empty =
    { M.h_count = 0; h_sum = 0; h_min = 0; h_max = 0;
      h_buckets = Array.make 63 0 }
  in
  Alcotest.(check (float 0.0)) "empty" 0.0 (M.quantile empty 0.5);
  (* constant distribution: every quantile is the value itself (exact,
     thanks to the min/max clamp) *)
  let const = hist_of (List.init 100 (fun _ -> 777)) in
  List.iter
    (fun q -> Alcotest.(check (float 0.0)) "constant" 777.0 (M.quantile const q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  (* uniform 1..4096: true p50 = 2048, p90 = 3687, p99 = 4056 *)
  let uni = hist_of (List.init 4096 (fun i -> i + 1)) in
  check_quantile ~what:"uniform" uni 0.5 2048;
  check_quantile ~what:"uniform" uni 0.9 3687;
  check_quantile ~what:"uniform" uni 0.99 4056;
  (* heavy tail: 99 fast samples, 1 slow outlier — p50 stays small,
     p100 hits the outlier *)
  let tail = hist_of (List.init 99 (fun i -> 10 + i) @ [ 1_000_000 ]) in
  check_quantile ~what:"tail" tail 0.5 59;
  Alcotest.(check (float 0.0)) "tail p100 is the observed max" 1_000_000.0
    (M.quantile tail 1.0);
  (* estimates are monotone in q *)
  List.iter
    (fun h ->
      ignore
        (List.fold_left
           (fun prev q ->
             let v = M.quantile h q in
             Alcotest.(check bool) "monotone in q" true (v >= prev);
             v)
           neg_infinity
           [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]))
    [ uni; tail ]

(* --- structured logging -------------------------------------------- *)

let mk_record i =
  { Obs.Log.r_seq = i;
    r_ts_ns = i * 1000;
    r_domain = 0;
    r_level = Obs.Log.Info;
    r_event = "t.ring";
    r_msg = Printf.sprintf "m%d" i;
    r_fields = [] }

let test_log_ring_wraparound () =
  let ring = Obs.Log.Ring.create ~capacity:8 in
  for i = 0 to 19 do
    Obs.Log.Ring.push ring (mk_record i)
  done;
  Alcotest.(check int) "dropped" 12 (Obs.Log.Ring.dropped ring);
  let drained = Obs.Log.Ring.drain ring in
  Alcotest.(check (list int))
    "last 8 records in order"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun (r : Obs.Log.record) -> r.Obs.Log.r_seq) drained);
  Alcotest.(check int) "drain clears" 0
    (List.length (Obs.Log.Ring.drain ring))

let with_logging f =
  Obs.Log.reset ();
  Obs.Log.set_level (Some Obs.Log.Debug);
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_level None;
      Obs.Log.reset ())
    f

let test_log_concurrent_merge () =
  with_logging @@ fun () ->
  let domains = 4 and per_domain = 50 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Obs.Log.info "t.par" "%d:%d" d i
            done))
  in
  List.iter Domain.join workers;
  let records =
    List.filter
      (fun (r : Obs.Log.record) -> r.Obs.Log.r_event = "t.par")
      (Obs.Log.drain ())
  in
  Alcotest.(check int) "all records drained" (domains * per_domain)
    (List.length records);
  ignore
    (List.fold_left
       (fun prev (r : Obs.Log.record) ->
         Alcotest.(check bool) "seq strictly increasing" true
           (r.Obs.Log.r_seq > prev);
         r.Obs.Log.r_seq)
       (-1) records);
  (* within each domain the emission order is preserved *)
  for d = 0 to domains - 1 do
    let prefix = Printf.sprintf "%d:" d in
    let mine =
      List.filter_map
        (fun (r : Obs.Log.record) ->
          let m = r.Obs.Log.r_msg in
          if String.length m > String.length prefix
             && String.sub m 0 (String.length prefix) = prefix
          then
            int_of_string_opt
              (String.sub m (String.length prefix)
                 (String.length m - String.length prefix))
          else None)
        records
    in
    Alcotest.(check (list int))
      (Printf.sprintf "domain %d order preserved" d)
      (List.init per_domain Fun.id) mine
  done

let test_log_jsonl_roundtrip () =
  with_logging @@ fun () ->
  Obs.Log.with_context
    [ ("trace_id", "abc123"); ("job_id", "7") ]
    (fun () -> Obs.Log.warn "t.hostile" ~fields:[ ("blob", hostile) ] "%s" hostile);
  match Obs.Log.drain () with
  | [ r ] -> (
      Alcotest.(check string) "msg intact" hostile r.Obs.Log.r_msg;
      let line = Obs.Log.to_jsonl r in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match J.parse line with
      | Error e -> Alcotest.failf "jsonl line does not parse: %s" e
      | Ok doc ->
          let str name =
            match J.member name doc with
            | Some (J.Str s) -> s
            | _ -> Alcotest.failf "missing %s" name
          in
          Alcotest.(check string) "hostile msg round-trips" hostile (str "msg");
          Alcotest.(check string) "trace_id promoted" "abc123" (str "trace_id");
          Alcotest.(check string) "job_id promoted" "7" (str "job_id");
          Alcotest.(check string) "level" "warn" (str "level");
          (match J.member "fields" doc with
          | Some (J.Obj fields) ->
              Alcotest.(check bool) "hostile field round-trips" true
                (List.assoc_opt "blob" fields = Some (J.Str hostile))
          | _ -> Alcotest.fail "no fields object");
          match J.member "schema_version" doc with
          | Some (J.Int v) ->
              Alcotest.(check int) "schema" Obs.Schemas.log v
          | _ -> Alcotest.fail "no schema_version")
  | l -> Alcotest.failf "expected one record, got %d" (List.length l)

let test_log_off_and_sampling () =
  Obs.Log.reset ();
  Obs.Log.set_level None;
  Obs.Log.info "t.off" "never recorded";
  Alcotest.(check int) "off means nothing lands" 0
    (List.length (Obs.Log.drain ()));
  with_logging @@ fun () ->
  let admitted = ref 0 in
  for _ = 1 to 10 do
    if Obs.Log.sample ~every:5 "t.sampled" then incr admitted
  done;
  Alcotest.(check int) "1st and every 5th admitted" 2 !admitted

(* --- equal_ignoring / stable writes -------------------------------- *)

let test_equal_ignoring () =
  let doc utc =
    J.Obj
      [ ("schema_version", J.Int 1);
        ("generated_utc", J.Str utc);
        ( "nested",
          J.Obj [ ("generated_utc", J.Str (utc ^ "-nested")); ("v", J.Int 3) ]
        ) ]
  in
  Alcotest.(check bool) "differs only by timestamp" true
    (J.equal_ignoring ~ignore:[ "generated_utc" ] (doc "a") (doc "b"));
  let changed =
    J.Obj
      [ ("schema_version", J.Int 2);
        ("generated_utc", J.Str "a");
        ("nested", J.Obj [ ("generated_utc", J.Str "x"); ("v", J.Int 3) ]) ]
  in
  Alcotest.(check bool) "real change detected" false
    (J.equal_ignoring ~ignore:[ "generated_utc" ] (doc "a") changed);
  (* write_file_stable leaves the file untouched on a timestamp-only
     rerun *)
  let path = Filename.temp_file "polyprof_stable" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Alcotest.(check bool) "first write happens" true
    (J.write_file_stable path (doc "t0"));
  let bytes0 = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check bool) "timestamp-only rerun skipped" false
    (J.write_file_stable path (doc "t1"));
  let bytes1 = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string) "file bytes untouched" bytes0 bytes1;
  Alcotest.(check bool) "real change rewrites" true
    (J.write_file_stable path
       (J.Obj [ ("schema_version", J.Int 99); ("generated_utc", J.Str "t2") ]))

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ merge_qcheck;
          Alcotest.test_case "merge semantics" `Quick test_merge_semantics;
          Alcotest.test_case "quantile estimation" `Quick test_quantiles ] );
      ( "log",
        [ Alcotest.test_case "ring wraparound" `Quick test_log_ring_wraparound;
          Alcotest.test_case "concurrent emission merges deterministically"
            `Quick test_log_concurrent_merge;
          Alcotest.test_case "hostile jsonl round-trip" `Quick
            test_log_jsonl_roundtrip;
          Alcotest.test_case "off threshold and sampling" `Quick
            test_log_off_and_sampling ] );
      ( "json",
        [ Alcotest.test_case "equal_ignoring + stable writes" `Quick
            test_equal_ignoring ] );
      ( "spans",
        [ Alcotest.test_case "unbalanced raises" `Quick test_span_unbalanced;
          Alcotest.test_case "nesting order" `Quick test_span_nesting;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_span_disabled_noop ] );
      ( "export",
        [ Alcotest.test_case "chrome escaping" `Quick test_chrome_escaping;
          Alcotest.test_case "json string round-trip" `Quick
            test_json_escape_roundtrip ] ) ]
