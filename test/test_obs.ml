(* Tests for the lib/obs telemetry subsystem:

   - the per-domain sink merge is deterministic, associative and
     order-insensitive: replaying the same update stream split across
     1, 2 or 5 sinks (with the partial sinks merged in any order)
     yields a bit-identical snapshot (qcheck property);
   - span nesting is enforced ([Unbalanced] on mismatched exits);
   - the Chrome trace exporter escapes hostile span names and survives
     a round-trip through the self-hosted JSON parser;
   - [Json_emit] escaping round-trips control characters and quotes. *)

module M = Obs.Metrics
module J = Obs.Json_emit

(* --- deterministic merge (property) -------------------------------- *)

(* three metrics of each kind, registered once for the whole binary *)
let counters = Array.init 3 (fun i -> M.counter (Printf.sprintf "t.c%d" i))
let gauges = Array.init 3 (fun i -> M.gauge (Printf.sprintf "t.g%d" i))
let hists = Array.init 3 (fun i -> M.histogram (Printf.sprintf "t.h%d" i))

type update = Add of int * int | SetMax of int * int | Observe of int * int

let apply sink = function
  | Add (i, n) -> M.Sink.add sink counters.(i) n
  | SetMax (i, n) -> M.Sink.set_max sink gauges.(i) n
  | Observe (i, n) -> M.Sink.observe sink hists.(i) n

let update_gen =
  QCheck.Gen.(
    let idx = int_range 0 2 in
    let v = int_range 0 100_000 in
    oneof
      [ map2 (fun i n -> Add (i, n)) idx v;
        map2 (fun i n -> SetMax (i, n)) idx v;
        map2 (fun i n -> Observe (i, n)) idx v ])

let update_print = function
  | Add (i, n) -> Printf.sprintf "Add(c%d, %d)" i n
  | SetMax (i, n) -> Printf.sprintf "SetMax(g%d, %d)" i n
  | Observe (i, n) -> Printf.sprintf "Observe(h%d, %d)" i n

let updates_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map update_print l))
    QCheck.Gen.(list_size (int_range 0 200) update_gen)

(* split the update stream round-robin across [k] sinks and snapshot;
   [rev] merges the partial sinks in reverse order *)
let snapshot_split ~k ~rev updates =
  let sinks = Array.init k (fun _ -> M.Sink.create ()) in
  List.iteri (fun i u -> apply sinks.(i mod k) u) updates;
  let l = Array.to_list sinks in
  M.Sink.snapshot_of (if rev then List.rev l else l)

let prop_merge_deterministic updates =
  let reference = snapshot_split ~k:1 ~rev:false updates in
  List.for_all
    (fun (k, rev) -> snapshot_split ~k ~rev updates = reference)
    [ (2, false); (2, true); (5, false); (5, true) ]

let merge_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"sink merge is order-insensitive and split-invariant"
       updates_arb prop_merge_deterministic)

let test_merge_semantics () =
  (* counters add, gauges take max, histogram min/max/buckets merge *)
  let a = M.Sink.create () and b = M.Sink.create () in
  M.Sink.add a counters.(0) 3;
  M.Sink.add b counters.(0) 4;
  M.Sink.set_max a gauges.(0) 10;
  M.Sink.set_max b gauges.(0) 7;
  M.Sink.observe a hists.(0) 0;
  M.Sink.observe b hists.(0) 1000;
  let snap = M.Sink.snapshot_of [ a; b ] in
  let find name =
    List.find_map
      (fun ((d : M.desc), v) -> if d.M.d_name = name then Some v else None)
      snap
  in
  (match find "t.c0" with
  | Some (M.Vint 7) -> ()
  | _ -> Alcotest.fail "counter merge should sum to 7");
  (match find "t.g0" with
  | Some (M.Vint 10) -> ()
  | _ -> Alcotest.fail "gauge merge should take max 10");
  match find "t.h0" with
  | Some (M.Vhist h) ->
      Alcotest.(check int) "count" 2 h.M.h_count;
      Alcotest.(check int) "sum" 1000 h.M.h_sum;
      Alcotest.(check int) "min" 0 h.M.h_min;
      Alcotest.(check int) "max" 1000 h.M.h_max
  | _ -> Alcotest.fail "histogram summary missing"

(* --- spans --------------------------------------------------------- *)

let with_telemetry f =
  Obs.Registry.enable ();
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.Span.reset ();
      Obs.Registry.disable ())
    f

let test_span_unbalanced () =
  with_telemetry @@ fun () ->
  Obs.Span.enter "outer";
  Alcotest.check_raises "mismatched exit"
    (Obs.Span.Unbalanced "exit \"inner\": innermost open span is \"outer\"")
    (fun () -> Obs.Span.exit_ "inner");
  Obs.Span.exit_ "outer";
  Alcotest.check_raises "exit on empty stack"
    (Obs.Span.Unbalanced "exit \"outer\": no open span")
    (fun () -> Obs.Span.exit_ "outer")

let test_span_nesting () =
  with_telemetry @@ fun () ->
  Obs.Span.with_ ~cat:"test" "parent" (fun () ->
      Obs.Span.with_ "child1" (fun () -> ());
      Obs.Span.with_ "child2" (fun () -> ()));
  match Obs.Span.roots () with
  | [ p ] ->
      Alcotest.(check string) "root name" "parent" p.Obs.Span.sp_name;
      Alcotest.(check (list string))
        "children in start order" [ "child1"; "child2" ]
        (List.map (fun c -> c.Obs.Span.sp_name) p.Obs.Span.sp_children);
      Alcotest.(check bool) "duration non-negative" true
        (p.Obs.Span.sp_dur_ns >= 0)
  | l -> Alcotest.failf "expected one root span, got %d" (List.length l)

let test_span_disabled_noop () =
  Obs.Registry.disable ();
  Obs.Span.reset ();
  (* none of these may raise or record anything while disabled *)
  Obs.Span.enter "ghost";
  Obs.Span.exit_ "mismatched-and-ignored";
  Obs.Span.with_ "ghost2" (fun () -> ());
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.Span.roots ()))

(* --- Chrome trace escaping ----------------------------------------- *)

let hostile = "we\"ird\nname\twith \\ control\x01chars"

let test_chrome_escaping () =
  with_telemetry @@ fun () ->
  Obs.Span.with_ ~cat:"test" hostile (fun () -> ());
  let s = Obs.Chrome.to_string ~process_name:hostile (Obs.Span.roots ()) in
  match J.parse s with
  | Error e -> Alcotest.failf "emitted trace does not parse: %s" e
  | Ok doc -> (
      match J.member "traceEvents" doc with
      | Some (J.List events) ->
          let names =
            List.filter_map
              (fun ev ->
                match J.member "name" ev with
                | Some (J.Str n) -> Some n
                | _ -> None)
              events
          in
          Alcotest.(check bool)
            "hostile span name survives the round-trip" true
            (List.mem hostile names)
      | _ -> Alcotest.fail "no traceEvents array")

let test_json_escape_roundtrip () =
  List.iter
    (fun s ->
      match J.parse (J.to_string (J.Str s)) with
      | Ok (J.Str s') -> Alcotest.(check string) "round-trip" s s'
      | Ok _ -> Alcotest.fail "parsed to a non-string"
      | Error e -> Alcotest.failf "parse error on %S: %s" s e)
    [ ""; hostile; "plain"; "\\"; "\""; "\x00\x1f"; "caf\xc3\xa9 \xe2\x82\xac" ]

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ merge_qcheck;
          Alcotest.test_case "merge semantics" `Quick test_merge_semantics ] );
      ( "spans",
        [ Alcotest.test_case "unbalanced raises" `Quick test_span_unbalanced;
          Alcotest.test_case "nesting order" `Quick test_span_nesting;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_span_disabled_noop ] );
      ( "export",
        [ Alcotest.test_case "chrome escaping" `Quick test_chrome_escaping;
          Alcotest.test_case "json string round-trip" `Quick
            test_json_escape_roundtrip ] ) ]
