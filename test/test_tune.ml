(* Tests for the lib/tune autotuning beam search: the enumerator's
   legality contract, seeded determinism of the search, and the gemm
   interchange anchor. *)

module S = Tune.Search
module C = Tune.Candidate

let suite = Workloads.Runner.autotune_suite
let n_workloads = List.length suite

(* Profiling a workload is the expensive part; do it at most once per
   workload across all qcheck iterations. *)
let analysed =
  let tbl =
    Array.of_list
      (List.map
         (fun (w : Workloads.Workload.t) ->
           lazy
             (let _prog, _profile, t = Xform.Driver.analyse_hir w.hir in
              (w, t)))
         suite)
  in
  fun i -> Lazy.force tbl.(i)

(* Every Nest_step the enumerator emits must already have passed the
   profiled-direction-vector legality gate: re-checking [Sched.Plan.legal]
   from the outside must agree. *)
let prop_enumerated_steps_legal =
  QCheck.Test.make ~name:"enumerated nest steps pass Plan.legal"
    ~count:(2 * n_workloads)
    (QCheck.int_bound (n_workloads - 1))
    (fun i ->
      let w, t = analysed i in
      let acts, _rejected = C.enumerate w.Workloads.Workload.hir t in
      List.for_all
        (function
          | C.Nest_step plan -> (Sched.Plan.legal t plan).Sched.Plan.lg_ok
          | C.Fuse _ | C.Distribute _ -> true)
        acts)

(* A deterministic projection of a search result: everything except the
   measured wall-clock numbers (scores and op counts come from exact
   probe-run instruction counts, so they must reproduce bit-for-bit).
   [r_best] is deliberately excluded — it is the argmin over measured
   seconds, so two verified candidates within timer noise of each other
   may legitimately swap between runs. *)
let fingerprint (r : S.t) =
  ( r.S.r_explored,
    r.S.r_illegal,
    r.S.r_apply_failed,
    List.map
      (fun (c : S.cand) ->
        (c.S.cd_level, c.S.cd_steps, S.status_string c.S.cd_status,
         c.S.cd_score, c.S.cd_ops))
      r.S.r_cands )

let search_config =
  { S.default with
    S.beam = 3;
    depth = 2;
    repeat = 1;
    (* a huge step/time budget so a slow CI machine cannot flip a
       candidate into Timed_out between the two runs *)
    timeout_factor = 64.0 }

let gemm () =
  (List.find
     (fun (w : Workloads.Workload.t) -> w.Workloads.Workload.w_name = "gemm")
     suite)
    .Workloads.Workload.hir

let test_seeded_determinism () =
  let run () =
    match S.run ~config:search_config ~name:"gemm" (gemm ()) with
    | Ok r -> fingerprint r
    | Error e -> Alcotest.failf "search bailed out: %s" e
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool)
    "same seed reproduces the search modulo timings" true (a = b)

let test_seed_changes_tiebreak () =
  (* a different seed must still explore the same legal moves (the
     enumerator is seed-independent); only ranking ties may move *)
  let explored seed =
    match
      S.run ~config:{ search_config with S.seed } ~name:"gemm" (gemm ())
    with
    | Ok r -> r.S.r_explored
    | Error e -> Alcotest.failf "search bailed out: %s" e
  in
  Alcotest.(check int) "explored count is seed-independent" (explored 1)
    (explored 99)

let test_gemm_interchange_anchor () =
  (* the textbook PGO win: gemm's innermost-stride interchange
     (d2 <-> d3) must survive the beam and verify at beam >= 2 *)
  let config = { search_config with S.beam = 4; depth = 1 } in
  match S.run ~config ~name:"gemm" (gemm ()) with
  | Error e -> Alcotest.failf "search bailed out: %s" e
  | Ok r ->
      let hit =
        List.exists
          (fun (c : S.cand) ->
            c.S.cd_status = S.Verified
            && List.exists
                 (fun s ->
                   String.length s >= 22
                   && String.sub s 0 22 = "interchange(d2 <-> d3)")
                 c.S.cd_steps)
          r.S.r_cands
      in
      Alcotest.(check bool) "interchange(d2 <-> d3) measured and verified"
        true hit

let () =
  Alcotest.run "tune"
    [ ( "enumerator",
        [ QCheck_alcotest.to_alcotest prop_enumerated_steps_legal ] );
      ( "search",
        [ Alcotest.test_case "seeded determinism" `Quick
            test_seeded_determinism;
          Alcotest.test_case "seed-independent exploration" `Quick
            test_seed_changes_tiebreak;
          Alcotest.test_case "gemm interchange anchor" `Quick
            test_gemm_interchange_anchor ] ) ]
