(* Tests for lib/stream: varint/zigzag extremes, qcheck round-trip of
   the binary codec over random event streams, framing/corruption
   rejection with the typed [Stream.Error], and the domain-sharded
   profiler's bit-identity with the sequential profiler. *)

module H = Vm.Hir

(* ------------------------------------------------------------------ *)
(* Varint / zigzag                                                     *)
(* ------------------------------------------------------------------ *)

let extreme_ints =
  [ 0; 1; -1; 2; -2; 63; 64; -64; -65; 127; 128; 255; 256; 1000000;
    -1000000; (1 lsl 30) - 1; 1 lsl 40; -(1 lsl 40); max_int - 1; max_int;
    min_int + 1; min_int ]

let test_zigzag_extremes () =
  List.iter
    (fun v ->
      let b = Buffer.create 16 in
      Stream.Varint.put_s b v;
      let r = Stream.Varint.reader (Bytes.of_string (Buffer.contents b)) in
      Alcotest.(check int)
        (Printf.sprintf "zigzag %d" v)
        v (Stream.Varint.get_s r);
      Alcotest.(check bool) "consumed" true (Stream.Varint.eof r))
    extreme_ints

let test_varint_unsigned () =
  List.iter
    (fun v ->
      let b = Buffer.create 16 in
      Stream.Varint.put_u b v;
      let r = Stream.Varint.reader (Bytes.of_string (Buffer.contents b)) in
      Alcotest.(check int) (Printf.sprintf "varint %d" v) v
        (Stream.Varint.get_u r))
    (List.filter (fun v -> v >= 0) extreme_ints)

let test_f64_roundtrip () =
  List.iter
    (fun f ->
      let b = Buffer.create 16 in
      Stream.Varint.put_f64 b f;
      let r = Stream.Varint.reader (Bytes.of_string (Buffer.contents b)) in
      let f' = Stream.Varint.get_f64 r in
      Alcotest.(check bool)
        (Printf.sprintf "f64 %h" f)
        true
        (Int64.bits_of_float f = Int64.bits_of_float f'))
    [ 0.0; -0.0; 1.0; -1.5; infinity; neg_infinity; nan; max_float;
      min_float; epsilon_float; 4e-324; 1.0000000000000002 ]

(* ------------------------------------------------------------------ *)
(* Codec round-trip over random event streams                          *)
(* ------------------------------------------------------------------ *)

(* Event streams whose exec depths are consistent with their own
   call/return events (as every interpreter-produced stream is): the
   codec derives depth from the control stream rather than storing it. *)
let gen_events : Vm.Event.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let big_int =
    oneof
      [ small_signed_int; int;
        oneofl [ max_int; min_int; max_int - 1; min_int + 1; 0; -1 ] ]
  in
  let gen_float =
    oneof
      [ float;
        oneofl
          [ 0.0; -0.0; 1.0; -1.0; infinity; neg_infinity; nan; max_float;
            min_float; 0.5; 0.25 ] ]
  in
  let gen_value =
    oneof
      [ return None;
        map (fun v -> Some (Vm.Event.I v)) big_int;
        map (fun f -> Some (Vm.Event.F f)) gen_float ]
  in
  let gen_opt_addr = oneof [ return None; map Option.some big_int ] in
  let gen_exec depth =
    int_range 0 40 >>= fun fid ->
    int_range 0 20 >>= fun bid ->
    int_range 0 30 >>= fun idx ->
    oneofl
      [ Vm.Isa.Int_alu; Vm.Isa.Fp_alu; Vm.Isa.Mem_load; Vm.Isa.Mem_store;
        Vm.Isa.Other_op ]
    >>= fun cls ->
    gen_value >>= fun value ->
    gen_opt_addr >>= fun addr_read ->
    gen_opt_addr >>= fun addr_written ->
    list_size (int_range 0 4) (int_range 0 30) >>= fun reads ->
    oneof [ return None; map Option.some (int_range 0 30) ] >>= fun writes ->
    return
      (Vm.Event.Exec
         { sid = Vm.Isa.Sid.make ~fid ~bid ~idx;
           cls; value; addr_read; addr_written; reads; writes; depth })
  in
  let small = int_range 0 99 in
  int_range 0 250 >>= fun n ->
  let rec go depth acc k =
    if k = 0 then return (List.rev acc)
    else
      frequency
        [ (6, return `Exec); (2, return `Jump); (1, return `Call);
          ((if depth > 0 then 1 else 0), return `Return) ]
      >>= function
      | `Exec -> gen_exec depth >>= fun e -> go depth (e :: acc) (k - 1)
      | `Jump ->
          small >>= fun fid ->
          small >>= fun src ->
          small >>= fun dst ->
          go depth
            (Vm.Event.Control (Vm.Event.Jump { fid; src; dst }) :: acc)
            (k - 1)
      | `Call ->
          small >>= fun caller ->
          small >>= fun site ->
          small >>= fun callee ->
          small >>= fun dst ->
          go (depth + 1)
            (Vm.Event.Control (Vm.Event.Call { caller; site; callee; dst })
            :: acc)
            (k - 1)
      | `Return ->
          small >>= fun callee ->
          small >>= fun caller ->
          small >>= fun dst ->
          go (depth - 1)
            (Vm.Event.Control (Vm.Event.Return { callee; caller; dst })
            :: acc)
            (k - 1)
  in
  go 0 [] n

let events_to_list trace =
  let acc = ref [] in
  Vm.Trace.iter (fun e -> acc := e :: !acc) trace;
  List.rev !acc

let with_temp f =
  let path = Filename.temp_file "polyprof_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* polymorphic [compare] (not [=]) so that F nan compares equal to its
   round-tripped self *)
let prop_roundtrip =
  QCheck.Test.make ~name:"codec round-trips random event streams" ~count:150
    (QCheck.make gen_events) (fun events ->
      with_temp @@ fun path ->
      let trace = Vm.Trace.of_events (Array.of_list events) in
      (* tiny chunks: force many chunk boundaries and dictionary resets *)
      let (_ : int) = Stream.Trace_file.save ~chunk_bytes:600 trace path in
      let loaded, stats = Stream.Trace_file.load path in
      stats = None && compare (events_to_list loaded) events = 0)

let prop_roundtrip_stats =
  QCheck.Test.make ~name:"stats trailer round-trips" ~count:30
    (QCheck.make QCheck.Gen.(quad nat nat nat nat))
    (fun (dyn_instrs, dyn_mem_ops, dyn_fp_ops, max_depth) ->
      with_temp @@ fun path ->
      let stats =
        { Vm.Interp.dyn_instrs; dyn_mem_ops; dyn_fp_ops; max_depth }
      in
      let trace = Vm.Trace.of_events [||] in
      let (_ : int) = Stream.Trace_file.save ~stats trace path in
      let _, stats' = Stream.Trace_file.load path in
      stats' = Some stats)

(* ------------------------------------------------------------------ *)
(* Corruption / truncation rejection                                   *)
(* ------------------------------------------------------------------ *)

let program : H.program =
  let open Vm.Hir.Dsl in
  { H.funs =
      [ H.fundef "helper" [ "x" ] [ H.Return (Some (v "x" *! i 3)) ];
        H.fundef "main" []
          [ H.for_ "k" (i 0) (i 40)
              [ H.CallS (Some "y", "helper", [ v "k" ]);
                store "out" (v "k" %! i 8) (v "y") ] ] ];
    arrays = [ ("out", 8) ];
    main = "main" }

let write_valid_trace path =
  let prog = H.lower program in
  let trace, stats = Vm.Trace.record prog in
  let (_ : int) = Stream.Trace_file.save ~stats ~chunk_bytes:600 trace path in
  Vm.Trace.n_events trace

let expect_stream_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Stream.Error, got a value" name
  | exception Stream.Error msg ->
      Alcotest.(check bool)
        (name ^ ": diagnostic is not empty")
        true
        (String.length msg > 0)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_rejects_garbage () =
  with_temp @@ fun path ->
  write_file path "definitely not a polyprof trace file";
  expect_stream_error "garbage" (fun () -> Stream.Trace_file.load path)

let test_rejects_empty_and_short () =
  with_temp @@ fun path ->
  write_file path "";
  expect_stream_error "empty" (fun () -> Stream.Trace_file.load path);
  write_file path "PLYP";
  expect_stream_error "short magic" (fun () -> Stream.Trace_file.load path);
  write_file path "PLYPROF1";
  expect_stream_error "missing version" (fun () ->
      Stream.Trace_file.load path)

let test_rejects_bad_version () =
  with_temp @@ fun path ->
  let (_ : int) = write_valid_trace path in
  let s = read_file path in
  let b = Bytes.of_string s in
  Bytes.set b 8 (Char.chr 99);
  write_file path (Bytes.to_string b);
  expect_stream_error "future version" (fun () -> Stream.Trace_file.load path)

let test_rejects_truncation () =
  with_temp @@ fun path ->
  let (_ : int) = write_valid_trace path in
  let s = read_file path in
  (* drop the tail: mid-payload truncation must be caught by framing *)
  List.iter
    (fun keep ->
      write_file path (String.sub s 0 keep);
      expect_stream_error
        (Printf.sprintf "truncated to %d bytes" keep)
        (fun () -> Stream.Trace_file.load path))
    [ String.length s - 3; String.length s / 2; 12 ]

let test_rejects_bitflip () =
  with_temp @@ fun path ->
  let (_ : int) = write_valid_trace path in
  let s = read_file path in
  let b = Bytes.of_string s in
  let pos = (String.length s / 2) + 3 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  write_file path (Bytes.to_string b);
  expect_stream_error "bit flip (CRC)" (fun () -> Stream.Trace_file.load path)

let test_missing_trailer_refused_by_par () =
  with_temp @@ fun path ->
  let prog = H.lower program in
  let trace, _stats = Vm.Trace.record prog in
  let (_ : int) = Stream.Trace_file.save trace path in
  (* no ~stats *)
  let structure = Cfg.Cfg_builder.run prog in
  expect_stream_error "missing stats trailer" (fun () ->
      Stream.Par_profile.profile_file ~domains:2 path prog ~structure)

(* ------------------------------------------------------------------ *)
(* Streaming replay / persistence on a real program                    *)
(* ------------------------------------------------------------------ *)

let test_record_to_file_matches_live () =
  with_temp @@ fun path ->
  let prog = H.lower program in
  let wi = Stream.Trace_file.record_to_file ~chunk_bytes:600 prog path in
  let trace, stats = Vm.Trace.record prog in
  let loaded, loaded_stats = Stream.Trace_file.load path in
  Alcotest.(check int) "event count" (Vm.Trace.n_events trace)
    wi.Stream.Trace_file.wi_events;
  Alcotest.(check bool) "stats trailer" true (loaded_stats = Some stats);
  Alcotest.(check bool) "same events" true
    (compare (events_to_list loaded) (events_to_list trace) = 0);
  Alcotest.(check bool) "several chunks" true (wi.wi_chunks > 1)

(* ------------------------------------------------------------------ *)
(* Parallel sharded profiling == sequential profiling                  *)
(* ------------------------------------------------------------------ *)

let result_fingerprint (r : Ddg.Depprof.result) =
  ( r.Ddg.Depprof.stmts, r.deps, r.pruned_dep_edges, r.total_dep_edges,
    r.run_stats,
    (Ddg.Sched_tree.n_nodes r.stree, Ddg.Sched_tree.depth r.stree),
    (Ddg.Cct.n_nodes r.cct, Ddg.Cct.max_depth r.cct) )

let check_par_equals_seq ~domains (w : Workloads.Workload.t) =
  let prog = Vm.Hir.lower w.Workloads.Workload.hir in
  let structure = Cfg.Cfg_builder.run prog in
  let seq = Ddg.Depprof.profile prog ~structure in
  let trace, stats = Vm.Trace.record prog in
  let par =
    Stream.Par_profile.profile_trace ~domains trace ~run_stats:stats prog
      ~structure
  in
  let p = par.Stream.Par_profile.result in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d-domain profile bit-identical to sequential"
       w.Workloads.Workload.w_name domains)
    true
    (compare (result_fingerprint seq) (result_fingerprint p) = 0);
  (* every worker replays the complete exec stream *)
  Array.iter
    (fun n ->
      Alcotest.(check int)
        (w.Workloads.Workload.w_name ^ ": domain replayed all exec events")
        par.par_stats.Stream.Par_profile.per_domain_events.(0)
        n)
    par.par_stats.Stream.Par_profile.per_domain_events

let test_par_equals_seq_suite () =
  let ws = Workloads.Rodinia.all @ [ Workloads.Gems_fdtd.workload ] in
  List.iter (check_par_equals_seq ~domains:3) ws

let test_par_domain_counts () =
  (* 1, 2 and 5 shards must all reproduce the sequential result *)
  List.iter
    (fun domains ->
      check_par_equals_seq ~domains Workloads.Backprop.workload)
    [ 1; 2; 5 ]

let test_out_of_core_pipeline () =
  with_temp @@ fun path ->
  let w = Workloads.Backprop.workload in
  let prog = Vm.Hir.lower w.Workloads.Workload.hir in
  let (_ : Stream.Trace_file.write_info) =
    Stream.Trace_file.record_to_file prog path
  in
  let live = Polyprof.run prog in
  let from_file, par_stats = Polyprof.run_trace_file ~domains:4 ~path prog in
  Alcotest.(check bool) "pipeline profile identical" true
    (compare
       (result_fingerprint live.Polyprof.profile)
       (result_fingerprint from_file.Polyprof.profile)
    = 0);
  Alcotest.(check int) "4 domains" 4 par_stats.Stream.Par_profile.domains

let () =
  Alcotest.run "stream"
    [ ( "varint",
        [ Alcotest.test_case "zigzag extremes" `Quick test_zigzag_extremes;
          Alcotest.test_case "unsigned extremes" `Quick test_varint_unsigned;
          Alcotest.test_case "f64 bits" `Quick test_f64_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip_stats ] );
      ( "rejection",
        [ Alcotest.test_case "garbage" `Quick test_rejects_garbage;
          Alcotest.test_case "empty/short" `Quick test_rejects_empty_and_short;
          Alcotest.test_case "bad version" `Quick test_rejects_bad_version;
          Alcotest.test_case "truncation" `Quick test_rejects_truncation;
          Alcotest.test_case "bit flip" `Quick test_rejects_bitflip;
          Alcotest.test_case "missing trailer" `Quick
            test_missing_trailer_refused_by_par ] );
      ( "persistence",
        [ Alcotest.test_case "record_to_file matches live" `Quick
            test_record_to_file_matches_live ] );
      ( "parallel",
        [ Alcotest.test_case "1/2/5 domains on backprop" `Quick
            test_par_domain_counts;
          Alcotest.test_case "out-of-core pipeline" `Quick
            test_out_of_core_pipeline;
          Alcotest.test_case "3 domains = sequential, whole suite" `Slow
            test_par_equals_seq_suite ] ) ]
