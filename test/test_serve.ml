(* Tests for the lib/serve profiling-as-a-service layer:

   - Prog_hash: SHA-256 against the FIPS 180-4 vectors; the job key is
     sensitive to kind, params and program, insensitive to param order;
   - Cache: LRU eviction under a byte budget, persistence round-trip,
     single-byte corruption of a persisted entry is rejected at load;
   - Engine: N concurrent submissions of one job → exactly one
     execution and N bit-identical reports; crash isolation (a raising
     executor fails its job, the pool survives); queued-deadline
     expiry; backpressure beyond queue_capacity; graceful shutdown
     drains the queue;
   - Http: request round-trip including query strings and bodies;
   - end-to-end: daemon on a Unix socket in a temp dir, submit twice
     via the client, second response is a cache hit with byte-identical
     report. *)

module J = Obs.Json_emit
module P = Serve.Proto
module E = Serve.Engine

let check = Alcotest.check
let sb = Alcotest.bool
let si = Alcotest.int
let ss = Alcotest.string

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let tmpdir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

(* --- Prog_hash ----------------------------------------------------- *)

let test_sha256 () =
  check ss "empty string"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Polyprof.Prog_hash.sha256_hex "");
  check ss "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Polyprof.Prog_hash.sha256_hex "abc");
  check ss "448-bit vector"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Polyprof.Prog_hash.sha256_hex
       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  (* crosses the 64-byte block boundary *)
  check ss "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Polyprof.Prog_hash.sha256_hex (String.make 1_000_000 'a'))

let gemm () =
  List.find
    (fun (w : Workloads.Workload.t) -> w.w_name = "gemm")
    Workloads.Polybench.all

let atax () =
  List.find
    (fun (w : Workloads.Workload.t) -> w.w_name = "atax")
    Workloads.Polybench.all

let test_job_key () =
  let g = (gemm ()).Workloads.Workload.hir in
  let a = (atax ()).Workloads.Workload.hir in
  let key = Polyprof.Prog_hash.job_key in
  check ss "deterministic"
    (key ~kind:"profile" ~params:[] g)
    (key ~kind:"profile" ~params:[] g);
  check sb "param order canonicalised" true
    (key ~kind:"autotune" ~params:[ ("beam", "2"); ("depth", "3") ] g
    = key ~kind:"autotune" ~params:[ ("depth", "3"); ("beam", "2") ] g);
  check sb "kind matters" true
    (key ~kind:"profile" ~params:[] g <> key ~kind:"verify" ~params:[] g);
  check sb "params matter" true
    (key ~kind:"autotune" ~params:[ ("beam", "2") ] g
    <> key ~kind:"autotune" ~params:[ ("beam", "3") ] g);
  check sb "program matters" true
    (key ~kind:"profile" ~params:[] g <> key ~kind:"profile" ~params:[] a);
  check si "key length" 64 (String.length (key ~kind:"profile" ~params:[] g))

(* --- Proto --------------------------------------------------------- *)

let test_proto_roundtrip () =
  let spec =
    P.spec ~kind:P.Autotune ~bench:"gemm"
      ~params:[ ("depth", "2"); ("beam", "3") ]
      ~deadline_s:1.5 ()
  in
  (match P.spec_of_json (P.spec_to_json spec) with
  | Ok spec' -> check sb "round-trip" true (spec = spec')
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  check sb "params sorted by the smart constructor" true
    (spec.P.sp_params = [ ("beam", "3"); ("depth", "2") ]);
  (match P.spec_of_json (J.Obj [ ("kind", J.Str "profile") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing bench accepted");
  match P.spec_of_json (J.Obj [ ("kind", J.Str "launder"); ("bench", J.Str "x") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind accepted"

(* --- Cache --------------------------------------------------------- *)

let entry report = { Serve.Cache.e_report = report; e_artifact = None }

let key_of i = Polyprof.Prog_hash.sha256_hex (string_of_int i)

let test_cache_lru () =
  (* each entry costs 64 (key) + 100 (report) + 256 (overhead) = 420
     bytes; a 1300-byte budget holds three *)
  let c = Serve.Cache.create ~max_bytes:1300 () in
  let report i = Printf.sprintf "%06d%s" i (String.make 94 'r') in
  Serve.Cache.add c (key_of 1) (entry (report 1));
  Serve.Cache.add c (key_of 2) (entry (report 2));
  Serve.Cache.add c (key_of 3) (entry (report 3));
  check si "three fit" 3 (Serve.Cache.stats c).Serve.Cache.c_entries;
  (* touch 1 so 2 is the least recently used *)
  ignore (Serve.Cache.find c (key_of 1));
  Serve.Cache.add c (key_of 4) (entry (report 4));
  let s = Serve.Cache.stats c in
  check si "still three" 3 s.Serve.Cache.c_entries;
  check si "one eviction" 1 s.Serve.Cache.c_evictions;
  check sb "LRU entry 2 evicted" true (Serve.Cache.find c (key_of 2) = None);
  check sb "recently used 1 kept" true (Serve.Cache.find c (key_of 1) <> None);
  check sb "budget respected" true (s.Serve.Cache.c_bytes <= 1300);
  (* an entry larger than the whole budget is not admitted *)
  Serve.Cache.add c (key_of 5) (entry (String.make 2000 'x'));
  check sb "oversized not admitted" true (Serve.Cache.find c (key_of 5) = None)

let test_cache_persistence () =
  let dir = tmpdir "polyprof_cache" in
  let k = key_of 42 in
  let e = { Serve.Cache.e_report = "the report"; e_artifact = Some "trace" } in
  let c = Serve.Cache.create ~persist_dir:dir ~max_bytes:1_000_000 () in
  Serve.Cache.add c k e;
  (* a fresh cache on the same dir reloads the entry *)
  let c2 = Serve.Cache.create ~persist_dir:dir ~max_bytes:1_000_000 () in
  check si "one loaded" 1 (Serve.Cache.stats c2).Serve.Cache.c_loaded;
  (match Serve.Cache.find c2 k with
  | Some e' -> check sb "round-trip" true (e = e')
  | None -> Alcotest.fail "persisted entry not found");
  (* flip one byte of the payload: the CRC seal must reject the file *)
  let path = Filename.concat dir (k ^ ".jc") in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let bytes = really_input_string ic n in
  close_in ic;
  let corrupted = Bytes.of_string bytes in
  Bytes.set corrupted (n - 1) (Char.chr (Char.code (Bytes.get corrupted (n - 1)) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc corrupted;
  close_out oc;
  let c3 = Serve.Cache.create ~persist_dir:dir ~max_bytes:1_000_000 () in
  let s3 = Serve.Cache.stats c3 in
  check si "corrupt entry rejected" 1 s3.Serve.Cache.c_rejected;
  check si "nothing loaded" 0 s3.Serve.Cache.c_loaded;
  check sb "not served" true (Serve.Cache.find c3 k = None);
  (* a foreign file in the dir is ignored, not trusted *)
  let oc = open_out_bin (Filename.concat dir (key_of 7 ^ ".jc")) in
  output_string oc "not a cache entry";
  close_out oc;
  let c4 = Serve.Cache.create ~persist_dir:dir ~max_bytes:1_000_000 () in
  check si "foreign file rejected" 2 (Serve.Cache.stats c4).Serve.Cache.c_rejected

(* --- Engine -------------------------------------------------------- *)

let slow_exec ?(delay = 0.02) () =
  let runs = Atomic.make 0 in
  let exec (spec : P.spec) =
    Atomic.incr runs;
    Unix.sleepf delay;
    { E.x_report =
        Printf.sprintf "{\"bench\":%s,\"run\":\"report\"}"
          (J.escape_string spec.P.sp_bench);
      x_span = None }
  in
  (runs, exec)

let submit_ok engine ~key spec =
  match E.submit engine ~key spec with
  | E.Hit j | E.Joined j | E.Enqueued j -> j
  | E.Overloaded -> Alcotest.fail "unexpected Overloaded"
  | E.Closed -> Alcotest.fail "unexpected Closed"

let test_engine_dedup_determinism () =
  (* N client domains race to submit the same job: exactly one
     execution, and every client reads the same report bytes *)
  let runs, exec = slow_exec () in
  let engine = E.create ~exec { E.default_config with E.workers = 3 } in
  let spec = P.spec ~kind:P.Profile ~bench:"gemm" () in
  let key = String.make 64 'a' in
  let n = 8 in
  let barrier = Atomic.make 0 in
  let clients =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < n do Domain.cpu_relax () done;
            let j = submit_ok engine ~key spec in
            match E.await engine j.E.j_id ~timeout_s:30.0 () with
            | Some { E.j_state = P.Done; j_report = Some r; _ } -> r
            | _ -> "AWAIT FAILED"))
  in
  let reports = List.map Domain.join clients in
  E.shutdown engine;
  check si "exactly one execution" 1 (Atomic.get runs);
  List.iter
    (fun r -> check ss "bit-identical report" (List.hd reports) r)
    reports;
  check sb "no await failure" true (List.hd reports <> "AWAIT FAILED");
  let s = E.stats engine in
  check si "all submissions counted" n s.E.s_submitted;
  check si "hits + joins = n - 1" (n - 1) (s.E.s_cache_hits + s.E.s_joined)

let test_engine_crash_isolation () =
  let exec (spec : P.spec) =
    if spec.P.sp_bench = "boom" then failwith "executor exploded"
    else { E.x_report = "{\"ok\":true}"; x_span = None }
  in
  let engine = E.create ~exec { E.default_config with E.workers = 1 } in
  let key_boom = String.make 64 'b' in
  let key_ok = String.make 64 'c' in
  let jb = submit_ok engine ~key:key_boom (P.spec ~kind:P.Profile ~bench:"boom" ()) in
  (match E.await engine jb.E.j_id ~timeout_s:10.0 () with
  | Some { E.j_state = P.Failed msg; _ } ->
      check sb "failure message carries the exception" true
        (String.length msg > 0
        && contains msg "executor exploded")
  | _ -> Alcotest.fail "crash job did not fail");
  (* the same worker domain must still be alive and serving *)
  let jo = submit_ok engine ~key:key_ok (P.spec ~kind:P.Profile ~bench:"fine" ()) in
  (match E.await engine jo.E.j_id ~timeout_s:10.0 () with
  | Some { E.j_state = P.Done; _ } -> ()
  | _ -> Alcotest.fail "worker died with the crashed job");
  (* a failed job still owns a trace: queue wait + execution, and no
     cache store (nothing was cached) *)
  (match (Option.get (E.find_job engine jb.E.j_id)).E.j_trace_json with
  | Some tree ->
      check sb "failed trace has execute span" true (contains tree "execute");
      check sb "failed trace has no cache.store" false
        (contains tree "cache.store")
  | None -> Alcotest.fail "failed job has no trace");
  (* failed jobs are never cached: resubmitting boom executes again *)
  let jb2 = submit_ok engine ~key:key_boom (P.spec ~kind:P.Profile ~bench:"boom" ()) in
  check sb "failed job not served from cache" false jb2.E.j_from_cache;
  (match E.await engine jb2.E.j_id ~timeout_s:10.0 () with
  | Some { E.j_state = P.Failed _; _ } -> ()
  | _ -> Alcotest.fail "second crash did not fail");
  E.shutdown engine;
  let s = E.stats engine in
  check si "two failures" 2 s.E.s_failed;
  check si "one success" 1 s.E.s_completed


let test_engine_deadline () =
  (* one worker busy on a slow job; a second job with a tiny deadline
     expires in the queue and fails without executing *)
  let runs, exec = slow_exec ~delay:0.3 () in
  let engine = E.create ~exec { E.default_config with E.workers = 1 } in
  let j1 =
    submit_ok engine ~key:(String.make 64 'd') (P.spec ~kind:P.Profile ~bench:"slow" ())
  in
  Unix.sleepf 0.05 (* let the worker pick up j1 *);
  let j2 =
    submit_ok engine ~key:(String.make 64 'e')
      (P.spec ~kind:P.Profile ~bench:"late" ~deadline_s:0.01 ())
  in
  (match E.await engine j2.E.j_id ~timeout_s:10.0 () with
  | Some { E.j_state = P.Failed msg; _ } ->
      check sb "deadline message" true (contains msg "deadline")
  | _ -> Alcotest.fail "expired job did not fail");
  (match E.await engine j1.E.j_id ~timeout_s:10.0 () with
  | Some { E.j_state = P.Done; _ } -> ()
  | _ -> Alcotest.fail "slow job did not finish");
  E.shutdown engine;
  check si "expired job never executed" 1 (Atomic.get runs)

let test_engine_tracing () =
  let _, exec = slow_exec ~delay:0.01 () in
  let engine = E.create ~exec { E.default_config with E.workers = 1 } in
  let spec = P.spec ~kind:P.Profile ~bench:"gemm" () in
  let key = String.make 64 'f' in
  let j = submit_ok engine ~key spec in
  check si "trace id is 16 chars" 16 (String.length j.E.j_trace);
  check sb "trace id is hex" true
    (String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       j.E.j_trace);
  (match E.await engine j.E.j_id ~timeout_s:30.0 () with
  | Some { E.j_state = P.Done; _ } -> ()
  | _ -> Alcotest.fail "traced job did not finish");
  (* the id resolves back to the job, and the span tree covers every
     phase: queue wait, execution, cache store, under the job root *)
  (match E.find_trace engine j.E.j_trace with
  | Some j' -> check si "find_trace resolves" j.E.j_id j'.E.j_id
  | None -> Alcotest.fail "trace id did not resolve");
  check sb "unknown trace id is None" true
    (E.find_trace engine (String.make 16 '0') = None);
  let tree =
    match (Option.get (E.find_job engine j.E.j_id)).E.j_trace_json with
    | Some t -> t
    | None -> Alcotest.fail "done job has no trace json"
  in
  (match J.parse tree with
  | Error e -> Alcotest.failf "trace json does not parse: %s" e
  | Ok doc -> (
      match J.member "traceEvents" doc with
      | Some (J.List events) ->
          let names =
            List.filter_map
              (fun ev ->
                match J.member "name" ev with
                | Some (J.Str n) -> Some n
                | _ -> None)
              events
          in
          List.iter
            (fun n ->
              check sb (Printf.sprintf "span %s present" n) true
                (List.mem n names))
            [ "job.profile.gemm"; "queue.wait"; "execute"; "cache.store" ]
      | _ -> Alcotest.fail "no traceEvents array"));
  (* the latency sample drained by the scraper carries the trace id *)
  (match E.drain_latencies engine with
  | [ (kind, ns, trace) ] ->
      check ss "latency kind" "profile" kind;
      check sb "latency positive" true (ns > 0);
      check ss "latency exemplar trace id" j.E.j_trace trace
  | l -> Alcotest.failf "expected one latency sample, got %d" (List.length l));
  (* a cache hit gets its own fresh trace with a cache.hit span *)
  let j2 =
    match E.submit engine ~key spec with
    | E.Hit j2 -> j2
    | _ -> Alcotest.fail "expected a cache Hit"
  in
  check sb "hit gets a fresh trace id" true (j2.E.j_trace <> j.E.j_trace);
  (match j2.E.j_trace_json with
  | Some t -> check sb "hit trace has cache.hit span" true (contains t "cache.hit")
  | None -> Alcotest.fail "hit has no trace json");
  E.shutdown engine

let test_cache_artifact_and_stability () =
  let dir = tmpdir "polyprof_cache_art" in
  let c = Serve.Cache.create ~persist_dir:dir ~max_bytes:1_000_000 () in
  let key = key_of 42 in
  Serve.Cache.add c key (entry "{\"v\":1,\"generated_utc\":\"t0\"}");
  let bytes0 = (Serve.Cache.stats c).Serve.Cache.c_bytes in
  (* a rerun differing only in generated_utc keeps the incumbent entry *)
  Serve.Cache.add c key (entry "{\"v\":1,\"generated_utc\":\"t1\"}");
  (match Serve.Cache.find c key with
  | Some e ->
      check ss "timestamp-only rerun keeps incumbent bytes"
        "{\"v\":1,\"generated_utc\":\"t0\"}" e.Serve.Cache.e_report
  | None -> Alcotest.fail "entry vanished");
  check si "byte accounting unchanged" bytes0
    (Serve.Cache.stats c).Serve.Cache.c_bytes;
  (* a real change replaces it *)
  Serve.Cache.add c key (entry "{\"v\":2,\"generated_utc\":\"t1\"}");
  (match Serve.Cache.find c key with
  | Some e ->
      check ss "real change replaces" "{\"v\":2,\"generated_utc\":\"t1\"}"
        e.Serve.Cache.e_report
  | None -> Alcotest.fail "entry vanished after update");
  (* set_artifact attaches in place, adjusts accounting and persists *)
  let before = (Serve.Cache.stats c).Serve.Cache.c_bytes in
  Serve.Cache.set_artifact c key "TRACE";
  (match Serve.Cache.find c key with
  | Some { Serve.Cache.e_artifact = Some "TRACE"; _ } -> ()
  | _ -> Alcotest.fail "artifact not attached");
  check si "accounting grew by the artifact size" (before + 5)
    (Serve.Cache.stats c).Serve.Cache.c_bytes;
  (* no-op on an absent key *)
  Serve.Cache.set_artifact c (key_of 43) "GHOST";
  check si "absent key untouched" 1 (Serve.Cache.stats c).Serve.Cache.c_entries;
  (* the artifact survives a warm restart *)
  let c2 = Serve.Cache.create ~persist_dir:dir ~max_bytes:1_000_000 () in
  match Serve.Cache.find c2 key with
  | Some { Serve.Cache.e_artifact = Some "TRACE"; e_report; _ } ->
      check ss "report survives restart" "{\"v\":2,\"generated_utc\":\"t1\"}"
        e_report
  | _ -> Alcotest.fail "artifact lost across restart"

let test_engine_backpressure () =
  let _, exec = slow_exec ~delay:0.2 () in
  let engine =
    E.create ~exec { E.default_config with E.workers = 1; queue_capacity = 2 }
  in
  let spec i = P.spec ~kind:P.Profile ~bench:(Printf.sprintf "b%d" i) () in
  let key i = Polyprof.Prog_hash.sha256_hex (string_of_int i) in
  ignore (submit_ok engine ~key:(key 0) (spec 0));
  Unix.sleepf 0.05 (* worker takes job 0; queue is empty again *);
  ignore (submit_ok engine ~key:(key 1) (spec 1));
  ignore (submit_ok engine ~key:(key 2) (spec 2));
  (* queue full now *)
  (match E.submit engine ~key:(key 3) (spec 3) with
  | E.Overloaded -> ()
  | _ -> Alcotest.fail "expected Overloaded");
  E.shutdown engine (* graceful: drains jobs 1 and 2 *);
  (match E.submit engine ~key:(key 4) (spec 4) with
  | E.Closed -> ()
  | _ -> Alcotest.fail "expected Closed after shutdown");
  let s = E.stats engine in
  check si "overload counted" 1 s.E.s_overloaded;
  check si "queued jobs drained on shutdown" 3 s.E.s_completed

(* --- Http ---------------------------------------------------------- *)

let test_http_roundtrip () =
  let req_bytes =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "POST /jobs?wait=1&n=5 HTTP/1.1\r\n";
    Buffer.add_string buf "Host: localhost\r\n";
    Buffer.add_string buf "Content-Length: 11\r\n\r\n";
    Buffer.add_string buf "hello world";
    Buffer.contents buf
  in
  let path = Filename.temp_file "polyprof_http" ".bin" in
  let oc = open_out_bin path in
  output_string oc req_bytes;
  close_out oc;
  let ic = open_in_bin path in
  (match Serve.Http.read_request ic with
  | Some rq ->
      check ss "method" "POST" rq.Serve.Http.rq_method;
      check ss "path" "/jobs" rq.Serve.Http.rq_path;
      check sb "query" true
        (List.assoc_opt "wait" rq.Serve.Http.rq_query = Some "1"
        && List.assoc_opt "n" rq.Serve.Http.rq_query = Some "5");
      check ss "body" "hello world" rq.Serve.Http.rq_body
  | None -> Alcotest.fail "request not parsed");
  close_in ic;
  Sys.remove path;
  (* garbage is Bad_request, not a crash *)
  let path = Filename.temp_file "polyprof_http" ".bin" in
  let oc = open_out_bin path in
  output_string oc "NOT HTTP AT ALL\r\n\r\n";
  close_out oc;
  let ic = open_in_bin path in
  (match Serve.Http.read_request ic with
  | exception Serve.Http.Bad_request _ -> ()
  | Some _ -> Alcotest.fail "garbage accepted"
  | None -> Alcotest.fail "garbage treated as EOF");
  close_in ic;
  Sys.remove path

(* --- end-to-end over a Unix socket --------------------------------- *)

let test_end_to_end () =
  let dir = tmpdir "polyprof_e2e" in
  let sock = Filename.concat dir "polyprof.sock" in
  let runs = Atomic.make 0 in
  let config =
    { Serve.Server.socket_path = sock;
      tcp_port = None;
      log_json = Some (Filename.concat dir "serve.log.jsonl");
      engine = { E.default_config with E.workers = 1 } }
  in
  (* the daemon loop runs on its own domain; /shutdown stops it *)
  let daemon = Domain.spawn (fun () -> Serve.Server.serve ~quiet:true config) in
  let ep = Serve.Client.Unix_sock sock in
  let rec wait_up tries =
    if tries = 0 then Alcotest.fail "daemon never came up";
    match Serve.Client.request ep ~meth:"GET" ~path:"/healthz" () with
    | Ok { Serve.Http.rs_status = 200; _ } -> ()
    | _ ->
        Unix.sleepf 0.05;
        wait_up (tries - 1)
  in
  wait_up 100;
  ignore (Atomic.get runs);
  let spec = P.spec ~kind:P.Profile ~bench:"gemm" () in
  let fetch_report () =
    match Serve.Client.submit ep spec with
    | Error e -> Alcotest.failf "submit failed: %s" e
    | Ok doc -> (
        let id =
          match Serve.Client.job_id_of doc with
          | Ok id -> id
          | Error e -> Alcotest.failf "no job id: %s" e
        in
        match Serve.Client.wait ep ~job_id:id ~timeout_s:120.0 () with
        | Error e -> Alcotest.failf "wait failed: %s" e
        | Ok _ -> (
            match
              Serve.Client.request ep ~meth:"GET"
                ~path:(Printf.sprintf "/jobs/%d/report" id)
                ()
            with
            | Ok { Serve.Http.rs_status = 200; rs_body; _ } -> (id, rs_body)
            | Ok rs -> Alcotest.failf "report HTTP %d" rs.Serve.Http.rs_status
            | Error e -> Alcotest.failf "report fetch failed: %s" e))
  in
  let id1, r1 = fetch_report () in
  let id2, r2 = fetch_report () in
  check sb "two distinct jobs" true (id1 <> id2);
  check ss "cache hit is byte-identical" r1 r2;
  (* the second submission was a hit, not a re-execution *)
  (match Serve.Client.request ep ~meth:"GET" ~path:(Printf.sprintf "/jobs/%d" id2) () with
  | Ok { Serve.Http.rs_status = 200; rs_body; _ } -> (
      match J.parse rs_body with
      | Ok doc -> (
          match J.member "from_cache" doc with
          | Some (J.Bool b) -> check sb "from_cache" true b
          | _ -> Alcotest.fail "no from_cache field")
      | Error e -> Alcotest.failf "bad status JSON: %s" e)
  | _ -> Alcotest.fail "status fetch failed");
  (* the status response carries a trace id that resolves over HTTP to
     a Chrome trace covering every phase the job passed through *)
  (match
     Serve.Client.request ep ~meth:"GET" ~path:(Printf.sprintf "/jobs/%d" id1) ()
   with
  | Ok { Serve.Http.rs_status = 200; rs_body; _ } -> (
      match J.parse rs_body with
      | Error e -> Alcotest.failf "bad status JSON: %s" e
      | Ok doc -> (
          match J.member "trace_id" doc with
          | Some (J.Str tid) -> (
              match
                Serve.Client.request ep ~meth:"GET" ~path:("/trace/" ^ tid) ()
              with
              | Ok { Serve.Http.rs_status = 200; rs_body = trace; _ } ->
                  (match J.parse trace with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "trace is not JSON: %s" e);
                  List.iter
                    (fun phase ->
                      check sb (phase ^ " span served") true
                        (contains trace phase))
                    [ "traceEvents"; "queue.wait"; "execute"; "cache.store" ]
              | _ -> Alcotest.fail "trace fetch failed")
          | _ -> Alcotest.fail "status has no trace_id"))
  | _ -> Alcotest.fail "status fetch for trace failed");
  (* live metrics report exactly one execution, with an exemplar trace *)
  (match Serve.Client.request ep ~meth:"GET" ~path:"/metrics" () with
  | Ok { Serve.Http.rs_status = 200; rs_body; _ } ->
      check sb "metrics carry the execution counter" true
        (contains rs_body "polyprof_serve_executions_total 1");
      check sb "metrics carry a latency exemplar" true
        (contains rs_body "polyprof_serve_job_profile_ns_exemplar{trace_id=")
  | _ -> Alcotest.fail "metrics fetch failed");
  (match Serve.Client.request ep ~meth:"POST" ~path:"/shutdown" () with
  | Ok { Serve.Http.rs_status = 200; _ } -> ()
  | _ -> Alcotest.fail "shutdown failed");
  Domain.join daemon;
  check sb "socket unlinked" false (Sys.file_exists sock);
  (* the JSON-lines log sink captured the whole session *)
  let log_path = Filename.concat dir "serve.log.jsonl" in
  check sb "jsonl log written" true (Sys.file_exists log_path);
  let ic = open_in log_path in
  let n = in_channel_length ic in
  let log = really_input_string ic n in
  close_in ic;
  List.iter
    (fun ev -> check sb ("log has " ^ ev) true (contains log ev))
    [ "serve.start"; "serve.job.done"; "serve.job.hit"; "serve.stop" ]

let () =
  Alcotest.run "serve"
    [ ( "prog_hash",
        [ Alcotest.test_case "sha256 vectors" `Quick test_sha256;
          Alcotest.test_case "job key" `Quick test_job_key ] );
      ( "proto",
        [ Alcotest.test_case "spec round-trip" `Quick test_proto_roundtrip ] );
      ( "cache",
        [ Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "persistence + corruption" `Quick
            test_cache_persistence;
          Alcotest.test_case "artifact attach + timestamp stability" `Quick
            test_cache_artifact_and_stability ] );
      ( "engine",
        [ Alcotest.test_case "concurrent dedup determinism" `Quick
            test_engine_dedup_determinism;
          Alcotest.test_case "crash isolation" `Quick
            test_engine_crash_isolation;
          Alcotest.test_case "queued deadline expiry" `Quick
            test_engine_deadline;
          Alcotest.test_case "request tracing" `Quick test_engine_tracing;
          Alcotest.test_case "backpressure + graceful shutdown" `Quick
            test_engine_backpressure ] );
      ( "http",
        [ Alcotest.test_case "request round-trip" `Quick test_http_roundtrip ] );
      ("e2e", [ Alcotest.test_case "unix socket session" `Quick test_end_to_end ])
    ]
