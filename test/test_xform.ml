(* Tests for the transformation-application / differential-verification
   engine (lib/xform + Vm.Hir_rewrite + Sched.Plan):

   - each source rewrite (interchange, tiling with non-divisible bounds,
     skewing, fusion, distribution) preserves the final memory image,
     checked with the differential-execution oracle;
   - qcheck properties: strip-mining any single dimension is always
     exact, and interchange over random disjoint-write rectangular nests
     preserves memory;
   - seeded-illegal transforms are rejected: a wavefront dependence
     (1, -1) makes interchange illegal — Sched.Plan.legal refuses it
     statically, and forcing the rewrite anyway is caught by the
     differential run and by the re-folded DDG;
   - the end-to-end driver verifies case studies I and II (backprop
     interchange, GemsFDTD tiling). *)

open Vm.Hir.Dsl
module H = Vm.Hir

let loc file line = { Vm.Prog.file; line }
let l1 = loc "t.c" 1
let l2 = loc "t.c" 2

let mk ?(arrays = [ ("a", 256) ]) body : H.program =
  { H.funs = [ H.fundef "main" [] body ]; arrays; main = "main" }

let check_equiv ?(expect = true) msg orig xform =
  let eq =
    Xform.Verify.observable_equiv (H.lower orig) (H.lower xform)
  in
  Alcotest.(check bool) msg expect eq.Xform.Verify.eq_ok

let rewrite_ok = function
  | Ok p -> p
  | Error e -> Alcotest.failf "rewrite failed: %s" e

(* --- unit differential tests --------------------------------------- *)

(* a[16i+j] = 3i + 5j + previous: write-disjoint, interchange legal *)
let rect_nest =
  mk
    [ H.for_ ~loc:l1 "i" (i 0) (i 9)
        [ H.for_ ~loc:l2 "j" (i 0) (i 13)
            [ store "a"
                ((v "i" *! i 16) +! v "j")
                ("a".%[(v "i" *! i 16) +! v "j"]
                +! (v "i" *! i 3) +! (v "j" *! i 5)) ] ] ]

let test_interchange_equiv () =
  let x = rewrite_ok (Vm.Hir_rewrite.interchange rect_nest ~outer:l1 ~inner:l2) in
  check_equiv "interchange preserves memory" rect_nest x

let test_tile_nondivisible () =
  (* 9 and 13 are not multiples of 4: the upper-bound guards matter *)
  let x = rewrite_ok (Vm.Hir_rewrite.tile rect_nest ~band:[ l1; l2 ] ~size:4) in
  check_equiv "tile with remainder tiles preserves memory" rect_nest x

let test_tile_single_dim () =
  let x = rewrite_ok (Vm.Hir_rewrite.tile rect_nest ~band:[ l2 ] ~size:5) in
  check_equiv "strip-mine preserves memory" rect_nest x

let test_skew_equiv () =
  let x = rewrite_ok (Vm.Hir_rewrite.skew rect_nest ~outer:l1 ~inner:l2 ~factor:2) in
  check_equiv "skew preserves memory" rect_nest x

let test_fuse_equiv () =
  let two =
    mk
      [ H.for_ ~loc:l1 "i" (i 0) (i 20) [ store "a" (v "i") (v "i" *! i 2) ];
        H.for_ ~loc:l2 "j" (i 0) (i 20)
          [ store "a" (v "j" +! i 100) ("a".%[v "j"] +! i 1) ] ]
  in
  let x = rewrite_ok (Vm.Hir_rewrite.fuse two ~first:l1 ~second:l2) in
  check_equiv "fusion of independent loops preserves memory" two x

let test_distribute_equiv () =
  let fused =
    mk
      [ H.for_ ~loc:l1 "i" (i 0) (i 20)
          [ store "a" (v "i") (v "i" *! i 2);
            store "a" (v "i" +! i 100) (v "i" +! i 7) ] ]
  in
  let x = rewrite_ok (Vm.Hir_rewrite.distribute fused ~loc:l1 ~at:1) in
  check_equiv "distribution of independent statements preserves memory" fused x

let test_interchange_rejects_triangular () =
  let tri =
    mk
      [ H.for_ ~loc:l1 "i" (i 0) (i 9)
          [ H.for_ ~loc:l2 "j" (i 0) (v "i")
              [ store "a" ((v "i" *! i 16) +! v "j") (i 1) ] ] ]
  in
  Alcotest.(check bool) "triangular bounds rejected" true
    (Result.is_error (Vm.Hir_rewrite.interchange tri ~outer:l1 ~inner:l2))

(* --- seeded-illegal: wavefront dependence (1, -1) ------------------- *)

(* a[16i+j] += a[16(i-1) + (j+1)]: dependence distance (1, -1), legal as
   written, reversed by an interchange. *)
let wavefront =
  let idx ii jj = (ii *! i 16) +! jj in
  mk
    [ H.for_ ~loc:l1 "i" (i 1) (i 9)
        [ H.for_ ~loc:l2 "j" (i 0) (i 14)
            [ store "a"
                (idx (v "i") (v "j"))
                ("a".%[idx (v "i") (v "j")]
                +! "a".%[idx (v "i" -! i 1) (v "j" +! i 1)]
                +! i 1) ] ] ]

let test_illegal_interchange_static () =
  (* Sched.Plan.legal refuses the interchange from the profiled
     direction vectors alone *)
  let t = Polyprof.run_hir wavefront in
  let nest =
    List.find
      (fun (n : Sched.Depanalysis.nest_info) -> n.Sched.Depanalysis.ndepth = 2)
      t.Polyprof.analysis.Sched.Depanalysis.nests
  in
  let plan =
    { Sched.Plan.p_nest = nest;
      p_targets =
        [| { Sched.Plan.t_loc = Some l1; t_fid = Some 0 };
           { Sched.Plan.t_loc = Some l2; t_fid = Some 0 } |];
      p_steps = [ Sched.Transform.Interchange (1, 2) ];
      p_stride01 = [| 1.0; 1.0 |];
      p_interchange = Some (1, 2);
      p_weight = nest.Sched.Depanalysis.nweight }
  in
  let lg = Sched.Plan.legal t.Polyprof.analysis plan in
  Alcotest.(check bool) "wavefront interchange statically rejected" false
    lg.Sched.Plan.lg_ok;
  (* ... and the pipeline never suggests it in the first place *)
  List.iter
    (fun (p : Sched.Plan.t) ->
      Alcotest.(check bool) "not suggested" false
        (List.exists
           (function Sched.Transform.Interchange _ -> true | _ -> false)
           p.Sched.Plan.p_steps))
    (Sched.Plan.plans_of_feedback t.Polyprof.feedback)

let test_illegal_interchange_differential () =
  (* force the rewrite anyway: the differential run catches it.  (The
     re-folded DDG of the transformed program cannot: a profiler only
     ever observes dependences that flow forward in the order it
     executed, so the reversed flow dependence silently *disappears*
     from the transformed run instead of showing up negative — which is
     exactly why the memory-image comparison is the oracle.) *)
  let x = rewrite_ok (Vm.Hir_rewrite.interchange wavefront ~outer:l1 ~inner:l2) in
  check_equiv ~expect:false "forced illegal interchange caught" wavefront x;
  (* the original program's folded DDG, on the other hand, is
     consistent: every piece lexicographically non-negative *)
  let t = Polyprof.run_hir wavefront in
  let dl = Xform.Verify.dynamic_legality t.Polyprof.analysis in
  Alcotest.(check bool) "original DDG is self-consistent" true
    dl.Xform.Verify.dl_ok

let test_legal_skew_then_interchange () =
  (* the classic fix: skewing j by i turns (1, -1) into (1, 0) and the
     plan becomes legal *)
  let t = Polyprof.run_hir wavefront in
  let nest =
    List.find
      (fun (n : Sched.Depanalysis.nest_info) -> n.Sched.Depanalysis.ndepth = 2)
      t.Polyprof.analysis.Sched.Depanalysis.nests
  in
  let plan =
    { Sched.Plan.p_nest = nest;
      p_targets =
        [| { Sched.Plan.t_loc = Some l1; t_fid = Some 0 };
           { Sched.Plan.t_loc = Some l2; t_fid = Some 0 } |];
      p_steps =
        [ Sched.Transform.Skew (1, 2, 1); Sched.Transform.Interchange (1, 2) ];
      p_stride01 = [| 1.0; 1.0 |];
      p_interchange = Some (1, 2);
      p_weight = nest.Sched.Depanalysis.nweight }
  in
  let lg = Sched.Plan.legal t.Polyprof.analysis plan in
  Alcotest.(check bool) "skewed interchange legal" true lg.Sched.Plan.lg_ok

(* --- qcheck properties ---------------------------------------------- *)

(* random rectangular nest writing a[W*i + j] with reads at affine
   offsets of (i, j) kept in range: writes are disjoint per iteration,
   so any loop permutation / strip-mining preserves the memory image *)
let gen_nest =
  QCheck.make ~print:(fun (ni, nj, c1, c2, c3, size) ->
      Printf.sprintf "ni=%d nj=%d c=(%d,%d,%d) size=%d" ni nj c1 c2 c3 size)
    QCheck.Gen.(
      map
        (fun ((ni, nj), (c1, c2), (c3, size)) -> (ni, nj, c1, c2, c3, size))
        (triple
           (pair (int_range 3 7) (int_range 3 7))
           (pair (int_range 0 3) (int_range 0 3))
           (pair (int_range 0 7) (int_range 1 8))))

let nest_of (ni, nj, c1, c2, c3, _) =
  let w = 8 in
  (* read address (c1*i + c2*j + c3) mod 64 stays inside the array *)
  let raddr = ((v "i" *! i c1) +! (v "j" *! i c2) +! i c3) %! i 64 in
  mk ~arrays:[ ("a", 64); ("b", 64) ]
    [ H.for_ ~loc:l1 "i" (i 0) (i ni)
        [ H.for_ ~loc:l2 "j" (i 0) (i nj)
            [ store "a"
                ((v "i" *! i w) +! v "j")
                ("b".%[raddr] +! (v "i" *! i 3) +! v "j") ] ] ]

let prop_stripmine_exact =
  QCheck.Test.make ~name:"strip-mining any dim preserves memory" ~count:60
    gen_nest (fun ((_, _, _, _, _, size) as g) ->
      let p = nest_of g in
      List.for_all
        (fun band ->
          match Vm.Hir_rewrite.tile p ~band ~size with
          | Error e -> QCheck.Test.fail_reportf "tile failed: %s" e
          | Ok x ->
              (Xform.Verify.observable_equiv (H.lower p) (H.lower x))
                .Xform.Verify.eq_ok)
        [ [ l1 ]; [ l2 ]; [ l1; l2 ] ])

let prop_interchange_disjoint_writes =
  QCheck.Test.make
    ~name:"interchange of a disjoint-write rectangular nest preserves memory"
    ~count:60 gen_nest (fun g ->
      let p = nest_of g in
      match Vm.Hir_rewrite.interchange p ~outer:l1 ~inner:l2 with
      | Error e -> QCheck.Test.fail_reportf "interchange failed: %s" e
      | Ok x ->
          (Xform.Verify.observable_equiv (H.lower p) (H.lower x))
            .Xform.Verify.eq_ok)

(* --- end-to-end: the paper's case studies --------------------------- *)

let test_backprop_end_to_end () =
  let s =
    Polyprof.apply_and_verify ~max_plans:2 ~name:"backprop"
      Workloads.Backprop.workload.Workloads.Workload.hir
  in
  Alcotest.(check int) "no plan rejected" 0 s.Xform.Driver.sm_rejected;
  Alcotest.(check bool) "plans verified" true (s.Xform.Driver.sm_verified > 0);
  (* the Table 3 nest: interchange applied and the innermost stride-0/1
     profile improves *)
  let interchanged =
    List.exists
      (fun (e : Xform.Driver.entry) ->
        List.exists
          (function Xform.Apply.A_interchange _ -> true | _ -> false)
          e.Xform.Driver.en_applied
        && e.Xform.Driver.en_status = Xform.Driver.Verified
        &&
        match e.Xform.Driver.en_profit with
        | Some p -> p.Xform.Driver.pf_after > p.Xform.Driver.pf_before
        | None -> false)
      s.Xform.Driver.sm_entries
  in
  Alcotest.(check bool) "interchange verified with stride improvement" true
    interchanged

let test_gems_end_to_end () =
  let s =
    Polyprof.apply_and_verify ~max_plans:1 ~name:"gems_fdtd"
      Workloads.Gems_fdtd.workload.Workloads.Workload.hir
  in
  Alcotest.(check int) "no plan rejected" 0 s.Xform.Driver.sm_rejected;
  let tiled =
    List.exists
      (fun (e : Xform.Driver.entry) ->
        List.exists
          (function Xform.Apply.A_tile _ -> true | _ -> false)
          e.Xform.Driver.en_applied
        && e.Xform.Driver.en_status = Xform.Driver.Verified)
      s.Xform.Driver.sm_entries
  in
  Alcotest.(check bool) "tiling applied and verified" true tiled

let test_runner_xverify () =
  let o =
    Workloads.Runner.run ~xverify:true Workloads.Backprop.workload
  in
  (match o.Workloads.Runner.xform with
  | None -> Alcotest.fail "xverify did not run"
  | Some s ->
      Alcotest.(check int) "no rejections" 0 s.Xform.Driver.sm_rejected);
  let table = Workloads.Runner.verify_table [ (Workloads.Backprop.workload, o) ] in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table mentions the benchmark" true
    (contains "backprop" table)

let () =
  Alcotest.run "xform"
    [ ( "rewrites",
        [ Alcotest.test_case "interchange" `Quick test_interchange_equiv;
          Alcotest.test_case "tile (non-divisible)" `Quick test_tile_nondivisible;
          Alcotest.test_case "strip-mine" `Quick test_tile_single_dim;
          Alcotest.test_case "skew" `Quick test_skew_equiv;
          Alcotest.test_case "fuse" `Quick test_fuse_equiv;
          Alcotest.test_case "distribute" `Quick test_distribute_equiv;
          Alcotest.test_case "triangular interchange rejected" `Quick
            test_interchange_rejects_triangular ] );
      ( "illegal",
        [ Alcotest.test_case "static rejection" `Quick
            test_illegal_interchange_static;
          Alcotest.test_case "differential rejection" `Quick
            test_illegal_interchange_differential;
          Alcotest.test_case "skew legalises" `Quick
            test_legal_skew_then_interchange ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_stripmine_exact; prop_interchange_disjoint_writes ] );
      ( "end-to-end",
        [ Alcotest.test_case "backprop (Table 3)" `Quick
            test_backprop_end_to_end;
          Alcotest.test_case "gems_fdtd (Table 4)" `Quick test_gems_end_to_end;
          Alcotest.test_case "runner xverify" `Quick test_runner_xverify ] ) ]
