(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (PPoPP 2019, "Data-Flow/Dependence Profiling for Structured
   Transformations").

   - Tables 1 & 2 (+ Fig. 6): raw dependence stream of bpnn_layerforward
     and its folded polyhedral form.
   - Table 3: backprop case study - feedback + measured interchange
     speedups (Bechamel, this machine).
   - Table 4: GemsFDTD case study - tiling feedback + measured speedups.
   - Table 5: the full mini-Rodinia summary, measured vs. paper.
   - Fig. 7: annotated flame graph for backprop (SVG + ASCII).
   - Section 8 overhead: instrumentation slowdown over native execution.

   Absolute numbers differ from the paper (the substrate is MiniVM, the
   machine is not the authors' Xeon); the comparison targets are the
   shapes: who wins, what is suggested, which reasons block Polly. *)

open Bechamel
open Bechamel.Toolkit

let section title =
  Format.printf "@.=======================================================@.";
  Format.printf "== %s@." title;
  Format.printf "=======================================================@."

(* ------------------------------------------------------------------ *)
(* Bechamel helper: nanoseconds per run                                *)
(* ------------------------------------------------------------------ *)

let time_ns ~name fn =
  let test = Test.make ~name (Staged.stage fn) in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
  | v :: _ -> (
      match Analyze.OLS.estimates v with
      | Some (e :: _) -> e
      | _ -> nan)
  | [] -> nan

(* ------------------------------------------------------------------ *)
(* Tables 1 & 2: dependency stream and folded dependences (Fig. 6)     *)
(* ------------------------------------------------------------------ *)

(* the Fig. 6 kernel at the paper's size: n2 = 16, n1 = 42 *)
let fig6_hir : Vm.Hir.program =
  let open Vm.Hir.Dsl in
  let module H = Vm.Hir in
  let n1 = 42 and n2 = 16 in
  { H.funs =
      Workloads.Workload.libm
      @ [ H.fundef "bpnn_layerforward" [ "l1"; "l2"; "conn"; "n1"; "n2" ]
            [ H.Store (v "l1", f 1.0);
              H.for_ ~loc:(Workloads.Workload.loc "backprop.c" 253) "j" (i 1)
                (v "n2" +! i 1)
                [ H.Let ("sum", f 0.0);
                  H.for_ ~loc:(Workloads.Workload.loc "backprop.c" 254) "k"
                    (i 0) (v "n1" +! i 1)
                    [ H.Let ("tmp1", load (v "conn" +! v "k"));
                      H.Let ("tmp2", load (v "tmp1" +! v "j"));
                      H.Let ("tmp3", load (v "l1" +! v "k"));
                      H.Let ("sum", v "sum" +? (v "tmp2" *? v "tmp3")) ];
                  H.CallS (Some "sq", "squash", [ v "sum" ]);
                  H.Store (v "l2" +! v "j", v "sq") ] ];
          H.fundef "main" []
            (Workloads.Workload.init_float_array "l1v" (n1 + 1)
            @ Workloads.Workload.init_float_array "rows" ((n1 + 1) * (n2 + 1))
            @ [ (* conn is a row-pointer table, exactly like Fig. 6's
                   two-level array *)
                Workloads.Workload.init_int_array "connp" (n1 + 1) (fun t ->
                    base "rows" +! (t *! i (n2 + 1)));
                H.CallS
                  ( None, "bpnn_layerforward",
                    [ base "l1v"; base "l2v"; base "connp"; i n1; i n2 ] ) ]) ];
    arrays =
      [ ("l1v", n1 + 1); ("l2v", n2 + 1); ("rows", (n1 + 1) * (n2 + 1));
        ("connp", n1 + 1) ];
    main = "main" }

let tables_1_and_2 () =
  section "Tables 1 & 2: dependency stream of bpnn_layerforward (Fig. 6)";
  let prog = Vm.Hir.lower fig6_hir in
  let structure = Cfg.Cfg_builder.run prog in
  let kernel_fid = (Vm.Prog.func_by_name prog "bpnn_layerforward").Vm.Prog.fid in
  (* Table 1: tap the raw dependence stream with a bespoke pass built
     from the public Instrumentation-II pieces *)
  let iiv = Ddg.Iiv.create () in
  let levents = Ddg.Loop_events.create structure ~main:prog.Vm.Prog.main in
  let shadow = Ddg.Shadow.create () in
  let samples : (string, (int array * int array) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter (fun e -> Ddg.Iiv.update iiv e) (Ddg.Loop_events.start levents);
  let on_control ev =
    (match ev with
    | Vm.Event.Call _ -> Ddg.Shadow.push_frame shadow
    | Vm.Event.Return _ -> Ddg.Shadow.pop_frame shadow
    | Vm.Event.Jump _ -> ());
    List.iter (fun e -> Ddg.Iiv.update iiv e) (Ddg.Loop_events.feed levents ev)
  in
  let on_exec (e : Vm.Event.exec) =
    let coords = Ddg.Iiv.coords iiv in
    let ctx = Ddg.Iiv.context_id iiv in
    let record (o : Ddg.Shadow.origin) =
      if
        Vm.Isa.Sid.fid e.sid = kernel_fid
        && Vm.Isa.Sid.fid o.o_sid = kernel_fid
        && Array.length o.o_coords = 2
        && Array.length coords = 2
      then begin
        let key =
          Printf.sprintf "I%d -> I%d"
            (Vm.Isa.Sid.idx o.o_sid + 1)
            (Vm.Isa.Sid.idx e.sid + 1)
        in
        let cell =
          match Hashtbl.find_opt samples key with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.add samples key r;
              r
        in
        cell := (coords, o.o_coords) :: !cell
      end
    in
    List.iter
      (fun reg ->
        match Ddg.Shadow.last_reg_writer shadow ~reg with
        | Some o -> record o
        | None -> ())
      e.reads;
    (match e.addr_read with
    | Some addr -> (
        match Ddg.Shadow.last_mem_writer shadow ~addr with
        | Some o -> record o
        | None -> ())
    | None -> ());
    (match e.addr_written with
    | Some addr ->
        Ddg.Shadow.write_mem shadow ~addr
          { o_sid = e.sid; o_ctx = ctx; o_coords = coords }
    | None -> ());
    match e.writes with
    | Some reg ->
        Ddg.Shadow.write_reg shadow ~reg
          { o_sid = e.sid; o_ctx = ctx; o_coords = coords }
    | None -> ()
  in
  let (_ : Vm.Interp.stats) =
    Vm.Interp.run ~callbacks:{ Vm.Interp.on_control; on_exec } prog
  in
  Format.printf
    "Table 1 (input dependency stream; first samples per dependence):@.";
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) samples []) in
  List.iter
    (fun key ->
      let all = List.rev !(Hashtbl.find samples key) in
      Format.printf "  %s   (%d dynamic edges)@." key (List.length all);
      List.iteri
        (fun k (c, p) ->
          if k < 3 then
            Format.printf "    (cj,ck) = %s   <- (cj',ck') = %s@."
              (Pp_util.Vecint.to_string c) (Pp_util.Vecint.to_string p))
        all)
    keys;
  (* Table 2: the folded output, straight from the pipeline *)
  Format.printf "@.Table 2 (folded dependences of the kernel):@.";
  let res = Ddg.Depprof.profile prog ~structure in
  List.iter
    (fun (d : Ddg.Depprof.dep_info) ->
      if
        Vm.Isa.Sid.fid d.dk.src_sid = kernel_fid
        && Vm.Isa.Sid.fid d.dk.dst_sid = kernel_fid
        && d.dst_depth = 2 && d.src_depth = 2
      then begin
        Format.printf "  I%d -> I%d:@."
          (Vm.Isa.Sid.idx d.dk.src_sid + 1)
          (Vm.Isa.Sid.idx d.dk.dst_sid + 1);
        List.iter
          (fun p ->
            Format.printf "    %a@."
              (Fold.pp_piece ~names:[| "cj"; "ck" |]
                 ~label_names:[| "cj'"; "ck'" |])
              p)
          d.d_pieces
      end)
    res.Ddg.Depprof.deps;
  Format.printf
    "@.(SCEV recognition pruned %d of %d dynamic dependence edges)@."
    res.Ddg.Depprof.pruned_dep_edges res.Ddg.Depprof.total_dep_edges

(* ------------------------------------------------------------------ *)
(* Table 3: backprop case study                                        *)
(* ------------------------------------------------------------------ *)

let table_3 () =
  section "Table 3: backprop case study";
  let o = Workloads.Runner.run Workloads.Backprop.workload in
  (match o.pipeline with
  | Some t ->
      Format.printf "%a@." (Sched.Feedback.render ?fname:None) t.Polyprof.feedback
  | None -> Format.printf "(pipeline bailed out?)@.");
  (* measured speedups of the suggested interchange, like the paper's
     GFlop/s comparison on its Xeon *)
  let n1 = 32768 and n2 = 16 in
  let inst = Kernels.Backprop_kernels.create ~n1 ~n2 in
  let t_lf_orig =
    time_ns ~name:"layerforward-original" (fun () ->
        Kernels.Backprop_kernels.layerforward_original inst)
  in
  let t_lf_int =
    time_ns ~name:"layerforward-interchanged" (fun () ->
        Kernels.Backprop_kernels.layerforward_interchanged inst)
  in
  let t_aw_orig =
    time_ns ~name:"adjust-original" (fun () ->
        Kernels.Backprop_kernels.adjust_original inst)
  in
  let t_aw_int =
    time_ns ~name:"adjust-interchanged" (fun () ->
        Kernels.Backprop_kernels.adjust_interchanged inst)
  in
  Format.printf
    "measured on this machine (n1=%d, n2=%d):@.\
    \  bpnn_layerforward : %.0f ns -> %.0f ns  (speedup %.2fx; paper: 5.3x \
     on a Xeon)@.\
    \  bpnn_adjust_weights: %.0f ns -> %.0f ns  (speedup %.2fx; paper: 7.8x)@."
    n1 n2 t_lf_orig t_lf_int (t_lf_orig /. t_lf_int) t_aw_orig t_aw_int
    (t_aw_orig /. t_aw_int)

(* ------------------------------------------------------------------ *)
(* Table 4: GemsFDTD case study                                        *)
(* ------------------------------------------------------------------ *)

let table_4 () =
  section "Table 4: GemsFDTD case study";
  let o = Workloads.Runner.run Workloads.Gems_fdtd.workload in
  (match o.pipeline with
  | Some t -> Format.printf "%a@." (Sched.Feedback.render ?fname:None) t.Polyprof.feedback
  | None -> Format.printf "(pipeline bailed out?)@.");
  let n = 256 in
  let inst = Kernels.Gems_kernels.create ~n in
  let t_orig =
    time_ns ~name:"gems-update-original" (fun () ->
        Kernels.Gems_kernels.update_original inst)
  in
  let t_tiled =
    time_ns ~name:"gems-update-tiled" (fun () ->
        Kernels.Gems_kernels.update_tiled ~tile:12 inst)
  in
  Format.printf
    "measured on this machine (n=%d):@.\
    \  update kernel: %.0f ns -> %.0f ns  (speedup %.2fx; paper: 2.6x / 1.9x \
     with OMP wavefront)@."
    n t_orig t_tiled (t_orig /. t_tiled)

(* ------------------------------------------------------------------ *)
(* Table 5: Rodinia summary                                            *)
(* ------------------------------------------------------------------ *)

let table_5 () =
  section "Table 5: mini-Rodinia summary (measured, with paper reference rows)";
  let results = Workloads.Runner.run_all () in
  print_string (Workloads.Runner.table5_with_paper results);
  (* Experiment II summary *)
  Format.printf
    "@.Experiment II (static Polly baseline): failure reasons per benchmark@.";
  List.iter
    (fun ((w : Workloads.Workload.t), (o : Workloads.Runner.outcome)) ->
      Format.printf "  %-14s measured %-7s paper %-7s %s@." w.w_name
        (Staticbase.Polly_lite.reasons_string o.polly)
        (match w.paper with Some p -> p.p_polly | None -> "?")
        (if
           match w.paper with
           | Some p -> Staticbase.Polly_lite.reasons_string o.polly = p.p_polly
           | None -> false
         then "[match]"
         else "[differs]"))
    results

(* ------------------------------------------------------------------ *)
(* Case studies, closed loop: apply the feedback and verify it         *)
(* ------------------------------------------------------------------ *)

let casestudy_verify () =
  section
    "Case studies I & II, closed loop: apply the suggested schedules and \
     verify them differentially";
  let detailed =
    [ Workloads.Backprop.workload; Workloads.Gems_fdtd.workload ]
  in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let s = Polyprof.apply_and_verify ~name:w.w_name w.hir in
      Format.printf "%a@." Xform.Driver.pp_summary s)
    detailed;
  Format.printf
    "@.Suite-wide summary (every benchmark, every suggested plan):@.";
  let results = Workloads.Runner.run_all ~xverify:true () in
  print_string (Workloads.Runner.verify_table results)

(* ------------------------------------------------------------------ *)
(* Fig. 7: annotated flame graph                                        *)
(* ------------------------------------------------------------------ *)

let fig_7 () =
  section "Fig. 7: annotated flame graph for backprop";
  let t = Polyprof.run_hir Workloads.Backprop.workload.Workloads.Workload.hir in
  let path = "docs/fig7_backprop.svg" in
  (if not (Sys.file_exists "docs") then
     try Sys.mkdir "docs" 0o755 with Sys_error _ -> ());
  let annot = Report.Flamegraph.annot_of_analysis t.Polyprof.prog t.Polyprof.analysis in
  Report.Flamegraph.write_svg ~path ~annot
    ~name:(Polyprof.ctx_name t) t.Polyprof.profile.Ddg.Depprof.stree;
  Format.printf "SVG written to %s@.ASCII rendering:@.%s@." path
    (Polyprof.flamegraph_ascii ~width:40 t)

(* ------------------------------------------------------------------ *)
(* Pipeline micro-benchmarks (Bechamel)                                 *)
(* ------------------------------------------------------------------ *)

let perf () =
  section "Pipeline micro-benchmarks";
  let backprop = Vm.Hir.lower Workloads.Backprop.workload.Workloads.Workload.hir in
  let structure = Cfg.Cfg_builder.run backprop in
  let t_interp =
    time_ns ~name:"interp-backprop" (fun () ->
        ignore (Vm.Interp.run backprop))
  in
  let t_instr1 =
    time_ns ~name:"instrumentation-I" (fun () ->
        ignore (Cfg.Cfg_builder.run backprop))
  in
  let t_instr2 =
    time_ns ~name:"instrumentation-II+fold" (fun () ->
        ignore (Ddg.Depprof.profile backprop ~structure))
  in
  (* folding throughput on a 10k-point triangle *)
  let tri_points =
    let pts = ref [] in
    for i = 0 to 140 do
      for j = 0 to i do
        pts := ([| i; j |], [| (17 * i) + j |]) :: !pts
      done
    done;
    List.rev !pts
  in
  let t_fold =
    time_ns ~name:"fold-10k-triangle" (fun () ->
        ignore (Fold.fold_points ~dim:2 ~label_dim:1 tri_points))
  in
  (* FM vs LP bounds on a 3-D triangle-ish polyhedron *)
  let p3 =
    Minisl.Polyhedron.make 3
      [ Minisl.Constr.make Ge [| 1; 0; 0 |] 0;
        Minisl.Constr.make Ge [| -1; 0; 0 |] 50;
        Minisl.Constr.make Ge [| 1; -1; 0 |] 0;
        Minisl.Constr.make Ge [| 0; 1; 0 |] 0;
        Minisl.Constr.make Ge [| 0; 1; -1 |] 0;
        Minisl.Constr.make Ge [| 0; 0; 1 |] 0 ]
  in
  let obj = Minisl.Affine.of_int_coeffs [| 1; -2; 3 |] 0 in
  let t_fm =
    time_ns ~name:"bounds-FM" (fun () -> ignore (Minisl.Polyhedron.bounds p3 obj))
  in
  let t_lp =
    time_ns ~name:"bounds-LP" (fun () -> ignore (Minisl.Lp.bounds p3 obj))
  in
  let n_ops = float_of_int (Vm.Interp.run backprop).Vm.Interp.dyn_instrs in
  Format.printf "interpreter            : %8.0f ns/run (%.0f Mops/s)@." t_interp
    (n_ops /. t_interp *. 1e3);
  Format.printf "instrumentation I      : %8.0f ns/run@." t_instr1;
  Format.printf "instrumentation II+fold: %8.0f ns/run (%.1fx the plain run)@."
    t_instr2 (t_instr2 /. t_interp);
  Format.printf "fold 10k-point triangle: %8.0f ns/run@." t_fold;
  Format.printf "bounds, 3-D, FM        : %8.0f ns@." t_fm;
  Format.printf "bounds, 3-D, LP        : %8.0f ns@." t_lp

(* ------------------------------------------------------------------ *)
(* Section 8: profiling overhead                                        *)
(* ------------------------------------------------------------------ *)

let overhead () =
  section "Section 8: profiling overhead (paper: 3h06' CPU for the suite)";
  let total_plain = ref 0.0 and total_prof = ref 0.0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let prog = Vm.Hir.lower w.hir in
      let t0 = Obs.Clock.monotonic () in
      let (_ : Vm.Interp.stats) = Vm.Interp.run prog in
      let t1 = Obs.Clock.monotonic () in
      let structure = Cfg.Cfg_builder.run prog in
      let (_ : Ddg.Depprof.result) = Ddg.Depprof.profile prog ~structure in
      let t2 = Obs.Clock.monotonic () in
      total_plain := !total_plain +. (t1 -. t0);
      total_prof := !total_prof +. (t2 -. t1))
    Workloads.Rodinia.all;
  Format.printf
    "uninstrumented MiniVM execution of the suite: %.2fs@.\
     instrumentation I+II (CFG recovery + DDG profiling + folding): %.2fs@.\
     slowdown factor: %.1fx@."
    !total_plain !total_prof
    (!total_prof /. (max 1e-9 !total_plain))

(* ------------------------------------------------------------------ *)
(* Fig. 5a: schedule tree vs calling-context tree                       *)
(* ------------------------------------------------------------------ *)

let fig_5 () =
  section "Fig. 5a: dynamic schedule tree vs calling-context tree";
  Format.printf
    "The CCT encodes calling contexts but no loops; its depth grows with      recursion.@.The dynamic schedule tree folds recursion into loop      dimensions.@.@.";
  let header = [ "benchmark"; "CCT depth"; "CCT nodes"; "stree depth"; "stree nodes" ] in
  let rows =
    List.filter_map
      (fun (w : Workloads.Workload.t) ->
        if w.w_name = "streamcluster" then None
        else begin
          let prog = Vm.Hir.lower w.hir in
          let structure = Cfg.Cfg_builder.run prog in
          let res = Ddg.Depprof.profile prog ~structure in
          Some
            [ w.w_name;
              string_of_int (Ddg.Cct.max_depth res.Ddg.Depprof.cct);
              string_of_int (Ddg.Cct.n_nodes res.Ddg.Depprof.cct);
              string_of_int (Ddg.Sched_tree.depth res.Ddg.Depprof.stree);
              string_of_int (Ddg.Sched_tree.n_nodes res.Ddg.Depprof.stree) ]
        end)
      [ Workloads.Backprop.workload; Workloads.Heartwall.workload;
        Workloads.Cfd.workload; Workloads.Lud.workload ]
  in
  (* and the recursive example, where the contrast is the point *)
  let prog = Vm.Hir.lower Workloads.Figure3.ex2 in
  let structure = Cfg.Cfg_builder.run prog in
  let res = Ddg.Depprof.profile prog ~structure in
  let rows =
    rows
    @ [ [ "fig3-ex2 (recursive)";
          string_of_int (Ddg.Cct.max_depth res.Ddg.Depprof.cct);
          string_of_int (Ddg.Cct.n_nodes res.Ddg.Depprof.cct);
          string_of_int (Ddg.Sched_tree.depth res.Ddg.Depprof.stree);
          string_of_int (Ddg.Sched_tree.n_nodes res.Ddg.Depprof.stree) ] ]
  in
  print_string (Report.Texttable.render ~header rows)

(* ------------------------------------------------------------------ *)
(* Ablations: the folding design choices DESIGN.md calls out           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablations: folding design choices";
  let variants =
    [ ("full folding", Ddg.Depprof.default_config);
      ( "no boundary splits",
        { Ddg.Depprof.default_config with boundary_splits = false } );
      ( "all-or-nothing labels",
        { Ddg.Depprof.default_config with per_component_labels = false } );
      ( "no SCEV pruning",
        { Ddg.Depprof.default_config with scev_prune = false } );
      ( "max_pieces = 2",
        { Ddg.Depprof.default_config with max_pieces = 2 } ) ]
  in
  let benches =
    [ Workloads.Backprop.workload; Workloads.Lavamd.workload;
      Workloads.Srad.v2; Workloads.Bfs.workload ]
  in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      Format.printf "@.%s:@." w.w_name;
      let prog = Vm.Hir.lower w.hir in
      let structure = Cfg.Cfg_builder.run prog in
      let header =
        [ "variant"; "%Aff"; "dep rels"; "exact deps"; "TileD"; "%||ops" ]
      in
      let rows =
        List.map
          (fun (name, config) ->
            let res = Ddg.Depprof.profile ~config prog ~structure in
            let analysis = Sched.Depanalysis.analyse prog res in
            let row =
              Sched.Metrics.compute ~name:w.w_name
                ~ld_src:(Workloads.Workload.src_loop_depth w.hir)
                ~fusion_strategy:w.fusion prog res analysis
            in
            let exact_deps =
              List.length
                (List.filter
                   (fun (d : Sched.Depanalysis.dep_ext) -> not d.approx)
                   analysis.Sched.Depanalysis.deps)
            in
            [ name;
              Printf.sprintf "%.0f%%" row.Sched.Metrics.aff_pct;
              string_of_int (List.length res.Ddg.Depprof.deps);
              string_of_int exact_deps;
              Printf.sprintf "%dD" row.Sched.Metrics.tile_depth;
              Printf.sprintf "%.0f%%" row.Sched.Metrics.par_ops_pct ])
          variants
      in
      print_string (Report.Texttable.render ~header rows))
    benches

(* ------------------------------------------------------------------ *)
(* lib/stream: trace codec + domain-sharded profiling                   *)
(* ------------------------------------------------------------------ *)

let json_out = ref false
let record_history = ref false

(* write BENCH_<name>.json only when its content changed modulo
   generated_utc (so reruns diff clean), and append the flattened
   metrics to the perf history when --record was given *)
let emit_bench name doc =
  let path = Printf.sprintf "BENCH_%s.json" name in
  let wrote = Obs.Json_emit.write_file_stable ~pretty:true path doc in
  Format.printf "%s %s@." (if wrote then "wrote" else "unchanged") path;
  if !record_history then begin
    Obs.Perfhist.record ~dir:(Filename.concat "bench" "history") ~bench:name doc;
    Format.printf "recorded %s into bench/history/%s.jsonl@." name name
  end

type stream_row = {
  sr_name : string;
  sr_events : int;
  sr_disk_bytes : int;
  sr_marshal_bytes : int;
  sr_enc_s : float;
  sr_dec_s : float;
  sr_seq_s : float;
  sr_par_s : float;
  sr_replay_s : float;
  sr_merge_s : float;
  sr_peak_shadow : int array;
  sr_domain_events : int array;
  sr_identical : bool;
}

let stream_bench () =
  let domains = 4 in
  section
    (Printf.sprintf
       "lib/stream: binary trace codec + %d-domain sharded profiling" domains);
  let now = Obs.Clock.monotonic in
  let ws =
    Workloads.Rodinia.all
    @ [ Workloads.Gems_fdtd.workload ]
    @ Workloads.Polybench.all
  in
  let rows =
    List.map
      (fun (w : Workloads.Workload.t) ->
        let prog = Vm.Hir.lower w.hir in
        let path = Filename.temp_file "polyprof" ".trace" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        @@ fun () ->
        let trace, stats = Vm.Trace.record prog in
        let marshal_bytes = String.length (Marshal.to_string trace []) in
        let t0 = now () in
        let disk_bytes = Stream.Trace_file.save ~stats trace path in
        let t_enc = now () -. t0 in
        let t0 = now () in
        Stream.Source.with_file path (fun src ->
            Stream.Source.iter src ignore);
        let t_dec = now () -. t0 in
        let builder = Cfg.Cfg_builder.create prog in
        Stream.Source.with_file path (fun src ->
            Stream.Source.replay src (Cfg.Cfg_builder.callbacks builder));
        let structure = Cfg.Cfg_builder.finalize builder in
        let t0 = now () in
        let seq =
          Ddg.Depprof.profile_replay
            ~feed:(fun cb ->
              Stream.Source.with_file path (fun src ->
                  Stream.Source.replay src cb))
            ~run_stats:stats prog ~structure
        in
        let t_seq = now () -. t0 in
        let t0 = now () in
        let par =
          Stream.Par_profile.profile_file ~domains path prog ~structure
        in
        let t_par = now () -. t0 in
        let p = par.Stream.Par_profile.result in
        let identical =
          (seq.Ddg.Depprof.stmts, seq.deps, seq.pruned_dep_edges,
           seq.total_dep_edges, seq.run_stats)
          = (p.Ddg.Depprof.stmts, p.deps, p.pruned_dep_edges,
             p.total_dep_edges, p.run_stats)
        in
        { sr_name = w.w_name;
          sr_events = Vm.Trace.n_events trace;
          sr_disk_bytes = disk_bytes;
          sr_marshal_bytes = marshal_bytes;
          sr_enc_s = t_enc;
          sr_dec_s = t_dec;
          sr_seq_s = t_seq;
          sr_par_s = t_par;
          sr_replay_s = par.par_stats.Stream.Par_profile.replay_seconds;
          sr_merge_s = par.par_stats.Stream.Par_profile.merge_seconds;
          sr_peak_shadow = par.par_stats.Stream.Par_profile.per_domain_peak_shadow;
          sr_domain_events = par.par_stats.Stream.Par_profile.per_domain_events;
          sr_identical = identical })
      ws
  in
  let mbs bytes s = float_of_int bytes /. (s +. 1e-9) /. (1024. *. 1024.) in
  let header =
    [ "benchmark"; "events"; "disk KB"; "marshal KB"; "ratio"; "enc MB/s";
      "dec MB/s"; "seq s"; Printf.sprintf "par(%d) s" domains; "speedup";
      "same" ]
  in
  let table =
    List.map
      (fun r ->
        [ r.sr_name;
          string_of_int r.sr_events;
          string_of_int (r.sr_disk_bytes / 1024);
          string_of_int (r.sr_marshal_bytes / 1024);
          Printf.sprintf "%.1fx"
            (float_of_int r.sr_marshal_bytes
            /. float_of_int (max 1 r.sr_disk_bytes));
          Printf.sprintf "%.1f" (mbs r.sr_disk_bytes r.sr_enc_s);
          Printf.sprintf "%.1f" (mbs r.sr_disk_bytes r.sr_dec_s);
          Printf.sprintf "%.3f" r.sr_seq_s;
          Printf.sprintf "%.3f" r.sr_par_s;
          Printf.sprintf "%.2fx" (r.sr_seq_s /. (r.sr_par_s +. 1e-9));
          (if r.sr_identical then "Y" else "N!") ])
      rows
  in
  print_string (Report.Texttable.render ~header table);
  let totals f = List.fold_left (fun a r -> a + f r) 0 rows in
  let cores = Domain.recommended_domain_count () in
  Format.printf
    "@.suite: %d events, %d KB on disk vs %d KB marshalled (%.1fx), all \
     results identical: %b@."
    (totals (fun r -> r.sr_events))
    (totals (fun r -> r.sr_disk_bytes) / 1024)
    (totals (fun r -> r.sr_marshal_bytes) / 1024)
    (float_of_int (totals (fun r -> r.sr_marshal_bytes))
    /. float_of_int (max 1 (totals (fun r -> r.sr_disk_bytes))))
    (List.for_all (fun r -> r.sr_identical) rows);
  if cores < domains then
    Format.printf
      "note: host has %d hardware thread(s) < %d domains -- the parallel \
       runs are time-sliced, so wall-clock speedup is not meaningful on \
       this machine (each domain decodes the full stream; expect ~1/%d \
       \"speedup\" here and real gains only with >= %d cores).@."
      cores domains domains domains;
  if !json_out then begin
    let open Obs.Json_emit in
    let ints a = List (Array.to_list (Array.map (fun i -> Int i) a)) in
    let doc =
      Obj
        (schema_header ~schema_version:Obs.Schemas.stream
        @ [ ("domains", Int domains);
            ("time_sliced", Bool (cores < domains));
            ("chunk_bytes", Int Stream.Sink.default_chunk_bytes);
            ( "workloads",
              List
                (List.map
                   (fun r ->
                     Obj
                       [ ("name", Str r.sr_name);
                         ("events", Int r.sr_events);
                         ("disk_bytes", Int r.sr_disk_bytes);
                         ("marshal_bytes", Int r.sr_marshal_bytes);
                         ( "compression",
                           Float
                             (float_of_int r.sr_marshal_bytes
                             /. float_of_int (max 1 r.sr_disk_bytes)) );
                         ("encode_mb_s", Float (mbs r.sr_disk_bytes r.sr_enc_s));
                         ("decode_mb_s", Float (mbs r.sr_disk_bytes r.sr_dec_s));
                         ("seq_seconds", Float r.sr_seq_s);
                         ("par_seconds", Float r.sr_par_s);
                         ("speedup", Float (r.sr_seq_s /. (r.sr_par_s +. 1e-9)));
                         ("replay_seconds", Float r.sr_replay_s);
                         ("merge_seconds", Float r.sr_merge_s);
                         ("domain_events", ints r.sr_domain_events);
                         ("peak_shadow", ints r.sr_peak_shadow);
                         ("identical", Bool r.sr_identical) ])
                   rows) ) ])
    in
    emit_bench "stream" doc
  end

(* ------------------------------------------------------------------ *)
(* lib/analysis: static dependence engine + instrumentation pruning     *)
(* ------------------------------------------------------------------ *)

type staticdep_row = {
  dr_name : string;
  dr_acc_static : int;  (* live reachable static accesses *)
  dr_acc_resolved : int;
  dr_dyn_mem : int;  (* dynamic memory operations *)
  dr_dyn_pruned : int;  (* of which skipped shadow tracking *)
  dr_pairs : int;  (* static pair summaries *)
  dr_full_s : float;  (* unpruned in-process profile *)
  dr_pruned_s : float;  (* pruned in-process profile *)
  dr_trace_full : int;  (* trace bytes, full addresses *)
  dr_trace_elided : int;  (* trace bytes, resolved addresses elided *)
  dr_witnesses : int;  (* witness probes in the final speculative plan *)
  dr_reruns : int;  (* witness-failure reruns of the hybrid driver *)
  dr_equal : bool;  (* pruned+injected result == unpruned *)
}

let staticdep_bench () =
  section
    "lib/analysis: static polyhedral dependences + instrumentation pruning";
  let now = Obs.Clock.monotonic in
  let ws =
    Workloads.Rodinia.all
    @ [ Workloads.Gems_fdtd.workload ]
    @ Workloads.Polybench.all
  in
  let rows =
    List.map
      (fun (w : Workloads.Workload.t) ->
        let prog = Vm.Hir.lower w.hir in
        let sd = Analysis.Statdep.analyse prog in
        let structure = Cfg.Cfg_builder.run prog in
        let t0 = now () in
        let full = Ddg.Depprof.profile prog ~structure in
        let t_full = now () -. t0 in
        let t0 = now () in
        (* speculative plan, witness-failure reruns handled by the
           hybrid driver (timed together: that is the user-visible cost) *)
        let _sd_spec, pruned, reruns =
          Analysis.Statdep.fallback_profile prog ~profile:(fun plan ->
              Ddg.Depprof.profile ~static_prune:plan prog ~structure)
        in
        let t_pruned = now () -. t0 in
        let path = Filename.temp_file "polyprof" ".trace" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        @@ fun () ->
        let wi_full = Stream.Trace_file.record_to_file prog path in
        let wi_elided =
          Stream.Trace_file.record_to_file
            ~elide:(Hashtbl.mem sd.Analysis.Statdep.pruned)
            prog path
        in
        { dr_name = w.w_name;
          dr_acc_static = sd.Analysis.Statdep.n_accesses;
          dr_acc_resolved = Analysis.Statdep.n_resolved sd;
          dr_dyn_mem = full.Ddg.Depprof.run_stats.Vm.Interp.dyn_mem_ops;
          dr_dyn_pruned = pruned.Ddg.Depprof.statically_pruned;
          dr_pairs = List.length sd.Analysis.Statdep.pairs;
          dr_full_s = t_full;
          dr_pruned_s = t_pruned;
          dr_trace_full = wi_full.Stream.Trace_file.wi_bytes;
          dr_trace_elided = wi_elided.Stream.Trace_file.wi_bytes;
          dr_witnesses = List.length pruned.Ddg.Depprof.witnesses;
          dr_reruns = reruns;
          dr_equal = Ddg.Depprof.equal_result full pruned })
      ws
  in
  let pct p t = 100. *. float_of_int p /. float_of_int (max 1 t) in
  let header =
    [ "benchmark"; "static"; "resolved"; "dyn mem"; "pruned"; "pruned %";
      "pairs"; "full s"; "pruned s"; "trace KB"; "elided KB"; "wit"; "rerun";
      "same" ]
  in
  let table =
    List.map
      (fun r ->
        [ r.dr_name;
          string_of_int r.dr_acc_static;
          string_of_int r.dr_acc_resolved;
          string_of_int r.dr_dyn_mem;
          string_of_int r.dr_dyn_pruned;
          Printf.sprintf "%.0f%%" (pct r.dr_dyn_pruned r.dr_dyn_mem);
          string_of_int r.dr_pairs;
          Printf.sprintf "%.4f" r.dr_full_s;
          Printf.sprintf "%.4f" r.dr_pruned_s;
          string_of_int (r.dr_trace_full / 1024);
          string_of_int (r.dr_trace_elided / 1024);
          string_of_int r.dr_witnesses;
          string_of_int r.dr_reruns;
          (if r.dr_equal then "Y" else "N!") ])
      rows
  in
  print_string (Report.Texttable.render ~header table);
  let all_equal = List.for_all (fun r -> r.dr_equal) rows in
  let majority =
    List.length (List.filter (fun r -> pct r.dr_dyn_pruned r.dr_dyn_mem > 50.) rows)
  in
  let tot f = List.fold_left (fun a r -> a + f r) 0 rows in
  Format.printf
    "@.suite: %d/%d dynamic accesses pruned (%.0f%%), %d workloads above \
     50%%, all pruned profiles identical to unpruned: %b@."
    (tot (fun r -> r.dr_dyn_pruned))
    (tot (fun r -> r.dr_dyn_mem))
    (pct (tot (fun r -> r.dr_dyn_pruned)) (tot (fun r -> r.dr_dyn_mem)))
    majority all_equal;
  if not all_equal then failwith "staticdep: pruned profile diverged";
  if !json_out then begin
    let open Obs.Json_emit in
    let doc =
      Obj
        (schema_header ~schema_version:Obs.Schemas.staticdep
        @ [ ( "suite_pruned_pct",
              Float
                (pct
                   (tot (fun r -> r.dr_dyn_pruned))
                   (tot (fun r -> r.dr_dyn_mem))) );
            ("workloads_above_50pct", Int majority);
            ("all_identical", Bool all_equal);
            ( "workloads",
              List
                (List.map
                   (fun r ->
                     Obj
                       [ ("name", Str r.dr_name);
                         ("static_accesses", Int r.dr_acc_static);
                         ("resolved", Int r.dr_acc_resolved);
                         ("dyn_mem_ops", Int r.dr_dyn_mem);
                         ("dyn_pruned", Int r.dr_dyn_pruned);
                         ("pruned_pct", Float (pct r.dr_dyn_pruned r.dr_dyn_mem));
                         ("pair_summaries", Int r.dr_pairs);
                         ("full_seconds", Float r.dr_full_s);
                         ("pruned_seconds", Float r.dr_pruned_s);
                         ("trace_bytes", Int r.dr_trace_full);
                         ("elided_trace_bytes", Int r.dr_trace_elided);
                         ("speculative_witnesses", Int r.dr_witnesses);
                         ("witness_reruns", Int r.dr_reruns);
                         ("identical", Bool r.dr_equal) ])
                   rows) ) ])
    in
    emit_bench "staticdep" doc
  end

(* ------------------------------------------------------------------ *)
(* lib/obs: self-profiling telemetry over the whole workload suite      *)
(* ------------------------------------------------------------------ *)

let obs_bench () =
  section "lib/obs: self-profiling telemetry (spans + metrics)";
  let ws =
    [ Workloads.Backprop.workload; Workloads.Gems_fdtd.workload ]
    @ Workloads.Polybench.all
  in
  Obs.Registry.enable ();
  Obs.Metrics.reset ();
  Obs.Span.reset ();
  List.iter
    (fun (w : Workloads.Workload.t) ->
      ignore (Workloads.Runner.run w))
    ws;
  let roots = Obs.Span.roots () in
  let metrics = Obs.Metrics.snapshot () in
  Obs.Registry.disable ();
  print_string (Report.Obs_report.summary ~metrics roots);
  if !json_out then begin
    let open Obs.Json_emit in
    let rec span_json (s : Obs.Span.t) =
      Obj
        [ ("name", Str s.Obs.Span.sp_name);
          ("cat", Str s.Obs.Span.sp_cat);
          ("dom", Int s.Obs.Span.sp_tid);
          ("dur_ns", Int s.Obs.Span.sp_dur_ns);
          ("minor_words", Float s.Obs.Span.sp_minor_words);
          ("major_words", Float s.Obs.Span.sp_major_words);
          ("top_heap_words", Int s.Obs.Span.sp_top_heap_words);
          ("children", List (List.map span_json s.Obs.Span.sp_children)) ]
    in
    let metric_json ((d : Obs.Metrics.desc), v) =
      let value =
        match v with
        | Obs.Metrics.Vint i -> [ ("value", Int i) ]
        | Obs.Metrics.Vhist h ->
            [ ("count", Int h.Obs.Metrics.h_count);
              ("sum", Int h.Obs.Metrics.h_sum);
              ("min", Int h.Obs.Metrics.h_min);
              ("max", Int h.Obs.Metrics.h_max) ]
      in
      Obj
        (( "name", Str d.Obs.Metrics.d_name )
        :: ( "kind",
             Str
               (match d.Obs.Metrics.d_kind with
               | Obs.Metrics.Counter -> "counter"
               | Obs.Metrics.Gauge -> "gauge"
               | Obs.Metrics.Histogram -> "histogram") )
        :: value)
    in
    let doc =
      Obj
        (schema_header ~schema_version:Obs.Schemas.obs
        @ [ ("workloads", List (List.map (fun (w : Workloads.Workload.t) ->
                 Str w.Workloads.Workload.w_name) ws));
            ("spans", List (List.map span_json roots));
            ("metrics", List (List.map metric_json metrics)) ])
    in
    emit_bench "obs" doc
  end

(* ------------------------------------------------------------------ *)
(* lib/tune: autotuning beam search over the suite                      *)
(* ------------------------------------------------------------------ *)

let autotune_bench () =
  section "lib/tune: verified beam search over the schedule space";
  let config = Tune.Search.default in
  let results = Workloads.Runner.autotune_all ~config () in
  print_string (Workloads.Runner.autotune_table results);
  let improved = Tune.Tune_report.improved results in
  Format.printf
    "@.%d of %d workloads got a verified non-identity schedule beating \
     identity by >= %.0f%%@."
    improved (List.length results)
    ((config.Tune.Search.margin -. 1.0) *. 100.);
  if !json_out then begin
    emit_bench "autotune" (Tune.Tune_report.suite_json ~config results)
  end

(* ------------------------------------------------------------------ *)
(* lib/serve: profiling-as-a-service engine                             *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  section "lib/serve: job engine, content-addressed cache, backpressure";
  let module P = Serve.Proto in
  let module E = Serve.Engine in
  let now () = Obs.Clock.monotonic () in
  (* --- cold vs cached latency on the real executor ----------------- *)
  let engine =
    E.create ~exec:Serve.Jobs.execute { E.default_config with E.workers = 2 }
  in
  let benches = [ "gemm"; "atax"; "mvt"; "bicg"; "gesummv" ] in
  let submit_timed bench =
    let spec = P.spec ~kind:P.Profile ~bench () in
    let key =
      match Serve.Jobs.job_key spec with
      | Ok k -> k
      | Error e -> failwith e
    in
    let t0 = now () in
    match E.submit engine ~key spec with
    | E.Hit _ -> (now () -. t0, true)
    | E.Enqueued j | E.Joined j -> (
        match E.await engine j.E.j_id ~timeout_s:300.0 () with
        | Some { E.j_state = P.Done; _ } -> (now () -. t0, false)
        | _ -> failwith (bench ^ ": job did not finish"))
    | E.Overloaded | E.Closed -> failwith "unexpected submit outcome"
  in
  let rows =
    List.map
      (fun b ->
        let cold_s, h1 = submit_timed b in
        let hit_s, h2 = submit_timed b in
        assert ((not h1) && h2);
        (b, cold_s, hit_s))
      benches
  in
  Format.printf "%-10s %12s %12s %10s@." "benchmark" "cold (ms)" "cached (us)"
    "speedup";
  List.iter
    (fun (b, cold, hit) ->
      Format.printf "%-10s %12.2f %12.1f %10.0fx@." b (cold *. 1e3) (hit *. 1e6)
        (cold /. (hit +. 1e-9)))
    rows;
  (* --- sustained cached throughput --------------------------------- *)
  let sustained =
    let m = 2000 in
    let t0 = now () in
    for i = 0 to m - 1 do
      ignore (submit_timed (List.nth benches (i mod List.length benches)))
    done;
    float_of_int m /. (now () -. t0)
  in
  Format.printf "@.sustained cached throughput: %.0f jobs/s@." sustained;
  let dedup_executions = (E.stats engine).E.s_executions in
  E.shutdown engine;
  (* --- dedup + backpressure under overload (slow injected executor) - *)
  let ran = Atomic.make 0 in
  let slow _spec =
    Atomic.incr ran;
    Unix.sleepf 0.05;
    { E.x_report = "{}"; x_span = None }
  in
  let engine2 =
    E.create ~exec:slow
      { E.default_config with E.workers = 1; queue_capacity = 4 }
  in
  let offered = 32 in
  let accepted = ref 0 and overloaded = ref 0 in
  for i = 0 to offered - 1 do
    let spec = P.spec ~kind:P.Profile ~bench:(Printf.sprintf "b%d" i) () in
    let key = Polyprof.Prog_hash.sha256_hex (string_of_int i) in
    match E.submit engine2 ~key spec with
    | E.Enqueued _ | E.Joined _ | E.Hit _ -> incr accepted
    | E.Overloaded -> incr overloaded
    | E.Closed -> ()
  done;
  E.shutdown engine2;
  Format.printf
    "backpressure: offered %d jobs to a 1-worker/4-deep engine -> %d \
     accepted, %d rejected (429), %d executed@."
    offered !accepted !overloaded (Atomic.get ran);
  if !json_out then begin
    let open Obs.Json_emit in
    let doc =
      Obj
        (schema_header ~schema_version:Obs.Schemas.serve
        @ [ ("workers", Int 2);
            ( "workloads",
              List
                (List.map
                   (fun (b, cold, hit) ->
                     Obj
                       [ ("name", Str b);
                         ("cold_seconds", Float cold);
                         ("cached_seconds", Float hit);
                         ("speedup", Float (cold /. (hit +. 1e-9))) ])
                   rows) );
            ("sustained_cached_jobs_per_s", Float sustained);
            ("executions", Int dedup_executions);
            ( "backpressure",
              Obj
                [ ("offered", Int offered);
                  ("queue_capacity", Int 4);
                  ("accepted", Int !accepted);
                  ("overloaded", Int !overloaded);
                  ("executed", Int (Atomic.get ran)) ] ) ])
    in
    emit_bench "serve" doc
  end

(* ------------------------------------------------------------------ *)
(* lib/analysis: parallelism certifier + dynamic race sanitizer         *)
(* ------------------------------------------------------------------ *)

type pc_row = {
  pr_name : string;
  pr_dims : int;
  pr_cert : int;
  pr_race : int;
  pr_unknown : int;
  pr_san_accesses : int;
  pr_san_races : int;  (** dynamic races on certified dims (must be 0) *)
  pr_xcheck_ok : bool;
  pr_static_s : float;
  pr_san_s : float;
}

let parcheck_bench () =
  section "lib/analysis: parallelism certifier + dynamic race sanitizer";
  let now = Obs.Clock.monotonic in
  let ws =
    Workloads.Rodinia.all
    @ [ Workloads.Gems_fdtd.workload ]
    @ Workloads.Polybench.all @ Workloads.Polybench.seeded
  in
  let rows =
    List.map
      (fun (w : Workloads.Workload.t) ->
        let prog = Vm.Hir.lower w.hir in
        let t0 = now () in
        let pc = Analysis.Parcheck.analyse prog in
        let t_static = now () -. t0 in
        let t0 = now () in
        let san = Analysis.Parcheck.sanitize pc in
        let t_san = now () -. t0 in
        let diags = Analysis.Parcheck.crosscheck pc san in
        let count v =
          List.length
            (List.filter
               (fun (d : Analysis.Parcheck.dim_report) ->
                 Analysis.Parcheck.verdict_code d.Analysis.Parcheck.dr_verdict
                 = v)
               pc.Analysis.Parcheck.pc_dims)
        in
        { pr_name = w.w_name;
          pr_dims = List.length pc.Analysis.Parcheck.pc_dims;
          pr_cert = Analysis.Parcheck.n_certified pc;
          pr_race = Analysis.Parcheck.n_races pc;
          pr_unknown = count "unknown";
          pr_san_accesses = san.Ddg.Race_san.sr_accesses;
          pr_san_races = Ddg.Race_san.races_on_certified san;
          pr_xcheck_ok = Analysis.Parcheck.crosscheck_ok diags;
          pr_static_s = t_static;
          pr_san_s = t_san })
      ws
  in
  let header =
    [ "benchmark"; "dims"; "certified"; "race"; "unknown"; "san acc";
      "san races"; "xcheck"; "static s"; "san s" ]
  in
  let table =
    List.map
      (fun r ->
        [ r.pr_name;
          string_of_int r.pr_dims;
          string_of_int r.pr_cert;
          string_of_int r.pr_race;
          string_of_int r.pr_unknown;
          string_of_int r.pr_san_accesses;
          string_of_int r.pr_san_races;
          (if r.pr_xcheck_ok then "ok" else "FAIL");
          Printf.sprintf "%.4f" r.pr_static_s;
          Printf.sprintf "%.4f" r.pr_san_s ])
      rows
  in
  print_string (Report.Texttable.render ~header table);
  let tot f = List.fold_left (fun a r -> a + f r) 0 rows in
  let all_sound =
    List.for_all (fun r -> r.pr_san_races = 0 && r.pr_xcheck_ok) rows
  in
  Format.printf
    "@.suite: %d claimed dims, %d certified, %d racy, %d unknown; sanitizer \
     races on certified dims: %d (soundness requires 0)@."
    (tot (fun r -> r.pr_dims))
    (tot (fun r -> r.pr_cert))
    (tot (fun r -> r.pr_race))
    (tot (fun r -> r.pr_unknown))
    (tot (fun r -> r.pr_san_races));
  if not all_sound then
    failwith "parcheck: sanitizer observed a race on a certified dimension";
  if !json_out then begin
    let open Obs.Json_emit in
    let doc =
      Obj
        (schema_header ~schema_version:Obs.Schemas.parcheck
        @ [ ("dims", Int (tot (fun r -> r.pr_dims)));
            ("certified", Int (tot (fun r -> r.pr_cert)));
            ("racy", Int (tot (fun r -> r.pr_race)));
            ("unknown", Int (tot (fun r -> r.pr_unknown)));
            ("sanitizer_races_on_certified", Int (tot (fun r -> r.pr_san_races)));
            ("all_sound", Bool all_sound);
            ( "workloads",
              List
                (List.map
                   (fun r ->
                     Obj
                       [ ("name", Str r.pr_name);
                         ("dims", Int r.pr_dims);
                         ("certified", Int r.pr_cert);
                         ("racy", Int r.pr_race);
                         ("unknown", Int r.pr_unknown);
                         ("sanitizer_accesses", Int r.pr_san_accesses);
                         ("sanitizer_races_on_certified", Int r.pr_san_races);
                         ("crosscheck_ok", Bool r.pr_xcheck_ok);
                         ("static_seconds", Float r.pr_static_s);
                         ("sanitizer_seconds", Float r.pr_san_s) ])
                   rows) ) ])
    in
    emit_bench "parcheck" doc
  end

let () =
  let sections =
    [ ("table1-2", tables_1_and_2); ("table3", table_3); ("table4", table_4);
      ("table5", table_5); ("casestudy-verify", casestudy_verify);
      ("fig5", fig_5); ("fig7", fig_7);
      ("ablation", ablation); ("perf", perf); ("overhead", overhead);
      ("stream", stream_bench); ("staticdep", staticdep_bench);
      ("obs", obs_bench); ("autotune", autotune_bench);
      ("parcheck", parcheck_bench); ("serve", serve_bench) ]
  in
  let argv = Array.to_list Sys.argv in
  json_out := List.mem "--json" argv;
  record_history := List.mem "--record" argv;
  let requested =
    match List.filter (fun a -> a <> "--json" && a <> "--record") argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ -> []
  in
  List.iter
    (fun (name, fn) ->
      if requested = [] || List.mem name requested then fn ())
    sections
