(* Replay a [Sched.Plan] onto the HIR program it was profiled from.

   The plan's steps speak about abstract nest dimensions; each dimension
   carries the header location and owning function of the loop it
   denotes.  Steps that cannot be expressed as a source rewrite are
   *skipped with a reason* rather than failing the whole plan: a tile
   band spanning a call boundary is clipped to its intraprocedural
   suffix (tiling the inner loops is what the generated code would do
   anyway), an interchange across functions is skipped, and marking
   steps (parallel/simd) never change the tree — they are claims for the
   verifier to re-check on the transformed profile. *)

module T = Sched.Transform

type applied =
  | A_interchange of Vm.Prog.loc * Vm.Prog.loc
  | A_tile of Vm.Prog.loc list * int
  | A_skew of Vm.Prog.loc * Vm.Prog.loc * int
  | A_mark_parallel of int * Vm.Prog.loc option
  | A_mark_simd of int

type outcome = {
  o_hir : Vm.Hir.program;
  o_applied : applied list;
  o_skipped : (T.step * string) list;
  (* header locations of the point loops after the rewrite, outermost
     first: where the original dims ended up (tile loops carry no
     location and are not listed) *)
  o_expected_locs : Vm.Prog.loc list;
  o_structural : bool;  (* at least one rewrite changed the tree *)
}

let pp_applied fmt a =
  let l (x : Vm.Prog.loc) = Printf.sprintf "%s:%d" x.Vm.Prog.file x.Vm.Prog.line in
  match a with
  | A_interchange (a, b) ->
      Format.fprintf fmt "interchanged %s <-> %s" (l a) (l b)
  | A_tile (locs, s) ->
      Format.fprintf fmt "tiled [%s] by %d"
        (String.concat "; " (List.map l locs))
        s
  | A_skew (o, i, f) -> Format.fprintf fmt "skewed %s by %d*%s" (l i) f (l o)
  | A_mark_parallel (d, loc) ->
      Format.fprintf fmt "marked d%d%s parallel" d
        (match loc with Some x -> " (" ^ l x ^ ")" | None -> "")
  | A_mark_simd d -> Format.fprintf fmt "marked d%d simd" d

let apply_plan (hir : Vm.Hir.program) (plan : Sched.Plan.t) :
    (outcome, string) result =
  let depth = Array.length plan.Sched.Plan.p_targets in
  if depth = 0 then Error "empty nest"
  else begin
    let loc d = plan.Sched.Plan.p_targets.(d - 1).Sched.Plan.t_loc in
    let fid d = plan.Sched.Plan.p_targets.(d - 1).Sched.Plan.t_fid in
    (* position in the transformed nest -> original dimension *)
    let order = Array.init depth (fun i -> i + 1) in
    let cur = ref hir in
    let applied = ref [] in
    let skipped = ref [] in
    let structural = ref false in
    let skip step reason = skipped := (step, reason) :: !skipped in
    List.iter
      (fun (step : T.step) ->
        match step with
        | T.Skew (o, i, f) -> (
            match (loc o, loc i) with
            | Some lo_, Some li_ when fid o = fid i && fid o <> None -> (
                match Vm.Hir_rewrite.skew !cur ~outer:lo_ ~inner:li_ ~factor:f with
                | Ok p ->
                    cur := p;
                    structural := true;
                    applied := A_skew (lo_, li_, f) :: !applied
                | Error e -> skip step e)
            | Some _, Some _ -> skip step "skew spans a call boundary"
            | _ -> skip step "loop header location unknown")
        | T.Interchange (a, b) -> (
            match (loc a, loc b) with
            | Some la, Some lb when fid a = fid b && fid a <> None -> (
                match Vm.Hir_rewrite.interchange !cur ~outer:la ~inner:lb with
                | Ok p ->
                    cur := p;
                    structural := true;
                    applied := A_interchange (la, lb) :: !applied;
                    let tmp = order.(a - 1) in
                    order.(a - 1) <- order.(b - 1);
                    order.(b - 1) <- tmp
                | Error e -> skip step e)
            | Some _, Some _ -> skip step "interchange spans a call boundary"
            | _ -> skip step "loop header location unknown")
        | T.Tile (a, b, size) when a >= 1 && b <= depth && a <= b -> (
            (* the loops now at positions a..b, top-down *)
            let dims =
              List.init (b - a + 1) (fun k -> order.(a - 1 + k))
            in
            match
              List.map
                (fun d ->
                  match (loc d, fid d) with
                  | Some l, Some f -> Some (l, f)
                  | _ -> None)
                dims
              |> fun xs ->
              if List.exists Option.is_none xs then None
              else Some (List.filter_map Fun.id xs)
            with
            | None -> skip step "loop header location or function unknown"
            | Some located ->
                (* clip to the suffix living in the innermost loop's
                   function, then drop outer loops until the band is
                   structurally tilable *)
                let inner_fid = snd (List.nth located (List.length located - 1)) in
                let clipped =
                  let rec suffix = function
                    | [] -> []
                    | (_, f) :: rest as l ->
                        if List.for_all (fun (_, f') -> f' = inner_fid) l && f = inner_fid
                        then List.map fst l
                        else suffix rest
                  in
                  suffix located
                in
                let rec attempt last_err = function
                  | [] -> (
                      match last_err with
                      | Some e -> skip step e
                      | None -> skip step "no tilable sub-band")
                  | band -> (
                      match Vm.Hir_rewrite.tile !cur ~band ~size with
                      | Ok p ->
                          cur := p;
                          structural := true;
                          applied := A_tile (band, size) :: !applied
                      | Error e -> attempt (Some e) (List.tl band))
                in
                if clipped = [] then skip step "band spans call boundaries only"
                else begin
                  (if List.length clipped < List.length located then
                     skip step
                       (Printf.sprintf
                          "band clipped to its intraprocedural suffix (%d of %d \
                           loops)"
                          (List.length clipped) (List.length located)));
                  attempt None clipped
                end)
        | T.Tile (_, _, _) -> skip step "band outside the nest"
        | T.Parallelize d ->
            applied := A_mark_parallel (d, loc d) :: !applied
        | T.Vectorize d -> applied := A_mark_simd d :: !applied)
      plan.Sched.Plan.p_steps;
    let expected =
      Array.to_list (Array.map (fun d -> loc d) order) |> List.filter_map Fun.id
    in
    Ok
      { o_hir = !cur;
        o_applied = List.rev !applied;
        o_skipped = List.rev !skipped;
        o_expected_locs = expected;
        o_structural = !structural }
  end
