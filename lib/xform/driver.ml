(* End-to-end: consume a feedback report, apply each suggested schedule
   to the HIR, and verify the claim with three oracles — observable
   equivalence (differential execution), dynamic legality (re-folded
   DDG lexicographically non-negative) and profitability (the stride-0/1
   profile moved the way the suggestion predicted).

   Every plan gets a verdict:
   - [Verified]  — applied and all oracles passed (marking-only plans
                   pass on static legality alone: there is nothing to
                   run differentially);
   - [Rejected]  — an oracle failed: the suggestion was wrong, which is
                   exactly what this subsystem exists to catch;
   - [Skipped]   — not expressible as a source rewrite here (imperfect
                   nest, call boundary, unknown header location). *)

type status = Verified | Rejected of string | Skipped of string

type profit = {
  pf_before : float;  (* innermost stride-0/1 fraction, original nest *)
  pf_after : float;  (* same, transformed nest *)
  pf_required : bool;  (* strict improvement required (interchange) *)
  pf_parallel : (int * bool) list;  (* marked dim -> still parallel *)
  pf_ok : bool;
  pf_note : string;
}

type kind = Nest of Sched.Plan.t | Fusion of Vm.Prog.loc list

type entry = {
  en_target : string;
  en_kind : kind;
  en_applied : Apply.applied list;
  en_skipped : (Sched.Transform.step * string) list;
  en_static : Sched.Plan.legality option;
  en_certs : (Sched.Transform.step * Analysis.Parcheck.verdict) list;
      (* parallelism-certifier verdict per Parallelize/Vectorize step *)
  en_equiv : Verify.equiv option;
  en_dynamic : Verify.legality option;
  en_profit : profit option;
  en_status : status;
}

type summary = {
  sm_name : string;
  sm_entries : entry list;
  sm_verified : int;
  sm_rejected : int;
  sm_skipped : int;
}

let analyse_hir hir =
  let prog = Vm.Hir.lower hir in
  let structure = Cfg.Cfg_builder.run prog in
  let profile = Ddg.Depprof.profile prog ~structure in
  let analysis = Sched.Depanalysis.analyse prog profile in
  (prog, profile, analysis)

(* The transformed nest is recognised by its located headers: the
   original dims keep their source locations through the rewrites
   (tile loops carry none), so the Some-located dimension sequence of
   the new nest must equal the expected permutation.  Two guards keep
   the match honest when most dims are location-less: the transformed
   nest is never shallower than the original one ([min_depth]), and the
   rewrites preserve the dynamic op count of the body, so among several
   nests sharing the located headers the one whose weight is closest to
   the original plan's weight is the transformed instance
   ([target_weight]). *)
let find_nest ?(min_depth = 0) ?target_weight (xa : Sched.Depanalysis.t)
    (locs : Vm.Prog.loc list) =
  let located n =
    Array.to_list (Sched.Plan.nest_dim_locs xa n) |> List.filter_map Fun.id
  in
  let score (n : Sched.Depanalysis.nest_info) =
    match target_weight with
    | Some w -> -abs (n.Sched.Depanalysis.nweight - w)
    | None -> n.Sched.Depanalysis.nweight
  in
  List.filter
    (fun (n : Sched.Depanalysis.nest_info) ->
      n.Sched.Depanalysis.ndepth >= min_depth
      && List.length (located n) = List.length locs
      && List.for_all2 Vm.Hir_rewrite.same_loc (located n) locs)
    xa.Sched.Depanalysis.nests
  |> List.fold_left
       (fun best (n : Sched.Depanalysis.nest_info) ->
         match best with
         | Some b when score b >= score n -> best
         | _ -> Some n)
       None

let compute_profit ?(certs = []) (plan : Sched.Plan.t) (o : Apply.outcome)
    (xa : Sched.Depanalysis.t) =
  let depth = Array.length plan.Sched.Plan.p_stride01 in
  let before =
    if depth = 0 then 0.0 else plan.Sched.Plan.p_stride01.(depth - 1)
  in
  (* Strict improvement is the prediction of an *applied* interchange; a
     suggested interchange that could not be applied structurally only
     has to not regress. *)
  let interchanged =
    List.exists
      (function Apply.A_interchange _ -> true | _ -> false)
      o.Apply.o_applied
  in
  match
    find_nest ~min_depth:plan.Sched.Plan.p_nest.Sched.Depanalysis.ndepth
      ~target_weight:plan.Sched.Plan.p_weight xa o.Apply.o_expected_locs
  with
  | None ->
      { pf_before = before;
        pf_after = 0.0;
        pf_required = interchanged;
        pf_parallel = [];
        pf_ok = false;
        pf_note = "transformed nest not found in the re-profile" }
  | Some xn ->
      let s01 = Sched.Transform.stride01_profile xn in
      let after =
        if Array.length s01 = 0 then 0.0 else s01.(Array.length s01 - 1)
      in
      let required = interchanged in
      let stride_ok =
        if required then after > before +. 1e-9 else after >= before -. 1e-9
      in
      let xlocs = Sched.Plan.nest_dim_locs xa xn in
      let dyn_parallel d =
        match plan.Sched.Plan.p_targets.(d - 1).Sched.Plan.t_loc with
        | None -> true  (* cannot locate: trust static *)
        | Some l ->
            Array.exists Fun.id
              (Array.mapi
                 (fun i lo ->
                   match lo with
                   | Some lo ->
                       Vm.Hir_rewrite.same_loc lo l
                       && xn.Sched.Depanalysis.nparallel.(i)
                   | None -> false)
                 xlocs)
      in
      (* The certifier has the last word on a claimed dim: a DOALL
         certificate stands even when the dynamic nparallel bit is
         pessimistic, a static race witness sinks the claim even when
         this run's trace happened to be conflict-free.  Only an
         [Unknown] defers to the dynamic evidence. *)
      let race = ref false in
      let parallel =
        List.filter_map
          (fun (step : Sched.Transform.step) ->
            match step with
            | Sched.Transform.Parallelize d -> (
                match List.assoc_opt step certs with
                | Some (Analysis.Parcheck.Certified _) -> Some (d, true)
                | Some (Analysis.Parcheck.Race _) ->
                    race := true;
                    Some (d, false)
                | Some (Analysis.Parcheck.Unknown _) | None ->
                    Some (d, dyn_parallel d))
            | Sched.Transform.Vectorize d -> (
                match List.assoc_opt step certs with
                | Some (Analysis.Parcheck.Certified _) -> Some (d, true)
                | Some (Analysis.Parcheck.Race _) ->
                    race := true;
                    Some (d, false)
                | Some (Analysis.Parcheck.Unknown _) | None ->
                    (* no dynamic innermost-SIMD oracle: an unknown keeps
                       the historical trust-the-mark behaviour *)
                    Some (d, true))
            | _ -> None)
          plan.Sched.Plan.p_steps
      in
      let parallel_ok = List.for_all snd parallel in
      { pf_before = before;
        pf_after = after;
        pf_required = required;
        pf_parallel = parallel;
        pf_ok = stride_ok && parallel_ok;
        pf_note =
          (if not stride_ok then
             Printf.sprintf "stride-0/1 went %.0f%% -> %.0f%%%s"
               (100. *. before) (100. *. after)
               (if required then " (improvement required)" else " (regressed)")
           else if not parallel_ok then
             if !race then
               "the parallelism certifier found a race on a marked dim"
             else "a marked-parallel dim lost parallelism"
           else "") }

let structural_steps (plan : Sched.Plan.t) =
  List.exists
    (fun (s : Sched.Transform.step) ->
      match s with
      | Sched.Transform.Interchange _ | Sched.Transform.Skew _
      | Sched.Transform.Tile _ ->
          true
      | Sched.Transform.Parallelize _ | Sched.Transform.Vectorize _ -> false)
    plan.Sched.Plan.p_steps

let marked_steps (plan : Sched.Plan.t) =
  List.exists
    (fun (s : Sched.Transform.step) ->
      match s with
      | Sched.Transform.Parallelize _ | Sched.Transform.Vectorize _ -> true
      | _ -> false)
    plan.Sched.Plan.p_steps

(* Static parallelism certification of the claimed dims: each
   [Parallelize]/[Vectorize] step is decided against the level-carried
   dependence polyhedra ([Analysis.Parcheck]) of the given program —
   the original one for marking-only plans, the transformed one when
   structural steps may have moved the claimed loops to new levels. *)
let certify_steps ~sd (plan : Sched.Plan.t) =
  List.filter_map
    (fun (step : Sched.Transform.step) ->
      let verdict d =
        if d < 1 || d > Array.length plan.Sched.Plan.p_targets then
          Analysis.Parcheck.Unknown "claimed dim out of range"
        else
          let t = plan.Sched.Plan.p_targets.(d - 1) in
          match t.Sched.Plan.t_loc with
          | None ->
              Analysis.Parcheck.Unknown "claimed dim has no source location"
          | Some l ->
              Analysis.Parcheck.certify_loc sd ?fid:t.Sched.Plan.t_fid l
      in
      match step with
      | Sched.Transform.Parallelize d | Sched.Transform.Vectorize d ->
          Some (step, verdict d)
      | _ -> None)
    plan.Sched.Plan.p_steps

let cert_race certs =
  List.find_opt
    (fun (_, v) ->
      match v with Analysis.Parcheck.Race _ -> true | _ -> false)
    certs

let verify_transformed ~eps ?max_steps ~orig_prog xhir =
  let xprog = Vm.Hir.lower xhir in
  let equiv = Verify.observable_equiv ~eps ?max_steps orig_prog xprog in
  if not equiv.Verify.eq_ok then (equiv, None)
  else
    let _, _, xanalysis = analyse_hir xhir in
    (equiv, Some xanalysis)

(* One-call correctness oracle for an already-rewritten program: both
   dynamic checks the nest/fusion entries run — differential execution
   against the original, then lexicographic non-negativity of the
   re-folded DDG.  The re-analysis is returned so a caller that keeps
   the candidate (an autotuner extending its beam) does not profile
   twice. *)
type oracle = {
  or_equiv : Verify.equiv;
  or_dynamic : Verify.legality option;  (* None: equivalence already failed *)
  or_analysis : Sched.Depanalysis.t option;
  or_ok : bool;
}

let oracle ?(eps = 1e-9) ?max_steps ~orig_prog xhir =
  let equiv, xanalysis = verify_transformed ~eps ?max_steps ~orig_prog xhir in
  match xanalysis with
  | None ->
      { or_equiv = equiv; or_dynamic = None; or_analysis = None; or_ok = false }
  | Some xa ->
      let dyn = Verify.dynamic_legality xa in
      { or_equiv = equiv;
        or_dynamic = Some dyn;
        or_analysis = Some xa;
        or_ok = equiv.Verify.eq_ok && dyn.Verify.dl_ok }

let nest_entry ~eps ?max_steps ~orig_prog ~analysis ~sd hir
    (plan : Sched.Plan.t) =
  let target = Sched.Plan.describe plan in
  let base ?applied ?skipped ?static ?(certs = []) ?equiv ?dynamic ?profit
      status =
    { en_target = target;
      en_kind = Nest plan;
      en_applied = Option.value applied ~default:[];
      en_skipped = Option.value skipped ~default:[];
      en_static = static;
      en_certs = certs;
      en_equiv = equiv;
      en_dynamic = dynamic;
      en_profit = profit;
      en_status = status }
  in
  let static = Sched.Plan.legal analysis plan in
  if not static.Sched.Plan.lg_ok then
    base ~static
      (Rejected "static legality: the profiled direction vectors forbid a step")
  else if not (structural_steps plan) then begin
    (* Marking-only plan: nothing to run differentially — but the claims
       themselves are no longer waved through on static legality alone;
       each one is decided by the parallelism certifier against the
       original program's dependence polyhedra. *)
    let certs = certify_steps ~sd:(Lazy.force sd) plan in
    match cert_race certs with
    | Some (step, _) ->
        base ~static ~certs
          (Rejected
             (Format.asprintf "parallelism certifier: race on %a"
                Sched.Transform.pp_step step))
    | None -> base ~static ~certs (Verified : status)
  end
  else
    match Apply.apply_plan hir plan with
    | Error e -> base ~static (Skipped e)
    | Ok o when not o.Apply.o_structural ->
        base ~static ~applied:o.Apply.o_applied ~skipped:o.Apply.o_skipped
          (Skipped
             (match o.Apply.o_skipped with
             | (_, reason) :: _ -> reason
             | [] -> "no structural step applied"))
    | Ok o -> (
        match Vm.Hir.lower o.Apply.o_hir with
        | exception Vm.Hir.Lower_error m ->
            base ~static ~applied:o.Apply.o_applied ~skipped:o.Apply.o_skipped
              (Skipped ("lowering the transformed program failed: " ^ m))
        | xprog -> (
            (* Claimed dims are re-certified against the *transformed*
               program: structural steps may have moved the claimed
               loops to new nest levels, so the original program's
               verdicts do not transfer. *)
            let certs =
              if marked_steps plan then
                certify_steps ~sd:(Analysis.Statdep.analyse xprog) plan
              else []
            in
            let equiv, xanalysis =
              verify_transformed ~eps ?max_steps ~orig_prog o.Apply.o_hir
            in
            match xanalysis with
            | None ->
                base ~static ~certs ~applied:o.Apply.o_applied
                  ~skipped:o.Apply.o_skipped ~equiv
                  (Rejected "observable equivalence failed")
            | Some xa ->
                let dyn = Verify.dynamic_legality xa in
                let profit = compute_profit ~certs plan o xa in
                let status =
                  if not dyn.Verify.dl_ok then
                    Rejected "a dependence was reversed (re-folded DDG)"
                  else if not profit.pf_ok then
                    Rejected ("profitability: " ^ profit.pf_note)
                  else Verified
                in
                base ~static ~certs ~applied:o.Apply.o_applied
                  ~skipped:o.Apply.o_skipped ~equiv ~dynamic:dyn ~profit
                  status))

(* Fusion groups from the feedback's region reports: components that
   the smart-fusion heuristic merged are replayed as pairwise [fuse]
   rewrites and re-verified like any other transformation. *)
let fusion_groups (fb : Sched.Feedback.t) =
  List.concat_map
    (fun (r : Sched.Feedback.region_report) ->
      List.filter_map
        (fun group ->
          if List.length group < 2 then None
          else
            let locs =
              List.filter_map
                (fun (c : Sched.Fusion.component) ->
                  match
                    Sched.Depanalysis.loop_at fb.Sched.Feedback.analysis
                      c.Sched.Fusion.c_path
                  with
                  | Some l -> l.Sched.Depanalysis.header_loc
                  | None -> None)
                group
            in
            if List.length locs = List.length group then Some locs else None)
        r.Sched.Feedback.fusion.Sched.Fusion.merged_groups)
    fb.Sched.Feedback.regions

let fusion_entry ~eps ?max_steps ~orig_prog hir locs =
  let target =
    "fuse "
    ^ String.concat " + " (List.map Vm.Hir_rewrite.loc_string locs)
  in
  let base ?equiv ?dynamic status =
    { en_target = target;
      en_kind = Fusion locs;
      en_applied = [];
      en_skipped = [];
      en_static = None;
      en_certs = [];
      en_equiv = equiv;
      en_dynamic = dynamic;
      en_profit = None;
      en_status = status }
  in
  (* the merged loop keeps the first header's location, so each further
     component fuses into [first] *)
  let rec fold_fuse hir = function
    | first :: second :: rest -> (
        match Vm.Hir_rewrite.fuse hir ~first ~second with
        | Ok hir' -> fold_fuse hir' (first :: rest)
        | Error e -> Error e)
    | _ -> Ok hir
  in
  match fold_fuse hir locs with
  | Error e -> base (Skipped e)
  | Ok xhir -> (
      let equiv, xanalysis =
        verify_transformed ~eps ?max_steps ~orig_prog xhir
      in
      match xanalysis with
      | None -> base ~equiv (Rejected "observable equivalence failed")
      | Some xa ->
          let dyn = Verify.dynamic_legality xa in
          if dyn.Verify.dl_ok then base ~equiv ~dynamic:dyn Verified
          else
            base ~equiv ~dynamic:dyn
              (Rejected "a dependence was reversed (re-folded DDG)"))

let apply_and_verify ?(eps = 1e-9) ?max_steps ?(max_plans = 8) ~name
    (hir : Vm.Hir.program) =
  let orig_prog, profile, analysis = analyse_hir hir in
  let feedback = Sched.Feedback.make orig_prog profile analysis in
  let plans = Sched.Plan.plans_of_feedback feedback in
  let plans =
    List.filteri (fun i _ -> i < max_plans) plans
  in
  (* one static dependence model of the original program serves every
     marking-only plan's certification *)
  let sd = lazy (Analysis.Statdep.analyse orig_prog) in
  let entries =
    List.map (nest_entry ~eps ?max_steps ~orig_prog ~analysis ~sd hir) plans
  in
  let entries =
    entries
    @ List.map (fusion_entry ~eps ?max_steps ~orig_prog hir)
        (fusion_groups feedback)
  in
  let count f = List.length (List.filter f entries) in
  { sm_name = name;
    sm_entries = entries;
    sm_verified = count (fun e -> e.en_status = Verified);
    sm_rejected =
      count (fun e -> match e.en_status with Rejected _ -> true | _ -> false);
    sm_skipped =
      count (fun e -> match e.en_status with Skipped _ -> true | _ -> false) }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let status_string = function
  | Verified -> "VERIFIED"
  | Rejected r -> "REJECTED: " ^ r
  | Skipped r -> "skipped: " ^ r

let pp_entry fmt e =
  Format.fprintf fmt "%s@\n  %s@\n"
    (match e.en_kind with
    | Nest plan ->
        Format.asprintf "nest %s (%d ops): %a" e.en_target
          plan.Sched.Plan.p_weight
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
             Sched.Transform.pp_step)
          plan.Sched.Plan.p_steps
    | Fusion _ -> e.en_target)
    (status_string e.en_status);
  List.iter
    (fun a -> Format.fprintf fmt "  applied: %a@\n" Apply.pp_applied a)
    e.en_applied;
  List.iter
    (fun (s, why) ->
      Format.fprintf fmt "  partial: %a: %s@\n" Sched.Transform.pp_step s why)
    e.en_skipped;
  (match e.en_static with
  | Some l ->
      Format.fprintf fmt "  static legality (profiled direction vectors): %s@\n"
        (if l.Sched.Plan.lg_ok then
           Printf.sprintf "PASS (%d dependences)" l.Sched.Plan.lg_deps
         else "FAIL");
      if not l.Sched.Plan.lg_ok then
        Format.fprintf fmt "%a" Sched.Plan.pp_legality l
  | None -> ());
  List.iter
    (fun (step, v) ->
      Format.fprintf fmt "  certifier: %a: %a@\n" Sched.Transform.pp_step step
        Analysis.Parcheck.pp_verdict v)
    e.en_certs;
  (match e.en_equiv with
  | Some eq ->
      Format.fprintf fmt "  observable equivalence: %s@\n"
        (if eq.Verify.eq_ok then "PASS" else "FAIL");
      Format.fprintf fmt "    %a@\n" Verify.pp_equiv eq
  | None -> ());
  (match e.en_dynamic with
  | Some dyn ->
      Format.fprintf fmt "  dynamic legality (re-folded DDG): %s@\n"
        (if dyn.Verify.dl_ok then "PASS" else "FAIL");
      Format.fprintf fmt "    %a@\n" Verify.pp_legality dyn
  | None -> ());
  match e.en_profit with
  | Some p ->
      Format.fprintf fmt
        "  profitability: %s (innermost stride-0/1 %.0f%% -> %.0f%%%s)@\n"
        (if p.pf_ok then "PASS" else "FAIL")
        (100. *. p.pf_before) (100. *. p.pf_after)
        (if p.pf_required then ", improvement required" else "");
      List.iter
        (fun (d, ok) ->
          Format.fprintf fmt "    parallel(d%d) after transformation: %s@\n" d
            (if ok then "yes" else "NO"))
        p.pf_parallel
  | None -> ()

let pp_summary fmt s =
  Format.fprintf fmt "== %s: %d plan(s): %d verified, %d rejected, %d skipped ==@\n"
    s.sm_name
    (List.length s.sm_entries)
    s.sm_verified s.sm_rejected s.sm_skipped;
  List.iteri
    (fun i e -> Format.fprintf fmt "[%d] %a" (i + 1) pp_entry e)
    s.sm_entries
