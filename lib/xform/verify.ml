(* The differential verifier.

   Three independent oracles over a transformed program:

   - [observable_equiv]: run original and transformed in the MiniVM and
     compare the final memory images cell by cell (integers exactly,
     floats up to a relative tolerance, since reassociation of
     reductions is part of what the schedule claims is allowed).

   - [dynamic_legality]: on the *re-profiled* transformed program,
     re-fold the DDG and check that every exact dependence piece is
     lexicographically non-negative under the new loop order — i.e. no
     dependence was reversed.  This is stronger than per-dimension
     direction vectors: the check is per piece and polyhedral
     (emptiness of dom /\ {src_j = dst_j | j < d} /\ {src_d > dst_d}),
     so correlations between dimensions that the direction-vector
     abstraction loses cannot cause false alarms.

   - profitability is checked by the driver: the stride-0/1 profile of
     the transformed nest must move the way [Sched.Transform]
     predicted. *)

module A = Minisl.Affine
module P = Minisl.Polyhedron
module C = Minisl.Constr
module Rat = Pp_util.Rat

(* ------------------------------------------------------------------ *)
(* Observable equivalence                                              *)
(* ------------------------------------------------------------------ *)

type cell_diff = {
  cd_where : string;  (* "array[index]" or a raw address *)
  cd_orig : Vm.Event.value option;
  cd_xform : Vm.Event.value option;
}

type equiv = {
  eq_ok : bool;
  eq_cells : int;  (* addresses compared *)
  eq_n_diffs : int;
  eq_diffs : cell_diff list;  (* first few, for reporting *)
  eq_max_rel_err : float;  (* over float cells *)
}

let value_eq ~eps a b =
  match (a, b) with
  | Vm.Event.I x, Vm.Event.I y -> if x = y then Ok 0.0 else Error ()
  | Vm.Event.F x, Vm.Event.F y ->
      if x = y then Ok 0.0
      else
        let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
        let rel = Float.abs (x -. y) /. scale in
        if rel <= eps then Ok rel else Error ()
  | Vm.Event.I _, Vm.Event.F _ | Vm.Event.F _, Vm.Event.I _ -> Error ()

let describe_addr (prog : Vm.Prog.t) addr =
  match
    List.find_opt
      (fun (_, base, size) -> addr >= base && addr < base + size)
      prog.Vm.Prog.globals
  with
  | Some (name, base, _) -> Printf.sprintf "%s[%d]" name (addr - base)
  | None -> Printf.sprintf "@%d" addr

let observable_equiv ?(eps = 1e-9) ?max_steps (orig : Vm.Prog.t)
    (xform : Vm.Prog.t) =
  let _, mem_o = Vm.Interp.run_dump ?max_steps orig in
  let _, mem_x = Vm.Interp.run_dump ?max_steps xform in
  (* every address either run touched; untouched cells read as I 0 *)
  let addrs = Hashtbl.create (Hashtbl.length mem_o) in
  Hashtbl.iter (fun a _ -> Hashtbl.replace addrs a ()) mem_o;
  Hashtbl.iter (fun a _ -> Hashtbl.replace addrs a ()) mem_x;
  let cells = ref 0 in
  let n_diffs = ref 0 in
  let diffs = ref [] in
  let max_rel = ref 0.0 in
  Hashtbl.iter
    (fun addr () ->
      incr cells;
      let vo =
        match Hashtbl.find_opt mem_o addr with
        | Some v -> v
        | None -> Vm.Event.I 0
      in
      let vx =
        match Hashtbl.find_opt mem_x addr with
        | Some v -> v
        | None -> Vm.Event.I 0
      in
      match value_eq ~eps vo vx with
      | Ok rel -> if rel > !max_rel then max_rel := rel
      | Error () ->
          incr n_diffs;
          if List.length !diffs < 8 then
            diffs :=
              { cd_where = describe_addr orig addr;
                cd_orig = Some vo;
                cd_xform = Some vx }
              :: !diffs)
    addrs;
  { eq_ok = !n_diffs = 0;
    eq_cells = !cells;
    eq_n_diffs = !n_diffs;
    eq_diffs = List.rev !diffs;
    eq_max_rel_err = !max_rel }

let pp_value fmt = function
  | Some (Vm.Event.I n) -> Format.fprintf fmt "%d" n
  | Some (Vm.Event.F x) -> Format.fprintf fmt "%.17g" x
  | None -> Format.pp_print_string fmt "_"

let pp_equiv fmt e =
  if e.eq_ok then
    Format.fprintf fmt
      "equivalent: %d memory cells match (max float rel.err %.2e)" e.eq_cells
      e.eq_max_rel_err
  else begin
    Format.fprintf fmt "NOT equivalent: %d of %d cells differ" e.eq_n_diffs
      e.eq_cells;
    List.iter
      (fun d ->
        Format.fprintf fmt "@\n  %s: %a vs %a" d.cd_where pp_value d.cd_orig
          pp_value d.cd_xform)
      e.eq_diffs
  end

(* ------------------------------------------------------------------ *)
(* Dynamic legality of the re-folded DDG                               *)
(* ------------------------------------------------------------------ *)

type violation = {
  vl_dep : Ddg.Depprof.dep_key;
  vl_dim : int;  (* 1-based dimension carrying the reversal *)
}

type legality = {
  dl_ok : bool;
  dl_deps : int;  (* dependences examined *)
  dl_pieces : int;  (* exact pieces checked polyhedrally *)
  dl_approx : int;  (* pieces skipped as approximate (warning, not failure) *)
  dl_violations : violation list;
}

let nonempty poly =
  if P.dim poly <= 4 then not (P.is_empty poly)
  else
    match Minisl.Lp.maximize poly (A.const ~dim:(P.dim poly) Rat.zero) with
    | Minisl.Lp.Infeasible -> false
    | Minisl.Lp.Opt _ | Minisl.Lp.Unbounded -> true

(* Does the (exact) piece contain a point whose source iteration comes
   lexicographically *after* its destination on the first [common]
   dims?  The domain ranges over destination coordinates; labels give
   the source coordinates as affine functions of them. *)
let piece_reversed_dim (p : Fold.piece) common =
  let n = P.dim p.Fold.dom in
  let exception Approx in
  try
    let rec go d poly =
      if d >= common then None
      else
        match if d < Array.length p.Fold.labels then p.Fold.labels.(d) else None with
        | None -> raise Approx
        | Some src_d ->
            let dst_d = A.var ~dim:n d in
            (* src_d - dst_d - 1 >= 0 : the source runs after the dest *)
            let viol =
              P.add_constraint poly
                (C.of_affine C.Ge
                   (A.sub (A.sub src_d dst_d) (A.const ~dim:n Rat.one)))
            in
            if nonempty viol then Some (d + 1)
            else
              (* continue under src_d = dst_d *)
              go (d + 1)
                (P.add_constraint poly
                   (C.of_affine C.Eq (A.sub src_d dst_d)))
    in
    Ok (go 0 p.Fold.dom)
  with Approx -> Error `Approx

(* Check every dependence of a (re-)analysis: under the program's loop
   order, no exact piece may contain a reversed pair.  Approximate
   pieces (missing labels, over-approximated domains) are counted and
   skipped — they cannot *witness* a reversal. *)
let dynamic_legality (t : Sched.Depanalysis.t) =
  let deps = ref 0 in
  let pieces = ref 0 in
  let approx = ref 0 in
  let violations = ref [] in
  List.iter
    (fun (d : Sched.Depanalysis.dep_ext) ->
      if d.common > 0 then begin
        incr deps;
        List.iter
          (fun (p : Fold.piece) ->
            if not p.Fold.exact then incr approx
            else
              match piece_reversed_dim p d.common with
              | Error `Approx -> incr approx
              | Ok None -> incr pieces
              | Ok (Some dim) ->
                  incr pieces;
                  violations :=
                    { vl_dep = d.di.Ddg.Depprof.dk; vl_dim = dim }
                    :: !violations)
          d.di.Ddg.Depprof.d_pieces
      end)
    t.Sched.Depanalysis.deps;
  { dl_ok = !violations = [];
    dl_deps = !deps;
    dl_pieces = !pieces;
    dl_approx = !approx;
    dl_violations = List.rev !violations }

let pp_legality fmt l =
  if l.dl_ok then
    Format.fprintf fmt
      "legal: %d dependences, %d exact pieces lexicographically non-negative%s"
      l.dl_deps l.dl_pieces
      (if l.dl_approx > 0 then
         Printf.sprintf " (%d approximate pieces skipped)" l.dl_approx
       else "")
  else
    Format.fprintf fmt "ILLEGAL: %d reversed dependence piece(s), first at dim %d"
      (List.length l.dl_violations)
      (match l.dl_violations with v :: _ -> v.vl_dim | [] -> 0)
