module A = Minisl.Affine
module P = Minisl.Polyhedron

type strategy = Smartfuse | Maxfuse

let strategy_code = function Smartfuse -> "S" | Maxfuse -> "M"

type component = {
  c_path : Depanalysis.path;
  c_weight : int;
  c_order : int;
}

type result = {
  components_before : int;
  components_after : int;
  strategy : strategy;
  merged_groups : component list list;
}

let rec take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

let is_prefix p l = take (List.length p) l = p

let components (t : Depanalysis.t) ~prefix ~threshold =
  let plen = List.length prefix in
  let region_weight =
    List.fold_left
      (fun acc (s : Depanalysis.stmt_ext) ->
        if is_prefix prefix s.spath then acc + s.si.Ddg.Depprof.s_count else acc)
      0 t.stmts
  in
  let cands =
    List.filter
      (fun (l : Depanalysis.loop_info) ->
        l.ldepth = plen + 1 && is_prefix prefix l.lpath)
      t.loops
  in
  let min_w = int_of_float (threshold *. float_of_int region_weight) in
  (* Execution order of a component: the smallest statement id under the
     loop.  Sids are packed (fid, bid, idx) in lowering order, so this is
     program order — [t.loops] itself is sorted on interned context
     paths, which is NOT execution order across sibling loops. *)
  let exec_key (l : Depanalysis.loop_info) =
    List.fold_left
      (fun acc (s : Depanalysis.stmt_ext) ->
        if is_prefix l.lpath s.spath then
          min acc s.si.Ddg.Depprof.sk.Ddg.Depprof.s_sid
        else acc)
      max_int t.stmts
  in
  cands
  |> List.filter (fun (l : Depanalysis.loop_info) -> l.lweight >= min_w)
  |> List.map (fun l -> (exec_key l, l))
  |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
  |> List.mapi (fun i (_, (l : Depanalysis.loop_info)) ->
         { c_path = l.lpath; c_weight = l.lweight; c_order = i })

(* Endpoint paths of a dependence: the resolved copies cached on
   [dep_ext], never the raw ctx ids — those dangle as soon as any later
   re-profile (a transformation verifier, the autotuner's oracle) resets
   the intern table. *)
let dep_paths (d : Depanalysis.dep_ext) = (d.dsrc_path, d.ddst_path)

(* Is fusing components [a] (earlier) and [b] (later) legal?  Every
   dependence crossing them must be non-negative along the fused
   dimension (position [plen], 0-based) under the identification of the
   two loops' canonical iterators. *)
let fusion_legal (t : Depanalysis.t) plen a b =
  List.for_all
    (fun (d : Depanalysis.dep_ext) ->
      let sp, dp = dep_paths d in
      let crosses =
        (is_prefix a.c_path sp && is_prefix b.c_path dp)
        || (is_prefix b.c_path sp && is_prefix a.c_path dp)
      in
      if not crosses then true
      else
        List.for_all
          (fun (p : Fold.piece) ->
            match
              if plen < Array.length p.Fold.labels then p.Fold.labels.(plen)
              else None
            with
            | None -> false
            | Some out_p ->
                begin
                  let n = P.dim p.Fold.dom in
                  if plen >= n then false
                  else begin
                    let expr = A.sub (A.var ~dim:n plen) out_p in
                    (* consumer executes at or after producer on the
                       fused dimension *)
                    let forward = is_prefix a.c_path sp in
                    let lo, hi =
                      if P.dim p.Fold.dom <= 4 then P.bounds p.Fold.dom expr
                      else
                        try Minisl.Lp.bounds p.Fold.dom expr
                        with Invalid_argument _ -> (None, None)
                    in
                    if forward then
                      match lo with
                      | Some l -> Pp_util.Rat.sign l >= 0
                      | None -> false
                    else
                      (* dep from the later loop back into the earlier
                         one would be reversed by fusion *)
                      match hi with
                      | Some h -> Pp_util.Rat.sign h <= 0
                      | None -> false
                  end
                end)
          d.di.Ddg.Depprof.d_pieces)
    t.deps

let have_dep (t : Depanalysis.t) a b =
  List.exists
    (fun (d : Depanalysis.dep_ext) ->
      let sp, dp = dep_paths d in
      (is_prefix a.c_path sp && is_prefix b.c_path dp)
      || (is_prefix b.c_path sp && is_prefix a.c_path dp))
    t.deps

let cluster (t : Depanalysis.t) strategy plen comps =
  let groups = ref [] in
  List.iter
    (fun c ->
      match !groups with
      | [] -> groups := [ [ c ] ]
      | g :: rest ->
          let legal = List.for_all (fun m -> fusion_legal t plen m c) g in
          let wanted =
            match strategy with
            | Maxfuse -> true
            | Smartfuse -> List.exists (fun m -> have_dep t m c) g
          in
          if legal && wanted then groups := (c :: g) :: rest
          else groups := [ c ] :: g :: rest)
    comps;
  List.rev_map List.rev !groups

let fuse (t : Depanalysis.t) strategy ~prefix ?(threshold = 0.05) () =
  let comps = components t ~prefix ~threshold in
  let plen = List.length prefix in
  let merged = cluster t strategy plen comps in
  (* distribution: a merged outer loop splits into one component per
     cluster of its sub-loops that cannot (or, for smartfuse, should
     not) share the fused inner loop after transformation *)
  let after =
    List.fold_left
      (fun acc group ->
        let children =
          List.concat_map
            (fun c -> components t ~prefix:c.c_path ~threshold) group
        in
        let sub_groups =
          match children with
          | [] | [ _ ] -> 1
          | cs -> max 1 (List.length (cluster t strategy (plen + 1) cs))
        in
        acc + sub_groups)
      0 merged
  in
  { components_before = List.length comps;
    components_after = after;
    strategy;
    merged_groups = merged }

(* Adjacent legal fusion pairs for a schedule-search enumerator.  For
   every loop region prefix (the root plus each profiled loop), cluster
   the components under [Maxfuse] and emit every consecutive pair of
   every merged group, resolved to the two loops' header locations; the
   profiled-dependence legality gate is [fusion_legal] inside the
   clustering.  Only located pairs survive — the source rewriter cannot
   address a loop without a source location. *)
let candidate_pairs ?(threshold = 0.02) (t : Depanalysis.t) =
  let prefixes =
    [] :: List.map (fun (l : Depanalysis.loop_info) -> l.Depanalysis.lpath)
           t.Depanalysis.loops
  in
  let loc_of c =
    match Depanalysis.loop_at t c.c_path with
    | Some l -> l.Depanalysis.header_loc
    | None -> None
  in
  let pairs = ref [] in
  List.iter
    (fun prefix ->
      let r = fuse t Maxfuse ~prefix ~threshold () in
      List.iter
        (fun group ->
          let rec adj = function
            | a :: (b :: _ as rest) ->
                (match (loc_of a, loc_of b) with
                | Some la, Some lb ->
                    pairs := ((la, lb), (a.c_path, b.c_path)) :: !pairs
                | _ -> ());
                adj rest
            | _ -> ()
          in
          adj group)
        r.merged_groups)
    prefixes;
  (* two dynamic prefixes (a kernel called twice) can map to the same
     static pair *)
  let seen = Hashtbl.create 16 in
  List.rev !pairs
  |> List.filter (fun ((la, lb), _) ->
         let k = (la, lb) in
         if Hashtbl.mem seen k then false
         else begin
           Hashtbl.add seen k ();
           true
         end)
