(* Machine-applicable schedules.

   [Transform.suggest] produces a list of steps over abstract nest
   dimensions d1..dn; the feedback report renders them as text.  This
   module exports the missing half: for each dimension, *which loop in
   the program* it denotes (source location + owning function), so an
   applier ([Xform.Apply]) can replay the steps as source rewrites — and
   a static legality check of the whole step sequence against the
   profiled direction vectors, step by step, the way a polyhedral
   scheduler would validate a user-supplied schedule. *)

type dim_target = {
  t_loc : Vm.Prog.loc option;  (* header location of the loop for this dim *)
  t_fid : int option;  (* function owning that loop *)
}

type t = {
  p_nest : Depanalysis.nest_info;
  p_targets : dim_target array;  (* one per dim, outermost first *)
  p_steps : Transform.step list;
  p_stride01 : float array;
  p_interchange : (int * int) option;
  p_weight : int;
}

let rec take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

let dim_fid (path : Depanalysis.path) d =
  match List.nth_opt path d with
  | Some stack -> (
      match List.rev stack with
      | Ddg.Iiv.Cloop (fid, _) :: _ -> Some fid
      | _ -> None)
  | None -> None

(* Header location of each dimension of a nest, outermost first. *)
let nest_dim_locs (t : Depanalysis.t) (n : Depanalysis.nest_info) =
  Array.init n.Depanalysis.ndepth (fun d ->
      match Depanalysis.loop_at t (take (d + 1) n.Depanalysis.npath) with
      | Some l -> l.Depanalysis.header_loc
      | None -> None)

let of_suggestion (t : Depanalysis.t) (s : Transform.suggestion) =
  let n = s.Transform.nest in
  let locs = nest_dim_locs t n in
  let targets =
    Array.init n.Depanalysis.ndepth (fun d ->
        { t_loc = locs.(d); t_fid = dim_fid n.Depanalysis.npath d })
  in
  { p_nest = n;
    p_targets = targets;
    p_steps = s.Transform.steps;
    p_stride01 = s.Transform.stride01;
    p_interchange = s.Transform.interchange;
    p_weight = n.Depanalysis.nweight }

let target_locs p =
  Array.to_list p.p_targets
  |> List.filter_map (fun t -> t.t_loc)

let describe p =
  String.concat " > "
    (Array.to_list p.p_targets
    |> List.map (fun t ->
           match t.t_loc with
           | Some l -> Printf.sprintf "%s:%d" l.Vm.Prog.file l.Vm.Prog.line
           | None -> "?"))

(* All plans of a feedback report that carry at least one step, hottest
   first.  Two dynamic nests can denote the same static loops (a kernel
   called from two sites); they would replay to the identical rewrite,
   so deduplicate by (targets, steps). *)
let plans_of_feedback (fb : Feedback.t) =
  let plans =
    List.concat_map
      (fun (r : Feedback.region_report) ->
        List.filter_map
          (fun (s : Transform.suggestion) ->
            if s.Transform.steps = [] then None
            else Some (of_suggestion fb.Feedback.analysis s))
          r.Feedback.suggestions)
      fb.Feedback.regions
  in
  let seen = Hashtbl.create 16 in
  let plans =
    List.filter
      (fun p ->
        let key = (Array.map (fun t -> t.t_loc) p.p_targets, p.p_steps) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      plans
  in
  List.sort (fun a b -> compare b.p_weight a.p_weight) plans

(* ------------------------------------------------------------------ *)
(* Static legality of a step sequence on the profiled DDG              *)
(* ------------------------------------------------------------------ *)

type step_verdict = {
  sv_step : Transform.step;
  sv_ok : bool;
  sv_why : string;
}

type legality = {
  lg_ok : bool;
  lg_verdicts : step_verdict list;
  lg_deps : int;  (* dependences the sequence was checked against *)
}

(* Would the transformed direction vector admit a lexicographically
   negative instance?  (first possibly-nonzero component possibly
   negative, with all earlier components possibly zero) *)
let lex_negative_possible dirs =
  let n = Array.length dirs in
  let rec go i =
    if i >= n then false
    else if Depanalysis.dir_can_be_negative dirs.(i) then true
    else if Depanalysis.dir_can_be_zero dirs.(i) then go (i + 1)
    else false
  in
  go 0

(* Check the steps of [plan] against every dependence relevant to its
   nest, transforming each dependence's direction vector as the steps
   are applied (skews compose, interchange permutes); reduction-like
   register chains are exempt, as in the band construction. *)
let legal (t : Depanalysis.t) (plan : t) : legality =
  let n = plan.p_nest in
  let rel =
    List.filter
      (fun d ->
        Depanalysis.dep_relevant_to_prefix d n.Depanalysis.npath
        && not (Depanalysis.dep_reduction_like d))
      t.Depanalysis.deps
  in
  (* per-dependence state: direction vector plus the constant distance
     per dim when known — distances compose exactly under skewing where
     the sign abstraction alone would degrade to [Dany] *)
  let states =
    List.map
      (fun (d : Depanalysis.dep_ext) ->
        (d, Array.copy d.dirs, Array.copy d.dists))
      rel
  in
  (* a dependence not carried strictly before dim [a] (1-based) *)
  let may_reach a dirs =
    Array.length dirs >= a - 1 && Depanalysis.zeros_possible_before a dirs
  in
  let verdicts =
    List.map
      (fun (step : Transform.step) ->
        match step with
        | Transform.Skew (o, i, f) ->
            if f < 0 then
              { sv_step = step; sv_ok = false; sv_why = "negative skew factor" }
            else begin
              List.iter
                (fun ((_ : Depanalysis.dep_ext), dirs, dists) ->
                  let len = Array.length dirs in
                  if i - 1 < len && o - 1 < len then begin
                    let dist =
                      match (dists.(i - 1), dists.(o - 1)) with
                      | Some di, Some dd -> Some (di + (f * dd))
                      | _ -> None
                    in
                    dists.(i - 1) <- dist;
                    dirs.(i - 1) <-
                      (match dist with
                      | Some d when d > 0 -> Depanalysis.Dpos
                      | Some 0 -> Depanalysis.Dzero
                      | Some _ -> Depanalysis.Dneg
                      | None ->
                          Depanalysis.dir_add dirs.(i - 1)
                            (Depanalysis.dir_scale f dirs.(o - 1)))
                  end)
                states;
              { sv_step = step; sv_ok = true; sv_why = "unimodular" }
            end
        | Transform.Interchange (a, b) ->
            let bad =
              List.filter
                (fun ((_ : Depanalysis.dep_ext), dirs, (_ : int option array)) ->
                  let len = Array.length dirs in
                  if len < a then false
                  else if len < b then
                    (* spans dim a but not b: moving dim b above it is
                       only safe if the dependence is already carried
                       before a *)
                    may_reach a dirs
                  else begin
                    let c = Array.copy dirs in
                    let tmp = c.(a - 1) in
                    c.(a - 1) <- c.(b - 1);
                    c.(b - 1) <- tmp;
                    lex_negative_possible c
                  end)
                states
            in
            if bad = [] then begin
              List.iter
                (fun ((_ : Depanalysis.dep_ext), dirs, dists) ->
                  if Array.length dirs >= b then begin
                    let tmp = dirs.(a - 1) in
                    dirs.(a - 1) <- dirs.(b - 1);
                    dirs.(b - 1) <- tmp;
                    let tmp = dists.(a - 1) in
                    dists.(a - 1) <- dists.(b - 1);
                    dists.(b - 1) <- tmp
                  end)
                states;
              { sv_step = step;
                sv_ok = true;
                sv_why = "direction vectors stay lexicographically non-negative" }
            end
            else
              { sv_step = step;
                sv_ok = false;
                sv_why =
                  Printf.sprintf
                    "%d dependence(s) would be reversed by the interchange"
                    (List.length bad) }
        | Transform.Tile (a, b, _) ->
            let bad =
              List.filter
                (fun ((_ : Depanalysis.dep_ext), dirs, (_ : int option array)) ->
                  let len = Array.length dirs in
                  len >= a && may_reach a dirs
                  &&
                  let hi = min b len in
                  let bad = ref false in
                  for d = a - 1 to hi - 1 do
                    if Depanalysis.dir_can_be_negative dirs.(d) then bad := true
                  done;
                  !bad)
                states
            in
            if bad = [] then
              { sv_step = step; sv_ok = true; sv_why = "band is permutable" }
            else
              { sv_step = step;
                sv_ok = false;
                sv_why =
                  Printf.sprintf
                    "%d dependence(s) have a negative component inside the band"
                    (List.length bad) }
        | Transform.Parallelize d ->
            if
              d >= 1
              && d <= n.Depanalysis.ndepth
              && n.Depanalysis.nparallel.(d - 1)
            then
              { sv_step = step; sv_ok = true; sv_why = "no dependence carried" }
            else
              { sv_step = step;
                sv_ok = false;
                sv_why = "a dependence is carried at this dimension" }
        | Transform.Vectorize _ ->
            let inner_after =
              match plan.p_interchange with
              | Some (a, _) -> a
              | None -> n.Depanalysis.ndepth
            in
            if
              (inner_after >= 1
              && inner_after <= n.Depanalysis.ndepth
              && n.Depanalysis.nparallel.(inner_after - 1))
              || Transform.innermost_only_reductions t n
            then
              { sv_step = step;
                sv_ok = true;
                sv_why = "innermost dim parallel or reduction-only" }
            else
              { sv_step = step;
                sv_ok = false;
                sv_why = "innermost dimension carries a dependence" })
      plan.p_steps
  in
  { lg_ok = List.for_all (fun v -> v.sv_ok) verdicts;
    lg_verdicts = verdicts;
    lg_deps = List.length rel }

let pp_legality fmt l =
  Format.fprintf fmt "checked against %d dependence(s):@\n" l.lg_deps;
  List.iter
    (fun v ->
      Format.fprintf fmt "  %s %a: %s@\n"
        (if v.sv_ok then "ok  " else "FAIL")
        Transform.pp_step v.sv_step v.sv_why)
    l.lg_verdicts
