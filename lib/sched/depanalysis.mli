(** Dependence analysis over the folded polyhedral DDG: direction /
    distance vectors per common loop prefix, parallelism per loop
    dimension, permutable bands and skewing (the legality core behind the
    feedback of paper §6). *)

type dir = Dzero | Dpos | Dneg | Dnonneg | Dnonpos | Dany

val pp_dir : Format.formatter -> dir -> unit
val dir_can_be_zero : dir -> bool
val dir_can_be_nonzero : dir -> bool
val dir_can_be_negative : dir -> bool
val dir_can_be_positive : dir -> bool

val dir_add : dir -> dir -> dir
(** Sign-interval addition: the abstraction of [a + b].  Used to compose
    direction vectors under affine schedule changes (skewing). *)

val dir_scale : int -> dir -> dir
(** The abstraction of [k * a]. *)

type path = Ddg.Iiv.ctx_id list list
(** A loop-dimension stack prefix: element [i] is the full context stack
    of dimension [i].  Identifies a loop instance in the schedule tree. *)

type stmt_ext = {
  si : Ddg.Depprof.stmt_info;
  spath : path;  (** the statement's loop dimensions (without the
                     trailing statement context) *)
}

type dep_ext = {
  di : Ddg.Depprof.dep_info;
  dsrc_path : path;  (** source loop dims, resolved at [analyse] time
                         (the raw ctx ids dangle after re-profiling) *)
  ddst_path : path;  (** destination loop dims, same caveat *)
  common : int;  (** length of the common loop prefix of src and dst *)
  dirs : dir array;  (** per common dimension *)
  dists : int option array;  (** constant distance per dim if known *)
  approx : bool;  (** true if any piece had unknown labels *)
}

type loop_info = {
  lpath : path;
  ldepth : int;  (** = List.length lpath *)
  parallel : bool;
  lweight : int;  (** dynamic ops strictly inside this loop *)
  header_loc : Vm.Prog.loc option;
}

type band = { b_from : int; b_to : int; b_skews : (int * int * int) list }
(** Dimensions [b_from..b_to] (1-based, inclusive) of a nest are fully
    permutable, possibly after the recorded skews
    [(outer_dim, inner_dim, factor)]. *)

type nest_info = {
  npath : path;
  ndepth : int;
  nstmts : stmt_ext list;  (** statements exactly at this loop path *)
  nweight : int;  (** ops of [nstmts] *)
  bands : band list;
  nparallel : bool array;  (** per dimension, 1-based as [.(d-1)] *)
}

type t = {
  stmts : stmt_ext list;
  deps : dep_ext list;
  loops : loop_info list;  (** every loop prefix observed, outer first *)
  nests : nest_info list;  (** one per distinct maximal statement path *)
  total_ops : int;
}

val analyse : Vm.Prog.t -> Ddg.Depprof.result -> t

val stmt_path : Ddg.Depprof.stmt_info -> path
val loop_at : t -> path -> loop_info option
val max_band_width : nest_info -> int
val nest_uses_skew : nest_info -> bool

val dep_relevant_to_prefix : dep_ext -> path -> bool
(** Both endpoints of the dependence lie (strictly or not) below the
    given loop prefix. *)

val dep_reduction_like : dep_ext -> bool
(** A same-block register chain: the signature of a scalar reduction,
    privatisable/reassociable, exempt from band/schedule legality (the
    same exemption the band construction applies). *)

val zeros_possible_before : int -> dir array -> bool
(** Can the dependence be loop-independent w.r.t. the first [d - 1]
    dimensions (i.e. is it *not* necessarily carried before dim [d])? *)

val pp : Format.formatter -> t -> unit
