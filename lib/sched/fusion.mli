(** Loop fusion / distribution structure (paper Table 5 columns C /
    Comp. / fusion).

    A {e component} is an outermost loop (under a region prefix) whose
    operation count exceeds a threshold fraction of the region.  The
    fusion heuristics merge adjacent components when legal:
    - [Maxfuse] fuses whenever legal;
    - [Smartfuse] fuses only components that exchange data (a dependence
      exists between them) — the balanced strategy of the paper. *)

type strategy = Smartfuse | Maxfuse

val strategy_code : strategy -> string
(** "S" or "M" as printed in Table 5. *)

type component = {
  c_path : Depanalysis.path;  (** loop prefix of length region+1 *)
  c_weight : int;
  c_order : int;  (** textual order of first execution *)
}

type result = {
  components_before : int;
  components_after : int;
  strategy : strategy;
  merged_groups : component list list;
}

val components :
  Depanalysis.t -> prefix:Depanalysis.path -> threshold:float -> component list
(** Components under [prefix], in execution order.  [threshold] is the
    minimum fraction of the region's ops (the paper uses 0.05). *)

val fuse :
  Depanalysis.t -> strategy -> prefix:Depanalysis.path -> ?threshold:float
  -> unit -> result

val candidate_pairs :
  ?threshold:float ->
  Depanalysis.t ->
  ((Vm.Prog.loc * Vm.Prog.loc) * (Depanalysis.path * Depanalysis.path)) list
(** Adjacent fusion pairs [(first, second)] (header locations, execution
    order) that the profiled dependences allow under [Maxfuse], over
    every region prefix — the fuse-step generator of the autotuner.
    Also returns the two component paths for reporting. *)
