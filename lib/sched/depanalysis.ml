module A = Minisl.Affine
module P = Minisl.Polyhedron
module Rat = Pp_util.Rat

type dir = Dzero | Dpos | Dneg | Dnonneg | Dnonpos | Dany

let pp_dir fmt d =
  Format.pp_print_string fmt
    (match d with
    | Dzero -> "0"
    | Dpos -> "+"
    | Dneg -> "-"
    | Dnonneg -> "0+"
    | Dnonpos -> "0-"
    | Dany -> "*")

let dir_can_be_zero = function
  | Dzero | Dnonneg | Dnonpos | Dany -> true
  | Dpos | Dneg -> false

let dir_can_be_nonzero = function
  | Dzero -> false
  | Dpos | Dneg | Dnonneg | Dnonpos | Dany -> true

let dir_can_be_negative = function
  | Dneg | Dnonpos | Dany -> true
  | Dzero | Dpos | Dnonneg -> false

(* join in the direction lattice *)
let dir_join a b =
  if a = b then a
  else
    let can_neg = dir_can_be_negative a || dir_can_be_negative b in
    let can_zero = dir_can_be_zero a || dir_can_be_zero b in
    let can_pos d = match d with Dpos | Dnonneg | Dany -> true | Dzero | Dneg | Dnonpos -> false in
    let cp = can_pos a || can_pos b in
    match (can_neg, can_zero, cp) with
    | false, false, true -> Dpos
    | true, false, false -> Dneg
    | false, true, false -> Dzero
    | false, true, true -> Dnonneg
    | true, true, false -> Dnonpos
    | _ -> Dany

let dir_can_be_positive = function
  | Dpos | Dnonneg | Dany -> true
  | Dzero | Dneg | Dnonpos -> false

let dir_of_signs ~neg ~zero ~pos =
  match (neg, zero, pos) with
  | false, false, true -> Dpos
  | true, false, false -> Dneg
  | false, true, false -> Dzero
  | false, true, true -> Dnonneg
  | true, true, false -> Dnonpos
  | _ -> Dany

(* Interval arithmetic on sign abstractions, for composing direction
   vectors under affine schedule changes (skewing): the sign set of
   a + b given the sign sets of a and b. *)
let dir_add a b =
  let na = dir_can_be_negative a
  and za = dir_can_be_zero a
  and pa = dir_can_be_positive a in
  let nb = dir_can_be_negative b
  and zb = dir_can_be_zero b
  and pb = dir_can_be_positive b in
  dir_of_signs
    ~neg:(na || nb)
    ~zero:((za && zb) || (na && pb) || (pa && nb))
    ~pos:(pa || pb)

let dir_scale k d =
  if k = 0 then Dzero
  else if k > 0 then d
  else
    dir_of_signs ~neg:(dir_can_be_positive d) ~zero:(dir_can_be_zero d)
      ~pos:(dir_can_be_negative d)

type path = Ddg.Iiv.ctx_id list list

type stmt_ext = { si : Ddg.Depprof.stmt_info; spath : path }

type dep_ext = {
  di : Ddg.Depprof.dep_info;
  dsrc_path : path;
  ddst_path : path;
  common : int;
  dirs : dir array;
  dists : int option array;
  approx : bool;
}

type loop_info = {
  lpath : path;
  ldepth : int;
  parallel : bool;
  lweight : int;
  header_loc : Vm.Prog.loc option;
}

type band = { b_from : int; b_to : int; b_skews : (int * int * int) list }

type nest_info = {
  npath : path;
  ndepth : int;
  nstmts : stmt_ext list;
  nweight : int;
  bands : band list;
  nparallel : bool array;
}

type t = {
  stmts : stmt_ext list;
  deps : dep_ext list;
  loops : loop_info list;
  nests : nest_info list;
  total_ops : int;
}

let loop_dims_of_context (ctx : Ddg.Iiv.context) : path =
  match List.rev ctx with [] -> [] | _last :: dims_rev -> List.rev dims_rev

let stmt_path (si : Ddg.Depprof.stmt_info) =
  loop_dims_of_context (Ddg.Iiv.context_of_id si.sk.s_ctx)

let rec common_prefix_len a b =
  match (a, b) with
  | x :: xs, y :: ys when x = y -> 1 + common_prefix_len xs ys
  | _ -> 0

let rec take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

let is_prefix p l = take (List.length p) l = p

(* Classify the sign of an affine expression over a polyhedron.  Low
   dimensions use exact Fourier-Motzkin; higher ones the exact rational
   simplex (interval propagation would lose triangular precision). *)
let exact_bounds dom expr =
  if P.dim dom <= 4 then P.bounds dom expr
  else try Minisl.Lp.bounds dom expr with Invalid_argument _ -> (None, None)

let classify_sign dom expr =
  let lo, hi = exact_bounds dom expr in
  let const =
    match (lo, hi) with
    | Some l, Some h when Rat.equal l h && Rat.is_integer l ->
        Some (Rat.to_int_exn l)
    | _ -> None
  in
  let dir =
    match (lo, hi) with
    | Some l, Some h when Rat.is_zero l && Rat.is_zero h -> Dzero
    | Some l, _ when Rat.sign l > 0 -> Dpos
    | _, Some h when Rat.sign h < 0 -> Dneg
    | Some l, _ when Rat.sign l >= 0 -> Dnonneg
    | _, Some h when Rat.sign h <= 0 -> Dnonpos
    | _ -> Dany
  in
  (dir, const)

let analyse_dep (di : Ddg.Depprof.dep_info) ~src_path ~dst_path =
  let common = common_prefix_len src_path dst_path in
  let dirs = Array.make common Dzero in
  let dists = Array.make common None in
  let approx = ref false in
  let first = ref true in
  List.iter
    (fun (p : Fold.piece) ->
      let n = P.dim p.Fold.dom in
      if Array.exists Option.is_none p.Fold.labels then approx := true;
      for d = 0 to common - 1 do
        let dir, const =
          match
            if d < Array.length p.Fold.labels then p.Fold.labels.(d) else None
          with
          | Some out_d ->
              classify_sign p.Fold.dom (A.sub (A.var ~dim:n d) out_d)
          | None -> (Dany, None)
        in
        if !first then begin
          dirs.(d) <- dir;
          dists.(d) <- const
        end
        else begin
          dirs.(d) <- dir_join dirs.(d) dir;
          dists.(d) <-
            (match (dists.(d), const) with
            | Some a, Some b when a = b -> Some a
            | _ -> None)
        end
      done;
      first := false)
    di.Ddg.Depprof.d_pieces;
  if !first && common > 0 then begin
    (* no pieces at all: treat conservatively *)
    approx := true;
    Array.fill dirs 0 common Dany
  end;
  { di; dsrc_path = src_path; ddst_path = dst_path; common; dirs; dists;
    approx = !approx }

(* Can the dependence be loop-independent w.r.t. the first [p] dims? *)
let zeros_possible_before d dirs =
  let ok = ref true in
  for i = 0 to d - 2 do
    if not (dir_can_be_zero dirs.(i)) then ok := false
  done;
  !ok

let analyse prog (res : Ddg.Depprof.result) =
  let stmts =
    List.map (fun si -> { si; spath = stmt_path si }) res.Ddg.Depprof.stmts
  in
  let path_of_ctx ctx = loop_dims_of_context (Ddg.Iiv.context_of_id ctx) in
  let deps =
    List.map
      (fun (di : Ddg.Depprof.dep_info) ->
        analyse_dep di ~src_path:(path_of_ctx di.dk.src_ctx)
          ~dst_path:(path_of_ctx di.dk.dst_ctx))
      res.Ddg.Depprof.deps
  in
  (* all loop prefixes *)
  let prefix_tbl : (path, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let rec add p rest =
        match rest with
        | [] -> ()
        | dim :: rest' ->
            let p' = p @ [ dim ] in
            let w = try Hashtbl.find prefix_tbl p' with Not_found -> 0 in
            Hashtbl.replace prefix_tbl p' (w + s.si.Ddg.Depprof.s_count);
            add p' rest'
      in
      add [] s.spath)
    stmts;
  (* parallelism per prefix *)
  let non_parallel : (path, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun d ->
      let src_path = path_of_ctx d.di.dk.src_ctx in
      let rec mark p =
        if p <= d.common then begin
          if zeros_possible_before p d.dirs && dir_can_be_nonzero d.dirs.(p - 1)
          then Hashtbl.replace non_parallel (take p src_path) ();
          (* deeper dims can only be "first non-zero" if this one can be 0 *)
          if dir_can_be_zero d.dirs.(p - 1) then mark (p + 1)
        end
      in
      mark 1)
    deps;
  let header_loc_of (pth : path) =
    match List.rev pth with
    | [] -> None
    | stack :: _ -> (
        match List.rev stack with
        | Ddg.Iiv.Cloop (fid, lid) :: _ -> (
            match Cfg.Cfg_builder.forest_of res.Ddg.Depprof.structure fid with
            | None -> None
            | Some forest -> (
                match
                  List.find_opt
                    (fun (l : Cfg.Loopnest.loop) -> l.loop_id = lid)
                    (Cfg.Loopnest.all_loops forest)
                with
                | None -> None
                | Some l -> Vm.Prog.loc_of_block prog ~fid ~bid:l.header))
        | _ -> None)
  in
  let loops =
    Hashtbl.fold
      (fun p w acc ->
        { lpath = p;
          ldepth = List.length p;
          parallel = not (Hashtbl.mem non_parallel p);
          lweight = w;
          header_loc = header_loc_of p }
        :: acc)
      prefix_tbl []
    |> List.sort (fun a b -> compare (a.ldepth, a.lpath) (b.ldepth, b.lpath))
  in
  (* nests: group statements by exact loop path *)
  let nest_tbl : (path, stmt_ext list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let cur = try Hashtbl.find nest_tbl s.spath with Not_found -> [] in
      Hashtbl.replace nest_tbl s.spath (s :: cur))
    stmts;
  let dep_endpoints_under d prefix =
    let sp = path_of_ctx d.di.dk.src_ctx and dp = path_of_ctx d.di.dk.dst_ctx in
    is_prefix prefix sp && is_prefix prefix dp
  in
  let mk_nest npath nstmts =
    let ndepth = List.length npath in
    let nweight =
      List.fold_left (fun acc s -> acc + s.si.Ddg.Depprof.s_count) 0 nstmts
    in
    let nparallel =
      Array.init ndepth (fun i ->
          not (Hashtbl.mem non_parallel (take (i + 1) npath)))
    in
    (* greedy maximal permutable bands with optional skewing *)
    let bands = ref [] in
    let a = ref 1 in
    while !a <= ndepth do
      let skews = ref [] in
      let b = ref !a in
      let extend_ok b' =
        (* all deps whose endpoints are under prefix b' must have
           non-negative components on dims a..b' (unless carried before a),
           possibly after skewing *)
        let violators = ref [] in
        let ok = ref true in
        List.iter
          (fun d ->
            if dep_endpoints_under d (take b' npath) then
              if not (zeros_possible_before !a d.dirs) then () (* carried outside *)
              else if d.common < b' then
                (* the dependence does not span this dimension: it links
                   different sub-nests; only blocks if not carried earlier *)
                ()
              else begin
                (* a same-block register chain is a scalar reduction:
                   privatisable, it does not constrain the band *)
                let reduction_like =
                  d.di.Ddg.Depprof.dk.kind = Ddg.Depprof.Reg_dep
                  && Vm.Isa.Sid.fid d.di.Ddg.Depprof.dk.src_sid
                     = Vm.Isa.Sid.fid d.di.Ddg.Depprof.dk.dst_sid
                  && Vm.Isa.Sid.bid d.di.Ddg.Depprof.dk.src_sid
                     = Vm.Isa.Sid.bid d.di.Ddg.Depprof.dk.dst_sid
                in
                let fine = ref reduction_like in
                if not reduction_like then begin
                  fine := true;
                  for dd = !a - 1 to b' - 1 do
                    if dir_can_be_negative d.dirs.(dd) then fine := false
                  done
                end;
                if not !fine then violators := d :: !violators
              end)
          deps;
        if !violators = [] then Some []
        else begin
          (* try skewing: each violator must have a constant positive
             distance on dim a and a constant distance on the violating
             dim; skew inner by factor f wrt dim a *)
          let skew_needed = ref [] in
          List.iter
            (fun d ->
              if !ok then
                match (d.dists.(!a - 1), d.dists.(b' - 1)) with
                | Some da, Some db when da > 0 && db < 0 ->
                    let f = (-db + da - 1) / da in
                    skew_needed := f :: !skew_needed
                | _ -> ok := false)
            !violators;
          if !ok && !skew_needed <> [] then
            Some [ (!a, b', List.fold_left max 1 !skew_needed) ]
          else None
        end
      in
      let continue_band = ref true in
      while !continue_band && !b < ndepth do
        match extend_ok (!b + 1) with
        | Some new_skews ->
            skews := new_skews @ !skews;
            incr b
        | None -> continue_band := false
      done;
      (* a 1-wide "band" is only meaningful if the single dim is legal
         to tile, which it always is *)
      bands := { b_from = !a; b_to = !b; b_skews = List.rev !skews } :: !bands;
      a := !b + 1
    done;
    { npath; ndepth; nstmts = List.rev nstmts; nweight; bands = List.rev !bands; nparallel }
  in
  let nests =
    Hashtbl.fold (fun p ss acc -> mk_nest p ss :: acc) nest_tbl []
    |> List.sort (fun a b -> compare (a.npath, a.ndepth) (b.npath, b.ndepth))
  in
  let total_ops =
    List.fold_left (fun acc s -> acc + s.si.Ddg.Depprof.s_count) 0 stmts
  in
  { stmts; deps; loops; nests; total_ops }

let loop_at t p = List.find_opt (fun l -> l.lpath = p) t.loops

let max_band_width n =
  List.fold_left (fun acc b -> max acc (b.b_to - b.b_from + 1)) 0 n.bands

let nest_uses_skew n = List.exists (fun b -> b.b_skews <> []) n.bands

(* A same-block register chain: the signature of a scalar reduction,
   privatisable/reassociable, so it does not pin the loop order.  The
   same exemption the band construction in [analyse] applies. *)
let dep_reduction_like (d : dep_ext) =
  d.di.Ddg.Depprof.dk.kind = Ddg.Depprof.Reg_dep
  && Vm.Isa.Sid.fid d.di.Ddg.Depprof.dk.src_sid
     = Vm.Isa.Sid.fid d.di.Ddg.Depprof.dk.dst_sid
  && Vm.Isa.Sid.bid d.di.Ddg.Depprof.dk.src_sid
     = Vm.Isa.Sid.bid d.di.Ddg.Depprof.dk.dst_sid

(* Uses the paths resolved at [analyse] time: the ctx ids inside
   [dep_info] dangle once another program is profiled ([Depprof.profile]
   resets the global intern table), and the differential driver
   interleaves legality checks with re-profiling runs. *)
let dep_relevant_to_prefix d prefix =
  is_prefix prefix d.dsrc_path && is_prefix prefix d.ddst_path

let pp fmt t =
  Format.fprintf fmt "%d stmts, %d deps, %d loops, %d nests, %d ops@\n"
    (List.length t.stmts) (List.length t.deps) (List.length t.loops)
    (List.length t.nests) t.total_ops;
  List.iter
    (fun l ->
      Format.fprintf fmt "loop depth=%d weight=%d parallel=%b@\n" l.ldepth
        l.lweight l.parallel)
    t.loops;
  List.iter
    (fun n ->
      Format.fprintf fmt "nest depth=%d stmts=%d weight=%d bands=[%s]@\n"
        n.ndepth (List.length n.nstmts) n.nweight
        (String.concat ";"
           (List.map
              (fun b ->
                Printf.sprintf "%d-%d%s" b.b_from b.b_to
                  (if b.b_skews <> [] then "(skew)" else ""))
              n.bands)))
    t.nests
