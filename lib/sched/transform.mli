(** Structured-transformation suggestion per loop nest: the feedback core
    of paper §6–§7 (interchange, skewing, tiling, parallelisation,
    SIMDisation), driven by legality from {!Depanalysis} and
    profitability from stride profiles. *)

type step =
  | Interchange of int * int  (** bring dim [a] to position [b] (1-based) *)
  | Skew of int * int * int  (** skew inner dim wrt outer dim by factor *)
  | Tile of int * int * int  (** tile band dims [a..b] with given size *)
  | Parallelize of int  (** mark dim parallel (OMP PARALLEL DO) *)
  | Vectorize of int  (** SIMDise dim *)

val pp_step : Format.formatter -> step -> unit

type suggestion = {
  nest : Depanalysis.nest_info;
  steps : step list;
  parallel_dim : int option;  (** outermost parallel dim, 1-based *)
  simd : bool;  (** innermost dim parallelisable after the steps *)
  tile_depth : int;  (** width of the widest permutable band *)
  uses_skew : bool;
  stride01 : float array;
      (** per dim: fraction of the nest's memory operations that are
          stride-0/1 along that dim *)
  interchange : (int * int) option;
      (** profitable interchange: (dim to bring innermost, innermost) *)
  permutable : bool array;  (** per dim: inside a width>=2 band *)
}

val stride01_profile : Depanalysis.nest_info -> float array
(** Per-dimension stride-0/1 profile of the nest's memory accesses
    (paper Table 3's "% stride 0/1" columns). *)

val innermost_only_reductions : Depanalysis.t -> Depanalysis.nest_info -> bool
(** Every dependence relevant to the nest is either carried before the
    innermost dimension or is an innermost-carried same-block reduction
    chain (vectorisable with a SIMD reduction clause). *)

val suggest : ?tile_size:int -> Depanalysis.t -> Depanalysis.nest_info -> suggestion
val pp_suggestion : Format.formatter -> suggestion -> unit
