type structure = {
  cfgs : (int * Loopnest.t * Digraph.t) list;
  cg : Digraph.t;
  recset : Recset.t;
  call_sites : (int * int * int) list;
}

type t = {
  prog : Vm.Prog.t;
  func_cfgs : (int, Digraph.t) Hashtbl.t;
  cg : Digraph.t;
  sites : (int * int * int, unit) Hashtbl.t;
  mutable call_stack : (int * int) list;  (* (caller fid, site bid) *)
}

let create prog =
  let t =
    { prog;
      func_cfgs = Hashtbl.create 16;
      cg = Digraph.create ();
      sites = Hashtbl.create 16;
      call_stack = [] }
  in
  (* main is always executed *)
  let g = Digraph.create () in
  Digraph.add_node g 0;
  Hashtbl.replace t.func_cfgs prog.Vm.Prog.main g;
  Digraph.add_node t.cg prog.Vm.Prog.main;
  t

let cfg_of t fid =
  match Hashtbl.find_opt t.func_cfgs fid with
  | Some g -> g
  | None ->
      let g = Digraph.create () in
      Digraph.add_node g 0;
      Hashtbl.replace t.func_cfgs fid g;
      g

let on_control t = function
  | Vm.Event.Jump { fid; src; dst } -> Digraph.add_edge (cfg_of t fid) src dst
  | Vm.Event.Call { caller; site; callee; dst = _ } ->
      ignore (cfg_of t callee);
      Digraph.add_edge t.cg caller callee;
      Hashtbl.replace t.sites (caller, site, callee) ();
      t.call_stack <- (caller, site) :: t.call_stack
  | Vm.Event.Return { caller; dst; _ } -> (
      (* the call-site block falls through to the continuation block once
         the callee returns: that edge is part of the caller's CFG (a
         call never exits a loop, paper section 3.2) *)
      match t.call_stack with
      | (cf, site) :: rest ->
          t.call_stack <- rest;
          assert (cf = caller);
          Digraph.add_edge (cfg_of t caller) site dst
      | [] -> invalid_arg "Cfg_builder: unbalanced return")

let callbacks t =
  { Vm.Interp.on_control = on_control t; on_exec = (fun _ -> ()) }

let finalize t =
  let cfgs =
    Hashtbl.fold
      (fun fid g acc -> (fid, Loopnest.compute g ~entry:0, g) :: acc)
      t.func_cfgs []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let recset = Recset.compute t.cg ~main:t.prog.Vm.Prog.main in
  let call_sites = Hashtbl.fold (fun k () acc -> k :: acc) t.sites [] in
  { cfgs; cg = t.cg; recset; call_sites = List.sort compare call_sites }

let run ?max_steps ?args prog =
  Obs.Span.with_ ~cat:"cfg" "cfg.build" @@ fun () ->
  let t = create prog in
  let (_ : Vm.Interp.stats) =
    Vm.Interp.run ?max_steps ~callbacks:(callbacks t) ?args prog
  in
  finalize t

let forest_of s fid =
  List.find_map
    (fun (f, forest, _) -> if f = fid then Some forest else None)
    s.cfgs

let pp_structure fmt s =
  List.iter
    (fun (fid, forest, g) ->
      Format.fprintf fmt "function f%d: %d blocks, %d loops@\n%a" fid
        (Digraph.n_nodes g) (Loopnest.n_loops forest) Loopnest.pp forest)
    s.cfgs;
  Format.fprintf fmt "call graph:@\n%a" Digraph.pp s.cg;
  Format.fprintf fmt "recursive components:@\n%a" Recset.pp s.recset
