(* Human-readable views of the telemetry captured by [Obs]: a text
   summary (spans + metrics) and a self-flamegraph of the span tree on
   the generic [Flamegraph.frame] renderer. *)

let span_ms ns = float_of_int ns /. 1e6

let pretty_value = function
  | Obs.Metrics.Vint i -> string_of_int i
  | Obs.Metrics.Vhist h ->
      if h.Obs.Metrics.h_count = 0 then "n=0"
      else
        Printf.sprintf "n=%d sum=%d min=%d max=%d p50=%.0f p90=%.0f p99=%.0f"
          h.Obs.Metrics.h_count h.Obs.Metrics.h_sum h.Obs.Metrics.h_min
          h.Obs.Metrics.h_max
          (Obs.Metrics.quantile h 0.5)
          (Obs.Metrics.quantile h 0.9)
          (Obs.Metrics.quantile h 0.99)

let kind_name = function
  | Obs.Metrics.Counter -> "counter"
  | Obs.Metrics.Gauge -> "gauge"
  | Obs.Metrics.Histogram -> "histogram"

let metrics_table (snap : Obs.Metrics.snapshot) =
  Texttable.render
    ~header:[ "metric"; "kind"; "value" ]
    (List.map
       (fun ((d : Obs.Metrics.desc), v) ->
         [ d.Obs.Metrics.d_name; kind_name d.Obs.Metrics.d_kind;
           pretty_value v ])
       snap)

let spans_table (roots : Obs.Span.t list) =
  let rows = ref [] in
  let rec go indent (s : Obs.Span.t) =
    rows :=
      [ indent ^ s.Obs.Span.sp_name;
        Printf.sprintf "%.3f" (span_ms s.Obs.Span.sp_dur_ns);
        string_of_int s.Obs.Span.sp_tid;
        Printf.sprintf "%.0f" s.Obs.Span.sp_minor_words;
        Printf.sprintf "%.0f" s.Obs.Span.sp_major_words;
        string_of_int s.Obs.Span.sp_top_heap_words ]
      :: !rows;
    List.iter (go (indent ^ "  ")) s.Obs.Span.sp_children
  in
  List.iter (go "") roots;
  Texttable.render
    ~header:[ "span"; "ms"; "dom"; "minor_w"; "major_w"; "top_heap_w" ]
    (List.rev !rows)

let summary ?metrics roots =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Telemetry spans\n";
  Buffer.add_string buf (spans_table roots);
  (match metrics with
  | Some ([] : Obs.Metrics.snapshot) | None -> ()
  | Some snap ->
      Buffer.add_string buf "\nTelemetry metrics\n";
      Buffer.add_string buf (metrics_table snap));
  Buffer.contents buf

(* colour by category so pipeline phases are visually separable *)
let cat_color = function
  | "pipeline" -> "#6fa8dc"
  | "vm" -> "#93c47d"
  | "cfg" -> "#76a5af"
  | "stream" -> "#f6b26b"
  | "ddg" -> "#e06666"
  | "analysis" -> "#8e7cc3"
  | "workload" -> "#ffd966"
  | _ -> "#cccccc"

let rec frame_of_span (s : Obs.Span.t) =
  let label = s.Obs.Span.sp_name in
  { Flamegraph.fr_label = label;
    fr_title =
      Printf.sprintf "%s: %.3f ms (dom %d)" label
        (span_ms s.Obs.Span.sp_dur_ns)
        s.Obs.Span.sp_tid;
    (* weight in ns: the generic renderer only divides, no overflow risk
       for runs far beyond any realistic session length *)
    fr_weight = max 0 s.Obs.Span.sp_dur_ns;
    fr_color = cat_color s.Obs.Span.sp_cat;
    fr_children = List.map frame_of_span s.Obs.Span.sp_children }

let flamegraph_svg ?width (roots : Obs.Span.t list) =
  let children = List.map frame_of_span roots in
  let total = List.fold_left (fun acc f -> acc + f.Flamegraph.fr_weight) 0 children in
  let root =
    { Flamegraph.fr_label = "telemetry";
      fr_title = Printf.sprintf "telemetry: %.3f ms" (span_ms total);
      fr_weight = max 1 total;
      fr_color = "#cccccc";
      fr_children = children }
  in
  let title =
    Printf.sprintf "poly-prof self-profile flame graph (total %.3f ms)"
      (span_ms total)
  in
  Flamegraph.frames_to_svg ?width ~title root

let write_flamegraph_svg ~path ?width roots =
  let oc = open_out path in
  output_string oc (flamegraph_svg ?width roots);
  close_out oc
