(** Human-readable views of [Obs] telemetry: a {!Texttable} summary of
    the span tree and metric snapshot, and a self-flamegraph of the
    spans on the generic {!Flamegraph.frame} renderer (the profiler
    profiling itself). *)

val summary : ?metrics:Obs.Metrics.snapshot -> Obs.Span.t list -> string
(** Text report: one indented row per span (duration, domain, GC words,
    heap watermark), then one row per metric. *)

val spans_table : Obs.Span.t list -> string
val metrics_table : Obs.Metrics.snapshot -> string

val flamegraph_svg : ?width:int -> Obs.Span.t list -> string
(** SVG flame graph of the span tree, weighted by duration (ns),
    coloured by span category. *)

val write_flamegraph_svg : path:string -> ?width:int -> Obs.Span.t list -> unit
