(** Flame-graph rendering of the dynamic schedule tree (paper Fig. 5b and
    Fig. 7): the root at the bottom, node width proportional to its
    dynamic-operation weight, loop/call nodes labelled, blacklisted
    (libc-like) and non-affine regions grayed out. *)

type annot = {
  a_loops_parallel : (Ddg.Iiv.ctx_id, bool) Hashtbl.t;
      (** loop element -> parallel?, used for colouring *)
  a_blacklisted : int -> bool;  (** fid -> grayed out *)
  a_affine : Ddg.Iiv.ctx_id -> bool;  (** subtree (by first elt) affine *)
}

val no_annot : annot

val annot_of_analysis : Vm.Prog.t -> Sched.Depanalysis.t -> annot
(** Gray out blacklisted functions; colour loops by parallelism. *)

(** {2 Generic frame-tree renderer}

    Anything tree-shaped with an integer weight can be drawn as a flame
    graph; the schedule-tree renderers below and the telemetry span
    flame graph ({!Obs_report}) both go through it. *)

type frame = {
  fr_label : string;  (** text drawn inside the rectangle *)
  fr_title : string;  (** tooltip prefix, e.g. ["gemm: 123 ops"] *)
  fr_weight : int;  (** total weight, children included *)
  fr_color : string;  (** CSS fill *)
  fr_children : frame list;
}

val frames_to_svg : ?width:int -> ?title:string -> frame -> string
(** Self-contained SVG document; root at the bottom, width proportional
    to [fr_weight], tooltip [fr_title] plus the percentage of the
    root. *)

val frames_to_ascii : ?width:int -> frame -> string

val escape : string -> string
(** XML-escape for SVG text/attribute content. *)

val to_svg :
  ?width:int -> ?annot:annot -> ?name:(Ddg.Iiv.ctx_id -> string)
  -> Ddg.Sched_tree.t -> string
(** Self-contained SVG document. *)

val write_svg :
  path:string -> ?width:int -> ?annot:annot -> ?name:(Ddg.Iiv.ctx_id -> string)
  -> Ddg.Sched_tree.t -> unit

val to_ascii :
  ?width:int -> ?name:(Ddg.Iiv.ctx_id -> string) -> Ddg.Sched_tree.t -> string
(** Terminal rendering: one line per node, indented, with a weight bar. *)
