module ST = Ddg.Sched_tree

type annot = {
  a_loops_parallel : (Ddg.Iiv.ctx_id, bool) Hashtbl.t;
  a_blacklisted : int -> bool;
  a_affine : Ddg.Iiv.ctx_id -> bool;
}

let no_annot =
  { a_loops_parallel = Hashtbl.create 1;
    a_blacklisted = (fun _ -> false);
    a_affine = (fun _ -> true) }

let annot_of_analysis prog (t : Sched.Depanalysis.t) =
  let parallel = Hashtbl.create 32 in
  List.iter
    (fun (l : Sched.Depanalysis.loop_info) ->
      match List.rev l.lpath with
      | stack :: _ -> (
          match List.rev stack with
          | elt :: _ -> Hashtbl.replace parallel elt l.parallel
          | [] -> ())
      | [] -> ())
    t.loops;
  let affine_ctx = Hashtbl.create 32 in
  List.iter
    (fun (s : Sched.Depanalysis.stmt_ext) ->
      List.iter
        (fun stack ->
          List.iter
            (fun elt ->
              let cur =
                try Hashtbl.find affine_ctx elt with Not_found -> true
              in
              Hashtbl.replace affine_ctx elt
                (cur && s.si.Ddg.Depprof.affine_exact))
            stack)
        s.spath)
    t.stmts;
  { a_loops_parallel = parallel;
    a_blacklisted =
      (fun fid ->
        fid >= 0
        && fid < Array.length prog.Vm.Prog.funcs
        && prog.Vm.Prog.funcs.(fid).Vm.Prog.blacklisted);
    a_affine =
      (fun elt -> try Hashtbl.find affine_ctx elt with Not_found -> true) }

let default_name c = Format.asprintf "%a" Ddg.Iiv.pp_ctx_id c

let fid_of_elt = function
  | Ddg.Iiv.Cblock (f, _) | Ddg.Iiv.Cloop (f, _) -> Some f
  | Ddg.Iiv.Ccomp _ -> None

let node_kind (n : ST.node) =
  match n.ST.elt with
  | Some (Ddg.Iiv.Cloop _) -> "loop"
  | Some (Ddg.Iiv.Ccomp _) -> "rec-loop"
  | Some (Ddg.Iiv.Cblock _) -> "block"
  | None -> "root"

let color annot (n : ST.node) =
  match n.ST.elt with
  | None -> "#cccccc"
  | Some elt -> (
      let gray =
        (match fid_of_elt elt with
        | Some f -> annot.a_blacklisted f
        | None -> false)
        || not (annot.a_affine elt)
      in
      if gray then "#bbbbbb"
      else
        match elt with
        | Ddg.Iiv.Cloop _ | Ddg.Iiv.Ccomp _ -> (
            match Hashtbl.find_opt annot.a_loops_parallel elt with
            | Some true -> "#7bc96f"  (* parallel loop: green *)
            | Some false -> "#e8a33d"  (* sequential loop: orange *)
            | None -> "#d9944f")
        | Ddg.Iiv.Cblock _ -> "#d46a5f")

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '<' -> "&lt;"
         | '>' -> "&gt;"
         | '&' -> "&amp;"
         | '"' -> "&quot;"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* ------------------------------------------------------------------ *)
(* Generic frame-tree renderer: anything tree-shaped with a weight can
   be drawn as a flame graph (the schedule tree below, the telemetry
   span tree in Obs_report). *)
(* ------------------------------------------------------------------ *)

type frame = {
  fr_label : string;  (** text drawn inside the rectangle *)
  fr_title : string;  (** tooltip prefix, e.g. ["gemm: 123 ops"] *)
  fr_weight : int;  (** total weight, children included *)
  fr_color : string;  (** CSS fill *)
  fr_children : frame list;
}

let frames_to_svg ?(width = 1200) ?(title = "flame graph") root =
  let buf = Buffer.create 16384 in
  let total = max 1 root.fr_weight in
  let row_h = 18 in
  let rec depth_of f =
    List.fold_left (fun acc c -> max acc (1 + depth_of c)) 0 f.fr_children
  in
  let height = ((depth_of root + 2) * row_h) + 30 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"monospace\" font-size=\"11\">\n"
       width height);
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"4\" y=\"14\">%s</text>\n" (escape title));
  (* root at the bottom: y decreases with depth *)
  let rec render f x w depth =
    if w >= 0.5 then begin
      let y = height - ((depth + 1) * row_h) in
      Buffer.add_string buf
        (Printf.sprintf
           "<g><title>%s (%.1f%%)</title><rect x=\"%.1f\" y=\"%d\" \
            width=\"%.1f\" height=\"%d\" fill=\"%s\" stroke=\"white\"/>"
           (escape f.fr_title)
           (100.0 *. float_of_int f.fr_weight /. float_of_int total)
           x y w (row_h - 1) f.fr_color);
      if w > 40.0 then
        Buffer.add_string buf
          (Printf.sprintf "<text x=\"%.1f\" y=\"%d\">%s</text>" (x +. 3.0)
             (y + 13)
             (escape
                (if String.length f.fr_label > int_of_float (w /. 7.0) then
                   String.sub f.fr_label 0 (max 1 (int_of_float (w /. 7.0)))
                 else f.fr_label)));
      Buffer.add_string buf "</g>\n";
      (* children: self weight first, then children proportionally *)
      let tw = max 1 f.fr_weight in
      let cx = ref x in
      List.iter
        (fun c ->
          let cw = w *. float_of_int c.fr_weight /. float_of_int tw in
          render c !cx cw (depth + 1);
          cx := !cx +. cw)
        f.fr_children
    end
  in
  render root 0.0 (float_of_int width) 0;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let frames_to_ascii ?(width = 60) root =
  let buf = Buffer.create 4096 in
  let total = max 1 root.fr_weight in
  let rec go indent f =
    let frac = float_of_int f.fr_weight /. float_of_int total in
    let bar = int_of_float (frac *. float_of_int width) in
    Buffer.add_string buf
      (Printf.sprintf "%-40s %7d %5.1f%% %s\n"
         (indent ^ f.fr_label) f.fr_weight (100.0 *. frac)
         (String.make (max 0 bar) '#'));
    List.iter (go (indent ^ "  ")) f.fr_children
  in
  go "" root;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Schedule-tree flame graph on top of the generic renderer             *)
(* ------------------------------------------------------------------ *)

let rec frame_of_node annot name (n : ST.node) =
  let label =
    match n.ST.elt with
    | None -> "all"
    | Some elt -> Printf.sprintf "%s %s" (node_kind n) (name elt)
  in
  { fr_label = label;
    fr_title = Printf.sprintf "%s: %d ops" label (ST.total_weight n);
    fr_weight = ST.total_weight n;
    fr_color = color annot n;
    fr_children =
      List.map (frame_of_node annot name) (ST.children_in_order n) }

let to_svg ?width ?(annot = no_annot) ?(name = default_name) tree =
  let root = frame_of_node annot name (ST.root tree) in
  let title =
    Printf.sprintf
      "poly-prof dynamic schedule tree flame graph (total %d ops)"
      (max 1 root.fr_weight)
  in
  frames_to_svg ?width ~title root

let write_svg ~path ?width ?annot ?name tree =
  let oc = open_out path in
  output_string oc (to_svg ?width ?annot ?name tree);
  close_out oc

let to_ascii ?width ?(name = default_name) tree =
  let root =
    let rec strip (n : ST.node) =
      { fr_label =
          (match n.ST.elt with None -> "all" | Some elt -> name elt);
        fr_title = "";
        fr_weight = ST.total_weight n;
        fr_color = "";
        fr_children = List.map strip (ST.children_in_order n) }
    in
    strip (ST.root tree)
  in
  frames_to_ascii ?width root
