type kind = Profile | Transform | Verify | Autotune | Parcheck | Crash

let kind_to_string = function
  | Profile -> "profile"
  | Transform -> "transform"
  | Verify -> "verify"
  | Autotune -> "autotune"
  | Parcheck -> "parcheck"
  | Crash -> "crash"

let kind_of_string = function
  | "profile" -> Ok Profile
  | "transform" -> Ok Transform
  | "verify" -> Ok Verify
  | "autotune" -> Ok Autotune
  | "parcheck" -> Ok Parcheck
  | "crash" -> Ok Crash
  | s ->
      Error
        (Printf.sprintf
           "unknown job kind %S (expected profile, transform, verify, \
            autotune, parcheck or crash)"
           s)

type spec = {
  sp_kind : kind;
  sp_bench : string;
  sp_params : (string * string) list;
  sp_deadline_s : float option;
}

let spec ~kind ~bench ?(params = []) ?deadline_s () =
  { sp_kind = kind;
    sp_bench = bench;
    sp_params = List.sort compare params;
    sp_deadline_s = deadline_s }

let param s name = List.assoc_opt name s.sp_params

let param_int s name ~default =
  match param s name with
  | None -> default
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)

let spec_to_json s =
  let open Obs.Json_emit in
  Obj
    ([ ("kind", Str (kind_to_string s.sp_kind));
       ("bench", Str s.sp_bench);
       ("params", Obj (List.map (fun (k, v) -> (k, Str v)) s.sp_params)) ]
    @
    match s.sp_deadline_s with
    | None -> []
    | Some d -> [ ("deadline_s", Float d) ])

let spec_of_json json =
  let open Obs.Json_emit in
  let str field =
    match member field json with
    | Some (Str s) -> Ok s
    | Some _ -> Error (Printf.sprintf "field %S must be a string" field)
    | None -> Error (Printf.sprintf "missing field %S" field)
  in
  let ( let* ) = Result.bind in
  let* kind_s = str "kind" in
  let* kind = kind_of_string kind_s in
  let* bench = str "bench" in
  let* params =
    match member "params" json with
    | None -> Ok []
    | Some (Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match v with
            | Str s -> Ok ((k, s) :: acc)
            | Int i -> Ok ((k, string_of_int i) :: acc)
            | _ -> Error (Printf.sprintf "param %S must be a string or int" k))
          (Ok []) fields
    | Some _ -> Error "field \"params\" must be an object"
  in
  let* deadline_s =
    match member "deadline_s" json with
    | None | Some Null -> Ok None
    | Some (Float f) -> Ok (Some f)
    | Some (Int i) -> Ok (Some (float_of_int i))
    | Some _ -> Error "field \"deadline_s\" must be a number"
  in
  Ok (spec ~kind ~bench ~params ?deadline_s ())

type state = Queued | Running | Done | Failed of string

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"
