(** The daemon's core: a bounded job queue in front of a pool of OCaml
    Domains, fronted by the content-addressed {!Cache}.

    Guarantees:

    + {b Single execution}: concurrent submissions of the same content
      address coalesce onto one queued/running job ([Joined]); once a
      result is cached, later submissions are O(1) [Hit]s served the
      byte-exact cached report.
    + {b Crash isolation}: an exception escaping the executor fails that
      job ([Failed]) and nothing else — the worker domain survives and
      keeps draining the queue.
    + {b Deadlines}: a job whose deadline passes while queued fails
      without executing; a result landing after the deadline is
      discarded and never cached.
    + {b Backpressure}: submissions beyond [queue_capacity] are rejected
      immediately ([Overloaded]) instead of queueing unboundedly.
    + {b Traceability}: every job carries a content-derived trace id;
      when it reaches a terminal state it owns a span tree covering the
      phases it passed through (queue wait, execution with the
      executor's GC deltas, cache store — or the cache lookup, for
      hits), exported as a Chrome-trace artifact and resolvable by
      {!find_trace}.  State transitions are logged through {!Obs.Log}
      with the trace id as a correlation field.

    The engine is executor-agnostic (the daemon injects {!Jobs.execute};
    tests inject fakes), and all state is guarded by one mutex. *)

type config = {
  workers : int;  (** worker domains (at least 1) *)
  queue_capacity : int;  (** queued-job bound; beyond it: [Overloaded] *)
  cache_bytes : int;  (** LRU byte budget of the result cache *)
  persist_dir : string option;  (** warm-restart directory of the cache *)
  default_deadline_s : float option;  (** used when a spec carries none *)
}

val default_config : config
(** 2 workers, 64-deep queue, 64 MiB cache, no persistence, no
    deadline. *)

type exec_result = {
  x_report : string;
  x_span : Obs.Span.t option;
      (** the executor's own measurement of the run (GC deltas in the
          span fields); the engine rebases it into the job's span tree
          as the [execute] phase *)
}

type job = private {
  j_id : int;
  j_key : string;
  j_trace : string;  (** 16-hex trace id, unique per job *)
  j_spec : Proto.spec;
  j_deadline : float option;  (** absolute, on the monotonic clock *)
  mutable j_state : Proto.state;
  mutable j_from_cache : bool;
  mutable j_report : string option;
  mutable j_artifact : string option;
  mutable j_trace_json : string option;
      (** Chrome-trace span tree, set when the job reaches a terminal
          state *)
  mutable j_wall_s : float;  (** submit to terminal state *)
}

type submit_outcome =
  | Hit of job  (** served from the cache; the job is born [Done] *)
  | Joined of job  (** attached to an identical queued/running job *)
  | Enqueued of job
  | Overloaded  (** queue full — try again later *)
  | Closed  (** the engine is shutting down *)

type stats = {
  s_queue_depth : int;
  s_in_flight : int;
  s_submitted : int;
  s_executions : int;  (** jobs a worker actually ran *)
  s_completed : int;
  s_failed : int;
  s_joined : int;
  s_cache_hits : int;
  s_overloaded : int;
  s_uptime_s : float;
  s_cache : Cache.stats;
}

type t

val create : exec:(Proto.spec -> exec_result) -> config -> t
(** Spawns the worker domains.  [exec] runs on a worker domain; any
    exception it raises is the job's failure message. *)

val submit : t -> key:string -> Proto.spec -> submit_outcome

val find_job : t -> int -> job option

val find_trace : t -> string -> job option
(** Resolve a trace id (as returned in job responses) to its job, whose
    [j_trace_json] holds the span tree once terminal.  [None] for
    unknown or pruned ids. *)

val await : t -> int -> ?timeout_s:float -> unit -> job option
(** Block until the job reaches a terminal state ([Done]/[Failed]) or
    the timeout elapses; [None] for an unknown id. *)

val recent_jobs : t -> int -> job list
(** The most recently submitted jobs, newest first. *)

val stats : t -> stats

val drain_latencies : t -> (string * int * string) list
(** Per-job [(kind, wall-ns, trace-id)] samples recorded since the last
    call — the scrape endpoint feeds these into latency histograms and
    keeps the trace ids as exemplars. *)

val shutdown : t -> unit
(** Graceful: refuse new submissions, let the workers drain the queue,
    join every worker domain.  Idempotent. *)
