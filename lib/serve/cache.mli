(** Content-addressed result cache: folded-DDG reports, schedule
    reports and autotune results keyed by the canonical program hash
    ({!Polyprof.Prog_hash.job_key}).

    In-memory LRU under a byte budget; optionally persisted one file per
    entry (CRC-sealed) so a restarted daemon starts warm.  Corrupted or
    truncated persisted entries are rejected at load time and counted,
    never decoded.

    Not internally synchronized: the engine serializes all access under
    its own mutex. *)

type entry = {
  e_report : string;  (** the job's report JSON, byte-exact *)
  e_artifact : string option;  (** Chrome-trace artifact, when produced *)
}

type stats = {
  c_entries : int;
  c_bytes : int;  (** accounted payload bytes currently held *)
  c_max_bytes : int;
  c_hits : int;
  c_misses : int;
  c_evictions : int;
  c_loaded : int;  (** persisted entries accepted at startup *)
  c_rejected : int;  (** persisted entries rejected (corrupt/foreign) *)
}

type t

val create : ?persist_dir:string -> max_bytes:int -> unit -> t
(** With [persist_dir], load every valid [*.jc] entry found there (LRU
    order: file modification time) and persist future additions. *)

val find : t -> string -> entry option
(** Touches the entry (most-recently-used) and counts a hit or miss. *)

val add : t -> string -> entry -> unit
(** Insert (or refresh) an entry, evicting least-recently-used entries
    until the byte budget holds.  An entry larger than the whole budget
    is not admitted.  Persists to disk when enabled; eviction removes
    the persisted file too.  When the key is already present with a
    report equal modulo [generated_utc], the incumbent entry is kept
    (touched, not rewritten) so re-executions leave the cache and its
    persisted files byte-stable. *)

val set_artifact : t -> string -> string -> unit
(** Attach (or replace) the Chrome-trace artifact of an existing entry
    in place, adjusting the byte accounting and re-persisting.  No-op
    for absent keys or if the grown entry would exceed the whole
    budget. *)

val stats : t -> stats
