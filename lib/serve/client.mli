(** Client side of the daemon protocol, shared by the [polyprof
    submit]/[status]/[fetch]/[shutdown] subcommands and the tests. *)

type endpoint =
  | Unix_sock of string  (** socket path *)
  | Tcp of string * int  (** host, port *)

val request :
  endpoint ->
  meth:string ->
  path:string ->
  ?body:string ->
  unit ->
  (Http.response, string) result
(** One connection, one request, read the full response.  [Error] wraps
    connection failures and protocol violations. *)

val submit :
  endpoint -> Proto.spec -> (Obs.Json_emit.t, string) result
(** [POST /jobs].  Returns the response document on HTTP 2xx ([hit],
    [joined] or [enqueued]); [Error] with the server's message
    otherwise (overloaded, shutting down, unknown benchmark...). *)

val wait :
  endpoint ->
  job_id:int ->
  ?timeout_s:float ->
  ?poll_s:float ->
  unit ->
  (Obs.Json_emit.t, string) result
(** Poll [GET /jobs/{id}] until the job is [done] or [failed]; returns
    the final status document ([Error] on timeout, a failed job, or a
    vanished daemon). *)

val job_id_of : Obs.Json_emit.t -> (int, string) result
(** Extract [job.id] from a submit/status response. *)
