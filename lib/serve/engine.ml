type config = {
  workers : int;
  queue_capacity : int;
  cache_bytes : int;
  persist_dir : string option;
  default_deadline_s : float option;
}

let default_config =
  { workers = 2;
    queue_capacity = 64;
    cache_bytes = 64 * 1024 * 1024;
    persist_dir = None;
    default_deadline_s = None }

type exec_result = { x_report : string; x_artifact : string option }

type job = {
  j_id : int;
  j_key : string;
  j_spec : Proto.spec;
  j_deadline : float option;
  mutable j_state : Proto.state;
  mutable j_from_cache : bool;
  mutable j_report : string option;
  mutable j_artifact : string option;
  mutable j_wall_s : float;
}

type submit_outcome =
  | Hit of job
  | Joined of job
  | Enqueued of job
  | Overloaded
  | Closed

type stats = {
  s_queue_depth : int;
  s_in_flight : int;
  s_submitted : int;
  s_executions : int;
  s_completed : int;
  s_failed : int;
  s_joined : int;
  s_cache_hits : int;
  s_overloaded : int;
  s_uptime_s : float;
  s_cache : Cache.stats;
}

(* completed jobs kept addressable for status/fetch; older ones are
   pruned so a long-running daemon's job table stays bounded *)
let history_capacity = 4096

type t = {
  config : config;
  exec : Proto.spec -> exec_result;
  mutex : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  active : (string, job) Hashtbl.t;  (* key -> queued/running job *)
  jobs : (int, job) Hashtbl.t;  (* id -> job, pruned FIFO *)
  finished : int Queue.t;  (* prune order *)
  cache : Cache.t;
  started : float;
  mutable submit_times : (int * float) list;  (* id -> submit instant *)
  mutable latencies : (string * int) list;  (* drained by the scraper *)
  mutable next_id : int;
  mutable closing : bool;
  mutable in_flight : int;
  mutable submitted : int;
  mutable executions : int;
  mutable completed : int;
  mutable failed : int;
  mutable joined : int;
  mutable cache_hits : int;
  mutable overloaded : int;
  mutable workers : unit Domain.t list;
}

let now () = Obs.Clock.monotonic ()

(* -- all helpers below run with t.mutex held ----------------------- *)

let submit_time t id =
  match List.assoc_opt id t.submit_times with Some s -> s | None -> t.started

let forget_submit_time t id =
  t.submit_times <- List.remove_assoc id t.submit_times

let prune_history t =
  while Hashtbl.length t.jobs > history_capacity
        && not (Queue.is_empty t.finished) do
    Hashtbl.remove t.jobs (Queue.pop t.finished)
  done

let finish t job state =
  job.j_state <- state;
  job.j_wall_s <- now () -. submit_time t job.j_id;
  forget_submit_time t job.j_id;
  Hashtbl.remove t.active job.j_key;
  Queue.push job.j_id t.finished;
  (match state with
  | Proto.Done -> t.completed <- t.completed + 1
  | Proto.Failed _ -> t.failed <- t.failed + 1
  | Proto.Queued | Proto.Running -> assert false);
  prune_history t;
  Condition.broadcast t.cond

let new_job t ~key spec =
  let id = t.next_id in
  t.next_id <- id + 1;
  let deadline_s =
    match spec.Proto.sp_deadline_s with
    | Some d -> Some d
    | None -> t.config.default_deadline_s
  in
  let job =
    { j_id = id;
      j_key = key;
      j_spec = spec;
      j_deadline = Option.map (fun d -> now () +. d) deadline_s;
      j_state = Proto.Queued;
      j_from_cache = false;
      j_report = None;
      j_artifact = None;
      j_wall_s = 0.0 }
  in
  t.submit_times <- (id, now ()) :: t.submit_times;
  Hashtbl.replace t.jobs id job;
  t.submitted <- t.submitted + 1;
  job

(* ------------------------------------------------------------------ *)
(* Worker domains                                                      *)
(* ------------------------------------------------------------------ *)

let run_one t job =
  (* mutex NOT held: the expensive part *)
  let t0 = now () in
  let outcome =
    try Ok (t.exec job.j_spec)
    with e -> Error (Printexc.to_string e)
  in
  let wall_ns = int_of_float ((now () -. t0) *. 1e9) in
  (* make this job's subsystem counters visible to /metrics scrapes from
     the daemon's domain, and keep the retired-sink pool O(1) *)
  Obs.Metrics.flush_domain ();
  Obs.Metrics.compact ();
  Obs.Span.reset ();
  Mutex.lock t.mutex;
  t.in_flight <- t.in_flight - 1;
  t.latencies <-
    (Proto.kind_to_string job.j_spec.Proto.sp_kind, wall_ns) :: t.latencies;
  (match outcome with
  | Error msg -> finish t job (Proto.Failed msg)
  | Ok r -> (
      match job.j_deadline with
      | Some d when now () > d ->
          finish t job
            (Proto.Failed "deadline exceeded during execution (result \
                           discarded)")
      | _ ->
          job.j_report <- Some r.x_report;
          job.j_artifact <- r.x_artifact;
          Cache.add t.cache job.j_key
            { Cache.e_report = r.x_report; e_artifact = r.x_artifact };
          finish t job Proto.Done));
  Mutex.unlock t.mutex

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.cond t.mutex
  done;
  if Queue.is_empty t.queue then begin
    (* closing and drained *)
    Mutex.unlock t.mutex
  end
  else begin
    let job = Queue.pop t.queue in
    match job.j_deadline with
    | Some d when now () > d ->
        finish t job (Proto.Failed "deadline exceeded before execution");
        Mutex.unlock t.mutex;
        worker_loop t
    | _ ->
        job.j_state <- Proto.Running;
        t.in_flight <- t.in_flight + 1;
        t.executions <- t.executions + 1;
        Mutex.unlock t.mutex;
        run_one t job;
        worker_loop t
  end

(* ------------------------------------------------------------------ *)

let create ~exec (config : config) =
  let config = { config with workers = max 1 config.workers } in
  let t =
    { config;
      exec;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      active = Hashtbl.create 64;
      jobs = Hashtbl.create 256;
      finished = Queue.create ();
      cache =
        Cache.create ?persist_dir:config.persist_dir
          ~max_bytes:config.cache_bytes ();
      started = now ();
      submit_times = [];
      latencies = [];
      next_id = 1;
      closing = false;
      in_flight = 0;
      submitted = 0;
      executions = 0;
      completed = 0;
      failed = 0;
      joined = 0;
      cache_hits = 0;
      overloaded = 0;
      workers = [] }
  in
  t.workers <-
    List.init config.workers (fun _ ->
        Domain.spawn (fun () ->
            worker_loop t;
            Obs.Metrics.flush_domain ()));
  t

let submit t ~key spec =
  Mutex.protect t.mutex @@ fun () ->
  if t.closing then Closed
  else
    match Cache.find t.cache key with
    | Some entry ->
        let job = new_job t ~key spec in
        job.j_from_cache <- true;
        job.j_report <- Some entry.Cache.e_report;
        job.j_artifact <- entry.Cache.e_artifact;
        t.cache_hits <- t.cache_hits + 1;
        finish t job Proto.Done;
        (* finish counted it as completed; a hit is not a completion of
           new work *)
        t.completed <- t.completed - 1;
        Hit job
    | None -> (
        match Hashtbl.find_opt t.active key with
        | Some job ->
            t.joined <- t.joined + 1;
            t.submitted <- t.submitted + 1;
            Joined job
        | None ->
            if Queue.length t.queue >= t.config.queue_capacity then begin
              t.overloaded <- t.overloaded + 1;
              Overloaded
            end
            else begin
              let job = new_job t ~key spec in
              Hashtbl.replace t.active key job;
              Queue.push job t.queue;
              Condition.signal t.cond;
              Enqueued job
            end)

let find_job t id =
  Mutex.protect t.mutex (fun () -> Hashtbl.find_opt t.jobs id)

let terminal = function
  | Proto.Done | Proto.Failed _ -> true
  | Proto.Queued | Proto.Running -> false

let await t id ?(timeout_s = 600.0) () =
  let deadline = now () +. timeout_s in
  let rec loop () =
    match find_job t id with
    | None -> None
    | Some job ->
        if terminal job.j_state || now () > deadline then Some job
        else begin
          (* poll: stdlib Condition has no timed wait *)
          Unix.sleepf 0.005;
          loop ()
        end
  in
  loop ()

let recent_jobs t n =
  Mutex.protect t.mutex @@ fun () ->
  let all = Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs [] in
  let sorted = List.sort (fun a b -> compare b.j_id a.j_id) all in
  List.filteri (fun i _ -> i < n) sorted

let stats t =
  Mutex.protect t.mutex @@ fun () ->
  { s_queue_depth = Queue.length t.queue;
    s_in_flight = t.in_flight;
    s_submitted = t.submitted;
    s_executions = t.executions;
    s_completed = t.completed;
    s_failed = t.failed;
    s_joined = t.joined;
    s_cache_hits = t.cache_hits;
    s_overloaded = t.overloaded;
    s_uptime_s = now () -. t.started;
    s_cache = Cache.stats t.cache }

let drain_latencies t =
  Mutex.protect t.mutex @@ fun () ->
  let samples = t.latencies in
  t.latencies <- [];
  samples

let shutdown t =
  let workers =
    Mutex.protect t.mutex @@ fun () ->
    if t.closing then []
    else begin
      t.closing <- true;
      Condition.broadcast t.cond;
      let w = t.workers in
      t.workers <- [];
      w
    end
  in
  List.iter Domain.join workers
