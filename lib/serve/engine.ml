type config = {
  workers : int;
  queue_capacity : int;
  cache_bytes : int;
  persist_dir : string option;
  default_deadline_s : float option;
}

let default_config =
  { workers = 2;
    queue_capacity = 64;
    cache_bytes = 64 * 1024 * 1024;
    persist_dir = None;
    default_deadline_s = None }

type exec_result = { x_report : string; x_span : Obs.Span.t option }

type job = {
  j_id : int;
  j_key : string;
  j_trace : string;
  j_spec : Proto.spec;
  j_deadline : float option;
  mutable j_state : Proto.state;
  mutable j_from_cache : bool;
  mutable j_report : string option;
  mutable j_artifact : string option;
  mutable j_trace_json : string option;
  mutable j_wall_s : float;
}

type submit_outcome =
  | Hit of job
  | Joined of job
  | Enqueued of job
  | Overloaded
  | Closed

type stats = {
  s_queue_depth : int;
  s_in_flight : int;
  s_submitted : int;
  s_executions : int;
  s_completed : int;
  s_failed : int;
  s_joined : int;
  s_cache_hits : int;
  s_overloaded : int;
  s_uptime_s : float;
  s_cache : Cache.stats;
}

(* completed jobs kept addressable for status/fetch; older ones are
   pruned so a long-running daemon's job table stays bounded *)
let history_capacity = 4096

type t = {
  config : config;
  exec : Proto.spec -> exec_result;
  mutex : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  active : (string, job) Hashtbl.t;  (* key -> queued/running job *)
  jobs : (int, job) Hashtbl.t;  (* id -> job, pruned FIFO *)
  traces : (string, int) Hashtbl.t;  (* trace id -> job id, pruned with jobs *)
  finished : int Queue.t;  (* prune order *)
  cache : Cache.t;
  started : float;
  mutable submit_times : (int * float) list;  (* id -> submit instant *)
  mutable latencies : (string * int * string) list;
      (* (kind, wall-ns, trace id), drained by the scraper *)
  mutable next_id : int;
  mutable closing : bool;
  mutable in_flight : int;
  mutable submitted : int;
  mutable executions : int;
  mutable completed : int;
  mutable failed : int;
  mutable joined : int;
  mutable cache_hits : int;
  mutable overloaded : int;
  mutable workers : unit Domain.t list;
}

let now () = Obs.Clock.monotonic ()

(* ------------------------------------------------------------------ *)
(* Trace ids and span trees.  The id is content-derived (job key + id)
   so it is unique per job yet stable across identical reruns of the
   daemon; the span tree covers every phase a job passes through —
   queue wait, execution (with the executor's GC deltas), cache store —
   and is exported as a per-job Chrome trace.                           *)
(* ------------------------------------------------------------------ *)

let trace_id ~key ~id =
  String.sub (Polyprof.Prog_hash.sha256_hex (key ^ ":" ^ string_of_int id)) 0 16

let mk_span ?(children = []) ?(args = []) ~name ~start_ns ~dur_ns () =
  { Obs.Span.sp_name = name;
    sp_cat = "serve";
    sp_tid = (Domain.self () :> int);
    sp_start_ns = start_ns;
    sp_dur_ns = max 0 dur_ns;
    sp_minor_words = 0.0;
    sp_major_words = 0.0;
    sp_top_heap_words = 0;
    sp_children = children;
    sp_args = args }

let job_root job ~dur_ns children =
  let spec = job.j_spec in
  mk_span
    ~name:
      (Printf.sprintf "job.%s.%s"
         (Proto.kind_to_string spec.Proto.sp_kind)
         spec.Proto.sp_bench)
    ~start_ns:0 ~dur_ns ~children
    ~args:
      ([ ("trace_id", job.j_trace);
         ("job_id", string_of_int job.j_id);
         ("bench", spec.Proto.sp_bench) ]
      @ List.map (fun (k, v) -> ("param." ^ k, v)) spec.Proto.sp_params)
    ()

let trace_json job ~dur_ns children =
  Obs.Chrome.to_string ~process_name:"polyprof-serve"
    [ job_root job ~dur_ns children ]

let log_fields job =
  [ ("trace_id", job.j_trace);
    ("job_id", string_of_int job.j_id);
    ("kind", Proto.kind_to_string job.j_spec.Proto.sp_kind);
    ("bench", job.j_spec.Proto.sp_bench) ]

(* -- all helpers below run with t.mutex held ----------------------- *)

let submit_time t id =
  match List.assoc_opt id t.submit_times with Some s -> s | None -> t.started

let forget_submit_time t id =
  t.submit_times <- List.remove_assoc id t.submit_times

let prune_history t =
  while Hashtbl.length t.jobs > history_capacity
        && not (Queue.is_empty t.finished) do
    let id = Queue.pop t.finished in
    (match Hashtbl.find_opt t.jobs id with
    | Some job -> Hashtbl.remove t.traces job.j_trace
    | None -> ());
    Hashtbl.remove t.jobs id
  done

let finish t job state =
  job.j_state <- state;
  job.j_wall_s <- now () -. submit_time t job.j_id;
  forget_submit_time t job.j_id;
  Hashtbl.remove t.active job.j_key;
  Queue.push job.j_id t.finished;
  (match state with
  | Proto.Done -> t.completed <- t.completed + 1
  | Proto.Failed _ -> t.failed <- t.failed + 1
  | Proto.Queued | Proto.Running -> assert false);
  prune_history t;
  Condition.broadcast t.cond

let new_job t ~key spec =
  let id = t.next_id in
  t.next_id <- id + 1;
  let deadline_s =
    match spec.Proto.sp_deadline_s with
    | Some d -> Some d
    | None -> t.config.default_deadline_s
  in
  let job =
    { j_id = id;
      j_key = key;
      j_trace = trace_id ~key ~id;
      j_spec = spec;
      j_deadline = Option.map (fun d -> now () +. d) deadline_s;
      j_state = Proto.Queued;
      j_from_cache = false;
      j_report = None;
      j_artifact = None;
      j_trace_json = None;
      j_wall_s = 0.0 }
  in
  t.submit_times <- (id, now ()) :: t.submit_times;
  Hashtbl.replace t.jobs id job;
  Hashtbl.replace t.traces job.j_trace id;
  t.submitted <- t.submitted + 1;
  job

(* ------------------------------------------------------------------ *)
(* Worker domains                                                      *)
(* ------------------------------------------------------------------ *)

let run_one t job =
  Obs.Log.info "serve.job.start" ~fields:(log_fields job) "executing";
  (* mutex NOT held: the expensive part *)
  let t0 = now () in
  let outcome =
    try Ok (t.exec job.j_spec)
    with e -> Error (Printexc.to_string e)
  in
  let t1 = now () in
  let wall_ns = int_of_float ((t1 -. t0) *. 1e9) in
  (* make this job's subsystem counters visible to /metrics scrapes from
     the daemon's domain, and keep the retired-sink pool O(1) *)
  Obs.Metrics.flush_domain ();
  Obs.Metrics.compact ();
  Obs.Span.reset ();
  Mutex.lock t.mutex;
  t.in_flight <- t.in_flight - 1;
  t.latencies <-
    (Proto.kind_to_string job.j_spec.Proto.sp_kind, wall_ns, job.j_trace)
    :: t.latencies;
  let queue_ns =
    max 0 (int_of_float ((t0 -. submit_time t job.j_id) *. 1e9))
  in
  let queue_span = mk_span ~name:"queue.wait" ~start_ns:0 ~dur_ns:queue_ns () in
  let exec_span x_span =
    match x_span with
    | Some (sp : Obs.Span.t) ->
        (* the executor measured itself (GC deltas and all); rebase it
           onto the job timeline after the queue wait *)
        { sp with
          Obs.Span.sp_name = "execute";
          sp_start_ns = queue_ns;
          sp_dur_ns = wall_ns }
    | None -> mk_span ~name:"execute" ~start_ns:queue_ns ~dur_ns:wall_ns ()
  in
  (match outcome with
  | Error msg ->
      job.j_trace_json <-
        Some
          (trace_json job ~dur_ns:(queue_ns + wall_ns)
             [ queue_span; exec_span None ]);
      finish t job (Proto.Failed msg);
      Obs.Log.error "serve.job.failed"
        ~fields:(log_fields job @ [ ("error", msg) ])
        "job failed"
  | Ok r -> (
      match job.j_deadline with
      | Some d when now () > d ->
          job.j_trace_json <-
            Some
              (trace_json job ~dur_ns:(queue_ns + wall_ns)
                 [ queue_span; exec_span r.x_span ]);
          finish t job
            (Proto.Failed "deadline exceeded during execution (result \
                           discarded)");
          Obs.Log.error "serve.job.failed" ~fields:(log_fields job)
            "deadline exceeded during execution"
      | _ ->
          job.j_report <- Some r.x_report;
          let s0 = now () in
          Cache.add t.cache job.j_key
            { Cache.e_report = r.x_report; e_artifact = None };
          let store_ns = max 0 (int_of_float ((now () -. s0) *. 1e9)) in
          let store_span =
            mk_span ~name:"cache.store" ~start_ns:(queue_ns + wall_ns)
              ~dur_ns:store_ns ()
          in
          let artifact =
            trace_json job
              ~dur_ns:(queue_ns + wall_ns + store_ns)
              [ queue_span; exec_span r.x_span; store_span ]
          in
          job.j_artifact <- Some artifact;
          job.j_trace_json <- Some artifact;
          Cache.set_artifact t.cache job.j_key artifact;
          finish t job Proto.Done;
          Obs.Log.info "serve.job.done"
            ~fields:
              (log_fields job
              @ [ ("wall_ns", string_of_int wall_ns);
                  ("queue_ns", string_of_int queue_ns) ])
            "job done"));
  Mutex.unlock t.mutex

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.cond t.mutex
  done;
  if Queue.is_empty t.queue then begin
    (* closing and drained *)
    Mutex.unlock t.mutex
  end
  else begin
    let job = Queue.pop t.queue in
    match job.j_deadline with
    | Some d when now () > d ->
        let queue_ns =
          max 0 (int_of_float ((now () -. submit_time t job.j_id) *. 1e9))
        in
        job.j_trace_json <-
          Some
            (trace_json job ~dur_ns:queue_ns
               [ mk_span ~name:"queue.wait" ~start_ns:0 ~dur_ns:queue_ns () ]);
        finish t job (Proto.Failed "deadline exceeded before execution");
        Obs.Log.error "serve.job.failed" ~fields:(log_fields job)
          "deadline exceeded before execution";
        Mutex.unlock t.mutex;
        worker_loop t
    | _ ->
        job.j_state <- Proto.Running;
        t.in_flight <- t.in_flight + 1;
        t.executions <- t.executions + 1;
        Mutex.unlock t.mutex;
        run_one t job;
        worker_loop t
  end

(* ------------------------------------------------------------------ *)

let create ~exec (config : config) =
  let config = { config with workers = max 1 config.workers } in
  let t =
    { config;
      exec;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      active = Hashtbl.create 64;
      jobs = Hashtbl.create 256;
      traces = Hashtbl.create 256;
      finished = Queue.create ();
      cache =
        Cache.create ?persist_dir:config.persist_dir
          ~max_bytes:config.cache_bytes ();
      started = now ();
      submit_times = [];
      latencies = [];
      next_id = 1;
      closing = false;
      in_flight = 0;
      submitted = 0;
      executions = 0;
      completed = 0;
      failed = 0;
      joined = 0;
      cache_hits = 0;
      overloaded = 0;
      workers = [] }
  in
  t.workers <-
    List.init config.workers (fun _ ->
        Domain.spawn (fun () ->
            worker_loop t;
            Obs.Metrics.flush_domain ()));
  t

let submit t ~key spec =
  Mutex.protect t.mutex @@ fun () ->
  if t.closing then Closed
  else begin
    let l0 = now () in
    match Cache.find t.cache key with
    | Some entry ->
        let lookup_ns = max 0 (int_of_float ((now () -. l0) *. 1e9)) in
        let job = new_job t ~key spec in
        job.j_from_cache <- true;
        job.j_report <- Some entry.Cache.e_report;
        job.j_artifact <- entry.Cache.e_artifact;
        job.j_trace_json <-
          Some
            (trace_json job ~dur_ns:lookup_ns
               [ mk_span ~name:"cache.hit" ~start_ns:0 ~dur_ns:lookup_ns () ]);
        t.cache_hits <- t.cache_hits + 1;
        finish t job Proto.Done;
        (* finish counted it as completed; a hit is not a completion of
           new work *)
        t.completed <- t.completed - 1;
        Obs.Log.info "serve.job.hit" ~fields:(log_fields job)
          "served from cache";
        Hit job
    | None -> (
        match Hashtbl.find_opt t.active key with
        | Some job ->
            t.joined <- t.joined + 1;
            t.submitted <- t.submitted + 1;
            Obs.Log.info "serve.job.joined" ~fields:(log_fields job)
              "joined in-flight job";
            Joined job
        | None ->
            if Queue.length t.queue >= t.config.queue_capacity then begin
              t.overloaded <- t.overloaded + 1;
              Obs.Log.warn "serve.job.overloaded"
                ~fields:
                  [ ("kind", Proto.kind_to_string spec.Proto.sp_kind);
                    ("bench", spec.Proto.sp_bench);
                    ("queue_depth", string_of_int (Queue.length t.queue)) ]
                "queue full, submission rejected";
              Overloaded
            end
            else begin
              let job = new_job t ~key spec in
              Hashtbl.replace t.active key job;
              Queue.push job t.queue;
              Condition.signal t.cond;
              Obs.Log.info "serve.job.enqueued" ~fields:(log_fields job)
                "enqueued";
              Enqueued job
            end)
  end

let find_job t id =
  Mutex.protect t.mutex (fun () -> Hashtbl.find_opt t.jobs id)

let find_trace t tid =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.traces tid with
      | None -> None
      | Some id -> Hashtbl.find_opt t.jobs id)

let terminal = function
  | Proto.Done | Proto.Failed _ -> true
  | Proto.Queued | Proto.Running -> false

let await t id ?(timeout_s = 600.0) () =
  let deadline = now () +. timeout_s in
  let rec loop () =
    match find_job t id with
    | None -> None
    | Some job ->
        if terminal job.j_state || now () > deadline then Some job
        else begin
          (* poll: stdlib Condition has no timed wait *)
          Unix.sleepf 0.005;
          loop ()
        end
  in
  loop ()

let recent_jobs t n =
  Mutex.protect t.mutex @@ fun () ->
  let all = Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs [] in
  let sorted = List.sort (fun a b -> compare b.j_id a.j_id) all in
  List.filteri (fun i _ -> i < n) sorted

let stats t =
  Mutex.protect t.mutex @@ fun () ->
  { s_queue_depth = Queue.length t.queue;
    s_in_flight = t.in_flight;
    s_submitted = t.submitted;
    s_executions = t.executions;
    s_completed = t.completed;
    s_failed = t.failed;
    s_joined = t.joined;
    s_cache_hits = t.cache_hits;
    s_overloaded = t.overloaded;
    s_uptime_s = now () -. t.started;
    s_cache = Cache.stats t.cache }

let drain_latencies t =
  Mutex.protect t.mutex @@ fun () ->
  let samples = t.latencies in
  t.latencies <- [];
  samples

let shutdown t =
  let workers =
    Mutex.protect t.mutex @@ fun () ->
    if t.closing then []
    else begin
      t.closing <- true;
      Condition.broadcast t.cond;
      let w = t.workers in
      t.workers <- [];
      w
    end
  in
  List.iter Domain.join workers
