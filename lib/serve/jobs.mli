(** The daemon's executor: resolve a {!Proto.spec} to a workload, compute
    its content address, and run the requested pipeline stage to a
    deterministic JSON report plus a per-job Chrome-trace artifact.

    Reports carry no timestamps — two executions of the same spec on the
    same binary produce byte-identical report strings (the property the
    concurrent-submission test pins down).  The one exception is
    [Autotune], whose report embeds measured candidate times; its cached
    bytes are still stable because the cache stores a single execution. *)

val find_workload : string -> (Workloads.Workload.t, string) result
(** Same namespace as [polyprof list]: mini-Rodinia, [gems_fdtd],
    PolyBench. *)

val job_key : Proto.spec -> (string, string) result
(** Content address of the job: SHA-256 over the job kind, the sorted
    parameters and the canonical source of the resolved workload
    ({!Polyprof.Prog_hash.job_key}).  [Error] for an unknown benchmark. *)

val execute : Proto.spec -> Engine.exec_result
(** Run the job on the calling (worker) domain.  Raises on unknown
    benchmarks, malformed parameters, and executor failures — the engine
    converts the exception into the job's failure message. *)
