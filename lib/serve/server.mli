(** The [polyprof serve] daemon: accept HTTP/1.1 + JSON requests on a
    Unix-domain socket (and optionally TCP), hand jobs to the
    {!Engine}, and expose the {!Obs} telemetry as a live [/metrics]
    endpoint.

    Routes:

    - [POST /jobs] — body is a {!Proto.spec}; responds with the submit
      outcome and job id.  Cache hits answer with the job already done.
    - [GET /jobs/{id}] — job status (and the report inline once done).
    - [GET /jobs/{id}/report] — the raw report document.
    - [GET /jobs/{id}/artifact] — the per-job Chrome trace.
    - [GET /jobs/{id}/trace] and [GET /trace/{trace_id}] — the job's
      span tree (queue wait, execute, cache store) as a Chrome trace;
      every job response carries its [trace_id].
    - [GET /jobs] — recent jobs, newest first.
    - [GET /metrics] — Prometheus text exposition: every [Obs] metric
      flushed by the workers plus the live [polyprof_serve_*] section
      (queue depth, in-flight, cache hit ratio, per-kind latency
      histograms with p50/p90/p99 summary lines and per-kind exemplar
      lines carrying the last trace id).
    - [GET /healthz] — liveness.
    - [POST /shutdown] — graceful: drain the queue, join the workers,
      stop serving.

    The accept loop is single-threaded ([Unix.select] over the
    listeners); request handling never blocks on job completion —
    clients poll [GET /jobs/{id}].  Execution happens on the engine's
    worker domains. *)

type config = {
  socket_path : string;  (** Unix-domain listener; unlinked on exit *)
  tcp_port : int option;  (** optional TCP listener on 127.0.0.1 *)
  log_json : string option;  (** JSON-lines log sink, appended *)
  engine : Engine.config;
}

val default_socket : string
(** ["polyprof.sock"] in the current directory. *)

val default_config : config

val serve : ?quiet:bool -> config -> unit
(** Run until [POST /shutdown] (or SIGINT/SIGTERM).  Blocks the calling
    domain.  Lifecycle and per-job events go through {!Obs.Log} (level
    Info unless [POLYPROF_LOG] says otherwise): human-readable lines on
    stdout unless [quiet], JSON lines appended to [log_json] when
    set. *)
