module J = Obs.Json_emit

type config = {
  socket_path : string;
  tcp_port : int option;
  log_json : string option;  (** JSON-lines log sink, appended *)
  engine : Engine.config;
}

let default_socket = "polyprof.sock"

let default_config =
  { socket_path = default_socket;
    tcp_port = None;
    log_json = None;
    engine = Engine.default_config }

(* ------------------------------------------------------------------ *)
(* JSON views                                                          *)
(* ------------------------------------------------------------------ *)

let job_json ?(inline_report = false) (job : Engine.job) =
  let state = job.Engine.j_state in
  J.Obj
    ([ ("id", J.Int job.Engine.j_id);
       ("key", J.Str job.Engine.j_key);
       ("trace_id", J.Str job.Engine.j_trace);
       ("kind", J.Str (Proto.kind_to_string job.Engine.j_spec.Proto.sp_kind));
       ("bench", J.Str job.Engine.j_spec.Proto.sp_bench);
       ("state", J.Str (Proto.state_to_string state));
       ("from_cache", J.Bool job.Engine.j_from_cache) ]
    @ (match state with
      | Proto.Failed msg -> [ ("error", J.Str msg) ]
      | _ -> [])
    @ (match state with
      | Proto.Done | Proto.Failed _ ->
          [ ("wall_s", J.Float job.Engine.j_wall_s) ]
      | _ -> [])
    @
    if inline_report then
      match job.Engine.j_report with
      | Some r -> (
          match J.parse r with
          | Ok doc -> [ ("report", doc) ]
          | Error _ -> [])
      | None -> []
    else [])

let outcome_json outcome =
  match outcome with
  | Engine.Hit job ->
      (200, J.Obj [ ("outcome", J.Str "hit"); ("job", job_json job) ])
  | Engine.Joined job ->
      (200, J.Obj [ ("outcome", J.Str "joined"); ("job", job_json job) ])
  | Engine.Enqueued job ->
      (202, J.Obj [ ("outcome", J.Str "enqueued"); ("job", job_json job) ])
  | Engine.Overloaded ->
      (429, J.Obj [ ("outcome", J.Str "overloaded");
                    ("error", J.Str "job queue full, retry later") ])
  | Engine.Closed ->
      (503, J.Obj [ ("outcome", J.Str "closed");
                    ("error", J.Str "daemon is shutting down") ])

let error_json status msg = (status, J.Obj [ ("error", J.Str msg) ])

(* ------------------------------------------------------------------ *)
(* /metrics: the Obs exposition (worker sinks flushed after every job)
   plus a live serve section.  Obs gauges merge by high-watermark, so
   instantaneous values (queue depth, in-flight, cache bytes) are
   emitted here directly instead of going through a sink.               *)
(* ------------------------------------------------------------------ *)

let latency_hist kind =
  Obs.Metrics.histogram
    ~help:(Printf.sprintf "serve: %s job wall time (ns)" kind)
    (Printf.sprintf "serve.job.%s.ns" kind)

(* last-seen trace id per job kind: links a latency histogram bucket on
   the scrape page to one concrete resolvable trace *)
let exemplars : (string, int * string) Hashtbl.t = Hashtbl.create 8

let metrics_body engine =
  (* fold the latency samples recorded since the last scrape into the
     per-kind histograms (observed on this domain's live sink, which
     Obs.Metrics.snapshot includes) *)
  List.iter
    (fun (kind, ns, trace) ->
      Obs.Metrics.observe (latency_hist kind) ns;
      Hashtbl.replace exemplars kind (ns, trace))
    (Engine.drain_latencies engine);
  let s = Engine.stats engine in
  let c = s.Engine.s_cache in
  let b = Buffer.create 4096 in
  Buffer.add_string b (Obs.Prometheus.exposition (Obs.Metrics.snapshot ()));
  let kinds = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) exemplars []) in
  List.iter
    (fun kind ->
      let ns, trace = Hashtbl.find exemplars kind in
      let name = Printf.sprintf "polyprof_serve_job_%s_ns_exemplar" kind in
      Buffer.add_string b
        (Printf.sprintf
           "# HELP %s most recent %s job latency, with its trace id\n\
            # TYPE %s gauge\n\
            %s{trace_id=\"%s\"} %d\n"
           name kind name name trace ns))
    kinds;
  let line ?(typ = "gauge") name help v =
    Buffer.add_string b
      (Printf.sprintf "# HELP polyprof_serve_%s %s\n# TYPE polyprof_serve_%s %s\npolyprof_serve_%s %s\n"
         name help name typ name v)
  in
  let int_line ?typ name help v = line ?typ name help (string_of_int v) in
  int_line "queue_depth" "jobs waiting for a worker" s.Engine.s_queue_depth;
  int_line "in_flight" "jobs currently executing" s.Engine.s_in_flight;
  int_line ~typ:"counter" "jobs_submitted_total" "accepted submissions"
    s.Engine.s_submitted;
  int_line ~typ:"counter" "executions_total"
    "jobs a worker actually ran (cache hits and joins excluded)"
    s.Engine.s_executions;
  int_line ~typ:"counter" "jobs_completed_total" "jobs finished Done"
    s.Engine.s_completed;
  int_line ~typ:"counter" "jobs_failed_total" "jobs finished Failed"
    s.Engine.s_failed;
  int_line ~typ:"counter" "jobs_joined_total"
    "submissions coalesced onto an identical in-flight job"
    s.Engine.s_joined;
  int_line ~typ:"counter" "cache_hits_total" "submissions served from cache"
    s.Engine.s_cache_hits;
  int_line ~typ:"counter" "overloaded_total" "submissions rejected, queue full"
    s.Engine.s_overloaded;
  int_line "cache_entries" "cached results" c.Cache.c_entries;
  int_line "cache_bytes" "cached result bytes" c.Cache.c_bytes;
  int_line "cache_max_bytes" "cache byte budget" c.Cache.c_max_bytes;
  int_line ~typ:"counter" "cache_evictions_total" "LRU evictions"
    c.Cache.c_evictions;
  int_line ~typ:"counter" "cache_loaded_total"
    "entries loaded from the persist dir at startup" c.Cache.c_loaded;
  int_line ~typ:"counter" "cache_rejected_total"
    "corrupt persisted entries rejected at startup" c.Cache.c_rejected;
  let ratio =
    let total = c.Cache.c_hits + c.Cache.c_misses in
    if total = 0 then 0.0 else float_of_int c.Cache.c_hits /. float_of_int total
  in
  line "cache_hit_ratio" "cache hits / lookups" (Printf.sprintf "%.6f" ratio);
  line "uptime_seconds" "seconds since the engine started"
    (Printf.sprintf "%.3f" s.Engine.s_uptime_s);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

type action = Respond of int * string * string | Shutdown of int * string

let json_action (status, doc) =
  Respond (status, "application/json", J.to_string doc)

let job_of_path engine rest =
  match int_of_string_opt rest with
  | None -> None
  | Some id -> Engine.find_job engine id

let handle engine (rq : Http.request) : action =
  match (rq.Http.rq_method, rq.Http.rq_path) with
  | "GET", "/healthz" ->
      Respond (200, "text/plain", "ok\n")
  | "GET", "/metrics" ->
      Respond (200, "text/plain; version=0.0.4", metrics_body engine)
  | "POST", "/shutdown" ->
      Shutdown (200, J.to_string (J.Obj [ ("shutdown", J.Bool true) ]))
  | "POST", "/jobs" -> (
      match J.parse rq.Http.rq_body with
      | Error e -> json_action (error_json 400 ("malformed JSON body: " ^ e))
      | Ok doc -> (
          match Proto.spec_of_json doc with
          | Error e -> json_action (error_json 400 e)
          | Ok spec -> (
              match Jobs.job_key spec with
              | Error e -> json_action (error_json 404 e)
              | Ok key ->
                  json_action (outcome_json (Engine.submit engine ~key spec)))))
  | "GET", "/jobs" ->
      let n =
        match List.assoc_opt "n" rq.Http.rq_query with
        | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 20)
        | None -> 20
      in
      json_action
        (200, J.List (List.map (job_json ?inline_report:None)
                        (Engine.recent_jobs engine n)))
  | "GET", path when String.length path > 7 && String.sub path 0 7 = "/trace/"
    -> (
      let tid = String.sub path 7 (String.length path - 7) in
      match Engine.find_trace engine tid with
      | None -> json_action (error_json 404 "no such trace")
      | Some job -> (
          match job.Engine.j_trace_json with
          | Some t -> Respond (200, "application/json", t)
          | None ->
              json_action
                (error_json 404
                   (Printf.sprintf "trace %s not complete yet (job %d is %s)"
                      tid job.Engine.j_id
                      (Proto.state_to_string job.Engine.j_state)))))
  | "GET", path when String.length path > 6 && String.sub path 0 6 = "/jobs/"
    -> (
      let rest = String.sub path 6 (String.length path - 6) in
      match String.index_opt rest '/' with
      | None -> (
          match job_of_path engine rest with
          | None -> json_action (error_json 404 "no such job")
          | Some job -> json_action (200, job_json ~inline_report:true job))
      | Some i -> (
          let id_s = String.sub rest 0 i in
          let leaf = String.sub rest (i + 1) (String.length rest - i - 1) in
          match job_of_path engine id_s with
          | None -> json_action (error_json 404 "no such job")
          | Some job -> (
              match leaf with
              | "report" -> (
                  match job.Engine.j_report with
                  | Some r -> Respond (200, "application/json", r)
                  | None ->
                      json_action
                        (error_json 404
                           (Printf.sprintf "job %d has no report (state %s)"
                              job.Engine.j_id
                              (Proto.state_to_string job.Engine.j_state))))
              | "artifact" -> (
                  match job.Engine.j_artifact with
                  | Some a -> Respond (200, "application/json", a)
                  | None -> json_action (error_json 404 "job has no artifact"))
              | "trace" -> (
                  match job.Engine.j_trace_json with
                  | Some t -> Respond (200, "application/json", t)
                  | None -> json_action (error_json 404 "job has no trace yet"))
              | _ -> json_action (error_json 404 "unknown route"))))
  | _ -> json_action (error_json 404 "unknown route")

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)
(* ------------------------------------------------------------------ *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let stop_requested = ref false

let serve ?(quiet = false) config =
  (* structured logging replaces the old ad-hoc prints: the daemon logs
     at Info unless the operator chose a level via POLYPROF_LOG, the
     human sink follows [quiet], and --log-json adds a JSON-lines sink *)
  if Sys.getenv_opt Obs.Log.env_var = None then
    Obs.Log.set_level (Some Obs.Log.Info);
  let jsonl_oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      config.log_json
  in
  let sinks =
    (if quiet then [] else [ Obs.Log.Human stdout ])
    @ match jsonl_oc with Some oc -> [ Obs.Log.Jsonl oc ] | None -> []
  in
  let flush_logs () = Obs.Log.flush_to sinks in
  (* a client hanging up mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  stop_requested := false;
  let request_stop _ = stop_requested := true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let engine = Engine.create ~exec:Jobs.execute config.engine in
  let unix_fd = listen_unix config.socket_path in
  let tcp_fd = Option.map listen_tcp config.tcp_port in
  let listeners = unix_fd :: Option.to_list tcp_fd in
  Obs.Log.info "serve.start"
    ~fields:
      ([ ("socket", config.socket_path);
         ("workers", string_of_int config.engine.Engine.workers);
         ("queue", string_of_int config.engine.Engine.queue_capacity);
         ( "cache_mib",
           string_of_int (config.engine.Engine.cache_bytes / (1024 * 1024)) ) ]
      @ (match config.tcp_port with
        | Some p -> [ ("tcp_port", string_of_int p) ]
        | None -> [])
      @
      match config.engine.Engine.persist_dir with
      | Some d -> [ ("persist", d) ]
      | None -> [])
    "listening";
  flush_logs ();
  let handle_conn client =
    let ic = Unix.in_channel_of_descr client in
    let oc = Unix.out_channel_of_descr client in
    let finally () = try Unix.close client with Unix.Unix_error _ -> () in
    Fun.protect ~finally @@ fun () ->
    match Http.read_request ic with
    | None -> ()
    | Some rq -> (
        match handle engine rq with
        | Respond (status, content_type, body) ->
            Http.write_response oc ~status ~content_type body
        | Shutdown (status, body) ->
            Http.write_response oc ~status body;
            Obs.Log.info "serve.shutdown_requested" "shutdown via POST /shutdown";
            stop_requested := true)
    | exception Http.Bad_request msg ->
        Obs.Log.warn "serve.bad_request" ~fields:[ ("error", msg) ]
          "rejected malformed request";
        Http.write_response oc ~status:400
          (J.to_string (J.Obj [ ("error", J.Str msg) ]))
    | exception (Sys_error _ | End_of_file | Unix.Unix_error _) -> ()
  in
  let rec loop () =
    if !stop_requested then ()
    else
      match Unix.select listeners [] [] 0.25 with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              match Unix.accept fd with
              | client, _ -> handle_conn client
              | exception Unix.Unix_error ((EAGAIN | EINTR), _, _) -> ())
            readable;
          flush_logs ();
          loop ()
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
  in
  loop ();
  Obs.Log.info "serve.drain"
    ~fields:
      [ ("queued", string_of_int (Engine.stats engine).Engine.s_queue_depth) ]
    "draining queue, joining workers";
  flush_logs ();
  Engine.shutdown engine;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sigterm old_term;
  Obs.Log.info "serve.stop" "bye";
  flush_logs ();
  Option.iter close_out jsonl_oc
