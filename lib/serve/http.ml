exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

type request = {
  rq_method : string;
  rq_path : string;
  rq_query : (string * string) list;
  rq_headers : (string * string) list;
  rq_body : string;
}

let default_max_body = 8 * 1024 * 1024
let max_header_lines = 128
let max_line_bytes = 16 * 1024

(* input_line keeps a trailing '\r' (HTTP lines end "\r\n") and raises
   End_of_file on EOF; both normalized here *)
let read_line_opt ic =
  match input_line ic with
  | line ->
      let line =
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
        else line
      in
      if String.length line > max_line_bytes then bad "header line too long";
      Some line
  | exception End_of_file -> None

let split_query target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let q = String.sub target (i + 1) (String.length target - i - 1) in
      let pairs =
        List.filter_map
          (fun kv ->
            if kv = "" then None
            else
              match String.index_opt kv '=' with
              | None -> Some (kv, "")
              | Some j ->
                  Some
                    ( String.sub kv 0 j,
                      String.sub kv (j + 1) (String.length kv - j - 1) ))
          (String.split_on_char '&' q)
      in
      (path, pairs)

let read_headers ic =
  let rec loop acc n =
    if n > max_header_lines then bad "too many header lines";
    match read_line_opt ic with
    | None -> bad "unexpected EOF in headers"
    | Some "" -> List.rev acc
    | Some line -> (
        match String.index_opt line ':' with
        | None -> bad "malformed header line %S" line
        | Some i ->
            let name = String.lowercase_ascii (String.sub line 0 i) in
            let value =
              String.trim
                (String.sub line (i + 1) (String.length line - i - 1))
            in
            loop ((name, value) :: acc) (n + 1))
  in
  loop [] 0

let read_body ~max_body ic headers =
  match List.assoc_opt "content-length" headers with
  | None -> ""
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | None -> bad "malformed Content-Length %S" v
      | Some n when n < 0 -> bad "negative Content-Length"
      | Some n when n > max_body -> bad "body of %d bytes exceeds limit" n
      | Some n ->
          let b = Bytes.create n in
          (try really_input ic b 0 n
           with End_of_file -> bad "truncated body (%d bytes expected)" n);
          Bytes.to_string b)

let read_request ?(max_body = default_max_body) ic =
  match read_line_opt ic with
  | None -> None
  | Some line -> (
      match String.split_on_char ' ' line with
      | [ meth; target; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
          let headers = read_headers ic in
          let path, query = split_query target in
          let body = read_body ~max_body ic headers in
          Some
            { rq_method = String.uppercase_ascii meth;
              rq_path = path;
              rq_query = query;
              rq_headers = headers;
              rq_body = body }
      | _ -> bad "malformed request line %S" line)

let status_reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let write_response oc ~status ?(content_type = "application/json") body =
  Printf.fprintf oc
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n"
    status (status_reason status) content_type (String.length body);
  output_string oc body;
  flush oc

let write_request oc ~meth ~path ?(body = "") () =
  Printf.fprintf oc
    "%s %s HTTP/1.1\r\nHost: polyprof\r\nContent-Type: \
     application/json\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
    meth path (String.length body);
  output_string oc body;
  flush oc

type response = {
  rs_status : int;
  rs_headers : (string * string) list;
  rs_body : string;
}

let read_response ic =
  match read_line_opt ic with
  | None -> bad "unexpected EOF before status line"
  | Some line ->
      let status =
        match String.split_on_char ' ' line with
        | version :: code :: _
          when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
          -> (
            match int_of_string_opt code with
            | Some c -> c
            | None -> bad "malformed status code in %S" line)
        | _ -> bad "malformed status line %S" line
      in
      let headers = read_headers ic in
      let body =
        match List.assoc_opt "content-length" headers with
        | Some _ -> read_body ~max_body:default_max_body ic headers
        | None ->
            (* read to EOF: the daemon always closes after one response *)
            let b = Buffer.create 1024 in
            (try
               while true do
                 Buffer.add_channel b ic 1
               done
             with End_of_file -> ());
            Buffer.contents b
      in
      { rs_status = status; rs_headers = headers; rs_body = body }
