module J = Obs.Json_emit

type endpoint = Unix_sock of string | Tcp of string * int

let connect = function
  | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd

let request endpoint ~meth ~path ?(body = "") () =
  match connect endpoint with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot reach the daemon (%s) — is `polyprof serve` \
                         running?" (Unix.error_message e))
  | fd -> (
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally @@ fun () ->
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      try
        Http.write_request oc ~meth ~path ~body ();
        Ok (Http.read_response ic)
      with
      | Http.Bad_request e -> Error ("protocol error: " ^ e)
      | Sys_error e -> Error e
      | End_of_file -> Error "connection closed before a full response"
      | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

let server_error (rs : Http.response) =
  match J.parse rs.Http.rs_body with
  | Ok doc -> (
      match J.member "error" doc with
      | Some (J.Str e) -> e
      | _ -> Printf.sprintf "HTTP %d" rs.Http.rs_status)
  | Error _ -> Printf.sprintf "HTTP %d" rs.Http.rs_status

let parse_2xx (rs : Http.response) =
  if rs.Http.rs_status / 100 = 2 then
    match J.parse rs.Http.rs_body with
    | Ok doc -> Ok doc
    | Error e -> Error ("malformed response JSON: " ^ e)
  else Error (server_error rs)

let submit endpoint spec =
  match
    request endpoint ~meth:"POST" ~path:"/jobs"
      ~body:(J.to_string (Proto.spec_to_json spec))
      ()
  with
  | Error e -> Error e
  | Ok rs -> parse_2xx rs

let job_id_of doc =
  match J.member "job" doc with
  | Some job -> (
      match J.member "id" job with
      | Some (J.Int id) -> Ok id
      | _ -> Error "response carries no job.id")
  | None -> (
      (* a status document is the job object itself *)
      match J.member "id" doc with
      | Some (J.Int id) -> Ok id
      | _ -> Error "response carries no job.id")

let wait endpoint ~job_id ?(timeout_s = 600.0) ?(poll_s = 0.05) () =
  let deadline = Obs.Clock.monotonic () +. timeout_s in
  let path = Printf.sprintf "/jobs/%d" job_id in
  let rec loop () =
    match request endpoint ~meth:"GET" ~path () with
    | Error e -> Error e
    | Ok rs -> (
        match parse_2xx rs with
        | Error e -> Error e
        | Ok doc -> (
            match J.member "state" doc with
            | Some (J.Str "done") -> Ok doc
            | Some (J.Str "failed") ->
                Error
                  (match J.member "error" doc with
                  | Some (J.Str e) -> Printf.sprintf "job %d failed: %s" job_id e
                  | _ -> Printf.sprintf "job %d failed" job_id)
            | Some (J.Str _) ->
                if Obs.Clock.monotonic () > deadline then
                  Error (Printf.sprintf "timed out waiting for job %d" job_id)
                else begin
                  Unix.sleepf poll_s;
                  loop ()
                end
            | _ -> Error "malformed status document"))
  in
  loop ()
