(** Minimal self-hosted HTTP/1.1 — just enough protocol for the
    profiling daemon and its client: one request per connection
    ([Connection: close]), [Content-Length] bodies, no chunked encoding,
    no percent-decoding beyond what the fixed route set needs. *)

exception Bad_request of string

type request = {
  rq_method : string;  (** uppercased *)
  rq_path : string;  (** path without the query string *)
  rq_query : (string * string) list;
  rq_headers : (string * string) list;  (** names lowercased *)
  rq_body : string;
}

val read_request : ?max_body:int -> in_channel -> request option
(** [None] on a clean EOF before any byte of the request line.
    @raise Bad_request on a malformed request or a body larger than
    [max_body] (default 8 MiB). *)

val write_response :
  out_channel -> status:int -> ?content_type:string -> string -> unit
(** Write a complete response ([Content-Length] framed,
    [Connection: close]) and flush.  Default content type:
    [application/json]. *)

val status_reason : int -> string

(** {2 Client side} *)

val write_request :
  out_channel -> meth:string -> path:string -> ?body:string -> unit -> unit

type response = {
  rs_status : int;
  rs_headers : (string * string) list;
  rs_body : string;
}

val read_response : in_channel -> response
(** @raise Bad_request on a malformed status line or header block. *)
