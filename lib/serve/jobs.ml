module J = Obs.Json_emit

let polybench_names =
  List.map (fun (w : Workloads.Workload.t) -> w.w_name) Workloads.Polybench.all

let find_workload name =
  try Ok (Workloads.Rodinia.find name)
  with Invalid_argument _ -> (
    if name = "gems_fdtd" then Ok Workloads.Gems_fdtd.workload
    else
      match
        List.find_opt
          (fun (w : Workloads.Workload.t) -> w.w_name = name)
          (Workloads.Polybench.all @ Workloads.Polybench.seeded)
      with
      | Some w -> Ok w
      | None ->
          Error
            (Printf.sprintf "unknown benchmark %s (try: %s, gems_fdtd, %s)"
               name
               (String.concat ", " Workloads.Rodinia.names)
               (String.concat ", " polybench_names)))

let job_key (spec : Proto.spec) =
  match find_workload spec.Proto.sp_bench with
  | Error e -> Error e
  | Ok w ->
      Ok
        (Polyprof.Prog_hash.job_key
           ~kind:(Proto.kind_to_string spec.Proto.sp_kind)
           ~params:
             (("bench", spec.Proto.sp_bench) :: spec.Proto.sp_params)
           w.Workloads.Workload.hir)

(* ------------------------------------------------------------------ *)
(* Report builders.  No timestamps anywhere: a report is a pure function
   of the spec and the binary, so repeat executions are byte-identical
   and the cache-hit bit-identity test can compare raw strings.         *)
(* ------------------------------------------------------------------ *)

let report ~spec fields =
  J.to_string
    (J.Obj
       ([ ("schema_version", J.Int Obs.Schemas.serve);
          ("kind", J.Str (Proto.kind_to_string spec.Proto.sp_kind));
          ("bench", J.Str spec.Proto.sp_bench);
          ( "params",
            J.Obj
              (List.map (fun (k, v) -> (k, J.Str v)) spec.Proto.sp_params) ) ]
       @ fields))

let row_json (row : Sched.Metrics.row) =
  J.Obj
    (List.map2
       (fun k v -> (k, J.Str v))
       Sched.Metrics.header
       (Sched.Metrics.to_strings row))

let xform_status = function
  | Xform.Driver.Verified -> ("verified", None)
  | Xform.Driver.Rejected why -> ("rejected", Some why)
  | Xform.Driver.Skipped why -> ("skipped", Some why)

let xform_json (s : Xform.Driver.summary) =
  J.Obj
    [ ("name", J.Str s.Xform.Driver.sm_name);
      ("verified", J.Int s.Xform.Driver.sm_verified);
      ("rejected", J.Int s.Xform.Driver.sm_rejected);
      ("skipped", J.Int s.Xform.Driver.sm_skipped);
      ( "plans",
        J.List
          (List.map
             (fun (e : Xform.Driver.entry) ->
               let status, why = xform_status e.Xform.Driver.en_status in
               J.Obj
                 (("target", J.Str e.Xform.Driver.en_target)
                  :: ("status", J.Str status)
                  ::
                  (match why with
                  | None -> []
                  | Some w -> [ ("why", J.Str w) ])))
             s.Xform.Driver.sm_entries) ) ]

let run_profile spec (w : Workloads.Workload.t) =
  let budget =
    Proto.param_int spec "budget" ~default:Workloads.Runner.sched_budget
  in
  let o = Workloads.Runner.run ~budget w in
  report ~spec
    [ ("row", row_json o.Workloads.Runner.row);
      ("dep_keys", J.Int o.Workloads.Runner.dep_keys);
      ("sched_bailed", J.Bool o.Workloads.Runner.sched_bailed);
      ( "polly",
        J.Str (Staticbase.Polly_lite.reasons_string o.Workloads.Runner.polly)
      ) ]

let run_apply spec (w : Workloads.Workload.t) ~max_plans =
  let max_plans = Proto.param_int spec "max_plans" ~default:max_plans in
  let s =
    Polyprof.apply_and_verify ~max_plans ~name:w.Workloads.Workload.w_name
      w.Workloads.Workload.hir
  in
  report ~spec [ ("transform", xform_json s) ]

let run_parcheck spec (w : Workloads.Workload.t) =
  let static_only = Proto.param_int spec "static_only" ~default:0 <> 0 in
  let prog = Vm.Hir.lower w.Workloads.Workload.hir in
  let pc = Analysis.Parcheck.analyse prog in
  let dims =
    J.List
      (List.map
         (fun (d : Analysis.Parcheck.dim_report) ->
           J.Obj
             [ ("fid", J.Int d.Analysis.Parcheck.dr_fid);
               ("header", J.Int d.Analysis.Parcheck.dr_header);
               ("depth", J.Int d.Analysis.Parcheck.dr_depth);
               ( "verdict",
                 J.Str
                   (Analysis.Parcheck.verdict_code
                      d.Analysis.Parcheck.dr_verdict) ) ])
         pc.Analysis.Parcheck.pc_dims)
  in
  let base =
    [ ("dims", dims);
      ("certified", J.Int (Analysis.Parcheck.n_certified pc));
      ("races", J.Int (Analysis.Parcheck.n_races pc)) ]
  in
  let dyn =
    if static_only then []
    else begin
      let san = Analysis.Parcheck.sanitize pc in
      let diags = Analysis.Parcheck.crosscheck pc san in
      (* a sanitizer race on a certified dim is a soundness failure:
         fail the job loudly instead of caching a bad certificate *)
      if not (Analysis.Parcheck.crosscheck_ok diags) then
        failwith
          (String.concat "; "
             (List.map Analysis.Diag.to_string
                (List.filter Analysis.Diag.is_error diags)));
      [ ( "sanitizer",
          J.Obj
            [ ("accesses", J.Int san.Ddg.Race_san.sr_accesses);
              ( "races_on_certified",
                J.Int (Ddg.Race_san.races_on_certified san) ) ] );
        ("crosscheck_ok", J.Bool true) ]
    end
  in
  report ~spec [ ("parcheck", J.Obj (base @ dyn)) ]

let run_autotune spec (w : Workloads.Workload.t) =
  let d = Tune.Search.default in
  let config =
    { d with
      Tune.Search.beam = Proto.param_int spec "beam" ~default:d.Tune.Search.beam;
      depth = Proto.param_int spec "depth" ~default:d.Tune.Search.depth;
      repeat = Proto.param_int spec "repeat" ~default:d.Tune.Search.repeat;
      seed = Proto.param_int spec "seed" ~default:d.Tune.Search.seed }
  in
  let r =
    Polyprof.autotune ~config ~name:w.Workloads.Workload.w_name
      w.Workloads.Workload.hir
  in
  (* embeds measured times — see the module doc on determinism *)
  report ~spec
    [ ("autotune", Tune.Tune_report.workload_json ~name:w.Workloads.Workload.w_name r) ]

(* ------------------------------------------------------------------ *)
(* Execution measurement.  Spans from Obs.Span would interleave across
   concurrently running worker domains (the completed-span list is
   process-global), so each job gets a single hand-built span instead:
   wall time and GC deltas measured around the executor.  The engine
   rebases it into the job's trace tree as the [execute] phase.         *)
(* ------------------------------------------------------------------ *)

let execute (spec : Proto.spec) =
  let w =
    match find_workload spec.Proto.sp_bench with
    | Ok w -> w
    | Error e -> failwith e
  in
  let g0 = Gc.quick_stat () in
  let t0 = Obs.Clock.monotonic () in
  let x_report =
    match spec.Proto.sp_kind with
    | Proto.Profile -> run_profile spec w
    | Proto.Transform -> run_apply spec w ~max_plans:1
    | Proto.Verify -> run_apply spec w ~max_plans:8
    | Proto.Autotune -> run_autotune spec w
    | Proto.Parcheck -> run_parcheck spec w
    | Proto.Crash -> failwith "deliberate worker crash (kind=crash)"
  in
  let wall_ns = int_of_float ((Obs.Clock.monotonic () -. t0) *. 1e9) in
  let g1 = Gc.quick_stat () in
  let x_span : Obs.Span.t =
    { Obs.Span.sp_name = "execute";
      sp_cat = "serve";
      sp_tid = (Domain.self () :> int);
      sp_start_ns = 0;
      sp_dur_ns = wall_ns;
      sp_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      sp_major_words = g1.Gc.major_words -. g0.Gc.major_words;
      sp_top_heap_words = g1.Gc.top_heap_words;
      sp_children = [];
      sp_args = [] }
  in
  { Engine.x_report; x_span = Some x_span }
