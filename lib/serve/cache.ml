type entry = { e_report : string; e_artifact : string option }

type stats = {
  c_entries : int;
  c_bytes : int;
  c_max_bytes : int;
  c_hits : int;
  c_misses : int;
  c_evictions : int;
  c_loaded : int;
  c_rejected : int;
}

type node = { n_entry : entry; n_size : int; mutable n_used : int }

type t = {
  tbl : (string, node) Hashtbl.t;
  max_bytes : int;
  persist_dir : string option;
  mutable bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable loaded : int;
  mutable rejected : int;
}

(* fixed per-entry overhead charged against the budget: key, hashtable
   slot, node *)
let entry_overhead = 256

let entry_size key e =
  String.length key + String.length e.e_report
  + (match e.e_artifact with Some a -> String.length a | None -> 0)
  + entry_overhead

(* ------------------------------------------------------------------ *)
(* Persistence: one CRC-sealed file per entry.  Layout:
     POLYPROFCACHE1 \n  key \n  crc32(payload) hex \n  length \n  payload
   where payload is the marshalled entry.  Anything that does not parse,
   whose CRC mismatches or whose key disagrees with the file name is
   rejected and counted.                                               *)
(* ------------------------------------------------------------------ *)

let magic = "POLYPROFCACHE1"
let file_ext = ".jc"

let key_valid key =
  String.length key = 64
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       key

let entry_path dir key = Filename.concat dir (key ^ file_ext)

let persist dir key e =
  let payload = Marshal.to_string e [] in
  let path = entry_path dir key in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Printf.fprintf oc "%s\n%s\n%08lx\n%d\n" magic key
    (Stream.Crc32.string payload)
    (String.length payload);
  output_string oc payload;
  close_out oc;
  Sys.rename tmp path

let unpersist dir key =
  try Sys.remove (entry_path dir key) with Sys_error _ -> ()

let load_file path : (string * entry, string) result =
  try
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let line () = try Some (input_line ic) with End_of_file -> None in
    match (line (), line (), line (), line ()) with
    | Some m, Some key, Some crc_hex, Some len_s -> (
        if m <> magic then Error "bad magic"
        else if not (key_valid key) then Error "malformed key"
        else if Filename.basename path <> key ^ file_ext then
          Error "key/filename mismatch"
        else
          match int_of_string_opt len_s with
          | None -> Error "malformed length"
          | Some len when len < 0 || len > 256 * 1024 * 1024 ->
              Error "implausible length"
          | Some len -> (
              let payload = Bytes.create len in
              match really_input ic payload 0 len with
              | exception End_of_file -> Error "truncated payload"
              | () ->
                  let crc =
                    Printf.sprintf "%08lx" (Stream.Crc32.bytes payload)
                  in
                  if crc <> crc_hex then Error "CRC mismatch"
                  else
                    (* CRC-sealed by us, so unmarshalling is safe *)
                    let e : entry =
                      Marshal.from_string (Bytes.to_string payload) 0
                    in
                    Ok (key, e)))
    | _ -> Error "truncated header"
  with
  | Sys_error e -> Error e
  | Failure e -> Error e

(* ------------------------------------------------------------------ *)

let evict_until_fits t =
  while t.bytes > t.max_bytes && Hashtbl.length t.tbl > 0 do
    let victim =
      Hashtbl.fold
        (fun key node acc ->
          match acc with
          | Some (_, best) when best.n_used <= node.n_used -> acc
          | _ -> Some (key, node))
        t.tbl None
    in
    match victim with
    | None -> ()
    | Some (key, node) ->
        Hashtbl.remove t.tbl key;
        t.bytes <- t.bytes - node.n_size;
        t.evictions <- t.evictions + 1;
        Option.iter (fun dir -> unpersist dir key) t.persist_dir
  done

let touch t node =
  t.tick <- t.tick + 1;
  node.n_used <- t.tick

let insert t key e ~persisted =
  let size = entry_size key e in
  if size > t.max_bytes then ()
  else begin
    (match Hashtbl.find_opt t.tbl key with
    | Some old -> t.bytes <- t.bytes - old.n_size
    | None -> ());
    let node = { n_entry = e; n_size = size; n_used = 0 } in
    touch t node;
    Hashtbl.replace t.tbl key node;
    t.bytes <- t.bytes + size;
    evict_until_fits t;
    if not persisted then
      Option.iter
        (fun dir -> if Hashtbl.mem t.tbl key then persist dir key e)
        t.persist_dir
  end

let create ?persist_dir ~max_bytes () =
  let t =
    { tbl = Hashtbl.create 64;
      max_bytes;
      persist_dir;
      bytes = 0;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      loaded = 0;
      rejected = 0 }
  in
  Option.iter
    (fun dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f file_ext)
        |> List.map (fun f -> Filename.concat dir f)
      in
      (* oldest first, so LRU order after the loop is newest-first *)
      let mtime f = try (Unix.stat f).Unix.st_mtime with Unix.Unix_error _ -> 0. in
      let files = List.sort (fun a b -> compare (mtime a) (mtime b)) files in
      List.iter
        (fun path ->
          match load_file path with
          | Ok (key, e) ->
              insert t key e ~persisted:true;
              t.loaded <- t.loaded + 1
          | Error _ -> t.rejected <- t.rejected + 1)
        files)
    persist_dir;
  t

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
      touch t node;
      t.hits <- t.hits + 1;
      Some node.n_entry
  | None ->
      t.misses <- t.misses + 1;
      None

(* reports embed no timestamps today, but should one sneak in via an
   embedded sub-document, a re-execution must not churn the cache (or
   its persisted files) over a generated_utc alone *)
let report_equivalent a b =
  a = b
  ||
  match (Obs.Json_emit.parse a, Obs.Json_emit.parse b) with
  | Ok da, Ok db ->
      Obs.Json_emit.equal_ignoring ~ignore:[ "generated_utc" ] da db
  | _ -> false

let add t key e =
  match Hashtbl.find_opt t.tbl key with
  | Some node when report_equivalent node.n_entry.e_report e.e_report ->
      (* same result modulo timestamp: keep the incumbent bytes stable *)
      touch t node
  | _ -> insert t key e ~persisted:false

let set_artifact t key artifact =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some node ->
      let e = { node.n_entry with e_artifact = Some artifact } in
      let size = entry_size key e in
      if size > t.max_bytes then ()
      else begin
        t.bytes <- t.bytes - node.n_size;
        let node' = { n_entry = e; n_size = size; n_used = node.n_used } in
        touch t node';
        Hashtbl.replace t.tbl key node';
        t.bytes <- t.bytes + size;
        evict_until_fits t;
        Option.iter
          (fun dir -> if Hashtbl.mem t.tbl key then persist dir key e)
          t.persist_dir
      end

let stats t =
  { c_entries = Hashtbl.length t.tbl;
    c_bytes = t.bytes;
    c_max_bytes = t.max_bytes;
    c_hits = t.hits;
    c_misses = t.misses;
    c_evictions = t.evictions;
    c_loaded = t.loaded;
    c_rejected = t.rejected }
