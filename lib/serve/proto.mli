(** Wire protocol of the profiling service: job kinds, specs and states,
    with JSON encode/decode on {!Obs.Json_emit} (the daemon speaks plain
    HTTP/1.1 + JSON; no external serialization dependency). *)

type kind =
  | Profile  (** full POLY-PROF pipeline, metrics row + feedback *)
  | Transform  (** apply the hottest suggested plan, report the rewrite *)
  | Verify  (** differential verification of every suggested plan *)
  | Autotune  (** verified beam search ([beam]/[depth]/[repeat]/[seed] params) *)
  | Parcheck
      (** parallelism certifier + race sanitizer: per-dimension DOALL
          certificates / race witnesses with the dynamic cross-check *)
  | Crash  (** deliberately raise inside the worker — the crash-isolation
               self-test; never cached (failed jobs are not cacheable) *)

val kind_to_string : kind -> string
val kind_of_string : string -> (kind, string) result

type spec = {
  sp_kind : kind;
  sp_bench : string;  (** workload name, see [polyprof list] *)
  sp_params : (string * string) list;  (** sorted by name at construction *)
  sp_deadline_s : float option;
      (** per-job deadline: expired queued jobs fail without executing,
          and a result landing after the deadline is discarded *)
}

val spec :
  kind:kind ->
  bench:string ->
  ?params:(string * string) list ->
  ?deadline_s:float ->
  unit ->
  spec

val param : spec -> string -> string option
val param_int : spec -> string -> default:int -> int

val spec_to_json : spec -> Obs.Json_emit.t
val spec_of_json : Obs.Json_emit.t -> (spec, string) result

type state = Queued | Running | Done | Failed of string

val state_to_string : state -> string
(** ["queued" | "running" | "done" | "failed"] (the failure message
    travels in a separate ["error"] field). *)
