(** Liveness: a backward may-analysis over the set of live registers
    (join = union).  Used as a lint: an instruction that only writes a
    register nobody reads afterwards is dead.

    Two codes, reported per function on reachable code only:

    - [W-dead-store]: the instruction's only effect is a register write
      that is never read ([Const]/[Mov]/[Bin]/... with a dead
      destination).  [Store] (memory) is never dead — the pass does not
      track memory — and a [Call] destination that is dead is *not*
      flagged (the call itself has effects); neither is a dead [Load]
      destination flagged as an error, it is still [W-dead-store]
      because MiniVM loads cannot fault and have no other effect.
    - [I-dead-param]: a declared parameter that is never read anywhere
      in the function (informational). *)

val check_func : Vm.Prog.t -> int -> Diag.t list
val check : Vm.Prog.t -> Diag.t list

val live_in : Vm.Prog.func -> int -> int list
(** Registers live at the entry of the given block (sorted); exposed for
    tests of the underlying backward engine. *)
