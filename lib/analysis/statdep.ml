module AC = Affine_class
module L = Cfg.Loopnest
module Dp = Ddg.Depprof
module Dir = Sched.Depanalysis
module P = Minisl.Polyhedron
module Cs = Minisl.Constr
module Af = Minisl.Affine
module Rat = Pp_util.Rat

type reason = R_nonaffine | R_loop | R_cond | R_call | R_range | R_header

let reason_code = function
  | R_nonaffine -> "nonaffine"
  | R_loop -> "loop"
  | R_cond -> "cond"
  | R_call -> "call"
  | R_range -> "range"
  | R_header -> "header"

type resolved = {
  r_sid : Vm.Isa.Sid.t;
  r_store : bool;
  r_fid : int;
  r_region : int;
  r_base : int;
  r_coefs : int array;
  r_bounds : (int * int array) array;
  r_dims : (int * int) array;
  r_sched : int array;
  r_lo : int;
  r_hi : int;
  r_spec : (int * int * int) option;
}

type spec_decision = Spec_always of int | Spec_off

type pair_dep = {
  pd_src : Vm.Isa.Sid.t;
  pd_dst : Vm.Isa.Sid.t;
  pd_kind : Dp.dep_kind;
  pd_common : int;
  pd_possible : bool;
  pd_dirs : Dir.dir array;
  pd_dists : int option array;
  pd_rel : Minisl.Pmap.t option;
}

type t = {
  prog : Vm.Prog.t;
  pta : Points_to.t;
  resolved : (Vm.Isa.Sid.t, resolved) Hashtbl.t;
  unresolved : (Vm.Isa.Sid.t * bool * reason) list;
  prunable : bool array;
  pruned : (Vm.Isa.Sid.t, unit) Hashtbl.t;
  pairs : pair_dep list;
  plan : Dp.static_plan;
  n_accesses : int;
  speculated : ((int * int) * spec_decision) list;
  skip_spec : (Vm.Isa.Sid.t, int * int * int) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Per-function static facts                                           *)
(* ------------------------------------------------------------------ *)

(* dominator bitsets (iterative dataflow over the static CFG) *)
let dominators graph n =
  let words = (n + 62) / 63 in
  let full = Array.make words (-1) in
  let only b =
    let a = Array.make words 0 in
    a.(b / 63) <- 1 lsl (b mod 63);
    a
  in
  let dom = Array.init n (fun b -> if b = 0 then only 0 else Array.copy full) in
  let rpo = Cfg.Digraph.reverse_postorder graph ~root:0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 && b >= 0 && b < n then begin
          let acc = Array.copy full in
          let seen = ref false in
          List.iter
            (fun p ->
              if p >= 0 && p < n then begin
                seen := true;
                Array.iteri (fun w x -> acc.(w) <- acc.(w) land x) dom.(p)
              end)
            (Cfg.Digraph.preds graph b);
          if not !seen then Array.fill acc 0 words 0;
          let me = only b in
          Array.iteri (fun w x -> acc.(w) <- acc.(w) lor x) me;
          if acc <> dom.(b) then begin
            dom.(b) <- acc;
            changed := true
          end
        end)
      rpo
  done;
  dom

type finfo = {
  fi_fid : int;
  fi_func : Vm.Prog.func;
  fi_fr : AC.func_result;
  fi_graph : Cfg.Digraph.t;
  fi_forest : L.t;
  fi_reach : bool array;
  fi_rpo : int list;
  fi_dom : int array array;
  fi_li : (int, AC.loop_info * L.loop) Hashtbl.t;
  fi_acc : (int, AC.access list) Hashtbl.t;  (* bid -> accesses, idx order *)
  fi_exits : int list;
}

(* [a] dominates [b] *)
let dominates fi a b =
  let n = Array.length fi.fi_dom in
  a >= 0 && a < n && b >= 0 && b < n
  && fi.fi_dom.(b).(a / 63) land (1 lsl (a mod 63)) <> 0

let make_finfo prog frs fid =
  let func = (prog : Vm.Prog.t).funcs.(fid) in
  let fr = frs.(fid) in
  let graph = Insn.static_cfg func in
  let n = Array.length func.blocks in
  let fi_li = Hashtbl.create 8 in
  List.iter
    (fun (li : AC.loop_info) ->
      match L.loop_of_header fr.AC.fr_forest li.AC.li_header with
      | Some l when l.L.loop_id = li.AC.li_id ->
          Hashtbl.replace fi_li li.AC.li_id (li, l)
      | _ -> ())
    fr.AC.fr_loops;
  let fi_acc = Hashtbl.create 16 in
  List.iter
    (fun (a : AC.access) ->
      let bid = Vm.Isa.Sid.bid a.AC.acc_sid in
      Hashtbl.replace fi_acc bid
        (Option.value ~default:[] (Hashtbl.find_opt fi_acc bid) @ [ a ]))
    fr.AC.fr_accesses;
  let fi_exits = ref [] in
  Array.iter
    (fun (b : Vm.Prog.block) ->
      match b.term with
      | Vm.Isa.Ret _ | Vm.Isa.Halt -> fi_exits := b.bid :: !fi_exits
      | _ -> ())
    func.blocks;
  { fi_fid = fid;
    fi_func = func;
    fi_fr = fr;
    fi_graph = graph;
    fi_forest = fr.AC.fr_forest;
    fi_reach = Verify.reachable_blocks func;
    fi_rpo = Cfg.Digraph.reverse_postorder graph ~root:0;
    fi_dom = dominators graph n;
    fi_li;
    fi_acc;
    fi_exits = List.rev !fi_exits }

(* ------------------------------------------------------------------ *)
(* Address expansion over the chain's iteration space                  *)
(* ------------------------------------------------------------------ *)

(* One chain dimension: a modelable loop whose body-execution count is
   an affine function of the enclosing chain coordinates,
   [max 0 (dm_base + dm_coefs . outer)] ([dm_coefs] has one entry per
   strictly-outer dimension; constant-trip boxes have all-zero
   coefficients). *)
type dim = {
  dm_fid : int;
  dm_loop_id : int;
  dm_li : AC.loop_info;
  dm_base : int;
  dm_coefs : int array;
}

let counter_of (li : AC.loop_info) r =
  List.find_map
    (fun (r', entry, step) -> if r' = r then Some (entry, step) else None)
    li.AC.li_counters

(* Expand an affine-class linear expression into [base + coefs . coords]
   over the chain dimensions [dims] (outer first).  Symbols are either
   counters of enclosing chain loops (entry + k*step, entries expanded
   recursively against strictly-outer context) or counters of loops
   already completed at [bid] (header dominates, block outside the
   region): constant [entry + trip*step]. *)
let rec expand fi (l : AC.lin) dims ~bid ~fuel =
  if fuel <= 0 then None
  else begin
    let nd = List.length dims in
    let coefs = Array.make nd 0 in
    let base = ref l.AC.lbase in
    let add_scaled c (b2, c2) =
      base := !base + (c * b2);
      Array.iteri (fun i v -> coefs.(i) <- coefs.(i) + (c * v)) c2
    in
    let dim_index loop_id =
      let rec go i = function
        | [] -> None
        | d :: rest ->
            if d.dm_fid = fi.fi_fid && d.dm_loop_id = loop_id then Some (i, d)
            else go (i + 1) rest
      in
      go 0 dims
    in
    let ok =
      List.for_all
        (fun (sym, c) ->
          match sym with
          | AC.Par _ -> false
          | AC.Ind { loop; ind_reg } -> (
              match dim_index loop with
              | Some (j, d) -> (
                  match counter_of d.dm_li ind_reg with
                  | Some (Some entry, step) -> (
                      match
                        expand fi entry dims
                          ~bid:d.dm_li.AC.li_header ~fuel:(fuel - 1)
                      with
                      | Some bc ->
                          add_scaled c bc;
                          coefs.(j) <- coefs.(j) + (c * step);
                          true
                      | None -> false)
                  | _ -> false)
              | None -> (
                  (* a loop completed before [bid]? the counter then
                     holds its final header-entry value *)
                  match Hashtbl.find_opt fi.fi_li loop with
                  | Some (li, lp) when
                      (not (L.loop_contains lp bid))
                      && dominates fi li.AC.li_header bid -> (
                      match (li.AC.li_trip, counter_of li ind_reg) with
                      | Some trip, Some (Some entry, step) -> (
                          match
                            expand fi entry dims ~bid:li.AC.li_header
                              ~fuel:(fuel - 1)
                          with
                          | Some (b2, c2) ->
                              add_scaled c (b2 + (trip * step), c2);
                              true
                          | None -> false)
                      | _ -> false)
                  | _ -> false)))
        l.AC.lterms
    in
    if ok then Some (!base, coefs) else None
  end

(* ------------------------------------------------------------------ *)
(* Chain construction                                                  *)
(* ------------------------------------------------------------------ *)

type builder = {
  b_prog : Vm.Prog.t;
  b_fis : finfo option array;
  b_frs : AC.func_result array;
  b_pta : Points_to.t;
  b_sites : int array;  (* live static call sites per callee *)
  b_live : bool array;
  b_resolved : (Vm.Isa.Sid.t, resolved) Hashtbl.t;
  b_reason : (Vm.Isa.Sid.t, reason) Hashtbl.t;
  b_speculate : bool;
  b_directions : ((int * int) * spec_decision) list;
      (* (fid, guard) -> decision override, from witness refinement *)
  b_spec_used : (int * int, spec_decision) Hashtbl.t;
      (* decisions materialised during the walk (defaults included) *)
  b_skipspec : (Vm.Isa.Sid.t, int * int * int) Hashtbl.t;
      (* accesses excluded as speculatively never-executed:
         sid -> (fid, guard, block) *)
}

let finfo b fid =
  match b.b_fis.(fid) with
  | Some fi -> fi
  | None ->
      let fi = make_finfo b.b_prog b.b_frs fid in
      b.b_fis.(fid) <- Some fi;
      fi

let set_reason b sid r =
  if not (Hashtbl.mem b.b_reason sid) then Hashtbl.replace b.b_reason sid r

(* mark every access of [fid] (and its transitive callees with memory
   accesses) as unresolvable at this call position *)
let rec taint_func b fid reason ~seen =
  if not (Hashtbl.mem seen fid) then begin
    Hashtbl.replace seen fid ();
    let fi = finfo b fid in
    List.iter
      (fun (a : AC.access) -> set_reason b a.AC.acc_sid reason)
      fi.fi_fr.AC.fr_accesses;
    List.iter
      (fun (cs : AC.call_site) ->
        if
          cs.AC.cs_callee >= 0
          && cs.AC.cs_callee < Array.length b.b_prog.funcs
          && Points_to.func_touched b.b_pta cs.AC.cs_callee <> 0
        then taint_func b cs.AC.cs_callee reason ~seen)
      fi.fi_fr.AC.fr_calls
  end

let taint b fid reason = taint_func b fid reason ~seen:(Hashtbl.create 4)

let taint_block b fi bid reason =
  (match Hashtbl.find_opt fi.fi_acc bid with
  | Some accs -> List.iter (fun (a : AC.access) -> set_reason b a.AC.acc_sid reason) accs
  | None -> ());
  match fi.fi_func.blocks.(bid).term with
  | Vm.Isa.Call { callee; _ }
    when callee >= 0
         && callee < Array.length b.b_prog.funcs
         && Points_to.func_touched b.b_pta callee <> 0 ->
      taint b callee R_call
  | _ -> ()

let unit_vec n i = Array.init n (fun k -> if k = i then 1 else 0)

let bounds_of dims =
  Array.of_list (List.map (fun d -> (d.dm_base, d.dm_coefs)) dims)

(* Iteration-domain constraint rows for [bounds] occupying variable
   positions [offset .. offset + nd - 1] of an [n]-variable polyhedron:
   [x_i >= 0] and [x_i <= trip_i - 1] with
   [trip_i = base_i + coefs_i . (x_offset, .., x_{offset+i-1})] —
   non-rectangular (triangular, trapezoidal) domains are exactly these
   rows with non-zero outer coefficients.  Where the affine trip is <= 0
   the rows are contradictory, matching the runtime clamp at 0. *)
let domain_rows n ~offset (bounds : (int * int array) array) =
  let rows = ref [] in
  Array.iteri
    (fun i (base, coefs) ->
      rows := Cs.make Cs.Ge (unit_vec n (offset + i)) 0 :: !rows;
      let v = Array.make n 0 in
      v.(offset + i) <- -1;
      Array.iteri (fun k c -> v.(offset + k) <- v.(offset + k) + c) coefs;
      rows := Cs.make Cs.Ge v (base - 1) :: !rows)
    bounds;
  !rows

(* exact inclusive address range of [base + coefs . x] over the
   iteration domain, by rational LP (floor/ceil keeps the integer hull
   inside) *)
let addr_range bounds base coefs =
  let nd = Array.length bounds in
  if nd = 0 then Some (base, base)
  else
    let dom = P.make nd (domain_rows nd ~offset:0 bounds) in
    let obj = Af.of_int_coeffs coefs 0 in
    match (Minisl.Lp.minimize dom obj, Minisl.Lp.maximize dom obj) with
    | Minisl.Lp.Opt mn, Minisl.Lp.Opt mx ->
        Some (base + Rat.floor mn, base + Rat.ceil mx)
    | Minisl.Lp.Infeasible, _ | _, Minisl.Lp.Infeasible ->
        (* empty iteration domain: the access never executes *)
        Some (base, base)
    | _ -> None

let resolve_access b fi dims ~bid ?spec (a : AC.access) out =
  match a.AC.acc_addr with
  | AC.Lin l -> (
      match expand fi l dims ~bid ~fuel:16 with
      | Some (base, coefs) -> (
          let bounds = bounds_of dims in
          match addr_range bounds base coefs with
          | None -> set_reason b a.AC.acc_sid R_range
          | Some (lo, hi) ->
              let region = Points_to.region_of_addr b.b_pta lo in
              let in_region =
                match Points_to.region_range b.b_pta region with
                | Some (rbase, rsize) -> lo >= rbase && hi < rbase + rsize
                | None -> false
              in
              if in_region then begin
                Hashtbl.replace b.b_resolved a.AC.acc_sid
                  { r_sid = a.AC.acc_sid;
                    r_store = a.AC.acc_store;
                    r_fid = fi.fi_fid;
                    r_region = region;
                    r_base = base;
                    r_coefs = coefs;
                    r_bounds = bounds;
                    r_dims =
                      Array.of_list
                        (List.map
                           (fun d -> (d.dm_fid, d.dm_li.AC.li_header))
                           dims);
                    r_sched = [||];  (* filled by the post-construction walk *)
                    r_lo = lo;
                    r_hi = hi;
                    r_spec = spec };
                out :=
                  Dp.Sacc
                    { Dp.sa_sid = a.AC.acc_sid;
                      sa_store = a.AC.acc_store;
                      sa_base = base;
                      sa_coefs = coefs }
                  :: !out
              end
              else set_reason b a.AC.acc_sid R_range)
      | None -> set_reason b a.AC.acc_sid R_nonaffine)
  | AC.Loaded | AC.Mixed | AC.Opaque -> set_reason b a.AC.acc_sid R_nonaffine

(* every static-CFG successor of a non-header member stays in the loop *)
let exits_only_from_header fi (lp : L.loop) =
  List.for_all
    (fun m ->
      m = lp.L.header
      || List.for_all
           (fun s -> List.mem s lp.L.members)
           (Cfg.Digraph.succs fi.fi_graph m))
    lp.L.members

(* Speculation candidate: [bid] is conditionally executed only because
   of a single data-dependent branch in a triangle/diamond shape — its
   unique predecessor [g] is always executed, branches to [bid] and at
   most one other simple block, and both arms rejoin at [bid]'s unique
   successor.  Returns [(guard, then_succ, else_succ, join)]. *)
let spec_candidate b fi ~always bid =
  if not b.b_speculate then None
  else
    match fi.fi_func.blocks.(bid).term with
    | Vm.Isa.Jump join -> (
        match Cfg.Digraph.preds fi.fi_graph bid with
        | [ g ] when always g -> (
            match fi.fi_func.blocks.(g).term with
            | Vm.Isa.Br (_, bt, be) when bt <> be && (bid = bt || bid = be) ->
                let other = if bid = bt then be else bt in
                let other_ok =
                  other = join
                  || (Cfg.Digraph.preds fi.fi_graph other = [ g ]
                     &&
                     match fi.fi_func.blocks.(other).term with
                     | Vm.Isa.Jump j -> j = join
                     | _ -> false)
                in
                if other_ok then Some (g, bt, be, join) else None
            | _ -> None)
        | _ -> None)
    | _ -> None

(* One decision per guard, shared by both arms and stable across the
   walk: an explicit [directions] override wins, otherwise speculate
   that the first arm carrying accesses always executes. *)
let spec_decision b fi (guard, bt, be, join) =
  let key = (fi.fi_fid, guard) in
  match Hashtbl.find_opt b.b_spec_used key with
  | Some d -> d
  | None ->
      let d =
        match List.assoc_opt key b.b_directions with
        | Some d -> d
        | None -> (
            let sides = List.filter (fun s -> s <> join) [ bt; be ] in
            let with_acc =
              List.filter (fun s -> Hashtbl.mem fi.fi_acc s) sides
            in
            match (with_acc, sides) with
            | s :: _, _ | [], s :: _ -> Spec_always s
            | [], [] -> Spec_off)
      in
      Hashtbl.replace b.b_spec_used key d;
      d

let rec emit_func b fid dims out ~visiting =
  let fi = finfo b fid in
  emit_region b fi dims out ~parent:None ~visiting

and emit_region b fi dims out ~parent ~visiting =
  let anchors =
    match parent with
    | None -> fi.fi_exits
    | Some (_, latch) -> [ latch ]
  in
  let always bid =
    anchors <> [] && List.for_all (fun a -> dominates fi bid a) anchors
  in
  let parent_id = Option.map (fun ((l : L.loop), _) -> l.L.loop_id) parent in
  List.iter
    (fun bid ->
      if bid >= 0 && bid < Array.length fi.fi_reach && fi.fi_reach.(bid) then begin
        let as_child_header =
          match L.loop_of_header fi.fi_forest bid with
          | Some lc when lc.L.parent_id = parent_id -> Some lc
          | _ -> None
        in
        match as_child_header with
        | Some lc -> emit_loop b fi dims out ~always ~visiting lc
        | None ->
            let inn =
              Option.map
                (fun (l : L.loop) -> l.L.loop_id)
                (L.innermost_containing fi.fi_forest bid)
            in
            if inn = parent_id then begin
              let is_parent_header =
                match parent with
                | Some ((l : L.loop), _) -> bid = l.L.header
                | None -> false
              in
              if is_parent_header then
                match Hashtbl.find_opt fi.fi_acc bid with
                | Some accs ->
                    List.iter
                      (fun (a : AC.access) ->
                        set_reason b a.AC.acc_sid R_header)
                      accs
                | None -> ()
              else if always bid then begin
                (match Hashtbl.find_opt fi.fi_acc bid with
                | Some accs ->
                    List.iter
                      (fun a -> resolve_access b fi dims ~bid a out)
                      accs
                | None -> ());
                match fi.fi_func.blocks.(bid).term with
                | Vm.Isa.Call { callee; _ }
                  when callee >= 0 && callee < Array.length b.b_prog.funcs ->
                    emit_call b callee dims out ~visiting
                | _ -> ()
              end
              else begin
                match spec_candidate b fi ~always bid with
                | Some ((guard, _, _, _) as cand) -> (
                    match spec_decision b fi cand with
                    | Spec_always t when t = bid -> (
                        match Hashtbl.find_opt fi.fi_acc bid with
                        | Some accs ->
                            List.iter
                              (fun a ->
                                resolve_access b fi dims ~bid
                                  ~spec:(fi.fi_fid, guard, bid) a out)
                              accs
                        | None -> ())
                    | Spec_always _ -> (
                        (* the arm speculated never to execute: exclude
                           its accesses under an [Expect_skip] witness *)
                        match Hashtbl.find_opt fi.fi_acc bid with
                        | Some accs ->
                            List.iter
                              (fun (a : AC.access) ->
                                set_reason b a.AC.acc_sid R_cond;
                                Hashtbl.replace b.b_skipspec a.AC.acc_sid
                                  (fi.fi_fid, guard, bid))
                              accs
                        | None -> ())
                    | Spec_off -> taint_block b fi bid R_cond)
                | None -> taint_block b fi bid R_cond
              end
            end
      end)
    fi.fi_rpo

and emit_call b callee dims out ~visiting =
  if Points_to.func_touched b.b_pta callee <> 0 then
    if List.mem callee visiting then taint b callee R_call
    else if b.b_sites.(callee) = 1 then
      emit_func b callee dims out ~visiting:(callee :: visiting)
    else taint b callee R_call

and emit_loop b fi dims out ~always ~visiting (lc : L.loop) =
  let header = lc.L.header in
  let info = Hashtbl.find_opt fi.fi_li lc.L.loop_id in
  (* the body-execution count as [base + coefs . outer chain coords]:
     constant boxes and unit-step triangular/trapezoidal nests alike *)
  let trip_affine =
    match info with
    | Some (li, _) -> (
        match li.AC.li_trip_lin with
        | Some tl -> expand fi tl dims ~bid:header ~fuel:16
        | None -> None)
    | None -> None
  in
  let modelable =
    trip_affine <> None
    && List.length lc.L.back_edges = 1
    && exits_only_from_header fi lc
    && always header
  in
  match (modelable, info, trip_affine) with
  | true, Some (li, _), Some (tbase, tcoefs) ->
      let latch = fst (List.hd lc.L.back_edges) in
      let d =
        { dm_fid = fi.fi_fid;
          dm_loop_id = lc.L.loop_id;
          dm_li = li;
          dm_base = tbase;
          dm_coefs = tcoefs }
      in
      let body = ref [] in
      emit_region b fi (dims @ [ d ]) body ~parent:(Some (lc, latch)) ~visiting;
      out :=
        Dp.Sloop { sl_base = tbase; sl_coefs = tcoefs; sl_body = List.rev !body }
        :: !out
  | _ ->
      (* the whole region (including nested loops and calls) falls back
         to dynamic tracking *)
      List.iter
        (fun m ->
          if m >= 0 && m < Array.length fi.fi_reach && fi.fi_reach.(m) then
            taint_block b fi m R_loop)
        lc.L.members

(* fill r_sched from the finished chain *)
let rec assign_sched b ~sched_rev items =
  List.iteri
    (fun i item ->
      match item with
      | Dp.Sacc a -> (
          match Hashtbl.find_opt b.b_resolved a.Dp.sa_sid with
          | Some r ->
              Hashtbl.replace b.b_resolved a.Dp.sa_sid
                { r with
                  r_sched = Array.of_list (List.rev (i :: sched_rev)) }
          | None -> ())
      | Dp.Sloop { sl_body; _ } ->
          assign_sched b ~sched_rev:(i :: sched_rev) sl_body)
    items

(* ------------------------------------------------------------------ *)
(* Dependence polyhedra                                                *)
(* ------------------------------------------------------------------ *)

let common_prefix (s : resolved) (d : resolved) =
  let lim = min (Array.length s.r_coefs) (Array.length d.r_coefs) in
  let rec go i =
    if i < lim && s.r_sched.(i) = d.r_sched.(i) then go (i + 1) else i
  in
  go 0

let pair_dep (s : resolved) (d : resolved) kind =
  let ds = Array.length s.r_coefs and dd = Array.length d.r_coefs in
  let n = ds + dd in
  let c = common_prefix s d in
  let base_cons =
    let doms =
      domain_rows n ~offset:0 s.r_bounds @ domain_rows n ~offset:ds d.r_bounds
    in
    let addr = Array.make n 0 in
    Array.iteri (fun i v -> addr.(i) <- v) s.r_coefs;
    Array.iteri (fun j v -> addr.(ds + j) <- -v) d.r_coefs;
    Cs.make Cs.Eq addr (s.r_base - d.r_base) :: doms
  in
  let eq_dim i =
    let v = Array.make n 0 in
    v.(i) <- 1;
    v.(ds + i) <- -1;
    Cs.make Cs.Eq v 0
  in
  let disjuncts =
    let carried =
      List.init c (fun l ->
          (* carried at common dimension l: equal above, strictly
             earlier at l *)
          let eqs = List.init l eq_dim in
          let lt =
            let v = Array.make n 0 in
            v.(ds + l) <- 1;
            v.(l) <- -1;
            Cs.make Cs.Ge v (-1)
          in
          lt :: eqs)
    in
    let independent =
      if s.r_sched.(c) < d.r_sched.(c) then [ List.init c eq_dim ] else []
    in
    carried @ independent
  in
  let feasible =
    List.filter_map
      (fun extra ->
        let p = P.make n (base_cons @ extra) in
        if Minisl.Lp.feasible p then Some p else None)
      disjuncts
  in
  let dirs = Array.make c Dir.Dany in
  let dists = Array.make c None in
  if feasible <> [] then
    for k = 0 to c - 1 do
      let obj =
        Af.of_int_coeffs
          (Array.init n (fun i ->
               if i = ds + k then 1 else if i = k then -1 else 0))
          0
      in
      (* exact LP bounds: [P.bounds] degrades to interval arithmetic
         above its FM dimension limit, which here loses the equality
         couplings between the x and y coordinates *)
      let lp_max p a =
        match Minisl.Lp.maximize p a with
        | Minisl.Lp.Opt r -> Some r
        | Minisl.Lp.Unbounded | Minisl.Lp.Infeasible -> None
      in
      let lo = ref (Some Rat.zero) and hi = ref (Some Rat.zero) in
      let first = ref true in
      List.iter
        (fun p ->
          let plo = Option.map Rat.neg (lp_max p (Af.neg obj))
          and phi = lp_max p obj in
          if !first then begin
            lo := plo;
            hi := phi;
            first := false
          end
          else begin
            lo :=
              (match (!lo, plo) with
              | Some a, Some b -> Some (Rat.min a b)
              | _ -> None);
            hi :=
              (match (!hi, phi) with
              | Some a, Some b -> Some (Rat.max a b)
              | _ -> None)
          end)
        feasible;
      let sgn = Option.map Rat.sign in
      dirs.(k) <-
        (match (sgn !lo, sgn !hi) with
        | Some 0, Some 0 -> Dir.Dzero
        | Some l, _ when l > 0 -> Dir.Dpos
        | _, Some h when h < 0 -> Dir.Dneg
        | Some 0, _ | Some 1, _ -> Dir.Dnonneg
        | _, Some 0 -> Dir.Dnonpos
        | _ -> Dir.Dany);
      dists.(k) <-
        (match (!lo, !hi) with
        | Some a, Some b when Rat.equal a b && Rat.is_integer a ->
            Some (Rat.to_int_exn a)
        | _ -> None)
    done;
  let rel =
    if
      feasible <> [] && ds <= c
      && Array.for_all Option.is_some (Array.sub dists 0 ds)
    then begin
      let delta = Array.init ds (fun k -> Option.get dists.(k)) in
      let cons = ref (domain_rows dd ~offset:0 d.r_bounds) in
      for k = 0 to ds - 1 do
        (* the producer instance y_k - delta_k must exist: in
           particular it must respect the producer's (possibly outer-
           dependent) trip bound evaluated at the producer coordinates *)
        cons := Cs.make Cs.Ge (unit_vec dd k) (-delta.(k)) :: !cons;
        let sb, sc = s.r_bounds.(k) in
        let v = Array.make dd 0 in
        v.(k) <- -1;
        Array.iteri (fun j cj -> v.(j) <- v.(j) + cj) sc;
        let const = ref (sb - 1 + delta.(k)) in
        Array.iteri (fun j cj -> const := !const - (cj * delta.(j))) sc;
        cons := Cs.make Cs.Ge v !const :: !cons
      done;
      let dom = P.make dd !cons in
      if Minisl.Lp.feasible dom then
        let out =
          Array.init ds (fun k ->
              Af.of_int_coeffs (unit_vec dd k) (-delta.(k)))
        in
        Some
          (Minisl.Pmap.make ~in_dim:dd ~out_dim:ds
             [ { Minisl.Pmap.dom; out } ])
      else None
    end
    else None
  in
  { pd_src = s.r_sid;
    pd_dst = d.r_sid;
    pd_kind = kind;
    pd_common = c;
    pd_possible = feasible <> [];
    pd_dirs = dirs;
    pd_dists = dists;
    pd_rel = rel }

(* ------------------------------------------------------------------ *)
(* Whole-program analysis                                              *)
(* ------------------------------------------------------------------ *)

let live_funcs (prog : Vm.Prog.t) (frs : AC.func_result array) =
  let n = Array.length prog.funcs in
  let live = Array.make n false in
  let rec visit fid =
    if fid >= 0 && fid < n && not live.(fid) then begin
      live.(fid) <- true;
      List.iter
        (fun (cs : AC.call_site) -> visit cs.AC.cs_callee)
        frs.(fid).AC.fr_calls
    end
  in
  visit prog.main;
  live

let analyse ?(speculate = false) ?(directions = []) (prog : Vm.Prog.t) =
  Obs.Span.with_ ~cat:"analysis" "analysis.statdep" @@ fun () ->
  let pta = Points_to.analyse prog in
  let frs = AC.analyse_prog prog in
  let live = live_funcs prog frs in
  let n = Array.length prog.funcs in
  let sites = Array.make n 0 in
  Array.iteri
    (fun fid fr ->
      if live.(fid) then
        List.iter
          (fun (cs : AC.call_site) ->
            if cs.AC.cs_callee >= 0 && cs.AC.cs_callee < n then
              sites.(cs.AC.cs_callee) <- sites.(cs.AC.cs_callee) + 1)
          fr.AC.fr_calls)
    frs;
  let b =
    { b_prog = prog;
      b_fis = Array.make n None;
      b_frs = frs;
      b_pta = pta;
      b_sites = sites;
      b_live = live;
      b_resolved = Hashtbl.create 64;
      b_reason = Hashtbl.create 64;
      b_speculate = speculate;
      b_directions = directions;
      b_spec_used = Hashtbl.create 4;
      b_skipspec = Hashtbl.create 4 }
  in
  let out = ref [] in
  emit_func b prog.main [] out ~visiting:[ prog.main ];
  let items = List.rev !out in
  assign_sched b ~sched_rev:[] items;
  (* live reachable accesses; resolution status *)
  let n_accesses = ref 0 in
  let unresolved = ref [] in
  Array.iteri
    (fun fid fr ->
      if b.b_live.(fid) then begin
        let fi = finfo b fid in
        List.iter
          (fun (a : AC.access) ->
            let bid = Vm.Isa.Sid.bid a.AC.acc_sid in
            if bid >= 0 && bid < Array.length fi.fi_reach && fi.fi_reach.(bid)
            then begin
              incr n_accesses;
              if not (Hashtbl.mem b.b_resolved a.AC.acc_sid) then
                unresolved :=
                  ( a.AC.acc_sid,
                    a.AC.acc_store,
                    Option.value ~default:R_cond
                      (Hashtbl.find_opt b.b_reason a.AC.acc_sid) )
                  :: !unresolved
            end)
          fr.AC.fr_accesses
      end)
    frs;
  let unresolved = List.sort compare !unresolved in
  (* prunable regions: every access that may touch the region (per
     points-to) is resolved *)
  let nreg = Points_to.n_regions pta in
  let prunable = Array.make nreg true in
  prunable.(0) <- false;
  List.iter
    (fun (sid, _store, mask) ->
      let fid = Vm.Isa.Sid.fid sid in
      let bid = Vm.Isa.Sid.bid sid in
      let live_acc =
        fid >= 0 && fid < n && b.b_live.(fid)
        &&
        let fi = finfo b fid in
        bid >= 0 && bid < Array.length fi.fi_reach && fi.fi_reach.(bid)
      in
      if
        live_acc
        && not (Hashtbl.mem b.b_resolved sid)
        && not (Hashtbl.mem b.b_skipspec sid)
        (* speculatively never-executed: guarded by an Expect_skip
           witness below instead of blocking prunability *)
      then
        for r = 1 to nreg - 1 do
          if mask land (1 lsl r) <> 0 then prunable.(r) <- false
        done)
    (Points_to.accesses pta);
  let pruned = Hashtbl.create 64 in
  Hashtbl.iter
    (fun sid (r : resolved) ->
      if r.r_region > 0 && r.r_region < nreg && prunable.(r.r_region) then
        Hashtbl.replace pruned sid ())
    b.b_resolved;
  (* the instrumentation-pruning plan: the chain restricted to pruned
     accesses, loops left with empty bodies dropped *)
  let rec filter_items items =
    List.filter_map
      (fun item ->
        match item with
        | Dp.Sacc a -> if Hashtbl.mem pruned a.Dp.sa_sid then Some item else None
        | Dp.Sloop { sl_base; sl_coefs; sl_body } -> (
            match filter_items sl_body with
            | [] -> None
            | body -> Some (Dp.Sloop { sl_base; sl_coefs; sl_body = body })))
      items
  in
  let sp_resolved = Hashtbl.create 64 in
  Hashtbl.iter
    (fun sid (r : resolved) ->
      if Hashtbl.mem pruned sid then
        Hashtbl.replace sp_resolved sid
          { Dp.sa_sid = sid;
            sa_store = r.r_store;
            sa_base = r.r_base;
            sa_coefs = r.r_coefs })
    b.b_resolved;
  (* witnesses: every speculation that is load-bearing for the pruned
     set ships as a runtime probe.  [Expect_taken] when a pruned access
     was resolved under the speculation; [Expect_skip] when an excluded
     arm's accesses may touch a prunable region (unknown masks are
     probed conservatively). *)
  let acc_mask = Hashtbl.create 16 in
  List.iter
    (fun (sid, _store, mask) ->
      let m = Option.value ~default:0 (Hashtbl.find_opt acc_mask sid) in
      Hashtbl.replace acc_mask sid (m lor mask))
    (Points_to.accesses pta);
  let wit = Hashtbl.create 4 in
  Hashtbl.iter
    (fun sid (r : resolved) ->
      if Hashtbl.mem pruned sid then
        match r.r_spec with
        | Some (fid, guard, blk) ->
            Hashtbl.replace wit
              { Dp.w_fid = fid;
                w_guard = guard;
                w_block = blk;
                w_expect = Dp.Expect_taken }
              ()
        | None -> ())
    b.b_resolved;
  Hashtbl.iter
    (fun sid (fid, guard, blk) ->
      let mask = Option.value ~default:0 (Hashtbl.find_opt acc_mask sid) in
      let touches_prunable =
        mask = 0
        ||
        let t = ref false in
        for r = 1 to nreg - 1 do
          if prunable.(r) && mask land (1 lsl r) <> 0 then t := true
        done;
        !t
      in
      if touches_prunable then
        Hashtbl.replace wit
          { Dp.w_fid = fid;
            w_guard = guard;
            w_block = blk;
            w_expect = Dp.Expect_skip }
          ())
    b.b_skipspec;
  let sp_witnesses =
    List.sort compare (Hashtbl.fold (fun w () acc -> w :: acc) wit [])
  in
  let plan =
    { Dp.sp_items = filter_items items;
      sp_resolved;
      sp_witnesses;
      sp_mem_size = prog.mem_size }
  in
  (* static dependence summaries over resolved same-region pairs *)
  let by_region = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (r : resolved) ->
      if r.r_region > 0 then
        Hashtbl.replace by_region r.r_region
          (r :: Option.value ~default:[] (Hashtbl.find_opt by_region r.r_region)))
    b.b_resolved;
  let pairs = ref [] in
  Hashtbl.iter
    (fun _ accs ->
      let accs = List.sort (fun a b' -> compare a.r_sid b'.r_sid) accs in
      List.iter
        (fun s ->
          if s.r_store then
            List.iter
              (fun d ->
                let kind = if d.r_store then Dp.Out_dep else Dp.Mem_dep in
                pairs := pair_dep s d kind :: !pairs)
              accs)
        accs)
    by_region;
  let pairs =
    List.sort
      (fun a b' ->
        compare (a.pd_src, a.pd_dst, a.pd_kind) (b'.pd_src, b'.pd_dst, b'.pd_kind))
      !pairs
  in
  { prog;
    pta;
    resolved = b.b_resolved;
    unresolved;
    prunable;
    pruned;
    pairs;
    plan;
    n_accesses = !n_accesses;
    speculated =
      List.sort compare
        (Hashtbl.fold (fun k d acc -> (k, d) :: acc) b.b_spec_used []);
    skip_spec = b.b_skipspec }

(* ------------------------------------------------------------------ *)
(* Witness refinement and hybrid fallback                              *)
(* ------------------------------------------------------------------ *)

let refine t ~directions (outcomes : Dp.witness_outcome list) =
  let dirs = ref directions in
  List.iter
    (fun (o : Dp.witness_outcome) ->
      if o.Dp.wo_misses > 0 then begin
        let w = o.Dp.wo_witness in
        let key = (w.Dp.w_fid, w.Dp.w_guard) in
        let d =
          if o.Dp.wo_hits > 0 || List.mem_assoc key directions then
            (* branch goes both ways (or a flipped speculation failed
               again): give up on this guard *)
            Spec_off
          else
            (* monotone miss: the branch is one-sided, just not the
               side we guessed — flip deterministically *)
            match t.prog.funcs.(w.Dp.w_fid).blocks.(w.Dp.w_guard).term with
            | Vm.Isa.Br (_, bt, be) -> (
                match w.Dp.w_expect with
                | Dp.Expect_taken ->
                    Spec_always (if w.Dp.w_block = bt then be else bt)
                | Dp.Expect_skip -> Spec_always w.Dp.w_block)
            | _ -> Spec_off
        in
        dirs := (key, d) :: List.remove_assoc key !dirs
      end)
    outcomes;
  List.sort compare !dirs

let fallback_profile ?(speculate = true) prog ~profile =
  let rec go directions reruns =
    let t = analyse ~speculate ~directions prog in
    match profile t.plan with
    | r -> (t, r, reruns)
    | exception Dp.Witness_failure outcomes ->
        if reruns >= 4 then begin
          (* refinement did not converge: demote everything speculative
             to full shadow tracking *)
          let t = analyse ~speculate:false prog in
          (t, profile t.plan, reruns + 1)
        end
        else go (refine t ~directions outcomes) (reruns + 1)
  in
  go [] 0

(* ------------------------------------------------------------------ *)
(* Queries and pretty-printing                                         *)
(* ------------------------------------------------------------------ *)

let pair_of t ~src ~dst kind =
  List.find_opt
    (fun p -> p.pd_src = src && p.pd_dst = dst && p.pd_kind = kind)
    t.pairs

let n_resolved t = Hashtbl.length t.resolved
let n_pruned t = Hashtbl.length t.pruned

let prunable_regions t =
  let names = ref [] in
  Array.iteri
    (fun r p -> if p then names := Points_to.region_name t.pta r :: !names)
    t.prunable;
  List.rev !names

let pp fmt t =
  Format.fprintf fmt
    "@[<v>static dependence engine: %d/%d accesses resolved, %d prunable \
     (regions: %s)@,"
    (n_resolved t) t.n_accesses (n_pruned t)
    (match prunable_regions t with
    | [] -> "none"
    | rs -> String.concat ", " rs);
  Hashtbl.fold (fun _ r acc -> r :: acc) t.resolved []
  |> List.sort (fun a b -> compare a.r_sid b.r_sid)
  |> List.iter (fun r ->
         Format.fprintf fmt "  %s %a: %s[%d..%d]%s@,"
           (if r.r_store then "store" else "load")
           Vm.Isa.Sid.pp r.r_sid
           (Points_to.region_name t.pta r.r_region)
           r.r_lo r.r_hi
           (if Hashtbl.mem t.pruned r.r_sid then " (pruned)" else ""));
  List.iter
    (fun (sid, store, reason) ->
      Format.fprintf fmt "  %s %a: dynamic (%s)@,"
        (if store then "store" else "load")
        Vm.Isa.Sid.pp sid (reason_code reason))
    t.unresolved;
  List.iter
    (fun p ->
      if p.pd_possible then begin
        Format.fprintf fmt "  dep %a -> %a [%s] dirs ("
          Vm.Isa.Sid.pp p.pd_src Vm.Isa.Sid.pp p.pd_dst
          (match p.pd_kind with
          | Dp.Mem_dep -> "flow"
          | Dp.Out_dep -> "out"
          | Dp.Reg_dep -> "reg");
        Array.iteri
          (fun i d ->
            if i > 0 then Format.pp_print_string fmt ", ";
            Dir.pp_dir fmt d)
          p.pd_dirs;
        Format.fprintf fmt ")@,"
      end)
    t.pairs;
  Format.fprintf fmt "@]"
