(** Flow-insensitive Andersen-style points-to analysis over MiniVM
    bytecode.

    Memory is partitioned into the program's named global regions (one
    abstract object per [Prog.globals] entry) plus a distinguished
    {e outside} pseudo-region (index 0) covering everything else —
    unnamed scratch addresses and values whose provenance is unknown.
    Every register of every function gets a {e may-point-to} set of
    regions, computed as the least fixpoint of inclusion constraints in
    the usual Andersen style:

    - [Const r, c] — [r ⊇ {region containing c}] (a constant inside a
      named region is a base pointer into it; any other constant is an
      outside value);
    - [Mov]/[Bin]/[Itof]/[Ftoi] — set union of the operands (pointer
      arithmetic under the {e region-respecting object model}: an
      address stays within the region of its base term);
    - [Load r, a] — [r ⊇ content(R)] for every region [R] the address
      may point into;
    - [Store (a, v)] — [content(R) ⊇ pts(v)] for every such [R];
    - calls — argument sets flow into callee parameters, returned sets
      into the call destination.

    Float/comparison results carry only the outside bit: they are
    offsets, not base pointers.  Region contents start as the
    points-to set of the constant 0 (MiniVM memory is zero-filled).

    Sets are bit masks ([int]); programs with more than 62 named
    regions degrade soundly to "everything aliases everything". *)

type t

val analyse : Vm.Prog.t -> t

val n_regions : t -> int
(** Named regions + 1 (index 0 is the outside pseudo-region). *)

val region_name : t -> int -> string

val region_range : t -> int -> (int * int) option
(** [(base, size)] of a named region; [None] for outside. *)

val region_of_addr : t -> int -> int
(** Region index containing a concrete address (0 when in no named
    region). *)

val regions_of_operand : t -> fid:int -> Vm.Isa.operand -> int
(** May-point-to mask of an address operand in function [fid]. *)

val access_mask : t -> Vm.Isa.Sid.t -> int option
(** May-point-to mask of the address of the [Load]/[Store] at [sid];
    [None] if [sid] is not a memory access. *)

val accesses : t -> (Vm.Isa.Sid.t * bool * int) list
(** Every memory access: sid, is-store, address mask. *)

val func_touched : t -> int -> int
(** Mask of regions function [fid] may access, transitively through
    calls (0 = provably memory-access-free, e.g. the libm stand-ins). *)

val may_alias : int -> int -> bool
(** Non-empty mask intersection. *)

val pp : Format.formatter -> t -> unit
