let reachable_blocks (f : Vm.Prog.func) =
  let g = Insn.static_cfg f in
  let n = Array.length f.blocks in
  let reach = Array.make n false in
  if n > 0 then
    List.iter
      (fun b -> if b >= 0 && b < n then reach.(b) <- true)
      (Cfg.Digraph.reverse_postorder g ~root:0);
  reach

let verify (prog : Vm.Prog.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* structural layer *)
  List.iter
    (fun (e : Vm.Prog.wf_error) ->
      add
        (Diag.error ~code:"E-struct" ~fid:e.wf_fid
           (if e.wf_bid >= 0 then Printf.sprintf "b%d: %s" e.wf_bid e.wf_msg
            else e.wf_msg)))
    (Vm.Prog.wf_errors prog);
  (* pass 1: reachability per function, and which functions reachable
     code calls *)
  let reach = Array.map reachable_blocks prog.funcs in
  let called = Hashtbl.create 16 in
  Array.iteri
    (fun fid (f : Vm.Prog.func) ->
      Array.iteri
        (fun bid (b : Vm.Prog.block) ->
          match b.term with
          | Vm.Isa.Call { callee; _ }
            when reach.(fid).(bid)
                 && callee >= 0
                 && callee < Array.length prog.funcs ->
              Hashtbl.replace called callee ()
          | _ -> ())
        f.blocks)
    prog.funcs;
  (* pass 2: CFG-level diagnostics *)
  Array.iteri
    (fun fid (f : Vm.Prog.func) ->
      Array.iteri
        (fun bid (b : Vm.Prog.block) ->
          if not reach.(fid).(bid) then
            add
              (Diag.warning
                 ~sid:(Vm.Isa.Sid.make ~fid ~bid ~idx:0)
                 ~code:"W-unreachable" ~fid
                 (Printf.sprintf
                    "block b%d is unreachable from the function entry" bid))
          else
            match b.term with
            | Vm.Isa.Ret _
              when fid = prog.main && not (Hashtbl.mem called prog.main) ->
                (* in a frame that can only ever be the bottom of the
                   stack, ret is a guaranteed interpreter trap *)
                add
                  (Diag.error ~sid:(Insn.term_sid ~fid b)
                     ~code:"E-ret-in-main" ~fid
                     "ret reachable in main (the interpreter traps; use halt)")
            | _ -> ())
        f.blocks;
      if fid <> prog.main && not (Hashtbl.mem called fid) then
        add
          (Diag.info ~code:"I-dead-func" ~fid
             (Printf.sprintf "function %s is never called from reachable code"
                f.fname)))
    prog.funcs;
  List.sort Diag.compare !diags

let errors ds = List.filter Diag.is_error ds
let ok prog = errors (verify prog) = []
