(** Static affine classification of memory accesses, directly on MiniVM
    bytecode (the static counterpart of the dynamic SCEV recognition in
    {!Ddg.Depprof}, sharing its failure vocabulary with
    {!Staticbase.Polly_lite}).

    Per function, the pass rediscovers the loop-nesting forest of the
    *static* CFG ({!Insn.static_cfg} + {!Cfg.Loopnest}), identifies each
    loop's induction registers (the unique in-region definition is
    [r := r + c]), and abstractly interprets every register as a linear
    expression over induction symbols and symbolic parameters.  Every
    [Load]/[Store] address is then classified:

    - [Lin] — affine in loop counters and parameters (Polly would model
      the access);
    - [Loaded] — the address root was itself loaded from memory: the
      paper's "base pointer not loop invariant" code [P];
    - [Mixed] — a loaded value participates non-additively (indirect
      index, [a[b[i]]]): code [F];
    - [Opaque] — not provably affine: code [F].

    When a loop's bounds and step are compile-time constants, induction
    symbols additionally carry a concrete range, giving each affine
    access an inclusive over-approximate address interval — the raw
    material for the static-independence facts used by {!Crosscheck}.
    {!analyse_prog} sharpens this interprocedurally by propagating
    constant call arguments into parameters (merging over all call
    sites), so kernels called with literal sizes and base addresses
    classify as tightly as [main] itself. *)

type sym =
  | Ind of { loop : int; ind_reg : Vm.Isa.reg }
      (** value of induction register [ind_reg] of loop [loop] (a
          {!Cfg.Loopnest.loop} id) at the current header entry *)
  | Par of int  (** function parameter (register index), symbolic *)

type lin = {
  lbase : int;
  lterms : (sym * int) list;  (** sorted, no zero coefficients *)
}

type value = Lin of lin | Loaded | Mixed | Opaque

type access = {
  acc_sid : Vm.Isa.Sid.t;
  acc_store : bool;
  acc_addr : value;  (** abstract address *)
  acc_range : (int * int) option;
      (** inclusive over-approximation of every address this access can
          touch; [None] unless provable *)
  acc_depth : int;  (** static loop nesting depth of the access *)
}

val classify :
  access -> [ `Affine of lin | `Nonaffine of Staticbase.Polly_lite.reason ]

val class_code : access -> string
(** ["-"] for affine, otherwise the {!Staticbase.Polly_lite} reason
    letter (["F"] or ["P"]). *)

type call_site = {
  cs_callee : int;
  cs_sid : Vm.Isa.Sid.t;
  cs_args : int option array;  (** per argument: compile-time constant? *)
}

type loop_info = {
  li_id : int;  (** {!Cfg.Loopnest.loop} id *)
  li_header : int;
  li_trip : int option;
      (** compile-time body-execution count, from the branching counter
          of the lowered for-loop idiom; [None] when bounds are not
          constant *)
  li_trip_lin : lin option;
      (** body-execution count as a linear expression over enclosing
          induction symbols, clamped at 0 by consumers: a constant when
          [li_trip] is set, affine in outer counters for unit-step
          triangular/trapezoidal nests, [None] when bounds are not
          affine *)
  li_counters : (Vm.Isa.reg * lin option * int) list;
      (** every induction register with its entry value (joined over
          loop entries from outside the region, [None] when not affine)
          and step; [Ind] symbols of this loop evaluate to
          [entry + k*step] at body iteration [k] *)
}

type func_result = {
  fr_fid : int;
  fr_forest : Cfg.Loopnest.t;  (** of the static CFG *)
  fr_accesses : access list;  (** in (bid, idx) order, reachable code only *)
  fr_calls : call_site list;
  fr_loops : loop_info list;  (** one summary per static loop *)
}

val n_affine : func_result -> int

val analyse_func :
  ?param_value:(int -> int option) -> Vm.Prog.t -> int -> func_result
(** [param_value i] gives a known compile-time constant for parameter
    [i], as established by interprocedural propagation (default: all
    parameters symbolic). *)

val analyse_prog : Vm.Prog.t -> func_result array
(** All functions, with constant call arguments propagated callee-wards
    to a fixpoint (a parameter becomes constant when every static call
    site passes the same compile-time constant). *)

val pp_value : Format.formatter -> value -> unit
val pp_access : Format.formatter -> access -> unit
