module ISet = Set.Make (Int)

module L = struct
  type t = ISet.t

  let equal = ISet.equal
  let join = ISet.union
end

module Engine = Dataflow.Make (L)

let kill s = function Some r -> ISet.remove r s | None -> s
let gen s uses = List.fold_left (fun s r -> ISet.add r s) s uses

(* live-in of a block from the live-out state *)
let transfer_block (f : Vm.Prog.func) bid live_out =
  let b = f.blocks.(bid) in
  let live = gen (kill live_out (Insn.term_def b.term)) (Insn.term_uses b.term) in
  let live = ref live in
  for idx = Array.length b.instrs - 1 downto 0 do
    let i = b.instrs.(idx) in
    live := gen (kill !live (Insn.instr_def i)) (Insn.instr_uses i)
  done;
  !live

let solve (f : Vm.Prog.func) =
  let n_blocks = Array.length f.blocks in
  let graph = Insn.static_cfg f in
  let exits =
    Array.to_list f.blocks
    |> List.filter_map (fun (b : Vm.Prog.block) ->
           match b.term with
           | Vm.Isa.Ret _ | Vm.Isa.Halt -> Some b.bid
           | _ -> None)
  in
  Engine.run ~dir:Dataflow.Backward ~graph ~n_blocks ~entry:exits
    ~boundary:ISet.empty ~init:ISet.empty
    ~transfer:(fun bid s -> transfer_block f bid s)

let live_in f bid =
  let { Engine.block_out; _ } = solve f in
  ISet.elements block_out.(bid)

let check_func (prog : Vm.Prog.t) fid =
  let f = prog.funcs.(fid) in
  let { Engine.block_in; _ } = solve f in
  (* block_in (backward) = live-out of the block *)
  let diags = ref [] in
  let reach = Verify.reachable_blocks f in
  Array.iteri
    (fun bid (b : Vm.Prog.block) ->
      if reach.(bid) then begin
        let live =
          gen
            (kill block_in.(bid) (Insn.term_def b.term))
            (Insn.term_uses b.term)
        in
        let live = ref live in
        for idx = Array.length b.instrs - 1 downto 0 do
          let i = b.instrs.(idx) in
          (match Insn.instr_def i with
          | Some r when not (ISet.mem r !live) ->
              diags :=
                Diag.warning
                  ~sid:(Vm.Isa.Sid.make ~fid ~bid ~idx)
                  ~code:"W-dead-store" ~fid
                  (Format.asprintf
                     "dead store: result r%d of `%a' is never read" r
                     Vm.Isa.pp_instr i)
                :: !diags
          | _ -> ());
          live := gen (kill !live (Insn.instr_def i)) (Insn.instr_uses i)
        done
      end)
    f.blocks;
  (* parameters nobody reads *)
  let used = Hashtbl.create 16 in
  Array.iteri
    (fun bid (b : Vm.Prog.block) ->
      if reach.(bid) then begin
        Array.iter
          (fun i -> List.iter (fun r -> Hashtbl.replace used r ()) (Insn.instr_uses i))
          b.instrs;
        List.iter (fun r -> Hashtbl.replace used r ()) (Insn.term_uses b.term)
      end)
    f.blocks;
  for p = 0 to f.n_params - 1 do
    if not (Hashtbl.mem used p) then
      diags :=
        Diag.info ~code:"I-dead-param" ~fid
          (Printf.sprintf "parameter r%d of %s is never read" p f.fname)
        :: !diags
  done;
  List.sort Diag.compare !diags

let check prog =
  Array.to_list prog.Vm.Prog.funcs
  |> List.concat_map (fun (f : Vm.Prog.func) -> check_func prog f.fid)
