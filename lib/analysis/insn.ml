let operand_regs = function Vm.Isa.Reg r -> [ r ] | Vm.Isa.Imm _ -> []

let instr_uses = function
  | Vm.Isa.Const _ | Vm.Isa.Fconst _ -> []
  | Vm.Isa.Mov (_, o) | Vm.Isa.Load (_, o) | Vm.Isa.Itof (_, o)
  | Vm.Isa.Ftoi (_, o) ->
      operand_regs o
  | Vm.Isa.Bin (_, _, a, b) | Vm.Isa.Fbin (_, _, a, b)
  | Vm.Isa.Cmp (_, _, a, b) | Vm.Isa.Fcmp (_, _, a, b) ->
      operand_regs a @ operand_regs b
  | Vm.Isa.Store (a, v) -> operand_regs a @ operand_regs v

let instr_def = function
  | Vm.Isa.Const (r, _) | Vm.Isa.Fconst (r, _) | Vm.Isa.Mov (r, _)
  | Vm.Isa.Bin (_, r, _, _) | Vm.Isa.Fbin (_, r, _, _)
  | Vm.Isa.Cmp (_, r, _, _) | Vm.Isa.Fcmp (_, r, _, _) | Vm.Isa.Load (r, _)
  | Vm.Isa.Itof (r, _) | Vm.Isa.Ftoi (r, _) ->
      Some r
  | Vm.Isa.Store _ -> None

let term_uses = function
  | Vm.Isa.Jump _ | Vm.Isa.Halt -> []
  | Vm.Isa.Br (c, _, _) -> operand_regs c
  | Vm.Isa.Call { args; _ } -> List.concat_map operand_regs args
  | Vm.Isa.Ret v -> ( match v with Some o -> operand_regs o | None -> [])

let term_def = function
  | Vm.Isa.Call { dst; _ } -> dst
  | Vm.Isa.Jump _ | Vm.Isa.Br _ | Vm.Isa.Ret _ | Vm.Isa.Halt -> None

let term_succs = function
  | Vm.Isa.Jump d -> [ d ]
  | Vm.Isa.Br (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Vm.Isa.Call { cont; _ } -> [ cont ]
  | Vm.Isa.Ret _ | Vm.Isa.Halt -> []

let n_regs (f : Vm.Prog.func) =
  let top = ref (f.n_params - 1) in
  let see r = if r > !top then top := r in
  Array.iter
    (fun (b : Vm.Prog.block) ->
      Array.iter
        (fun i ->
          List.iter see (instr_uses i);
          Option.iter see (instr_def i))
        b.instrs;
      List.iter see (term_uses b.term);
      Option.iter see (term_def b.term))
    f.blocks;
  !top + 1

let static_cfg (f : Vm.Prog.func) =
  let g = Cfg.Digraph.create () in
  let n = Array.length f.blocks in
  Array.iter
    (fun (b : Vm.Prog.block) ->
      Cfg.Digraph.add_node g b.bid;
      List.iter
        (fun dst -> if dst >= 0 && dst < n then Cfg.Digraph.add_edge g b.bid dst)
        (term_succs b.term))
    f.blocks;
  g

let term_sid ~fid (b : Vm.Prog.block) =
  Vm.Isa.Sid.make ~fid ~bid:b.bid ~idx:(Array.length b.instrs)
