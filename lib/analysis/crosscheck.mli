(** Static-vs-dynamic dependence cross-checker.

    From the {!Affine_class} results, any two memory accesses in the
    same function whose over-approximate address intervals are disjoint
    are *provably independent*: no execution can make them touch the
    same location, so no [Mem_dep]/[Out_dep] edge may connect them.  The
    dynamic profiler of {!Ddg.Depprof} must agree — a dependence edge
    between a provably-disjoint pair means either the static ranges or
    the shadow-memory bookkeeping is wrong.  This makes the checker a
    sanitizer for the profiler itself, in the spirit of the paper's
    validation experiments.

    Only edges whose two endpoints both carry a static range are
    checked; everything else is out of the static analysis' reach and is
    counted in [skipped_edges]. *)

type report = {
  n_accesses : int;  (** accesses seen by the static classifier *)
  n_ranged : int;  (** of which carry a provable address interval *)
  facts : int;
      (** provably-independent (disjoint-interval) pairs involving at
          least one store, i.e. pairs a dependence could connect *)
  checked_edges : int;
      (** dynamic [Mem_dep]/[Out_dep] edges with both endpoints ranged *)
  skipped_edges : int;  (** memory edges out of static reach *)
  violations : Diag.t list;
      (** one [Error] ([E-crosscheck]) per edge contradicting a fact *)
}

val check : Vm.Prog.t -> Ddg.Depprof.result -> report
val ok : report -> bool
val pp_report : Format.formatter -> report -> unit
