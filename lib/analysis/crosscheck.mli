(** Static-vs-dynamic dependence cross-checker.

    From the {!Affine_class} results, any two memory accesses in the
    same function whose over-approximate address intervals are disjoint
    are *provably independent*: no execution can make them touch the
    same location, so no [Mem_dep]/[Out_dep] edge may connect them.  The
    dynamic profiler of {!Ddg.Depprof} must agree — a dependence edge
    between a provably-disjoint pair means either the static ranges or
    the shadow-memory bookkeeping is wrong.  This makes the checker a
    sanitizer for the profiler itself, in the spirit of the paper's
    validation experiments.

    Only edges whose two endpoints both carry a static range are
    interval-checked; everything else is out of the interval analysis'
    reach and counted in [skipped_edges], broken down by reason.

    On top of the interval facts, the checker consults the exact
    {!Statdep} engine:

    - {e polyhedral may-check}: a dynamic edge between two
      statically-resolved accesses must be allowed by the pair's
      dependence polyhedra ([E-crosscheck-poly] otherwise) — exact
      emptiness, not interval disjointness;
    - {e simulation must/may check}: the plan's last-writer simulation
      predicts the exact dependence set over pruned accesses; a dynamic
      edge between pruned accesses the simulation does not produce, or
      a simulated flow edge (between non-SCEV statements) missing from
      the dynamic DDG, is an [E-crosscheck-sim] violation.  Skipped
      when the profiled run's execution counts diverge from the plan
      (truncated run) or nothing was pruned.

    At most one violation is reported per (src, dst, kind) dependence,
    the cheapest refutation first. *)

type report = {
  n_accesses : int;  (** accesses seen by the static classifier *)
  n_ranged : int;  (** of which carry a provable address interval *)
  facts : int;
      (** provably-independent (disjoint-interval) pairs involving at
          least one store, i.e. pairs a dependence could connect *)
  checked_edges : int;
      (** dynamic [Mem_dep]/[Out_dep] edges with both endpoints ranged *)
  skipped_edges : int;  (** memory edges out of the interval facts' reach *)
  skip_norange : int;
      (** of which: an endpoint without a static range, same function *)
  skip_crossfn : int;
      (** of which: endpoints in different functions (and not both
          ranged) *)
  poly_pairs : int;  (** static pair summaries built by {!Statdep} *)
  poly_checked : int;
      (** dynamic edges with both endpoints resolved, checked against
          dependence polyhedra *)
  sim_must : int;  (** simulated flow edges verified present in the DDG *)
  sim_may : int;  (** dynamic pruned-pair edges verified simulated *)
  sim_skipped : bool;
      (** the simulation comparison did not apply (nothing pruned, or
          the dynamic execution counts diverge from the plan) *)
  sim_skip_reason : string option;
      (** why, when [sim_skipped]; [None] when the comparison ran *)
  sim_witnesses : int;
      (** witness probes carried by the (non-speculative) plan the
          checker analysed — expected 0; reported for visibility *)
  violations : Diag.t list;
      (** one [Error] per contradicting dependence ([E-crosscheck],
          [E-crosscheck-poly] or [E-crosscheck-sim]) *)
}

val check : Vm.Prog.t -> Ddg.Depprof.result -> report
val ok : report -> bool
val pp_report : Format.formatter -> report -> unit
