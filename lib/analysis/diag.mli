(** Diagnostics shared by all static-analysis passes.

    A diagnostic carries a machine-checkable code (stable across message
    rewordings, used by the tests), a severity, and a location: the
    owning function plus, when the problem is tied to one instruction or
    terminator, a static id.  Terminators are addressed by the index one
    past the last instruction of their block, mirroring how
    {!Vm.Prog.n_static_instrs} counts them. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** e.g. "E-target", "W-uninit", "E-crosscheck" *)
  fid : int;
  sid : Vm.Isa.Sid.t option;  (** [None] for function-level diagnostics *)
  message : string;
}

val error : ?sid:Vm.Isa.Sid.t -> code:string -> fid:int -> string -> t
val warning : ?sid:Vm.Isa.Sid.t -> code:string -> fid:int -> string -> t
val info : ?sid:Vm.Isa.Sid.t -> code:string -> fid:int -> string -> t

val is_error : t -> bool
val count : severity -> t list -> int

val compare : t -> t -> int
(** Errors first, then by function, location and code. *)

val pp : ?prog:Vm.Prog.t -> unit -> Format.formatter -> t -> unit
(** With [?prog], function ids are rendered as names. *)

val to_string : ?prog:Vm.Prog.t -> t -> string
