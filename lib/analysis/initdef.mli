(** Definite initialization: a forward must-analysis over the set of
    definitely-assigned registers (join = intersection, i.e. assigned on
    *every* path).  Parameters arrive assigned; a [Call] assigns its
    destination on the edge to the continuation block.

    A register read before any definition on some path is reported as
    [W-uninit] — a warning, not an error, because MiniVM frames zero-fill
    on demand, so the read is well-defined but almost certainly a
    front-end bug (the HIR lowerer rejects syntactic use-before-def, but
    a conditionally-assigned variable can still slip through). *)

val check_func : Vm.Prog.t -> int -> Diag.t list
val check : Vm.Prog.t -> Diag.t list
