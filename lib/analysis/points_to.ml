(* Flow-insensitive Andersen-style points-to over MiniVM bytecode.
   Regions: index 0 = outside pseudo-region, 1.. = named globals in
   [Prog.globals] order.  Sets are int bit masks; > 62 named regions
   degrades to the all-regions mask everywhere (sound, nothing
   prunable). *)

type t = {
  prog : Vm.Prog.t;
  regions : (string * int * int) array;  (** named: name, base, size *)
  all_mask : int;
  degraded : bool;
  pts : int array array;  (** per fid, per reg *)
  content : int array;  (** per region index *)
  ret_pts : int array;  (** per fid *)
  touched : int array;  (** per fid, transitively *)
  access : (Vm.Isa.Sid.t, bool * int) Hashtbl.t;
}

let n_regions t = Array.length t.regions + 1

let region_name t i =
  if i = 0 then "outside"
  else
    let name, _, _ = t.regions.(i - 1) in
    name

let region_range t i =
  if i = 0 then None
  else
    let _, base, size = t.regions.(i - 1) in
    Some (base, size)

let region_of_addr t a =
  let n = Array.length t.regions in
  let rec go i =
    if i >= n then 0
    else
      let _, base, size = t.regions.(i) in
      if a >= base && a < base + size then i + 1 else go (i + 1)
  in
  go 0

let const_pts t c = if t.degraded then t.all_mask else 1 lsl region_of_addr t c

let may_alias a b = a land b <> 0

let regs_of (f : Vm.Prog.func) = Insn.n_regs f

let analyse (prog : Vm.Prog.t) =
  let regions = Array.of_list prog.globals in
  let n_named = Array.length regions in
  let degraded = n_named > 62 in
  let all_mask =
    if degraded then -1 else (1 lsl (n_named + 1)) - 1
  in
  let t =
    { prog;
      regions;
      all_mask;
      degraded;
      pts =
        Array.map (fun f -> Array.make (max 1 (regs_of f)) 0) prog.funcs;
      content = Array.make (n_named + 1) 0;
      ret_pts = Array.make (Array.length prog.funcs) 0;
      touched = Array.make (Array.length prog.funcs) 0;
      access = Hashtbl.create 64 }
  in
  (* zero-filled memory: contents start as the set of the constant 0 *)
  let zero = const_pts t 0 in
  Array.iteri (fun i _ -> t.content.(i) <- zero) t.content;
  let changed = ref true in
  let union_reg fid r mask =
    let row = t.pts.(fid) in
    if r < Array.length row && row.(r) lor mask <> row.(r) then begin
      row.(r) <- row.(r) lor mask;
      changed := true
    end
  in
  let union_content mask_regions mask =
    for i = 0 to Array.length t.content - 1 do
      if mask_regions land (1 lsl i) <> 0 && t.content.(i) lor mask <> t.content.(i)
      then begin
        t.content.(i) <- t.content.(i) lor mask;
        changed := true
      end
    done
  in
  let ev fid = function
    | Vm.Isa.Imm c -> const_pts t c
    | Vm.Isa.Reg r ->
        let row = t.pts.(fid) in
        if r < Array.length row then row.(r) else 0
  in
  let content_of mask =
    let acc = ref 0 in
    for i = 0 to Array.length t.content - 1 do
      if mask land (1 lsl i) <> 0 then acc := !acc lor t.content.(i)
    done;
    !acc
  in
  let rounds = ref 0 in
  while !changed && !rounds < 1000 do
    changed := false;
    incr rounds;
    Array.iteri
      (fun fid (f : Vm.Prog.func) ->
        Array.iter
          (fun (b : Vm.Prog.block) ->
            Array.iter
              (fun i ->
                match i with
                | Vm.Isa.Const (r, c) -> union_reg fid r (const_pts t c)
                | Vm.Isa.Fconst (r, _) -> union_reg fid r 1
                | Vm.Isa.Mov (r, o)
                | Vm.Isa.Itof (r, o)
                | Vm.Isa.Ftoi (r, o) ->
                    union_reg fid r (ev fid o)
                | Vm.Isa.Bin (_, r, a, b') ->
                    union_reg fid r (ev fid a lor ev fid b')
                | Vm.Isa.Fbin (_, r, _, _)
                | Vm.Isa.Cmp (_, r, _, _)
                | Vm.Isa.Fcmp (_, r, _, _) ->
                    (* offsets, not base pointers *)
                    union_reg fid r 1
                | Vm.Isa.Load (r, a) ->
                    let m = ev fid a in
                    let before = t.touched.(fid) in
                    t.touched.(fid) <- before lor m;
                    if t.touched.(fid) <> before then changed := true;
                    union_reg fid r (content_of m)
                | Vm.Isa.Store (a, v) ->
                    let m = ev fid a in
                    let before = t.touched.(fid) in
                    t.touched.(fid) <- before lor m;
                    if t.touched.(fid) <> before then changed := true;
                    union_content m (ev fid v))
              b.instrs;
            match b.term with
            | Vm.Isa.Call { dst; callee; args; _ } ->
                if callee >= 0 && callee < Array.length prog.funcs then begin
                  List.iteri
                    (fun j o ->
                      if j < prog.funcs.(callee).n_params then
                        union_reg callee j (ev fid o))
                    args;
                  Option.iter
                    (fun r -> union_reg fid r t.ret_pts.(callee))
                    dst;
                  let before = t.touched.(fid) in
                  t.touched.(fid) <- before lor t.touched.(callee);
                  if t.touched.(fid) <> before then changed := true
                end
            | Vm.Isa.Ret (Some o) ->
                let before = t.ret_pts.(fid) in
                t.ret_pts.(fid) <- before lor ev fid o;
                if t.ret_pts.(fid) <> before then changed := true
            | _ -> ())
          f.blocks)
      prog.funcs
  done;
  (* record per-access address masks at the fixpoint *)
  Array.iteri
    (fun fid (f : Vm.Prog.func) ->
      Array.iter
        (fun (b : Vm.Prog.block) ->
          Array.iteri
            (fun idx i ->
              let sid = Vm.Isa.Sid.make ~fid ~bid:b.bid ~idx in
              match i with
              | Vm.Isa.Load (_, a) ->
                  Hashtbl.replace t.access sid (false, ev fid a)
              | Vm.Isa.Store (a, _) ->
                  Hashtbl.replace t.access sid (true, ev fid a)
              | _ -> ())
            b.instrs)
        f.blocks)
    prog.funcs;
  t

let regions_of_operand t ~fid o =
  match o with
  | Vm.Isa.Imm c -> const_pts t c
  | Vm.Isa.Reg r ->
      let row = t.pts.(fid) in
      if r < Array.length row then row.(r) else 0

let access_mask t sid =
  Option.map snd (Hashtbl.find_opt t.access sid)

let accesses t =
  Hashtbl.fold (fun sid (st, m) acc -> (sid, st, m) :: acc) t.access []
  |> List.sort compare

let func_touched t fid =
  if fid >= 0 && fid < Array.length t.touched then t.touched.(fid) else t.all_mask

let pp fmt t =
  Format.fprintf fmt "@[<v>points-to: %d named regions%s@,"
    (Array.length t.regions)
    (if t.degraded then " (degraded: all-alias)" else "");
  List.iter
    (fun (sid, st, m) ->
      Format.fprintf fmt "  %s %a -> {" (if st then "store" else "load")
        Vm.Isa.Sid.pp sid;
      let first = ref true in
      for i = 0 to n_regions t - 1 do
        if m land (1 lsl i) <> 0 then begin
          if not !first then Format.pp_print_string fmt ", ";
          first := false;
          Format.pp_print_string fmt (region_name t i)
        end
      done;
      Format.fprintf fmt "}@,")
    (accesses t);
  Format.fprintf fmt "@]"
