(** Static polyhedral dependence engine (the hybrid static/dynamic
    analysis of the paper's §8 "reducing overhead" discussion, after
    Klimov's exact polyhedral models for the affine parts of a
    program).

    For loop nests that {!Affine_class} proves fully affine and
    {!Points_to} proves alias-free, the engine

    - reconstructs the program's {e once-executed chain}: per function,
      the blocks that execute exactly once per region entry (they
      dominate the region's latch, or every function exit), with
      affine-trip loops as nested items and single-call-site callees
      inlined at their call position;
    - {e resolves} every access in the chain whose address is affine in
      the enclosing induction registers: the address becomes
      [base + coefs . iteration-vector] over a (possibly
      non-rectangular) iteration domain whose per-dimension bound is
      itself affine in the outer coordinates — triangular and
      trapezoidal nests included — and its exact address range (by
      rational LP over the domain) must lie within a single named
      memory region;
    - builds {e dependence polyhedra} for every resolved pair sharing a
      region: iteration-domain constraint rows, address equality and
      lexicographic-precedence disjuncts over [src ++ dst] iteration
      space, decided exactly by {!Minisl.Lp.feasible} (rational
      infeasibility implies integer independence), yielding
      per-statement-pair direction/distance summaries in the
      {!Sched.Depanalysis.dir} vocabulary and, for uniform dependences,
      the may-dependence relation as a {!Minisl.Pmap};
    - derives the {e instrumentation-pruning plan}: a region is
      prunable when every access that may touch it (per points-to) is
      resolved; accesses assigned to prunable regions can skip dynamic
      shadow tracking ({!Ddg.Depprof} [~static_prune]) because the
      plan's simulation re-derives their dependences exactly;
    - optionally ([~speculate]) treats a block guarded only by a
      data-dependent branch in a triangle/diamond as {e speculatively}
      once-executed (Klimov's weakly dynamic affine programs): the
      model stays polyhedral, the speculation ships in the plan as a
      {!Ddg.Depprof.witness} probe, and a refuted witness makes the
      profiler raise before producing a result so {!fallback_profile}
      can refine the speculation ({!refine}) and rerun, ultimately
      demoting the region to full shadow tracking. *)

type reason =
  | R_nonaffine  (** address not affine / symbolic parameter *)
  | R_loop  (** an enclosing loop is not a modelable constant-trip nest *)
  | R_cond  (** block not executed once per region iteration *)
  | R_call  (** unmodelable call-chain position (multi-site, recursive) *)
  | R_range  (** address range not within a single named region *)
  | R_header  (** access in a loop header (executes trip+1 times) *)

val reason_code : reason -> string

type resolved = {
  r_sid : Vm.Isa.Sid.t;
  r_store : bool;
  r_fid : int;
  r_region : int;  (** {!Points_to} region index *)
  r_base : int;
  r_coefs : int array;  (** address = base + coefs . coords *)
  r_bounds : (int * int array) array;
      (** per-dimension trip bound [base + coefs . outer coords]
          (clamped at 0 at runtime): dimension [i]'s coefficient array
          has [i] entries, one per strictly-outer dimension; constant
          boxes have all-zero coefficients *)
  r_dims : (int * int) array;
      (** per-dimension loop identity [(fid, header bid)] of the chain
          loop providing that coordinate — the bridge from a claimed
          source loop (located by its header) to the coordinate it
          contributes to every access it encloses *)
  r_sched : int array;
      (** static schedule: position of each ancestor chain item within
          its parent, plus the access's own position (length
          [depth + 1]); lexicographic comparison of interleaved
          (position, coordinate) vectors is the execution order *)
  r_lo : int;
  r_hi : int;  (** inclusive exact address range *)
  r_spec : (int * int * int) option;
      (** [(fid, guard, block)] when resolution relied on speculating
          that [guard] always branches to [block] *)
}

type spec_decision =
  | Spec_always of int  (** speculate this branch successor always runs *)
  | Spec_off  (** do not speculate this guard *)

type pair_dep = {
  pd_src : Vm.Isa.Sid.t;  (** the (earlier) store *)
  pd_dst : Vm.Isa.Sid.t;
  pd_kind : Ddg.Depprof.dep_kind;  (** [Mem_dep] (flow) or [Out_dep] *)
  pd_common : int;  (** common loop-nest prefix depth *)
  pd_possible : bool;  (** some dependence polyhedron is non-empty *)
  pd_dirs : Sched.Depanalysis.dir array;  (** per common dimension *)
  pd_dists : int option array;  (** constant distance where provable *)
  pd_rel : Minisl.Pmap.t option;
      (** consumer -> producer may-relation, for uniform dependences *)
}

type t = {
  prog : Vm.Prog.t;
  pta : Points_to.t;
  resolved : (Vm.Isa.Sid.t, resolved) Hashtbl.t;
  unresolved : (Vm.Isa.Sid.t * bool * reason) list;
      (** live, reachable, not resolved; sorted by sid *)
  prunable : bool array;  (** per region index *)
  pruned : (Vm.Isa.Sid.t, unit) Hashtbl.t;
      (** resolved accesses assigned to prunable regions *)
  pairs : pair_dep list;
  plan : Ddg.Depprof.static_plan;  (** pruned accesses only *)
  n_accesses : int;  (** reachable accesses in live functions *)
  speculated : ((int * int) * spec_decision) list;
      (** decision taken per [(fid, guard)] candidate; sorted *)
  skip_spec : (Vm.Isa.Sid.t, int * int * int) Hashtbl.t;
      (** accesses excluded as speculatively never-executed,
          [sid -> (fid, guard, block)] *)
}

val analyse : ?speculate:bool -> ?directions:((int * int) * spec_decision) list
  -> Vm.Prog.t -> t
(** [speculate] (default [false]) enables witness-checked speculation
    on data-dependent guards; [directions] overrides the per-guard
    decision (from {!refine}).  With [speculate:false] the result —
    including the plan's pruned set and trace-elision behaviour — is
    deterministic and witness-free. *)

val refine :
  t ->
  directions:((int * int) * spec_decision) list ->
  Ddg.Depprof.witness_outcome list ->
  ((int * int) * spec_decision) list
(** Updated [directions] after a {!Ddg.Depprof.Witness_failure}: a
    guard observed one-sided against the speculation is flipped once; a
    guard observed both ways (or failing after a flip) is turned off. *)

val fallback_profile :
  ?speculate:bool ->
  Vm.Prog.t ->
  profile:(Ddg.Depprof.static_plan -> 'a) ->
  t * 'a * int
(** Hybrid driver: analyse (speculatively by default), run [profile]
    on the plan, and on {!Ddg.Depprof.Witness_failure} refine the
    speculation directions and deterministically rerun, falling back
    to a non-speculative plan if refinement does not converge.
    Returns the final analysis, the profile result and the number of
    reruns (0 when every witness held first try). *)

val domain_rows :
  int -> offset:int -> (int * int array) array -> Minisl.Constr.t list
(** Iteration-domain constraint rows for the given per-dimension affine
    bounds ([resolved.r_bounds] shape), occupying variable positions
    [offset ..] of an [n]-variable polyhedron: [x_i >= 0] and
    [x_i <= trip_i - 1] with the trip affine in the outer coordinates.
    Exposed for consumers building bespoke polyhedra over resolved
    accesses ({!Parcheck}). *)

val pair_of :
  t -> src:Vm.Isa.Sid.t -> dst:Vm.Isa.Sid.t -> Ddg.Depprof.dep_kind ->
  pair_dep option
(** Lookup of the static verdict for an ordered resolved pair. *)

val n_resolved : t -> int
val n_pruned : t -> int
val prunable_regions : t -> string list

val pp : Format.formatter -> t -> unit
