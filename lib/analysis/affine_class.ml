type sym = Ind of { loop : int; ind_reg : Vm.Isa.reg } | Par of int

type lin = { lbase : int; lterms : (sym * int) list }

type value = Lin of lin | Loaded | Mixed | Opaque

type access = {
  acc_sid : Vm.Isa.Sid.t;
  acc_store : bool;
  acc_addr : value;
  acc_range : (int * int) option;
  acc_depth : int;
}

type call_site = {
  cs_callee : int;
  cs_sid : Vm.Isa.Sid.t;
  cs_args : int option array;
}

type loop_info = {
  li_id : int;
  li_header : int;
  li_trip : int option;
  li_trip_lin : lin option;
  li_counters : (Vm.Isa.reg * lin option * int) list;
}

type func_result = {
  fr_fid : int;
  fr_forest : Cfg.Loopnest.t;
  fr_accesses : access list;
  fr_calls : call_site list;
  fr_loops : loop_info list;
}

(* ------------------------------------------------------------------ *)
(* Linear-expression algebra                                           *)
(* ------------------------------------------------------------------ *)

let lconst c = { lbase = c; lterms = [] }

let lnorm terms =
  List.filter (fun (_, c) -> c <> 0) (List.sort compare terms)

let lmerge f a b =
  let rec go x y =
    match (x, y) with
    | [], r -> List.map (fun (s, c) -> (s, f 0 c)) r
    | l, [] -> List.map (fun (s, c) -> (s, f c 0)) l
    | (sa, ca) :: ta, (sb, cb) :: tb ->
        let cmp = compare sa sb in
        if cmp = 0 then (sa, f ca cb) :: go ta tb
        else if cmp < 0 then (sa, f ca 0) :: go ta ((sb, cb) :: tb)
        else (sb, f 0 cb) :: go ((sa, ca) :: ta) tb
  in
  lnorm (go a b)

let ladd a b = { lbase = a.lbase + b.lbase; lterms = lmerge ( + ) a.lterms b.lterms }
let lsub a b = { lbase = a.lbase - b.lbase; lterms = lmerge ( - ) a.lterms b.lterms }
let lscale k l =
  if k = 0 then lconst 0
  else { lbase = k * l.lbase; lterms = lnorm (List.map (fun (s, c) -> (s, k * c)) l.lterms) }

let lin_const = function
  | { lbase; lterms = [] } -> Some lbase
  | _ -> None

let tainted = function Loaded | Mixed -> true | Lin _ | Opaque -> false

let vjoin a b =
  if a = b then a
  else
    match (a, b) with
    | (Loaded | Mixed), (Loaded | Mixed) -> Mixed
    | _ -> Opaque

let vadd a b =
  match (a, b) with
  | Lin x, Lin y -> Lin (ladd x y)
  | Loaded, Lin _ | Lin _, Loaded -> Loaded  (* base pointer + affine offset *)
  | x, y when tainted x || tainted y -> Mixed
  | _ -> Opaque

let vsub a b =
  match (a, b) with
  | Lin x, Lin y -> Lin (lsub x y)
  | Loaded, Lin _ -> Loaded
  | x, y when tainted x || tainted y -> Mixed
  | _ -> Opaque

let vmul a b =
  match (a, b) with
  | Lin x, Lin y -> (
      match (lin_const x, lin_const y) with
      | Some k, _ -> Lin (lscale k y)
      | _, Some k -> Lin (lscale k x)
      | None, None -> Opaque)
  | x, y when tainted x || tainted y -> Mixed
  | _ -> Opaque

let vbin op a b =
  match op with
  | Vm.Isa.Add -> vadd a b
  | Vm.Isa.Sub -> vsub a b
  | Vm.Isa.Mul -> vmul a b
  | Vm.Isa.Div | Vm.Isa.Rem | Vm.Isa.And | Vm.Isa.Or | Vm.Isa.Xor
  | Vm.Isa.Shl | Vm.Isa.Shr ->
      if tainted a || tainted b then Mixed else Opaque

let vcast v = if tainted v then Mixed else Opaque

(* ------------------------------------------------------------------ *)
(* Per-function analysis                                               *)
(* ------------------------------------------------------------------ *)

type loop_ctx = {
  lc_loop : Cfg.Loopnest.loop;
  lc_members : (int, unit) Hashtbl.t;
  lc_inds : (Vm.Isa.reg * int) list;  (** induction register, step *)
  mutable lc_bounds : (Vm.Isa.reg * (int * int * int)) list;
      (** per bounded induction register: lo, tight hi, wide hi *)
  mutable lc_trip : int option;
      (** constant body-execution count, from the branching counter *)
  mutable lc_trip_lin : lin option;
      (** body-execution count as a linear expression over enclosing
          induction symbols (a constant when [lc_trip] is set); the
          consumer clamps it at 0 *)
}

let member lc bid = Hashtbl.mem lc.lc_members bid

(* induction candidates: registers whose only definition inside the loop
   region is [r := r + const] *)
let induction_candidates (f : Vm.Prog.func) (lc_members : (int, unit) Hashtbl.t) =
  let defs : (Vm.Isa.reg, int * Vm.Isa.instr option) Hashtbl.t =
    Hashtbl.create 8
  in
  let count r i =
    let n, _ = Option.value ~default:(0, None) (Hashtbl.find_opt defs r) in
    Hashtbl.replace defs r (n + 1, if n = 0 then i else None)
  in
  Array.iter
    (fun (b : Vm.Prog.block) ->
      if Hashtbl.mem lc_members b.bid then begin
        Array.iter
          (fun i -> Option.iter (fun r -> count r (Some i)) (Insn.instr_def i))
          b.instrs;
        Option.iter (fun r -> count r None) (Insn.term_def b.term)
      end)
    f.blocks;
  Hashtbl.fold
    (fun r (n, shape) acc ->
      match (n, shape) with
      | 1, Some (Vm.Isa.Bin (Vm.Isa.Add, r', Vm.Isa.Reg r'', Vm.Isa.Imm s))
        when r' = r && r'' = r && s > 0 ->
          (r, s) :: acc
      | _ -> acc)
    defs []
  |> List.sort compare

type fstate = {
  prog : Vm.Prog.t;
  func : Vm.Prog.func;
  fid : int;
  n_regs : int;
  graph : Cfg.Digraph.t;
  forest : Cfg.Loopnest.t;
  reach : bool array;
  loops : loop_ctx list;  (** all loops, with member tables *)
  header_of : (int, loop_ctx) Hashtbl.t;  (** header bid -> loop *)
  entry_state : value array;
  mutable block_out : value array option array;
}

let eval state = function
  | Vm.Isa.Reg r -> if r < Array.length state then state.(r) else Lin (lconst 0)
  | Vm.Isa.Imm i -> Lin (lconst i)

(* Walk one block from [state] (mutated in place).  [on_access] sees each
   load/store with the abstract address at that point; [on_call] sees the
   terminator if it is a call, with the end-of-block state. *)
let walk_block fs bid state ~on_access ~on_call =
  let b = fs.func.blocks.(bid) in
  let set r v = if r < Array.length state then state.(r) <- v in
  Array.iteri
    (fun idx i ->
      let sid = Vm.Isa.Sid.make ~fid:fs.fid ~bid ~idx in
      (match i with
      | Vm.Isa.Load (_, a) -> on_access sid false (eval state a)
      | Vm.Isa.Store (a, _) -> on_access sid true (eval state a)
      | _ -> ());
      match i with
      | Vm.Isa.Const (r, c) -> set r (Lin (lconst c))
      | Vm.Isa.Fconst (r, _) -> set r Opaque
      | Vm.Isa.Mov (r, o) -> set r (eval state o)
      | Vm.Isa.Bin (op, r, a, b') -> set r (vbin op (eval state a) (eval state b'))
      | Vm.Isa.Fbin (_, r, _, _) -> set r Opaque
      | Vm.Isa.Cmp (_, r, _, _) | Vm.Isa.Fcmp (_, r, _, _) -> set r Opaque
      | Vm.Isa.Load (r, _) -> set r Loaded
      | Vm.Isa.Itof (r, o) | Vm.Isa.Ftoi (r, o) -> set r (vcast (eval state o))
      | Vm.Isa.Store _ -> ())
    b.instrs;
  (match b.term with
  | Vm.Isa.Call { callee; args; _ } -> on_call callee args (Array.copy state)
  | _ -> ());
  (* the call destination is defined on the continuation edge *)
  Option.iter (fun r -> set r Opaque) (Insn.term_def b.term);
  state

let no_access _ _ _ = ()
let no_call _ _ _ = ()

(* the induction-register pin applied to the joined in-state of a loop
   header: the counter becomes its symbolic value, demoted to the class
   of its initial value when that is not affine *)
let pin_header fs bid (state : value array) =
  match Hashtbl.find_opt fs.header_of bid with
  | None -> state
  | Some lc ->
      List.iter
        (fun (r, _step) ->
          if r < Array.length state then begin
            let init =
              List.fold_left
                (fun acc p ->
                  if member lc p then acc
                  else
                    match fs.block_out.(p) with
                    | Some out when r < Array.length out ->
                        (match acc with
                        | None -> Some out.(r)
                        | Some v -> Some (vjoin v out.(r)))
                    | _ -> acc)
                None
                (Cfg.Digraph.preds fs.graph bid)
            in
            let sym = Lin { lbase = 0; lterms = [ (Ind { loop = lc.lc_loop.Cfg.Loopnest.loop_id; ind_reg = r }, 1) ] } in
            match init with
            | None | Some (Lin _) -> state.(r) <- sym
            | Some Loaded -> state.(r) <- Loaded
            | Some Mixed -> state.(r) <- Mixed
            | Some Opaque -> state.(r) <- Opaque
          end)
        lc.lc_inds;
      state

let in_state fs bid =
  let joined = ref None in
  List.iter
    (fun p ->
      match fs.block_out.(p) with
      | None -> ()
      | Some out ->
          joined :=
            Some
              (match !joined with
              | None -> Array.copy out
              | Some acc ->
                  Array.mapi (fun i v -> vjoin v out.(i)) acc))
    (Cfg.Digraph.preds fs.graph bid);
  let state =
    match !joined with
    | Some s -> s
    | None -> Array.copy fs.entry_state
  in
  let state = if bid = 0 then Array.mapi (fun i v -> vjoin v fs.entry_state.(i)) state else state in
  pin_header fs bid state

let solve fs =
  let order =
    List.filter
      (fun b -> b >= 0 && b < Array.length fs.func.blocks && fs.reach.(b))
      (Cfg.Digraph.reverse_postorder fs.graph ~root:0)
  in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && !sweeps < 64 do
    incr sweeps;
    changed := false;
    List.iter
      (fun bid ->
        let s = in_state fs bid in
        let out = walk_block fs bid s ~on_access:no_access ~on_call:no_call in
        match fs.block_out.(bid) with
        | Some prev when prev = out -> ()
        | _ ->
            fs.block_out.(bid) <- Some out;
            changed := true)
      order
  done

(* loop bounds from the lowered for-loop idiom: the header computes
   [t := cmp.lt r, hi] and branches [br t, body, exit].  When both the
   initial counter value and [hi] are compile-time constants the trip
   count is constant ([lc_trip]); when they are merely affine in
   enclosing induction symbols (triangular/trapezoidal nests) the trip
   count is kept symbolically in [lc_trip_lin]. *)
let extract_bounds fs lc =
  let header = lc.lc_loop.Cfg.Loopnest.header in
  if fs.reach.(header) then begin
    let state = in_state fs header in
    let b = fs.func.blocks.(header) in
    let cmps : (Vm.Isa.reg, Vm.Isa.reg * lin) Hashtbl.t = Hashtbl.create 4 in
    let set r v = if r < Array.length state then state.(r) <- v in
    Array.iter
      (fun i ->
        (match i with
        | Vm.Isa.Cmp (Vm.Isa.Clt, t, Vm.Isa.Reg r, o) -> (
            if List.mem_assoc r lc.lc_inds then
              match eval state o with
              | Lin l -> Hashtbl.replace cmps t (r, l)
              | _ -> ())
        | _ -> ());
        match i with
        | Vm.Isa.Const (r, c) -> set r (Lin (lconst c))
        | Vm.Isa.Fconst (r, _) -> set r Opaque
        | Vm.Isa.Mov (r, o) -> set r (eval state o)
        | Vm.Isa.Bin (op, r, a, b') ->
            set r (vbin op (eval state a) (eval state b'))
        | Vm.Isa.Fbin (_, r, _, _) -> set r Opaque
        | Vm.Isa.Cmp (_, r, _, _) | Vm.Isa.Fcmp (_, r, _, _) -> set r Opaque
        | Vm.Isa.Load (r, _) -> set r Loaded
        | Vm.Isa.Itof (r, o) | Vm.Isa.Ftoi (r, o) -> set r (vcast (eval state o))
        | Vm.Isa.Store _ -> ())
      b.instrs;
    match b.term with
    | Vm.Isa.Br (Vm.Isa.Reg c, bt, be) when member lc bt && not (member lc be)
      -> (
        match Hashtbl.find_opt cmps c with
        | Some (r, hi_lin) -> (
            (* initial value: join of the counter over entries from
               outside the loop *)
            let init =
              List.fold_left
                (fun acc p ->
                  if member lc p then acc
                  else
                    match fs.block_out.(p) with
                    | Some out when r < Array.length out ->
                        (match acc with
                        | None -> Some out.(r)
                        | Some v -> Some (vjoin v out.(r)))
                    | _ -> acc)
                None
                (Cfg.Digraph.preds fs.graph header)
            in
            match init with
            | Some (Lin lo_lin) -> (
                let step = List.assoc r lc.lc_inds in
                match (lin_const hi_lin, lin_const lo_lin) with
                | Some hi, Some lo ->
                    let tight = max lo (hi - 1) in
                    let wide = max lo (hi - 1 + step) in
                    lc.lc_bounds <- (r, (lo, tight, wide)) :: lc.lc_bounds;
                    let trip =
                      if hi <= lo then 0 else (hi - lo + step - 1) / step
                    in
                    lc.lc_trip <- Some trip;
                    lc.lc_trip_lin <- Some (lconst trip)
                | _ ->
                    (* affine bounds in enclosing counters: trip is
                       [hi - lo] for unit step, provided neither bound
                       depends on this loop's own counters (the symbols
                       must be loop-invariant) *)
                    if step = 1 then begin
                      let t = lsub hi_lin lo_lin in
                      let self_ref =
                        List.exists
                          (fun (s, _) ->
                            match s with
                            | Ind { loop; _ } ->
                                loop = lc.lc_loop.Cfg.Loopnest.loop_id
                            | Par _ -> false)
                          t.lterms
                      in
                      if not self_ref then lc.lc_trip_lin <- Some t
                    end)
            | _ -> ())
        | None -> ())
    | _ -> ()
  end

(* inclusive address interval of an affine address at block [bid] *)
let range_of fs bid l =
  let rec go lo hi = function
    | [] -> Some (lo, hi)
    | (Par _, _) :: _ -> None
    | (Ind { loop; ind_reg }, c) :: rest -> (
        match
          List.find_opt
            (fun lc -> lc.lc_loop.Cfg.Loopnest.loop_id = loop)
            fs.loops
        with
        | None -> None
        | Some lc -> (
            match List.assoc_opt ind_reg lc.lc_bounds with
            | None -> None
            | Some (ilo, tight, wide) ->
                let ihi =
                  if member lc bid && bid <> lc.lc_loop.Cfg.Loopnest.header
                  then tight
                  else wide
                in
                if c >= 0 then go (lo + (c * ilo)) (hi + (c * ihi)) rest
                else go (lo + (c * ihi)) (hi + (c * ilo)) rest))
  in
  go l.lbase l.lbase l.lterms

let classify a =
  match a.acc_addr with
  | Lin l -> `Affine l
  | Loaded -> `Nonaffine Staticbase.Polly_lite.P_base_not_invariant
  | Mixed | Opaque -> `Nonaffine Staticbase.Polly_lite.F_nonaffine_access

let class_code a =
  match classify a with
  | `Affine _ -> "-"
  | `Nonaffine r -> Staticbase.Polly_lite.reason_code r

let n_affine fr =
  List.length
    (List.filter (fun a -> match classify a with `Affine _ -> true | _ -> false)
       fr.fr_accesses)

let analyse_func ?(param_value = fun _ -> None) (prog : Vm.Prog.t) fid =
  let func = prog.funcs.(fid) in
  let n_regs = Insn.n_regs func in
  let graph = Insn.static_cfg func in
  let forest = Cfg.Loopnest.compute graph ~entry:0 in
  let reach = Verify.reachable_blocks func in
  let loops =
    List.map
      (fun (l : Cfg.Loopnest.loop) ->
        let members = Hashtbl.create 16 in
        List.iter (fun b -> Hashtbl.replace members b ()) l.members;
        let inds = induction_candidates func members in
        { lc_loop = l; lc_members = members; lc_inds = inds; lc_bounds = [];
          lc_trip = None; lc_trip_lin = None })
      (Cfg.Loopnest.all_loops forest)
  in
  let header_of = Hashtbl.create 8 in
  List.iter
    (fun lc -> Hashtbl.replace header_of lc.lc_loop.Cfg.Loopnest.header lc)
    loops;
  let entry_state =
    Array.init n_regs (fun r ->
        if r < func.n_params then
          match param_value r with
          | Some c -> Lin (lconst c)
          | None -> Lin { lbase = 0; lterms = [ (Par r, 1) ] }
        else Lin (lconst 0) (* frames zero-fill on demand *))
  in
  let fs =
    { prog;
      func;
      fid;
      n_regs;
      graph;
      forest;
      reach;
      loops;
      header_of;
      entry_state;
      block_out = Array.make (Array.length func.blocks) None }
  in
  solve fs;
  List.iter (fun lc -> extract_bounds fs lc) fs.loops;
  (* final walk: record accesses and call sites *)
  let accesses = ref [] in
  let calls = ref [] in
  Array.iteri
    (fun bid (_ : Vm.Prog.block) ->
      if reach.(bid) then begin
        let depth =
          List.length (Cfg.Loopnest.loops_containing forest bid)
        in
        let on_access sid is_store addr =
          let range =
            match addr with Lin l -> range_of fs bid l | _ -> None
          in
          accesses :=
            { acc_sid = sid;
              acc_store = is_store;
              acc_addr = addr;
              acc_range = range;
              acc_depth = depth }
            :: !accesses
        in
        let on_call callee args state =
          let b = fs.func.blocks.(bid) in
          let cs_args =
            Array.of_list
              (List.map
                 (fun o ->
                   match eval state o with
                   | Lin l -> lin_const l
                   | _ -> None)
                 args)
          in
          calls :=
            { cs_callee = callee; cs_sid = Insn.term_sid ~fid b; cs_args }
            :: !calls
        in
        ignore
          (walk_block fs bid (in_state fs bid) ~on_access ~on_call)
      end)
    func.blocks;
  (* per-loop summary: constant trip count (when the branching counter
     has compile-time bounds) and every induction register's entry value
     (joined over loop entries from outside the region) and step *)
  let entry_lin lc r =
    let init =
      List.fold_left
        (fun acc p ->
          if member lc p then acc
          else
            match fs.block_out.(p) with
            | Some out when r < Array.length out -> (
                match acc with
                | None -> Some out.(r)
                | Some v -> Some (vjoin v out.(r)))
            | _ -> acc)
        None
        (Cfg.Digraph.preds fs.graph lc.lc_loop.Cfg.Loopnest.header)
    in
    match init with Some (Lin l) -> Some l | _ -> None
  in
  let fr_loops =
    List.map
      (fun lc ->
        { li_id = lc.lc_loop.Cfg.Loopnest.loop_id;
          li_header = lc.lc_loop.Cfg.Loopnest.header;
          li_trip = lc.lc_trip;
          li_trip_lin = lc.lc_trip_lin;
          li_counters =
            List.map (fun (r, step) -> (r, entry_lin lc r, step)) lc.lc_inds })
      fs.loops
  in
  { fr_fid = fid;
    fr_forest = forest;
    fr_accesses = List.rev !accesses;
    fr_calls = List.rev !calls;
    fr_loops }

let analyse_prog (prog : Vm.Prog.t) =
  let n = Array.length prog.funcs in
  let pv =
    Array.map (fun (f : Vm.Prog.func) -> Array.make (max 1 f.n_params) None) prog.funcs
  in
  let results = ref [||] in
  let stable = ref false in
  let rounds = ref 0 in
  while (not !stable) && !rounds < 8 do
    incr rounds;
    results :=
      Array.init n (fun fid ->
          analyse_func ~param_value:(fun i -> pv.(fid).(i)) prog fid);
    (* merge constant call arguments over all static call sites *)
    let merged : [ `Unset | `Const of int | `Conflict ] array array =
      Array.map
        (fun (f : Vm.Prog.func) -> Array.make (max 1 f.n_params) `Unset)
        prog.funcs
    in
    Array.iter
      (fun fr ->
        List.iter
          (fun cs ->
            if cs.cs_callee >= 0 && cs.cs_callee < n then
              Array.iteri
                (fun j arg ->
                  if j < Array.length merged.(cs.cs_callee) then
                    merged.(cs.cs_callee).(j) <-
                      (match (merged.(cs.cs_callee).(j), arg) with
                      | `Unset, Some c -> `Const c
                      | `Const c, Some c' when c = c' -> `Const c
                      | `Unset, None | `Const _, _ | `Conflict, _ -> `Conflict))
                cs.cs_args)
          fr.fr_calls)
      !results;
    let next =
      Array.map
        (Array.map (function `Const c -> Some c | `Unset | `Conflict -> None))
        merged
    in
    if next = pv then stable := true
    else Array.iteri (fun i row -> pv.(i) <- row) next
  done;
  !results

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_sym fmt = function
  | Ind { loop; ind_reg } -> Format.fprintf fmt "i%d(r%d)" loop ind_reg
  | Par r -> Format.fprintf fmt "p%d" r

let pp_lin fmt l =
  Format.fprintf fmt "%d" l.lbase;
  List.iter
    (fun (s, c) ->
      if c >= 0 then Format.fprintf fmt " + %d*%a" c pp_sym s
      else Format.fprintf fmt " - %d*%a" (-c) pp_sym s)
    l.lterms

let pp_value fmt = function
  | Lin l -> pp_lin fmt l
  | Loaded -> Format.pp_print_string fmt "loaded"
  | Mixed -> Format.pp_print_string fmt "mixed"
  | Opaque -> Format.pp_print_string fmt "opaque"

let pp_access fmt a =
  Format.fprintf fmt "%s %a: %a%s"
    (if a.acc_store then "store" else "load")
    Vm.Isa.Sid.pp a.acc_sid pp_value a.acc_addr
    (match a.acc_range with
    | Some (lo, hi) -> Printf.sprintf " in [%d, %d]" lo hi
    | None -> "")
