module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = { block_in : L.t array; block_out : L.t array }

  let run ~dir ~graph ~n_blocks ~entry ~boundary ~init ~transfer =
    let block_in = Array.make n_blocks init in
    let block_out = Array.make n_blocks init in
    let is_entry = Array.make n_blocks false in
    List.iter
      (fun b -> if b >= 0 && b < n_blocks then is_entry.(b) <- true)
      entry;
    (* dependence neighbours in the chosen direction *)
    let sources b =
      match dir with
      | Forward -> Cfg.Digraph.preds graph b
      | Backward -> Cfg.Digraph.succs graph b
    in
    let dependents b =
      match dir with
      | Forward -> Cfg.Digraph.succs graph b
      | Backward -> Cfg.Digraph.preds graph b
    in
    (* seed the worklist in an order that converges quickly: reverse
       postorder from the entry for forward problems, its reverse for
       backward ones; unreachable blocks are appended so they are still
       processed *)
    let rpo =
      if n_blocks = 0 then []
      else if Cfg.Digraph.mem_node graph 0 then
        Cfg.Digraph.reverse_postorder graph ~root:0
      else []
    in
    let base_order =
      let from_rpo = List.filter (fun b -> b >= 0 && b < n_blocks) rpo in
      let mem = Array.make n_blocks false in
      List.iter (fun b -> mem.(b) <- true) from_rpo;
      from_rpo
      @ List.filter (fun b -> not mem.(b)) (List.init n_blocks Fun.id)
    in
    let seed =
      match dir with Forward -> base_order | Backward -> List.rev base_order
    in
    let queue = Queue.create () in
    let queued = Array.make n_blocks false in
    let push b =
      if b >= 0 && b < n_blocks && not queued.(b) then begin
        queued.(b) <- true;
        Queue.add b queue
      end
    in
    List.iter push seed;
    let budget = ref (64 * max 1 n_blocks) in
    while (not (Queue.is_empty queue)) && !budget > 0 do
      decr budget;
      let b = Queue.take queue in
      queued.(b) <- false;
      let incoming =
        List.fold_left
          (fun acc s -> L.join acc block_out.(s))
          (if is_entry.(b) then boundary else init)
          (sources b)
      in
      block_in.(b) <- incoming;
      let out = transfer b incoming in
      if not (L.equal out block_out.(b)) then begin
        block_out.(b) <- out;
        List.iter push (dependents b)
      end
    done;
    { block_in; block_out }
end
