type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  fid : int;
  sid : Vm.Isa.Sid.t option;
  message : string;
}

let make severity ?sid ~code ~fid message = { severity; code; fid; sid; message }
let error ?sid ~code ~fid msg = make Error ?sid ~code ~fid msg
let warning ?sid ~code ~fid msg = make Warning ?sid ~code ~fid msg
let info ?sid ~code ~fid msg = make Info ?sid ~code ~fid msg
let is_error d = d.severity = Error
let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let sev_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Stdlib.compare (sev_rank a.severity) (sev_rank b.severity) in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.fid b.fid in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.sid b.sid in
      if c <> 0 then c else Stdlib.compare a.code b.code

let sev_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp ?prog () fmt d =
  let fname =
    match prog with
    | Some p when d.fid >= 0 && d.fid < Array.length p.Vm.Prog.funcs ->
        Vm.Prog.func_name p d.fid
    | _ -> Printf.sprintf "f%d" d.fid
  in
  match d.sid with
  | Some sid ->
      Format.fprintf fmt "%s: [%s] %s at %a: %s" (sev_string d.severity)
        d.code fname Vm.Isa.Sid.pp sid d.message
  | None ->
      Format.fprintf fmt "%s: [%s] %s: %s" (sev_string d.severity) d.code
        fname d.message

let to_string ?prog d = Format.asprintf "%a" (pp ?prog ()) d
