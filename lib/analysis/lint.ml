type entry = {
  e_name : string;
  e_diags : Diag.t list;
  e_accesses : int;
  e_affine : int;
  e_ranged : int;
  e_xcheck : Crosscheck.report option;
}

let static_entry name (prog : Vm.Prog.t) =
  let diags =
    List.sort Diag.compare
      (Verify.verify prog @ Initdef.check prog @ Liveness.check prog)
  in
  let frs = Affine_class.analyse_prog prog in
  let accesses = ref 0 and affine = ref 0 and ranged = ref 0 in
  Array.iter
    (fun fr ->
      List.iter
        (fun (a : Affine_class.access) ->
          incr accesses;
          (match Affine_class.classify a with
          | `Affine _ -> incr affine
          | `Nonaffine _ -> ());
          if a.Affine_class.acc_range <> None then incr ranged)
        fr.Affine_class.fr_accesses)
    frs;
  { e_name = name;
    e_diags = diags;
    e_accesses = !accesses;
    e_affine = !affine;
    e_ranged = !ranged;
    e_xcheck = None }

let analyse ?(name = "<prog>") prog = static_entry name prog

let crosschecked e prog profile =
  { e with e_xcheck = Some (Crosscheck.check prog profile) }

let analyse_profiled ?(name = "<prog>") ?max_steps ?args prog =
  let e = static_entry name prog in
  (* only execute programs the verifier accepts *)
  if List.exists Diag.is_error e.e_diags then e
  else
    let structure = Cfg.Cfg_builder.run ?max_steps ?args prog in
    let profile = Ddg.Depprof.profile ?max_steps ?args prog ~structure in
    crosschecked e prog profile

let of_hir ?name ?(profile = true) ?max_steps ?args hir =
  let prog = Vm.Hir.lower hir in
  if profile then analyse_profiled ?name ?max_steps ?args prog
  else analyse ?name prog

let errors e =
  List.filter Diag.is_error e.e_diags
  @ (match e.e_xcheck with Some r -> r.Crosscheck.violations | None -> [])

let passed e = errors e = []

let header =
  [ "Workload"; "E"; "W"; "I"; "Acc"; "Aff"; "Rng"; "Facts"; "Chk"; "Viol";
    "Lint" ]

let to_row e =
  let c sev = string_of_int (Diag.count sev e.e_diags) in
  [ e.e_name;
    c Diag.Error;
    c Diag.Warning;
    c Diag.Info;
    string_of_int e.e_accesses;
    string_of_int e.e_affine;
    string_of_int e.e_ranged ]
  @ (match e.e_xcheck with
    | Some r ->
        [ string_of_int r.Crosscheck.facts;
          string_of_int r.Crosscheck.checked_edges;
          string_of_int (List.length r.Crosscheck.violations) ]
    | None -> [ "-"; "-"; "-" ])
  @ [ (if passed e then "ok" else "FAIL") ]

let table entries = Report.Texttable.render ~header (List.map to_row entries)

let pp_entry ?prog () fmt e =
  Format.fprintf fmt "%s: %d accesses (%d affine, %d ranged), lint %s"
    e.e_name e.e_accesses e.e_affine e.e_ranged
    (if passed e then "ok" else "FAILED");
  (match e.e_xcheck with
  | Some r -> Format.fprintf fmt "@\n  cross-check: %a" Crosscheck.pp_report r
  | None -> ());
  List.iter
    (fun d -> Format.fprintf fmt "@\n  %a" (Diag.pp ?prog ()) d)
    e.e_diags
