type entry = {
  e_name : string;
  e_diags : Diag.t list;
  e_accesses : int;
  e_affine : int;
  e_ranged : int;
  e_xcheck : Crosscheck.report option;
}

(* constant value of an operand at the end of [b], if decidable from the
   block alone: an immediate, or a register whose last in-block
   definition is a constant *)
let const_at_term (b : Vm.Prog.block) (o : Vm.Isa.operand) =
  match o with
  | Vm.Isa.Imm c -> Some c
  | Vm.Isa.Reg r ->
      let n = Array.length b.instrs in
      let rec scan i =
        if i < 0 then None
        else
          match b.instrs.(i) with
          | Vm.Isa.Const (d, c) when d = r -> Some c
          | Vm.Isa.Mov (d, Vm.Isa.Imm c) when d = r -> Some c
          | Vm.Isa.Mov (d, _)
          | Vm.Isa.Const (d, _)
          | Vm.Isa.Fconst (d, _)
          | Vm.Isa.Bin (_, d, _, _)
          | Vm.Isa.Fbin (_, d, _, _)
          | Vm.Isa.Cmp (_, d, _, _)
          | Vm.Isa.Fcmp (_, d, _, _)
          | Vm.Isa.Load (d, _)
          | Vm.Isa.Itof (d, _)
          | Vm.Isa.Ftoi (d, _)
            when d = r ->
              None
          | _ -> scan (i - 1)
      in
      scan (n - 1)

(* W-deadcode: blocks reachable in the plain static CFG that become
   unreachable once constant conditional branches follow only their
   taken edge.  Disjoint from the verifier's [W-unreachable] (plain
   unreachability), which already covers blocks no path reaches. *)
let deadcode (prog : Vm.Prog.t) =
  let diags = ref [] in
  Array.iter
    (fun (f : Vm.Prog.func) ->
      let n = Array.length f.blocks in
      if n > 0 then begin
        let plain = Verify.reachable_blocks f in
        let feasible = Array.make n false in
        let rec visit bid =
          if bid >= 0 && bid < n && not feasible.(bid) then begin
            feasible.(bid) <- true;
            let b = f.blocks.(bid) in
            let succs =
              match b.term with
              | Vm.Isa.Br (cond, t, e) -> (
                  match const_at_term b cond with
                  | Some c -> [ (if c <> 0 then t else e) ]
                  | None -> [ t; e ])
              | t -> Insn.term_succs t
            in
            List.iter visit succs
          end
        in
        visit 0;
        Array.iteri
          (fun bid (b : Vm.Prog.block) ->
            if plain.(bid) && not feasible.(bid) then
              let sid =
                if Array.length b.instrs > 0 then
                  Some (Vm.Isa.Sid.make ~fid:f.fid ~bid ~idx:0)
                else None
              in
              diags :=
                Diag.warning ?sid ~code:"W-deadcode" ~fid:f.fid
                  (Printf.sprintf
                     "block b%d is dead code: every path to it takes the \
                      other side of a constant conditional branch"
                     bid)
                :: !diags)
          f.blocks
      end)
    prog.funcs;
  List.rev !diags

(* W-redundant-load: within a block, the same address operand loaded
   again with no intervening store (any store may alias) and the
   address register not redefined — the second load can reuse the first
   one's value *)
let redundant_load (prog : Vm.Prog.t) =
  let diags = ref [] in
  Array.iter
    (fun (f : Vm.Prog.func) ->
      Array.iter
        (fun (b : Vm.Prog.block) ->
          let avail : (Vm.Isa.operand, Vm.Isa.Sid.t) Hashtbl.t =
            Hashtbl.create 8
          in
          let kill_reg r =
            if Hashtbl.mem avail (Vm.Isa.Reg r) then
              Hashtbl.remove avail (Vm.Isa.Reg r)
          in
          Array.iteri
            (fun idx i ->
              let sid = Vm.Isa.Sid.make ~fid:f.fid ~bid:b.bid ~idx in
              match i with
              | Vm.Isa.Load (dst, a) ->
                  (match Hashtbl.find_opt avail a with
                  | Some first ->
                      diags :=
                        Diag.warning ~sid ~code:"W-redundant-load"
                          ~fid:f.fid
                          (Format.asprintf
                             "address already loaded at %a with no \
                              intervening store; reuse that value"
                             Vm.Isa.Sid.pp first)
                        :: !diags
                  | None -> Hashtbl.replace avail a sid);
                  kill_reg dst
              | Vm.Isa.Store (_, _) -> Hashtbl.reset avail
              | Vm.Isa.Const (d, _)
              | Vm.Isa.Fconst (d, _)
              | Vm.Isa.Mov (d, _)
              | Vm.Isa.Bin (_, d, _, _)
              | Vm.Isa.Fbin (_, d, _, _)
              | Vm.Isa.Cmp (_, d, _, _)
              | Vm.Isa.Fcmp (_, d, _, _)
              | Vm.Isa.Itof (d, _)
              | Vm.Isa.Ftoi (d, _) ->
                  kill_reg d)
            b.instrs)
        f.blocks)
    prog.funcs;
  List.rev !diags

(* W-almost-affine: a memory region that just misses the static
   dependence engine's prunable set — every unresolved access that may
   touch it (per points-to) is blocked for one and the same reason.
   Fixing that single class of blocker would make the whole region
   statically prunable.  Opt-in (the CLI lint command): the static
   engine run is not free, and the warning is advisory, so it is not
   part of {!static_entry} (whose warnings the sweep test pins at 0). *)
let almost_affine (prog : Vm.Prog.t) =
  let sd = Statdep.analyse prog in
  let unres = Hashtbl.create 16 in
  List.iter
    (fun (sid, _store, reason) -> Hashtbl.replace unres sid reason)
    sd.Statdep.unresolved;
  let nreg = Array.length sd.Statdep.prunable in
  let blockers = Array.make nreg [] in
  List.iter
    (fun (sid, _store, mask) ->
      match Hashtbl.find_opt unres sid with
      | Some reason ->
          for r = 1 to nreg - 1 do
            if mask land (1 lsl r) <> 0 then
              blockers.(r) <- (sid, reason) :: blockers.(r)
          done
      | None -> ())
    (Points_to.accesses sd.Statdep.pta);
  let diags = ref [] in
  Array.iteri
    (fun r bs ->
      if r > 0 && (not sd.Statdep.prunable.(r)) && bs <> [] then begin
        match List.sort_uniq compare (List.map snd bs) with
        | [ reason ] ->
            let sids = List.sort_uniq compare (List.map fst bs) in
            let sid = List.hd sids in
            diags :=
              Diag.warning ~sid ~code:"W-almost-affine"
                ~fid:(Vm.Isa.Sid.fid sid)
                (Printf.sprintf
                   "region %s is almost statically prunable: %d blocking \
                    access%s, all for the same reason (%s)"
                   (Points_to.region_name sd.Statdep.pta r)
                   (List.length sids)
                   (if List.length sids = 1 then "" else "es")
                   (Statdep.reason_code reason))
              :: !diags
        | _ -> ()
      end)
    blockers;
  List.sort Diag.compare !diags

let with_almost_affine e prog =
  { e with e_diags = List.sort Diag.compare (e.e_diags @ almost_affine prog) }

(* Parallelism advisories from the certifier (opt-in, like
   {!almost_affine}: runs the static dependence engine).  One warning
   per chain dimension that is either provably racy ([W-race], with a
   concrete witness pair) or certified only thanks to a discharge the
   programmer must honour when parallelizing by hand ([W-privatizable],
   [W-reduction]). *)
let parallelism (prog : Vm.Prog.t) =
  let pc = Parcheck.analyse prog in
  let diags =
    List.concat_map
      (fun (d : Parcheck.dim_report) ->
        let where =
          match d.Parcheck.dr_loc with
          | Some l -> Printf.sprintf " (%s:%d)" l.Vm.Prog.file l.Vm.Prog.line
          | None -> ""
        in
        let loop = Printf.sprintf "loop f%d.b%d%s" d.Parcheck.dr_fid d.Parcheck.dr_header where in
        match d.Parcheck.dr_verdict with
        | Parcheck.Race ws ->
            let w = List.hd ws in
            [ Diag.warning ~sid:w.Parcheck.w_src ~code:"W-race"
                ~fid:d.Parcheck.dr_fid
                (Printf.sprintf
                   "%s is not parallel: %d loop-carried conflict pair%s, \
                    e.g. %s between %s and %s"
                   loop (List.length ws)
                   (if List.length ws = 1 then "" else "s")
                   (if w.Parcheck.w_ww then "W/W" else "R/W")
                   (Vm.Isa.Sid.to_string w.Parcheck.w_src)
                   (Vm.Isa.Sid.to_string w.Parcheck.w_dst)) ]
        | Parcheck.Certified c ->
            (if c.Parcheck.ct_private = [] then []
             else
               [ Diag.warning ~code:"W-privatizable" ~fid:d.Parcheck.dr_fid
                   (Printf.sprintf
                      "%s is parallel only with %d region%s privatized \
                       per-thread"
                      loop
                      (List.length c.Parcheck.ct_private)
                      (if List.length c.Parcheck.ct_private = 1 then ""
                       else "s")) ])
            @
            if c.Parcheck.ct_reductions = [] then []
            else
              [ Diag.warning
                  ~sid:(List.hd c.Parcheck.ct_reductions)
                  ~code:"W-reduction" ~fid:d.Parcheck.dr_fid
                  (Printf.sprintf
                     "%s is parallel only as a reduction (%d \
                      read-modify-write access%s must combine atomically or \
                      per-thread)"
                     loop
                     (List.length c.Parcheck.ct_reductions)
                     (if List.length c.Parcheck.ct_reductions = 1 then ""
                      else "es")) ]
        | Parcheck.Unknown _ -> [])
      pc.Parcheck.pc_dims
  in
  List.sort Diag.compare diags

let with_parallelism e prog =
  { e with e_diags = List.sort Diag.compare (e.e_diags @ parallelism prog) }

let static_entry name (prog : Vm.Prog.t) =
  let diags =
    List.sort Diag.compare
      (Verify.verify prog @ Initdef.check prog @ Liveness.check prog
      @ deadcode prog @ redundant_load prog)
  in
  let frs = Affine_class.analyse_prog prog in
  let accesses = ref 0 and affine = ref 0 and ranged = ref 0 in
  Array.iter
    (fun fr ->
      List.iter
        (fun (a : Affine_class.access) ->
          incr accesses;
          (match Affine_class.classify a with
          | `Affine _ -> incr affine
          | `Nonaffine _ -> ());
          if a.Affine_class.acc_range <> None then incr ranged)
        fr.Affine_class.fr_accesses)
    frs;
  { e_name = name;
    e_diags = diags;
    e_accesses = !accesses;
    e_affine = !affine;
    e_ranged = !ranged;
    e_xcheck = None }

let analyse ?(name = "<prog>") prog =
  Obs.Span.with_ ~cat:"analysis" "analysis.lint" @@ fun () ->
  static_entry name prog

let crosschecked e prog profile =
  { e with e_xcheck = Some (Crosscheck.check prog profile) }

let analyse_profiled ?(name = "<prog>") ?max_steps ?args prog =
  let e = static_entry name prog in
  (* only execute programs the verifier accepts *)
  if List.exists Diag.is_error e.e_diags then e
  else
    let structure = Cfg.Cfg_builder.run ?max_steps ?args prog in
    let profile = Ddg.Depprof.profile ?max_steps ?args prog ~structure in
    crosschecked e prog profile

let of_hir ?name ?(profile = true) ?max_steps ?args hir =
  let prog = Vm.Hir.lower hir in
  if profile then analyse_profiled ?name ?max_steps ?args prog
  else analyse ?name prog

let errors e =
  List.filter Diag.is_error e.e_diags
  @ (match e.e_xcheck with Some r -> r.Crosscheck.violations | None -> [])

let passed e = errors e = []

let header =
  [ "Workload"; "E"; "W"; "I"; "Acc"; "Aff"; "Rng"; "Facts"; "Chk"; "Viol";
    "Lint" ]

let to_row e =
  let c sev = string_of_int (Diag.count sev e.e_diags) in
  [ e.e_name;
    c Diag.Error;
    c Diag.Warning;
    c Diag.Info;
    string_of_int e.e_accesses;
    string_of_int e.e_affine;
    string_of_int e.e_ranged ]
  @ (match e.e_xcheck with
    | Some r ->
        [ string_of_int r.Crosscheck.facts;
          string_of_int r.Crosscheck.checked_edges;
          string_of_int (List.length r.Crosscheck.violations) ]
    | None -> [ "-"; "-"; "-" ])
  @ [ (if passed e then "ok" else "FAIL") ]

let table entries = Report.Texttable.render ~header (List.map to_row entries)

let pp_entry ?prog () fmt e =
  Format.fprintf fmt "%s: %d accesses (%d affine, %d ranged), lint %s"
    e.e_name e.e_accesses e.e_affine e.e_ranged
    (if passed e then "ok" else "FAILED");
  (match e.e_xcheck with
  | Some r -> Format.fprintf fmt "@\n  cross-check: %a" Crosscheck.pp_report r
  | None -> ());
  List.iter
    (fun d -> Format.fprintf fmt "@\n  %a" (Diag.pp ?prog ()) d)
    e.e_diags
