(** Parallelism certifier: static race analysis for claimed-parallel
    loop dimensions (the legality tooling behind
    [Sched.Transform.Parallelize]/[Vectorize] marks, in the
    DiscoPoP-style pairing of static dependence reasoning with
    reduction/privatisation recognition).

    For a claimed loop — identified by its header block, bridged from
    {!Statdep}'s chain dimensions via [resolved.r_dims] — the certifier
    decides {e DOALL-ness} exactly: for every pair of same-region
    resolved accesses under the loop with at least one store, the
    level-carried dependence polyhedron (iteration domains, address
    equality, equal outer coordinates, source iteration strictly
    earlier at the claimed level) is decided by {!Minisl.Lp.feasible};
    rational infeasibility of every pair is a machine-checkable
    DOALL certificate.

    A feasible (blocking) pair is {e discharged} by two sub-analyses
    before it becomes a race:

    - {e reduction recognition}: both endpoints belong to a
      commutative read-modify-write chain — [load x[a]; x[a] <- x[a]
      op e] in one block with ([op] in +, *, and, or, xor, or
      subtraction of a loop-varying term) where the loaded and
      combined registers have no other use — and every chain on the
      region combines with a compatible operator;
    - {e privatisation}: the region's per-iteration footprint is
      iteration-invariant at the claimed level, and every read is
      covered by a densely-writing store whose subtree completes
      earlier in the same iteration — each iteration can work on a
      private copy (scalar privatisation is the liveness check: a
      loop-carried register that is not an induction counter of the
      claimed loop blocks certification).

    What survives is a {e race}: a concrete witness pair of iteration
    vectors extracted from the LP model by progressive coordinate
    fixing (or, where integer rounding fails, the conflicting access
    pair alone). *)

type witness = {
  w_src : Vm.Isa.Sid.t;  (** access in the earlier iteration *)
  w_dst : Vm.Isa.Sid.t;  (** conflicting access in a later iteration *)
  w_ww : bool;  (** both endpoints are stores *)
  w_region : int;  (** {!Points_to} region both touch *)
  w_src_iv : int array option;
      (** concrete source iteration vector (chain coordinates,
          outermost first) when LP rounding found an integer point *)
  w_dst_iv : int array option;
  w_addr : int option;  (** the conflicting address, when concrete *)
}

type certificate = {
  ct_level : int;  (** chain dimension index of the certified loop *)
  ct_pairs : int;  (** access pairs whose polyhedra were decided *)
  ct_private : int list;
      (** regions discharged by privatisation (region indices) *)
  ct_reductions : Vm.Isa.Sid.t list;
      (** accesses of discharged reduction chains (sorted) *)
}

type verdict =
  | Certified of certificate
  | Race of witness list  (** non-empty; sorted by (src, dst) *)
  | Unknown of string  (** the claim is out of the analysis' reach *)

type dim_report = {
  dr_fid : int;
  dr_header : int;  (** header block of the claimed loop *)
  dr_loc : Vm.Prog.loc option;
  dr_depth : int;  (** chain dimension index, 0 = outermost *)
  dr_verdict : verdict;
}

type t = {
  pc_sd : Statdep.t;
  pc_dims : dim_report list;  (** every chain dimension, sorted *)
}

val certify : Statdep.t -> fid:int -> header:int -> verdict
(** Certify the loop of function [fid] whose header block is
    [header]. [Unknown] when the loop is not a chain dimension of the
    static model. *)

val certify_loc : Statdep.t -> ?fid:int -> Vm.Prog.loc -> verdict
(** Certify the chain loop whose header carries the given source
    location (the identity used by {!Sched.Plan.dim_target});
    [Unknown] when no chain dimension matches. *)

val analyse : ?sd:Statdep.t -> Vm.Prog.t -> t
(** Certify every chain dimension of the program ([sd] defaults to a
    fresh non-speculative {!Statdep.analyse}). *)

val coverage : Statdep.t -> verdict -> (int * int) list * Vm.Isa.Sid.t list
(** Sanitizer coverage of a certificate: the private regions as
    inclusive address ranges, and the reduction-chain access sids.
    Empty for [Race]/[Unknown]. *)

val verdict_code : verdict -> string
(** ["certified"], ["race"] or ["unknown"]. *)

val n_certified : t -> int
val n_races : t -> int

val pp_verdict : Format.formatter -> verdict -> unit
val pp : Format.formatter -> t -> unit

(** {1 Dynamic cross-check}

    The race sanitizer ({!Ddg.Race_san}) is the certifier's soundness
    oracle: one interpreted run treats every iteration of each claimed
    dimension as a logical thread and flags cross-iteration conflicts
    not covered by the certificate's private/reduction sets. *)

val claims : t -> Ddg.Race_san.claim list
(** One sanitizer claim per chain dimension; certified dims carry
    their private-range/reduction-sid coverage from {!coverage}. *)

val sanitize : ?max_steps:int -> ?args:int list -> t -> Ddg.Race_san.report
(** Run the program once under the sanitizer with {!claims}. *)

val crosscheck : t -> Ddg.Race_san.report -> Diag.t list
(** Static/dynamic agreement, {!Crosscheck}-style: a sanitizer race on
    a statically certified dimension is an [E-parcheck-unsound] hard
    error; a dynamic race confirming a static witness is
    [I-parcheck-confirmed]; a static witness the trace did not exhibit
    is [I-parcheck-latent]. *)

val crosscheck_ok : Diag.t list -> bool
(** No [E-parcheck-unsound] (or other error) diagnostics. *)
