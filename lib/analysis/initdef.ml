module ISet = Set.Make (Int)

(* Must-analysis join is set intersection; "all registers" is the
   optimistic initial value.  [Top] avoids materialising the full set. *)
module L = struct
  type t = Top | Known of ISet.t

  let equal a b =
    match (a, b) with
    | Top, Top -> true
    | Known x, Known y -> ISet.equal x y
    | _ -> false

  let join a b =
    match (a, b) with
    | Top, x | x, Top -> x
    | Known x, Known y -> Known (ISet.inter x y)
end

module Engine = Dataflow.Make (L)

let add_def s = function
  | Some r -> (
      match s with L.Top -> L.Top | L.Known x -> L.Known (ISet.add r x))
  | None -> s

let transfer_block (f : Vm.Prog.func) bid state =
  let b = f.blocks.(bid) in
  let state =
    Array.fold_left (fun s i -> add_def s (Insn.instr_def i)) state b.instrs
  in
  add_def state (Insn.term_def b.term)

let check_func (prog : Vm.Prog.t) fid =
  let f = prog.funcs.(fid) in
  let n_blocks = Array.length f.blocks in
  let graph = Insn.static_cfg f in
  let params = ISet.of_list (List.init f.n_params Fun.id) in
  let { Engine.block_in; _ } =
    Engine.run ~dir:Dataflow.Forward ~graph ~n_blocks ~entry:[ 0 ]
      ~boundary:(L.Known params) ~init:L.Top
      ~transfer:(fun bid s -> transfer_block f bid s)
  in
  let diags = ref [] in
  let reach = Verify.reachable_blocks f in
  Array.iteri
    (fun bid (b : Vm.Prog.block) ->
      if reach.(bid) then begin
        let state = ref block_in.(bid) in
        let flag sid r =
          diags :=
            Diag.warning ~sid ~code:"W-uninit" ~fid
              (Printf.sprintf
                 "register r%d may be read before initialization" r)
            :: !diags
        in
        let check_uses sid uses =
          match !state with
          | L.Top -> ()
          | L.Known known ->
              List.iter
                (fun r -> if not (ISet.mem r known) then flag sid r)
                (List.sort_uniq compare uses)
        in
        Array.iteri
          (fun idx i ->
            check_uses (Vm.Isa.Sid.make ~fid ~bid ~idx) (Insn.instr_uses i);
            state := add_def !state (Insn.instr_def i))
          b.instrs;
        check_uses (Insn.term_sid ~fid b) (Insn.term_uses b.term)
      end)
    f.blocks;
  List.sort Diag.compare !diags

let check prog =
  Array.to_list prog.Vm.Prog.funcs
  |> List.concat_map (fun (f : Vm.Prog.func) -> check_func prog f.fid)
