(** Use/def views of MiniVM instructions and terminators, plus the static
    control-flow graph of a function — the inputs every dataflow pass
    shares.

    Unlike {!Cfg.Cfg_builder}, which reconstructs CFGs from the *dynamic*
    event stream (only executed blocks appear), this is the full static
    CFG: one node per basic block, edges from the terminator syntax.
    Call terminators get a fall-through edge to their continuation block,
    the same shape Instrumentation I produces. *)

val instr_uses : Vm.Isa.instr -> Vm.Isa.reg list
(** Registers read by the instruction, in operand order (duplicates kept). *)

val instr_def : Vm.Isa.instr -> Vm.Isa.reg option
(** The register written, if any ([Store] writes only memory). *)

val term_uses : Vm.Isa.terminator -> Vm.Isa.reg list

val term_def : Vm.Isa.terminator -> Vm.Isa.reg option
(** A [Call] with a destination defines it (in the caller's frame, on the
    edge to the continuation block). *)

val term_succs : Vm.Isa.terminator -> int list
(** Static successor block ids ([Ret]/[Halt] have none). *)

val n_regs : Vm.Prog.func -> int
(** 1 + the largest register index mentioned anywhere in the function
    (at least [n_params]); the frame size a dataflow pass must model. *)

val static_cfg : Vm.Prog.func -> Cfg.Digraph.t
(** Nodes are block ids; out-of-range successors (a malformed program
    that bypassed {!Vm.Prog.validate}) are skipped, so passes stay total. *)

val term_sid : fid:int -> Vm.Prog.block -> Vm.Isa.Sid.t
(** The static id addressing the terminator of a block: index one past
    the last instruction. *)
