(** A generic iterative (worklist) dataflow engine over MiniVM basic
    blocks, in the style of the classic static analyses of
    DeepDataFlow (liveness, reachability, dominance): instantiate the
    functor with a join-semilattice of abstract states and run it
    forward or backward over a function's static CFG.

    The engine is deliberately small: block-level fixpoint with a
    FIFO worklist seeded in reverse postorder (forward) or its reverse
    (backward), which makes reducible MiniVM CFGs converge in a handful
    of sweeps.  Per-instruction precision is the client's business —
    re-walk the block from [block_in] once the fixpoint is reached. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound; must be monotone w.r.t. the implicit order. *)
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = {
    block_in : L.t array;  (** fixpoint at block entry, indexed by bid *)
    block_out : L.t array;  (** fixpoint at block exit *)
  }

  val run :
    dir:direction ->
    graph:Cfg.Digraph.t ->
    n_blocks:int ->
    entry:int list ->
    boundary:L.t ->
    init:L.t ->
    transfer:(int -> L.t -> L.t) ->
    result
  (** [run ~dir ~graph ~n_blocks ~entry ~boundary ~init ~transfer].

      For [Forward], [entry] lists the blocks whose in-state starts at
      [boundary] (normally [[0]]); every other block starts optimistic at
      [init], and [block_in b] is the join of its predecessors'
      out-states (joined with [boundary] for entry blocks).  [Backward]
      is the mirror image: [entry] lists the exit blocks, [block_in] is
      the state *after* the block, [block_out] the state before it (the
      fixpoint of [transfer] applied against successor states).

      [transfer bid s] maps the state across block [bid] in the chosen
      direction.  Iteration stops when all states are [L.equal]-stable;
      a safety cap of [64 * n_blocks] relaxations guards against a
      non-converging lattice (the engine then returns the current,
      over-approximate states). *)
end
