(** Front door of the static-analysis layer: run every pass over one
    program and aggregate the results, for the [polyprof_cli lint]
    subcommand, the runner integration and the test sweep.

    The gate ({!passed}) is: no [Error]-severity diagnostic from the
    verifier and no cross-check violation.  Warnings (dead stores,
    may-uninitialized reads, unreachable blocks) and infos are reported
    but do not fail the lint — lowered programs legitimately contain a
    few (e.g. the bounds register recomputed by every loop header). *)

type entry = {
  e_name : string;
  e_diags : Diag.t list;
      (** verifier + definite-init + liveness, {!Diag.compare}-sorted *)
  e_accesses : int;  (** static memory accesses (reachable code) *)
  e_affine : int;  (** of which classified affine *)
  e_ranged : int;  (** of which carrying a provable address interval *)
  e_xcheck : Crosscheck.report option;
      (** [None] when the program was not executed *)
}

val deadcode : Vm.Prog.t -> Diag.t list
(** [W-deadcode]: blocks reachable in the plain static CFG that become
    unreachable once constant conditional branches follow only their
    taken edge.  Disjoint from the verifier's [W-unreachable]. *)

val redundant_load : Vm.Prog.t -> Diag.t list
(** [W-redundant-load]: the same address operand loaded twice within a
    block with no intervening store and no redefinition of the address
    register — the second load can reuse the first one's value. *)

val almost_affine : Vm.Prog.t -> Diag.t list
(** [W-almost-affine]: a memory region that just misses the static
    dependence engine's prunable set — every unresolved access that may
    touch it is blocked for one and the same {!Statdep.reason}, named in
    the message.  Opt-in (not part of {!analyse}): runs {!Statdep} and
    is advisory. *)

val with_almost_affine : entry -> Vm.Prog.t -> entry
(** Append the {!almost_affine} diagnostics to an entry (for the CLI
    lint command). *)

val parallelism : Vm.Prog.t -> Diag.t list
(** Parallelism advisories from the certifier ({!Parcheck}), one per
    chain dimension: [W-race] (provably racy, with a concrete witness
    pair), [W-privatizable] (parallel only with named regions
    privatized per-thread), [W-reduction] (parallel only as a
    reduction).  Opt-in (not part of {!analyse}): runs the static
    dependence engine and is advisory. *)

val with_parallelism : entry -> Vm.Prog.t -> entry
(** Append the {!parallelism} diagnostics to an entry. *)

val analyse : ?name:string -> Vm.Prog.t -> entry
(** Static passes only (no execution, no cross-check), including
    {!deadcode} and {!redundant_load}. *)

val crosschecked : entry -> Vm.Prog.t -> Ddg.Depprof.result -> entry
(** Attach the cross-check of an already-computed profile (for callers
    that have one, like the workload runner). *)

val analyse_profiled :
  ?name:string -> ?max_steps:int -> ?args:int list -> Vm.Prog.t -> entry
(** Static passes plus the dynamic cross-check: runs the program under
    Instrumentation I ({!Cfg.Cfg_builder.run}) then II
    ({!Ddg.Depprof.profile}) and checks the DDG against the static
    independence facts. *)

val of_hir :
  ?name:string ->
  ?profile:bool ->
  ?max_steps:int ->
  ?args:int list ->
  Vm.Hir.program ->
  entry
(** Lower and analyse; [profile] (default [true]) adds the cross-check. *)

val errors : entry -> Diag.t list
(** Verifier errors plus cross-check violations. *)

val passed : entry -> bool

val header : string list
val to_row : entry -> string list
val table : entry list -> string
(** {!Report.Texttable} over {!header}/{!to_row}. *)

val pp_entry : ?prog:Vm.Prog.t -> unit -> Format.formatter -> entry -> unit
(** The table row's data in long form, followed by every diagnostic. *)
