(** The MiniVM bytecode verifier.

    Structural well-formedness (delegated to {!Vm.Prog.wf_errors}: block
    termination by construction, jump/br/call targets in range, call
    arity against the declaration, register indices within the frame
    cap) plus whole-program checks that need a CFG:

    - unreachable blocks, detected by reachability from the entry block
      of each function ([W-unreachable]);
    - a [Ret] terminator reachable in [main], which the interpreter
      traps on ([E-ret-in-main]);
    - functions never referenced by any reachable call and not [main]
      ([Info], [I-dead-func]).

    Diagnostic codes: structural errors are [E-struct]; the others as
    listed above. *)

val reachable_blocks : Vm.Prog.func -> bool array
(** Reachability from the entry block over the static CFG, indexed by
    block id (shared by the other passes to mute unreachable code). *)

val verify : Vm.Prog.t -> Diag.t list
(** Sorted with {!Diag.compare}. *)

val errors : Diag.t list -> Diag.t list
val ok : Vm.Prog.t -> bool
(** No [Error]-severity diagnostics. *)
